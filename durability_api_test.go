package landmarkdht

import (
	"testing"
)

// A platform with DataDir journals every node's region to disk: the
// stats must show durable nodes, and searches must behave exactly as
// on the in-memory default.
func TestDurablePlatformSearchAndStats(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Options{Nodes: 24, Seed: 1, DataDir: dir, DataSync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(500, 8, 2)
	ix, err := AddIndex(p, EuclideanSpace("vecs", 8, -100, 200), data, DenseMean,
		IndexOptions{Landmarks: 3, SampleSize: 200})
	if err != nil {
		t.Fatal(err)
	}

	// Same platform without DataDir: results must match exactly.
	p2, err := New(Options{Nodes: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := AddIndex(p2, EuclideanSpace("vecs", 8, -100, 200), data, DenseMean,
		IndexOptions{Landmarks: 3, SampleSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		q := data[trial*17]
		got, _, err := ix.RangeSearch(q, 12)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ix2.RangeSearch(q, 12)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("durable platform diverged: %d results vs %d", len(got), len(want))
		}
	}

	ds := p.Durability()
	if ds.DurableNodes != 24 {
		t.Fatalf("DurableNodes = %d, want 24", ds.DurableNodes)
	}
	if ds.LogBytes == 0 {
		t.Fatal("no journal bytes after indexing 500 objects")
	}
	if p2.Durability().DurableNodes != 0 {
		t.Fatal("in-memory platform reports durable nodes")
	}
}
