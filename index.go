package landmarkdht

import (
	"fmt"
	"math/rand"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/core"
	"landmarkdht/internal/indexspace"
	"landmarkdht/internal/landmark"
)

// SelectionMethod chooses the landmark-selection algorithm (§3.1).
type SelectionMethod string

const (
	// GreedySelection is Algorithm 1 (max-min).
	GreedySelection SelectionMethod = "greedy"
	// KMeansSelection uses cluster centroids (requires a Meaner).
	KMeansSelection SelectionMethod = "kmeans"
	// KMedoidsSelection clusters without centroids (any metric space).
	KMedoidsSelection SelectionMethod = "kmedoids"
)

// IndexOptions configures one index scheme.
type IndexOptions struct {
	// Landmarks is the index-space dimensionality k (default 10).
	Landmarks int
	// Selection picks the landmark algorithm (default KMeansSelection
	// when a Meaner is supplied, else GreedySelection).
	Selection SelectionMethod
	// SampleSize is the selection sample (default 2000, the paper's
	// §4.2 value, clamped to the dataset size).
	SampleSize int
	// BoundaryFromSample derives the index-space boundary from the
	// selection sample (§3.1 approach 2) instead of the metric bound.
	// Required for unbounded metrics.
	BoundaryFromSample bool
	// DisableRotation turns off the §3.4 space-mapping rotation
	// (enabled by default so multiple indexes decorrelate).
	DisableRotation bool
}

func (o *IndexOptions) fillDefaults(hasMean bool) {
	if o.Landmarks <= 0 {
		o.Landmarks = 10
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 2000
	}
	if o.Selection == "" {
		if hasMean {
			o.Selection = KMeansSelection
		} else {
			o.Selection = GreedySelection
		}
	}
}

// Match is one search result.
type Match[T any] struct {
	// ID is the object's position in the indexed dataset (insertion
	// order).
	ID int
	// Object is the matching object.
	Object T
	// Distance is the exact metric distance to the query.
	Distance float64
}

// SearchStats carries the paper's per-query cost metrics.
type SearchStats struct {
	// Hops is the maximum path length to reach all index nodes.
	Hops int
	// ResponseTime is the time to the first result.
	ResponseTime time.Duration
	// MaxLatency is the time to the last result.
	MaxLatency time.Duration
	// QueryMessages / QueryBytes cover query delivery.
	QueryMessages int
	QueryBytes    int64
	// ResultMessages / ResultBytes cover result delivery.
	ResultMessages int
	ResultBytes    int64
	// IndexNodes is the number of nodes that answered.
	IndexNodes int
	// Candidates is the pre-refinement candidate count.
	Candidates int
	// Retries is the number of retransmissions the reliability layer
	// issued for this query.
	Retries int
	// Hedges is the number of hedged subqueries this query re-sent to
	// successor replicas.
	Hedges int
	// Complete reports whether every subquery was answered: a complete
	// range search is exact. When false — subqueries were lost for good
	// or a deadline expired first — the results are a correct subset and
	// DroppedSubqueries / UncoveredRegions size the gap.
	Complete bool
	// DroppedSubqueries is the number of subqueries lost for good.
	DroppedSubqueries int
	// UncoveredRegions is the number of index-space regions whose
	// answers are missing from an incomplete result.
	UncoveredRegions int
}

func searchStats(qr *core.QueryResult) SearchStats {
	qs := qr.Stats
	return SearchStats{
		Hops:              qs.Hops,
		ResponseTime:      qs.ResponseTime(),
		MaxLatency:        qs.MaxLatency(),
		QueryMessages:     qs.QueryMsgs,
		QueryBytes:        qs.QueryBytes,
		ResultMessages:    qs.ResultMsgs,
		ResultBytes:       qs.ResultBytes,
		IndexNodes:        qs.IndexNodes,
		Candidates:        qs.Candidates,
		Retries:           qs.Retries,
		Hedges:            qs.Hedges,
		Complete:          qr.Complete,
		DroppedSubqueries: qr.DroppedSubqueries,
		UncoveredRegions:  len(qr.Uncovered),
	}
}

// Index is one deployed index scheme over objects of type T.
type Index[T any] struct {
	p       *Platform
	emb     *indexspace.Embedding[T]
	name    string
	objects []T
	maxDist float64
	space   Space[T]
	mean    Meaner[T]
	opts    IndexOptions
	refresh int64 // bumps the sampling seed on each landmark refresh
	// centerBuf is the reusable query-embedding buffer: one embedding
	// per search, consumed synchronously by the query router. Safe
	// because an Index (like its Platform) is single-goroutine.
	centerBuf []float64
}

// mapCenter embeds a query point into the index's reusable buffer.
// The result is only valid until the next search on this index.
func (ix *Index[T]) mapCenter(q T) []float64 {
	if len(ix.centerBuf) != ix.emb.K() {
		ix.centerBuf = make([]float64, ix.emb.K())
	}
	return ix.emb.MapInto(q, ix.centerBuf)
}

// AddIndex deploys a new index scheme on the platform: landmarks are
// selected from a random sample of objects (the §3.1 well-known-node
// procedure), the index space is partitioned with the locality-
// preserving hash, and all objects are loaded onto their responsible
// nodes. mean may be nil for metric spaces without centroids.
//
// The objects slice is retained by the index; do not mutate it.
func AddIndex[T any](p *Platform, space Space[T], objects []T, mean Meaner[T], opts IndexOptions) (*Index[T], error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("landmarkdht: no objects to index")
	}
	opts.fillDefaults(mean != nil)
	if opts.Landmarks > len(objects) {
		return nil, fmt.Errorf("landmarkdht: %d landmarks from %d objects", opts.Landmarks, len(objects))
	}
	lms, sample, err := pickLandmarks(objects, space, mean, opts,
		p.opts.Seed+int64(len(space.Name))*31)
	if err != nil {
		return nil, err
	}

	var iopts []indexspace.Option[T]
	if opts.BoundaryFromSample {
		iopts = append(iopts, indexspace.WithSampleBoundary(sample))
	}
	emb, err := indexspace.New(space, lms, iopts...)
	if err != nil {
		return nil, err
	}
	part, err := emb.Partitioner(!opts.DisableRotation)
	if err != nil {
		return nil, err
	}
	ix := &Index[T]{p: p, emb: emb, name: space.Name, objects: objects,
		space: space, mean: mean, opts: opts}
	if space.Bounded {
		ix.maxDist = space.Max
	} else {
		// Sample boundary: the widest dimension bounds distances we
		// can meaningfully query.
		for _, b := range emb.Bounds() {
			if b.Hi > ix.maxDist {
				ix.maxDist = b.Hi
			}
		}
	}
	coreIx := &core.Index{
		Name:    space.Name,
		Part:    part,
		MaxDist: ix.maxDist,
		Dist: func(payload any, obj core.ObjectID) float64 {
			return ix.emb.Distance(payload.(T), ix.objects[obj])
		},
	}
	entries := batchEntries(emb, objects)
	if err := p.protocol(func() error {
		if err := p.sys.DeployIndex(coreIx); err != nil {
			return err
		}
		return p.sys.BulkLoad(space.Name, entries)
	}); err != nil {
		return nil, err
	}
	return ix, nil
}

// batchEntries embeds all objects through one MapBatch arena: two
// allocations for the whole load instead of one per object, and
// contiguous coordinates for the bulk-load scan.
func batchEntries[T any](emb *indexspace.Embedding[T], objects []T) []core.Entry {
	rows, _ := emb.MapBatch(objects, nil)
	entries := make([]core.Entry, len(objects))
	for i := range objects {
		entries[i] = core.Entry{Obj: core.ObjectID(i), Point: rows[i]}
	}
	return entries
}

// pickLandmarks runs the §3.1 selection procedure over a seeded random
// sample of the objects.
func pickLandmarks[T any](objects []T, space Space[T], mean Meaner[T], opts IndexOptions, seed int64) (lms, sample []T, err error) {
	rng := rand.New(rand.NewSource(seed))
	sampleN := opts.SampleSize
	if sampleN > len(objects) {
		sampleN = len(objects)
	}
	sample = make([]T, sampleN)
	for i, idx := range rng.Perm(len(objects))[:sampleN] {
		sample[i] = objects[idx]
	}
	switch opts.Selection {
	case GreedySelection:
		lms, err = landmark.Greedy(rng, sample, opts.Landmarks, space.Dist)
	case KMeansSelection:
		if mean == nil {
			return nil, nil, fmt.Errorf("landmarkdht: KMeansSelection requires a Meaner")
		}
		lms, err = landmark.KMeans(rng, sample, opts.Landmarks, space.Dist, mean, 50)
	case KMedoidsSelection:
		lms, err = landmark.KMedoids(rng, sample, opts.Landmarks, space.Dist, 20)
	default:
		err = fmt.Errorf("landmarkdht: unknown selection method %q", opts.Selection)
	}
	return lms, sample, err
}

// ReindexWith installs a new landmark set (§6 future work #3): every
// object is re-embedded against the new landmarks and migrated to its
// new responsible node. The migration traffic is charged to the
// overlay's transfer counters. Queries issued after ReindexWith
// returns see the new index space.
func (ix *Index[T]) ReindexWith(landmarks []T, boundarySample []T) error {
	if len(landmarks) == 0 {
		return fmt.Errorf("landmarkdht: empty landmark set")
	}
	var iopts []indexspace.Option[T]
	if boundarySample != nil {
		iopts = append(iopts, indexspace.WithSampleBoundary(boundarySample))
	} else if !ix.space.Bounded {
		return fmt.Errorf("landmarkdht: unbounded metric requires a boundary sample")
	}
	emb, err := indexspace.New(ix.space, landmarks, iopts...)
	if err != nil {
		return err
	}
	part, err := emb.Partitioner(!ix.opts.DisableRotation)
	if err != nil {
		return err
	}
	coreIx := &core.Index{
		Name:    ix.name,
		Part:    part,
		MaxDist: ix.maxDist,
		Dist: func(payload any, obj core.ObjectID) float64 {
			return ix.emb.Distance(payload.(T), ix.objects[obj])
		},
	}
	entries := batchEntries(emb, ix.objects)
	if err := ix.p.protocol(func() error {
		if err := ix.p.sys.RemoveIndex(ix.name); err != nil {
			return err
		}
		if err := ix.p.sys.DeployIndex(coreIx); err != nil {
			return err
		}
		if err := ix.p.sys.BulkLoad(ix.name, entries); err != nil {
			return err
		}
		ix.p.sys.Network().RecordTraffic(chord.KindTransfer,
			ix.p.sys.Config().Msg.TransferBytes(len(entries)))
		return nil
	}); err != nil {
		return err
	}
	ix.emb = emb
	if ix.space.Bounded {
		ix.maxDist = ix.space.Max
	} else {
		ix.maxDist = 0
		for _, b := range emb.Bounds() {
			if b.Hi > ix.maxDist {
				ix.maxDist = b.Hi
			}
		}
	}
	return nil
}

// RefreshLandmarks periodically re-evaluates the landmark set (§6
// future work #3): a new set is selected from a fresh sample and
// adopted if its dispersion (minimum pairwise landmark distance, the
// §3.1 quality measure) beats the current set by the threshold factor.
// It reports whether the new set was adopted.
func (ix *Index[T]) RefreshLandmarks(threshold float64) (bool, error) {
	ix.refresh++
	lms, sample, err := pickLandmarks(ix.objects, ix.space, ix.mean, ix.opts,
		ix.p.opts.Seed+int64(len(ix.name))*31+ix.refresh*7919)
	if err != nil {
		return false, err
	}
	oldSpread := landmark.Spread(ix.emb.Landmarks(), ix.space.Dist)
	newSpread := landmark.Spread(lms, ix.space.Dist)
	if newSpread <= oldSpread*(1+threshold) {
		return false, nil
	}
	var boundary []T
	if ix.opts.BoundaryFromSample || !ix.space.Bounded {
		boundary = sample
	}
	if err := ix.ReindexWith(lms, boundary); err != nil {
		return false, err
	}
	return true, nil
}

// Replicate places every entry on the copies−1 nodes succeeding its
// primary (Chord's standard soft-state replication): when a node
// crashes, the first replica is the new successor of its keys and
// answers queries immediately, with no recovery step. Incompatible
// with dynamic load migration.
func (ix *Index[T]) Replicate(copies int) error {
	return ix.p.protocol(func() error { return ix.p.sys.ReplicateAll(ix.name, copies) })
}

// Name returns the index scheme name.
func (ix *Index[T]) Name() string { return ix.name }

// Len returns the number of indexed objects.
func (ix *Index[T]) Len() int { return len(ix.objects) }

// Landmarks returns the selected landmark set.
func (ix *Index[T]) Landmarks() []T { return ix.emb.Landmarks() }

// MaxDistance returns the maximum meaningful query range.
func (ix *Index[T]) MaxDistance() float64 { return ix.maxDist }

// Object returns the indexed object with the given id.
func (ix *Index[T]) Object(id int) T { return ix.objects[id] }

// Insert publishes a new object through the overlay: a Chord lookup
// resolves the responsible node and the index entry travels there.
// Insert mutates the index and must not run concurrently with other
// inserts on the same index (searches are fine in live mode).
func (ix *Index[T]) Insert(obj T) (int, error) {
	id := len(ix.objects)
	if ix.p.live != nil {
		// The objects slice is read by Dist closures on the protocol
		// executor and, when Options.Executors shards index work, on the
		// shard executors too; publish the append through Do (which
		// quiesces every executor) so all of them observe it before the
		// entry can land anywhere.
		if err := ix.p.live.Do(func() { ix.objects = append(ix.objects, obj) }); err != nil {
			return 0, err
		}
		entry := core.Entry{Obj: core.ObjectID(id), Point: ix.emb.Map(obj)}
		err := ix.p.live.Await(liveOpTimeout, func(finish func()) error {
			return ix.p.sys.Publish(ix.name, ix.p.randomNode(), entry,
				func(chordID uint64, hops int) { finish() })
		})
		if err != nil {
			ix.p.live.Do(func() { ix.objects = ix.objects[:id] })
			return 0, err
		}
		return id, nil
	}
	ix.objects = append(ix.objects, obj)
	entry := core.Entry{Obj: core.ObjectID(id), Point: ix.emb.Map(obj)}
	placed := false
	err := ix.p.sys.Publish(ix.name, ix.p.randomNode(), entry,
		func(chordID uint64, hops int) { placed = true })
	if err != nil {
		ix.objects = ix.objects[:id]
		return 0, err
	}
	if err := ix.p.drive(func() bool { return placed }); err != nil {
		return 0, err
	}
	return id, nil
}

// QueryTrace is the recorded distributed execution of one query: the
// routing, splitting, refinement and answer steps across the overlay.
type QueryTrace = core.Trace

// RangeSearchTraced is RangeSearch with execution tracing: the
// returned trace reconstructs how the query travelled the embedded
// DHT trees (which nodes routed, split, refined and answered it).
func (ix *Index[T]) RangeSearchTraced(q T, r float64) ([]Match[T], SearchStats, *QueryTrace, error) {
	if ix.p.live != nil {
		return ix.liveSearch(q, r, core.QueryOpts{Trace: true})
	}
	center := ix.mapCenter(q)
	var result *core.QueryResult
	err := ix.p.sys.RangeQuery(ix.name, ix.p.randomNode(), q, center, r,
		core.QueryOpts{Trace: true}, func(qr *core.QueryResult) { result = qr })
	if err != nil {
		return nil, SearchStats{}, nil, err
	}
	if err := ix.p.drive(func() bool { return result != nil }); err != nil {
		return nil, SearchStats{}, nil, err
	}
	matches := make([]Match[T], len(result.Results))
	for i, res := range result.Results {
		matches[i] = Match[T]{ID: int(res.Obj), Object: ix.objects[res.Obj], Distance: res.Dist}
	}
	return matches, searchStats(result), result.Trace, nil
}

// RangeSearch returns every object within distance r of q, exactly
// (the contractive mapping guarantees no false negatives; exact
// refinement removes false positives). The query is issued from a
// random node, as in the paper's workloads.
func (ix *Index[T]) RangeSearch(q T, r float64) ([]Match[T], SearchStats, error) {
	return ix.search(q, r, core.QueryOpts{})
}

// NearestSearch implements the paper's recall protocol: every index
// node intersecting the range-r query cube returns its k nearest
// candidates and the querier merges them into a global top-k. With a
// generous r this returns the true k nearest neighbors.
func (ix *Index[T]) NearestSearch(q T, k int, r float64) ([]Match[T], SearchStats, error) {
	if k <= 0 {
		return nil, SearchStats{}, fmt.Errorf("landmarkdht: k must be positive")
	}
	return ix.search(q, r, core.QueryOpts{TopK: k})
}

// NearestK finds the exact k nearest neighbors by iterative range
// expansion: it starts from rStart (default: 1% of the metric bound)
// and doubles the range until k results lie within the guaranteed
// radius. This is the §6 "future work" exact-KNN driver.
func (ix *Index[T]) NearestK(q T, k int) ([]Match[T], SearchStats, error) {
	if k <= 0 {
		return nil, SearchStats{}, fmt.Errorf("landmarkdht: k must be positive")
	}
	r := ix.maxDist / 100
	if r <= 0 {
		r = 1
	}
	agg := SearchStats{Complete: true}
	for {
		matches, stats, err := ix.search(q, r, core.QueryOpts{})
		aggAdd(&agg, stats)
		if err != nil {
			return nil, agg, err
		}
		// All results within r are exact and complete; if we have k of
		// them we are done.
		if len(matches) >= k {
			return matches[:k], agg, nil
		}
		if r >= ix.maxDist {
			return matches, agg, nil // fewer than k objects in range
		}
		r *= 2
		if r > ix.maxDist {
			r = ix.maxDist
		}
	}
}

func aggAdd(agg *SearchStats, s SearchStats) {
	if s.Hops > agg.Hops {
		agg.Hops = s.Hops
	}
	agg.ResponseTime += s.ResponseTime
	agg.MaxLatency += s.MaxLatency
	agg.QueryMessages += s.QueryMessages
	agg.QueryBytes += s.QueryBytes
	agg.ResultMessages += s.ResultMessages
	agg.ResultBytes += s.ResultBytes
	if s.IndexNodes > agg.IndexNodes {
		agg.IndexNodes = s.IndexNodes
	}
	agg.Candidates += s.Candidates
	agg.Retries += s.Retries
	agg.Hedges += s.Hedges
	agg.Complete = agg.Complete && s.Complete
	agg.DroppedSubqueries += s.DroppedSubqueries
	agg.UncoveredRegions += s.UncoveredRegions
}

func (ix *Index[T]) search(q T, r float64, opts core.QueryOpts) ([]Match[T], SearchStats, error) {
	if ix.p.live != nil {
		matches, stats, _, err := ix.liveSearch(q, r, opts)
		return matches, stats, err
	}
	center := ix.mapCenter(q)
	var result *core.QueryResult
	err := ix.p.sys.RangeQuery(ix.name, ix.p.randomNode(), q, center, r, opts,
		func(qr *core.QueryResult) { result = qr })
	if err != nil {
		return nil, SearchStats{}, err
	}
	if err := ix.p.drive(func() bool { return result != nil }); err != nil {
		return nil, SearchStats{}, err
	}
	matches := make([]Match[T], len(result.Results))
	for i, res := range result.Results {
		matches[i] = Match[T]{
			ID:       int(res.Obj),
			Object:   ix.objects[res.Obj],
			Distance: res.Dist,
		}
	}
	return matches, searchStats(result), nil
}

// liveOpTimeout bounds one protocol operation on a live platform. Far
// above any real completion time; it exists so a lost completion (all
// retries exhausted under injected faults with no reliability layer)
// surfaces as an error instead of a hang.
const liveOpTimeout = 30 * time.Second

// liveSearch issues one query on a live platform: the query starts on
// the protocol executor and the calling goroutine blocks until the
// merged result arrives. The query embedding and source draw run on the
// executor too, so concurrent searches from many goroutines stay
// serialized over the index's shared buffers and the platform RNG.
func (ix *Index[T]) liveSearch(q T, r float64, opts core.QueryOpts) ([]Match[T], SearchStats, *QueryTrace, error) {
	var result *core.QueryResult
	err := ix.p.live.Await(liveOpTimeout, func(finish func()) error {
		center := ix.mapCenter(q)
		return ix.p.sys.RangeQuery(ix.name, ix.p.randomNode(), q, center, r, opts,
			func(qr *core.QueryResult) { result = qr; finish() })
	})
	if err != nil {
		return nil, SearchStats{}, nil, err
	}
	matches := make([]Match[T], len(result.Results))
	for i, res := range result.Results {
		matches[i] = Match[T]{ID: int(res.Obj), Object: ix.objects[res.Obj], Distance: res.Dist}
	}
	return matches, searchStats(result), result.Trace, nil
}
