//go:build !race

package landmarkdht

// raceDetectorEnabled gates tests that exist to exercise live
// concurrency under the race detector (see crossruntime_test.go).
const raceDetectorEnabled = false
