package landmarkdht

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestCrossRuntimeEquivalence runs the same seed and workload once over
// the simulated runtime and once over the live concurrent transport and
// requires identical result sets (order-normalized). Both modes are
// exact — landmark pruning plus refinement, with the same wire
// quantization — so any divergence means one runtime dropped, doubled,
// or corrupted a message. The test only runs under -race (the CI
// live-race step): its point is putting the live transport's
// goroutines under the detector, not re-checking search correctness.
func TestCrossRuntimeEquivalence(t *testing.T) {
	if !raceDetectorEnabled {
		t.Skip("cross-runtime equivalence runs under -race; see the live-race CI step")
	}
	const (
		nodes = 32
		dim   = 6
		seed  = 1
	)
	data := testData(1000, dim, 5)

	type norm struct {
		ids   []int
		dists []float64
	}
	run := func(live, resilient, throughput bool) []norm {
		t.Helper()
		opts := Options{Nodes: nodes, Seed: seed, WireCodec: true, Live: live}
		if resilient {
			// Deadlines, hedging and retries armed but never provoked
			// (no faults): the resilience machinery must be invisible —
			// every result Complete, result sets identical to the plain
			// run on both runtimes.
			opts.Retry = RetryConfig{MaxRetries: 3}
			opts.Deadline = 30 * time.Second
			opts.Hedge = HedgeConfig{Delay: 5 * time.Second}
		}
		if throughput {
			// Destination batching on both runtimes, plus sharded
			// executors on the live one: coalescing frames and fanning
			// store scans out across executors must not change a single
			// result either.
			opts.Batch = BatchOptions{MaxDelay: 2 * time.Millisecond}
			if live {
				opts.Executors = 4
			}
		}
		p, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		ix, err := AddIndex(p, EuclideanSpace("xr", dim, -100, 200), data, DenseMean,
			IndexOptions{Landmarks: 4, SampleSize: 250})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		var out []norm
		for trial := 0; trial < 12; trial++ {
			q := data[rng.Intn(len(data))]
			var matches []Match[Vector]
			var st SearchStats
			if trial%2 == 0 {
				matches, st, err = ix.RangeSearch(q, 5+rng.Float64()*10)
			} else {
				matches, st, err = ix.NearestSearch(q, 8, 25)
			}
			if err != nil {
				t.Fatalf("trial %d (live=%v): %v", trial, live, err)
			}
			if resilient {
				if !st.Complete {
					t.Fatalf("trial %d (live=%v): fault-free resilient query not Complete", trial, live)
				}
				if st.Hedges != 0 || st.DroppedSubqueries != 0 {
					t.Fatalf("trial %d (live=%v): fault-free resilient query hedged (%d) or dropped (%d)",
						trial, live, st.Hedges, st.DroppedSubqueries)
				}
			}
			n := norm{ids: make([]int, len(matches)), dists: make([]float64, len(matches))}
			order := make([]int, len(matches))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return matches[order[a]].ID < matches[order[b]].ID })
			for i, j := range order {
				n.ids[i] = matches[j].ID
				n.dists[i] = matches[j].Distance
			}
			out = append(out, n)
		}
		return out
	}

	compare := func(phase string, sim, liv []norm) {
		t.Helper()
		for trial := range sim {
			s, l := sim[trial], liv[trial]
			if len(s.ids) != len(l.ids) {
				t.Fatalf("%s trial %d: sim returned %d matches, live %d", phase, trial, len(s.ids), len(l.ids))
			}
			for i := range s.ids {
				if s.ids[i] != l.ids[i] {
					t.Fatalf("%s trial %d: result sets differ at rank %d: sim id %d, live id %d",
						phase, trial, i, s.ids[i], l.ids[i])
				}
				if s.dists[i] != l.dists[i] {
					t.Fatalf("%s trial %d: distance for id %d differs: sim %v, live %v",
						phase, trial, s.ids[i], s.dists[i], l.dists[i])
				}
			}
		}
	}

	sim := run(false, false, false)
	liv := run(true, false, false)
	compare("plain", sim, liv)
	// Same workload with the resilience machinery armed: with no faults
	// to provoke it, the hedge/deadline timers must not change a single
	// result on either runtime.
	simR := run(false, true, false)
	livR := run(true, true, false)
	compare("resilient", simR, livR)
	compare("plain-vs-resilient", sim, simR)
	// And with the throughput machinery on — destination batching plus
	// (live only) multi-executor sharding: still byte-identical results.
	simB := run(false, false, true)
	livB := run(true, false, true)
	compare("throughput", simB, livB)
	compare("plain-vs-throughput", sim, simB)
}
