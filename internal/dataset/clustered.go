// Package dataset provides the workload generators behind the paper's
// evaluation: the clustered multi-dimensional synthetic dataset of
// §4.2 (Table 1), a synthetic sparse document corpus statistically
// matched to the TREC-1,2-AP dataset of §4.3 (Table 2), and DNA-like
// string datasets for the edit-distance examples.
package dataset

import (
	"fmt"
	"math/rand"

	"landmarkdht/internal/metric"
)

// ClusteredConfig mirrors the paper's Table 1 parameters.
type ClusteredConfig struct {
	// N is the number of data objects (paper: 10^5).
	N int
	// Dim is the dimensionality (paper: 100).
	Dim int
	// Lo and Hi bound each dimension (paper: [0, 100]).
	Lo, Hi float64
	// Clusters is the number of data clusters (paper: 10).
	Clusters int
	// Dev is the per-dimension standard deviation within a cluster
	// (paper: 20).
	Dev float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Table1 returns the paper's exact synthetic-dataset parameters.
func Table1() ClusteredConfig {
	return ClusteredConfig{N: 100_000, Dim: 100, Lo: 0, Hi: 100, Clusters: 10, Dev: 20, Seed: 1}
}

func (c *ClusteredConfig) validate() error {
	if c.N <= 0 || c.Dim <= 0 || c.Clusters <= 0 {
		return fmt.Errorf("dataset: N, Dim and Clusters must be positive (got %d, %d, %d)", c.N, c.Dim, c.Clusters)
	}
	if c.Hi <= c.Lo {
		return fmt.Errorf("dataset: empty range [%v, %v]", c.Lo, c.Hi)
	}
	if c.Dev < 0 {
		return fmt.Errorf("dataset: negative deviation %v", c.Dev)
	}
	return nil
}

// centers draws the cluster centers uniformly in the data range.
func (c *ClusteredConfig) centers(rng *rand.Rand) []metric.Vector {
	out := make([]metric.Vector, c.Clusters)
	for i := range out {
		v := make(metric.Vector, c.Dim)
		for d := range v {
			v[d] = c.Lo + rng.Float64()*(c.Hi-c.Lo)
		}
		out[i] = v
	}
	return out
}

// Clustered generates the dataset: each object belongs to a uniformly
// chosen cluster and is normally distributed around its center with
// the configured deviation, clamped to the data range. The paper's
// query sets are generated with the same method (use a different
// seed).
func Clustered(cfg ClusteredConfig) ([]metric.Vector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := cfg.centers(rng)
	return sampleAround(rng, cfg, centers, cfg.N), nil
}

// ClusteredWithQueries generates a dataset and a query set that share
// cluster centers — queries are "the same method" (§4.2) applied to
// the same underlying distribution.
func ClusteredWithQueries(cfg ClusteredConfig, queries int) (data, qs []metric.Vector, err error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if queries < 0 {
		return nil, nil, fmt.Errorf("dataset: negative query count %d", queries)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := cfg.centers(rng)
	data = sampleAround(rng, cfg, centers, cfg.N)
	qs = sampleAround(rng, cfg, centers, queries)
	return data, qs, nil
}

func sampleAround(rng *rand.Rand, cfg ClusteredConfig, centers []metric.Vector, n int) []metric.Vector {
	out := make([]metric.Vector, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		v := make(metric.Vector, cfg.Dim)
		for d := range v {
			x := c[d] + rng.NormFloat64()*cfg.Dev
			if x < cfg.Lo {
				x = cfg.Lo
			} else if x > cfg.Hi {
				x = cfg.Hi
			}
			v[d] = x
		}
		out[i] = v
	}
	return out
}

// DNAConfig parameterizes the string dataset for the edit-distance
// application (§2 example 1).
type DNAConfig struct {
	// N is the number of sequences.
	N int
	// Length is the sequence length.
	Length int
	// Families is the number of ancestral sequences; members of a
	// family are mutated copies of the ancestor.
	Families int
	// MutationRate is the per-position probability of a point
	// mutation (change, insert, or delete).
	MutationRate float64
	// Seed drives the deterministic generator.
	Seed int64
}

// DNA generates the sequences plus the index of the family each
// sequence descends from.
func DNA(cfg DNAConfig) (seqs []string, family []int, err error) {
	if cfg.N <= 0 || cfg.Length <= 0 || cfg.Families <= 0 {
		return nil, nil, fmt.Errorf("dataset: N, Length and Families must be positive")
	}
	if cfg.MutationRate < 0 || cfg.MutationRate > 1 {
		return nil, nil, fmt.Errorf("dataset: mutation rate %v outside [0,1]", cfg.MutationRate)
	}
	const alpha = "ACGT"
	rng := rand.New(rand.NewSource(cfg.Seed))
	ancestors := make([]string, cfg.Families)
	for i := range ancestors {
		b := make([]byte, cfg.Length)
		for j := range b {
			b[j] = alpha[rng.Intn(4)]
		}
		ancestors[i] = string(b)
	}
	seqs = make([]string, cfg.N)
	family = make([]int, cfg.N)
	for i := range seqs {
		f := rng.Intn(cfg.Families)
		family[i] = f
		src := ancestors[f]
		var out []byte
		for j := 0; j < len(src); j++ {
			if rng.Float64() >= cfg.MutationRate {
				out = append(out, src[j])
				continue
			}
			switch rng.Intn(3) {
			case 0: // substitute
				out = append(out, alpha[rng.Intn(4)])
			case 1: // insert
				out = append(out, alpha[rng.Intn(4)], src[j])
			case 2: // delete
			}
		}
		if len(out) == 0 {
			out = append(out, alpha[rng.Intn(4)])
		}
		seqs[i] = string(out)
	}
	return seqs, family, nil
}
