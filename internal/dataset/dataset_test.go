package dataset

import (
	"math"
	"testing"

	"landmarkdht/internal/metric"
)

func TestClusteredBasic(t *testing.T) {
	cfg := ClusteredConfig{N: 1000, Dim: 10, Lo: 0, Hi: 100, Clusters: 5, Dev: 5, Seed: 1}
	data, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1000 {
		t.Fatalf("len = %d", len(data))
	}
	for _, v := range data {
		if len(v) != 10 {
			t.Fatalf("dim = %d", len(v))
		}
		for _, x := range v {
			if x < 0 || x > 100 {
				t.Fatalf("coordinate %v out of range", x)
			}
		}
	}
}

func TestClusteredIsClustered(t *testing.T) {
	// With small deviation, the average nearest-neighbor distance must
	// be far below the expected distance of uniform data.
	cfg := ClusteredConfig{N: 500, Dim: 10, Lo: 0, Hi: 100, Clusters: 3, Dev: 2, Seed: 2}
	data, _ := Clustered(cfg)
	var nnSum float64
	for i := 0; i < 100; i++ {
		best := math.Inf(1)
		for j := range data {
			if j == i {
				continue
			}
			if d := metric.L2(data[i], data[j]); d < best {
				best = d
			}
		}
		nnSum += best
	}
	avgNN := nnSum / 100
	// Uniform data in [0,100]^10 has typical pairwise distance ~130.
	if avgNN > 30 {
		t.Fatalf("average NN distance %v too large for clustered data", avgNN)
	}
}

func TestClusteredDeterministic(t *testing.T) {
	cfg := ClusteredConfig{N: 50, Dim: 4, Lo: 0, Hi: 10, Clusters: 2, Dev: 1, Seed: 7}
	a, _ := Clustered(cfg)
	b, _ := Clustered(cfg)
	for i := range a {
		if metric.L2(a[i], b[i]) != 0 {
			t.Fatal("same seed produced different data")
		}
	}
	cfg.Seed = 8
	c, _ := Clustered(cfg)
	if metric.L2(a[0], c[0]) == 0 && metric.L2(a[1], c[1]) == 0 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClusteredValidation(t *testing.T) {
	bad := []ClusteredConfig{
		{N: 0, Dim: 1, Lo: 0, Hi: 1, Clusters: 1},
		{N: 1, Dim: 0, Lo: 0, Hi: 1, Clusters: 1},
		{N: 1, Dim: 1, Lo: 1, Hi: 1, Clusters: 1},
		{N: 1, Dim: 1, Lo: 0, Hi: 1, Clusters: 0},
		{N: 1, Dim: 1, Lo: 0, Hi: 1, Clusters: 1, Dev: -1},
	}
	for i, cfg := range bad {
		if _, err := Clustered(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestClusteredWithQueriesSharesCenters(t *testing.T) {
	cfg := ClusteredConfig{N: 400, Dim: 8, Lo: 0, Hi: 100, Clusters: 2, Dev: 1, Seed: 3}
	data, qs, err := ClusteredWithQueries(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("queries = %d", len(qs))
	}
	// Every query must be near some data point (same clusters).
	for _, q := range qs {
		best := math.Inf(1)
		for _, d := range data {
			if dd := metric.L2(q, d); dd < best {
				best = dd
			}
		}
		if best > 30 {
			t.Fatalf("query %v is %v away from all data", q[:2], best)
		}
	}
	if _, _, err := ClusteredWithQueries(cfg, -1); err == nil {
		t.Fatal("expected error for negative query count")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	cfg := Table1()
	if cfg.N != 100000 || cfg.Dim != 100 || cfg.Lo != 0 || cfg.Hi != 100 ||
		cfg.Clusters != 10 || cfg.Dev != 20 {
		t.Fatalf("Table1 = %+v", cfg)
	}
}

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	cfg := CorpusConfig{Docs: 2000, Vocab: 20000, Topics: 20, TopicTerms: 100, Seed: 1}
	c, err := NewCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusBasic(t *testing.T) {
	c := smallCorpus(t)
	if len(c.Docs) != 2000 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	for i, d := range c.Docs {
		if d.NNZ() < 1 {
			t.Fatalf("doc %d has no terms", i)
		}
		for _, v := range d.Val {
			if v <= 0 {
				t.Fatalf("doc %d has non-positive weight", i)
			}
		}
	}
}

func TestCorpusSizeDistribution(t *testing.T) {
	c := smallCorpus(t)
	st := VectorSizeStats(c.Docs)
	// Shape check against Table 2: median near 146, long right tail.
	if st.P50 < 110 || st.P50 > 190 {
		t.Fatalf("median size = %d, want near 146", st.P50)
	}
	if st.P95 < 220 || st.P95 > 380 {
		t.Fatalf("95th pct = %d, want near 293", st.P95)
	}
	if st.Max > 676 {
		t.Fatalf("max size = %d, exceeds Table 2 max", st.Max)
	}
	if st.Mean < 120 || st.Mean > 200 {
		t.Fatalf("mean = %v, want near 155", st.Mean)
	}
	if st.Min < 1 {
		t.Fatalf("min = %d", st.Min)
	}
}

func TestCorpusTopicalClustering(t *testing.T) {
	c := smallCorpus(t)
	// Same-topic documents must be closer (in angle) than cross-topic
	// ones on average.
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			d := metric.CosineAngle(c.Docs[i], c.Docs[j])
			if c.Topic[i] == c.Topic[j] {
				same += d
				nSame++
			} else {
				cross += d
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate topic draw")
	}
	if same/float64(nSame) >= cross/float64(nCross) {
		t.Fatalf("same-topic angle %v not below cross-topic %v",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestCorpusQueries(t *testing.T) {
	c := smallCorpus(t)
	qs, err := c.Queries(10, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 40 {
		t.Fatalf("queries = %d", len(qs))
	}
	// Repeats reuse the same distinct vectors.
	if metric.CosineAngle(qs[0], qs[10]) > 1e-9 {
		t.Fatal("repetition should reuse query vectors")
	}
	// Average ~3.5 unique terms.
	var sum int
	for _, q := range qs[:10] {
		sum += q.NNZ()
	}
	avg := float64(sum) / 10
	if avg < 3 || avg > 4 {
		t.Fatalf("avg query terms = %v, want in [3,4]", avg)
	}
	// Queries must be topically relevant: close to some document.
	for ti, q := range qs[:10] {
		best := math.Inf(1)
		for _, d := range c.Docs {
			if dd := metric.CosineAngle(q, d); dd < best {
				best = dd
			}
		}
		if best > 1.4 {
			t.Fatalf("query topic %d at angle %v from all docs", ti, best)
		}
	}
	if _, err := c.Queries(0, 1, 1); err == nil {
		t.Fatal("expected error for zero topics")
	}
	if _, err := c.Queries(999, 1, 1); err == nil {
		t.Fatal("expected error for too many topics")
	}
}

func TestCorpusValidation(t *testing.T) {
	if _, err := NewCorpus(CorpusConfig{Docs: 0, Vocab: 10}); err == nil {
		t.Fatal("expected error for zero docs")
	}
	if _, err := NewCorpus(CorpusConfig{Docs: 10, Vocab: 10, Topics: 5, TopicTerms: 100}); err == nil {
		t.Fatal("expected error for topics exceeding vocab")
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := CorpusConfig{Docs: 200, Vocab: 5000, Topics: 5, TopicTerms: 50, Seed: 9}
	a, _ := NewCorpus(cfg)
	b, _ := NewCorpus(cfg)
	for i := range a.Docs {
		da, db := a.Docs[i], b.Docs[i]
		if da.NNZ() != db.NNZ() {
			t.Fatal("same seed produced different corpus (sizes)")
		}
		for j := range da.Idx {
			if da.Idx[j] != db.Idx[j] || da.Val[j] != db.Val[j] {
				t.Fatal("same seed produced different corpus (terms)")
			}
		}
	}
}

func TestVectorSizeStatsEmpty(t *testing.T) {
	st := VectorSizeStats(nil)
	if st.Mean != 0 || st.Max != 0 {
		t.Fatalf("stats of empty set = %+v", st)
	}
}

func TestDistinctTerms(t *testing.T) {
	a, _ := metric.NewSparseVector([]uint32{1, 2}, []float64{1, 1})
	b, _ := metric.NewSparseVector([]uint32{2, 3}, []float64{1, 1})
	if got := DistinctTerms([]metric.SparseVector{a, b}); got != 3 {
		t.Fatalf("distinct = %d, want 3", got)
	}
}

func TestDNA(t *testing.T) {
	seqs, fam, err := DNA(DNAConfig{N: 200, Length: 40, Families: 4, MutationRate: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 200 || len(fam) != 200 {
		t.Fatalf("lens = %d, %d", len(seqs), len(fam))
	}
	// Same-family sequences must be closer in edit distance.
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			d := metric.Edit(seqs[i], seqs[j])
			if fam[i] == fam[j] {
				same += d
				nSame++
			} else {
				cross += d
				nCross++
			}
		}
	}
	if nSame > 0 && nCross > 0 && same/float64(nSame) >= cross/float64(nCross) {
		t.Fatalf("family structure missing: same=%v cross=%v", same/float64(nSame), cross/float64(nCross))
	}
	if _, _, err := DNA(DNAConfig{N: 0, Length: 1, Families: 1}); err == nil {
		t.Fatal("expected error")
	}
	if _, _, err := DNA(DNAConfig{N: 1, Length: 1, Families: 1, MutationRate: 2}); err == nil {
		t.Fatal("expected error for bad rate")
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	cfg := CorpusConfig{Docs: 2000, Vocab: 20000, Topics: 20, TopicTerms: 100, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCorpus(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
