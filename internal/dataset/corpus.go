package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"landmarkdht/internal/metric"
)

// CorpusConfig parameterizes the synthetic substitute for the paper's
// TREC-1,2-AP corpus (§4.3). The defaults reproduce the corpus-level
// statistics the paper reports: 157,021 documents, 233,640 distinct
// terms, and the per-document vector-size distribution of Table 2.
type CorpusConfig struct {
	// Docs is the number of documents (paper: 157,021).
	Docs int
	// Vocab is the number of distinct terms (paper: 233,640).
	Vocab int
	// Topics is the number of latent topics documents cluster around
	// (the AP newswire is strongly topical; 100 mirrors the 50 TREC
	// query topics plus background diversity).
	Topics int
	// TopicTerms is the size of each topic's characteristic term
	// block.
	TopicTerms int
	// TopicMix is the fraction of a document's terms drawn from its
	// topic block (the rest are background Zipf terms).
	TopicMix float64
	// SizeMedian / SizeSigma parameterize the log-normal distinct-term
	// count per document; defaults are fitted to Table 2 (median 146,
	// 95th percentile 293).
	SizeMedian float64
	SizeSigma  float64
	// SizeMin / SizeMax clamp the vector size (Table 2: 1 and 676).
	SizeMin, SizeMax int
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultCorpusConfig returns the paper-scale configuration.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Docs:       157_021,
		Vocab:      233_640,
		Topics:     100,
		TopicTerms: 400,
		TopicMix:   0.6,
		SizeMedian: 146,
		SizeSigma:  0.423,
		SizeMin:    1,
		SizeMax:    676,
		Seed:       1,
	}
}

func (c *CorpusConfig) fillDefaults() {
	d := DefaultCorpusConfig()
	if c.Topics <= 0 {
		c.Topics = d.Topics
	}
	if c.TopicTerms <= 0 {
		c.TopicTerms = d.TopicTerms
	}
	if c.TopicMix <= 0 || c.TopicMix > 1 {
		c.TopicMix = d.TopicMix
	}
	if c.SizeMedian <= 0 {
		c.SizeMedian = d.SizeMedian
	}
	if c.SizeSigma <= 0 {
		c.SizeSigma = d.SizeSigma
	}
	if c.SizeMin <= 0 {
		c.SizeMin = d.SizeMin
	}
	if c.SizeMax <= 0 {
		c.SizeMax = d.SizeMax
	}
}

// Corpus is the generated document collection with TF/IDF weights.
type Corpus struct {
	cfg CorpusConfig
	// Docs are the TF/IDF-weighted document vectors.
	Docs []metric.SparseVector
	// Topic is the latent topic of each document.
	Topic []int
	// topicBlocks[t] is the start of topic t's term block.
	topicBlocks []uint32
	rngState    int64
}

// NewCorpus generates the corpus. Term occurrences follow a Zipf law
// over the vocabulary; each document additionally draws TopicMix of
// its terms from its topic's characteristic block, giving the corpus
// the clustered structure newswire text has. Weights are TF·IDF with
// IDF computed over the generated collection, matching the §4.3
// weighting scheme.
func NewCorpus(cfg CorpusConfig) (*Corpus, error) {
	if cfg.Docs <= 0 || cfg.Vocab <= 0 {
		return nil, fmt.Errorf("dataset: Docs and Vocab must be positive (got %d, %d)", cfg.Docs, cfg.Vocab)
	}
	cfg.fillDefaults()
	if cfg.Topics*cfg.TopicTerms > cfg.Vocab {
		return nil, fmt.Errorf("dataset: %d topics of %d terms exceed vocabulary %d",
			cfg.Topics, cfg.TopicTerms, cfg.Vocab)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.07, 1, uint64(cfg.Vocab-1))

	// Topic blocks occupy the mid-frequency region of the id space so
	// topical terms are neither stop-word-frequent nor hapax-rare.
	blocks := make([]uint32, cfg.Topics)
	blockRegion := cfg.Vocab / 4
	for t := range blocks {
		blocks[t] = uint32(blockRegion + t*cfg.TopicTerms)
	}

	type posting struct {
		idx []uint32
		tf  []float64
	}
	postings := make([]posting, cfg.Docs)
	topic := make([]int, cfg.Docs)
	df := make([]int32, cfg.Vocab)

	terms := make(map[uint32]float64, 256)
	for d := 0; d < cfg.Docs; d++ {
		t := rng.Intn(cfg.Topics)
		topic[d] = t
		size := docSize(rng, cfg)
		clear(terms)
		for len(terms) < size {
			var term uint32
			if rng.Float64() < cfg.TopicMix {
				term = blocks[t] + uint32(rng.Intn(cfg.TopicTerms))
			} else {
				term = uint32(zipf.Uint64())
			}
			// Term frequency: most terms appear once or twice; a few
			// repeat many times (geometric-ish tail).
			tf := 1 + math.Floor(rng.ExpFloat64()*1.5)
			terms[term] += tf
		}
		p := posting{idx: make([]uint32, 0, len(terms)), tf: make([]float64, 0, len(terms))}
		for term := range terms {
			p.idx = append(p.idx, term)
		}
		sort.Slice(p.idx, func(i, j int) bool { return p.idx[i] < p.idx[j] })
		for _, term := range p.idx {
			p.tf = append(p.tf, terms[term])
			df[term]++
		}
		postings[d] = p
	}

	// Apply IDF.
	n := float64(cfg.Docs)
	docs := make([]metric.SparseVector, cfg.Docs)
	for d, p := range postings {
		val := make([]float64, len(p.idx))
		for i, term := range p.idx {
			idf := math.Log(n / float64(1+df[term]))
			if idf < 0.01 {
				idf = 0.01 // ubiquitous terms keep a token weight
			}
			val[i] = p.tf[i] * idf
		}
		sv, err := metric.NewSparseVector(p.idx, val)
		if err != nil {
			return nil, err
		}
		docs[d] = sv
	}
	return &Corpus{cfg: cfg, Docs: docs, Topic: topic, topicBlocks: blocks, rngState: cfg.Seed}, nil
}

// docSize draws a Table 2 distinct-term count.
func docSize(rng *rand.Rand, cfg CorpusConfig) int {
	s := int(math.Round(cfg.SizeMedian * math.Exp(rng.NormFloat64()*cfg.SizeSigma)))
	if s < cfg.SizeMin {
		s = cfg.SizeMin
	}
	if s > cfg.SizeMax {
		s = cfg.SizeMax
	}
	return s
}

// Config returns the configuration the corpus was generated with.
func (c *Corpus) Config() CorpusConfig { return c.cfg }

// Queries generates query vectors in the style of the paper's TREC-3
// ad hoc topics: short term vectors (~3.5 unique terms on average)
// drawn from topic blocks, `topics` distinct queries each repeated
// `repeat` times (the paper repeats 50 topics to form 2000 queries).
// The returned slice has length topics*repeat; distinct queries come
// first in each repetition round-robin.
func (c *Corpus) Queries(topics, repeat int, seed int64) ([]metric.SparseVector, error) {
	if topics <= 0 || repeat <= 0 {
		return nil, fmt.Errorf("dataset: topics and repeat must be positive")
	}
	if topics > c.cfg.Topics {
		return nil, fmt.Errorf("dataset: %d query topics exceed corpus topics %d", topics, c.cfg.Topics)
	}
	rng := rand.New(rand.NewSource(seed))
	distinct := make([]metric.SparseVector, topics)
	for t := 0; t < topics; t++ {
		// 3 or 4 unique terms, averaging 3.5 (§4.3).
		nTerms := 3 + rng.Intn(2)
		idx := make([]uint32, 0, nTerms)
		val := make([]float64, 0, nTerms)
		seen := map[uint32]bool{}
		for len(idx) < nTerms {
			term := c.topicBlocks[t%c.cfg.Topics] + uint32(rng.Intn(c.cfg.TopicTerms))
			if seen[term] {
				continue
			}
			seen[term] = true
			idx = append(idx, term)
			val = append(val, 1)
		}
		sv, err := metric.NewSparseVector(idx, val)
		if err != nil {
			return nil, err
		}
		distinct[t] = sv
	}
	out := make([]metric.SparseVector, 0, topics*repeat)
	for r := 0; r < repeat; r++ {
		out = append(out, distinct...)
	}
	return out, nil
}

// SizeStats summarizes a document collection's vector sizes in the
// format of the paper's Table 2.
type SizeStats struct {
	Min, P5, P50, P95, Max int
	Mean                   float64
}

// VectorSizeStats computes Table 2 for a document set.
func VectorSizeStats(docs []metric.SparseVector) SizeStats {
	if len(docs) == 0 {
		return SizeStats{}
	}
	sizes := make([]int, len(docs))
	var sum int64
	for i, d := range docs {
		sizes[i] = d.NNZ()
		sum += int64(d.NNZ())
	}
	sort.Ints(sizes)
	pct := func(p float64) int {
		i := int(p * float64(len(sizes)-1))
		return sizes[i]
	}
	return SizeStats{
		Min:  sizes[0],
		P5:   pct(0.05),
		P50:  pct(0.50),
		P95:  pct(0.95),
		Max:  sizes[len(sizes)-1],
		Mean: float64(sum) / float64(len(sizes)),
	}
}

// DistinctTerms counts the number of distinct terms used across the
// collection (the paper reports 233,640).
func DistinctTerms(docs []metric.SparseVector) int {
	seen := make(map[uint32]struct{})
	for _, d := range docs {
		for _, idx := range d.Idx {
			seen[idx] = struct{}{}
		}
	}
	return len(seen)
}
