// Package wal is the durable-state substrate: a CRC-framed append-only
// record log plus an atomically replaced snapshot file, the two halves
// of the classic WAL + checkpoint design (DESIGN.md §14).
//
// The package is deliberately dumb about content: records are opaque
// byte payloads. The policy layers above it — core's walstore (index
// entries and region mutations) and netrt's disk dataset (the persisted
// corpus) — define their own record encodings. What this package owns
// is the failure model:
//
//   - A record is framed [u32 length | u32 CRC-32C | payload]. Appends
//     are sequential; a configurable fsync policy decides when the OS
//     is forced to make them durable.
//   - A crash can tear the *tail* of the log: recovery reads every
//     fully-valid record, then truncates the file at the first
//     incomplete frame so later appends continue from a clean boundary.
//     Torn tails are expected and silent — they are what SIGKILL
//     mid-append leaves behind.
//   - A CRC mismatch on a fully-present record is NOT a torn tail: it
//     is corruption (bit rot, a foreign file, a bug). Recovery fails
//     loudly with ErrCorrupt instead of skipping past it — silently
//     resuming from a log whose middle is garbage would serve wrong
//     answers with a straight face.
//
// The package never reads the wall clock: callers supply timestamps
// (snapshot stamps) explicitly, so a deterministic runtime can route
// them through its Clock seam and replay byte-identically.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// frameHeader is the per-record framing overhead: u32 payload length +
// u32 CRC-32C of the payload.
const frameHeader = 8

// MaxRecord bounds a single record's payload, mirroring the wire
// layer's MaxFramePayload guard: a corrupt length field can make
// recovery drop the tail, never allocate unbounded memory.
const MaxRecord = 1 << 26 // 64 MiB

// castagnoli is the CRC-32C table (the polynomial used by modern
// storage systems; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a CRC mismatch (or impossible length) on a record
// that is fully present in the file — mid-log corruption, as opposed to
// a torn tail. Callers must fail loudly: the log's contents after the
// bad record cannot be trusted.
var ErrCorrupt = errors.New("wal: corrupt record (CRC mismatch mid-log)")

// SyncPolicy says when Append forces the log to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — maximum durability, one
	// disk flush per record.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery appends (and on
	// Close/Compact). A crash can lose at most SyncEvery-1 records that
	// Append already acknowledged.
	SyncInterval
	// SyncNever leaves flushing entirely to the OS. Fastest; a crash
	// can lose anything since the last snapshot.
	SyncNever
)

// Options configures a Log or Store.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the append interval for SyncInterval (default 64).
	SyncEvery int
}

func (o *Options) fill() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
}

// Log is one CRC-framed append-only record file.
type Log struct {
	f        *os.File
	opts     Options
	pending  int   // appends since the last fsync
	size     int64 // current file size (append offset)
	replayed int   // records recovered by Open
}

// appendTo frames one record onto buf.
func appendRecord(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scan reads records from r until EOF. It returns the byte offset of
// the end of the last fully-valid record. A truncated frame at the end
// of the stream (header or payload cut short) stops the scan cleanly —
// the torn-tail case. A fully-present record whose CRC does not match,
// or whose declared length is impossible, returns ErrCorrupt.
func scan(r io.Reader, fn func(payload []byte) error) (valid int64, err error) {
	var hdr [frameHeader]byte
	var buf []byte
	for {
		n, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return valid, nil // clean end on a record boundary
		}
		if err != nil {
			// Partial header at EOF: torn tail.
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, nil
			}
			return valid, err
		}
		_ = n
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		if ln > MaxRecord {
			// An impossible length with more bytes behind it is
			// corruption; at the very tail it is indistinguishable from
			// a torn header, but trusting it would mean skipping real
			// data — fail loud either way.
			return valid, fmt.Errorf("%w: declared length %d", ErrCorrupt, ln)
		}
		if int(ln) > cap(buf) {
			buf = make([]byte, ln)
		}
		buf = buf[:ln]
		m, err := io.ReadFull(r, buf)
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || err == io.EOF {
				return valid, nil // payload cut short: torn tail
			}
			return valid, err
		}
		_ = m
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			// The frame is fully present but its bytes are wrong.
			return valid, ErrCorrupt
		}
		if fn != nil {
			if err := fn(buf); err != nil {
				return valid, err
			}
		}
		valid += frameHeader + int64(ln)
	}
}

// OpenLog opens (creating if absent) the log at path, replays every
// valid record through fn, truncates a torn tail, and positions the
// log for appends. Mid-log corruption returns ErrCorrupt and a nil
// Log. fn may be nil to skip replay contents.
func OpenLog(path string, opts Options, fn func(payload []byte) error) (*Log, error) {
	opts.fill()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, opts: opts}
	count := 0
	valid, err := scan(f, func(p []byte) error {
		count++
		if fn != nil {
			return fn(p)
		}
		return nil
	})
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, fmt.Errorf("wal: replay %s: %w", filepath.Base(path), err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() //lint:allow errdrop open failed after stat error; the stat error is the one reported
		return nil, err
	}
	if st.Size() > valid {
		// Torn tail: cut the file back to the last valid boundary so
		// the next append starts a clean frame.
		if err := f.Truncate(valid); err != nil {
			_ = f.Close() //lint:allow errdrop truncate failed; its error is the one reported
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", filepath.Base(path), err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() //lint:allow errdrop sync failed; its error is the one reported
			return nil, fmt.Errorf("wal: sync after tail truncation: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close() //lint:allow errdrop seek failed; its error is the one reported
		return nil, err
	}
	l.size = valid
	l.replayed = count
	return l, nil
}

// Replayed returns how many records Open recovered.
func (l *Log) Replayed() int { return l.replayed }

// Size returns the log's current byte size.
func (l *Log) Size() int64 { return l.size }

// Append frames and writes one record, applying the sync policy. The
// payload is copied into the file; the caller may reuse it.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	frame := appendRecord(nil, payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.pending++
	switch l.opts.Sync {
	case SyncAlways:
		return l.Sync()
	case SyncInterval:
		if l.pending >= l.opts.SyncEvery {
			return l.Sync()
		}
	}
	return nil
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.pending = 0
	return nil
}

// Reset truncates the log to empty (after a successful snapshot has
// captured its contents) and syncs the truncation.
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync after reset: %w", err)
	}
	l.size = 0
	l.pending = 0
	return nil
}

// Close syncs pending appends and closes the file.
func (l *Log) Close() error {
	err := l.Sync()
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
