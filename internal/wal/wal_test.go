package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, l *Log, p []byte) {
	t.Helper()
	if err := l.Append(p); err != nil {
		t.Fatalf("append: %v", err)
	}
}

func openReplay(t *testing.T, path string) (*Log, [][]byte) {
	t.Helper()
	var got [][]byte
	l, err := OpenLog(path, Options{Sync: SyncNever}, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l, got
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma"), bytes.Repeat([]byte{0xAB}, 4096)}

	l, err := OpenLog(path, Options{Sync: SyncAlways}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, r := range recs {
		mustAppend(t, l, r)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, got := openReplay(t, path)
	defer l2.Close()
	if l2.Replayed() != len(recs) {
		t.Fatalf("replayed %d records, want %d", l2.Replayed(), len(recs))
	}
	for i, r := range recs {
		if !bytes.Equal(got[i], r) {
			t.Fatalf("record %d: got %q want %q", i, got[i], r)
		}
	}

	// Appends after recovery continue the same file.
	mustAppend(t, l2, []byte("post-recovery"))
	if err := l2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l3, got3 := openReplay(t, path)
	defer l3.Close()
	if len(got3) != len(recs)+1 || !bytes.Equal(got3[len(recs)], []byte("post-recovery")) {
		t.Fatalf("after re-append: %d records", len(got3))
	}
}

// TestTornTailEveryOffset is the crash-recovery satellite: write a log
// of N records, then for EVERY byte offset inside the tail record's
// frame, truncate the file to that offset and assert recovery yields
// exactly the first N-1 records, truncates the file back to the valid
// boundary, and accepts further appends.
func TestTornTailEveryOffset(t *testing.T) {
	base := [][]byte{[]byte("first-record"), []byte("second"), []byte("the-third-one")}
	tail := []byte("tail-record-that-gets-torn")

	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	l, err := OpenLog(full, Options{Sync: SyncNever}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, r := range base {
		mustAppend(t, l, r)
	}
	validEnd := l.Size()
	mustAppend(t, l, tail)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := validEnd; cut < int64(len(data)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.log")
			if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l, got := openReplay(t, path)
			if int64(len(got)) != int64(len(base)) {
				t.Fatalf("recovered %d records, want %d", len(got), len(base))
			}
			for i, r := range base {
				if !bytes.Equal(got[i], r) {
					t.Fatalf("record %d mismatch after recovery", i)
				}
			}
			if l.Size() != validEnd {
				t.Fatalf("recovered size %d, want truncation to %d", l.Size(), validEnd)
			}
			// The file itself must be cut back so the next append
			// starts a clean frame.
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != validEnd {
				t.Fatalf("file size %d after recovery, want %d", st.Size(), validEnd)
			}
			mustAppend(t, l, []byte("replacement"))
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			l2, got2 := openReplay(t, path)
			defer l2.Close()
			if len(got2) != len(base)+1 || !bytes.Equal(got2[len(base)], []byte("replacement")) {
				t.Fatalf("re-append after torn-tail recovery: %d records", len(got2))
			}
		})
	}
}

// TestCorruptCRCMidLog is the fail-loud satellite: a CRC mismatch on a
// record that is NOT the torn tail must abort recovery with
// ErrCorrupt, never silently skip to later records.
func TestCorruptCRCMidLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, Options{Sync: SyncNever}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var offsets []int64
	for _, r := range [][]byte{[]byte("one"), []byte("two-two"), []byte("three-three-three")} {
		offsets = append(offsets, l.Size())
		mustAppend(t, l, r)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Flip one payload byte of the MIDDLE record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[1]+frameHeader] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed int
	_, err = OpenLog(path, Options{}, func([]byte) error { replayed++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open on corrupt mid-log record: err=%v, want ErrCorrupt", err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d records before failing, want 1 (never skip past corruption)", replayed)
	}
	// The file must not have been truncated or "repaired".
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(len(data)) {
		t.Fatalf("file rewritten on corruption: size %d want %d", st.Size(), len(data))
	}
}

// An impossible declared length mid-log is corruption too.
func TestCorruptLengthMidLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, Options{Sync: SyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, []byte("good"))
	off := l.Size()
	mustAppend(t, l, []byte("becomes-bad"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(data[off:off+4], MaxRecord+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenLog(path, Options{}, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("impossible length: err=%v, want ErrCorrupt", err)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, Options{Sync: SyncInterval, SyncEvery: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, []byte{byte(i)})
	}
	if l.pending != 1 { // 10 appends: syncs at 3, 6, 9
		t.Fatalf("pending=%d after 10 appends with SyncEvery=3, want 1", l.pending)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	open := func(wantSnap, wantLog [][]byte) *Store {
		t.Helper()
		var snap, log [][]byte
		s, err := OpenStore(dir, Options{Sync: SyncNever},
			func(p []byte) error { snap = append(snap, append([]byte(nil), p...)); return nil },
			func(p []byte) error { log = append(log, append([]byte(nil), p...)); return nil })
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		if len(snap) != len(wantSnap) || len(log) != len(wantLog) {
			t.Fatalf("recovered snap=%d log=%d records, want %d/%d", len(snap), len(log), len(wantSnap), len(wantLog))
		}
		for i := range wantSnap {
			if !bytes.Equal(snap[i], wantSnap[i]) {
				t.Fatalf("snapshot record %d mismatch", i)
			}
		}
		for i := range wantLog {
			if !bytes.Equal(log[i], wantLog[i]) {
				t.Fatalf("log record %d mismatch", i)
			}
		}
		return s
	}

	s := open(nil, nil)
	for _, r := range []string{"a", "b", "c"} {
		if err := s.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover log-only state, then compact it into a snapshot.
	s = open(nil, [][]byte{[]byte("a"), []byte("b"), []byte("c")})
	const stamp = 777
	err := s.Compact(stamp, func(emit func([]byte) error) error {
		for _, r := range []string{"ab", "c"} { // compacted form
			if err := emit([]byte(r)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got := s.Stats(); got.SnapshotStamp != stamp || got.LogBytes != 0 {
		t.Fatalf("post-compact stats: %+v", got)
	}
	if err := s.Append([]byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees snapshot records then post-compact log records.
	s = open([][]byte{[]byte("ab"), []byte("c")}, [][]byte{[]byte("d")})
	st := s.Stats()
	if st.SnapshotRecords != 2 || st.SnapshotStamp != stamp || st.LogRecords != 1 {
		t.Fatalf("stats after recovery: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// A crash between snapshot-temp write and rename must leave the old
// state intact: the .tmp file is ignored by recovery.
func TestStoreStrayTempSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap.dat.tmp"), []byte("garbage-partial-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	var log [][]byte
	s, err = OpenStore(dir, Options{}, nil, func(p []byte) error {
		log = append(log, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("open with stray tmp: %v", err)
	}
	defer s.Close()
	if len(log) != 1 || !bytes.Equal(log[0], []byte("kept")) {
		t.Fatalf("stray tmp disturbed recovery: %q", log)
	}
}

// A corrupt snapshot (installed file, not the tmp) must fail loudly —
// snapshots are atomically replaced, so damage there is never a torn
// tail.
func TestStoreCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(1, func(emit func([]byte) error) error {
		return emit([]byte("snapshot-record"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snap.dat")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, Options{}, nil, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err=%v, want ErrCorrupt", err)
	}
	// Truncated snapshot is also corruption (rename is atomic).
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, Options{}, nil, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated snapshot: err=%v, want ErrCorrupt", err)
	}
}
