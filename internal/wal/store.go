package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Store pairs a snapshot file with a record log in one directory:
//
//	<dir>/snap.dat   last compacted snapshot (atomically replaced)
//	<dir>/wal.log    records appended since that snapshot
//
// Recovery replays the snapshot, then the log. Compact writes a fresh
// snapshot (write-to-temp, fsync, rename, fsync directory) and only
// then truncates the log, so a crash at any instant leaves either the
// old snapshot + full log or the new snapshot + empty log — never a
// state that loses acknowledged records.
//
// The snapshot is itself a sequence of CRC-framed records, prefixed by
// a stamp record the Store writes internally. Because snapshots are
// replaced atomically, a torn or corrupt snapshot is never expected:
// any framing error there is reported as corruption, loudly.
type Store struct {
	dir  string
	log  *Log
	opts Options

	snapRecords int   // records in the current snapshot (excluding the stamp)
	snapStamp   int64 // caller-supplied stamp of the last Compact (0 if none)
}

const (
	snapName = "snap.dat"
	logName  = "wal.log"
)

// Stats describes what recovery found and when the store last
// compacted. SnapshotStamp is whatever the caller passed to Compact —
// typically a Clock reading — so "snapshot age" stays in the caller's
// time domain.
type Stats struct {
	LogRecords      int   // log records replayed by OpenStore
	SnapshotRecords int   // records in the recovered snapshot
	SnapshotStamp   int64 // stamp passed to the last Compact, 0 if never
	LogBytes        int64 // current log size
}

// OpenStore opens (creating if needed) the store directory and replays
// its state: every snapshot record through snap, then every log record
// through logFn. Either callback may be nil.
func OpenStore(dir string, opts Options, snap, logFn func(payload []byte) error) (*Store, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.replaySnapshot(snap); err != nil {
		return nil, err
	}
	l, err := OpenLog(filepath.Join(dir, logName), opts, logFn)
	if err != nil {
		return nil, err
	}
	s.log = l
	return s, nil
}

func (s *Store) replaySnapshot(fn func(payload []byte) error) error {
	f, err := os.Open(filepath.Join(s.dir, snapName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil // no snapshot yet
		}
		return err
	}
	defer closeRead(f)
	first := true
	count := 0
	end, err := scan(f, func(p []byte) error {
		if first {
			first = false
			if len(p) != 8 {
				return fmt.Errorf("%w: snapshot stamp record has %d bytes", ErrCorrupt, len(p))
			}
			s.snapStamp = int64(binary.LittleEndian.Uint64(p))
			return nil
		}
		count++
		if fn != nil {
			return fn(p)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal: snapshot %s: %w", snapName, err)
	}
	// Snapshots are installed by atomic rename, so unlike the log a
	// short tail is not a crash artifact — it is corruption.
	st, serr := f.Stat()
	if serr != nil {
		return serr
	}
	if st.Size() != end {
		return fmt.Errorf("wal: snapshot %s: %w: %d trailing bytes", snapName, ErrCorrupt, st.Size()-end)
	}
	if st.Size() > 0 && first {
		return fmt.Errorf("wal: snapshot %s: %w: missing stamp record", snapName, ErrCorrupt)
	}
	s.snapRecords = count
	return nil
}

// closeRead closes a file opened read-only; close errors on read-only
// files carry no durability information.
func closeRead(f *os.File) {
	_ = f.Close() //lint:allow errdrop read-only close has no durability effect
}

// Append adds one record to the log under the configured sync policy.
func (s *Store) Append(payload []byte) error { return s.log.Append(payload) }

// Sync forces any buffered log appends to stable storage.
func (s *Store) Sync() error { return s.log.Sync() }

// Stats reports recovery and compaction counters.
func (s *Store) Stats() Stats {
	return Stats{
		LogRecords:      s.log.Replayed(),
		SnapshotRecords: s.snapRecords,
		SnapshotStamp:   s.snapStamp,
		LogBytes:        s.log.Size(),
	}
}

// LogBytes reports the current log size; callers use it (or their own
// mutation counters) to decide when to Compact.
func (s *Store) LogBytes() int64 { return s.log.Size() }

// Compact writes a fresh snapshot and truncates the log. The write
// callback emits the full current state as records via emit; stamp is
// an opaque caller timestamp stored in the snapshot (reported by Stats
// after recovery). If writing or installing the snapshot fails, the
// log is left untouched and the store remains usable.
func (s *Store) Compact(stamp int64, write func(emit func(payload []byte) error) error) error {
	tmp := filepath.Join(s.dir, snapName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	count := 0
	var buf []byte
	emit := func(payload []byte) error {
		if len(payload) > MaxRecord {
			return fmt.Errorf("wal: snapshot record of %d bytes exceeds MaxRecord", len(payload))
		}
		buf = appendRecord(buf[:0], payload)
		if _, err := f.Write(buf); err != nil {
			return err
		}
		count++
		return nil
	}
	// Stamp record first, then the caller's state.
	var stampRec [8]byte
	binary.LittleEndian.PutUint64(stampRec[:], uint64(stamp))
	err = emit(stampRec[:])
	if err == nil {
		err = write(emit)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup of the temp snapshot; the write error is the one reported
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup of the temp snapshot; the rename error is the one reported
		return fmt.Errorf("wal: install snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.log.Reset(); err != nil {
		return err
	}
	s.snapRecords = count - 1 // minus the stamp record
	s.snapStamp = stamp
	return nil
}

// syncDir fsyncs a directory so a rename within it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	closeRead(d)
	if err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}

// Close syncs and closes the log.
func (s *Store) Close() error {
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// Remove deletes the store's files (snapshot, log, stray temp). Used
// by tests and by callers that discard state deliberately.
func Remove(dir string) error {
	var errs []error
	for _, name := range []string{snapName, snapName + ".tmp", logName} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
