//lint:file-allow nogoroutine per-trial parallelism: each goroutine drives its own independent engine

package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"landmarkdht/internal/core"
	"landmarkdht/internal/dataset"
	"landmarkdht/internal/eval"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/metric"
)

// parallelMap runs fn(0..n-1) across at most GOMAXPROCS goroutines and
// returns the first error.
func parallelMap(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	errs := make(chan error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// SynWorkload is the §4.2 synthetic dataset with its query set and
// ground truth.
type SynWorkload struct {
	Data    []metric.Vector
	Queries []metric.Vector
	Truth   [][]int32
	Space   metric.Space[metric.Vector]
}

// BuildSynthetic generates the Table 1 dataset (scaled), the query
// set, and exact ground truth.
func BuildSynthetic(scale Scale) (*SynWorkload, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cfg := dataset.ClusteredConfig{
		N: scale.DataN, Dim: scale.Dim, Lo: 0, Hi: 100,
		Clusters: 10, Dev: 20, Seed: scale.Seed,
	}
	data, distinct, err := dataset.ClusteredWithQueries(cfg, scale.DistinctQueries)
	if err != nil {
		return nil, err
	}
	truthD, err := eval.TopK(data, distinct, 10, metric.L2, 0)
	if err != nil {
		return nil, err
	}
	return &SynWorkload{
		Data:    data,
		Queries: RepeatQueries(distinct, scale.Queries),
		Truth:   ExpandTruth(truthD, scale.Queries),
		Space:   metric.EuclideanSpace("syn-l2", scale.Dim, 0, 100),
	}, nil
}

// synDeploy builds a deployment of one scheme over the synthetic
// workload.
func synDeploy(scale Scale, w *SynWorkload, sc Scheme, lb *core.LBConfig) (*Deployment[metric.Vector], error) {
	lms, _, err := SelectLandmarks(sc, w.Data, scale.LandmarkSample, metric.L2,
		landmark.DenseMean, scale.Seed+int64(sc.K)*101+int64(len(sc.Method)))
	if err != nil {
		return nil, err
	}
	return Deploy(DeploySpec[metric.Vector]{
		Scale:     scale,
		Space:     w.Space,
		Data:      w.Data,
		Queries:   w.Queries,
		Truth:     w.Truth,
		Landmarks: lms,
		Rotate:    true,
		LB:        lb,
	})
}

// Figure2 reproduces §4.2 Figure 2: recall and routing cost versus
// query range factor for the four landmark schemes, WITHOUT load
// balancing. One deployment per scheme is reused across range factors
// (the store is static without LB). Cells are ordered by scheme then
// range factor.
func Figure2(scale Scale) ([]Cell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	schemes := Figure2Schemes()
	rfs := RangeFactors()
	cells := make([]Cell, len(schemes)*len(rfs))
	err = parallelMap(len(schemes), func(si int) error {
		dep, err := synDeploy(scale, w, schemes[si], nil)
		if err != nil {
			return err
		}
		for ri, rf := range rfs {
			cell, err := dep.RunWorkload(schemes[si].Name(), rf, false)
			if err != nil {
				return err
			}
			cells[si*len(rfs)+ri] = cell
		}
		return nil
	})
	return cells, err
}

// Figure3 reproduces §4.2 Figure 3: the same sweep WITH dynamic load
// migration (δ = 0, P_l = 4, the paper's maximum-effect setting). Each
// cell runs in a fresh deployment so every range factor experiences
// the full migration churn.
func Figure3(scale Scale) ([]Cell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	schemes := Figure2Schemes()
	rfs := RangeFactors()
	type cellSpec struct {
		si, ri int
	}
	var specs []cellSpec
	for si := range schemes {
		for ri := range rfs {
			specs = append(specs, cellSpec{si, ri})
		}
	}
	cells := make([]Cell, len(specs))
	err = parallelMap(len(specs), func(i int) error {
		sp := specs[i]
		lb := core.LBConfig{Delta: 0, ProbeLevel: 4, Period: scale.LBPeriod}
		dep, err := synDeploy(scale, w, schemes[sp.si], &lb)
		if err != nil {
			return err
		}
		cell, err := dep.RunWorkload(schemes[sp.si].Name(), rfs[sp.ri], false)
		if err != nil {
			return err
		}
		cells[sp.si*len(rfs)+sp.ri] = cell
		return nil
	})
	return cells, err
}

// LoadCurve is one scheme's sorted (descending) per-node load
// distribution — the paper's Figure 4 / Figure 6 presentation.
type LoadCurve struct {
	Scheme string
	Loads  []int
	// Before is the distribution prior to load balancing.
	Before []int
}

// Figure4 reproduces §4.2 Figure 4: the load distribution on nodes for
// every scheme after the load-balancing workload.
func Figure4(scale Scale) ([]LoadCurve, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	schemes := Figure2Schemes()
	curves := make([]LoadCurve, len(schemes))
	err = parallelMap(len(schemes), func(si int) error {
		lb := core.LBConfig{Delta: 0, ProbeLevel: 4, Period: scale.LBPeriod}
		dep, err := synDeploy(scale, w, schemes[si], &lb)
		if err != nil {
			return err
		}
		before := dep.Loads()
		// Run the query workload at a representative range factor so
		// balancing happens under live traffic, then let it settle.
		if _, err := dep.RunWorkload(schemes[si].Name(), 0.05, false); err != nil {
			return err
		}
		dep.SettleLB(10 * scale.LBPeriod)
		curves[si] = LoadCurve{Scheme: schemes[si].Name(), Loads: dep.Loads(), Before: before}
		return nil
	})
	return curves, err
}

// Table2Stats bundles the §4.3 corpus statistics.
type Table2Stats struct {
	Stats         dataset.SizeStats
	Docs          int
	DistinctTerms int
}

// Table2 reproduces the paper's Table 2 (document vector size
// distribution) on the synthetic TREC-AP substitute.
func Table2(scale Scale) (*Table2Stats, error) {
	c, err := buildCorpus(scale)
	if err != nil {
		return nil, err
	}
	return &Table2Stats{
		Stats:         dataset.VectorSizeStats(c.corpus.Docs),
		Docs:          len(c.corpus.Docs),
		DistinctTerms: dataset.DistinctTerms(c.corpus.Docs),
	}, nil
}

// corpusWorkload is the §4.3 document workload.
type corpusWorkload struct {
	corpus  *dataset.Corpus
	queries []metric.SparseVector
	truth   [][]int32
	space   metric.Space[metric.SparseVector]
}

func buildCorpus(scale Scale) (*corpusWorkload, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	if scale.CorpusDocs <= 0 || scale.CorpusVocab <= 0 || scale.CorpusTopics <= 0 {
		return nil, fmt.Errorf("harness: corpus scale not configured")
	}
	// Scale the topic structure to the vocabulary: the corpus needs at
	// least as many topics as distinct query topics, with blocks small
	// enough to fit the mid-frequency region.
	topics := scale.CorpusTopics * 2
	if topics < 10 {
		topics = 10
	}
	topicTerms := scale.CorpusVocab / (8 * topics)
	if topicTerms > 400 {
		topicTerms = 400
	}
	if topicTerms < 10 {
		topicTerms = 10
	}
	c, err := dataset.NewCorpus(dataset.CorpusConfig{
		Docs: scale.CorpusDocs, Vocab: scale.CorpusVocab,
		Topics: topics, TopicTerms: topicTerms, Seed: scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	repeat := (scale.Queries + scale.CorpusTopics - 1) / scale.CorpusTopics
	qs, err := c.Queries(scale.CorpusTopics, repeat, scale.Seed+5)
	if err != nil {
		return nil, err
	}
	qs = qs[:scale.Queries]
	distinct := qs[:scale.CorpusTopics]
	truthD, err := eval.TopK(c.Docs, distinct, 10, metric.CosineAngle, 0)
	if err != nil {
		return nil, err
	}
	truth := make([][]int32, len(qs))
	for i := range qs {
		truth[i] = truthD[i%scale.CorpusTopics]
	}
	return &corpusWorkload{
		corpus:  c,
		queries: qs,
		truth:   truth,
		space:   metric.CosineSpace("trec-cos"),
	}, nil
}

// Figure5Schemes returns the two schemes of §4.3.
func Figure5Schemes() []Scheme {
	return []Scheme{{Greedy, 10}, {KMeans, 10}}
}

func corpusDeploy(scale Scale, w *corpusWorkload, sc Scheme, lb *core.LBConfig) (*Deployment[metric.SparseVector], error) {
	lms, sample, err := SelectLandmarks(sc, w.corpus.Docs, max(scale.LandmarkSample, 500), metric.CosineAngle,
		landmark.SparseMean, scale.Seed+int64(sc.K)*101+int64(len(sc.Method)))
	if err != nil {
		return nil, err
	}
	return Deploy(DeploySpec[metric.SparseVector]{
		Scale:          scale,
		Space:          w.space,
		Data:           w.corpus.Docs,
		Queries:        w.queries,
		Truth:          w.truth,
		Landmarks:      lms,
		BoundarySample: sample, // §4.3: boundary from the selection procedure
		Rotate:         true,
		LB:             lb,
		MaxDist:        w.space.Max,
	})
}

// Figure5 reproduces §4.3 Figure 5: recall and routing cost on the
// TREC-AP substitute, Greedy-10 vs K-mean-10, with load balancing.
func Figure5(scale Scale) ([]Cell, error) {
	w, err := buildCorpus(scale)
	if err != nil {
		return nil, err
	}
	schemes := Figure5Schemes()
	rfs := RangeFactors()
	type cellSpec struct{ si, ri int }
	var specs []cellSpec
	for si := range schemes {
		for ri := range rfs {
			specs = append(specs, cellSpec{si, ri})
		}
	}
	cells := make([]Cell, len(specs))
	err = parallelMap(len(specs), func(i int) error {
		sp := specs[i]
		lb := core.LBConfig{Delta: 0, ProbeLevel: 4, Period: scale.LBPeriod}
		dep, err := corpusDeploy(scale, w, schemes[sp.si], &lb)
		if err != nil {
			return err
		}
		cell, err := dep.RunWorkload(schemes[sp.si].Name(), rfs[sp.ri], false)
		if err != nil {
			return err
		}
		cells[sp.si*len(rfs)+sp.ri] = cell
		return nil
	})
	return cells, err
}

// Figure6 reproduces §4.3 Figure 6: the load distribution on the
// TREC-AP substitute with load balancing. The paper's observation:
// greedy's single-key pile-ups cannot be split, so its distribution
// stays skewed; k-means spreads far more evenly.
func Figure6(scale Scale) ([]LoadCurve, error) {
	w, err := buildCorpus(scale)
	if err != nil {
		return nil, err
	}
	schemes := Figure5Schemes()
	curves := make([]LoadCurve, len(schemes))
	err = parallelMap(len(schemes), func(si int) error {
		lb := core.LBConfig{Delta: 0, ProbeLevel: 4, Period: scale.LBPeriod}
		dep, err := corpusDeploy(scale, w, schemes[si], &lb)
		if err != nil {
			return err
		}
		before := dep.Loads()
		if _, err := dep.RunWorkload(schemes[si].Name(), 0.05, false); err != nil {
			return err
		}
		dep.SettleLB(10 * scale.LBPeriod)
		curves[si] = LoadCurve{Scheme: schemes[si].Name(), Loads: dep.Loads(), Before: before}
		return nil
	})
	return curves, err
}

// SortCells orders cells by scheme then range factor for stable
// presentation.
func SortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Scheme != cells[j].Scheme {
			return cells[i].Scheme < cells[j].Scheme
		}
		return cells[i].RangeFactor < cells[j].RangeFactor
	})
}
