package harness

import (
	"math/rand"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/core"
	"landmarkdht/internal/eval"
	"landmarkdht/internal/indexspace"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/metric"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
)

// RotationResult compares multi-index hotspot overlap with and without
// the §3.4 space-mapping rotation. CombinedMax is the heaviest
// combined (all-schemes) load on any single node; without rotation the
// schemes' hotspots coincide and pile onto the same nodes.
type RotationResult struct {
	Rotated      bool
	NumIndexes   int
	CombinedMax  int
	CombinedGini float64
	// SameHottest reports whether every index scheme's hottest node is
	// the same physical node.
	SameHottest bool
}

// AblationRotation deploys several identically distributed index
// schemes on one overlay, once without rotation and once with, and
// reports the combined load concentration (DESIGN.md ablation A1).
func AblationRotation(scale Scale, numIndexes int) ([]RotationResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	if numIndexes <= 0 {
		numIndexes = 3
	}
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	var out []RotationResult
	for _, rotate := range []bool{false, true} {
		eng := sim.NewEngine(scale.Seed)
		model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{N: scale.Nodes, Seed: scale.Seed})
		if err != nil {
			return nil, err
		}
		sys := core.NewSystem(eng, model, core.DefaultConfig())
		rng := rand.New(rand.NewSource(scale.Seed + 7))
		used := map[chord.ID]bool{}
		for i := 0; i < scale.Nodes; i++ {
			id := chord.ID(rng.Uint64())
			for used[id] {
				id = chord.ID(rng.Uint64())
			}
			used[id] = true
			if _, err := sys.AddNode(id, i); err != nil {
				return nil, err
			}
		}
		sys.Stabilize()

		names := make([]string, numIndexes)
		for idx := 0; idx < numIndexes; idx++ {
			space := w.Space
			space.Name = space.Name + string(rune('a'+idx))
			names[idx] = space.Name
			lms, _, err := SelectLandmarks(Scheme{KMeans, 5}, w.Data, scale.LandmarkSample,
				metric.L2, landmark.DenseMean, scale.Seed+int64(idx))
			if err != nil {
				return nil, err
			}
			emb, err := indexspace.New(space, lms)
			if err != nil {
				return nil, err
			}
			part, err := emb.Partitioner(rotate)
			if err != nil {
				return nil, err
			}
			data := w.Data
			ix := &core.Index{
				Name: space.Name,
				Part: part,
				Dist: func(p any, o core.ObjectID) float64 {
					return metric.L2(p.(metric.Vector), data[o])
				},
			}
			if err := sys.DeployIndex(ix); err != nil {
				return nil, err
			}
			rows, _ := emb.MapBatch(data, nil)
			entries := make([]core.Entry, len(data))
			for i := range data {
				entries[i] = core.Entry{Obj: core.ObjectID(i), Point: rows[i]}
			}
			if err := sys.BulkLoad(ix.Name, entries); err != nil {
				return nil, err
			}
		}
		loads := sys.Loads()
		res := RotationResult{
			Rotated:      rotate,
			NumIndexes:   numIndexes,
			CombinedMax:  loads[0],
			CombinedGini: eval.Gini(loads),
			SameHottest:  true,
		}
		var firstHot chord.ID
		for i, name := range names {
			var hot chord.ID
			best := -1
			for _, in := range sys.Nodes() {
				if l := in.LoadFor(name); l > best {
					hot, best = in.ID(), l
				}
			}
			if i == 0 {
				firstHot = hot
			} else if hot != firstHot {
				res.SameHottest = false
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationNaive compares the embedded-tree router against the §3.3
// naive per-node decomposition across range factors (ablation A2).
// Cells alternate: tree then naive per range factor.
func AblationNaive(scale Scale) ([]Cell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	sc := Scheme{KMeans, 10}
	rfs := RangeFactors()
	cells := make([]Cell, 2*len(rfs))
	err = parallelMap(2, func(mode int) error {
		dep, err := synDeploy(scale, w, sc, nil)
		if err != nil {
			return err
		}
		naive := mode == 1
		label := "tree"
		if naive {
			label = "naive"
		}
		for ri, rf := range rfs {
			cell, err := dep.RunWorkload(label, rf, naive)
			if err != nil {
				return err
			}
			cells[mode*len(rfs)+ri] = cell
		}
		return nil
	})
	return cells, err
}

// LBSweepCell is one (δ, P_l) configuration's outcome (ablation A3).
type LBSweepCell struct {
	Delta      float64
	ProbeLevel int
	Cell       Cell
}

// AblationLB sweeps the load-balancing knobs: the threshold factor δ
// and the probing level P_l control the tradeoff between balance
// quality and routing cost (§3.4).
func AblationLB(scale Scale) ([]LBSweepCell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	deltas := []float64{0, 0.5, 2}
	probes := []int{1, 2, 4}
	var specs []LBSweepCell
	for _, d := range deltas {
		for _, p := range probes {
			specs = append(specs, LBSweepCell{Delta: d, ProbeLevel: p})
		}
	}
	err = parallelMap(len(specs), func(i int) error {
		lb := core.LBConfig{Delta: specs[i].Delta, ProbeLevel: specs[i].ProbeLevel, Period: scale.LBPeriod}
		dep, err := synDeploy(scale, w, Scheme{KMeans, 10}, &lb)
		if err != nil {
			return err
		}
		cell, err := dep.RunWorkload("K-mean-10", 0.05, false)
		if err != nil {
			return err
		}
		specs[i].Cell = cell
		return nil
	})
	return specs, err
}

// AblationK sweeps the landmark count (§3.1 "number of landmarks"):
// too few landmarks filter poorly (large candidate sets), too many
// blow up the index-space dimensionality (ablation A4).
func AblationK(scale Scale) ([]Cell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	ks := []int{2, 5, 10, 15, 20}
	cells := make([]Cell, len(ks))
	err = parallelMap(len(ks), func(i int) error {
		dep, err := synDeploy(scale, w, Scheme{KMeans, ks[i]}, nil)
		if err != nil {
			return err
		}
		cell, err := dep.RunWorkload(Scheme{KMeans, ks[i]}.Name(), 0.02, false)
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	return cells, err
}

// AblationPNS compares lookup/query latency with and without proximity
// neighbor selection (ablation A5). Cells: PNS on, then off.
func AblationPNS(scale Scale) ([]Cell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, 2)
	err = parallelMap(2, func(mode int) error {
		lms, _, err := SelectLandmarks(Scheme{KMeans, 10}, w.Data, scale.LandmarkSample,
			metric.L2, landmark.DenseMean, scale.Seed)
		if err != nil {
			return err
		}
		spec := DeploySpec[metric.Vector]{
			Scale:      scale,
			Space:      w.Space,
			Data:       w.Data,
			Queries:    w.Queries,
			Truth:      w.Truth,
			Landmarks:  lms,
			Rotate:     true,
			DisablePNS: mode == 1,
		}
		dep, err := Deploy(spec)
		if err != nil {
			return err
		}
		label := "PNS-on"
		if mode == 1 {
			label = "PNS-off"
		}
		cell, err := dep.RunWorkload(label, 0.02, false)
		if err != nil {
			return err
		}
		cells[mode] = cell
		return nil
	})
	return cells, err
}
