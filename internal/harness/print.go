package harness

import (
	"fmt"
	"io"
	"strings"

	"landmarkdht/internal/dataset"
)

// PrintCells renders a figure's cells as an aligned text table with
// the paper's metrics as columns.
func PrintCells(w io.Writer, title string, cells []Cell) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-12s %8s %8s %6s %10s %10s %9s %11s %11s %7s\n",
		"scheme", "range%", "recall", "hops", "resp(ms)", "maxlat(ms)", "qmsgs", "qbytes", "rbytes", "nodes")
	for _, c := range cells {
		fmt.Fprintf(w, "%-12s %8.2f %8.3f %6.1f %10.1f %10.1f %9.1f %11.0f %11.0f %7.1f\n",
			c.Scheme, c.RangeFactor*100, c.Recall, c.Hops.Mean,
			c.RespMs.Mean, c.MaxLatMs.Mean, c.QueryMsgs.Mean,
			c.QueryBytes.Mean, c.ResultBytes.Mean, c.IndexNodes.Mean)
	}
	fmt.Fprintln(w)
}

// PrintCellsWithLB adds the load-balancing columns.
func PrintCellsWithLB(w io.Writer, title string, cells []Cell) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-12s %8s %8s %6s %10s %10s %9s %9s %8s %8s %8s\n",
		"scheme", "range%", "recall", "hops", "resp(ms)", "maxlat(ms)", "qmsgs", "migr", "aborted", "maxload", "gini")
	for _, c := range cells {
		fmt.Fprintf(w, "%-12s %8.2f %8.3f %6.1f %10.1f %10.1f %9.1f %9d %8d %8d %8.3f\n",
			c.Scheme, c.RangeFactor*100, c.Recall, c.Hops.Mean,
			c.RespMs.Mean, c.MaxLatMs.Mean, c.QueryMsgs.Mean,
			c.Migrations, c.MigrationsAborted, c.MaxLoad, c.LoadGini)
	}
	fmt.Fprintln(w)
}

// PrintLoadCurves renders load distributions: a few representative
// points of each curve (the paper plots sorted per-node loads).
func PrintLoadCurves(w io.Writer, title string, curves []LoadCurve) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-12s %9s %9s %9s %9s %9s %9s %9s\n",
		"scheme", "max", "p99", "p90", "p50", "p10", "min", "before-max")
	for _, c := range curves {
		pick := func(loads []int, frac float64) int {
			if len(loads) == 0 {
				return 0
			}
			i := int(frac * float64(len(loads)-1))
			return loads[i]
		}
		bm := 0
		if len(c.Before) > 0 {
			bm = c.Before[0]
		}
		fmt.Fprintf(w, "%-12s %9d %9d %9d %9d %9d %9d %9d\n",
			c.Scheme, pick(c.Loads, 0), pick(c.Loads, 0.01), pick(c.Loads, 0.10),
			pick(c.Loads, 0.50), pick(c.Loads, 0.90), pick(c.Loads, 1), bm)
	}
	fmt.Fprintln(w)
}

// PrintTable1 echoes the §4.2 dataset generation parameters.
func PrintTable1(w io.Writer, cfg dataset.ClusteredConfig) {
	fmt.Fprintln(w, "== Table 1: Parameters for Datasets Generation ==")
	fmt.Fprintf(w, "%-28s %d\n", "Number of objects", cfg.N)
	fmt.Fprintf(w, "%-28s %d\n", "Dimension", cfg.Dim)
	fmt.Fprintf(w, "%-28s [%g..%g]\n", "Range of each dimension", cfg.Lo, cfg.Hi)
	fmt.Fprintf(w, "%-28s %d\n", "Number of clusters", cfg.Clusters)
	fmt.Fprintf(w, "%-28s %g\n", "Deviation of each cluster", cfg.Dev)
	fmt.Fprintln(w)
}

// PrintTable2 renders the §4.3 document vector size distribution.
func PrintTable2(w io.Writer, st *Table2Stats) {
	fmt.Fprintln(w, "== Table 2: The Distribution of Doc Vector Sizes ==")
	fmt.Fprintf(w, "%-9s %6s %6s %6s %8s %8s\n", "minimum", "5th", "50th", "95th", "maximum", "mean")
	fmt.Fprintf(w, "%-9d %6d %6d %6d %8d %8.1f\n",
		st.Stats.Min, st.Stats.P5, st.Stats.P50, st.Stats.P95, st.Stats.Max, st.Stats.Mean)
	fmt.Fprintf(w, "documents: %d   distinct terms: %d\n\n", st.Docs, st.DistinctTerms)
}

// PrintRotation renders ablation A1.
func PrintRotation(w io.Writer, results []RotationResult) {
	fmt.Fprintln(w, "== Ablation A1: space-mapping rotation (multi-index hotspots) ==")
	fmt.Fprintf(w, "%-10s %8s %12s %14s %12s\n", "rotation", "indexes", "combined-max", "combined-gini", "same-hottest")
	for _, r := range results {
		fmt.Fprintf(w, "%-10t %8d %12d %14.3f %12t\n",
			r.Rotated, r.NumIndexes, r.CombinedMax, r.CombinedGini, r.SameHottest)
	}
	fmt.Fprintln(w)
}

// PrintLBSweep renders ablation A3.
func PrintLBSweep(w io.Writer, cells []LBSweepCell) {
	fmt.Fprintln(w, "== Ablation A3: load-balancing knobs (δ, P_l) ==")
	fmt.Fprintf(w, "%-6s %6s %8s %8s %6s %9s %8s %8s\n",
		"delta", "probe", "recall", "gini", "hops", "migr", "aborted", "maxload")
	for _, c := range cells {
		fmt.Fprintf(w, "%-6.2f %6d %8.3f %8.3f %6.1f %9d %8d %8d\n",
			c.Delta, c.ProbeLevel, c.Cell.Recall, c.Cell.LoadGini, c.Cell.Hops.Mean,
			c.Cell.Migrations, c.Cell.MigrationsAborted, c.Cell.MaxLoad)
	}
	fmt.Fprintln(w)
}

// PrintChurn renders ablation A6.
func PrintChurn(w io.Writer, cells []ChurnCell) {
	fmt.Fprintln(w, "== Ablation A6: continuous node churn (K-mean-10, range factor 5%) ==")
	fmt.Fprintf(w, "%-14s %8s %6s %6s %9s %8s %8s %6s\n",
		"mean-session", "recall", "crash", "join", "lost", "dropped", "resp(ms)", "hops")
	for _, c := range cells {
		label := "none"
		if c.MeanSessionTime > 0 {
			label = c.MeanSessionTime.String()
		}
		fmt.Fprintf(w, "%-14s %8.3f %6d %6d %9d %8d %8.1f %6.1f\n",
			label, c.Cell.Recall, c.Crashes, c.Joins, c.LostEntries,
			c.Cell.Dropped, c.Cell.RespMs.Mean, c.Cell.Hops.Mean)
	}
	fmt.Fprintln(w)
}

// PrintFaults renders ablation A7.
func PrintFaults(w io.Writer, cells []FaultCell) {
	fmt.Fprintln(w, "== Ablation A9: injected message loss, fire-and-forget vs retries (K-mean-10, range factor 5%) ==")
	fmt.Fprintf(w, "%-6s %7s %7s %8s %8s %8s %9s %9s %6s\n",
		"loss%", "retry", "crashes", "recall", "dropped", "retrans", "recovered", "resp(ms)", "hops")
	for _, c := range cells {
		fmt.Fprintf(w, "%-6.1f %7t %7d %8.3f %8d %8d %9d %9.1f %6.1f\n",
			c.Loss*100, c.Retry, c.Crashes, c.Cell.Recall, c.Cell.Dropped,
			c.Cell.Retries, c.Cell.Recovered, c.Cell.RespMs.Mean, c.Cell.Hops.Mean)
	}
	fmt.Fprintln(w)
}

// RenderCells renders cells to a string (convenience for tests and
// EXPERIMENTS.md generation).
func RenderCells(title string, cells []Cell) string {
	var b strings.Builder
	PrintCells(&b, title, cells)
	return b.String()
}
