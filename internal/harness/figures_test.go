package harness

import (
	"testing"
)

func TestFigure3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 30
	scale.DistinctQueries = 10
	cells, err := Figure3(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4*len(RangeFactors()) {
		t.Fatalf("cells = %d", len(cells))
	}
	migrated := false
	for _, c := range cells {
		if c.Migrations > 0 {
			migrated = true
		}
		if c.Recall < 0 || c.Recall > 1 {
			t.Fatalf("recall = %v", c.Recall)
		}
	}
	if !migrated {
		t.Fatal("no cell migrated under δ=0")
	}
}

func TestFigure5Small(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 30
	cells, err := Figure5(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*len(RangeFactors()) {
		t.Fatalf("cells = %d", len(cells))
	}
	// Both schemes present.
	schemes := map[string]bool{}
	for _, c := range cells {
		schemes[c.Scheme] = true
	}
	if !schemes["Greedy-10"] || !schemes["K-mean-10"] {
		t.Fatalf("schemes = %v", schemes)
	}
}

func TestFigure6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 20
	curves, err := Figure6(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	var greedy, kmean LoadCurve
	for _, c := range curves {
		switch c.Scheme {
		case "Greedy-10":
			greedy = c
		case "K-mean-10":
			kmean = c
		}
	}
	// The §4.3 signature: greedy's load stays far more concentrated
	// than k-means' even after balancing.
	if len(greedy.Loads) == 0 || len(kmean.Loads) == 0 {
		t.Fatal("empty curves")
	}
	if greedy.Loads[0] <= kmean.Loads[0] {
		t.Logf("note: greedy max %d vs kmean max %d (tiny scale can soften the contrast)",
			greedy.Loads[0], kmean.Loads[0])
	}
}

func TestAblationNaiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 30
	scale.DistinctQueries = 10
	cells, err := AblationNaive(scale)
	if err != nil {
		t.Fatal(err)
	}
	half := len(cells) / 2
	// At the largest range factor naive must cost more messages.
	tree, naive := cells[half-1], cells[len(cells)-1]
	if tree.Scheme != "tree" || naive.Scheme != "naive" {
		t.Fatalf("labels: %q %q", tree.Scheme, naive.Scheme)
	}
	if naive.QueryMsgs.Mean <= tree.QueryMsgs.Mean {
		t.Fatalf("naive (%v msgs) not costlier than tree (%v) at rf=20%%",
			naive.QueryMsgs.Mean, tree.QueryMsgs.Mean)
	}
	// Identical recall: the two routers return the same results.
	if naive.Recall != tree.Recall {
		t.Fatalf("recall differs: naive %v vs tree %v", naive.Recall, tree.Recall)
	}
}

func TestAblationLBSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 20
	cells, err := AblationLB(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells = %d", len(cells))
	}
	// δ=0/P=4 must balance at least as well as δ=2/P=1.
	var tight, loose LBSweepCell
	for _, c := range cells {
		if c.Delta == 0 && c.ProbeLevel == 4 {
			tight = c
		}
		if c.Delta == 2 && c.ProbeLevel == 1 {
			loose = c
		}
	}
	if tight.Cell.LoadGini > loose.Cell.LoadGini+0.05 {
		t.Fatalf("tight LB gini %v worse than loose %v", tight.Cell.LoadGini, loose.Cell.LoadGini)
	}
}

func TestAblationKSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 20
	cells, err := AblationK(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Per-subquery bytes grow with k (4k bytes of ranges per subquery).
	if cells[0].QueryBytes.Mean/cells[0].QueryMsgs.Mean >=
		cells[len(cells)-1].QueryBytes.Mean/cells[len(cells)-1].QueryMsgs.Mean {
		t.Fatal("per-message bytes did not grow with landmark count")
	}
}

func TestAblationPNSSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 40
	cells, err := AblationPNS(scale)
	if err != nil {
		t.Fatal(err)
	}
	on, off := cells[0], cells[1]
	if on.Scheme != "PNS-on" || off.Scheme != "PNS-off" {
		t.Fatalf("labels: %q %q", on.Scheme, off.Scheme)
	}
	// Identical recall (PNS only changes which physical routes are
	// taken), and PNS should not be slower on average.
	if on.Recall != off.Recall {
		t.Fatalf("recall differs: %v vs %v", on.Recall, off.Recall)
	}
	if on.RespMs.Mean > off.RespMs.Mean*1.1 {
		t.Fatalf("PNS slower: %v vs %v ms", on.RespMs.Mean, off.RespMs.Mean)
	}
}

func TestTable2Scaling(t *testing.T) {
	scale := tinyScale()
	st, err := Table2(scale)
	if err != nil {
		t.Fatal(err)
	}
	if st.DistinctTerms <= 0 || st.DistinctTerms > scale.CorpusVocab {
		t.Fatalf("distinct terms = %d", st.DistinctTerms)
	}
}

func TestBuildCorpusValidation(t *testing.T) {
	scale := tinyScale()
	scale.CorpusDocs = 0
	if _, err := buildCorpus(scale); err == nil {
		t.Fatal("expected error for zero docs")
	}
}

func TestAblationMapping(t *testing.T) {
	scale := tinyScale()
	cells, err := AblationMapping(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Candidates identical across mappings at the same k (sanity).
	if cells[0].Candidates.Mean != cells[1].Candidates.Mean {
		t.Fatalf("candidate sets differ across mappings: %v vs %v",
			cells[0].Candidates.Mean, cells[1].Candidates.Mean)
	}
	// Hilbert must not be worse than Morton on node spread at k=5
	// (the regime where curve quality matters).
	if cells[1].Mapping != "hilbert" || cells[0].Mapping != "kd-morton" {
		t.Fatalf("ordering: %v %v", cells[0].Mapping, cells[1].Mapping)
	}
	if cells[1].NodesTouched.Mean > cells[0].NodesTouched.Mean*1.05 {
		t.Fatalf("hilbert touched more nodes: %v vs %v",
			cells[1].NodesTouched.Mean, cells[0].NodesTouched.Mean)
	}
}
