package harness

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the machine-readable form of an experiment's output,
// suitable for archiving runs and diffing reproduction results across
// versions.
type Report struct {
	// Experiment is the experiment id ("fig2", "table2", …).
	Experiment string `json:"experiment"`
	// Scale records the configuration the experiment ran at.
	Scale Scale `json:"scale"`
	// Cells, Curves, Churn, LBSweep, Rotation and Table2 carry the
	// experiment's data series; only the relevant ones are set.
	Cells    []Cell           `json:"cells,omitempty"`
	Curves   []LoadCurve      `json:"curves,omitempty"`
	Churn    []ChurnCell      `json:"churn,omitempty"`
	Faults   []FaultCell      `json:"faults,omitempty"`
	LBSweep  []LBSweepCell    `json:"lb_sweep,omitempty"`
	Rotation []RotationResult `json:"rotation,omitempty"`
	Table2   *Table2Stats     `json:"table2,omitempty"`
	Mapping  []MappingCell    `json:"mapping,omitempty"`
	Trial    []TrialCell      `json:"trials,omitempty"`
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("harness: encoding report: %w", err)
	}
	return nil
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("harness: decoding report: %w", err)
	}
	return &r, nil
}
