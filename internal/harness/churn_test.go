package harness

import "testing"

func TestAblationChurnSmall(t *testing.T) {
	scale := tinyScale()
	scale.Queries = 60
	cells, err := AblationChurn(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	base := cells[0]
	if base.Crashes != 0 || base.MeanSessionTime != 0 {
		t.Fatal("baseline row must have no churn")
	}
	harshest := cells[len(cells)-1]
	if harshest.Crashes == 0 {
		t.Fatal("harshest churn produced no crashes")
	}
	// Churn cannot improve recall.
	if harshest.Cell.Recall > base.Cell.Recall+1e-9 {
		t.Fatalf("churn improved recall: %.3f > %.3f", harshest.Cell.Recall, base.Cell.Recall)
	}
	for _, c := range cells {
		t.Logf("session=%v crashes=%d joins=%d lost=%d recall=%.3f dropped=%d",
			c.MeanSessionTime, c.Crashes, c.Joins, c.LostEntries, c.Cell.Recall, c.Cell.Dropped)
	}
}
