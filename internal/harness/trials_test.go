package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTrialsAggregation(t *testing.T) {
	// A synthetic experiment whose cells depend on the seed.
	fake := func(s Scale) ([]Cell, error) {
		v := float64(s.Seed)
		return []Cell{
			{Scheme: "A", RangeFactor: 0.1, Recall: v},
			{Scheme: "B", RangeFactor: 0.1, Recall: 2 * v},
		}, nil
	}
	scale := tinyScale()
	scale.Seed = 1
	cells, err := Trials(scale, 3, fake) // seeds 1,2,3 → A: 1,2,3; B: 2,4,6
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	a := cells[0]
	if a.Scheme != "A" || a.Trials != 3 {
		t.Fatalf("cell A = %+v", a)
	}
	if a.RecallMean != 2 {
		t.Fatalf("A mean = %v, want 2", a.RecallMean)
	}
	if a.RecallStd != 1 {
		t.Fatalf("A std = %v, want 1", a.RecallStd)
	}
	b := cells[1]
	if b.RecallMean != 4 || b.RecallStd != 2 {
		t.Fatalf("B = %+v", b)
	}
}

func TestTrialsValidation(t *testing.T) {
	if _, err := Trials(tinyScale(), 0, nil); err == nil {
		t.Fatal("expected error for zero trials")
	}
}

func TestTrialsSingleTrialZeroStd(t *testing.T) {
	fake := func(s Scale) ([]Cell, error) {
		return []Cell{{Scheme: "X", RangeFactor: 0.5, Recall: 7}}, nil
	}
	cells, err := Trials(tinyScale(), 1, fake)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].RecallStd != 0 || cells[0].RecallMean != 7 {
		t.Fatalf("cell = %+v", cells[0])
	}
}

func TestTrialsRealExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 30
	scale.DistinctQueries = 10
	cells, err := Trials(scale, 2, AblationK)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Trials != 2 {
			t.Fatalf("trials = %d", c.Trials)
		}
		if c.RecallMean < 0 || c.RecallMean > 1 {
			t.Fatalf("recall mean = %v", c.RecallMean)
		}
	}
}

func TestPrintTrials(t *testing.T) {
	var b bytes.Buffer
	PrintTrials(&b, "test", []TrialCell{
		{Scheme: "A", RangeFactor: 0.05, Trials: 3, RecallMean: 0.5, RecallStd: 0.1},
	})
	out := b.String()
	if !strings.Contains(out, "0.500 ± 0.100") {
		t.Fatalf("output missing mean±std: %s", out)
	}
	if !strings.Contains(out, "3 trials") {
		t.Fatalf("output missing trial count: %s", out)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Experiment: "fig2",
		Scale:      tinyScale(),
		Cells: []Cell{
			{Scheme: "K-mean-10", RangeFactor: 0.05, Recall: 0.93},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "fig2" || len(got.Cells) != 1 {
		t.Fatalf("report = %+v", got)
	}
	if got.Cells[0].Recall != 0.93 || got.Cells[0].Scheme != "K-mean-10" {
		t.Fatalf("cell = %+v", got.Cells[0])
	}
	if got.Scale.Nodes != 48 {
		t.Fatalf("scale = %+v", got.Scale)
	}
}

func TestReadReportError(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
}
