package harness

import (
	"fmt"
	"io"
	"sort"

	"landmarkdht/internal/eval"
	"landmarkdht/internal/hilbert"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/metric"
)

// MappingCell compares one space-filling-curve mapping of the landmark
// index space (ablation A7, motivated by the paper's §5 comparison
// with SCRAP's Hilbert mapping): how many nodes a range query's
// candidate set spreads over, and how contiguous the candidates' keys
// are.
type MappingCell struct {
	Mapping string // "kd-morton" (the paper's Algorithm 2 order) or "hilbert"
	K       int    // landmarks / dimensions
	// NodesTouched is the per-query distribution of distinct nodes
	// holding candidate objects.
	NodesTouched eval.Summary
	// KeyRuns is the per-query count of contiguous key intervals the
	// candidates occupy when node ranges are ~2^64/N wide (measured as
	// runs after bucketing keys by node ownership order).
	KeyRuns eval.Summary
	// Candidates is the per-query candidate-set size (identical across
	// mappings; a sanity column).
	Candidates eval.Summary
}

// AblationMapping quantizes the landmark index space onto a grid and
// keys it with (a) the k-d round-robin bisection order of Algorithm 2
// — which is exactly the Morton / Z-order curve — and (b) the Hilbert
// curve, then measures how range-query candidate sets spread across a
// simulated ring under each mapping. Fewer nodes touched / fewer key
// runs = better locality.
func AblationMapping(scale Scale) ([]MappingCell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	// Node placement models a perfectly load-balanced ring (what the
	// §3.4 migration converges to): each node owns an equal-count
	// contiguous key bucket. Built per mapping from that mapping's own
	// key distribution, so each curve is judged under its best
	// balanced assignment.
	makeOwner := func(keys []uint64) func(uint64) int {
		sorted := append([]uint64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		bounds := make([]uint64, scale.Nodes)
		for b := 0; b < scale.Nodes; b++ {
			idx := (b + 1) * len(sorted) / scale.Nodes
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			bounds[b] = sorted[idx]
		}
		return func(key uint64) int {
			i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= key })
			if i == len(bounds) {
				i = len(bounds) - 1
			}
			return i
		}
	}

	var out []MappingCell
	for _, k := range []int{5, 10} {
		bits := 64 / k
		if bits > 12 {
			bits = 12
		}
		curve, err := hilbert.New(k, bits)
		if err != nil {
			return nil, err
		}
		lms, _, err := SelectLandmarks(Scheme{KMeans, k}, w.Data, scale.LandmarkSample,
			metric.L2, landmark.DenseMean, scale.Seed)
		if err != nil {
			return nil, err
		}
		// Embed and quantize every object once.
		maxDist := w.Space.Max
		grid := func(x metric.Vector) []uint32 {
			coords := make([]uint32, k)
			for j, l := range lms {
				f := metric.L2(x, l) / maxDist
				if f < 0 {
					f = 0
				}
				if f >= 1 {
					f = 1 - 1e-9
				}
				coords[j] = uint32(f * float64(uint32(1)<<uint(bits)))
			}
			return coords
		}
		points := make([][]uint32, len(w.Data))
		allM := make([]uint64, len(w.Data))
		allH := make([]uint64, len(w.Data))
		shift := uint(64 - k*bits)
		for i, x := range w.Data {
			points[i] = grid(x)
			mk, err := curve.MortonIndex(points[i])
			if err != nil {
				return nil, err
			}
			hk, err := curve.Index(points[i])
			if err != nil {
				return nil, err
			}
			allM[i] = mk << shift
			allH[i] = hk << shift
		}
		ownerM := makeOwner(allM)
		ownerH := makeOwner(allH)
		r := 0.05 * maxDist // representative 5% range factor
		cells := map[string]*MappingCell{
			"kd-morton": {Mapping: "kd-morton", K: k},
			"hilbert":   {Mapping: "hilbert", K: k},
		}
		var nodesM, nodesH, runsM, runsH, cands []float64
		distinct := w.Queries[:min(len(w.Queries), scale.DistinctQueries)]
		for _, q := range distinct {
			qg := grid(q)
			// Candidate set: objects whose quantized coordinates all
			// fall within the quantized range (a grid-level cube).
			rq := uint32(r / maxDist * float64(uint32(1)<<uint(bits)))
			if rq == 0 {
				rq = 1
			}
			var mKeys, hKeys []uint64
			for i, pg := range points {
				inside := true
				for j := range pg {
					lo := int64(qg[j]) - int64(rq)
					hi := int64(qg[j]) + int64(rq)
					if int64(pg[j]) < lo || int64(pg[j]) > hi {
						inside = false
						break
					}
				}
				if !inside {
					continue
				}
				mKeys = append(mKeys, allM[i])
				hKeys = append(hKeys, allH[i])
			}
			if len(mKeys) == 0 {
				continue
			}
			cands = append(cands, float64(len(mKeys)))
			nodesM = append(nodesM, float64(distinctOwners(mKeys, ownerM)))
			nodesH = append(nodesH, float64(distinctOwners(hKeys, ownerH)))
			runsM = append(runsM, float64(ownerRuns(mKeys, ownerM)))
			runsH = append(runsH, float64(ownerRuns(hKeys, ownerH)))
		}
		cells["kd-morton"].NodesTouched = eval.Summarize(nodesM)
		cells["kd-morton"].KeyRuns = eval.Summarize(runsM)
		cells["kd-morton"].Candidates = eval.Summarize(cands)
		cells["hilbert"].NodesTouched = eval.Summarize(nodesH)
		cells["hilbert"].KeyRuns = eval.Summarize(runsH)
		cells["hilbert"].Candidates = eval.Summarize(cands)
		out = append(out, *cells["kd-morton"], *cells["hilbert"])
	}
	return out, nil
}

// distinctOwners counts the nodes owning the keys.
func distinctOwners(keys []uint64, ownerOf func(uint64) int) int {
	seen := map[int]bool{}
	for _, k := range keys {
		seen[ownerOf(k)] = true
	}
	return len(seen)
}

// ownerRuns counts maximal runs of ring-consecutive owner nodes — a
// proxy for how many disjoint key intervals a range query must visit.
func ownerRuns(keys []uint64, ownerOf func(uint64) int) int {
	owners := map[int]bool{}
	for _, k := range keys {
		owners[ownerOf(k)] = true
	}
	ids := make([]int, 0, len(owners))
	for o := range owners {
		ids = append(ids, o)
	}
	sort.Ints(ids)
	runs := 0
	for i := range ids {
		if i == 0 || ids[i] != ids[i-1]+1 {
			runs++
		}
	}
	return runs
}

// PrintMapping renders ablation A7.
func PrintMapping(w io.Writer, cells []MappingCell) {
	fmt.Fprintln(w, "== Ablation A7: k-d (Morton) vs Hilbert index-space mapping (range factor 5%) ==")
	fmt.Fprintf(w, "%-10s %4s %12s %12s %10s %12s\n",
		"mapping", "k", "nodes-mean", "nodes-max", "runs-mean", "candidates")
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %4d %12.1f %12.0f %10.1f %12.1f\n",
			c.Mapping, c.K, c.NodesTouched.Mean, c.NodesTouched.Max,
			c.KeyRuns.Mean, c.Candidates.Mean)
	}
	fmt.Fprintln(w)
}
