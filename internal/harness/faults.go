package harness

import (
	"math/rand"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/core"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/metric"
)

// FaultCell is one fault-injection configuration's outcome (ablation
// A7): injected message loss (and optionally crash/rejoin cycles over a
// replicated index), with the reliability layer off or on.
type FaultCell struct {
	// Loss is the per-message drop probability.
	Loss float64
	// Retry reports whether the ack/timeout/retry layer was enabled.
	Retry bool
	// Crashes counts injected crash/rejoin cycles (these rows run with
	// 3-way replication so replicas can answer for crashed primaries).
	Crashes int
	Cell    Cell
}

// AblationFaults measures the index under injected message loss: each
// loss rate runs twice, fire-and-forget versus the reliable-delivery
// layer (MaxRetries 3). Two final rows add crash/rejoin cycles over a
// 3-way-replicated index at 10% loss, exercising successor failover and
// replica repair.
func AblationFaults(scale Scale, losses []float64) ([]FaultCell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	sc := Scheme{KMeans, 10}
	lms, _, err := SelectLandmarks(sc, w.Data, scale.LandmarkSample, metric.L2,
		landmark.DenseMean, scale.Seed+int64(sc.K)*101+int64(len(sc.Method)))
	if err != nil {
		return nil, err
	}
	type rowSpec struct {
		loss    float64
		retry   bool
		crashes int
	}
	var rows []rowSpec
	for _, l := range losses {
		rows = append(rows, rowSpec{l, false, 0}, rowSpec{l, true, 0})
	}
	const crashLoss = 0.10
	rows = append(rows, rowSpec{crashLoss, false, 8}, rowSpec{crashLoss, true, 8})
	out := make([]FaultCell, len(rows))
	err = parallelMap(len(rows), func(i int) error {
		row := rows[i]
		var retry core.RetryConfig
		if row.retry {
			retry = core.RetryConfig{MaxRetries: 3}
		}
		dep, err := Deploy(DeploySpec[metric.Vector]{
			Scale:     scale,
			Space:     w.Space,
			Data:      w.Data,
			Queries:   w.Queries,
			Truth:     w.Truth,
			Landmarks: lms,
			Rotate:    true,
			LossRate:  row.loss,
			Retry:     retry,
		})
		if err != nil {
			return err
		}
		fc := FaultCell{Loss: row.loss, Retry: row.retry}
		if row.crashes > 0 {
			if err := dep.Sys.ReplicateAll(dep.IndexName, 3); err != nil {
				return err
			}
			scheduleCrashes(dep, row.crashes, &fc)
		}
		cell, err := dep.RunWorkload(sc.Name(), 0.05, false)
		if err != nil {
			return err
		}
		fc.Cell = cell
		out[i] = fc
		return nil
	})
	return out, err
}

// scheduleCrashes injects n crash/rejoin cycles spread evenly across
// the workload window: a random live node crashes (System.CrashNode
// repairs routing state and replica placements), and a replacement with
// a fresh identifier joins on the same host a second later.
func scheduleCrashes(dep *Deployment[metric.Vector], n int, fc *FaultCell) {
	rng := rand.New(rand.NewSource(dep.scale.Seed + 555))
	span := time.Duration(dep.scale.Queries) * dep.scale.Interarrival
	for i := 0; i < n; i++ {
		at := dep.Eng.Now() + span*time.Duration(i+1)/time.Duration(n+1)
		dep.Eng.ScheduleAt(at, func() {
			nodes := dep.Sys.Nodes()
			if len(nodes) < 8 {
				return
			}
			victim := nodes[rng.Intn(len(nodes))]
			host := victim.ChordNode().Host()
			if err := dep.Sys.CrashNode(victim.ID()); err != nil {
				return
			}
			fc.Crashes++
			dep.Eng.Schedule(time.Second, func() {
				id := chord.ID(rng.Uint64())
				for dep.Sys.Network().Node(id) != nil {
					id = chord.ID(rng.Uint64())
				}
				_, _ = dep.Sys.JoinNode(id, host)
			})
		})
	}
}
