package harness

import (
	"math/rand"
	"sort"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/core"
)

// ChurnCell is one churn-rate configuration's outcome (ablation A6):
// node session time vs. query quality and cost in a network where
// nodes continuously crash and fresh nodes join.
type ChurnCell struct {
	// MeanSessionTime is the average node lifetime; lower = harsher.
	// Zero disables churn (the baseline row).
	MeanSessionTime time.Duration
	// Crashes and Joins count membership events during the workload.
	Crashes, Joins int
	// LostEntries counts index entries that died with their node and
	// were republished by their owner (the paper's soft-state model).
	LostEntries int
	Cell        Cell
}

// AblationChurn measures the index under continuous node churn: nodes
// crash with exponential lifetimes and rejoin with fresh identifiers,
// entries on crashed nodes are republished after a recovery delay
// (soft-state refresh), and the query workload runs throughout.
func AblationChurn(scale Scale) ([]ChurnCell, error) {
	w, err := BuildSynthetic(scale)
	if err != nil {
		return nil, err
	}
	sessions := []time.Duration{
		0, // baseline: no churn
		200 * scale.Interarrival,
		50 * scale.Interarrival,
		15 * scale.Interarrival,
	}
	out := make([]ChurnCell, len(sessions))
	err = parallelMap(len(sessions), func(i int) error {
		dep, err := synDeploy(scale, w, Scheme{KMeans, 10}, nil)
		if err != nil {
			return err
		}
		cc := ChurnCell{MeanSessionTime: sessions[i]}
		if sessions[i] > 0 {
			stopChurn := startChurn(dep, sessions[i], &cc)
			defer stopChurn()
		}
		cell, err := dep.RunWorkload("K-mean-10", 0.05, false)
		if err != nil {
			return err
		}
		cc.Cell = cell
		out[i] = cc
		return nil
	})
	return out, err
}

// startChurn schedules exponential crash/rejoin cycles across the
// deployment. Crashed nodes' entries are republished to the current
// owners after a recovery delay, modeling the soft-state refresh P2P
// indexes rely on. Returns a stop function.
func startChurn[T any](dep *Deployment[T], meanSession time.Duration, cc *ChurnCell) func() {
	sys := dep.Sys
	net := sys.Network()
	eng := dep.Eng
	rng := rand.New(rand.NewSource(dep.scale.Seed + 1234))
	stopped := false

	var scheduleCrash func()
	scheduleCrash = func() {
		delay := time.Duration(rng.ExpFloat64() * float64(meanSession) / float64(dep.scale.Nodes) * 4)
		eng.Schedule(delay, func() {
			if stopped {
				return
			}
			defer scheduleCrash()
			nodes := sys.Nodes()
			if len(nodes) < 8 {
				return
			}
			victim := nodes[rng.Intn(len(nodes))]
			// Capture the victim's entries for republication.
			type batch struct {
				name    string
				entries []core.Entry
			}
			// Republication order must not depend on map iteration
			// order, or identical seeds place entries in different
			// store orders.
			snap := victimEntries(victim)
			names := make([]string, 0, len(snap))
			for name := range snap {
				names = append(names, name)
			}
			sort.Strings(names)
			var lost []batch
			for _, name := range names {
				lost = append(lost, batch{name, snap[name]})
				cc.LostEntries += len(snap[name])
			}
			host := victim.ChordNode().Host()
			if err := sys.CrashNode(victim.ID()); err != nil {
				return
			}
			cc.Crashes++

			// A replacement node joins shortly after with a fresh id.
			eng.Schedule(time.Duration(rng.ExpFloat64()*float64(time.Second)), func() {
				if stopped {
					return
				}
				id := chord.ID(rng.Uint64())
				for net.Node(id) != nil {
					id = chord.ID(rng.Uint64())
				}
				if _, err := sys.JoinNode(id, host); err != nil {
					return
				}
				cc.Joins++
			})
			// The lost entries are republished by their owners after a
			// recovery delay (soft-state refresh period).
			eng.Schedule(5*time.Second, func() {
				if stopped {
					return
				}
				for _, b := range lost {
					_ = sys.BulkLoad(b.name, b.entries)
				}
			})
		})
	}
	scheduleCrash()
	return func() { stopped = true }
}

// victimEntries snapshots a node's entries per index scheme.
func victimEntries(in *core.IndexNode) map[string][]core.Entry {
	out := make(map[string][]core.Entry)
	for name, entries := range in.Snapshot() {
		out[name] = entries
	}
	return out
}
