package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// TrialCell aggregates one (scheme, range-factor) cell across repeated
// trials with different seeds: mean and sample standard deviation of
// the headline metrics. Reporting variability across seeds is the
// statistically sound way to present simulation results (single-seed
// numbers, as in the paper, can mislead).
type TrialCell struct {
	Scheme      string
	RangeFactor float64
	Trials      int

	RecallMean, RecallStd         float64
	HopsMean, HopsStd             float64
	RespMsMean, RespMsStd         float64
	QueryMsgsMean, QueryMsgsStd   float64
	QueryBytesMean, QueryBytesStd float64
}

// Trials runs the experiment n times with seeds scale.Seed,
// scale.Seed+1, … and aggregates matching cells. The experiment
// function receives the reseeded scale and must return cells with
// stable (Scheme, RangeFactor) identities across trials.
func Trials(scale Scale, n int, experiment func(Scale) ([]Cell, error)) ([]TrialCell, error) {
	if n <= 0 {
		return nil, fmt.Errorf("harness: trial count must be positive, got %d", n)
	}
	type key struct {
		scheme string
		rf     float64
	}
	acc := make(map[key][]Cell)
	var order []key
	for trial := 0; trial < n; trial++ {
		s := scale
		s.Seed = scale.Seed + int64(trial)
		cells, err := experiment(s)
		if err != nil {
			return nil, fmt.Errorf("harness: trial %d: %w", trial, err)
		}
		for _, c := range cells {
			k := key{c.Scheme, c.RangeFactor}
			if _, seen := acc[k]; !seen {
				order = append(order, k)
			}
			acc[k] = append(acc[k], c)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].scheme != order[j].scheme {
			return order[i].scheme < order[j].scheme
		}
		return order[i].rf < order[j].rf
	})
	out := make([]TrialCell, 0, len(order))
	for _, k := range order {
		cells := acc[k]
		tc := TrialCell{Scheme: k.scheme, RangeFactor: k.rf, Trials: len(cells)}
		tc.RecallMean, tc.RecallStd = meanStd(cells, func(c Cell) float64 { return c.Recall })
		tc.HopsMean, tc.HopsStd = meanStd(cells, func(c Cell) float64 { return c.Hops.Mean })
		tc.RespMsMean, tc.RespMsStd = meanStd(cells, func(c Cell) float64 { return c.RespMs.Mean })
		tc.QueryMsgsMean, tc.QueryMsgsStd = meanStd(cells, func(c Cell) float64 { return c.QueryMsgs.Mean })
		tc.QueryBytesMean, tc.QueryBytesStd = meanStd(cells, func(c Cell) float64 { return c.QueryBytes.Mean })
		out = append(out, tc)
	}
	return out, nil
}

func meanStd(cells []Cell, get func(Cell) float64) (mean, std float64) {
	n := float64(len(cells))
	for _, c := range cells {
		mean += get(c)
	}
	mean /= n
	if len(cells) < 2 {
		return mean, 0
	}
	var ss float64
	for _, c := range cells {
		d := get(c) - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1))
}

// PrintTrials renders trial-aggregated cells as mean±std.
func PrintTrials(w io.Writer, title string, cells []TrialCell) {
	fmt.Fprintf(w, "== %s (mean ± std over %d trials) ==\n", title, trialsOf(cells))
	fmt.Fprintf(w, "%-12s %8s %17s %15s %17s %19s\n",
		"scheme", "range%", "recall", "hops", "resp(ms)", "qmsgs")
	for _, c := range cells {
		fmt.Fprintf(w, "%-12s %8.2f %9.3f ± %5.3f %8.1f ± %4.1f %9.1f ± %5.1f %10.1f ± %6.1f\n",
			c.Scheme, c.RangeFactor*100,
			c.RecallMean, c.RecallStd,
			c.HopsMean, c.HopsStd,
			c.RespMsMean, c.RespMsStd,
			c.QueryMsgsMean, c.QueryMsgsStd)
	}
	fmt.Fprintln(w)
}

func trialsOf(cells []TrialCell) int {
	if len(cells) == 0 {
		return 0
	}
	return cells[0].Trials
}
