package harness

import (
	"fmt"
	"math/rand"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/core"
	"landmarkdht/internal/eval"
	"landmarkdht/internal/indexspace"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/metric"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
)

// Deployment is one simulated system populated with one index scheme,
// ready to run query workloads.
type Deployment[T any] struct {
	Eng       *sim.Engine
	Sys       *core.System
	Emb       *indexspace.Embedding[T]
	IndexName string
	Data      []T
	Queries   []T
	// Truth[i] is the ground-truth top-10 for Queries[i].
	Truth [][]int32
	// MaxDist scales range factors into absolute query ranges.
	MaxDist float64
	nodeIDs []chord.ID
	rng     *rand.Rand
	scale   Scale
}

// DeploySpec bundles everything needed to stand up a deployment.
type DeploySpec[T any] struct {
	Scale     Scale
	Space     metric.Space[T]
	Data      []T
	Queries   []T
	Truth     [][]int32
	Landmarks []T
	// BoundarySample, when non-nil, derives the index-space boundary
	// from the sample (§3.1 approach 2) instead of the metric bound.
	BoundarySample []T
	// Rotate applies the per-index rotation offset.
	Rotate bool
	// LB, when non-nil, enables dynamic load migration.
	LB *core.LBConfig
	// MaxDist overrides the range-factor scale (default: Space.Max).
	MaxDist float64
	// Naive switches query routing to the §3.3 strawman.
	Naive bool
	// DisablePNS turns off proximity neighbor selection.
	DisablePNS bool
	// LossRate drops each message with this probability (fault
	// injection; 0 disables).
	LossRate float64
	// Jitter adds a uniform random extra delay in [0, Jitter) to every
	// message.
	Jitter time.Duration
	// Retry configures the reliable-delivery layer (zero value: the
	// paper's fire-and-forget behavior).
	Retry core.RetryConfig
}

// SelectLandmarks runs the configured selection scheme over a random
// sample of the dataset, mirroring §3.1's well-known-node procedure.
// mean may be nil for Greedy; KMeans requires it.
func SelectLandmarks[T any](sc Scheme, data []T, sampleN int, d metric.Distance[T], mean landmark.Meaner[T], seed int64) ([]T, []T, error) {
	rng := rand.New(rand.NewSource(seed))
	if sampleN > len(data) {
		sampleN = len(data)
	}
	sample := make([]T, sampleN)
	for i, idx := range rng.Perm(len(data))[:sampleN] {
		sample[i] = data[idx]
	}
	var lms []T
	var err error
	switch sc.Method {
	case Greedy:
		lms, err = landmark.Greedy(rng, sample, sc.K, d)
	case KMeans:
		if mean == nil {
			lms, err = landmark.KMedoids(rng, sample, sc.K, d, 20)
		} else {
			lms, err = landmark.KMeans(rng, sample, sc.K, d, mean, 50)
		}
	default:
		err = fmt.Errorf("harness: unknown scheme method %q", sc.Method)
	}
	if err != nil {
		return nil, nil, err
	}
	return lms, sample, nil
}

// Deploy builds the simulated system: overlay, embedding, index, bulk
// load, optional load balancing.
func Deploy[T any](spec DeploySpec[T]) (*Deployment[T], error) {
	if err := spec.Scale.validate(); err != nil {
		return nil, err
	}
	if len(spec.Truth) != len(spec.Queries) {
		return nil, fmt.Errorf("harness: %d truth rows for %d queries", len(spec.Truth), len(spec.Queries))
	}
	eng := sim.NewEngine(spec.Scale.Seed)
	model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{N: spec.Scale.Nodes, Seed: spec.Scale.Seed})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	if spec.DisablePNS {
		cfg.Chord.PNS = false
	}
	if spec.LossRate > 0 || spec.Jitter > 0 {
		cfg.Chord.Faults = chord.NewFaultPlan().DropAll(spec.LossRate).Jitter(spec.Jitter)
	}
	cfg.Retry = spec.Retry
	sys := core.NewSystem(eng, model, cfg)
	rng := rand.New(rand.NewSource(spec.Scale.Seed + 7))
	ids := make([]chord.ID, 0, spec.Scale.Nodes)
	used := map[chord.ID]bool{}
	for i := 0; i < spec.Scale.Nodes; i++ {
		id := chord.ID(rng.Uint64())
		for used[id] {
			id = chord.ID(rng.Uint64())
		}
		used[id] = true
		if _, err := sys.AddNode(id, i); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	sys.Stabilize()

	var opts []indexspace.Option[T]
	if spec.BoundarySample != nil {
		opts = append(opts, indexspace.WithSampleBoundary(spec.BoundarySample))
	}
	emb, err := indexspace.New(spec.Space, spec.Landmarks, opts...)
	if err != nil {
		return nil, err
	}
	part, err := emb.Partitioner(spec.Rotate)
	if err != nil {
		return nil, err
	}
	data := spec.Data
	dist := spec.Space.Dist
	maxDistHint := spec.MaxDist
	if maxDistHint <= 0 && spec.Space.Bounded {
		maxDistHint = spec.Space.Max
	}
	ix := &core.Index{
		Name:    spec.Space.Name,
		Part:    part,
		MaxDist: maxDistHint,
		Dist: func(payload any, obj core.ObjectID) float64 {
			return dist(payload.(T), data[obj])
		},
	}
	if err := sys.DeployIndex(ix); err != nil {
		return nil, err
	}
	// Batch-embed the whole dataset into one coordinate arena: two
	// allocations instead of one per object, and the per-object
	// embedding loop is the dominant cost of standing up a deployment.
	rows, _ := emb.MapBatch(data, nil)
	entries := make([]core.Entry, len(data))
	for i := range data {
		entries[i] = core.Entry{Obj: core.ObjectID(i), Point: rows[i]}
	}
	if err := sys.BulkLoad(ix.Name, entries); err != nil {
		return nil, err
	}
	if spec.LB != nil {
		lbCfg := *spec.LB
		if lbCfg.Period <= 0 {
			lbCfg.Period = spec.Scale.LBPeriod
		}
		if err := sys.EnableLoadBalancing(lbCfg); err != nil {
			return nil, err
		}
	}
	maxDist := spec.MaxDist
	if maxDist <= 0 {
		if spec.Space.Bounded {
			maxDist = spec.Space.Max
		} else {
			return nil, fmt.Errorf("harness: MaxDist required for unbounded metric")
		}
	}
	return &Deployment[T]{
		Eng:       eng,
		Sys:       sys,
		Emb:       emb,
		IndexName: spec.Space.Name,
		Data:      data,
		Queries:   spec.Queries,
		Truth:     spec.Truth,
		MaxDist:   maxDist,
		nodeIDs:   ids,
		rng:       rng,
		scale:     spec.Scale,
	}, nil
}

// RunWorkload issues the deployment's query set at Poisson arrivals on
// random live nodes with the given range factor and aggregates the
// paper's cost metrics. naive switches to the strawman router.
func (d *Deployment[T]) RunWorkload(schemeName string, rangeFactor float64, naive bool) (Cell, error) {
	r := rangeFactor * d.MaxDist
	type obs struct {
		recall   float64
		stats    core.QueryStats
		returned []int32
	}
	results := make([]*obs, len(d.Queries))
	completed := 0
	droppedBefore := d.Sys.DroppedSubqueries
	retriesBefore := d.Sys.RetriesIssued
	recoveredBefore := d.Sys.RecoveredSubqueries

	// Arrivals begin at the engine's current time so reused
	// deployments keep Poisson pacing across workloads.
	at := d.Eng.Now()
	var lastArrival sim.Time
	for qi := range d.Queries {
		qi := qi
		q := d.Queries[qi]
		at += time.Duration(d.rng.ExpFloat64() * float64(d.scale.Interarrival))
		lastArrival = at
		src := d.liveSourceAt()
		center := d.Emb.Map(q)
		d.Eng.ScheduleAt(at, func() {
			// The source must still be alive at issue time (migrations
			// rename nodes); re-pick if not.
			srcID := src
			if d.Sys.Node(srcID) == nil {
				srcID = d.liveSourceAt()
			}
			issue := func(done func(*core.QueryResult)) error {
				if naive {
					return d.Sys.NaiveRangeQuery(d.IndexName, srcID, q, center, r, core.QueryOpts{TopK: 10}, done)
				}
				return d.Sys.RangeQuery(d.IndexName, srcID, q, center, r, core.QueryOpts{TopK: 10}, done)
			}
			err := issue(func(qr *core.QueryResult) {
				got := make([]int32, len(qr.Results))
				for i, res := range qr.Results {
					got[i] = int32(res.Obj)
				}
				results[qi] = &obs{
					recall:   eval.Recall(d.Truth[qi], got),
					stats:    qr.Stats,
					returned: got,
				}
				completed++
			})
			if err != nil {
				// Record as a failed query with zero recall.
				results[qi] = &obs{}
				completed++
			}
		})
	}
	// Drain: run to the last arrival plus a generous settling window;
	// extend while queries are still in flight.
	deadline := lastArrival + 2*time.Minute
	d.Eng.RunUntil(deadline)
	for tries := 0; completed < len(d.Queries) && tries < 20; tries++ {
		deadline += time.Minute
		d.Eng.RunUntil(deadline)
	}
	if completed < len(d.Queries) {
		return Cell{}, fmt.Errorf("harness: %d of %d queries never completed", len(d.Queries)-completed, len(d.Queries))
	}

	cell := Cell{Scheme: schemeName, RangeFactor: rangeFactor}
	var recalls, hops, resp, maxlat, qmsgs, qbytes, rbytes, inodes, cands []float64
	for _, o := range results {
		recalls = append(recalls, o.recall)
		hops = append(hops, float64(o.stats.Hops))
		resp = append(resp, float64(o.stats.ResponseTime())/float64(time.Millisecond))
		maxlat = append(maxlat, float64(o.stats.MaxLatency())/float64(time.Millisecond))
		qmsgs = append(qmsgs, float64(o.stats.QueryMsgs))
		qbytes = append(qbytes, float64(o.stats.QueryBytes))
		rbytes = append(rbytes, float64(o.stats.ResultBytes))
		inodes = append(inodes, float64(o.stats.IndexNodes))
		cands = append(cands, float64(o.stats.Candidates))
	}
	cell.Recall = eval.Summarize(recalls).Mean
	cell.Hops = eval.Summarize(hops)
	cell.RespMs = eval.Summarize(resp)
	cell.MaxLatMs = eval.Summarize(maxlat)
	cell.QueryMsgs = eval.Summarize(qmsgs)
	cell.QueryBytes = eval.Summarize(qbytes)
	cell.ResultBytes = eval.Summarize(rbytes)
	cell.IndexNodes = eval.Summarize(inodes)
	cell.Candidates = eval.Summarize(cands)
	cell.Dropped = d.Sys.DroppedSubqueries - droppedBefore
	cell.Retries = d.Sys.RetriesIssued - retriesBefore
	cell.Recovered = d.Sys.RecoveredSubqueries - recoveredBefore
	cell.Migrations, cell.MigrationsAborted = d.Sys.LBStats()
	loads := d.Sys.Loads()
	if len(loads) > 0 {
		cell.MaxLoad = loads[0]
	}
	cell.LoadGini = eval.Gini(loads)
	return cell, nil
}

// liveSourceAt picks a random live node id.
func (d *Deployment[T]) liveSourceAt() chord.ID {
	nodes := d.Sys.Nodes()
	return nodes[d.rng.Intn(len(nodes))].ID()
}

// Loads returns the current sorted (descending) load distribution.
func (d *Deployment[T]) Loads() []int { return d.Sys.Loads() }

// SettleLB lets load balancing run for the given simulated time with
// no query traffic (used by the load-distribution figures).
func (d *Deployment[T]) SettleLB(duration time.Duration) {
	d.Eng.RunFor(duration)
}

// ExpandTruth aligns per-distinct ground truth with a repeated query
// list: queries are distinct[0..n) repeated round-robin.
func ExpandTruth(distinctTruth [][]int32, total int) [][]int32 {
	out := make([][]int32, total)
	n := len(distinctTruth)
	for i := 0; i < total; i++ {
		out[i] = distinctTruth[i%n]
	}
	return out
}

// RepeatQueries builds the full query list from distinct queries.
func RepeatQueries[T any](distinct []T, total int) []T {
	out := make([]T, total)
	for i := 0; i < total; i++ {
		out[i] = distinct[i%len(distinct)]
	}
	return out
}
