// Package harness reproduces the paper's evaluation (§4): it builds
// simulated deployments of the index architecture, drives the query
// workloads, and regenerates the data series behind every table and
// figure, plus the ablations listed in DESIGN.md.
//
// Experiments are deterministic for a given Scale (seeded RNGs all the
// way down) and run independent simulation engines in parallel across
// cells of a figure.
package harness

import (
	"fmt"
	"time"

	"landmarkdht/internal/eval"
)

// Scale sizes an experiment. The paper's setup is PaperScale; tests
// and quick benchmarks use the smaller presets, which preserve the
// qualitative shapes at a fraction of the cost.
type Scale struct {
	// Nodes is the overlay size.
	Nodes int
	// DataN is the synthetic dataset size (§4.2: 10^5).
	DataN int
	// Dim is the synthetic dataset dimensionality (§4.2: 100).
	Dim int
	// Queries is the total number of queries (§4.1: 2000).
	Queries int
	// DistinctQueries is the number of distinct query points; queries
	// repeat round-robin (§4.3 repeats 50 topics).
	DistinctQueries int
	// CorpusDocs / CorpusVocab size the TREC-AP substitute corpus
	// (§4.3: 157,021 docs, 233,640 terms).
	CorpusDocs  int
	CorpusVocab int
	// CorpusTopics is the number of distinct query topics (§4.3: 50).
	CorpusTopics int
	// LandmarkSample is the selection sample size (§4.2: 2000 objects,
	// §4.3: 3000 documents).
	LandmarkSample int
	// Interarrival is the mean of the exponential query interarrival
	// time (§4.1: 150 s).
	Interarrival time.Duration
	// LBPeriod is the load-balancing probe period.
	LBPeriod time.Duration
	// Seed drives every random choice in the experiment.
	Seed int64
}

// PaperScale is the full §4 configuration.
func PaperScale() Scale {
	return Scale{
		Nodes:           1024,
		DataN:           100_000,
		Dim:             100,
		Queries:         2000,
		DistinctQueries: 400,
		CorpusDocs:      157_021,
		CorpusVocab:     233_640,
		CorpusTopics:    50,
		LandmarkSample:  2000,
		Interarrival:    150 * time.Second,
		LBPeriod:        time.Hour,
		Seed:            1,
	}
}

// SmallScale keeps every shape at interactive cost (seconds).
func SmallScale() Scale {
	return Scale{
		Nodes:           128,
		DataN:           20_000,
		Dim:             100,
		Queries:         240,
		DistinctQueries: 60,
		CorpusDocs:      8000,
		CorpusVocab:     40_000,
		CorpusTopics:    20,
		LandmarkSample:  500,
		Interarrival:    500 * time.Millisecond,
		LBPeriod:        5 * time.Second,
		Seed:            1,
	}
}

// BenchScale is the tiny preset used by the repository's testing.B
// benchmarks.
func BenchScale() Scale {
	s := SmallScale()
	s.Nodes = 64
	s.DataN = 5000
	s.Queries = 80
	s.DistinctQueries = 20
	s.CorpusDocs = 3000
	s.CorpusVocab = 20_000
	s.CorpusTopics = 10
	s.LandmarkSample = 300
	return s
}

func (s *Scale) validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("harness: need at least 2 nodes, got %d", s.Nodes)
	}
	if s.DataN <= 0 || s.Queries <= 0 || s.DistinctQueries <= 0 {
		return fmt.Errorf("harness: non-positive workload sizes")
	}
	if s.DistinctQueries > s.Queries {
		s.DistinctQueries = s.Queries
	}
	if s.Dim <= 0 {
		s.Dim = 100
	}
	if s.LandmarkSample <= 0 {
		s.LandmarkSample = 500
	}
	if s.Interarrival <= 0 {
		s.Interarrival = 500 * time.Millisecond
	}
	if s.LBPeriod <= 0 {
		s.LBPeriod = 5 * time.Second
	}
	return nil
}

// SchemeMethod selects the landmark-selection algorithm.
type SchemeMethod string

const (
	// Greedy is Algorithm 1 (max-min selection).
	Greedy SchemeMethod = "greedy"
	// KMeans uses cluster centroids as landmarks.
	KMeans SchemeMethod = "kmean"
)

// Scheme is one landmark-selection configuration, e.g. Kmean-10.
type Scheme struct {
	Method SchemeMethod
	K      int
}

// Name renders the paper's scheme labels ("Greedy-5", "K-mean-10").
func (sc Scheme) Name() string {
	switch sc.Method {
	case Greedy:
		return fmt.Sprintf("Greedy-%d", sc.K)
	case KMeans:
		return fmt.Sprintf("K-mean-%d", sc.K)
	default:
		return fmt.Sprintf("%s-%d", sc.Method, sc.K)
	}
}

// Figure2Schemes returns the four schemes of §4.2.
func Figure2Schemes() []Scheme {
	return []Scheme{
		{Greedy, 5}, {Greedy, 10}, {KMeans, 5}, {KMeans, 10},
	}
}

// RangeFactors returns the §4.2 query-range sweep (ratio of query
// range to the maximum theoretical distance), 0.1% to 20%.
func RangeFactors() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
}

// Cell is one data point of a figure: a (scheme, range-factor)
// combination with the paper's §4.1 cost metrics aggregated over the
// query workload.
type Cell struct {
	Scheme      string
	RangeFactor float64
	// Recall is the mean recall@10 over all queries.
	Recall float64
	// Hops is the per-query maximum path length distribution.
	Hops eval.Summary
	// RespMs / MaxLatMs are response time and maximum latency in ms.
	RespMs   eval.Summary
	MaxLatMs eval.Summary
	// QueryMsgs / QueryBytes / ResultBytes are per-query delivery
	// costs.
	QueryMsgs   eval.Summary
	QueryBytes  eval.Summary
	ResultBytes eval.Summary
	// IndexNodes is the per-query count of answering nodes.
	IndexNodes eval.Summary
	// Candidates is the per-query candidate-set size before exact
	// refinement.
	Candidates eval.Summary
	// Dropped counts subqueries lost to churn, injected message loss,
	// or exhausted retries during the workload.
	Dropped int
	// Retries counts retransmissions the reliability layer issued
	// during the workload; Recovered counts deliveries that succeeded
	// on a retransmission.
	Retries   int
	Recovered int
	// Migrations / MigrationsAborted report load-balancing activity.
	Migrations        int
	MigrationsAborted int
	// MaxLoad and LoadGini summarize the post-workload load
	// distribution.
	MaxLoad  int
	LoadGini float64
}
