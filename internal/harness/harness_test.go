package harness

import (
	"strings"
	"testing"
	"time"

	"landmarkdht/internal/core"
	"landmarkdht/internal/dataset"
	"landmarkdht/internal/metric"
)

// tinyScale keeps the integration tests fast while still exercising a
// real multi-node simulation.
func tinyScale() Scale {
	return Scale{
		Nodes:           48,
		DataN:           4000,
		Dim:             20,
		Queries:         60,
		DistinctQueries: 20,
		CorpusDocs:      1500,
		CorpusVocab:     12_000,
		CorpusTopics:    10,
		LandmarkSample:  200,
		Interarrival:    200 * time.Millisecond,
		LBPeriod:        2 * time.Second,
		Seed:            1,
	}
}

func TestScaleValidate(t *testing.T) {
	s := Scale{}
	if err := s.validate(); err == nil {
		t.Fatal("expected error for zero scale")
	}
	s = tinyScale()
	s.DistinctQueries = 1000
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	if s.DistinctQueries != s.Queries {
		t.Fatal("distinct not clamped to total")
	}
}

func TestSchemeNames(t *testing.T) {
	if (Scheme{Greedy, 5}).Name() != "Greedy-5" {
		t.Fatal("greedy name")
	}
	if (Scheme{KMeans, 10}).Name() != "K-mean-10" {
		t.Fatal("kmean name")
	}
}

func TestBuildSynthetic(t *testing.T) {
	w, err := BuildSynthetic(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Data) != 4000 || len(w.Queries) != 60 || len(w.Truth) != 60 {
		t.Fatalf("sizes: %d %d %d", len(w.Data), len(w.Queries), len(w.Truth))
	}
	// Repeated queries share ground truth.
	if &w.Truth[0][0] != &w.Truth[20][0] {
		t.Fatal("repeated queries should share truth slices")
	}
	for _, tr := range w.Truth {
		if len(tr) != 10 {
			t.Fatalf("truth size %d", len(tr))
		}
	}
}

func TestSelectLandmarksSchemes(t *testing.T) {
	w, _ := BuildSynthetic(tinyScale())
	for _, sc := range Figure2Schemes() {
		lms, sample, err := SelectLandmarks(sc, w.Data, 100, metric.L2, landmarkDenseMean(), 1)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if len(lms) != sc.K {
			t.Fatalf("%s: got %d landmarks", sc.Name(), len(lms))
		}
		if len(sample) != 100 {
			t.Fatalf("sample = %d", len(sample))
		}
	}
	if _, _, err := SelectLandmarks(Scheme{"bogus", 3}, w.Data, 10, metric.L2, nil, 1); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

// landmarkDenseMean avoids an import cycle in the test file header.
func landmarkDenseMean() func([]metric.Vector) metric.Vector {
	return func(items []metric.Vector) metric.Vector {
		out := make(metric.Vector, len(items[0]))
		for _, v := range items {
			for i := range v {
				out[i] += v[i]
			}
		}
		for i := range out {
			out[i] /= float64(len(items))
		}
		return out
	}
}

func TestDeployAndWorkload(t *testing.T) {
	scale := tinyScale()
	w, err := BuildSynthetic(scale)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := synDeploy(scale, w, Scheme{KMeans, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := dep.RunWorkload("K-mean-5", 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Recall <= 0.3 {
		t.Fatalf("recall = %v, implausibly low", cell.Recall)
	}
	if cell.Hops.Mean <= 0 {
		t.Fatal("no hops recorded")
	}
	if cell.RespMs.Mean <= 0 || cell.MaxLatMs.Mean < cell.RespMs.Mean {
		t.Fatalf("latency stats inconsistent: %v %v", cell.RespMs.Mean, cell.MaxLatMs.Mean)
	}
	if cell.QueryBytes.Mean <= 0 || cell.ResultBytes.Mean <= 0 {
		t.Fatal("byte accounting missing")
	}
}

func TestRecallGrowsWithRange(t *testing.T) {
	scale := tinyScale()
	w, err := BuildSynthetic(scale)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := synDeploy(scale, w, Scheme{KMeans, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	small, err := dep.RunWorkload("K-mean-5", 0.001, false)
	if err != nil {
		t.Fatal(err)
	}
	large, err := dep.RunWorkload("K-mean-5", 0.2, false)
	if err != nil {
		t.Fatal(err)
	}
	if large.Recall < small.Recall {
		t.Fatalf("recall did not grow with range: %.3f -> %.3f", small.Recall, large.Recall)
	}
	if large.Recall < 0.95 {
		t.Fatalf("recall at 20%% range = %.3f, want near 1", large.Recall)
	}
	if large.QueryBytes.Mean <= small.QueryBytes.Mean {
		t.Fatalf("query cost did not grow with range: %v -> %v", small.QueryBytes.Mean, large.QueryBytes.Mean)
	}
}

func TestWorkloadWithLB(t *testing.T) {
	scale := tinyScale()
	w, err := BuildSynthetic(scale)
	if err != nil {
		t.Fatal(err)
	}
	lb := core.LBConfig{Delta: 0, ProbeLevel: 4, Period: scale.LBPeriod}
	dep, err := synDeploy(scale, w, Scheme{KMeans, 5}, &lb)
	if err != nil {
		t.Fatal(err)
	}
	before := dep.Loads()
	cell, err := dep.RunWorkload("K-mean-5", 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Migrations == 0 {
		t.Fatal("no migrations under δ=0 on skewed data")
	}
	if cell.MaxLoad >= before[0] && before[0] > 2*scale.DataN/scale.Nodes {
		t.Fatalf("LB did not reduce max load: %d -> %d", before[0], cell.MaxLoad)
	}
	if dep.Sys.TotalEntries() != scale.DataN {
		t.Fatalf("entries not conserved: %d", dep.Sys.TotalEntries())
	}
}

func TestTable2(t *testing.T) {
	st, err := Table2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if st.Docs != 1500 {
		t.Fatalf("docs = %d", st.Docs)
	}
	if st.Stats.P50 < 100 || st.Stats.P50 > 200 {
		t.Fatalf("median = %d", st.Stats.P50)
	}
}

func TestFigure5CorpusWorkload(t *testing.T) {
	scale := tinyScale()
	w, err := buildCorpus(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.queries) != scale.Queries {
		t.Fatalf("queries = %d", len(w.queries))
	}
	dep, err := corpusDeploy(scale, w, Scheme{KMeans, 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := dep.RunWorkload("K-mean-10", 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Recall <= 0 {
		t.Fatalf("corpus recall = %v", cell.Recall)
	}
}

func TestAblationRotation(t *testing.T) {
	res, err := AblationRotation(tinyScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	unrot, rot := res[0], res[1]
	if unrot.Rotated || !rot.Rotated {
		t.Fatal("result order wrong")
	}
	// Rotation must not make the combined hotspot worse; typically it
	// decorrelates the per-index hotspots.
	if rot.CombinedMax > unrot.CombinedMax {
		t.Fatalf("rotation worsened combined max: %d -> %d", unrot.CombinedMax, rot.CombinedMax)
	}
}

func TestPrinters(t *testing.T) {
	cells := []Cell{{Scheme: "X", RangeFactor: 0.05, Recall: 0.9}}
	var b strings.Builder
	PrintCells(&b, "t", cells)
	PrintCellsWithLB(&b, "t", cells)
	PrintLoadCurves(&b, "t", []LoadCurve{{Scheme: "X", Loads: []int{5, 3, 1}, Before: []int{9}}})
	PrintTable1(&b, dataset.Table1())
	PrintTable2(&b, &Table2Stats{})
	PrintRotation(&b, []RotationResult{{}})
	PrintLBSweep(&b, []LBSweepCell{{}})
	out := b.String()
	for _, want := range []string{"scheme", "Table 1", "Table 2", "rotation", "delta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q", want)
		}
	}
	if got := RenderCells("z", cells); !strings.Contains(got, "X") {
		t.Fatal("RenderCells missing data")
	}
}

func TestSortCells(t *testing.T) {
	cells := []Cell{
		{Scheme: "B", RangeFactor: 0.1},
		{Scheme: "A", RangeFactor: 0.2},
		{Scheme: "A", RangeFactor: 0.1},
	}
	SortCells(cells)
	if cells[0].Scheme != "A" || cells[0].RangeFactor != 0.1 || cells[2].Scheme != "B" {
		t.Fatalf("sorted = %+v", cells)
	}
}

func TestExpandHelpers(t *testing.T) {
	truth := [][]int32{{1}, {2}}
	ex := ExpandTruth(truth, 5)
	if len(ex) != 5 || ex[2][0] != 1 || ex[3][0] != 2 {
		t.Fatalf("expand = %v", ex)
	}
	qs := RepeatQueries([]int{7, 8}, 3)
	if len(qs) != 3 || qs[2] != 7 {
		t.Fatalf("repeat = %v", qs)
	}
}

func TestFigure2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 40
	scale.DistinctQueries = 10
	cells, err := Figure2(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4*len(RangeFactors()) {
		t.Fatalf("cells = %d", len(cells))
	}
	// Per scheme, recall at the largest range factor must be >= recall
	// at the smallest.
	for si := 0; si < 4; si++ {
		first := cells[si*len(RangeFactors())]
		last := cells[(si+1)*len(RangeFactors())-1]
		if last.Recall < first.Recall {
			t.Fatalf("%s: recall shrank %.3f -> %.3f", first.Scheme, first.Recall, last.Recall)
		}
	}
}

func TestFigure4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	scale := tinyScale()
	scale.Queries = 30
	scale.DistinctQueries = 10
	curves, err := Figure4(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Loads) == 0 {
			t.Fatalf("%s: empty loads", c.Scheme)
		}
		// Sorted descending.
		for i := 1; i < len(c.Loads); i++ {
			if c.Loads[i] > c.Loads[i-1] {
				t.Fatalf("%s: loads not sorted", c.Scheme)
			}
		}
		// LB must have reduced the max load versus the initial skew.
		if len(c.Before) > 0 && c.Loads[0] > c.Before[0] {
			t.Fatalf("%s: LB increased max load %d -> %d", c.Scheme, c.Before[0], c.Loads[0])
		}
	}
}
