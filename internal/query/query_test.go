package query

import (
	"math/rand"
	"testing"

	"landmarkdht/internal/lph"
)

func part2d(t *testing.T) *lph.Partitioner {
	t.Helper()
	p, err := lph.New(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func cube(b ...float64) []lph.Bounds {
	if len(b)%2 != 0 {
		panic("cube: need pairs")
	}
	out := make([]lph.Bounds, len(b)/2)
	for i := range out {
		out[i] = lph.Bounds{Lo: b[2*i], Hi: b[2*i+1]}
	}
	return out
}

// Reproduces figure 1(a): in the 2-d unit space, the query rectangle
// x∈[0.3,0.45], y∈[0.7,0.8] has smallest enclosing cuboid "011"
// (lower x half → 0, upper y half → 1, upper quarter of x-lower-half → 1).
func TestNewPrefixMatchesFigure1(t *testing.T) {
	p := part2d(t)
	r, err := New(p, cube(0.3, 0.45, 0.7, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	if r.PreLen != 3 {
		t.Fatalf("prelen = %d, want 3", r.PreLen)
	}
	want := lph.Key(0x6000000000000000) // bits 011
	if r.PreKey != want {
		t.Fatalf("prekey = %x, want %x", r.PreKey, want)
	}
	if err := r.Validate(p); err != nil {
		t.Fatal(err)
	}
}

// Figure 1(b): splitting Q at the next division yields prefixes 0110
// (lower y half of rectangle 011) and 0111 (upper y half).
func TestSplitMatchesFigure1b(t *testing.T) {
	p := part2d(t)
	r, _ := New(p, cube(0.3, 0.45, 0.7, 0.8))
	subs := Split(p, r, r.PreLen+1)
	if len(subs) != 2 {
		t.Fatalf("got %d subqueries, want 2", len(subs))
	}
	// Upper half first (bit set), per Algorithm 4.
	if subs[0].PreKey != 0x7000000000000000 { // 0111
		t.Fatalf("upper prekey = %x", subs[0].PreKey)
	}
	if subs[1].PreKey != 0x6000000000000000 { // 0110
		t.Fatalf("lower prekey = %x", subs[1].PreKey)
	}
	for _, s := range subs {
		if s.PreLen != 4 {
			t.Fatalf("prelen = %d, want 4", s.PreLen)
		}
		if err := s.Validate(p); err != nil {
			t.Fatal(err)
		}
	}
	// The split dimension at division 4 of a 2-d space is dim 1 (y).
	if subs[0].Cube[1].Lo != 0.75 {
		t.Fatalf("upper cube y = %+v, want lo=0.75", subs[0].Cube[1])
	}
	if subs[1].Cube[1].Hi != 0.75 {
		t.Fatalf("lower cube y = %+v, want hi=0.75", subs[1].Cube[1])
	}
	// X ranges unchanged.
	if subs[0].Cube[0] != subs[1].Cube[0] || subs[0].Cube[0].Lo != 0.3 {
		t.Fatalf("x ranges disturbed: %+v %+v", subs[0].Cube[0], subs[1].Cube[0])
	}
}

func TestNewClampsToBoundary(t *testing.T) {
	p := part2d(t)
	r, err := New(p, cube(-1, 2, 0.5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cube[0].Lo != 0 || r.Cube[0].Hi != 1 {
		t.Fatalf("x not clamped: %+v", r.Cube[0])
	}
	if r.Cube[1].Hi != 1 {
		t.Fatalf("y not clamped: %+v", r.Cube[1])
	}
}

func TestNewWholeSpaceHasEmptyPrefix(t *testing.T) {
	p := part2d(t)
	r, err := New(p, cube(0, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.PreLen != 0 || r.PreKey != 0 {
		t.Fatalf("whole-space query: prelen=%d prekey=%x", r.PreLen, r.PreKey)
	}
}

func TestNewPointQueryHasDeepPrefix(t *testing.T) {
	p := part2d(t)
	r, err := New(p, cube(0.3, 0.3, 0.7, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	// A point query refines until it hits an exact cell boundary or
	// depth 64; 0.3/0.7 are never exactly on dyadic boundaries, so the
	// prefix should be very deep (float precision bottoms out around
	// 2^-52 per dimension; 2 dims ⇒ depth > 50 easily).
	if r.PreLen < 50 {
		t.Fatalf("point query prelen = %d, want deep", r.PreLen)
	}
}

func TestNewRejectsBadCube(t *testing.T) {
	p := part2d(t)
	if _, err := New(p, cube(0.5, 0.4, 0, 1)); err == nil {
		t.Fatal("expected error for inverted range")
	}
	if _, err := New(p, cube(0, 1)); err == nil {
		t.Fatal("expected error for wrong dimensionality")
	}
}

// Property: a split preserves the union of cubes and produces disjoint
// halves tagged with sibling prefixes.
func TestQuickSplitPartition(t *testing.T) {
	p := part2d(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		lo0, hi0 := ordered(rng.Float64(), rng.Float64())
		lo1, hi1 := ordered(rng.Float64(), rng.Float64())
		r, err := New(p, cube(lo0, hi0, lo1, hi1))
		if err != nil {
			t.Fatal(err)
		}
		if r.PreLen == lph.M {
			continue
		}
		subs := Split(p, r, r.PreLen+1)
		switch len(subs) {
		case 1:
			if subs[0].PreLen != r.PreLen+1 {
				t.Fatal("single split must extend prefix by 1")
			}
			if subs[0].Cube[0] != r.Cube[0] || subs[0].Cube[1] != r.Cube[1] {
				t.Fatal("single split must not change the cube")
			}
		case 2:
			j := r.PreLen % p.K()
			u, l := subs[0], subs[1]
			if u.Cube[j].Lo != l.Cube[j].Hi {
				t.Fatalf("halves not adjacent: %+v %+v", u.Cube[j], l.Cube[j])
			}
			if u.Cube[j].Hi != r.Cube[j].Hi || l.Cube[j].Lo != r.Cube[j].Lo {
				t.Fatal("outer bounds disturbed")
			}
			if lph.GetBit(u.PreKey, r.PreLen+1) != 1 || lph.GetBit(l.PreKey, r.PreLen+1) != 0 {
				t.Fatal("sibling bits wrong")
			}
			if !lph.SamePrefix(u.PreKey, l.PreKey, r.PreLen) {
				t.Fatal("siblings must share the parent prefix")
			}
			for _, s := range subs {
				if err := s.Validate(p); err != nil {
					t.Fatal(err)
				}
			}
		default:
			t.Fatalf("split returned %d regions", len(subs))
		}
	}
}

func ordered(a, b float64) (float64, float64) {
	if a > b {
		return b, a
	}
	return a, b
}

func TestContains(t *testing.T) {
	r := Region{Cube: cube(0, 0.5, 0.5, 1)}
	if !r.Contains([]float64{0.25, 0.75}) {
		t.Fatal("point inside not detected")
	}
	if r.Contains([]float64{0.75, 0.75}) {
		t.Fatal("point outside accepted")
	}
	if r.Contains([]float64{0.25}) {
		t.Fatal("wrong dimensionality accepted")
	}
	// Boundary is closed.
	if !r.Contains([]float64{0.5, 0.5}) {
		t.Fatal("closed boundary rejected")
	}
}

func TestRestrict(t *testing.T) {
	p := part2d(t)
	r, _ := New(p, cube(0.3, 0.45, 0.7, 0.8))
	// Cuboid 0111: b1=0 → x lower half, b2=1 → y upper half,
	// b3=1 → x∈[0.25,0.5], b4=1 → y∈[0.75,1].
	pre := lph.Key(0x7000000000000000)
	nq, ok := Restrict(p, r, pre, 4)
	if !ok {
		t.Fatal("restrict reported empty")
	}
	if nq.PreKey != pre || nq.PreLen != 4 {
		t.Fatalf("retag wrong: %x/%d", nq.PreKey, nq.PreLen)
	}
	if nq.Cube[1].Lo != 0.75 || nq.Cube[1].Hi != 0.8 {
		t.Fatalf("y range = %+v, want [0.75,0.8]", nq.Cube[1])
	}
	if err := nq.Validate(p); err != nil {
		t.Fatal(err)
	}
	// Restricting to a disjoint cuboid reports empty.
	if _, ok := Restrict(p, r, lph.Key(0x8000000000000000), 1); ok {
		t.Fatal("expected empty intersection with x-upper half")
	}
}

func TestCloneIndependent(t *testing.T) {
	r := Region{Cube: cube(0, 1, 0, 1)}
	c := r.Clone()
	c.Cube[0].Lo = 0.5
	if r.Cube[0].Lo == 0.5 {
		t.Fatal("clone aliases cube")
	}
}

func TestLeavesSmall(t *testing.T) {
	// In a 1-d space with bounds [0,1), region [0.5, 1] at depth 2
	// covers leaves 10 and 11 at depth 2 — fully refined to depth 64
	// it covers exactly the upper half: 2^63 leaves, so use a shallow
	// partitioner by testing the error path and a point query.
	p, err := lph.New(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := New(p, []lph.Bounds{{Lo: 0.5, Hi: 1}})
	if _, err := Leaves(p, r, 100); err == nil {
		t.Fatal("expected leaf explosion error")
	}
	// A degenerate point region refines to few leaves.
	pt, _ := New(p, []lph.Bounds{{Lo: 0.3, Hi: 0.3}})
	leaves, err := Leaves(p, pt, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) == 0 {
		t.Fatal("point query produced no leaves")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := part2d(t)
	r, _ := New(p, cube(0.3, 0.45, 0.7, 0.8))
	bad := r.Clone()
	bad.PreKey |= 1 // non-zero bit beyond prefix
	if err := bad.Validate(p); err == nil {
		t.Fatal("expected prekey validation error")
	}
	bad2 := r.Clone()
	bad2.Cube[0] = lph.Bounds{Lo: 0.9, Hi: 0.95} // escapes cuboid 011
	if err := bad2.Validate(p); err == nil {
		t.Fatal("expected cube/cuboid validation error")
	}
	bad3 := r.Clone()
	bad3.PreLen = 99
	if err := bad3.Validate(p); err == nil {
		t.Fatal("expected prelen validation error")
	}
}

func TestSplitPanicsOnBadPos(t *testing.T) {
	p := part2d(t)
	r, _ := New(p, cube(0, 1, 0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(p, r, 0)
}
