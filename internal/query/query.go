// Package query implements the range-query geometry of §3.3: query
// regions tagged with prefix keys, the initial prefix computation
// ("the code of the smallest hypercuboid that can completely hold the
// query region"), and QuerySplit (Algorithm 4), which bisects a region
// at its next k-d division.
package query

import (
	"fmt"

	"landmarkdht/internal/lph"
)

// Region is a (sub)query in the index space: a hypercube plus the
// prefix identifying the smallest enclosing cuboid discovered so far.
// The bits of PreKey beyond PreLen are always zero (the paper's
// "padding zeros to the right").
type Region struct {
	Cube   []lph.Bounds
	PreKey lph.Key
	PreLen int
}

// Clone deep-copies the region (the cube is mutable during splits).
func (r Region) Clone() Region {
	cp := r
	cp.Cube = append([]lph.Bounds(nil), r.Cube...)
	return cp
}

// Contains reports whether an index point lies inside the region's
// cube (closed on both ends).
func (r Region) Contains(point []float64) bool {
	if len(point) != len(r.Cube) {
		return false
	}
	for i, b := range r.Cube {
		if !b.Contains(point[i]) {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants.
func (r Region) Validate(p *lph.Partitioner) error {
	if len(r.Cube) != p.K() {
		return fmt.Errorf("query: cube has %d dims, partitioner has %d", len(r.Cube), p.K())
	}
	if r.PreLen < 0 || r.PreLen > lph.M {
		return fmt.Errorf("query: prefix length %d out of range", r.PreLen)
	}
	if lph.Prefix(r.PreKey, r.PreLen) != r.PreKey {
		return fmt.Errorf("query: prekey %x has non-zero bits beyond prefix length %d", r.PreKey, r.PreLen)
	}
	cu := p.Cuboid(r.PreKey, r.PreLen)
	for j, b := range r.Cube {
		if b.Hi < b.Lo {
			return fmt.Errorf("query: empty range on dim %d: %+v", j, b)
		}
		if b.Lo < cu[j].Lo-1e-9 || b.Hi > cu[j].Hi+1e-9 {
			return fmt.Errorf("query: cube dim %d %+v escapes cuboid %+v", j, b, cu[j])
		}
	}
	return nil
}

// New builds the initial query region for a cube: it computes the
// prefix of the smallest hypercuboid completely holding the cube by
// descending divisions while the cube stays in one half (figure 1(a)).
// The cube is clamped to the partitioner's boundary first.
func New(p *lph.Partitioner, cube []lph.Bounds) (Region, error) {
	if len(cube) != p.K() {
		return Region{}, fmt.Errorf("query: cube has %d dims, want %d", len(cube), p.K())
	}
	r := Region{Cube: make([]lph.Bounds, len(cube))}
	for j, b := range cube {
		bounds := p.Bounds(j)
		lo, hi := bounds.Clamp(b.Lo), bounds.Clamp(b.Hi)
		if hi < lo {
			return Region{}, fmt.Errorf("query: empty range on dim %d: %+v", j, b)
		}
		r.Cube[j] = lph.Bounds{Lo: lo, Hi: hi}
	}
	// Descend divisions in place while the cube stays in one half —
	// the allocation-free equivalent of repeated single-region Splits
	// (the cube never changes during the descent, only the prefix).
	for r.PreLen < lph.M {
		pos := r.PreLen + 1
		j := (pos - 1) % p.K()
		mid := p.SplitMid(r.PreKey, pos)
		switch {
		case r.Cube[j].Lo > mid:
			r.PreKey = lph.SetBit(r.PreKey, pos)
			r.PreLen = pos
		case r.Cube[j].Hi < mid:
			r.PreLen = pos
		default:
			return r, nil
		}
	}
	return r, nil
}

// Split is Algorithm 4: divide region q at division number pos
// (which must be q.PreLen+1 ≤ pos ≤ 64 for the prefix walk to be
// meaningful; routing always calls it with pos = PreLen+1, surrogate
// refinement with the first zero bit position). It returns one region
// when the cube lies entirely in one half, or two (upper half first,
// matching the paper's nq₁ with bit pos set) when it straddles the
// midpoint.
func Split(p *lph.Partitioner, q Region, pos int) []Region {
	if pos < 1 || pos > lph.M {
		panic(fmt.Sprintf("query: split position %d out of [1,64]", pos))
	}
	j := (pos - 1) % p.K()
	mid := p.SplitMid(q.PreKey, pos)
	switch {
	case q.Cube[j].Lo > mid:
		// The cube is unchanged in the single-half cases, and cubes are
		// only ever mutated at clone birth (straddle case below,
		// Restrict), so the child can share the parent's cube slice.
		nq := q
		nq.PreKey = lph.SetBit(nq.PreKey, pos)
		nq.PreLen = pos
		return []Region{nq}
	case q.Cube[j].Hi < mid:
		nq := q
		nq.PreLen = pos
		return []Region{nq}
	default:
		upper := q.Clone()
		upper.Cube[j].Lo = mid
		upper.PreKey = lph.SetBit(upper.PreKey, pos)
		upper.PreLen = pos
		lower := q.Clone()
		lower.Cube[j].Hi = mid
		lower.PreLen = pos
		return []Region{upper, lower}
	}
}

// Restrict clips the region's cube to the cuboid identified by
// (prekey, prelen) and retags it. It returns false when the
// intersection is empty. Surrogate refinement uses it to prune a
// query to the portion a node covers.
func Restrict(p *lph.Partitioner, q Region, prekey lph.Key, prelen int) (Region, bool) {
	cu := p.Cuboid(prekey, prelen)
	nq := q.Clone()
	nq.PreKey = lph.Prefix(prekey, prelen)
	nq.PreLen = prelen
	for j := range nq.Cube {
		if nq.Cube[j].Lo < cu[j].Lo {
			nq.Cube[j].Lo = cu[j].Lo
		}
		if nq.Cube[j].Hi > cu[j].Hi {
			nq.Cube[j].Hi = cu[j].Hi
		}
		if nq.Cube[j].Hi < nq.Cube[j].Lo {
			return Region{}, false
		}
	}
	return nq, true
}

// Leaves fully refines the region to depth lph.M and returns the leaf
// prefix keys whose cuboids intersect the cube. This is the §3.3
// "naive approach" building block and is exponential in the query
// selectivity; maxLeaves bounds the expansion (0 = unlimited).
func Leaves(p *lph.Partitioner, q Region, maxLeaves int) ([]lph.Key, error) {
	var out []lph.Key
	stack := []Region{q}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r.PreLen == lph.M {
			out = append(out, r.PreKey)
			if maxLeaves > 0 && len(out) > maxLeaves {
				return nil, fmt.Errorf("query: region expands past %d leaves", maxLeaves)
			}
			continue
		}
		stack = append(stack, Split(p, r, r.PreLen+1)...)
	}
	return out, nil
}
