// Package hilbert implements the k-dimensional Hilbert space-filling
// curve (Skilling's transpose algorithm, "Programming the Hilbert
// curve", 2004).
//
// The paper's related work (§5) contrasts its k-d locality-preserving
// hash with SCRAP's Hilbert-curve mapping. The hash of Algorithm 2 —
// alternating one bisection per dimension — is exactly the Morton
// (Z-order) curve; this package provides the Hilbert alternative so
// the two mappings can be compared on locality (ablation A7): Hilbert
// guarantees consecutive keys are adjacent cells, so range queries
// decompose into fewer contiguous key runs, at the cost of a more
// expensive mapping and a harder inverse for the routing algorithms
// (which is why the paper's query refinement sticks to the k-d order).
package hilbert

import "fmt"

// Curve maps between points on a dims-dimensional grid with bits bits
// per coordinate and positions on the Hilbert curve. dims·bits must
// not exceed 64 so positions fit a uint64.
type Curve struct {
	dims, bits int
}

// New validates the geometry and returns a Curve.
func New(dims, bits int) (*Curve, error) {
	if dims <= 0 || bits <= 0 {
		return nil, fmt.Errorf("hilbert: dims and bits must be positive (got %d, %d)", dims, bits)
	}
	if dims*bits > 64 {
		return nil, fmt.Errorf("hilbert: dims·bits = %d exceeds 64", dims*bits)
	}
	return &Curve{dims: dims, bits: bits}, nil
}

// Dims returns the dimensionality.
func (c *Curve) Dims() int { return c.dims }

// Bits returns the per-coordinate resolution.
func (c *Curve) Bits() int { return c.bits }

// maxCoord returns the exclusive coordinate bound.
func (c *Curve) maxCoord() uint32 {
	return uint32(1) << uint(c.bits)
}

// Index returns the Hilbert-curve position of the given grid point.
// Coordinates must be < 2^bits.
func (c *Curve) Index(coords []uint32) (uint64, error) {
	if len(coords) != c.dims {
		return 0, fmt.Errorf("hilbert: got %d coordinates, want %d", len(coords), c.dims)
	}
	x := make([]uint32, c.dims)
	for i, v := range coords {
		if v >= c.maxCoord() {
			return 0, fmt.Errorf("hilbert: coordinate %d = %d exceeds %d bits", i, v, c.bits)
		}
		x[i] = v
	}
	c.axesToTranspose(x)
	return c.interleave(x), nil
}

// Coords inverts Index.
func (c *Curve) Coords(index uint64) ([]uint32, error) {
	if c.dims*c.bits < 64 && index >= uint64(1)<<uint(c.dims*c.bits) {
		return nil, fmt.Errorf("hilbert: index %d exceeds curve length", index)
	}
	x := c.deinterleave(index)
	c.transposeToAxes(x)
	return x, nil
}

// axesToTranspose converts coordinates to the transposed Hilbert
// representation in place (Skilling's AxestoTranspose).
func (c *Curve) axesToTranspose(x []uint32) {
	n := c.dims
	m := uint32(1) << uint(c.bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse (Skilling's TransposetoAxes).
func (c *Curve) transposeToAxes(x []uint32) {
	n := c.dims
	m := uint32(2) << uint(c.bits-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed representation into a single index:
// bit (bits-1-b) of x[i] becomes bit ((bits-1-b)*dims + (dims-1-i)) of
// the result — most significant first.
func (c *Curve) interleave(x []uint32) uint64 {
	var out uint64
	for b := c.bits - 1; b >= 0; b-- {
		for i := 0; i < c.dims; i++ {
			out <<= 1
			out |= uint64((x[i] >> uint(b)) & 1)
		}
	}
	return out
}

// deinterleave inverts interleave.
func (c *Curve) deinterleave(index uint64) []uint32 {
	x := make([]uint32, c.dims)
	shift := uint(c.dims*c.bits - 1)
	for b := c.bits - 1; b >= 0; b-- {
		for i := 0; i < c.dims; i++ {
			bit := (index >> shift) & 1
			x[i] |= uint32(bit) << uint(b)
			shift--
		}
	}
	return x
}

// MortonIndex returns the Z-order (bit-interleaved) position of the
// point — exactly the ordering the paper's Algorithm 2 induces when
// dimensions are bisected in round-robin order. Provided here for
// locality comparisons against the Hilbert order.
func (c *Curve) MortonIndex(coords []uint32) (uint64, error) {
	if len(coords) != c.dims {
		return 0, fmt.Errorf("hilbert: got %d coordinates, want %d", len(coords), c.dims)
	}
	for i, v := range coords {
		if v >= c.maxCoord() {
			return 0, fmt.Errorf("hilbert: coordinate %d = %d exceeds %d bits", i, v, c.bits)
		}
	}
	cp := append([]uint32(nil), coords...)
	return c.interleave(cp), nil
}
