package hilbert

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("expected dims error")
	}
	if _, err := New(2, 0); err == nil {
		t.Fatal("expected bits error")
	}
	if _, err := New(8, 9); err == nil {
		t.Fatal("expected overflow error")
	}
	c, err := New(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dims() != 2 || c.Bits() != 32 {
		t.Fatalf("curve = %+v", c)
	}
}

// Exhaustive bijection check on small curves.
func TestRoundTripExhaustive(t *testing.T) {
	for _, geom := range []struct{ dims, bits int }{
		{1, 6}, {2, 4}, {3, 3}, {4, 2},
	} {
		c, err := New(geom.dims, geom.bits)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(1) << uint(geom.dims*geom.bits)
		seen := make(map[uint64]bool, total)
		coords := make([]uint32, geom.dims)
		var walk func(d int)
		walk = func(d int) {
			if d == geom.dims {
				idx, err := c.Index(coords)
				if err != nil {
					t.Fatal(err)
				}
				if idx >= total {
					t.Fatalf("index %d out of range", idx)
				}
				if seen[idx] {
					t.Fatalf("index %d assigned twice (coords %v)", idx, coords)
				}
				seen[idx] = true
				back, err := c.Coords(idx)
				if err != nil {
					t.Fatal(err)
				}
				for i := range back {
					if back[i] != coords[i] {
						t.Fatalf("round trip %v -> %d -> %v", coords, idx, back)
					}
				}
				return
			}
			for v := uint32(0); v < 1<<uint(geom.bits); v++ {
				coords[d] = v
				walk(d + 1)
			}
		}
		walk(0)
		if uint64(len(seen)) != total {
			t.Fatalf("dims=%d bits=%d: %d of %d cells covered", geom.dims, geom.bits, len(seen), total)
		}
	}
}

// The defining Hilbert property: consecutive curve positions are
// adjacent grid cells (Manhattan distance exactly 1).
func TestAdjacency(t *testing.T) {
	for _, geom := range []struct{ dims, bits int }{
		{2, 5}, {3, 3},
	} {
		c, err := New(geom.dims, geom.bits)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(1) << uint(geom.dims*geom.bits)
		prev, err := c.Coords(0)
		if err != nil {
			t.Fatal(err)
		}
		for idx := uint64(1); idx < total; idx++ {
			cur, err := c.Coords(idx)
			if err != nil {
				t.Fatal(err)
			}
			dist := 0
			for i := range cur {
				d := int(cur[i]) - int(prev[i])
				if d < 0 {
					d = -d
				}
				dist += d
			}
			if dist != 1 {
				t.Fatalf("dims=%d bits=%d: positions %d->%d jump distance %d (%v -> %v)",
					geom.dims, geom.bits, idx-1, idx, dist, prev, cur)
			}
			prev = cur
		}
	}
}

func TestIndexValidation(t *testing.T) {
	c, _ := New(2, 4)
	if _, err := c.Index([]uint32{1}); err == nil {
		t.Fatal("expected dims error")
	}
	if _, err := c.Index([]uint32{16, 0}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := c.Coords(1 << 8); err == nil {
		t.Fatal("expected index range error")
	}
	if _, err := c.MortonIndex([]uint32{1}); err == nil {
		t.Fatal("expected morton dims error")
	}
	if _, err := c.MortonIndex([]uint32{16, 0}); err == nil {
		t.Fatal("expected morton range error")
	}
}

func TestMortonKnown(t *testing.T) {
	c, _ := New(2, 2)
	// Z-order on a 4x4 grid: (x,y) -> interleave bits x1 y1 x0 y0 with
	// x as coordinate 0 (most significant in each pair).
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 2}, {1, 1, 3},
		{2, 2, 12}, {3, 3, 15},
	}
	for _, tc := range cases {
		got, err := c.MortonIndex([]uint32{tc.x, tc.y})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("morton(%d,%d) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
}

// Hilbert ordering must cluster ranges better than Morton: walking a
// random axis-aligned box in key order produces fewer "runs" of
// consecutive-but-far keys. We measure the classic clustering number:
// the count of maximal contiguous key runs covering the box (lower is
// better; Hilbert is known to beat Z-order on average).
func TestHilbertClustersBetterThanMorton(t *testing.T) {
	c, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var hTotal, mTotal int
	for trial := 0; trial < 50; trial++ {
		x0 := rng.Uint32() % 200
		y0 := rng.Uint32() % 200
		w := 4 + rng.Uint32()%24
		h := 4 + rng.Uint32()%24
		var hKeys, mKeys []uint64
		for x := x0; x < x0+w && x < 256; x++ {
			for y := y0; y < y0+h && y < 256; y++ {
				hk, err := c.Index([]uint32{x, y})
				if err != nil {
					t.Fatal(err)
				}
				mk, _ := c.MortonIndex([]uint32{x, y})
				hKeys = append(hKeys, hk)
				mKeys = append(mKeys, mk)
			}
		}
		hTotal += runs(hKeys)
		mTotal += runs(mKeys)
	}
	if hTotal >= mTotal {
		t.Fatalf("hilbert runs %d not fewer than morton %d", hTotal, mTotal)
	}
}

// runs counts maximal runs of consecutive integers.
func runs(keys []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	n := 1
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1]+1 {
			n++
		}
	}
	return n
}

func TestRoundTripRandomLarge(t *testing.T) {
	c, err := New(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		coords := make([]uint32, 5)
		for i := range coords {
			coords[i] = rng.Uint32() % (1 << 12)
		}
		idx, err := c.Index(coords)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Coords(idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range back {
			if back[i] != coords[i] {
				t.Fatalf("round trip failed: %v -> %d -> %v", coords, idx, back)
			}
		}
	}
}

func BenchmarkHilbertIndex(b *testing.B) {
	c, _ := New(5, 12)
	coords := []uint32{100, 2000, 3000, 50, 4000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Index(coords); err != nil {
			b.Fatal(err)
		}
	}
}
