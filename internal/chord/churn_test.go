package chord

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
)

// Crashing nodes without any table refresh must not break lookups:
// NextHop skips dead entries and the successor lists provide the
// last-mile redundancy (the reason Chord keeps 16 successors).
func TestLookupSurvivesCrashesWithoutRefresh(t *testing.T) {
	eng, net, nodes := newTestNet(t, 128, DefaultConfig())
	net.BuildAllTables()
	rng := rand.New(rand.NewSource(31))
	// Crash 10% of the nodes, no FixAround, no rebuild.
	for i := 0; i < 12; i++ {
		victim := nodes[rng.Intn(len(nodes))]
		if !victim.Alive() {
			continue
		}
		if err := net.CrashNode(victim.ID()); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 100; trial++ {
		key := ID(rng.Uint64())
		var src *Node
		for src == nil || !src.Alive() {
			src = nodes[rng.Intn(len(nodes))]
		}
		want, err := net.SuccessorID(key)
		if err != nil {
			t.Fatal(err)
		}
		var got ID
		completed := false
		src.FindSuccessor(key, 40, func(owner ID, _ int) { got, completed = owner, true })
		eng.Run()
		if !completed {
			t.Fatal("lookup hung after crashes")
		}
		if got != want {
			t.Fatalf("lookup(%#x) = %#x, want %#x after crashes", key, got, want)
		}
	}
}

// With more crashes than the successor-list length in one region,
// FixAround restores correctness.
func TestFixAroundRepairsRegion(t *testing.T) {
	_, net, _ := newTestNet(t, 64, DefaultConfig())
	net.BuildAllTables()
	// Kill 8 consecutive ring nodes (a correlated regional failure).
	ring := append([]ID(nil), net.ring...)
	for i := 10; i < 18; i++ {
		if err := net.CrashNode(ring[i]); err != nil {
			t.Fatal(err)
		}
	}
	net.FixAround(ring[10])
	net.FixAround(ring[17])
	// Ownership of the dead region must have passed to the next
	// survivor.
	owner, err := net.SuccessorNode(ring[12])
	if err != nil {
		t.Fatal(err)
	}
	if !owner.Alive() {
		t.Fatal("owner not alive")
	}
	if !owner.OwnsKey(ring[12]) {
		t.Fatal("survivor does not own the dead region after FixAround")
	}
}

// Protocol-mode maintenance must repair successor/predecessor pointers
// after crashes, with no oracle help.
func TestProtocolRepairsAfterCrash(t *testing.T) {
	eng := sim.NewEngine(1)
	model, _ := netmodel.NewSyntheticKing(netmodel.KingConfig{N: 48, Seed: 1})
	cfg := DefaultConfig()
	cfg.StabilizeEvery = 500 * time.Millisecond
	net := NewNetwork(eng, model, cfg)
	rng := rand.New(rand.NewSource(7))

	var first *Node
	for i := 0; i < 48; i++ {
		nd, err := net.AddNode(ID(rng.Uint64()), i)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = nd
			nd.JoinVia(nd.ID(), nil)
			continue
		}
		joiner := nd
		_ = joiner
		eng.Schedule(time.Duration(rng.Int63n(int64(5*time.Second))), func() {
			joiner.JoinVia(first.ID(), nil)
		})
	}
	eng.RunUntil(3 * time.Minute)

	// Crash a third of the network.
	live := net.Nodes()
	for i := 0; i < 16; i++ {
		victim := live[rng.Intn(len(live))]
		if victim.Alive() && victim != first {
			_ = net.CrashNode(victim.ID())
		}
	}
	// Let stabilization repair.
	eng.RunUntil(eng.Now() + 5*time.Minute)
	for _, nd := range net.Nodes() {
		nd.StopMaintenance()
	}

	ids := append([]ID(nil), net.ring...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, nd := range net.Nodes() {
		self := sort.Search(len(ids), func(i int) bool { return ids[i] >= nd.ID() })
		want := ids[(self+1)%len(ids)]
		if nd.Successor() != want {
			t.Fatalf("node %#x successor = %#x, want %#x (repair failed)", nd.ID(), nd.Successor(), want)
		}
	}
	// Lookups correct post-repair.
	for trial := 0; trial < 30; trial++ {
		key := ID(rng.Uint64())
		src := net.Nodes()[rng.Intn(net.Size())]
		want, _ := net.SuccessorID(key)
		var got ID
		src.FindSuccessor(key, 40, func(owner ID, _ int) { got = owner })
		eng.Run()
		if got != want {
			t.Fatalf("post-repair lookup(%#x) = %#x, want %#x", key, got, want)
		}
	}
}
