package chord

import (
	"math/rand"
	"time"

	"landmarkdht/internal/runtime"
)

// FaultPlan is a seeded, deterministic fault-injection policy attached
// to a Network through Config.Faults. Every decision (whether a message
// is lost, how much extra latency it suffers) is drawn from the driving
// runtime's random source, so a simulated trial with the same seed and
// the same plan replays byte-identically.
//
// The plan can express three failure modes:
//
//   - message loss: each message of kind k is dropped with probability
//     drop[k] (the sender is NOT told synchronously; the loss surfaces
//     at the would-be delivery time through SendOrFail's failed
//     callback, mimicking a timeout-detectable loss),
//   - latency faults: a uniform jitter up to Jitter per message, plus
//     rare spikes of SpikeDelay with probability SpikeProb (a slow or
//     congested link), and
//   - partitions: timed windows during which messages crossing the
//     boundary between a host group and the rest of the network are
//     all lost.
//
// Crash/rejoin schedules are not part of the plan: they are membership
// events, driven by the harness through System.CrashNode / JoinNode.
type FaultPlan struct {
	drop       [numKinds]float64
	dup        float64
	jitter     time.Duration
	spikeProb  float64
	spikeDelay time.Duration
	partitions []partitionWindow

	// Dropped counts messages lost to injected loss or partitions,
	// by kind. Read-only for callers.
	Dropped [numKinds]int64
	// Duplicated counts messages delivered twice. Read-only.
	Duplicated int64
}

// partitionWindow separates a host group from everything else during
// [from, to) — once, or repeating with period every.
type partitionWindow struct {
	hosts           map[int]bool
	from, to, every time.Duration
}

// active reports whether the window is partitioning at time now.
func (p partitionWindow) active(now time.Duration) bool {
	if now < p.from {
		return false
	}
	if p.every > 0 {
		return (now-p.from)%p.every < p.to-p.from
	}
	return now < p.to
}

// NewFaultPlan returns an empty plan (no faults). Configure it with the
// chainable setters.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// DropAll sets the same loss probability for every message kind.
func (f *FaultPlan) DropAll(p float64) *FaultPlan {
	for k := range f.drop {
		f.drop[k] = p
	}
	return f
}

// Drop sets the loss probability for one message kind.
func (f *FaultPlan) Drop(kind MsgKind, p float64) *FaultPlan {
	f.drop[kind] = p
	return f
}

// Jitter adds a uniform random extra delay in [0, d) to every message.
func (f *FaultPlan) Jitter(d time.Duration) *FaultPlan {
	f.jitter = d
	return f
}

// Spike makes each message suffer an extra delay of d with probability
// p (a latency spike, e.g. a congested or lossy-with-retransmit link).
func (f *FaultPlan) Spike(p float64, d time.Duration) *FaultPlan {
	f.spikeProb = p
	f.spikeDelay = d
	return f
}

// Partition separates the given host group from the rest of the
// network during the window [from, to) of simulated time: any message
// with exactly one endpoint inside the group is lost.
func (f *FaultPlan) Partition(hosts []int, from, to time.Duration) *FaultPlan {
	return f.PartitionEvery(hosts, from, to, 0)
}

// PartitionEvery is Partition with a repeating window: starting at
// from, the group is cut off for to-from out of every `every` elapsed
// (every = 0 degenerates to a single window).
func (f *FaultPlan) PartitionEvery(hosts []int, from, to, every time.Duration) *FaultPlan {
	set := make(map[int]bool, len(hosts))
	for _, h := range hosts {
		set[h] = true
	}
	f.partitions = append(f.partitions, partitionWindow{hosts: set, from: from, to: to, every: every})
	return f
}

// Duplicate makes each query and acknowledgement message delivered
// twice with probability p — the kinds whose receive paths are
// idempotent by protocol design (subquery units and result merges
// settle exactly once; a duplicate ack is a no-op). Duplicating
// storage-mutating kinds would require receiver-side dedup state the
// paper's protocol does not carry, so those kinds are never doubled.
func (f *FaultPlan) Duplicate(p float64) *FaultPlan {
	f.dup = p
	return f
}

// TotalDropped sums the injected losses over all message kinds.
func (f *FaultPlan) TotalDropped() int64 {
	var total int64
	for _, n := range f.Dropped {
		total += n
	}
	return total
}

// lost decides whether a message of the given kind between the two
// hosts, sent at time now, is lost. It consumes at most one random
// draw (only when the kind has a non-zero loss probability), keeping
// the draw sequence stable across configurations that only change
// probabilities.
func (f *FaultPlan) lost(rng *rand.Rand, kind MsgKind, fromHost, toHost int, now time.Duration) bool {
	for _, p := range f.partitions {
		if p.active(now) && p.hosts[fromHost] != p.hosts[toHost] {
			f.Dropped[kind]++
			return true
		}
	}
	if f.drop[kind] > 0 && rng.Float64() < f.drop[kind] {
		f.Dropped[kind]++
		return true
	}
	return false
}

// extraDelay draws the message's latency fault (jitter plus an
// occasional spike).
func (f *FaultPlan) extraDelay(rng *rand.Rand) time.Duration {
	var d time.Duration
	if f.jitter > 0 {
		d += time.Duration(rng.Int63n(int64(f.jitter)))
	}
	if f.spikeProb > 0 && rng.Float64() < f.spikeProb {
		d += f.spikeDelay
	}
	return d
}

// duplicated decides whether a surviving message is delivered twice.
// Like lost, it consumes a draw only when duplication is configured
// and the kind is eligible, keeping disabled configurations
// byte-identical.
func (f *FaultPlan) duplicated(rng *rand.Rand, kind MsgKind) bool {
	if f.dup <= 0 {
		return false
	}
	switch kind {
	case KindQuery, KindAck:
	default:
		return false
	}
	if rng.Float64() < f.dup {
		f.Duplicated++
		return true
	}
	return false
}

// FaultPlanFromPolicy translates the runtime-agnostic fault policy
// (internal/runtime.FaultPolicy) into a chord fault plan — the
// delegation that lets one policy drive both runtimes: the
// protocol-level faults (drop, duplicate, delay, partition) inject
// here, identically over the simulated and the live transport, while
// the policy's transport-level faults (frame drops, connection kills)
// are consumed by the live transport itself. A zero policy produces a
// plan that never draws from the random source, so replay stays
// byte-identical to running with no plan at all.
func FaultPlanFromPolicy(p *runtime.FaultPolicy) *FaultPlan {
	f := NewFaultPlan().
		DropAll(p.Drop).
		Jitter(p.Jitter).
		Spike(p.SpikeProb, p.SpikeDelay).
		Duplicate(p.Duplicate)
	for _, w := range p.Partitions {
		f.PartitionEvery(w.Hosts, w.From, w.To, w.Every)
	}
	return f
}
