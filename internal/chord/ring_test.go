package chord

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: InOpen and InOpenClosed behave like interval membership
// after rotating the whole ring so that a maps to zero — rotation
// invariance is what makes the §3.4 space-mapping rotation sound.
func TestQuickIntervalRotationInvariance(t *testing.T) {
	f := func(a, x, b, shift ID) bool {
		if InOpen(a, x, b) != InOpen(a+shift, x+shift, b+shift) {
			return false
		}
		return InOpenClosed(a, x, b) == InOpenClosed(a+shift, x+shift, b+shift)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: for a != b, every x is in exactly one of (a, b] and (b, a].
func TestQuickIntervalPartition(t *testing.T) {
	f := func(a, x, b ID) bool {
		if a == b {
			return true
		}
		in1 := InOpenClosed(a, x, b)
		in2 := InOpenClosed(b, x, a)
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: InOpen(a,x,b) implies InOpenClosed(a,x,b), and x==b is in
// the half-open but not the open interval.
func TestQuickIntervalInclusion(t *testing.T) {
	f := func(a, x, b ID) bool {
		if InOpen(a, x, b) && !InOpenClosed(a, x, b) {
			return false
		}
		if a != b && !InOpenClosed(a, b, b) {
			return false
		}
		if InOpen(a, b, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dist(a,b) + Dist(b,a) == 0 mod 2^64 for a != b (the two
// arcs complete the ring), and Dist(a,a) == 0.
func TestQuickDistArcs(t *testing.T) {
	f := func(a, b ID) bool {
		if a == b {
			return Dist(a, b) == 0
		}
		return Dist(a, b)+Dist(b, a) == 0 // wraps to 2^64 ≡ 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

// dedupeTrim invariants: no self, no duplicates, no dead nodes, length
// capped, order preserved.
func TestDedupeTrim(t *testing.T) {
	_, net, nodes := newTestNet(t, 8, DefaultConfig())
	self := nodes[0].ID()
	alive1, alive2 := nodes[1].ID(), nodes[2].ID()
	candidates := []ID{self, alive1, alive1, 0xdeadbeef, alive2, alive1}
	out := dedupeTrim(self, candidates, 2, net)
	if len(out) != 2 || out[0] != alive1 || out[1] != alive2 {
		t.Fatalf("out = %#x", out)
	}
	// All-dead candidates: fall back to self.
	out = dedupeTrim(self, []ID{0xdead, 0xbeef}, 4, net)
	if len(out) != 1 || out[0] != self {
		t.Fatalf("fallback = %#x", out)
	}
}

// notify must only adopt candidates that tighten the predecessor.
func TestNotifyTightens(t *testing.T) {
	_, net, _ := newTestNet(t, 8, DefaultConfig())
	net.BuildAllTables()
	nd := net.Nodes()[3]
	pred, _ := nd.Predecessor()
	// A candidate behind the current predecessor must be rejected.
	behind := pred - 10
	if net.Node(behind) == nil {
		nd.notify(behind)
		if got, _ := nd.Predecessor(); got != pred {
			t.Fatalf("notify adopted a looser predecessor %#x over %#x", got, pred)
		}
	}
	// A candidate strictly between pred and self must be adopted.
	between := pred + 1
	if between != nd.ID() {
		nd.notify(between)
		if got, _ := nd.Predecessor(); got != between {
			t.Fatalf("notify rejected tighter predecessor: got %#x want %#x", got, between)
		}
	}
	// Self-notify is a no-op.
	nd.notify(nd.ID())
	if got, _ := nd.Predecessor(); got != between {
		t.Fatal("self-notify changed predecessor")
	}
}
