package chord

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
)

func newTestNet(t *testing.T, n int, cfg Config) (*sim.Engine, *Network, []*Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(eng, model, cfg)
	rng := rand.New(rand.NewSource(2))
	nodes := make([]*Node, 0, n)
	used := map[ID]bool{}
	for i := 0; i < n; i++ {
		id := ID(rng.Uint64())
		for used[id] {
			id = ID(rng.Uint64())
		}
		used[id] = true
		nd, err := net.AddNode(id, i)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	return eng, net, nodes
}

func TestIntervalHelpers(t *testing.T) {
	if !InOpen(10, 20, 30) || InOpen(10, 10, 30) || InOpen(10, 30, 30) {
		t.Fatal("InOpen basic")
	}
	// Wrapped interval.
	if !InOpen(^ID(0)-5, 2, 10) {
		t.Fatal("InOpen wrap")
	}
	if !InOpenClosed(10, 30, 30) || InOpenClosed(10, 10, 30) {
		t.Fatal("InOpenClosed basic")
	}
	// Degenerate a == b: whole ring.
	if !InOpenClosed(7, 3, 7) || !InOpenClosed(7, 7, 7) {
		t.Fatal("InOpenClosed degenerate")
	}
	if InOpen(7, 7, 7) || !InOpen(7, 8, 7) {
		t.Fatal("InOpen degenerate")
	}
	if Dist(10, 3) != ^ID(0)-6 {
		t.Fatal("Dist wrap")
	}
}

func TestAddRemoveNode(t *testing.T) {
	_, net, nodes := newTestNet(t, 10, DefaultConfig())
	if net.Size() != 10 {
		t.Fatalf("size = %d", net.Size())
	}
	if _, err := net.AddNode(nodes[0].ID(), 0); err == nil {
		t.Fatal("expected duplicate-id error")
	}
	if _, err := net.AddNode(12345, 99999); err == nil {
		t.Fatal("expected host-range error")
	}
	if err := net.RemoveNode(nodes[3].ID()); err != nil {
		t.Fatal(err)
	}
	if net.Size() != 9 {
		t.Fatalf("size after remove = %d", net.Size())
	}
	if err := net.RemoveNode(nodes[3].ID()); err == nil {
		t.Fatal("expected error removing twice")
	}
	if nodes[3].Alive() {
		t.Fatal("removed node still alive")
	}
}

func TestOracleSuccessor(t *testing.T) {
	_, net, _ := newTestNet(t, 50, DefaultConfig())
	ids := append([]ID(nil), net.ring...)
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatal("ring not sorted")
	}
	// Exact hit.
	got, err := net.SuccessorID(ids[7])
	if err != nil || got != ids[7] {
		t.Fatalf("successor(exact) = %#x, err=%v", got, err)
	}
	// Between two ids.
	if ids[8]-ids[7] > 1 {
		got, _ = net.SuccessorID(ids[7] + 1)
		if got != ids[8] {
			t.Fatalf("successor(mid) = %#x, want %#x", got, ids[8])
		}
	}
	// Wraparound past the largest id.
	got, _ = net.SuccessorID(ids[len(ids)-1] + 1)
	if got != ids[0] {
		t.Fatalf("successor(wrap) = %#x, want %#x", got, ids[0])
	}
}

func TestBuildTablesInvariants(t *testing.T) {
	_, net, nodes := newTestNet(t, 64, DefaultConfig())
	net.BuildAllTables()
	ids := append([]ID(nil), net.ring...)
	for _, nd := range nodes {
		self := sort.Search(len(ids), func(i int) bool { return ids[i] >= nd.ID() })
		wantSucc := ids[(self+1)%len(ids)]
		if nd.Successor() != wantSucc {
			t.Fatalf("node %#x successor = %#x, want %#x", nd.ID(), nd.Successor(), wantSucc)
		}
		pred, ok := nd.Predecessor()
		if !ok || pred != ids[(self-1+len(ids))%len(ids)] {
			t.Fatalf("node %#x predecessor wrong", nd.ID())
		}
		if got := len(nd.SuccessorList()); got != 16 {
			t.Fatalf("successor list len = %d", got)
		}
		// Fingers must lie in (or be the successor of) their interval.
		for i := 0; i < 64; i++ {
			start := nd.ID() + 1<<uint(i)
			f := nd.Finger(i)
			oracle, _ := net.SuccessorID(start)
			if !net.cfg.PNS {
				if f != oracle {
					t.Fatalf("finger %d = %#x, want %#x", i, f, oracle)
				}
				continue
			}
			// With PNS the finger must still be a live node at-or-after
			// start but before start+2^i... it can also be the plain
			// successor when the interval is empty.
			if f != oracle && !InOpenClosed(start-1, f, start+1<<uint(i)-1) {
				t.Fatalf("PNS finger %d = %#x outside interval (oracle %#x)", i, f, oracle)
			}
		}
	}
}

func TestOwnsKey(t *testing.T) {
	_, net, _ := newTestNet(t, 16, DefaultConfig())
	net.BuildAllTables()
	// Every key must be owned by exactly its oracle successor.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		key := ID(rng.Uint64())
		owner, _ := net.SuccessorNode(key)
		count := 0
		for _, nd := range net.Nodes() {
			if nd.OwnsKey(key) {
				count++
				if nd.ID() != owner.ID() {
					t.Fatalf("key %#x claimed by %#x, oracle owner %#x", key, nd.ID(), owner.ID())
				}
			}
		}
		if count != 1 {
			t.Fatalf("key %#x owned by %d nodes", key, count)
		}
	}
}

func TestNextHopMakesProgress(t *testing.T) {
	_, net, nodes := newTestNet(t, 64, DefaultConfig())
	net.BuildAllTables()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		key := ID(rng.Uint64())
		nd := nodes[rng.Intn(len(nodes))]
		hop := nd.NextHop(key)
		if hop == nd.ID() {
			// Terminal: successor must own the key.
			succ := net.Node(nd.Successor())
			if !succ.OwnsKey(key) && !nd.OwnsKey(key) {
				t.Fatalf("NextHop=self but successor %#x does not own key %#x", succ.ID(), key)
			}
			continue
		}
		// Progress: hop must be strictly closer (preceding) to key.
		if Dist(hop, key) >= Dist(nd.ID(), key) {
			t.Fatalf("no progress: me=%#x hop=%#x key=%#x", nd.ID(), hop, key)
		}
		if hop == key {
			t.Fatal("NextHop returned the key's own node (successor, not predecessor)")
		}
	}
}

func TestFindSuccessorMatchesOracle(t *testing.T) {
	eng, net, nodes := newTestNet(t, 64, DefaultConfig())
	net.BuildAllTables()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		key := ID(rng.Uint64())
		src := nodes[rng.Intn(len(nodes))]
		want, _ := net.SuccessorID(key)
		var got ID
		var hops int
		done := false
		src.FindSuccessor(key, 40, func(owner ID, h int) {
			got, hops, done = owner, h, true
		})
		eng.Run()
		if !done {
			t.Fatal("lookup did not complete")
		}
		if got != want {
			t.Fatalf("lookup(%#x) = %#x, want %#x", key, got, want)
		}
		if hops > 20 {
			t.Fatalf("lookup took %d hops in a 64-node network", hops)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	eng, net, nodes := newTestNet(t, 256, DefaultConfig())
	net.BuildAllTables()
	rng := rand.New(rand.NewSource(6))
	var total int
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		key := ID(rng.Uint64())
		src := nodes[rng.Intn(len(nodes))]
		src.FindSuccessor(key, 40, func(_ ID, h int) { total += h })
		eng.Run()
	}
	avg := float64(total) / trials
	// log2(256) = 8; with fingers + 16 successors expect ~4-5.
	if avg > 8 {
		t.Fatalf("average hops = %.2f, want <= 8", avg)
	}
	if avg < 0.5 {
		t.Fatalf("average hops = %.2f suspiciously low", avg)
	}
}

func TestPNSReducesLatency(t *testing.T) {
	run := func(pns bool) time.Duration {
		cfg := DefaultConfig()
		cfg.PNS = pns
		eng, net, nodes := newTestNet(t, 128, cfg)
		net.BuildAllTables()
		rng := rand.New(rand.NewSource(7))
		var total time.Duration
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			key := ID(rng.Uint64())
			src := nodes[rng.Intn(len(nodes))]
			start := eng.Now()
			src.FindSuccessor(key, 40, func(_ ID, _ int) {
				total += eng.Now() - start
			})
			eng.Run()
		}
		return total / trials
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("PNS did not reduce mean lookup latency: with=%v without=%v", with, without)
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng, net, nodes := newTestNet(t, 16, DefaultConfig())
	net.BuildAllTables()
	nodes[0].FindSuccessor(nodes[8].ID()+1, 100, func(ID, int) {})
	eng.Run()
	tr := net.Traffic()
	msgs, bytes := tr.Total()
	if msgs == 0 && nodes[0].NextHop(nodes[8].ID()+1) != nodes[0].ID() {
		t.Fatal("no traffic recorded for multi-hop lookup")
	}
	if bytes != msgs*100 {
		t.Fatalf("bytes = %d, msgs = %d (want 100 bytes each)", bytes, msgs)
	}
	net.ResetTraffic()
	tr = net.Traffic()
	if m, b := tr.Total(); m != 0 || b != 0 {
		t.Fatal("ResetTraffic did not zero counters")
	}
}

func TestSendToDeadNodeDropped(t *testing.T) {
	eng, net, nodes := newTestNet(t, 8, DefaultConfig())
	net.BuildAllTables()
	delivered := false
	target := nodes[5].ID()
	net.Send(nodes[0], target, KindQuery, 10, func(*Node) { delivered = true })
	// Kill the target while the message is in flight.
	if err := net.RemoveNode(target); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if delivered {
		t.Fatal("message delivered to dead node")
	}
}

func TestRejoinMovesNode(t *testing.T) {
	_, net, nodes := newTestNet(t, 16, DefaultConfig())
	net.BuildAllTables()
	old := nodes[3]
	host := old.Host()
	var newID ID = 0x1234567890ABCDEF
	if net.Node(newID) != nil {
		t.Skip("collision in test ids")
	}
	fresh, err := net.Rejoin(old.ID(), newID)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Host() != host {
		t.Fatal("rejoin changed physical host")
	}
	if net.Node(old.ID()) != nil {
		t.Fatal("old id still present")
	}
	if net.Size() != 16 {
		t.Fatalf("size = %d", net.Size())
	}
	net.RefreshNeighborhood()
	owner, _ := net.SuccessorNode(newID)
	if owner.ID() != newID {
		t.Fatal("new node does not own its own id")
	}
	if _, err := net.Rejoin(99, 100); err == nil {
		t.Fatal("expected error rejoining unknown node")
	}
	if _, err := net.Rejoin(newID, nodes[5].ID()); err == nil {
		t.Fatal("expected error rejoining onto taken id")
	}
}

func TestProtocolJoinConverges(t *testing.T) {
	eng := sim.NewEngine(1)
	model, _ := netmodel.NewSyntheticKing(netmodel.KingConfig{N: 32, Seed: 1})
	cfg := DefaultConfig()
	cfg.StabilizeEvery = 500 * time.Millisecond
	net := NewNetwork(eng, model, cfg)
	rng := rand.New(rand.NewSource(9))

	// Bootstrap node.
	first, err := net.AddNode(ID(rng.Uint64()), 0)
	if err != nil {
		t.Fatal(err)
	}
	first.JoinVia(first.ID(), nil)
	// Other nodes join at random times over 10 seconds.
	for i := 1; i < 32; i++ {
		nd, err := net.AddNode(ID(rng.Uint64()), i)
		if err != nil {
			t.Fatal(err)
		}
		at := time.Duration(rng.Int63n(int64(10 * time.Second)))
		eng.Schedule(at, func() { nd.JoinVia(first.ID(), nil) })
	}
	// Let the system stabilize, then quiesce the maintenance timers so
	// the event queue can drain during the lookup phase.
	eng.RunUntil(5 * time.Minute)
	for _, nd := range net.Nodes() {
		nd.StopMaintenance()
	}

	// Every node's successor must now match the oracle ring.
	ids := append([]ID(nil), net.ring...)
	for _, nd := range net.Nodes() {
		self := sort.Search(len(ids), func(i int) bool { return ids[i] >= nd.ID() })
		want := ids[(self+1)%len(ids)]
		if nd.Successor() != want {
			t.Fatalf("node %#x successor = %#x, want %#x (protocol did not converge)",
				nd.ID(), nd.Successor(), want)
		}
		pred, ok := nd.Predecessor()
		wantPred := ids[(self-1+len(ids))%len(ids)]
		if !ok || pred != wantPred {
			t.Fatalf("node %#x predecessor = %#x, want %#x", nd.ID(), pred, wantPred)
		}
	}
	// Lookups must be correct in the converged network.
	for trial := 0; trial < 50; trial++ {
		key := ID(rng.Uint64())
		src := net.Nodes()[rng.Intn(net.Size())]
		want, _ := net.SuccessorID(key)
		var got ID
		src.FindSuccessor(key, 40, func(owner ID, _ int) { got = owner })
		eng.Run()
		if got != want {
			t.Fatalf("post-convergence lookup(%#x) = %#x, want %#x", key, got, want)
		}
	}
}

func TestMsgKindString(t *testing.T) {
	kinds := []MsgKind{KindMaintenance, KindLookup, KindQuery, KindResult, KindTransfer, MsgKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestNodesInRingOrder(t *testing.T) {
	_, net, _ := newTestNet(t, 20, DefaultConfig())
	prev := ID(0)
	for i, nd := range net.Nodes() {
		if i > 0 && nd.ID() <= prev {
			t.Fatal("Nodes() not in ring order")
		}
		prev = nd.ID()
	}
}

func BenchmarkLookup1024(b *testing.B) {
	eng := sim.NewEngine(1)
	model, _ := netmodel.NewSyntheticKing(netmodel.KingConfig{N: 1024, Seed: 1})
	net := NewNetwork(eng, model, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1024; i++ {
		if _, err := net.AddNode(ID(rng.Uint64()), i); err != nil {
			b.Fatal(err)
		}
	}
	net.BuildAllTables()
	nodes := net.Nodes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nodes[i%1024].FindSuccessor(ID(rng.Uint64()), 40, func(ID, int) {})
		eng.Run()
	}
}
