package chord

import (
	"fmt"

	"landmarkdht/internal/runtime"
)

// Node is one overlay participant.
type Node struct {
	net  *Network
	id   ID
	host int

	alive       bool
	crashed     bool
	tablesBuilt bool
	pred        ID
	hasPred     bool
	succ        []ID
	fingers     [64]ID

	ticker *runtime.Ticker
}

// ID returns the node's ring identifier.
func (nd *Node) ID() ID { return nd.id }

// Host returns the node's index in the latency model.
func (nd *Node) Host() int { return nd.host }

// Alive reports whether the node is still part of the overlay.
func (nd *Node) Alive() bool { return nd.alive }

// Crashed reports whether the node left the overlay by crashing (as
// opposed to a graceful leave). In-flight messages from a crashed node
// are lost.
func (nd *Node) Crashed() bool { return nd.crashed }

// Network returns the overlay the node belongs to.
func (nd *Node) Network() *Network { return nd.net }

// Successor returns the node's first live successor (itself on a
// single-node ring).
func (nd *Node) Successor() ID {
	for _, s := range nd.succ {
		if _, ok := nd.net.nodes[s]; ok {
			return s
		}
	}
	return nd.id
}

// SuccessorList returns a copy of the successor list.
func (nd *Node) SuccessorList() []ID { return append([]ID(nil), nd.succ...) }

// Predecessor returns the predecessor and whether it is known.
func (nd *Node) Predecessor() (ID, bool) { return nd.pred, nd.hasPred }

// Finger returns finger i (the node believed to succeed id + 2^i).
func (nd *Node) Finger(i int) ID { return nd.fingers[i] }

// OwnsKey reports whether this node is responsible for key, i.e.
// key ∈ (predecessor, id]. With no known predecessor the node claims
// everything (single-node ring).
func (nd *Node) OwnsKey(key ID) bool {
	if !nd.hasPred || nd.pred == nd.id {
		return true
	}
	return InOpenClosed(nd.pred, key, nd.id)
}

// NextHop implements the paper's footnote 4: the routing-table entry
// (fingers ∪ successor list ∪ self) whose identifier is immediately
// before key on the ring. It returns the node's own id when no table
// entry improves on it — the caller then hands the query to the
// successor for surrogate refinement.
func (nd *Node) NextHop(key ID) ID {
	best := nd.id
	bestDist := Dist(nd.id, key) // clockwise distance remaining after hop
	consider := func(c ID) {
		if c == key {
			return // that node *is* the successor, not the predecessor
		}
		if _, live := nd.net.nodes[c]; !live {
			return
		}
		if d := Dist(c, key); d < bestDist {
			best, bestDist = c, d
		}
	}
	for _, s := range nd.succ {
		consider(s)
	}
	for _, f := range nd.fingers {
		if f != 0 || nd.net.Node(0) != nil {
			consider(f)
		}
	}
	return best
}

// String describes the node.
func (nd *Node) String() string {
	return fmt.Sprintf("chord.Node(%#x)", nd.id)
}

// StopMaintenance halts the node's protocol maintenance timer. Used
// when a measurement phase wants a quiescent network.
func (nd *Node) StopMaintenance() { nd.stopMaintenance() }

// stopMaintenance halts the protocol timer if running.
func (nd *Node) stopMaintenance() {
	if nd.ticker != nil {
		nd.ticker.Stop()
		nd.ticker = nil
	}
}

// FindSuccessor resolves successor(key) with the iterative Chord
// lookup over simulated messages: at most one round trip per hop, each
// hop chosen by NextHop at the queried node. done receives the
// successor's identifier and the number of hops taken.
func (nd *Node) FindSuccessor(key ID, bytes int, done func(owner ID, hops int)) {
	nd.findStep(nd, key, bytes, 0, done)
}

const maxLookupHops = 128

func (nd *Node) findStep(cur *Node, key ID, bytes, hops int, done func(ID, int)) {
	// If key ∈ (cur, successor(cur)], the successor owns it.
	succ := cur.Successor()
	if succ == cur.id || InOpenClosed(cur.id, key, succ) {
		done(succ, hops)
		return
	}
	next := cur.NextHop(key)
	if next == cur.id {
		// No table entry improves: the successor is the best guess.
		done(succ, hops)
		return
	}
	if hops >= maxLookupHops {
		done(succ, hops)
		return
	}
	// One message to the next hop; the continuation runs there.
	nd.net.Send(cur, next, KindLookup, bytes, func(dst *Node) {
		nd.findStep(dst, key, bytes, hops+1, done)
	})
}
