package chord

import (
	"fmt"
	"sort"
	"time"

	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/runtime"
	"landmarkdht/internal/runtime/simrt"
	"landmarkdht/internal/sim"
)

// MsgKind classifies simulated messages for cost accounting. The paper
// reports query-delivery and result-delivery bandwidth separately and
// notes that DHT maintenance can be piggybacked onto query traffic.
type MsgKind int

const (
	// KindMaintenance covers stabilize / notify / fix-finger traffic.
	KindMaintenance MsgKind = iota
	// KindLookup covers find-successor traffic (index publication).
	KindLookup
	// KindQuery covers range-query delivery messages.
	KindQuery
	// KindResult covers result-delivery messages.
	KindResult
	// KindTransfer covers load-migration index transfers.
	KindTransfer
	// KindAck covers delivery acknowledgements of the reliable
	// subquery-delivery layer.
	KindAck
	// KindBatch covers the shared envelope overhead of destination
	// batches (each batched member's trimmed bytes stay charged to its
	// own kind, so per-kind totals remain comparable across modes).
	KindBatch
	numKinds
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case KindMaintenance:
		return "maintenance"
	case KindLookup:
		return "lookup"
	case KindQuery:
		return "query"
	case KindResult:
		return "result"
	case KindTransfer:
		return "transfer"
	case KindAck:
		return "ack"
	case KindBatch:
		return "batch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Traffic accumulates per-kind message and byte counts. Frames counts
// physical transport sends: without batching every message is its own
// frame; with destination batching a whole batch is one frame, which
// is where the bandwidth win (fewer packet headers) comes from.
type Traffic struct {
	Msgs   [numKinds]int64
	Bytes  [numKinds]int64
	Frames int64
}

// Add records one message of the given kind and size.
func (t *Traffic) Add(kind MsgKind, bytes int) {
	t.Msgs[kind]++
	t.Bytes[kind] += int64(bytes)
}

// AddBytes charges bytes to a kind without counting a message: the
// destination-batch envelope, whose members are counted individually.
func (t *Traffic) AddBytes(kind MsgKind, bytes int) {
	t.Bytes[kind] += int64(bytes)
}

// Total returns the sum over all kinds.
func (t *Traffic) Total() (msgs, bytes int64) {
	for k := 0; k < int(numKinds); k++ {
		msgs += t.Msgs[k]
		bytes += t.Bytes[k]
	}
	return
}

// Config parameterizes the overlay. The defaults match the paper's
// simulation setup: base-2 fingers, 16 successors, PNS enabled.
type Config struct {
	// NumSuccessors is the successor-list length (paper: 16).
	NumSuccessors int
	// PNS enables proximity neighbor selection for fingers.
	PNS bool
	// PNSSample is the number of ring-order candidates examined per
	// finger when PNS is on (Chord-PNS(16)).
	PNSSample int
	// StabilizeEvery enables message-driven maintenance with the given
	// period when positive; zero relies on the oracle fast path.
	StabilizeEvery time.Duration
	// MaintenanceBytes is the nominal size of one maintenance message.
	MaintenanceBytes int
	// Faults, when non-nil, injects deterministic message-level
	// failures (loss, latency jitter/spikes, partitions) into every
	// Send. Decisions are drawn from the engine RNG, so trials stay
	// reproducible for a given seed.
	Faults *FaultPlan
	// Batch, when enabled (MaxDelay > 0), coalesces query, result and
	// ack messages bound for the same destination into one batched
	// frame (wire.Batch), flushed on a small time/size budget.
	Batch BatchConfig
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{NumSuccessors: 16, PNS: true, PNSSample: 16, MaintenanceBytes: 40}
}

func (c *Config) fillDefaults() {
	if c.NumSuccessors <= 0 {
		c.NumSuccessors = 16
	}
	if c.PNSSample <= 0 {
		c.PNSSample = 16
	}
	if c.MaintenanceBytes <= 0 {
		c.MaintenanceBytes = 40
	}
	c.Batch.fillDefaults()
}

// Network is the overlay: the set of live nodes, the latency model,
// and traffic accounting. It executes over the runtime seams — a
// Clock for timing and a Transport for message movement — and its
// protocol callbacks are single-threaded by contract: the simulated
// runtime drives them from one engine, the live runtime serializes
// them on one protocol goroutine. A Network is therefore never touched
// from more than one execution context at a time.
type Network struct {
	rt      runtime.Runtime
	tr      runtime.Transport
	model   netmodel.Model
	cfg     Config
	nodes   map[ID]*Node
	ring    []ID // sorted live IDs (oracle view)
	traffic Traffic
	// pool recycles inflight records so the per-message delivery path
	// allocates nothing in steady state (DESIGN.md §9).
	pool []*inflight
	// batches holds the open per-destination batches while destination
	// batching is enabled (batch.go); nil otherwise.
	batches map[batchKey]*pendingBatch
}

// NewNetwork creates an empty overlay driven by a simulation engine —
// the historical constructor, equivalent to NewNetworkRuntime over the
// simrt adapter.
func NewNetwork(eng *sim.Engine, model netmodel.Model, cfg Config) *Network {
	rt := simrt.New(eng)
	return NewNetworkRuntime(rt, rt, model, cfg)
}

// NewNetworkRuntime creates an empty overlay over explicit runtime
// seams (simulated or live).
func NewNetworkRuntime(rt runtime.Runtime, tr runtime.Transport, model netmodel.Model, cfg Config) *Network {
	cfg.fillDefaults()
	return &Network{rt: rt, tr: tr, model: model, cfg: cfg, nodes: make(map[ID]*Node)}
}

// Runtime returns the runtime driving the overlay.
func (n *Network) Runtime() runtime.Runtime { return n.rt }

// Config returns the overlay configuration.
func (n *Network) Config() Config { return n.cfg }

// Traffic returns a snapshot of the accumulated traffic counters.
func (n *Network) Traffic() Traffic { return n.traffic }

// ResetTraffic zeroes the traffic counters (used to exclude setup
// traffic from measurement windows).
func (n *Network) ResetTraffic() { n.traffic = Traffic{} }

// RecordTraffic accounts application-level traffic that does not go
// through Send (e.g. piggybacked load probes, bulk transfers).
func (n *Network) RecordTraffic(kind MsgKind, bytes int) { n.traffic.Add(kind, bytes) }

// Size returns the number of live nodes.
func (n *Network) Size() int { return len(n.ring) }

// Nodes returns the live nodes in ring order.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, len(n.ring))
	for i, id := range n.ring {
		out[i] = n.nodes[id]
	}
	return out
}

// Node returns the live node with the given identifier, or nil.
func (n *Network) Node(id ID) *Node {
	return n.nodes[id]
}

// AddNode inserts a node with the given identifier and latency-model
// host index into the oracle ring. Its routing tables are empty until
// BuildTables / BuildAllTables or protocol maintenance fills them.
func (n *Network) AddNode(id ID, host int) (*Node, error) {
	if _, dup := n.nodes[id]; dup {
		return nil, fmt.Errorf("chord: duplicate node id %#x", id)
	}
	if host < 0 || host >= n.model.Size() {
		return nil, fmt.Errorf("chord: host index %d outside latency model of size %d", host, n.model.Size())
	}
	node := &Node{net: n, id: id, host: host, alive: true}
	n.nodes[id] = node
	i := sort.Search(len(n.ring), func(i int) bool { return n.ring[i] >= id })
	n.ring = append(n.ring, 0)
	copy(n.ring[i+1:], n.ring[i:])
	n.ring[i] = id
	runtime.RegisterNode(n.tr, uint64(id))
	return node, nil
}

// RemoveNode deletes a node from the overlay (a graceful leave at the
// chord layer; the application is responsible for data handoff).
func (n *Network) RemoveNode(id ID) error {
	node, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("chord: remove of unknown node %#x", id)
	}
	node.alive = false
	node.stopMaintenance()
	delete(n.nodes, id)
	i := sort.Search(len(n.ring), func(i int) bool { return n.ring[i] >= id })
	if i < len(n.ring) && n.ring[i] == id {
		n.ring = append(n.ring[:i], n.ring[i+1:]...)
	}
	runtime.UnregisterNode(n.tr, uint64(id))
	return nil
}

// CrashNode removes a node abruptly. Unlike the graceful RemoveNode:
//
//   - in-flight messages *from* the crashed node are lost too (its
//     process died with them; a graceful leaver's messages still
//     arrive), and
//   - no application handoff happens — the node's entries are gone
//     until republished or covered by replicas.
//
// In-flight messages *to* the node are lost in both cases. Routing
// state of other nodes is NOT refreshed — stale fingers and successor
// entries are skipped by liveness checks and repaired by stabilization
// or FixAround.
func (n *Network) CrashNode(id ID) error {
	node, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("chord: crash of unknown node %#x", id)
	}
	node.crashed = true
	return n.RemoveNode(id)
}

// SuccessorID returns the oracle successor of key: the live node whose
// identifier is equal to or immediately follows key on the ring.
func (n *Network) SuccessorID(key ID) (ID, error) {
	if len(n.ring) == 0 {
		return 0, fmt.Errorf("chord: empty ring")
	}
	i := sort.Search(len(n.ring), func(i int) bool { return n.ring[i] >= key })
	if i == len(n.ring) {
		i = 0
	}
	return n.ring[i], nil
}

// SuccessorNode returns the oracle successor node of key.
func (n *Network) SuccessorNode(key ID) (*Node, error) {
	id, err := n.SuccessorID(key)
	if err != nil {
		return nil, err
	}
	return n.nodes[id], nil
}

// successorIndex returns the ring index of the successor of key.
func (n *Network) successorIndex(key ID) int {
	i := sort.Search(len(n.ring), func(i int) bool { return n.ring[i] >= key })
	if i == len(n.ring) {
		i = 0
	}
	return i
}

// Latency returns the one-way delay between two nodes.
func (n *Network) Latency(a, b *Node) time.Duration {
	return n.model.Latency(a.host, b.host)
}

// Send simulates a message from node `from` to the node currently
// identified by `to`: it accounts the bytes, waits the one-way
// latency, and then runs deliver if the destination is still alive.
// deliver receives the destination node.
func (n *Network) Send(from *Node, to ID, kind MsgKind, bytes int, deliver func(dst *Node)) {
	n.SendOrFail(from, to, kind, bytes, deliver, nil)
}

// SendOrFail is Send with an explicit loss callback: failed runs (at
// send time or at the would-be delivery time) when the destination is
// unknown, either endpoint crashes while the message is in flight, or
// the network's FaultPlan drops the message.
func (n *Network) SendOrFail(from *Node, to ID, kind MsgKind, bytes int, deliver func(dst *Node), failed func()) {
	n.send(from, to, kind, bytes, nil, deliver, failed)
}

// SendPayload sends a message whose wire encoding is already in hand:
// the payload bytes travel through the transport (a live transport
// frames and ships them on the destination's connection; the simulated
// transport has charged their size and ignores the content). deliver
// still receives the destination node — the payload reaches the callback
// through its own prebound state, exactly as with SendOrFail.
func (n *Network) SendPayload(from *Node, to ID, kind MsgKind, payload []byte, deliver func(dst *Node), failed func()) {
	n.send(from, to, kind, len(payload), payload, deliver, failed)
}

// send is the common path: traffic accounting, fault injection, and
// handoff to the transport with the pooled inflight record as the
// prebound delivery argument.
func (n *Network) send(from *Node, to ID, kind MsgKind, bytes int, payload []byte, deliver func(dst *Node), failed func()) {
	if n.cfg.Batch.Enabled() && batchable(kind) {
		n.enqueueBatch(from, to, kind, bytes, payload, deliver, failed)
		return
	}
	n.traffic.Add(kind, bytes)
	n.traffic.Frames++
	dst, ok := n.nodes[to]
	if !ok {
		// Destination unknown at send time: the message is charged and
		// lost.
		if failed != nil {
			failed()
		}
		return
	}
	delay := n.model.Latency(from.host, dst.host)
	if f := n.cfg.Faults; f != nil {
		if f.lost(n.rt.Rand(), kind, from.host, dst.host, n.rt.Now()) {
			// The loss surfaces at the would-be delivery time (not
			// synchronously): a sender can only learn of it the way a
			// real one would, by timeout — or, in the fire-and-forget
			// accounting mode, through the failed callback.
			if failed != nil {
				n.rt.Schedule(delay, failed)
			}
			return
		}
		delay += f.extraDelay(n.rt.Rand())
	}
	m := n.acquireInflight()
	m.net, m.from, m.to, m.deliver, m.failed = n, from, to, deliver, failed
	n.tr.Send(uint64(to), delay, payload, runInflight, m)
	if f := n.cfg.Faults; f != nil && f.duplicated(n.rt.Rand(), kind) {
		// A spurious retransmission: the copy is charged like any other
		// message and arrives after twice the original's delay, on its
		// own pooled record. Its failed callback is nil — losing a
		// duplicate means nothing, and firing the real one twice would
		// double-account the loss.
		n.traffic.Add(kind, bytes)
		n.traffic.Frames++
		d := n.acquireInflight()
		d.net, d.from, d.to, d.deliver, d.failed = n, from, to, deliver, nil
		n.tr.Send(uint64(to), 2*delay, payload, runInflight, d)
	}
}

// inflight is one in-transit message: the prebound per-event state for
// the delivery event, pooled on the Network so the hot send path does
// not allocate a closure per message.
type inflight struct {
	net     *Network
	from    *Node
	to      ID
	deliver func(dst *Node)
	failed  func()
}

// runInflight is the prebound delivery callback passed to
// Transport.Send (a package-level function value allocates nothing at
// the call site).
func runInflight(arg any) { arg.(*inflight).run() }

// run performs the delivery-time liveness checks of SendOrFail and then
// recycles the record. Fields are copied out and the record is returned
// to the pool before any callback runs, because callbacks routinely
// send further messages.
func (m *inflight) run() {
	n, from, to, deliver, failed := m.net, m.from, m.to, m.deliver, m.failed
	m.net, m.from, m.deliver, m.failed = nil, nil, nil, nil
	n.pool = append(n.pool, m)
	if from.crashed {
		// The sender's process died while the message was in flight
		// (CrashNode semantics); the message dies with it.
		if failed != nil {
			failed()
		}
		return
	}
	cur, ok := n.nodes[to]
	if !ok || !cur.alive {
		if failed != nil {
			failed()
		}
		return // destination departed in flight
	}
	deliver(cur)
}

// acquireInflight pops a recycled record or allocates a fresh one.
func (n *Network) acquireInflight() *inflight {
	if ln := len(n.pool); ln > 0 {
		m := n.pool[ln-1]
		n.pool = n.pool[:ln-1]
		return m
	}
	return &inflight{}
}

// FixAround rebuilds oracle routing state in the neighborhood of ring
// position pos: the node covering pos, its NumSuccessors predecessors
// (whose successor lists reference the region) and its immediate
// successor. Distant stale fingers remain; NextHop skips dead entries,
// so routing stays correct while a periodic full refresh (or protocol
// fix-fingers) restores optimality — exactly Chord's behavior under
// churn.
func (n *Network) FixAround(pos ID) {
	if len(n.ring) == 0 {
		return
	}
	ln := len(n.ring)
	idx := n.successorIndex(pos)
	span := n.cfg.NumSuccessors + 2
	if span > ln {
		span = ln
	}
	for i := 0; i < span; i++ {
		n.BuildTables(n.nodes[n.ring[(idx-i+ln*2)%ln]])
	}
	n.BuildTables(n.nodes[n.ring[(idx+1)%ln]])
}

// BuildAllTables installs oracle-stabilized routing state on every
// node: correct successor lists, predecessors, and fingers (PNS-aware
// when enabled). This models a network that has fully stabilized, the
// state the paper measures queries in.
func (n *Network) BuildAllTables() {
	for _, id := range n.ring {
		n.BuildTables(n.nodes[id])
	}
}

// BuildTables installs oracle-stabilized state on one node.
func (n *Network) BuildTables(node *Node) {
	r := n.ring
	ln := len(r)
	if ln == 0 {
		return
	}
	self := sort.Search(ln, func(i int) bool { return r[i] >= node.id })
	if self == ln || r[self] != node.id {
		return // not on the ring
	}
	// Predecessor.
	node.pred = r[(self-1+ln)%ln]
	node.hasPred = true
	// Successor list.
	ns := n.cfg.NumSuccessors
	if ns > ln-1 {
		ns = ln - 1
	}
	node.succ = node.succ[:0]
	for i := 1; i <= ns; i++ {
		node.succ = append(node.succ, r[(self+i)%ln])
	}
	if len(node.succ) == 0 {
		node.succ = append(node.succ, node.id) // single-node ring
	}
	// Fingers: finger i targets id + 2^i, interval [id+2^i, id+2^(i+1)).
	for i := 0; i < 64; i++ {
		start := node.id + 1<<uint(i)
		node.fingers[i] = n.pickFinger(node, start, start+1<<uint(i))
	}
	node.tablesBuilt = true
}

// pickFinger returns the finger for interval [start, end): without PNS
// the successor of start; with PNS the lowest-latency node among the
// first PNSSample ring-order candidates inside the interval.
func (n *Network) pickFinger(node *Node, start, end ID) ID {
	idx := n.successorIndex(start)
	first := n.ring[idx]
	if !n.cfg.PNS {
		return first
	}
	best := first
	if !InOpenClosed(start-1, first, end-1) {
		// Interval is empty of nodes: plain successor.
		return first
	}
	bestLat := n.model.Latency(node.host, n.nodes[first].host)
	ln := len(n.ring)
	for c := 1; c < n.cfg.PNSSample && c < ln; c++ {
		cand := n.ring[(idx+c)%ln]
		if !InOpenClosed(start-1, cand, end-1) {
			break
		}
		if lat := n.model.Latency(node.host, n.nodes[cand].host); lat < bestLat {
			best, bestLat = cand, lat
		}
	}
	return best
}

// Rejoin gracefully moves a node to a new identifier (used by the
// §3.4 dynamic load migration: "ask it to leave and then rejoin the
// system with a given node identifier"). The node keeps its physical
// host. Routing state of the affected neighborhood is refreshed via
// the oracle. It returns the new node.
func (n *Network) Rejoin(oldID, newID ID) (*Node, error) {
	old, ok := n.nodes[oldID]
	if !ok {
		return nil, fmt.Errorf("chord: rejoin of unknown node %#x", oldID)
	}
	if _, dup := n.nodes[newID]; dup {
		return nil, fmt.Errorf("chord: rejoin target id %#x already taken", newID)
	}
	host := old.host
	if err := n.RemoveNode(oldID); err != nil {
		return nil, err
	}
	fresh, err := n.AddNode(newID, host)
	if err != nil {
		return nil, err
	}
	return fresh, nil
}

// RefreshNeighborhood rebuilds oracle tables for every live node —
// cheap at simulation scale and equivalent to the network having
// re-stabilized after membership churn.
func (n *Network) RefreshNeighborhood() { n.BuildAllTables() }
