// Package chord implements the Chord distributed hash table the index
// architecture is built on (§3 of the paper; Stoica et al. [20]): a
// 64-bit identifier ring with base-2 finger tables, successor lists,
// proximity neighbor selection (Chord-PNS, Dabek et al. [9]), and both
// message-driven maintenance (join / stabilize / fix-fingers) and an
// oracle fast path used to bring large simulated networks to the
// stabilized state instantly.
package chord

// ID is a 64-bit ring identifier. Arithmetic wraps modulo 2^64.
type ID = uint64

// InOpen reports whether x lies in the open ring interval (a, b).
// When a == b the interval spans the whole ring except a.
func InOpen(a, x, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// InOpenClosed reports whether x lies in the half-open ring interval
// (a, b]. When a == b the interval is the whole ring.
func InOpenClosed(a, x, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// Dist returns the clockwise distance from a to b on the ring.
func Dist(a, b ID) ID { return b - a }
