package chord

import (
	"testing"
	"time"

	"landmarkdht/internal/sim"
)

func TestFaultPlanDropRate(t *testing.T) {
	cfg := DefaultConfig()
	plan := NewFaultPlan().DropAll(0.2)
	cfg.Faults = plan
	eng, net, nodes := newTestNet(t, 16, cfg)
	net.BuildAllTables()

	const total = 5000
	delivered, failed := 0, 0
	for i := 0; i < total; i++ {
		from := nodes[i%len(nodes)]
		to := nodes[(i+1)%len(nodes)]
		net.SendOrFail(from, to.ID(), KindQuery, 100,
			func(*Node) { delivered++ }, func() { failed++ })
	}
	eng.Run()
	if delivered+failed != total {
		t.Fatalf("delivered %d + failed %d != %d sent", delivered, failed, total)
	}
	if failed != int(plan.Dropped[KindQuery]) {
		t.Fatalf("failed callbacks %d != plan.Dropped %d", failed, plan.Dropped[KindQuery])
	}
	rate := float64(failed) / total
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("observed loss rate %.3f, want ~0.20", rate)
	}
}

func TestFaultPlanDropIsPerKind(t *testing.T) {
	cfg := DefaultConfig()
	plan := NewFaultPlan().Drop(KindQuery, 1.0)
	cfg.Faults = plan
	eng, net, nodes := newTestNet(t, 4, cfg)
	net.BuildAllTables()

	queryOK, resultOK := 0, 0
	for i := 0; i < 50; i++ {
		net.SendOrFail(nodes[0], nodes[1].ID(), KindQuery, 10, func(*Node) { queryOK++ }, nil)
		net.SendOrFail(nodes[0], nodes[1].ID(), KindResult, 10, func(*Node) { resultOK++ }, nil)
	}
	eng.Run()
	if queryOK != 0 {
		t.Fatalf("%d query messages delivered despite drop probability 1", queryOK)
	}
	if resultOK != 50 {
		t.Fatalf("%d of 50 result messages delivered; other kinds must be unaffected", resultOK)
	}
	if plan.TotalDropped() != 50 {
		t.Fatalf("TotalDropped = %d, want 50", plan.TotalDropped())
	}
}

func TestFaultPlanPartitionWindow(t *testing.T) {
	cfg := DefaultConfig()
	// Hosts 0 and 1 are cut off from the rest during [1s, 2s).
	plan := NewFaultPlan().Partition([]int{0, 1}, time.Second, 2*time.Second)
	cfg.Faults = plan
	eng, net, nodes := newTestNet(t, 8, cfg)
	net.BuildAllTables()

	var beforeOK, insideCrossFail, insideSameOK, afterOK bool
	send := func(from, to *Node, ok *bool, fail *bool) {
		net.SendOrFail(from, to.ID(), KindQuery, 10,
			func(*Node) {
				if ok != nil {
					*ok = true
				}
			},
			func() {
				if fail != nil {
					*fail = true
				}
			})
	}
	// nodes[i] lives on host i (newTestNet adds them in host order).
	send(nodes[0], nodes[5], &beforeOK, nil)
	eng.Schedule(1500*time.Millisecond, func() {
		send(nodes[0], nodes[5], nil, &insideCrossFail) // crosses the boundary
		send(nodes[0], nodes[1], &insideSameOK, nil)    // both inside the group
	})
	eng.Schedule(2500*time.Millisecond, func() {
		send(nodes[0], nodes[5], &afterOK, nil)
	})
	eng.Run()
	if !beforeOK {
		t.Fatal("message before the partition window was lost")
	}
	if !insideCrossFail {
		t.Fatal("boundary-crossing message inside the window was delivered")
	}
	if !insideSameOK {
		t.Fatal("intra-group message inside the window was lost")
	}
	if !afterOK {
		t.Fatal("message after the partition window was lost")
	}
}

func TestFaultPlanJitterDelaysDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = NewFaultPlan().Jitter(200 * time.Millisecond)
	eng, net, nodes := newTestNet(t, 4, cfg)
	net.BuildAllTables()

	base := net.Latency(nodes[0], nodes[1])
	sawExtra := false
	for i := 0; i < 50; i++ {
		sent := eng.Now()
		done := false
		net.SendOrFail(nodes[0], nodes[1].ID(), KindQuery, 10, func(*Node) {
			if eng.Now()-sent > base {
				sawExtra = true
			}
			done = true
		}, nil)
		eng.Run()
		if !done {
			t.Fatal("jittered message never delivered")
		}
	}
	if !sawExtra {
		t.Fatal("no message saw extra latency under 200ms jitter")
	}
}

// CrashNode must lose in-flight messages FROM the crashed node; the
// graceful RemoveNode must not (the departing process flushes them).
func TestCrashLosesInflightMessages(t *testing.T) {
	eng, net, nodes := newTestNet(t, 8, DefaultConfig())
	net.BuildAllTables()

	// Crash case: sender dies while its message is in flight.
	delivered, failed := false, false
	net.SendOrFail(nodes[0], nodes[1].ID(), KindQuery, 10,
		func(*Node) { delivered = true }, func() { failed = true })
	if err := net.CrashNode(nodes[0].ID()); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if delivered {
		t.Fatal("message from a crashed sender was delivered")
	}
	if !failed {
		t.Fatal("loss callback did not fire for the crashed sender's message")
	}

	// Graceful case: the leaver's in-flight message still arrives.
	delivered, failed = false, false
	net.SendOrFail(nodes[2], nodes[3].ID(), KindQuery, 10,
		func(*Node) { delivered = true }, func() { failed = true })
	if err := net.RemoveNode(nodes[2].ID()); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !delivered || failed {
		t.Fatalf("graceful leaver's message: delivered=%v failed=%v, want delivered", delivered, failed)
	}
}

func TestTimerStopCancels(t *testing.T) {
	eng := sim.NewEngine(1)
	fired := false
	tm := eng.AfterFunc(time.Second, func() { fired = true })
	eng.Schedule(500*time.Millisecond, func() { tm.Stop() })
	eng.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}

	fired = false
	tm = eng.AfterFunc(time.Second, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("armed timer did not fire")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() false after firing")
	}
}
