package chord

import (
	"testing"
	"time"

	"landmarkdht/internal/wire"
)

func batchCfg(maxDelay time.Duration, maxMsgs, maxBytes int) Config {
	cfg := DefaultConfig()
	cfg.Batch = BatchConfig{MaxDelay: maxDelay, MaxMsgs: maxMsgs, MaxBytes: maxBytes}
	return cfg
}

// A lone message must never wait in an open batch past the flush
// deadline: it is delivered by MaxDelay plus its own modeled latency.
func TestBatchFlushDeadline(t *testing.T) {
	const maxDelay = 2 * time.Millisecond
	eng, net, nodes := newTestNet(t, 8, batchCfg(maxDelay, 100, 1<<20))
	net.BuildAllTables()
	rt := net.Runtime()
	var deliveredAt time.Duration = -1
	net.Send(nodes[0], nodes[5].ID(), KindQuery, 69, func(*Node) { deliveredAt = rt.Now() })
	eng.Run()
	if deliveredAt < 0 {
		t.Fatal("lone batched message never delivered")
	}
	latency := net.Latency(nodes[0], nodes[5])
	if limit := maxDelay + latency; deliveredAt > limit {
		t.Fatalf("lone message held %v, budget is %v (latency %v)", deliveredAt, limit, latency)
	}
	if deliveredAt < maxDelay {
		t.Fatalf("lone message delivered at %v, before the %v flush deadline", deliveredAt, maxDelay)
	}
	// A batch that closes with one member ships as a plain frame: full
	// unbatched size, no envelope — batching never costs bytes.
	tr := net.Traffic()
	if tr.Bytes[KindQuery] != 69 || tr.Bytes[KindBatch] != 0 {
		t.Fatalf("singleton flush charged query=%d batch=%d bytes, want 69 and 0",
			tr.Bytes[KindQuery], tr.Bytes[KindBatch])
	}
}

// A full batch (MaxMsgs members) flushes immediately, well before the
// deadline.
func TestBatchEarlyFlushOnCount(t *testing.T) {
	const maxDelay = time.Hour // never reached
	eng, net, nodes := newTestNet(t, 8, batchCfg(maxDelay, 4, 1<<20))
	net.BuildAllTables()
	delivered := 0
	for i := 0; i < 4; i++ {
		net.Send(nodes[0], nodes[5].ID(), KindQuery, 69, func(*Node) { delivered++ })
	}
	eng.Run()
	if delivered != 4 {
		t.Fatalf("delivered %d of 4 batched messages", delivered)
	}
	tr := net.Traffic()
	if tr.Frames != 1 {
		t.Fatalf("full batch shipped as %d frames, want 1", tr.Frames)
	}
}

// Batching must make the accounted bytes strictly smaller than the
// same messages sent unbatched, and the formula must match
// wire.BatchSize.
func TestBatchAccountingBeatsUnbatched(t *testing.T) {
	const size = 69 // one-subquery query message at k=10
	const count = 8
	run := func(cfg Config) Traffic {
		eng, net, nodes := newTestNet(t, 8, cfg)
		net.BuildAllTables()
		for i := 0; i < count; i++ {
			net.Send(nodes[0], nodes[5].ID(), KindQuery, size, func(*Node) {})
		}
		eng.Run()
		return net.Traffic()
	}
	plain := run(DefaultConfig())
	batched := run(batchCfg(time.Millisecond, count, 1<<20))
	_, plainBytes := plain.Total()
	_, batchedBytes := batched.Total()
	if batchedBytes >= plainBytes {
		t.Fatalf("batched bytes %d not below unbatched %d", batchedBytes, plainBytes)
	}
	sizes := make([]int, count)
	for i := range sizes {
		sizes[i] = size
	}
	if want := int64(wire.BatchSize(sizes)); batchedBytes != want {
		t.Fatalf("batched bytes %d, wire.BatchSize says %d", batchedBytes, want)
	}
	if plain.Frames != count || batched.Frames != 1 {
		t.Fatalf("frames: plain %d (want %d), batched %d (want 1)", plain.Frames, count, batched.Frames)
	}
	// Per-kind attribution: every member's trimmed bytes stay on
	// KindQuery; only the shared envelope header lands on KindBatch.
	if batched.Bytes[KindBatch] != wire.PacketHeader {
		t.Fatalf("KindBatch bytes %d, want %d", batched.Bytes[KindBatch], wire.PacketHeader)
	}
	if batched.Msgs[KindQuery] != count {
		t.Fatalf("KindQuery msgs %d, want %d", batched.Msgs[KindQuery], count)
	}
}

// Messages to different destinations never share a batch.
func TestBatchPerDestination(t *testing.T) {
	eng, net, nodes := newTestNet(t, 8, batchCfg(time.Millisecond, 100, 1<<20))
	net.BuildAllTables()
	delivered := map[ID]bool{}
	for _, dst := range []*Node{nodes[3], nodes[5], nodes[7]} {
		id := dst.ID()
		net.Send(nodes[0], id, KindQuery, 69, func(d *Node) { delivered[d.ID()] = true })
	}
	eng.Run()
	if len(delivered) != 3 {
		t.Fatalf("delivered to %d destinations, want 3", len(delivered))
	}
	if tr := net.Traffic(); tr.Frames != 3 {
		t.Fatalf("3 destinations shipped as %d frames, want 3", tr.Frames)
	}
}

// A batch to a node that departs in flight fails every member, exactly
// like per-message delivery.
func TestBatchDeliveryLiveness(t *testing.T) {
	eng, net, nodes := newTestNet(t, 8, batchCfg(time.Millisecond, 2, 1<<20))
	net.BuildAllTables()
	target := nodes[5].ID()
	var deliveredN, failedN int
	for i := 0; i < 2; i++ {
		net.SendOrFail(nodes[0], target, KindQuery, 69,
			func(*Node) { deliveredN++ }, func() { failedN++ })
	}
	if err := net.RemoveNode(target); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if deliveredN != 0 || failedN != 2 {
		t.Fatalf("delivered %d, failed %d; want 0 delivered, 2 failed", deliveredN, failedN)
	}
}
