package chord

import (
	"time"

	"landmarkdht/internal/wire"
)

// Destination batching (DESIGN.md §13): query, result and ack messages
// bound for the same destination within a small flush budget are
// coalesced into one wire.Batch frame. The batch pays the 20-byte
// packet header once; at flush time each member is charged its trimmed
// wire.BatchedSize to its own traffic kind and the shared envelope
// header goes to KindBatch — so the bandwidth win is visible inside
// the existing accounting, per kind, without changing what a query's
// own stats mean. Fault draws (loss, duplication,
// extra delay) happen per member at enqueue, in the same RNG order as
// unbatched sends, and delivery-time liveness is checked per batch
// exactly as inflight.run checks it per message.

// BatchConfig parameterizes destination batching. The zero value
// disables it.
type BatchConfig struct {
	// MaxDelay is the flush deadline: no message waits in an open batch
	// longer than this. Zero disables batching entirely.
	MaxDelay time.Duration
	// MaxMsgs flushes a batch early once it holds this many messages
	// (default 16).
	MaxMsgs int
	// MaxBytes flushes a batch early once its encoded size reaches this
	// many bytes (default 1200, about one MTU of payload).
	MaxBytes int
}

// Enabled reports whether destination batching is on.
func (c BatchConfig) Enabled() bool { return c.MaxDelay > 0 }

func (c *BatchConfig) fillDefaults() {
	if !c.Enabled() {
		return
	}
	if c.MaxMsgs <= 0 {
		c.MaxMsgs = 16
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1200
	}
}

// batchable reports whether a message kind rides in destination
// batches: the per-query hot-path kinds. Maintenance, lookups and
// transfers keep their own frames.
func batchable(kind MsgKind) bool {
	return kind == KindQuery || kind == KindResult || kind == KindAck
}

// batchKey identifies one open batch: messages batch only when both
// endpoints match, because the modeled latency and the sender-crash
// check are per (from, to) pair.
type batchKey struct {
	from ID
	to   ID
}

// batchMember is one message riding in an open batch.
type batchMember struct {
	kind MsgKind
	// bytes is the member's full unbatched wire size; its traffic
	// charge is decided at flush time (trimmed BatchedSize in a shared
	// frame, the full size when the batch closes with one member and
	// ships as a plain frame).
	bytes   int
	payload []byte
	deliver func(dst *Node)
	failed  func()
	// delay is the member's own modeled one-way latency including any
	// fault-injected extra delay; the batch ships at the slowest
	// member's delay.
	delay time.Duration
}

// pendingBatch is one open per-destination batch awaiting flush.
type pendingBatch struct {
	from    *Node
	members []batchMember
	// size is the batch's encoded size so far: the shared packet header
	// plus every member's BatchedSize.
	size int
}

// enqueueBatch adds one message to the destination's open batch,
// opening it (and arming its flush deadline) if needed, and flushes
// early when the size budget fills. Fault draws happen here, in the
// same RNG order as unbatched sends; traffic charging waits for the
// flush, which knows whether the message shared a frame.
func (n *Network) enqueueBatch(from *Node, to ID, kind MsgKind, bytes int, payload []byte, deliver func(dst *Node), failed func()) {
	dst, ok := n.nodes[to]
	if !ok {
		// Destination unknown at send time: charged (as a batch member,
		// matching the lost path below) and lost, as on the unbatched
		// path.
		n.traffic.Add(kind, wire.BatchedSize(bytes))
		if failed != nil {
			failed()
		}
		return
	}
	delay := n.model.Latency(from.host, dst.host)
	lost := false
	if f := n.cfg.Faults; f != nil {
		if f.lost(n.rt.Rand(), kind, from.host, dst.host, n.rt.Now()) {
			// A lost member is charged as if it rode a shared frame: its
			// bytes were spent even though delivery never happens.
			lost = true
			n.traffic.Add(kind, wire.BatchedSize(bytes))
			if failed != nil {
				n.rt.Schedule(delay, failed)
			}
		} else {
			delay += f.extraDelay(n.rt.Rand())
			if f.duplicated(n.rt.Rand(), kind) {
				// The spurious copy travels unbatched (a retransmission
				// arrives on its own frame) with the full message size.
				n.traffic.Add(kind, bytes)
				n.traffic.Frames++
				d := n.acquireInflight()
				d.net, d.from, d.to, d.deliver, d.failed = n, from, to, deliver, nil
				n.tr.Send(uint64(to), 2*delay, payload, runInflight, d)
			}
		}
	}
	if lost {
		return
	}
	key := batchKey{from: from.id, to: to}
	if n.batches == nil {
		n.batches = make(map[batchKey]*pendingBatch)
	}
	pb := n.batches[key]
	if pb == nil {
		pb = &pendingBatch{from: from, size: wire.PacketHeader}
		n.batches[key] = pb
		// The flush deadline: a lone message is never held past
		// MaxDelay. The identity check makes a stale timer (the batch
		// already flushed early) a no-op.
		n.rt.Schedule(n.cfg.Batch.MaxDelay, func() {
			if n.batches[key] == pb {
				n.flushBatch(key, pb)
			}
		})
	}
	pb.members = append(pb.members, batchMember{
		kind: kind, bytes: bytes, payload: payload, deliver: deliver, failed: failed, delay: delay,
	})
	pb.size += wire.BatchedSize(bytes)
	if len(pb.members) >= n.cfg.Batch.MaxMsgs || pb.size >= n.cfg.Batch.MaxBytes {
		n.flushBatch(key, pb)
	}
}

// flushBatch closes one batch and ships it as a single frame: the
// envelope header is charged to KindBatch (bytes only — its members
// are the messages), each member's trimmed BatchedSize goes to its own
// kind, and delivery happens at the slowest member's delay. A batch
// that closes with a single member gains nothing from the envelope, so
// it ships as a plain frame at the message's full unbatched size —
// batching then never costs bytes, only flush latency.
func (n *Network) flushBatch(key batchKey, pb *pendingBatch) {
	delete(n.batches, key)
	n.traffic.Frames++
	if len(pb.members) == 1 {
		m := pb.members[0]
		n.traffic.Add(m.kind, m.bytes)
		d := n.acquireInflight()
		d.net, d.from, d.to, d.deliver, d.failed = n, pb.from, key.to, m.deliver, m.failed
		n.tr.Send(uint64(key.to), m.delay, m.payload, runInflight, d)
		return
	}
	n.traffic.AddBytes(KindBatch, wire.PacketHeader)
	var delay time.Duration
	var payloads [][]byte
	for _, m := range pb.members {
		n.traffic.Add(m.kind, wire.BatchedSize(m.bytes))
		if m.delay > delay {
			delay = m.delay
		}
		if m.payload != nil {
			payloads = append(payloads, m.payload)
		}
	}
	var payload []byte
	if len(payloads) > 0 {
		enc, err := wire.EncodeBatch(payloads)
		if err != nil {
			// Impossible for protocol-produced messages; degrade to the
			// payload-less (accounting-only) path rather than lose the
			// batch — each member still decodes from its prebound state.
			enc = nil
		}
		payload = enc
	}
	bi := &batchInflight{net: n, from: pb.from, to: key.to, members: pb.members}
	n.tr.Send(uint64(key.to), delay, payload, runBatchInflight, bi)
}

// batchInflight is one in-transit batch: the prebound per-event state
// for its delivery event.
type batchInflight struct {
	net     *Network
	from    *Node
	to      ID
	members []batchMember
}

// runBatchInflight is the prebound delivery callback for batches.
func runBatchInflight(arg any) { arg.(*batchInflight).run() }

// run applies the delivery-time liveness checks of inflight.run to the
// whole batch, then delivers the members in enqueue order.
func (b *batchInflight) run() {
	if b.from.crashed {
		for _, m := range b.members {
			if m.failed != nil {
				m.failed()
			}
		}
		return
	}
	cur, ok := b.net.nodes[b.to]
	if !ok || !cur.alive {
		for _, m := range b.members {
			if m.failed != nil {
				m.failed()
			}
		}
		return
	}
	for _, m := range b.members {
		m.deliver(cur)
	}
}
