package chord

import (
	"time"

	"landmarkdht/internal/runtime"
)

// This file contains the message-driven maintenance protocol: join,
// stabilize, notify, fix-fingers and successor-list refresh, following
// Stoica et al. §IV. The big experiments bring the network up through
// the oracle fast path (BuildAllTables) — equivalent to a fully
// stabilized network — but the protocol implementation demonstrates
// and tests that the overlay converges to the same state by messages
// alone. Protocol-mode fingers use plain successor placement; PNS
// optimization is applied by the oracle builder (in a deployment it
// would sample the owner's successor list, which the simulator's
// oracle reproduces exactly).

// JoinVia performs a protocol join through the bootstrap node: it
// resolves successor(id) with an iterative lookup, adopts it as the
// first successor, and starts maintenance if the network has a
// maintenance period configured. done (optional) fires when the join
// lookup completes.
func (nd *Node) JoinVia(bootstrap ID, done func()) {
	boot := nd.net.Node(bootstrap)
	if boot == nil || bootstrap == nd.id {
		// First node in the system: own everything.
		nd.succ = []ID{nd.id}
		nd.hasPred = false
		nd.startMaintenance()
		if done != nil {
			done()
		}
		return
	}
	// The join request travels to the bootstrap, which resolves the
	// successor of the joiner's identifier.
	nd.net.Send(nd, bootstrap, KindMaintenance, nd.net.cfg.MaintenanceBytes, func(b *Node) {
		b.FindSuccessor(nd.id, nd.net.cfg.MaintenanceBytes, func(owner ID, _ int) {
			if owner == nd.id {
				owner = b.id
			}
			nd.succ = []ID{owner}
			nd.hasPred = false
			nd.startMaintenance()
			if done != nil {
				done()
			}
		})
	})
}

func (nd *Node) startMaintenance() {
	period := nd.net.cfg.StabilizeEvery
	if period <= 0 || nd.ticker != nil {
		return
	}
	offset := time.Duration(nd.net.rt.Rand().Int63n(int64(period)))
	round := 0
	nd.ticker = runtime.NewTicker(nd.net.rt, offset, period, func() {
		if !nd.alive {
			nd.stopMaintenance()
			return
		}
		nd.stabilize()
		nd.fixFinger(round % 64)
		round++
	})
}

// stabilize asks the successor for its predecessor and successor list
// and adopts a closer successor if one appeared, then notifies the
// successor of our existence.
func (nd *Node) stabilize() {
	succ := nd.Successor()
	if succ == nd.id {
		// Single-node view: if a notify has told us about a
		// predecessor, it is also our best successor candidate
		// (standard Chord behavior when the successor is self).
		if nd.hasPred && nd.net.Node(nd.pred) != nil {
			nd.succ = []ID{nd.pred}
		}
		return
	}
	mb := nd.net.cfg.MaintenanceBytes
	nd.net.Send(nd, succ, KindMaintenance, mb, func(s *Node) {
		sPred, sHas := s.pred, s.hasPred
		sList := s.SuccessorList()
		// Reply travels back.
		nd.net.Send(s, nd.id, KindMaintenance, mb, func(me *Node) {
			cur := me.Successor()
			if sHas && InOpen(me.id, sPred, cur) {
				if nd.net.Node(sPred) != nil {
					cur = sPred
				}
			}
			// Rebuild successor list: cur followed by its list.
			list := append([]ID{cur}, sList...)
			me.succ = dedupeTrim(me.id, list, nd.net.cfg.NumSuccessors, nd.net)
			// Notify the (possibly new) successor.
			target := me.Successor()
			if target != me.id {
				nd.net.Send(me, target, KindMaintenance, mb, func(t *Node) {
					t.notify(me.id)
				})
			}
		})
	})
}

// notify is Chord's notify(): candidate believes it may be our
// predecessor.
func (nd *Node) notify(candidate ID) {
	if candidate == nd.id {
		return
	}
	if !nd.hasPred || InOpen(nd.pred, candidate, nd.id) || nd.net.Node(nd.pred) == nil {
		nd.pred = candidate
		nd.hasPred = true
	}
}

// fixFinger refreshes finger i by looking up successor(id + 2^i).
func (nd *Node) fixFinger(i int) {
	target := nd.id + 1<<uint(i)
	nd.FindSuccessor(target, nd.net.cfg.MaintenanceBytes, func(owner ID, _ int) {
		if nd.alive {
			nd.fingers[i] = owner
		}
	})
}

// dedupeTrim builds a successor list from candidates: live nodes only,
// deduplicated, excluding self, at most max entries, preserving ring
// order from the first element.
func dedupeTrim(self ID, candidates []ID, max int, net *Network) []ID {
	seen := make(map[ID]bool, len(candidates))
	out := make([]ID, 0, max)
	for _, c := range candidates {
		if c == self || seen[c] || net.Node(c) == nil {
			continue
		}
		seen[c] = true
		out = append(out, c)
		if len(out) == max {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, self)
	}
	return out
}
