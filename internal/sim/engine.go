// Package sim implements a deterministic discrete-event simulation engine.
//
// It is the substitute for p2psim used by the paper's evaluation: a
// virtual clock, a binary-heap event scheduler, and a seeded random
// number generator. A single Engine is strictly single-threaded and
// deterministic for a given seed; parallelism is obtained by running
// independent engines (one per trial) on separate goroutines.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, measured as a duration since the
// start of the simulation.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events with equal time
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	rng       *rand.Rand
	processed uint64
	running   bool
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay of simulated time. A negative delay is
// treated as zero. Events scheduled for the same instant run in FIFO
// order.
func (e *Engine) Schedule(delay Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt runs fn at absolute simulated time at. Times in the past
// are clamped to the present.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	e.Schedule(at-e.now, fn)
}

// Step executes the next pending event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.at > e.now {
		e.now = ev.at
	}
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events whose time is <= deadline; events scheduled
// later remain queued and the clock is advanced to deadline.
func (e *Engine) RunUntil(deadline Time) {
	if e.running {
		panic("sim: RunUntil re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d of simulated time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// String describes the engine state, for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d processed=%d}", e.now, len(e.events), e.processed)
}

// Timer is a cancellable one-shot event, the building block for
// retransmission timeouts: arm it when a message leaves, stop it when
// the acknowledgement arrives. A stopped timer's callback never runs;
// the underlying heap event still drains (as a no-op), so cancelling
// is O(1) and never disturbs event ordering.
type Timer struct {
	stopped bool
}

// AfterFunc schedules fn to run once after delay. The returned Timer
// cancels the callback if stopped before it fires.
func (e *Engine) AfterFunc(delay Time, fn func()) *Timer {
	t := &Timer{}
	e.Schedule(delay, func() {
		if t.stopped {
			return
		}
		t.stopped = true
		fn()
	})
	return t
}

// Stop cancels the timer if it has not fired yet. It is idempotent.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether the timer has fired or been cancelled.
func (t *Timer) Stopped() bool { return t.stopped }

// Ticker repeatedly invokes fn every period until Stop is called or the
// predicate returns false. It is the building block for protocol
// maintenance timers (stabilize, fix-fingers, load probing).
type Ticker struct {
	stopped bool
}

// NewTicker schedules fn every period, with the first invocation after
// an initial offset (use offset = period for a plain ticker; a random
// offset desynchronizes node timers). fn runs until Stop is called.
func NewTicker(e *Engine, offset, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if !t.stopped {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(offset, tick)
	return t
}

// Stop cancels future invocations. It is idempotent.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether the ticker has been stopped.
func (t *Ticker) Stopped() bool { return t.stopped }
