// Package sim implements a deterministic discrete-event simulation engine.
//
// It is the substitute for p2psim used by the paper's evaluation: a
// virtual clock, a binary-heap event scheduler, and a seeded random
// number generator. A single Engine is strictly single-threaded and
// deterministic for a given seed; parallelism is obtained by running
// independent engines (one per trial) on separate goroutines.
//
// The scheduler is allocation-free in steady state: the event queue is
// a value-typed binary heap of (time, seq, slot) triples, and callbacks
// live in an engine-local slot arena recycled through a plain free
// list (DESIGN.md §9). Schedule, ScheduleArg and AfterFunc perform
// zero heap allocations once the heap and arena have grown to the
// simulation's high-water mark.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, measured as a duration since the
// start of the simulation.
type Time = time.Duration

// heapItem is one pending event in the priority queue. The callback
// itself lives in the slot arena; keeping the heap entries small makes
// sift operations cheap and allocation-free.
type heapItem struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events with equal time
	slot int32
}

// slot holds one scheduled callback. Exactly one of fn and argFn is
// set; argFn carries its argument out of band so callers can schedule
// a prebound function without allocating a closure. gen increments
// every time the slot is recycled, which lets Timer handles detect
// that their event has already fired.
type slot struct {
	fn      func()
	argFn   func(any)
	arg     any
	gen     uint32
	stopped bool
}

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	heap      []heapItem
	slots     []slot
	free      []int32 // recycled slot indices (engine-local free list)
	rng       *rand.Rand
	processed uint64
	running   bool
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) }

// acquire takes a slot from the free list (or grows the arena) and
// fills it with the callback.
func (e *Engine) acquire(fn func(), argFn func(any), arg any) int32 {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.fn, s.argFn, s.arg = fn, argFn, arg
	s.stopped = false
	return idx
}

// release recycles a slot: references are dropped (so callbacks and
// arguments do not outlive their event) and the generation counter is
// bumped to invalidate outstanding Timer handles.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.fn, s.argFn, s.arg = nil, nil, nil
	s.stopped = false
	s.gen++
	e.free = append(e.free, idx)
}

// push inserts one event into the heap, ordered by (at, seq).
func (e *Engine) push(it heapItem) {
	h := append(e.heap, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at < it.at || (h[p].at == it.at && h[p].seq < it.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = it
	e.heap = h
}

// pop removes and returns the earliest event.
func (e *Engine) pop() heapItem {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n == 0 {
		return top
	}
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n {
			if h[r].at < h[l].at || (h[r].at == h[l].at && h[r].seq < h[l].seq) {
				c = r
			}
		}
		if last.at < h[c].at || (last.at == h[c].at && last.seq < h[c].seq) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = last
	return top
}

// Schedule runs fn after delay of simulated time. A negative delay is
// treated as zero. Events scheduled for the same instant run in FIFO
// order.
func (e *Engine) Schedule(delay Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	e.push(heapItem{at: e.now + delay, seq: e.seq, slot: e.acquire(fn, nil, nil)})
}

// ScheduleArg runs fn(arg) after delay of simulated time. It is the
// allocation-free alternative to Schedule for hot paths: fn is a
// prebound (package-level or pre-constructed) function and arg carries
// the per-event state, so no closure needs to be allocated per event.
// Passing a pointer in arg does not allocate.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) {
	if fn == nil {
		panic("sim: ScheduleArg called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	e.push(heapItem{at: e.now + delay, seq: e.seq, slot: e.acquire(nil, fn, arg)})
}

// ScheduleAt runs fn at absolute simulated time at. Times in the past
// are clamped to the present.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	e.Schedule(at-e.now, fn)
}

// Step executes the next pending event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	it := e.pop()
	if it.at > e.now {
		e.now = it.at
	}
	e.processed++
	s := &e.slots[it.slot]
	fn, argFn, arg, stopped := s.fn, s.argFn, s.arg, s.stopped
	// Release before running: the callback may schedule new events
	// (reusing this slot) and Timer handles must observe the fired
	// state from inside their own callback.
	e.release(it.slot)
	if stopped {
		return true
	}
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events whose time is <= deadline; events scheduled
// later remain queued and the clock is advanced to deadline.
func (e *Engine) RunUntil(deadline Time) {
	if e.running {
		panic("sim: RunUntil re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d of simulated time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// String describes the engine state, for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d processed=%d}", e.now, len(e.heap), e.processed)
}

// Timer is a cancellable one-shot event, the building block for
// retransmission timeouts: arm it when a message leaves, stop it when
// the acknowledgement arrives. A stopped timer's callback never runs;
// the underlying heap event still drains (as a no-op), so cancelling
// is O(1) and never disturbs event ordering.
//
// Timer is a value handle into the engine's slot arena: creating one
// allocates nothing, and a fired timer's slot is recycled for future
// events (the generation counter keeps stale handles inert). The zero
// Timer behaves as already stopped.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// AfterFunc schedules fn to run once after delay. The returned Timer
// cancels the callback if stopped before it fires.
func (e *Engine) AfterFunc(delay Time, fn func()) Timer {
	if fn == nil {
		panic("sim: AfterFunc called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	idx := e.acquire(fn, nil, nil)
	e.push(heapItem{at: e.now + delay, seq: e.seq, slot: idx})
	return Timer{eng: e, slot: idx, gen: e.slots[idx].gen}
}

// Stop cancels the timer if it has not fired yet. It is idempotent.
func (t Timer) Stop() {
	if t.eng == nil {
		return
	}
	if s := &t.eng.slots[t.slot]; s.gen == t.gen {
		s.stopped = true
	}
}

// Stopped reports whether the timer has fired or been cancelled.
func (t Timer) Stopped() bool {
	if t.eng == nil {
		return true
	}
	s := &t.eng.slots[t.slot]
	return s.gen != t.gen || s.stopped
}

// Ticker repeatedly invokes fn every period until Stop is called or the
// predicate returns false. It is the building block for protocol
// maintenance timers (stabilize, fix-fingers, load probing).
type Ticker struct {
	stopped bool
}

// NewTicker schedules fn every period, with the first invocation after
// an initial offset (use offset = period for a plain ticker; a random
// offset desynchronizes node timers). fn runs until Stop is called.
// The tick closure is allocated once per ticker; rescheduling it each
// period reuses the same function value and allocates nothing.
func NewTicker(e *Engine, offset, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if !t.stopped {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(offset, tick)
	return t
}

// Stop cancels future invocations. It is idempotent.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether the ticker has been stopped.
func (t *Ticker) Stopped() bool { return t.stopped }
