package sim

// Microbenchmarks and allocation-regression tests for the scheduler
// hot path. The value-typed heap plus slot free list make Schedule,
// ScheduleArg, and AfterFunc+Stop allocation-free in steady state
// (DESIGN.md §9); the AllocsPerRun tests pin that at exactly zero so a
// regression fails `go test` rather than silently degrading.

import (
	"testing"
	"time"
)

// BenchmarkSchedule measures enqueue cost at a realistic queue depth:
// the pending queue is drained whenever it reaches 4096 events, so the
// number includes the amortized dispatch of every event but not the
// GC pressure of an unbounded heap.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Pending() >= 4096 {
			e.Run()
		}
		e.Schedule(time.Duration(i%1000)*time.Microsecond, fn)
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkScheduleStep measures the steady-state schedule+dispatch
// pair: the heap stays depth one and every event reuses the same slot
// through the free list.
func BenchmarkScheduleStep(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	e.Schedule(0, fn)
	e.Step() // warm the slot arena and free list
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}
}

// BenchmarkScheduleArgStep is BenchmarkScheduleStep for the
// prebound-function form used by message-delivery hot paths.
func BenchmarkScheduleArgStep(b *testing.B) {
	e := NewEngine(1)
	fn := func(any) {}
	arg := new(int)
	e.ScheduleArg(0, fn, arg)
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(time.Microsecond, fn, arg)
		e.Step()
	}
}

// BenchmarkAfterFuncStop measures the timer arm/disarm cycle (the
// retry path arms one timer per reliable message and stops it on ack).
func BenchmarkAfterFuncStop(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.AfterFunc(time.Microsecond, fn)
		t.Stop()
		e.Step() // drain the stopped slot so the heap stays shallow
	}
}

func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	e.Schedule(0, fn)
	e.Step() // warm the slot arena and free list
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step steady state allocates %.1f objects/op, want 0", allocs)
	}
}

func TestScheduleArgSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func(any) {}
	arg := new(int)
	e.ScheduleArg(0, fn, arg)
	e.Step()
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleArg(time.Microsecond, fn, arg)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("ScheduleArg+Step steady state allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAfterFuncStopZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	tm := e.AfterFunc(0, fn)
	tm.Stop()
	e.Step()
	allocs := testing.AllocsPerRun(100, func() {
		tm := e.AfterFunc(time.Microsecond, fn)
		tm.Stop()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("AfterFunc+Stop steady state allocates %.1f objects/op, want 0", allocs)
	}
}
