package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(5*time.Second, func() { at = e.Now() })
	e.Run()
	if at != 5*time.Second {
		t.Fatalf("event saw time %v, want 5s", at)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("final time %v, want 5s", e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event with negative delay did not run")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved backwards or forward: %v", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(time.Second, func() {
		times = append(times, e.Now())
		e.Schedule(time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("nested times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(5 * time.Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("now = %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(42 * time.Second)
	if e.Now() != 42*time.Second {
		t.Fatalf("now = %v, want 42s", e.Now())
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.ScheduleAt(7*time.Second, func() { at = e.Now() })
	e.Run()
	if at != 7*time.Second {
		t.Fatalf("at = %v, want 7s", at)
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Second, func() {
		e.ScheduleAt(3*time.Second, func() {
			if e.Now() != 10*time.Second {
				t.Errorf("past event ran at %v, want clamped to 10s", e.Now())
			}
		})
	})
	e.Run()
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 17; i++ {
		e.Schedule(time.Duration(i), func() {})
	}
	e.Run()
	if e.Processed() != 17 {
		t.Fatalf("processed = %d, want 17", e.Processed())
	}
}

func TestSchedulePanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil fn")
		}
	}()
	NewEngine(1).Schedule(0, nil)
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var trace []int64
		var step func()
		n := 0
		step = func() {
			trace = append(trace, int64(e.Now()), e.rng.Int63n(1000))
			n++
			if n < 100 {
				e.Schedule(time.Duration(e.rng.Int63n(int64(time.Second))), step)
			}
		}
		e.Schedule(0, step)
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTickerPeriodic(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, time.Second, time.Second, func() {
		ticks = append(ticks, e.Now())
	})
	e.RunUntil(5 * time.Second)
	tk.Stop()
	e.RunUntil(10 * time.Second)
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v, want 5 ticks", ticks)
	}
	for i, at := range ticks {
		if at != time.Duration(i+1)*time.Second {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 0, time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if !tk.Stopped() {
		t.Fatal("ticker not stopped")
	}
}

func TestTickerOffsetZero(t *testing.T) {
	e := NewEngine(1)
	first := Time(-1)
	tk := NewTicker(e, 0, time.Minute, func() {
		if first < 0 {
			first = e.Now()
		}
	})
	e.RunUntil(time.Second)
	tk.Stop()
	if first != 0 {
		t.Fatalf("first tick at %v, want 0", first)
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero period")
		}
	}()
	NewTicker(NewEngine(1), 0, 0, func() {})
}

// Property: for any batch of events with random delays, execution order
// is sorted by (time, insertion order).
func TestQuickEventOrderSorted(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		type rec struct {
			at  Time
			seq int
		}
		var out []rec
		for i, d := range delays {
			i, d := i, d
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				out = append(out, rec{e.Now(), i})
			})
		}
		e.Run()
		if len(out) != len(delays) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].at < out[i-1].at {
				return false
			}
			if out[i].at == out[i-1].at && out[i].seq < out[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReentrancyPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on re-entrant Run")
			}
		}()
		e.Run()
	})
	e.Run()
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
	}
	e.Run()
}
