package lph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, k int, lo, hi float64) *Partitioner {
	t.Helper()
	p, err := New(k, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0, 1); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := New(2, 1, 1); err == nil {
		t.Fatal("expected error for empty range")
	}
	if _, err := NewWithBounds(nil); err == nil {
		t.Fatal("expected error for no bounds")
	}
	if _, err := NewWithBounds([]Bounds{{0, 1}, {2, 2}}); err == nil {
		t.Fatal("expected error for empty dim bound")
	}
}

func TestBitHelpers(t *testing.T) {
	var k Key = 0x8000000000000001 // bit 1 and bit 64 set
	if GetBit(k, 1) != 1 || GetBit(k, 2) != 0 || GetBit(k, 64) != 1 {
		t.Fatalf("GetBit wrong: %d %d %d", GetBit(k, 1), GetBit(k, 2), GetBit(k, 64))
	}
	if SetBit(0, 1) != 0x8000000000000000 {
		t.Fatalf("SetBit(0,1) = %x", SetBit(0, 1))
	}
	if SetBit(0, 64) != 1 {
		t.Fatalf("SetBit(0,64) = %x", SetBit(0, 64))
	}
	if ClearBit(k, 1) != 1 {
		t.Fatalf("ClearBit = %x", ClearBit(k, 1))
	}
}

func TestPrefixHelpers(t *testing.T) {
	if PrefixMask(0) != 0 {
		t.Fatalf("PrefixMask(0) = %x", PrefixMask(0))
	}
	if PrefixMask(64) != ^Key(0) {
		t.Fatalf("PrefixMask(64) = %x", PrefixMask(64))
	}
	if PrefixMask(3) != 0xE000000000000000 {
		t.Fatalf("PrefixMask(3) = %x", PrefixMask(3))
	}
	k := Key(0xDEADBEEFCAFEBABE)
	if Prefix(k, 8) != 0xDE00000000000000 {
		t.Fatalf("Prefix = %x", Prefix(k, 8))
	}
	if !SamePrefix(0xDE00000000000000, k, 8) {
		t.Fatal("SamePrefix false negative")
	}
	if SamePrefix(0xDF00000000000000, k, 8) {
		t.Fatal("SamePrefix false positive")
	}
	if !SamePrefix(1, 2, 0) {
		t.Fatal("zero-length prefix must always match")
	}
}

func TestFirstZeroBitAfter(t *testing.T) {
	if got := FirstZeroBitAfter(^Key(0), 0); got != 0 {
		t.Fatalf("all-ones: got %d, want 0", got)
	}
	// 101... : bit1=1, bit2=0
	k := Key(0xA000000000000000)
	if got := FirstZeroBitAfter(k, 1); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	if got := FirstZeroBitAfter(k, 2); got != 4 {
		t.Fatalf("got %d, want 4", got)
	}
	if got := FirstZeroBitAfter(^Key(0)-1, 63); got != 64 {
		t.Fatalf("got %d, want 64", got)
	}
}

func TestCuboidSpan(t *testing.T) {
	lo, hi := CuboidSpan(0xFF00000000000000, 4)
	if lo != 0xF000000000000000 || hi != 0 {
		t.Fatalf("span = [%x, %x)", lo, hi)
	}
	lo, hi = CuboidSpan(0, 0)
	if lo != 0 || hi != 0 {
		t.Fatalf("whole-ring span = [%x, %x)", lo, hi)
	}
	lo, hi = CuboidSpan(0x4000000000000000, 2)
	if lo != 0x4000000000000000 || hi != 0x8000000000000000 {
		t.Fatalf("span = [%x, %x)", lo, hi)
	}
}

// Figure 1(a) of the paper: in a 2-d space recursively partitioned,
// the rectangle labeled "011" covers x in the lower half after the
// first division (bit1=0 on dim0), y upper half (bit2=1 on dim1), and
// x upper quarter of the lower half (bit3=1 on dim0).
func TestCuboidMatchesPaperFigure1(t *testing.T) {
	p := mustNew(t, 2, 0, 1)
	prekey := Key(0x6000000000000000) // bits "011" then zeros
	c := p.Cuboid(prekey, 3)
	if c[0].Lo != 0.25 || c[0].Hi != 0.5 {
		t.Fatalf("dim0 = %+v, want [0.25,0.5]", c[0])
	}
	if c[1].Lo != 0.5 || c[1].Hi != 1 {
		t.Fatalf("dim1 = %+v, want [0.5,1]", c[1])
	}
}

func TestHashKnownQuadrants(t *testing.T) {
	p := mustNew(t, 2, 0, 1)
	// First two bits select (x-half, y-half).
	cases := []struct {
		pt []float64
		b1 uint
		b2 uint
	}{
		{[]float64{0.1, 0.1}, 0, 0},
		{[]float64{0.9, 0.1}, 1, 0},
		{[]float64{0.1, 0.9}, 0, 1},
		{[]float64{0.9, 0.9}, 1, 1},
	}
	for _, c := range cases {
		k := p.Hash(c.pt)
		if GetBit(k, 1) != c.b1 || GetBit(k, 2) != c.b2 {
			t.Errorf("Hash(%v) = %x, want bits (%d,%d)", c.pt, k, c.b1, c.b2)
		}
	}
}

func TestHashClampsOutOfRange(t *testing.T) {
	p := mustNew(t, 2, 0, 1)
	inside := p.Hash([]float64{1, 1})
	outside := p.Hash([]float64{5, 7})
	if inside != outside {
		t.Fatalf("out-of-range point not clamped: %x vs %x", inside, outside)
	}
	low := p.Hash([]float64{0, 0})
	lower := p.Hash([]float64{-3, -3})
	if low != lower {
		t.Fatalf("below-range point not clamped: %x vs %x", low, lower)
	}
}

func TestHashPanicsOnDimMismatch(t *testing.T) {
	p := mustNew(t, 3, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Hash([]float64{1, 2})
}

// Property: the cuboid reconstructed from a point's full key contains
// the (clamped) point.
func TestQuickHashCuboidContainsPoint(t *testing.T) {
	p := mustNew(t, 3, -10, 10)
	f := func(a, b, c float64) bool {
		pt := []float64{clampf(a, -10, 10), clampf(b, -10, 10), clampf(c, -10, 10)}
		key := p.Hash(pt)
		cu := p.Cuboid(key, M)
		for j := range pt {
			// Allow the half-open convention: point can sit exactly on
			// a boundary shared with the neighboring cuboid.
			if pt[j] < cu[j].Lo-1e-12 || pt[j] > cu[j].Hi+1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1)), Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func clampf(x, lo, hi float64) float64 {
	if x != x || x < lo { // NaN or below
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Property: locality. Points within the same cuboid at depth l share
// an l-bit key prefix; conversely a key's first bits identify
// progressively smaller boxes around the point.
func TestLocalityPrefixSharing(t *testing.T) {
	p := mustNew(t, 2, 0, 1)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Pick a random depth-8 cuboid and two random points inside it.
		var prekey Key
		for i := 1; i <= 8; i++ {
			if rng.Intn(2) == 1 {
				prekey = SetBit(prekey, i)
			}
		}
		cu := p.Cuboid(prekey, 8)
		mk := func() []float64 {
			pt := make([]float64, 2)
			for j := range pt {
				pt[j] = cu[j].Lo + rng.Float64()*(cu[j].Hi-cu[j].Lo)*0.999 + 1e-9
			}
			return pt
		}
		k1, k2 := p.Hash(mk()), p.Hash(mk())
		if !SamePrefix(k1, k2, 8) {
			t.Fatalf("points in same depth-8 cuboid got prefixes %x vs %x", k1, k2)
		}
		if !SamePrefix(k1, prekey, 8) {
			t.Fatalf("hash prefix %x does not match cuboid %x", Prefix(k1, 8), Prefix(prekey, 8))
		}
	}
}

// Property: contraction of key distance with spatial distance — the
// closer two points, the longer (on average) the shared prefix. We
// check the deterministic core: halving the distance to a fixed point
// along dimension 0 never shortens the shared prefix by more than the
// alternation period.
func TestLocalityMonotoneAlongDim(t *testing.T) {
	p := mustNew(t, 1, 0, 1)
	base := p.Hash([]float64{0.5001})
	prev := -1
	for _, d := range []float64{0.4, 0.2, 0.1, 0.05, 0.01, 0.001} {
		k := p.Hash([]float64{0.5001 + d})
		shared := sharedPrefixLen(base, k)
		if shared < prev {
			t.Fatalf("shared prefix shrank from %d to %d as points got closer", prev, shared)
		}
		prev = shared
	}
}

func sharedPrefixLen(a, b Key) int {
	for l := M; l >= 0; l-- {
		if SamePrefix(a, b, l) {
			return l
		}
	}
	return 0
}

func TestSplitMidMatchesCuboid(t *testing.T) {
	p := mustNew(t, 3, 0, 8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		key := Key(rng.Uint64())
		pos := 1 + rng.Intn(24)
		j := (pos - 1) % 3
		// SplitMid must equal the midpoint of dimension j of the
		// cuboid identified by the first pos-1 bits.
		cu := p.Cuboid(key, pos-1)
		want := cu[j].Mid()
		if got := p.SplitMid(key, pos); got != want {
			t.Fatalf("SplitMid(key=%x,pos=%d) = %v, want %v", key, pos, got, want)
		}
	}
}

func TestRotation(t *testing.T) {
	p := mustNew(t, 2, 0, 1)
	r := p.WithRotation(1000)
	if p.Phi() != 0 || r.Phi() != 1000 {
		t.Fatalf("phi: %d, %d", p.Phi(), r.Phi())
	}
	pt := []float64{0.3, 0.7}
	if r.MapPoint(pt) != p.Hash(pt)+1000 {
		t.Fatal("MapPoint must add phi")
	}
	if r.Unring(r.Ring(0xABCD)) != 0xABCD {
		t.Fatal("Unring(Ring(x)) != x")
	}
	// Wrap-around is fine with uint64 arithmetic.
	big := p.WithRotation(^Key(0))
	if big.Ring(5) != 4 {
		t.Fatalf("wraparound ring = %d, want 4", big.Ring(5))
	}
	if big.Unring(4) != 5 {
		t.Fatalf("wraparound unring = %d, want 5", big.Unring(4))
	}
	// Rotation must not mutate the original.
	if p.Phi() != 0 {
		t.Fatal("WithRotation mutated receiver")
	}
}

func TestPhiForName(t *testing.T) {
	a, b := PhiForName("index-a"), PhiForName("index-b")
	if a == b {
		t.Fatal("distinct names should rotate differently")
	}
	if PhiForName("index-a") != a {
		t.Fatal("PhiForName must be deterministic")
	}
}

// Names differing only in a trailing character must produce offsets
// far apart on the ring — otherwise simultaneous index schemes with
// similar names keep overlapping hotspots (the whole point of the
// rotation is to separate them).
func TestPhiForNameAvalanche(t *testing.T) {
	const minSep = Key(1) << 48
	phis := make([]Key, 8)
	for i := range phis {
		phis[i] = PhiForName("syn-l2" + string(rune('a'+i)))
	}
	for i := range phis {
		for j := i + 1; j < len(phis); j++ {
			d := phis[i] - phis[j]
			if d > ^Key(0)/2 {
				d = -d
			}
			if d < minSep {
				t.Fatalf("offsets %d and %d only %#x apart", i, j, d)
			}
		}
	}
}

func TestBoundsHelpers(t *testing.T) {
	b := Bounds{2, 6}
	if b.Mid() != 4 {
		t.Fatalf("Mid = %v", b.Mid())
	}
	if !b.Contains(2) || !b.Contains(6) || b.Contains(6.01) {
		t.Fatal("Contains wrong")
	}
	if b.Clamp(1) != 2 || b.Clamp(7) != 6 || b.Clamp(3) != 3 {
		t.Fatal("Clamp wrong")
	}
}

func TestCuboidPanicsOnBadPrelen(t *testing.T) {
	p := mustNew(t, 2, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Cuboid(0, 65)
}

func TestAllBoundsIsCopy(t *testing.T) {
	p := mustNew(t, 2, 0, 1)
	ab := p.AllBounds()
	ab[0].Lo = 99
	if p.Bounds(0).Lo == 99 {
		t.Fatal("AllBounds aliases internal state")
	}
}

func BenchmarkHashDim10(b *testing.B) {
	p, _ := New(10, 0, 1000)
	pt := make([]float64, 10)
	rng := rand.New(rand.NewSource(1))
	for i := range pt {
		pt[i] = rng.Float64() * 1000
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Hash(pt)
	}
}
