// Package lph implements the paper's locality-preserving hashing
// (§3.2, Algorithm 2): a k-d-tree-style recursive bisection of the
// k-dimensional index space into 2^m equal hypercuboids, each
// identified by an m-bit key, plus the prefix-key arithmetic used by
// the query routing algorithms (§3.3) and the per-index rotation
// offsets used for static load balancing (§3.4).
//
// m is fixed at 64: keys are uint64 and ring arithmetic is the native
// modulo-2^64 wrap-around of unsigned integers. The paper indexes bits
// from 1 at the most significant end; bit i of a key is uint64 bit
// (64 - i).
package lph

import (
	"fmt"
	"hash/fnv"
)

// M is the number of bits in key and node identifiers (the paper's
// simulations also use 64).
const M = 64

// Key is an m-bit identifier on the Chord ring.
type Key = uint64

// Bounds is the closed interval covered by one dimension of the index
// space.
type Bounds struct {
	Lo, Hi float64
}

// Mid returns the midpoint of the interval.
func (b Bounds) Mid() float64 { return (b.Lo + b.Hi) / 2 }

// Contains reports whether x lies in [Lo, Hi].
func (b Bounds) Contains(x float64) bool { return x >= b.Lo && x <= b.Hi }

// Clamp returns x restricted to [Lo, Hi]. The paper maps objects whose
// landmark distances exceed the boundary to the boundary points.
func (b Bounds) Clamp(x float64) float64 {
	if x < b.Lo {
		return b.Lo
	}
	if x > b.Hi {
		return b.Hi
	}
	return x
}

// Partitioner carries the static description of one index scheme's
// key space: the dimensionality k, the per-dimension boundaries, and
// the rotation offset φ applied when the 1-d key space is laid onto
// the ring.
type Partitioner struct {
	k      int
	bounds []Bounds
	phi    Key
}

// New creates a Partitioner for a k-dimensional index space where
// every dimension shares the boundary [lo, hi] and no rotation is
// applied.
func New(k int, lo, hi float64) (*Partitioner, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lph: dimensionality must be positive, got %d", k)
	}
	if hi <= lo {
		return nil, fmt.Errorf("lph: empty dimension boundary [%v, %v]", lo, hi)
	}
	b := make([]Bounds, k)
	for i := range b {
		b[i] = Bounds{lo, hi}
	}
	return &Partitioner{k: k, bounds: b}, nil
}

// NewWithBounds creates a Partitioner with per-dimension boundaries
// (used when the boundary comes from the landmark selection procedure,
// §3.1 approach 2).
func NewWithBounds(bounds []Bounds) (*Partitioner, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("lph: no dimensions")
	}
	for i, b := range bounds {
		if b.Hi <= b.Lo {
			return nil, fmt.Errorf("lph: empty boundary [%v, %v] on dimension %d", b.Lo, b.Hi, i)
		}
	}
	cp := make([]Bounds, len(bounds))
	copy(cp, bounds)
	return &Partitioner{k: len(bounds), bounds: cp}, nil
}

// WithRotation returns a copy of p whose keys are rotated by φ on the
// ring (§3.4 space mapping rotation).
func (p *Partitioner) WithRotation(phi Key) *Partitioner {
	cp := *p
	cp.bounds = append([]Bounds(nil), p.bounds...)
	cp.phi = phi
	return &cp
}

// K returns the dimensionality of the index space.
func (p *Partitioner) K() int { return p.k }

// Bounds returns the boundary of dimension j.
func (p *Partitioner) Bounds(j int) Bounds { return p.bounds[j] }

// AllBounds returns a copy of all dimension boundaries.
func (p *Partitioner) AllBounds() []Bounds { return append([]Bounds(nil), p.bounds...) }

// Phi returns the rotation offset.
func (p *Partitioner) Phi() Key { return p.phi }

// Hash is Algorithm 2: it identifies the hypercuboid containing the
// index point and returns its 64-bit key in *unrotated* space.
// Coordinates outside the boundary are clamped (the paper maps such
// objects to the boundary points). The point must have exactly k
// coordinates.
func (p *Partitioner) Hash(point []float64) Key {
	if len(point) != p.k {
		panic(fmt.Sprintf("lph: point has %d coordinates, want %d", len(point), p.k))
	}
	// Per-dimension current range, narrowed as we descend.
	var local [16]Bounds
	var r []Bounds
	if p.k <= len(local) {
		r = local[:p.k]
	} else {
		r = make([]Bounds, p.k)
	}
	copy(r, p.bounds)
	var key Key
	for i := 1; i <= M; i++ {
		j := (i - 1) % p.k
		mid := r[j].Mid()
		x := r[j].Clamp(point[j])
		if x > mid {
			r[j].Lo = mid
			key = key<<1 | 1
		} else {
			r[j].Hi = mid
			key <<= 1
		}
	}
	return key
}

// Ring returns the on-ring position for an unrotated key: key + φ
// (arithmetic modulo 2^64).
func (p *Partitioner) Ring(key Key) Key { return key + p.phi }

// Unring maps an on-ring identifier back to unrotated key space.
func (p *Partitioner) Unring(id Key) Key { return id - p.phi }

// MapPoint composes Hash and Ring: the node responsible for point is
// successor(MapPoint(point)).
func (p *Partitioner) MapPoint(point []float64) Key { return p.Ring(p.Hash(point)) }

// Cuboid reconstructs the per-dimension bounds of the hypercuboid
// denoted by the first prelen bits of prekey (in unrotated space).
// prelen must be in [0, 64].
func (p *Partitioner) Cuboid(prekey Key, prelen int) []Bounds {
	if prelen < 0 || prelen > M {
		panic(fmt.Sprintf("lph: prefix length %d out of [0,64]", prelen))
	}
	r := append([]Bounds(nil), p.bounds...)
	for i := 1; i <= prelen; i++ {
		j := (i - 1) % p.k
		mid := r[j].Mid()
		if GetBit(prekey, i) == 1 {
			r[j].Lo = mid
		} else {
			r[j].Hi = mid
		}
	}
	return r
}

// SplitMid returns the midpoint at which division number p (1-based)
// splits its dimension, for the cuboid identified by the first p-1
// bits of prekey. This is the prefix-walk of Algorithm 4 lines 1–12.
func (pt *Partitioner) SplitMid(prekey Key, p int) float64 {
	if p < 1 || p > M {
		panic(fmt.Sprintf("lph: division number %d out of [1,64]", p))
	}
	j := (p - 1) % pt.k
	r := pt.bounds[j]
	// Walk earlier divisions of the same dimension: positions
	// i ≡ p (mod k), i < p.
	for i := ((p - 1) % pt.k) + 1; i < p; i += pt.k {
		if GetBit(prekey, i) == 1 {
			r.Lo = r.Mid()
		} else {
			r.Hi = r.Mid()
		}
	}
	return r.Mid()
}

// --- bit/prefix helpers -------------------------------------------------

// GetBit returns the i-th bit (1-based from the most significant end)
// of key, as 0 or 1.
func GetBit(key Key, i int) uint {
	return uint(key>>(M-i)) & 1
}

// SetBit returns key with its i-th bit (1-based from the MSB) set.
func SetBit(key Key, i int) Key {
	return key | 1<<(M-i)
}

// ClearBit returns key with its i-th bit (1-based from the MSB)
// cleared.
func ClearBit(key Key, i int) Key {
	return key &^ (1 << (M - i))
}

// PrefixMask returns a mask covering the first l bits.
func PrefixMask(l int) Key {
	if l <= 0 {
		return 0
	}
	if l >= M {
		return ^Key(0)
	}
	return ^Key(0) << (M - l)
}

// Prefix returns key with everything after the first l bits zeroed —
// the paper's prefix_key construction ("padding zeros to the right").
func Prefix(key Key, l int) Key { return key & PrefixMask(l) }

// SamePrefix reports whether a and b agree on their first l bits.
func SamePrefix(a, b Key, l int) bool { return (a^b)&PrefixMask(l) == 0 }

// FirstZeroBitAfter returns the smallest position j in (from, 64] such
// that bit j of key is 0, or 0 if no such position exists (all ones).
// This is the search in Algorithm 5 line 5.
func FirstZeroBitAfter(key Key, from int) int {
	for j := from + 1; j <= M; j++ {
		if GetBit(key, j) == 0 {
			return j
		}
	}
	return 0
}

// CuboidSpan returns the half-open key interval [lo, hi) covered by
// the prefix (prekey, prelen); for prelen == 0, hi wraps to 0 and the
// interval is the whole ring.
func CuboidSpan(prekey Key, prelen int) (lo, hi Key) {
	lo = Prefix(prekey, prelen)
	hi = lo + (Key(1) << (M - prelen)) // wraps to 0 when prelen == 0
	return lo, hi
}

// PhiForName derives a pseudo-random rotation offset from an index
// scheme's name — the paper's "random hashing function". FNV-1a alone
// has weak avalanche for names differing only in a trailing character
// (the offsets would differ by a small multiple of the FNV prime,
// leaving similar hot regions on the same node), so the output is
// passed through a splitmix64 finalizer.
func PhiForName(name string) Key {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
