package metric

// PointSet is a finite set of points in a common vector space, the
// object type for the paper's image-search application (§2 example 3,
// citing Huttenlocher et al. [14]).
type PointSet []Vector

// Hausdorff returns the Hausdorff distance between two non-empty point
// sets under the ground metric d:
//
//	H(A,B) = max( max_{a∈A} min_{b∈B} d(a,b),  max_{b∈B} min_{a∈A} d(a,b) ).
//
// It is a metric on compact sets whenever d is a metric. Empty sets
// are defined to be at distance 0 from each other and at +Inf from any
// non-empty set would break boundedness, so we treat the directed
// distance from an empty set as 0.
func Hausdorff(d Distance[Vector]) Distance[PointSet] {
	directed := func(a, b PointSet) float64 {
		var worst float64
		for _, p := range a {
			best := -1.0
			for _, q := range b {
				v := d(p, q)
				if best < 0 || v < best {
					best = v
				}
			}
			if best > worst {
				worst = best
			}
		}
		return worst
	}
	return func(a, b PointSet) float64 {
		if len(a) == 0 && len(b) == 0 {
			return 0
		}
		if len(a) == 0 || len(b) == 0 {
			// Degenerate; callers should not index empty sets.
			other := a
			if len(other) == 0 {
				other = b
			}
			return directed(other, other[:1])
		}
		ab := directed(a, b)
		ba := directed(b, a)
		if ab > ba {
			return ab
		}
		return ba
	}
}

// HausdorffSpace returns a Space over point sets under the Hausdorff
// distance induced by the Euclidean ground metric, bounded by the
// diameter of the coordinate box [lo,hi]^dim.
func HausdorffSpace(name string, dim int, lo, hi float64) Space[PointSet] {
	ground := EuclideanSpace("ground", dim, lo, hi)
	return Space[PointSet]{
		Name:    name,
		Dist:    Hausdorff(L2),
		Bounded: true,
		Max:     ground.Max,
	}
}
