package metric

import (
	"fmt"
	"math"
)

// Vector is a dense point in a d-dimensional real vector space.
type Vector []float64

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// L2 is the Euclidean distance, the metric used by the paper's
// synthetic-dataset experiments (§4.2).
func L2(a, b Vector) float64 {
	mustSameDim(a, b)
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// L1 is the Hamilton (Manhattan) distance from the paper's footnote 1.
func L1(a, b Vector) float64 {
	mustSameDim(a, b)
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// LInf is the Chebyshev distance (the limit of L_k as k grows).
func LInf(a, b Vector) float64 {
	mustSameDim(a, b)
	var max float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Lp returns the Minkowski L_k distance for k >= 1, the general form
// of the paper's footnote 1.
func Lp(k float64) Distance[Vector] {
	if k < 1 {
		panic(fmt.Sprintf("metric: Lp requires k >= 1, got %v", k))
	}
	return func(a, b Vector) float64 {
		mustSameDim(a, b)
		var sum float64
		for i := range a {
			sum += math.Pow(math.Abs(a[i]-b[i]), k)
		}
		return math.Pow(sum, 1/k)
	}
}

// EuclideanSpace returns a Space over dim-dimensional vectors whose
// coordinates lie in [lo, hi], with the exact theoretical maximum
// distance as the bound — mirroring §4.2 where the bound for 100
// dimensions in [0,100] is sqrt(100·100²) = 1000.
func EuclideanSpace(name string, dim int, lo, hi float64) Space[Vector] {
	if dim <= 0 || hi <= lo {
		panic(fmt.Sprintf("metric: invalid euclidean space dim=%d range=[%v,%v]", dim, lo, hi))
	}
	return Space[Vector]{
		Name:    name,
		Dist:    L2,
		Bounded: true,
		Max:     math.Sqrt(float64(dim)) * (hi - lo),
	}
}

func mustSameDim(a, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: dimension mismatch %d vs %d", len(a), len(b)))
	}
}
