package metric

import (
	"math/rand"
	"testing"
)

func TestNewIDSet(t *testing.T) {
	s := NewIDSet(5, 1, 5, 3, 1)
	if len(s) != 3 || s[0] != 1 || s[1] != 3 || s[2] != 5 {
		t.Fatalf("set = %v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if NewIDSet() != nil {
		t.Fatal("empty set should be nil")
	}
	bad := IDSet{3, 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestJaccardKnown(t *testing.T) {
	a := NewIDSet(1, 2, 3)
	b := NewIDSet(2, 3, 4)
	// |∩|=2, |∪|=4 → 1 - 0.5 = 0.5.
	if got := Jaccard(a, b); got != 0.5 {
		t.Fatalf("jaccard = %v", got)
	}
	if Jaccard(a, a) != 0 {
		t.Fatal("self distance")
	}
	if Jaccard(a, nil) != 1 {
		t.Fatal("disjoint-with-empty distance")
	}
	if Jaccard(nil, nil) != 0 {
		t.Fatal("empty-empty distance")
	}
	if Jaccard(NewIDSet(1), NewIDSet(2)) != 1 {
		t.Fatal("disjoint distance")
	}
}

func TestJaccardAxioms(t *testing.T) {
	gen := func(r *rand.Rand) IDSet {
		n := r.Intn(12)
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(r.Intn(20))
		}
		return NewIDSet(ids...)
	}
	eq := func(a, b IDSet) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	checkAxioms(t, "Jaccard", Jaccard, gen, eq)
}

func TestJaccardSpace(t *testing.T) {
	s := JaccardSpace("tags")
	if !s.Bounded || s.Max != 1 {
		t.Fatalf("space = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
