package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = rng.Float64()*200 - 100
	}
	return v
}

// checkAxioms verifies the four metric-space properties from
// Definition 1 on random triples.
func checkAxioms[T any](t *testing.T, name string, d Distance[T], gen func(*rand.Rand) T, eq func(a, b T) bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	const eps = 1e-9
	for i := 0; i < 300; i++ {
		x, y, z := gen(rng), gen(rng), gen(rng)
		dxy, dyx := d(x, y), d(y, x)
		if dxy < 0 {
			t.Fatalf("%s: positivity violated: d=%v", name, dxy)
		}
		if math.Abs(dxy-dyx) > eps {
			t.Fatalf("%s: symmetry violated: %v vs %v", name, dxy, dyx)
		}
		if d(x, x) > eps {
			t.Fatalf("%s: reflexivity violated: d(x,x)=%v", name, d(x, x))
		}
		if eq(x, y) && dxy > eps {
			t.Fatalf("%s: equal objects at distance %v", name, dxy)
		}
		if d(x, y)+d(y, z) < d(x, z)-eps {
			t.Fatalf("%s: triangle inequality violated: %v + %v < %v", name, d(x, y), d(y, z), d(x, z))
		}
	}
}

func vecEq(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestL2Axioms(t *testing.T) {
	checkAxioms(t, "L2", L2, func(r *rand.Rand) Vector { return randVec(r, 8) }, vecEq)
}

func TestL1Axioms(t *testing.T) {
	checkAxioms(t, "L1", L1, func(r *rand.Rand) Vector { return randVec(r, 8) }, vecEq)
}

func TestLInfAxioms(t *testing.T) {
	checkAxioms(t, "LInf", LInf, func(r *rand.Rand) Vector { return randVec(r, 8) }, vecEq)
}

func TestLpAxioms(t *testing.T) {
	checkAxioms(t, "L3", Lp(3), func(r *rand.Rand) Vector { return randVec(r, 8) }, vecEq)
}

func TestEditAxioms(t *testing.T) {
	alpha := "ACGT"
	gen := func(r *rand.Rand) string {
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[r.Intn(len(alpha))]
		}
		return string(b)
	}
	checkAxioms(t, "Edit", Edit, gen, func(a, b string) bool { return a == b })
}

func TestHausdorffAxioms(t *testing.T) {
	gen := func(r *rand.Rand) PointSet {
		n := 1 + r.Intn(5)
		ps := make(PointSet, n)
		for i := range ps {
			ps[i] = randVec(r, 3)
		}
		return ps
	}
	// Hausdorff reflexivity over sets needs set equality; just use
	// pointer-distinct sets and skip the eq clause.
	checkAxioms(t, "Hausdorff", Hausdorff(L2), gen, func(a, b PointSet) bool { return false })
}

func TestL2KnownValues(t *testing.T) {
	if got := L2(Vector{0, 0}, Vector{3, 4}); got != 5 {
		t.Fatalf("L2 = %v, want 5", got)
	}
	if got := L1(Vector{0, 0}, Vector{3, 4}); got != 7 {
		t.Fatalf("L1 = %v, want 7", got)
	}
	if got := LInf(Vector{0, 0}, Vector{3, 4}); got != 4 {
		t.Fatalf("LInf = %v, want 4", got)
	}
}

func TestLpMatchesSpecialCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a, b := randVec(rng, 6), randVec(rng, 6)
		if math.Abs(Lp(1)(a, b)-L1(a, b)) > 1e-9 {
			t.Fatal("Lp(1) != L1")
		}
		if math.Abs(Lp(2)(a, b)-L2(a, b)) > 1e-9 {
			t.Fatal("Lp(2) != L2")
		}
	}
}

func TestLpPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 1")
		}
	}()
	Lp(0.5)
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	L2(Vector{1}, Vector{1, 2})
}

func TestEuclideanSpaceBound(t *testing.T) {
	s := EuclideanSpace("syn", 100, 0, 100)
	// Paper §4.2: theoretical max distance is 1000.
	if math.Abs(s.Max-1000) > 1e-9 {
		t.Fatalf("Max = %v, want 1000", s.Max)
	}
	if !s.Bounded {
		t.Fatal("euclidean space must be bounded")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEditKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"ACGT", "ACGT", 0},
		{"ACGT", "AGGT", 1},
		{"abc", "cba", 2},
	}
	for _, c := range cases {
		if got := EditInt(c.a, c.b); got != c.want {
			t.Errorf("Edit(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := EditInt(c.b, c.a); got != c.want {
			t.Errorf("Edit(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestEditBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		d := EditInt(a, b)
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		min := len(a) - len(b)
		if min < 0 {
			min = -min
		}
		return d >= min && d <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundTransform(t *testing.T) {
	s := Space[Vector]{Name: "raw", Dist: L2}
	bs := Bound(s)
	if !bs.Bounded || bs.Max != 1 {
		t.Fatalf("bound space = %+v", bs)
	}
	a, b := Vector{0, 0}, Vector{3, 4}
	if got, want := bs.Dist(a, b), 5.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("bounded dist = %v, want %v", got, want)
	}
	// Order preservation.
	c := Vector{30, 40}
	if !(bs.Dist(a, b) < bs.Dist(a, c)) {
		t.Fatal("bound transform must preserve order")
	}
	// Still a metric (d/(1+d) preserves the triangle inequality).
	checkAxioms(t, "bounded-L2", bs.Dist, func(r *rand.Rand) Vector { return randVec(r, 4) }, vecEq)
}

func TestSpaceValidate(t *testing.T) {
	if err := (Space[Vector]{Name: "", Dist: L2}).Validate(); err == nil {
		t.Fatal("expected error for empty name")
	}
	if err := (Space[Vector]{Name: "x"}).Validate(); err == nil {
		t.Fatal("expected error for nil dist")
	}
	if err := (Space[Vector]{Name: "x", Dist: L2, Bounded: true, Max: 0}).Validate(); err == nil {
		t.Fatal("expected error for zero bound")
	}
	if err := (Space[Vector]{Name: "x", Dist: L2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases underlying array")
	}
}

func BenchmarkL2Dim100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randVec(rng, 100), randVec(rng, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		L2(x, y)
	}
}

func BenchmarkEdit64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func() string {
		s := make([]byte, 64)
		for i := range s {
			s[i] = "ACGT"[rng.Intn(4)]
		}
		return string(s)
	}
	x, y := mk(), mk()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditInt(x, y)
	}
}
