package metric

import (
	"fmt"
	"math"
	"sort"
)

// SparseVector is a term vector in a very high-dimensional space,
// stored as parallel slices of strictly increasing term indices and
// their (non-negative) weights. It models the paper's §4.3 TF/IDF
// document vectors: 233,640 dimensions with ~155 non-zeros each.
type SparseVector struct {
	Idx []uint32
	Val []float64
	// norm caches the Euclidean norm (0 = not yet computed; a true zero
	// norm only occurs for the empty vector, where recomputing is free).
	// NewSparseVector precomputes it so the cosine-angle hot path never
	// rescans Val; vectors built from struct literals fill it lazily on
	// first use via Norm.
	norm float64
}

// NewSparseVector builds a normalized-representation sparse vector
// from unordered (index, weight) pairs, merging duplicates by
// summation and dropping zero weights.
func NewSparseVector(idx []uint32, val []float64) (SparseVector, error) {
	if len(idx) != len(val) {
		return SparseVector{}, fmt.Errorf("metric: sparse vector has %d indices but %d values", len(idx), len(val))
	}
	type pair struct {
		i uint32
		v float64
	}
	pairs := make([]pair, 0, len(idx))
	for k := range idx {
		if val[k] < 0 {
			return SparseVector{}, fmt.Errorf("metric: negative weight %v at term %d", val[k], idx[k])
		}
		if val[k] != 0 {
			pairs = append(pairs, pair{idx[k], val[k]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	out := SparseVector{Idx: make([]uint32, 0, len(pairs)), Val: make([]float64, 0, len(pairs))}
	for _, p := range pairs {
		if n := len(out.Idx); n > 0 && out.Idx[n-1] == p.i {
			out.Val[n-1] += p.v
		} else {
			out.Idx = append(out.Idx, p.i)
			out.Val = append(out.Val, p.v)
		}
	}
	out.norm = computeNorm(out.Val)
	return out, nil
}

// NNZ returns the number of non-zero components (the "document vector
// size" of the paper's Table 2).
func (v SparseVector) NNZ() int { return len(v.Idx) }

// Norm returns the Euclidean norm of v. Vectors built through
// NewSparseVector carry a precomputed norm, making this O(1) on the
// cosine-angle hot path; vectors assembled from struct literals fall
// back to an O(nnz) scan.
func (v SparseVector) Norm() float64 {
	if v.norm > 0 {
		return v.norm
	}
	return computeNorm(v.Val)
}

func computeNorm(val []float64) float64 {
	var s float64
	for _, x := range val {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two sparse vectors using a merge
// over the sorted index lists.
func Dot(a, b SparseVector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// CosineAngle is the paper's §4.3 document distance: the angle between
// the two term vectors, d(X,Y) = arccos(X·Y / (|X||Y|)). With
// non-negative TF/IDF weights it is bounded by π/2. A zero vector is
// defined to be at the maximum angle π/2 from everything except
// another zero vector.
func CosineAngle(a, b SparseVector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return math.Pi / 2
	}
	c := Dot(a, b) / (na * nb)
	// Clamp for floating-point safety before arccos.
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// CosineSpace returns the document metric space of §4.3, bounded by
// π/2 (non-negative weights).
func CosineSpace(name string) Space[SparseVector] {
	return Space[SparseVector]{Name: name, Dist: CosineAngle, Bounded: true, Max: math.Pi / 2}
}
