// Package metric implements the generic metric spaces from §2 of the
// paper: a data domain D together with a black-box distance function
// satisfying positivity, reflexivity, symmetry and the triangle
// inequality.
//
// The index architecture never inspects objects directly — it only
// calls the distance function — so any of the paper's six motivating
// applications (DNA sequences, vocal patterns, images, time series,
// documents, sentences) plugs in through a Space value.
package metric

import "fmt"

// Distance computes the dissimilarity between two objects. It must be
// non-negative, zero iff the objects are equal, symmetric, and satisfy
// the triangle inequality.
type Distance[T any] func(a, b T) float64

// Space bundles a distance function with metadata the indexing layer
// needs: a name (used to derive the rotation offset for multi-index
// deployments, §3.4) and an optional a-priori upper bound on distances
// (used for index-space boundaries, §3.1).
type Space[T any] struct {
	// Name identifies the metric space / index scheme. Two index
	// schemes with different names receive different rotation offsets.
	Name string
	// Dist is the black-box distance function.
	Dist Distance[T]
	// Bounded reports whether Max is a valid upper bound for Dist.
	Bounded bool
	// Max is the maximum possible distance when Bounded is true.
	Max float64
}

// Validate checks structural invariants of the space definition.
func (s Space[T]) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("metric: space has empty name")
	}
	if s.Dist == nil {
		return fmt.Errorf("metric: space %q has nil distance function", s.Name)
	}
	if s.Bounded && s.Max <= 0 {
		return fmt.Errorf("metric: bounded space %q has non-positive Max %v", s.Name, s.Max)
	}
	return nil
}

// Bound wraps an unbounded metric with the paper's d' = d/(1+d)
// transform (§3.1 "Boundary of index space"). The result is a metric
// bounded by 1 that preserves the ordering of distances.
func Bound[T any](s Space[T]) Space[T] {
	inner := s.Dist
	return Space[T]{
		Name:    s.Name + "/bounded",
		Dist:    func(a, b T) float64 { d := inner(a, b); return d / (1 + d) },
		Bounded: true,
		Max:     1,
	}
}
