package metric

import (
	"math"
	"math/rand"
	"testing"
)

func randSparse(rng *rand.Rand, vocab uint32, nnz int) SparseVector {
	idx := make([]uint32, nnz)
	val := make([]float64, nnz)
	for i := range idx {
		idx[i] = rng.Uint32() % vocab
		val[i] = rng.Float64() + 0.01
	}
	sv, err := NewSparseVector(idx, val)
	if err != nil {
		panic(err)
	}
	return sv
}

func TestNewSparseVectorSortsAndMerges(t *testing.T) {
	sv, err := NewSparseVector([]uint32{5, 1, 5, 3}, []float64{1, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sv.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (zero dropped, dup merged)", sv.NNZ())
	}
	if sv.Idx[0] != 1 || sv.Idx[1] != 5 {
		t.Fatalf("idx = %v, want [1 5]", sv.Idx)
	}
	if sv.Val[1] != 4 {
		t.Fatalf("merged val = %v, want 4", sv.Val[1])
	}
}

func TestNewSparseVectorErrors(t *testing.T) {
	if _, err := NewSparseVector([]uint32{1}, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := NewSparseVector([]uint32{1}, []float64{-1}); err == nil {
		t.Fatal("expected negative-weight error")
	}
}

func TestDotKnown(t *testing.T) {
	a, _ := NewSparseVector([]uint32{1, 3, 5}, []float64{1, 2, 3})
	b, _ := NewSparseVector([]uint32{3, 5, 7}, []float64{4, 5, 6})
	if got := Dot(a, b); got != 2*4+3*5 {
		t.Fatalf("dot = %v, want 23", got)
	}
	if Dot(a, b) != Dot(b, a) {
		t.Fatal("dot not symmetric")
	}
}

func TestCosineAngleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := randSparse(rng, 1000, 1+rng.Intn(20))
		b := randSparse(rng, 1000, 1+rng.Intn(20))
		d := CosineAngle(a, b)
		if d < 0 || d > math.Pi/2+1e-12 {
			t.Fatalf("angle %v out of [0, π/2]", d)
		}
	}
}

func TestCosineAngleIdentical(t *testing.T) {
	a, _ := NewSparseVector([]uint32{1, 2}, []float64{3, 4})
	if d := CosineAngle(a, a); d > 1e-9 {
		t.Fatalf("self angle = %v", d)
	}
	// Parallel vectors are at angle 0 too (angle is a metric on rays).
	b, _ := NewSparseVector([]uint32{1, 2}, []float64{6, 8})
	if d := CosineAngle(a, b); d > 1e-7 {
		t.Fatalf("parallel angle = %v", d)
	}
}

func TestCosineAngleOrthogonal(t *testing.T) {
	a, _ := NewSparseVector([]uint32{1}, []float64{1})
	b, _ := NewSparseVector([]uint32{2}, []float64{1})
	if d := CosineAngle(a, b); math.Abs(d-math.Pi/2) > 1e-12 {
		t.Fatalf("orthogonal angle = %v, want π/2", d)
	}
}

func TestCosineAngleZeroVectors(t *testing.T) {
	z := SparseVector{}
	a, _ := NewSparseVector([]uint32{1}, []float64{1})
	if d := CosineAngle(z, z); d != 0 {
		t.Fatalf("zero-zero angle = %v", d)
	}
	if d := CosineAngle(z, a); math.Abs(d-math.Pi/2) > 1e-12 {
		t.Fatalf("zero-nonzero angle = %v, want π/2", d)
	}
}

func TestCosineAngleTriangle(t *testing.T) {
	// The angle satisfies the triangle inequality on the sphere.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		x := randSparse(rng, 50, 1+rng.Intn(10))
		y := randSparse(rng, 50, 1+rng.Intn(10))
		z := randSparse(rng, 50, 1+rng.Intn(10))
		if CosineAngle(x, y)+CosineAngle(y, z) < CosineAngle(x, z)-1e-9 {
			t.Fatal("triangle inequality violated for angles")
		}
	}
}

func TestCosineSpace(t *testing.T) {
	s := CosineSpace("docs")
	if !s.Bounded || math.Abs(s.Max-math.Pi/2) > 1e-12 {
		t.Fatalf("space = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNormKnown(t *testing.T) {
	v, _ := NewSparseVector([]uint32{0, 1}, []float64{3, 4})
	if v.Norm() != 5 {
		t.Fatalf("norm = %v, want 5", v.Norm())
	}
}

func TestHausdorffKnown(t *testing.T) {
	h := Hausdorff(L2)
	a := PointSet{{0, 0}}
	b := PointSet{{3, 4}}
	if got := h(a, b); got != 5 {
		t.Fatalf("H = %v, want 5", got)
	}
	// Adding a point to b closer to a reduces the directed distance
	// a->b but not b->a.
	b2 := PointSet{{3, 4}, {0, 1}}
	if got := h(a, b2); got != 5 {
		t.Fatalf("H = %v, want 5 (farthest of b still governs)", got)
	}
	if got := h(b2, b2); got != 0 {
		t.Fatalf("H(self) = %v", got)
	}
}

func TestHausdorffSpaceBound(t *testing.T) {
	s := HausdorffSpace("img", 2, 0, 1)
	if math.Abs(s.Max-math.Sqrt2) > 1e-12 {
		t.Fatalf("Max = %v, want sqrt(2)", s.Max)
	}
}

func BenchmarkCosineAngleNNZ155(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randSparse(rng, 233640, 155)
	y := randSparse(rng, 233640, 155)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CosineAngle(x, y)
	}
}
