package metric

// Edit is the Levenshtein edit distance from the paper's footnote 2:
// the minimum number of point mutations (change, insert or delete a
// letter) required to turn one string into the other. It is the metric
// for the DNA/protein and sentence-search applications (§2 examples 1
// and 6).
func Edit(a, b string) float64 {
	return float64(EditInt(a, b))
}

// EditInt computes the edit distance as an integer using the two-row
// dynamic program (O(len(a)·len(b)) time, O(min) space). It allocates
// fresh rows on every call; hot paths reuse an EditScratch instead.
func EditInt(a, b string) int {
	var s EditScratch
	return s.EditInt(a, b)
}

// EditScratch is the reusable two-row workspace for the edit-distance
// dynamic program. The zero value is ready to use; rows grow to the
// longest string seen and are then reused, so a warm scratch computes
// distances with zero allocations.
//
// A scratch is not safe for concurrent use. Ownership rule (DESIGN.md
// §9): a scratch belongs to exactly one goroutine — in simulator terms,
// to one engine/trial. Sharing one across parallel trial engines is a
// data race.
type EditScratch struct {
	prev, curr []int
}

// Edit is the float64 form of EditInt, matching the metric.Distance
// signature via a method value: metric.Space{Dist: scratch.Edit}.
func (s *EditScratch) Edit(a, b string) float64 {
	return float64(s.EditInt(a, b))
}

// EditInt computes the edit distance reusing the scratch rows.
func (s *EditScratch) EditInt(a, b string) int {
	// Work over bytes: DNA/protein alphabets are ASCII. Ensure b is
	// the shorter string to minimize the row.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	n := len(b) + 1
	if cap(s.prev) < n {
		s.prev = make([]int, n)
		s.curr = make([]int, n)
	}
	prev, curr := s.prev[:n], s.curr[:n]
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if v := prev[j] + 1; v < m { // delete
				m = v
			}
			if v := curr[j-1] + 1; v < m { // insert
				m = v
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

// EditSpace returns a Space over strings under edit distance, bounded
// by maxLen (the maximum string length in the dataset): no two strings
// of length <= maxLen can be farther apart than maxLen edits.
func EditSpace(name string, maxLen int) Space[string] {
	return Space[string]{Name: name, Dist: Edit, Bounded: maxLen > 0, Max: float64(maxLen)}
}

// EditSpaceScratch is EditSpace with a per-space EditScratch backing
// the distance function, making warm distance calls allocation-free.
// The returned Space (and copies of it — they share the scratch) must
// be confined to a single goroutine/engine; build one Space per trial.
func EditSpaceScratch(name string, maxLen int) Space[string] {
	var s EditScratch
	return Space[string]{Name: name, Dist: s.Edit, Bounded: maxLen > 0, Max: float64(maxLen)}
}
