package metric

// Edit is the Levenshtein edit distance from the paper's footnote 2:
// the minimum number of point mutations (change, insert or delete a
// letter) required to turn one string into the other. It is the metric
// for the DNA/protein and sentence-search applications (§2 examples 1
// and 6).
func Edit(a, b string) float64 {
	return float64(EditInt(a, b))
}

// EditInt computes the edit distance as an integer using the two-row
// dynamic program (O(len(a)·len(b)) time, O(min) space).
func EditInt(a, b string) int {
	// Work over bytes: DNA/protein alphabets are ASCII. Ensure b is
	// the shorter string to minimize the row.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if v := prev[j] + 1; v < m { // delete
				m = v
			}
			if v := curr[j-1] + 1; v < m { // insert
				m = v
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

// EditSpace returns a Space over strings under edit distance, bounded
// by maxLen (the maximum string length in the dataset): no two strings
// of length <= maxLen can be farther apart than maxLen edits.
func EditSpace(name string, maxLen int) Space[string] {
	return Space[string]{Name: name, Dist: Edit, Bounded: maxLen > 0, Max: float64(maxLen)}
}
