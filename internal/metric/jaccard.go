package metric

import (
	"fmt"
	"sort"
)

// IDSet is a finite set of uint32 identifiers (tags, shingles, feature
// ids), stored sorted and deduplicated. With the Jaccard distance it
// forms another instance of the paper's generic metric space — useful
// for near-duplicate detection and tag-based similarity.
type IDSet []uint32

// NewIDSet builds a normalized set from arbitrary ids.
func NewIDSet(ids ...uint32) IDSet {
	if len(ids) == 0 {
		return nil
	}
	cp := append([]uint32(nil), ids...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:1]
	for _, id := range cp[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return IDSet(out)
}

// Validate checks the sorted-unique invariant.
func (s IDSet) Validate() error {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return fmt.Errorf("metric: IDSet not sorted-unique at %d", i)
		}
	}
	return nil
}

// Jaccard is the Jaccard distance 1 − |A∩B| / |A∪B|, a proper metric
// on finite sets (it satisfies the triangle inequality), bounded by 1.
// Two empty sets are at distance 0.
func Jaccard(a, b IDSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	return 1 - float64(inter)/float64(union)
}

// JaccardSpace returns the set space under Jaccard distance, bounded
// by 1.
func JaccardSpace(name string) Space[IDSet] {
	return Space[IDSet]{Name: name, Dist: Jaccard, Bounded: true, Max: 1}
}
