package metric

// Microbenchmarks and allocation-regression tests for the distance
// kernels on the index publish/search hot paths. The AllocsPerRun
// tests pin warm-path allocation at exactly zero (DESIGN.md §9).

import (
	"math/rand"
	"testing"
)

func benchStrings(n int) (string, string) {
	rng := rand.New(rand.NewSource(1))
	mk := func() string {
		s := make([]byte, n)
		for i := range s {
			s[i] = "ACGT"[rng.Intn(4)]
		}
		return string(s)
	}
	return mk(), mk()
}

// BenchmarkEditScratch64 is BenchmarkEdit64 with a warm scratch: the
// two-row workspace is reused, so the dynamic program allocates
// nothing per call.
func BenchmarkEditScratch64(b *testing.B) {
	x, y := benchStrings(64)
	var s EditScratch
	s.EditInt(x, y) // warm the rows
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EditInt(x, y)
	}
}

func BenchmarkL1Dim100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randVec(rng, 100), randVec(rng, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L1(x, y)
	}
}

func BenchmarkLInfDim100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randVec(rng, 100), randVec(rng, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LInf(x, y)
	}
}

func BenchmarkLp3Dim100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randVec(rng, 100), randVec(rng, 100)
	d := Lp(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d(x, y)
	}
}

func BenchmarkHausdorff16x8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func() PointSet {
		ps := make(PointSet, 16)
		for i := range ps {
			ps[i] = randVec(rng, 8)
		}
		return ps
	}
	x, y := mk(), mk()
	d := Hausdorff(L2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d(x, y)
	}
}

func TestEditScratchZeroAlloc(t *testing.T) {
	x, y := benchStrings(64)
	var s EditScratch
	s.EditInt(x, y) // warm the rows
	allocs := testing.AllocsPerRun(100, func() {
		s.EditInt(x, y)
	})
	if allocs != 0 {
		t.Fatalf("warm EditScratch.EditInt allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEditIntExactAllocs pins the convenience (scratch-free) form at
// exactly its two row allocations, so an accidental extra copy shows
// up as a test failure.
func TestEditIntExactAllocs(t *testing.T) {
	x, y := benchStrings(64)
	allocs := testing.AllocsPerRun(100, func() {
		EditInt(x, y)
	})
	if allocs != 2 {
		t.Fatalf("EditInt allocates %.1f objects/op, want exactly 2 (the DP rows)", allocs)
	}
}

func TestVectorKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := randVec(rng, 100), randVec(rng, 100)
	lp := Lp(3)
	hd := Hausdorff(L2)
	ps1, ps2 := PointSet{x, y}, PointSet{y, x}
	kernels := map[string]func(){
		"L2":        func() { L2(x, y) },
		"L1":        func() { L1(x, y) },
		"LInf":      func() { LInf(x, y) },
		"Lp3":       func() { lp(x, y) },
		"Hausdorff": func() { hd(ps1, ps2) },
	}
	//lint:allow maporder each iteration only runs an independent subtest
	for name, fn := range kernels {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

func TestCosineAngleZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randSparse(rng, 233640, 155)
	y := randSparse(rng, 233640, 155)
	allocs := testing.AllocsPerRun(100, func() {
		CosineAngle(x, y)
	})
	if allocs != 0 {
		t.Fatalf("CosineAngle allocates %.1f objects/op, want 0", allocs)
	}
}
