// Package core implements the paper's primary contribution: the
// distributed landmark-based index layer on top of Chord. It wires
// together the locality-preserving hash (internal/lph), the query
// geometry (internal/query) and the overlay (internal/chord) into a
// system of index nodes that
//
//   - store index entries for one or more index schemes (§3.2),
//   - resolve range queries with the embedded-tree routing algorithms
//     QueryRouting / QuerySplit / SurrogateRefine (§3.3, Algorithms
//     3–5), and
//   - balance load with space-mapping rotation and dynamic load
//     migration (§3.4).
package core

import (
	"fmt"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
	"landmarkdht/internal/sim"
)

// ObjectID references a data object in the application's object store.
// The index layer never inspects objects; exact distances are obtained
// through the Index's Dist callback.
type ObjectID int32

// Entry is one index entry: the object and its index-space point (the
// vector of distances to the landmarks).
type Entry struct {
	Obj   ObjectID
	Point []float64
}

// Index describes one index scheme deployed on the platform. Multiple
// Index values with distinct names can share a single overlay — the
// architecture's headline feature.
type Index struct {
	// Name identifies the scheme (and determines its rotation offset
	// if its partitioner was built with rotation).
	Name string
	// Part is the locality-preserving hash over this scheme's index
	// space, including the rotation offset.
	Part *lph.Partitioner
	// Dist returns the true metric distance between a query payload
	// and a stored object, for the exact refinement step. It must be
	// safe to call from any node.
	Dist func(payload any, obj ObjectID) float64
	// MaxDist bounds distances for wire encoding (required when the
	// system runs with Config.EncodeWire; result distances are
	// quantized against it).
	MaxDist float64
}

func (ix *Index) validate() error {
	if ix == nil {
		return fmt.Errorf("core: nil index")
	}
	if ix.Name == "" {
		return fmt.Errorf("core: index with empty name")
	}
	if ix.Part == nil {
		return fmt.Errorf("core: index %q has no partitioner", ix.Name)
	}
	if ix.Dist == nil {
		return fmt.Errorf("core: index %q has no distance callback", ix.Name)
	}
	return nil
}

// Result is one query answer: an object and its exact distance to the
// query point.
type Result struct {
	Obj  ObjectID
	Dist float64
}

// QueryStats aggregates the paper's §4.1 cost metrics for one query.
type QueryStats struct {
	// Hops is the maximum path length required to deliver the query
	// to all of the corresponding index nodes.
	Hops int
	// Issued is when the query entered the system.
	Issued sim.Time
	// FirstResult is when the first result message arrived (response
	// time = FirstResult - Issued).
	FirstResult sim.Time
	// LastResult is when the final result message arrived (maximum
	// latency = LastResult - Issued).
	LastResult sim.Time
	// QueryMsgs / QueryBytes cover query-delivery traffic.
	QueryMsgs  int
	QueryBytes int64
	// ResultMsgs / ResultBytes cover result-delivery traffic.
	ResultMsgs  int
	ResultBytes int64
	// IndexNodes is the number of distinct nodes that answered.
	IndexNodes int
	// Candidates is the number of index entries that matched the
	// query cube before exact refinement.
	Candidates int
	// Retries is the number of retransmissions the reliability layer
	// issued for this query's subquery and result messages.
	Retries int
	// Hedges is the number of hedged duplicate subqueries the
	// resilience layer shipped for this query (Config.Hedge).
	Hedges int
}

// ResponseTime returns FirstResult - Issued.
func (qs *QueryStats) ResponseTime() sim.Time { return qs.FirstResult - qs.Issued }

// MaxLatency returns LastResult - Issued.
func (qs *QueryStats) MaxLatency() sim.Time { return qs.LastResult - qs.Issued }

// QueryResult is the completed answer to a range query.
type QueryResult struct {
	// Results are deduplicated and sorted by ascending distance. For
	// top-k queries the list is truncated to k.
	Results []Result
	Stats   QueryStats
	// Trace is the execution record when QueryOpts.Trace was set.
	Trace *Trace
	// Complete reports whether every region of the query's index space
	// was answered: no subquery was dropped and no deadline expired
	// with work outstanding. A complete result is exact; an incomplete
	// one is a subset of the exact answer, with the missing index-space
	// regions listed in Uncovered.
	Complete bool
	// DroppedSubqueries counts this query's subqueries lost to churn,
	// message loss, the hop guard, or exhausted retries.
	DroppedSubqueries int
	// Uncovered lists the index-space regions that were never answered
	// (dropped, or still outstanding when the deadline expired). A
	// caller can re-issue exactly these regions instead of the whole
	// query. Empty iff Complete.
	Uncovered []query.Region
}

// MessageModel is the paper's §4.1 byte accounting: a query message
// carrying n subqueries over a k-landmark index costs
// Header + n·(4k + PerSubquery); a result message costs ResultHeader +
// PerEntry·entries.
type MessageModel struct {
	QueryHeader  int // packet header + source IP (paper: 20 + 4)
	PerSubquery  int // prefix key + prefix length (paper: 8 + 1)
	ResultHeader int // packet header (paper: 20)
	PerEntry     int // per index entry in a result (paper: 6)
	PerTransfer  int // per entry moved during load migration
}

// DefaultMessageModel returns the paper's message size model.
func DefaultMessageModel() MessageModel {
	return MessageModel{QueryHeader: 24, PerSubquery: 9, ResultHeader: 20, PerEntry: 6, PerTransfer: 14}
}

// QueryMsgBytes returns the size of a query message carrying n
// subqueries in a k-dimensional index space: each subquery carries its
// k range pairs at 2 bytes per bound (2·2·k) plus prefix metadata.
func (m MessageModel) QueryMsgBytes(n, k int) int {
	return m.QueryHeader + n*(4*k+m.PerSubquery)
}

// ResultMsgBytes returns the size of a result message with the given
// number of entries.
func (m MessageModel) ResultMsgBytes(entries int) int {
	return m.ResultHeader + m.PerEntry*entries
}

// TransferBytes returns the size of a migration transfer of the given
// number of entries.
func (m MessageModel) TransferBytes(entries int) int {
	return m.PerTransfer * entries
}
