package core

import (
	"fmt"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/runtime"
)

// LBConfig parameterizes §3.4 dynamic load migration.
type LBConfig struct {
	// Delta is the threshold factor δ: a node is heavily loaded when
	// its load exceeds the neighbor average by (1+δ). The paper's
	// maximum-effect experiments use δ = 0.
	Delta float64
	// ProbeLevel is P_l: how many routing-table hops the load probe
	// explores (paper's experiments: 4).
	ProbeLevel int
	// Period is the probing interval.
	Period time.Duration
	// MinLoad suppresses migrations on nearly empty nodes.
	MinLoad int
	// ProbeBytes is the nominal size of a load-probe message. The
	// paper piggybacks load information on routing-table maintenance;
	// the cost is accounted as maintenance traffic.
	ProbeBytes int
}

// DefaultLBConfig returns the paper's maximum-effect setting.
func DefaultLBConfig() LBConfig {
	return LBConfig{Delta: 0, ProbeLevel: 4, Period: 30 * time.Second, MinLoad: 4, ProbeBytes: 16}
}

type lbController struct {
	sys     *System
	cfg     LBConfig
	tickers []*runtime.Ticker
	// Migrations counts completed migrations.
	Migrations int
	// Aborted counts migrations abandoned because the heavy node's
	// load sat on a single key (§4.3: "the load balancing mechanism
	// can not divide the index entries associated with a single key").
	Aborted int
}

// EnableLoadBalancing starts periodic load probing and migration on
// every current node. Call after nodes are added and stabilized.
func (s *System) EnableLoadBalancing(cfg LBConfig) error {
	if s.lb != nil {
		return fmt.Errorf("core: load balancing already enabled")
	}
	if cfg.Period <= 0 {
		cfg.Period = 30 * time.Second
	}
	if cfg.ProbeLevel <= 0 {
		cfg.ProbeLevel = 1
	}
	if cfg.MinLoad < 2 {
		cfg.MinLoad = 2
	}
	if cfg.ProbeBytes <= 0 {
		cfg.ProbeBytes = 16
	}
	if s.hasReplicas() {
		return fmt.Errorf("core: dynamic load migration cannot run on a replicated deployment")
	}
	if s.sharded() {
		// Migration ticks run on the protocol executor and move entries
		// between stores owned by different shard executors; quiescing
		// the shards on every tick would defeat the point of sharding.
		return fmt.Errorf("core: dynamic load migration requires a single-executor runtime")
	}
	lb := &lbController{sys: s, cfg: cfg}
	s.lb = lb
	for _, in := range s.Nodes() {
		in := in
		offset := time.Duration(s.rt.Rand().Int63n(int64(cfg.Period)))
		t := runtime.NewTicker(s.rt, offset, cfg.Period, func() { lb.tick(in) })
		lb.tickers = append(lb.tickers, t)
	}
	return nil
}

// DisableLoadBalancing stops all probing.
func (s *System) DisableLoadBalancing() {
	if s.lb == nil {
		return
	}
	for _, t := range s.lb.tickers {
		t.Stop()
	}
	s.lb = nil
}

// LBStats reports migration counts since load balancing was enabled.
func (s *System) LBStats() (migrations, aborted int) {
	if s.lb == nil {
		return 0, 0
	}
	return s.lb.Migrations, s.lb.Aborted
}

// probeNeighbors walks the node's routing table up to ProbeLevel hops
// and returns the loads discovered (excluding the probing node). Load
// information travels piggybacked on maintenance traffic; the probe
// cost is charged as maintenance messages.
func (lb *lbController) probeNeighbors(in *IndexNode) map[chord.ID]int {
	s := lb.sys
	seen := map[chord.ID]bool{in.ID(): true}
	frontier := []*IndexNode{in}
	loads := make(map[chord.ID]int)
	for level := 0; level < lb.cfg.ProbeLevel; level++ {
		var next []*IndexNode
		for _, cur := range frontier {
			for _, id := range cur.node.SuccessorList() {
				if seen[id] {
					continue
				}
				seen[id] = true
				if nb := s.nodes[id]; nb != nil && nb.node.Alive() {
					loads[id] = nb.Load()
					next = append(next, nb)
				}
			}
			for i := 0; i < 64; i++ {
				id := cur.node.Finger(i)
				if seen[id] {
					continue
				}
				seen[id] = true
				if nb := s.nodes[id]; nb != nil && nb.node.Alive() {
					loads[id] = nb.Load()
					next = append(next, nb)
				}
			}
		}
		// One piggybacked probe exchange (request + response) per
		// newly discovered neighbor per level.
		s.net.RecordTraffic(chord.KindMaintenance, 2*lb.cfg.ProbeBytes*len(next))
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return loads
}

// tick runs one probing round on a node (§3.4): if the node's load
// exceeds the neighbor average by (1+δ), it recruits the lightest
// known node to leave and rejoin at its load split point.
func (lb *lbController) tick(in *IndexNode) {
	s := lb.sys
	if !in.node.Alive() || in.migrating {
		return
	}
	myLoad := in.Load()
	if myLoad < lb.cfg.MinLoad {
		return
	}
	loads := lb.probeNeighbors(in)
	if len(loads) == 0 {
		return
	}
	var sum int
	lightest := chord.ID(0)
	lightLoad := -1
	for id, l := range loads {
		sum += l
		if lightLoad < 0 || l < lightLoad || (l == lightLoad && id < lightest) {
			lightest, lightLoad = id, l
		}
	}
	avg := float64(sum) / float64(len(loads))
	if float64(myLoad) <= avg*(1+lb.cfg.Delta) {
		return
	}
	light := s.nodes[lightest]
	if light == nil || light.migrating || lightest == in.ID() {
		return
	}
	// Only steal from a node that is meaningfully heavier than the
	// recruit, otherwise the pair oscillates forever.
	if myLoad < 2*lightLoad+2 {
		return
	}
	lb.migrate(in, light)
}

// migrate implements the §3.4 mechanism: the light node leaves
// (handing its entries to its successor), then rejoins at the heavy
// node's load split point, and the heavy node's lower half transfers
// over. Transfers take simulated time; queries meanwhile can miss the
// in-flight entries — the source of the paper's recall dip under load
// balancing.
func (lb *lbController) migrate(heavy, light *IndexNode) {
	s := lb.sys
	// Split point: the median entry key within the heavy node's range.
	pred, ok := heavy.node.Predecessor()
	if !ok {
		return
	}
	base := pred + 1
	split, okSplit := combinedMedian(heavy, base)
	if !okSplit {
		lb.Aborted++
		return
	}
	if split == heavy.ID() || s.net.Node(split) != nil {
		lb.Aborted++ // split point collides with an existing node
		return
	}
	heavy.migrating = true
	light.migrating = true
	lb.Migrations++

	// 1. The light node drains its regions and streams them in bulk to
	// its ring successor — the node that will own them once it leaves —
	// while it is still alive to drive the stream (chunk
	// acknowledgements return to it). Queries during the stream can
	// miss the in-flight entries: the paper's recall dip under load
	// balancing.
	type batch struct {
		keys    []lph.Key
		entries []Entry
	}
	oldID, host := light.ID(), light.node.Host()
	drainOrder := light.st.Indexes()
	drained := make(map[string]batch)
	for _, name := range drainOrder {
		keys, entries, err := light.st.Drain(name)
		s.noteStoreErr(err)
		drained[name] = batch{keys, entries}
	}
	succ, err := s.net.SuccessorID(oldID + 1)
	if err != nil || succ == oldID {
		// No successor to hand over to; unwind.
		for _, name := range drainOrder {
			b := drained[name]
			s.reinsert(name, b.keys, b.entries)
		}
		heavy.migrating = false
		light.migrating = false
		lb.Aborted++
		return
	}

	// 2. Once every stream has finished, the light node departs and
	// rejoins at the split point, and the heavy node streams its lower
	// half over to it.
	rejoin := func() {
		if err := s.net.RemoveNode(oldID); err != nil {
			heavy.migrating = false
			light.migrating = false
			return
		}
		s.ForgetNode(oldID)
		s.net.FixAround(oldID)
		if s.net.Node(split) != nil {
			// The split point was taken while the handoff streamed; the
			// light node's entries are safe at its successor, but the
			// rejoin cannot happen.
			heavy.migrating = false
			lb.Aborted++
			return
		}
		fresh, err := s.AddNode(split, host)
		if err != nil {
			heavy.migrating = false
			return
		}
		fresh.migrating = true
		s.net.FixAround(split)

		// 3. The heavy node ships its lower half to the fresh node as
		// bulk streams; both participants become eligible again once
		// the last stream completes.
		names := heavy.st.Indexes()
		pending := len(names) + 1
		settle := func() {
			pending--
			if pending == 0 {
				heavy.migrating = false
				fresh.migrating = false
			}
		}
		for _, name := range names {
			keys, entries, err := heavy.st.ExtractUpTo(name, base, split)
			s.noteStoreErr(err)
			s.streamRegion(heavy, fresh.ID(), name, keys, entries, settle)
		}
		settle()

		// The fresh node participates in probing from now on.
		offset := time.Duration(s.rt.Rand().Int63n(int64(lb.cfg.Period)))
		t := runtime.NewTicker(s.rt, offset, lb.cfg.Period, func() { lb.tick(fresh) })
		lb.tickers = append(lb.tickers, t)
	}

	pending := len(drainOrder) + 1
	handoff := func() {
		pending--
		if pending == 0 {
			rejoin()
		}
	}
	for _, name := range drainOrder {
		b := drained[name]
		s.streamRegion(light, succ, name, b.keys, b.entries, handoff)
	}
	handoff()
}

// combinedMedian computes a split key over all of a node's regions.
func combinedMedian(in *IndexNode, base lph.Key) (lph.Key, bool) {
	var merged []lph.Key
	for _, name := range in.st.Indexes() {
		in.st.View(name, func(keys []lph.Key, _ []Entry) {
			merged = append(merged, keys...)
		})
	}
	return medianOffsetKey(merged, base)
}

// JoinAtHotspot implements the first §3.4 migration mechanism: a
// joining node is steered to the most heavily loaded node, which
// splits its key range and hands over the lower half. It returns the
// new node.
func (s *System) JoinAtHotspot(host int) (*IndexNode, error) {
	var heavy *IndexNode
	for _, in := range s.Nodes() {
		if heavy == nil || in.Load() > heavy.Load() {
			heavy = in
		}
	}
	if heavy == nil {
		return nil, fmt.Errorf("core: empty system")
	}
	pred, ok := heavy.node.Predecessor()
	if !ok {
		return nil, fmt.Errorf("core: hotspot has no predecessor (unstabilized ring)")
	}
	base := pred + 1
	split, okSplit := combinedMedian(heavy, base)
	if !okSplit || s.net.Node(split) != nil {
		return nil, fmt.Errorf("core: hotspot load cannot be split")
	}
	fresh, err := s.AddNode(split, host)
	if err != nil {
		return nil, err
	}
	s.net.FixAround(split)
	for _, name := range heavy.st.Indexes() {
		keys, entries, err := heavy.st.ExtractUpTo(name, base, split)
		s.noteStoreErr(err)
		s.noteStoreErr(fresh.st.PutBatch(name, keys, entries))
		// The handover between ring neighbors is synchronous here, but
		// it is priced as the bulk stream it would be on a real wire.
		s.accountBulk(name, keys, entries)
	}
	return fresh, nil
}
