package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/metric"
)

// resultSet collects the returned object IDs for set comparison.
func resultSet(qr *QueryResult) map[ObjectID]bool {
	out := map[ObjectID]bool{}
	for _, res := range qr.Results {
		out[res.Obj] = true
	}
	return out
}

// With retries enabled, heavy injected loss must cost no recall: every
// subquery and result eventually gets through, and the recovery
// counters show the reliability layer did real work.
func TestRetriesRecoverFromLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chord.Faults = chord.NewFaultPlan().DropAll(0.15)
	cfg.Retry = RetryConfig{MaxRetries: 6}
	f := buildFixtureCfg(t, 32, 2000, 3, false, cfg)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		q := f.data[rng.Intn(len(f.data))].Clone()
		q[0] += rng.NormFloat64()
		q[1] += rng.NormFloat64()
		r := 2 + rng.Float64()*12
		want := f.bruteRange(q, r)
		got := resultSet(f.runRange(t, rng.Intn(32), q, r, QueryOpts{}))
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d (r=%v)", trial, len(got), len(want), r)
		}
		for obj := range want {
			if !got[obj] {
				t.Fatalf("trial %d: missing object %d", trial, obj)
			}
		}
	}
	if f.sys.RecoveredSubqueries == 0 {
		t.Fatal("15% loss produced zero recovered deliveries — retries never fired")
	}
	if f.sys.RetriesIssued < f.sys.RecoveredSubqueries {
		t.Fatalf("RetriesIssued %d < RecoveredSubqueries %d", f.sys.RetriesIssued, f.sys.RecoveredSubqueries)
	}
	if f.sys.DroppedSubqueries != 0 {
		t.Fatalf("%d subqueries dropped for good despite retries", f.sys.DroppedSubqueries)
	}
	if f.sys.cfg.Chord.Faults.TotalDropped() == 0 {
		t.Fatal("fault plan dropped nothing — test exercised no loss")
	}
}

// The fire-and-forget contrast: the same loss rate with retries
// disabled permanently drops subqueries (queries still terminate —
// the loss callback keeps the pending count finite).
func TestFireAndForgetDropsUnderLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chord.Faults = chord.NewFaultPlan().DropAll(0.15)
	f := buildFixtureCfg(t, 32, 2000, 3, false, cfg)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		q := f.data[rng.Intn(len(f.data))].Clone()
		q[0] += rng.NormFloat64()
		q[1] += rng.NormFloat64()
		r := 2 + rng.Float64()*12
		// Must terminate despite losses; results may be incomplete.
		f.runRange(t, rng.Intn(32), q, r, QueryOpts{})
	}
	if f.sys.DroppedSubqueries == 0 {
		t.Fatal("15% loss with no retries dropped zero subqueries")
	}
	if f.sys.RetriesIssued != 0 || f.sys.RecoveredSubqueries != 0 {
		t.Fatalf("retry counters moved (%d issued, %d recovered) with retries disabled",
			f.sys.RetriesIssued, f.sys.RecoveredSubqueries)
	}
}

// regionKey returns the ring position owning q's index entry.
func (f *fixture) regionKey(t *testing.T, q metric.Vector) lph.Key {
	t.Helper()
	ix, err := f.sys.lookupIndex("test-l2")
	if err != nil {
		t.Fatal(err)
	}
	return ix.Part.Ring(ix.Part.Hash(f.emb.Map(q)))
}

// liveSource picks a deterministic live query source.
func (f *fixture) liveSource() chord.ID {
	return f.sys.Nodes()[0].ID()
}

// Crashing the primary for a key must cost no recall when the index is
// replicated: CrashNode repairs the replica placement onto the new
// successor set, so the first replica answers in the primary's place.
// Repeatedly — each crash is followed by an automatic repair that
// restores the full replication factor.
func TestCrashPrimaryReplicaAnswers(t *testing.T) {
	f := buildFixture(t, 48, 3000, 3, false)
	if err := f.sys.ReplicateAll("test-l2", 3); err != nil {
		t.Fatal(err)
	}
	q := f.data[10]
	r := 6.0
	want := f.bruteRange(q, r)
	key := f.regionKey(t, q)

	check := func(round int) {
		var out *QueryResult
		err := f.sys.RangeQuery("test-l2", f.liveSource(), q, f.emb.Map(q), r, QueryOpts{}, func(qr *QueryResult) { out = qr })
		if err != nil {
			t.Fatal(err)
		}
		f.eng.Run()
		if out == nil {
			t.Fatalf("round %d: query did not complete", round)
		}
		got := resultSet(out)
		if len(got) != len(want) {
			t.Fatalf("round %d: got %d results, want %d", round, len(got), len(want))
		}
		for obj := range want {
			if !got[obj] {
				t.Fatalf("round %d: missing object %d", round, obj)
			}
		}
	}

	check(0)
	// Crash four successive primaries of the query's home region. With
	// automatic repair this can continue far past the replication
	// factor — each crash re-establishes 3 live copies.
	for round := 1; round <= 4; round++ {
		owner, err := f.sys.net.SuccessorNode(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.sys.CrashNode(owner.ID()); err != nil {
			t.Fatal(err)
		}
		check(round)
	}
}

// Loss, retries, replication, and mid-query primary crashes together:
// the subquery aimed at a dying primary times out, fails over to the
// repaired successor, and the query still returns exact results.
func TestRetryFailoverToReplicaUnderChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chord.Faults = chord.NewFaultPlan().DropAll(0.10)
	cfg.Retry = RetryConfig{MaxRetries: 5}
	f := buildFixtureCfg(t, 48, 3000, 3, false, cfg)
	if err := f.sys.ReplicateAll("test-l2", 3); err != nil {
		t.Fatal(err)
	}
	q := f.data[42]
	r := 8.0
	want := f.bruteRange(q, r)
	key := f.regionKey(t, q)

	for round := 0; round < 3; round++ {
		var out *QueryResult
		err := f.sys.RangeQuery("test-l2", f.liveSource(), q, f.emb.Map(q), r, QueryOpts{}, func(qr *QueryResult) { out = qr })
		if err != nil {
			t.Fatal(err)
		}
		// Kill the region's current primary while the query is in
		// flight; its repair runs synchronously at the crash instant.
		f.eng.Schedule(30*time.Millisecond, func() {
			owner, err := f.sys.net.SuccessorNode(key)
			if err != nil {
				return
			}
			if owner.ID() == f.liveSource() {
				return // keep the querier alive
			}
			_ = f.sys.CrashNode(owner.ID())
		})
		f.eng.Run()
		if out == nil {
			t.Fatalf("round %d: query did not complete", round)
		}
		got := resultSet(out)
		if len(got) != len(want) {
			t.Fatalf("round %d: got %d results, want %d", round, len(got), len(want))
		}
		for obj := range want {
			if !got[obj] {
				t.Fatalf("round %d: missing object %d", round, obj)
			}
		}
	}
	if f.sys.DroppedSubqueries != 0 {
		t.Fatalf("%d subqueries dropped for good despite retries + replication", f.sys.DroppedSubqueries)
	}
	if f.sys.RecoveredSubqueries == 0 {
		t.Fatal("no recovered deliveries under 10% loss + crashes")
	}
}

// ReplicateAll must be idempotent: a second invocation is a no-op —
// same entry placement, no additional transfer traffic.
func TestReplicateAllIdempotent(t *testing.T) {
	f := buildFixture(t, 32, 2000, 3, false)
	if err := f.sys.ReplicateAll("test-l2", 3); err != nil {
		t.Fatal(err)
	}
	entries := f.sys.TotalEntries()
	if entries != 3*2000 {
		t.Fatalf("entries after first ReplicateAll = %d, want %d", entries, 3*2000)
	}
	transfer := f.sys.Network().Traffic().Bytes[chord.KindTransfer]
	if transfer == 0 {
		t.Fatal("first ReplicateAll charged no transfer traffic")
	}
	if err := f.sys.ReplicateAll("test-l2", 3); err != nil {
		t.Fatal(err)
	}
	if got := f.sys.TotalEntries(); got != entries {
		t.Fatalf("second ReplicateAll changed entry count: %d -> %d", entries, got)
	}
	if got := f.sys.Network().Traffic().Bytes[chord.KindTransfer]; got != transfer {
		t.Fatalf("second ReplicateAll charged %d extra transfer bytes", got-transfer)
	}
}

// faultRun drives one full scenario — loss + jitter + spikes + retries
// + scheduled crashes — and returns a fingerprint of everything
// observable: per-query result sets, reliability counters, traffic,
// and the final simulated clock.
func faultRun(t *testing.T) string {
	t.Helper()
	cfg := DefaultConfig()
	// Each run needs its own FaultPlan: the plan carries mutable drop
	// counters.
	cfg.Chord.Faults = chord.NewFaultPlan().DropAll(0.10).Jitter(30*time.Millisecond).Spike(0.01, 300*time.Millisecond)
	cfg.Retry = RetryConfig{MaxRetries: 4}
	f := buildFixtureCfg(t, 32, 2000, 3, false, cfg)
	if err := f.sys.ReplicateAll("test-l2", 2); err != nil {
		t.Fatal(err)
	}

	var fp string
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		q := f.data[rng.Intn(len(f.data))].Clone()
		q[0] += rng.NormFloat64()
		r := 2 + rng.Float64()*10
		var out *QueryResult
		err := f.sys.RangeQuery("test-l2", f.liveSource(), q, f.emb.Map(q), r, QueryOpts{}, func(qr *QueryResult) { out = qr })
		if err != nil {
			t.Fatal(err)
		}
		if trial == 3 || trial == 7 {
			// Crash the 5th node in ring order mid-query — identical
			// victim selection in both runs.
			f.eng.Schedule(40*time.Millisecond, func() {
				nodes := f.sys.Nodes()
				victim := nodes[5]
				if victim.ID() == f.liveSource() {
					victim = nodes[6]
				}
				_ = f.sys.CrashNode(victim.ID())
			})
		}
		f.eng.Run()
		if out == nil {
			t.Fatalf("trial %d: query did not complete", trial)
		}
		objs := make([]int, 0, len(out.Results))
		for _, res := range out.Results {
			objs = append(objs, int(res.Obj))
		}
		sort.Ints(objs)
		fp += fmt.Sprintf("q%d:%v hops=%d retries=%d\n", trial, objs, out.Stats.Hops, out.Stats.Retries)
	}
	tr := f.sys.Network().Traffic()
	fp += fmt.Sprintf("dropped=%d retrans=%d recovered=%d faultdrops=%d traffic=%v now=%d\n",
		f.sys.DroppedSubqueries, f.sys.RetriesIssued, f.sys.RecoveredSubqueries,
		f.sys.cfg.Chord.Faults.TotalDropped(), tr, f.eng.Now())
	return fp
}

// Two runs with the same seed and an active fault plan must be
// byte-identical — the whole fault layer draws from the engine RNG.
func TestFaultInjectionDeterministic(t *testing.T) {
	a := faultRun(t)
	b := faultRun(t)
	if a != b {
		t.Fatalf("same-seed fault runs diverged:\n--- run A ---\n%s--- run B ---\n%s", a, b)
	}
}
