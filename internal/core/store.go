package core

import (
	"sort"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
)

// store holds one node's index entries for one index scheme. Entries
// are kept with their ring keys so load migration can split a node's
// range; the slice is unsorted between migrations (queries scan it
// linearly — per-node entry counts are small by design).
type store struct {
	keys    []lph.Key // ring (rotated) key of each entry
	entries []Entry
}

// add appends one entry.
func (s *store) add(ringKey lph.Key, e Entry) {
	s.keys = append(s.keys, ringKey)
	s.entries = append(s.entries, e)
}

// size returns the number of entries (the paper's load measure).
func (s *store) size() int { return len(s.entries) }

// scan returns the entries whose index points fall inside the region's
// cube.
func (s *store) scan(r query.Region) []Entry {
	return s.scanAppend(r, nil)
}

// scanAppend appends the matching entries to buf and returns it. Hot
// callers pass a reusable buffer (buf[:0]) so the warm query path does
// not allocate per scan; the result must be fully consumed before the
// buffer is reused.
func (s *store) scanAppend(r query.Region, buf []Entry) []Entry {
	for i := range s.entries {
		if r.Contains(s.entries[i].Point) {
			buf = append(buf, s.entries[i])
		}
	}
	return buf
}

// medianKey returns a ring key that splits the store roughly in half:
// entries with key <= medianKey form the lower half with respect to
// the owner's range (pred, me]. The boolean is false when the store
// cannot be split (fewer than 2 distinct keys).
//
// Ring keys within one node's range (pred, me] are ordered by their
// clockwise offset from pred+1, which the caller supplies as base.
func (s *store) medianKey(base lph.Key) (lph.Key, bool) {
	if len(s.keys) < 2 {
		return 0, false
	}
	offs := make([]uint64, len(s.keys))
	for i, k := range s.keys {
		offs[i] = k - base // clockwise offset, wraps correctly
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	mid := offs[len(offs)/2]
	if mid == offs[0] {
		// All of the lower half shares one key with the upper half's
		// start — find the largest strictly-smaller offset boundary.
		// If every entry has the same key the store is unsplittable
		// (the paper's §4.3 observation: "the load balancing mechanism
		// can not divide the index entries associated with a single
		// key").
		last := offs[len(offs)-1]
		if offs[0] == last {
			return 0, false
		}
		// Use the first offset strictly above the median value.
		for _, o := range offs {
			if o > mid {
				mid = o
				break
			}
		}
	}
	// The split node takes (pred, base+mid-1]; entries at base+mid stay.
	return base + mid - 1, true
}

// extractUpTo removes and returns all entries whose ring key lies in
// (base-1, split], i.e. the lower half of the owner's range after a
// split at `split`. base is pred+1 (the start of the owner's range).
func (s *store) extractUpTo(base, split lph.Key) ([]lph.Key, []Entry) {
	span := split - base // inclusive span length - 1
	var outK []lph.Key
	var outE []Entry
	keepK := s.keys[:0]
	keepE := s.entries[:0]
	for i, k := range s.keys {
		if k-base <= span {
			outK = append(outK, k)
			outE = append(outE, s.entries[i])
		} else {
			keepK = append(keepK, k)
			keepE = append(keepE, s.entries[i])
		}
	}
	s.keys = keepK
	s.entries = keepE
	return outK, outE
}

// drain removes and returns everything.
func (s *store) drain() ([]lph.Key, []Entry) {
	k, e := s.keys, s.entries
	s.keys, s.entries = nil, nil
	return k, e
}

// addAll inserts a batch.
func (s *store) addAll(keys []lph.Key, entries []Entry) {
	s.keys = append(s.keys, keys...)
	s.entries = append(s.entries, entries...)
}

// sortedStoreNames returns a node's index-scheme names in sorted order,
// the deterministic way to iterate a stores map: transfer and migration
// batches must leave in the same order on every run of a seed.
func sortedStoreNames(stores map[string]*store) []string {
	names := make([]string, 0, len(stores))
	for name := range stores {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
