package core

import (
	"sort"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
)

// Store is a node's local storage backend: every index entry the node
// is responsible for, per index scheme, keyed by ring key. The system
// talks only to this interface, so the backend is pluggable — the
// in-memory memstore (NewMemStore, the default, what the paper's
// simulations assume) or the durable walstore (NewWALStore), which
// journals every mutation to a write-ahead log and recovers the
// region after a process restart.
//
// Stores are NOT concurrency-safe: like the rest of the protocol
// state, a store belongs to a single executor (the protocol executor,
// or the node's shard executor under runtime.Sharder) and is only
// touched from it.
//
// Mutating methods return an error so a durable backend can surface a
// failed journal write; memstore never fails. On error the in-memory
// state still reflects the mutation (reads stay coherent within the
// process), but durability of that mutation is not guaranteed — the
// system counts these in System.StoreErrors rather than silently
// dropping them.
type Store interface {
	// Put appends one entry under an index scheme.
	Put(index string, key lph.Key, e Entry) error
	// PutBatch appends a batch (bulk load, migration arrivals).
	PutBatch(index string, keys []lph.Key, entries []Entry) error
	// Delete removes the first entry matching (key, obj), reporting
	// whether one existed.
	Delete(index string, key lph.Key, obj ObjectID) (bool, error)

	// Scan appends the entries of one index whose points fall inside
	// the region's cube to buf and returns it. Hot callers pass a
	// reusable buffer (buf[:0]) — the scan must not allocate when the
	// buffer has capacity, and the result must be fully consumed
	// before the buffer is reused.
	Scan(index string, r query.Region, buf []Entry) []Entry
	// Size returns one index's entry count; TotalSize sums all indexes
	// (the paper's load measure).
	Size(index string) int
	TotalSize() int
	// Indexes returns the index schemes present, sorted — the
	// deterministic iteration order for migration and repair.
	Indexes() []string
	// View passes the index's backing slices to fn for read-only
	// inspection without copying. The slices are borrowed: fn must not
	// retain or mutate them.
	View(index string, fn func(keys []lph.Key, entries []Entry))

	// RegionSnapshot copies out one index's full contents — the unit of
	// bulk region transfer and of crash-time republication.
	RegionSnapshot(index string) ([]lph.Key, []Entry)
	// ApplyRegion replaces one index's contents wholesale (the receive
	// side of bulk transfer and replica repair). Empty input clears the
	// index.
	ApplyRegion(index string, keys []lph.Key, entries []Entry) error

	// ExtractUpTo removes and returns the entries whose ring key lies
	// in (base-1, split] — the lower half of the owner's range after a
	// load split. Drain removes and returns everything in one index.
	ExtractUpTo(index string, base, split lph.Key) ([]lph.Key, []Entry, error)
	Drain(index string) ([]lph.Key, []Entry, error)
	// DropIndex discards one index entirely (scheme undeployment).
	DropIndex(index string) error

	// Close releases backend resources (flushes and closes a WAL). The
	// store must not be used afterwards.
	Close() error
}

// StoreFactory builds the storage backend for one node. Config.Store
// installs one system-wide; nil means NewMemStore per node.
type StoreFactory func(node uint64) (Store, error)

// RecoveryStats describes what a durable store found on open and how
// its journal has evolved since — surfaced through Platform stats.
type RecoveryStats struct {
	// RecordsReplayed is the number of WAL records replayed on open.
	RecordsReplayed int
	// SnapshotRecords is the number of entries recovered from the last
	// compacted snapshot.
	SnapshotRecords int
	// SnapshotStamp is the clock reading passed to the last
	// compaction (zero if never compacted) — its age is the caller's
	// clock minus this.
	SnapshotStamp int64
	// Compactions counts snapshot compactions performed in-process.
	Compactions int
	// LogBytes is the journal's current size.
	LogBytes int64
}

// Recoverable is implemented by durable stores that can report
// recovery statistics (walstore). Memstore does not implement it.
type Recoverable interface {
	Recovery() RecoveryStats
}

// medianOffsetKey returns a ring key that splits the given keys
// roughly in half: entries with key <= result form the lower half with
// respect to the owner's range (pred, me]. The boolean is false when
// the set cannot be split (fewer than 2 distinct keys).
//
// Ring keys within one node's range (pred, me] are ordered by their
// clockwise offset from pred+1, which the caller supplies as base.
func medianOffsetKey(keys []lph.Key, base lph.Key) (lph.Key, bool) {
	if len(keys) < 2 {
		return 0, false
	}
	offs := make([]uint64, len(keys))
	for i, k := range keys {
		offs[i] = k - base // clockwise offset, wraps correctly
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	mid := offs[len(offs)/2]
	if mid == offs[0] {
		// All of the lower half shares one key with the upper half's
		// start — find the largest strictly-smaller offset boundary.
		// If every entry has the same key the store is unsplittable
		// (the paper's §4.3 observation: "the load balancing mechanism
		// can not divide the index entries associated with a single
		// key").
		last := offs[len(offs)-1]
		if offs[0] == last {
			return 0, false
		}
		// Use the first offset strictly above the median value.
		for _, o := range offs {
			if o > mid {
				mid = o
				break
			}
		}
	}
	// The split node takes (pred, base+mid-1]; entries at base+mid stay.
	return base + mid - 1, true
}
