package core

import (
	"testing"
)

// TestAdmissionControl checks the MaxActiveQueries gate: when the cap
// is reached, new queries are refused immediately as honest incompletes
// — Complete=false with the whole query region reported uncovered,
// never a silently empty "success" — and every rejection is accounted
// in AdmissionRejected. Admitted queries keep their exact-result
// contract, and finished queries free their slots.
func TestAdmissionControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxActiveQueries = 2
	f := buildFixtureCfg(t, 24, 800, 3, false, cfg)

	// Issue six queries back-to-back without letting the engine run:
	// two admit, four must be turned away at the door.
	const issued = 6
	queries := make([]int, issued)
	results := make([]*QueryResult, issued)
	for i := 0; i < issued; i++ {
		qi := (i*131 + 7) % len(f.data)
		queries[i] = qi
		q := f.data[qi]
		i := i
		err := f.sys.RangeQuery("test-l2", f.ids[i%len(f.ids)], q, f.emb.Map(q), 8,
			QueryOpts{}, func(qr *QueryResult) { results[i] = qr })
		if err != nil {
			t.Fatal(err)
		}
	}
	f.eng.Run()

	admitted, rejected := 0, 0
	for i, qr := range results {
		if qr == nil {
			t.Fatalf("query %d never completed", i)
		}
		if qr.Complete {
			admitted++
			// Admitted queries stay exact under overload: equal recall,
			// just fewer admitted.
			want := f.bruteRange(f.data[queries[i]], 8)
			if len(qr.Results) != len(want) {
				t.Fatalf("admitted query %d returned %d results, brute force says %d",
					i, len(qr.Results), len(want))
			}
			for _, res := range qr.Results {
				if !want[res.Obj] {
					t.Fatalf("admitted query %d returned spurious object %d", i, res.Obj)
				}
			}
			continue
		}
		// A rejection must be honest: the whole region uncovered, no
		// partial results pretending to be an answer.
		rejected++
		if len(qr.Uncovered) == 0 {
			t.Fatalf("rejected query %d reports no uncovered region", i)
		}
		if len(qr.Results) != 0 {
			t.Fatalf("rejected query %d carries %d results", i, len(qr.Results))
		}
	}
	if admitted != cfg.MaxActiveQueries {
		t.Fatalf("admitted %d queries, cap is %d", admitted, cfg.MaxActiveQueries)
	}
	if wantRej := issued - cfg.MaxActiveQueries; rejected != wantRej {
		t.Fatalf("rejected %d queries, want %d", rejected, wantRej)
	}
	if f.sys.AdmissionRejected != rejected {
		t.Fatalf("AdmissionRejected=%d, but %d queries were rejected", f.sys.AdmissionRejected, rejected)
	}
	if f.sys.active != 0 {
		t.Fatalf("%d active-query slots leaked after all queries finished", f.sys.active)
	}

	// With the overload drained, the next query admits again.
	qr := f.runRange(t, 0, f.data[42], 8, QueryOpts{})
	if !qr.Complete {
		t.Fatal("post-overload query was rejected with free slots")
	}
	if f.sys.AdmissionRejected != rejected {
		t.Fatal("post-overload admission bumped the rejection counter")
	}
}

// TestAdmissionDisabledByDefault checks the zero value keeps the old
// behavior: no cap, nothing rejected.
func TestAdmissionDisabledByDefault(t *testing.T) {
	f := buildFixture(t, 16, 400, 3, false)
	for i := 0; i < 8; i++ {
		q := f.data[i*17]
		if err := f.sys.RangeQuery("test-l2", f.ids[i%len(f.ids)], q, f.emb.Map(q), 6,
			QueryOpts{}, func(qr *QueryResult) {
				if !qr.Complete {
					t.Errorf("uncapped query %d incomplete", i)
				}
			}); err != nil {
			t.Fatal(err)
		}
	}
	f.eng.Run()
	if f.sys.AdmissionRejected != 0 {
		t.Fatalf("uncapped system rejected %d queries", f.sys.AdmissionRejected)
	}
}
