package core

import (
	"fmt"
	"io"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/sim"
)

// TraceAction classifies one step of a query's distributed execution.
type TraceAction string

const (
	// TraceRoute is a QueryRouting step (Algorithm 3) at a node.
	TraceRoute TraceAction = "route"
	// TraceForward is a query message leaving for another node.
	TraceForward TraceAction = "forward"
	// TraceRefine is a SurrogateRefine step (Algorithm 5).
	TraceRefine TraceAction = "refine"
	// TraceAnswer is a local answer with candidate counts.
	TraceAnswer TraceAction = "answer"
	// TraceDrop is a subquery lost to churn or the hop guard.
	TraceDrop TraceAction = "drop"
	// TraceRetry is a retransmission by the reliable-delivery layer
	// after an acknowledgement timeout.
	TraceRetry TraceAction = "retry"
	// TraceHedge is a hedged duplicate of a still-outstanding subquery
	// shipped to the region owner's replica after the hedge delay.
	TraceHedge TraceAction = "hedge"
	// TraceDeadline is a query expiring at its deadline with work
	// outstanding; the unanswered regions become QueryResult.Uncovered.
	TraceDeadline TraceAction = "deadline"
)

// TraceEvent is one step in a query's execution tree. The sequence of
// events reconstructs how the query was split and refined across the
// embedded DHT trees — the paper's Figure 1 in executable form.
type TraceEvent struct {
	At     sim.Time
	Node   chord.ID
	Action TraceAction
	PreKey lph.Key
	PreLen int
	Hops   int
	// Dest is the destination node for forward events.
	Dest chord.ID
	// Candidates / Returned are set on answer events.
	Candidates int
	Returned   int
}

// String renders one event compactly.
func (e TraceEvent) String() string {
	switch e.Action {
	case TraceForward, TraceHedge:
		return fmt.Sprintf("%9v hop%-2d %-7s node %016x -> %016x prefix %016x/%d",
			e.At, e.Hops, e.Action, e.Node, e.Dest, e.PreKey, e.PreLen)
	case TraceAnswer:
		return fmt.Sprintf("%9v hop%-2d %-7s node %016x prefix %016x/%d candidates=%d returned=%d",
			e.At, e.Hops, e.Action, e.Node, e.PreKey, e.PreLen, e.Candidates, e.Returned)
	default:
		return fmt.Sprintf("%9v hop%-2d %-7s node %016x prefix %016x/%d",
			e.At, e.Hops, e.Action, e.Node, e.PreKey, e.PreLen)
	}
}

// Trace is a query's full execution record.
type Trace struct {
	Events []TraceEvent
}

// add appends an event (nil-safe: tracing off).
func (t *Trace) add(e TraceEvent) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, e)
}

// Write dumps the trace, one event per line.
func (t *Trace) Write(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Nodes returns the distinct nodes the query touched, in first-touch
// order.
func (t *Trace) Nodes() []chord.ID {
	if t == nil {
		return nil
	}
	seen := map[chord.ID]bool{}
	var out []chord.ID
	for _, e := range t.Events {
		if !seen[e.Node] {
			seen[e.Node] = true
			out = append(out, e.Node)
		}
	}
	return out
}

// Count returns the number of events with the given action.
func (t *Trace) Count(action TraceAction) int {
	if t == nil {
		return 0
	}
	n := 0
	for _, e := range t.Events {
		if e.Action == action {
			n++
		}
	}
	return n
}

// MaxDepth returns the deepest prefix the query was refined to.
func (t *Trace) MaxDepth() int {
	if t == nil {
		return 0
	}
	d := 0
	for _, e := range t.Events {
		if e.PreLen > d {
			d = e.PreLen
		}
	}
	return d
}
