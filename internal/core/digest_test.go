package core

import (
	"testing"

	"landmarkdht/internal/lph"
)

func digestFixture(n int) ([]lph.Key, []Entry) {
	keys := make([]lph.Key, n)
	entries := make([]Entry, n)
	for i := range entries {
		keys[i] = lph.Key(uint64(i)*0x9E3779B97F4A7C15 + 1)
		entries[i] = Entry{Obj: ObjectID(i), Point: []float64{float64(i), 1.5 * float64(i)}}
	}
	return keys, entries
}

func TestRegionDigestOrderIndependent(t *testing.T) {
	keys, entries := digestFixture(200)
	want := RegionDigest(keys, entries)
	// Reverse the region: same set, same digest.
	rk := make([]lph.Key, len(keys))
	re := make([]Entry, len(entries))
	for i := range keys {
		rk[len(keys)-1-i] = keys[i]
		re[len(keys)-1-i] = entries[i]
	}
	if got := RegionDigest(rk, re); got != want {
		t.Fatalf("reversed region digests to %x, want %x", got, want)
	}
	if RegionDigest(nil, nil) != 0 {
		t.Fatal("empty region must digest to zero")
	}
}

func TestRegionDigestIncremental(t *testing.T) {
	keys, entries := digestFixture(100)
	full := RegionDigest(keys, entries)
	// Removing one entry is one XOR; adding it back restores the digest.
	without := full ^ EntryDigest(keys[17], entries[17], nil)
	if got := RegionDigest(append(append([]lph.Key(nil), keys[:17]...), keys[18:]...),
		append(append([]Entry(nil), entries[:17]...), entries[18:]...)); got != without {
		t.Fatalf("incremental removal: %x, recomputed %x", without, got)
	}
	if without^EntryDigest(keys[17], entries[17], nil) != full {
		t.Fatal("re-adding the entry does not restore the digest")
	}
}

func TestEntryDigestSensitivity(t *testing.T) {
	base := Entry{Obj: 7, Point: []float64{0.25, 0.5}}
	d := EntryDigest(42, base, []byte("obj"))
	// Every field must matter.
	if EntryDigest(43, base, []byte("obj")) == d {
		t.Fatal("key change not reflected")
	}
	if EntryDigest(42, Entry{Obj: 8, Point: base.Point}, []byte("obj")) == d {
		t.Fatal("object id change not reflected")
	}
	if EntryDigest(42, Entry{Obj: 7, Point: []float64{0.25, 0.5000000001}}, []byte("obj")) == d {
		t.Fatal("point change not reflected")
	}
	if EntryDigest(42, base, []byte("obk")) == d {
		t.Fatal("object bytes change not reflected")
	}
}

func TestStoreDigestMatchesRegionDigest(t *testing.T) {
	keys, entries := digestFixture(50)
	s := NewMemStore()
	if err := s.PutBatch("ix", keys, entries); err != nil {
		t.Fatal(err)
	}
	n, d := StoreDigest(s, "ix")
	if n != 50 {
		t.Fatalf("store digest counts %d entries, want 50", n)
	}
	if want := RegionDigest(keys, entries); d != want {
		t.Fatalf("store digest %x, want %x", d, want)
	}
	// A divergent copy (one entry dropped) must disagree.
	s2 := NewMemStore()
	if err := s2.PutBatch("ix", keys[1:], entries[1:]); err != nil {
		t.Fatal(err)
	}
	if _, d2 := StoreDigest(s2, "ix"); d2 == d {
		t.Fatal("divergent stores share a digest")
	}
}
