package core

import (
	"math/rand"
	"testing"
)

func TestReplicateAllPlacesCopies(t *testing.T) {
	f := buildFixture(t, 32, 2000, 3, false)
	if err := f.sys.ReplicateAll("test-l2", 3); err != nil {
		t.Fatal(err)
	}
	// Total entries tripled (primary + 2 replicas).
	if got := f.sys.TotalEntries(); got != 3*2000 {
		t.Fatalf("entries = %d, want %d", got, 3*2000)
	}
	// Each node's replica copies live on successors of the key's
	// owner: every stored key is owned by this node or by one of its
	// at-most-2 predecessors-by-ownership.
	for _, in := range f.sys.Nodes() {
		for _, name := range in.st.Indexes() {
			keys, _ := in.st.RegionSnapshot(name)
			for _, key := range keys {
				if in.node.OwnsKey(key) {
					continue
				}
				owner, err := f.sys.net.SuccessorNode(key)
				if err != nil {
					t.Fatal(err)
				}
				// This node must appear among the owner's first
				// successors.
				found := false
				for i, succ := range f.sys.nodes[owner.ID()].node.SuccessorList() {
					if i >= 2 {
						break
					}
					if succ == in.ID() {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("replica of key %#x on %#x, not a near successor of owner %#x",
						key, in.ID(), owner.ID())
				}
			}
		}
	}
}

func TestReplicationValidation(t *testing.T) {
	f := buildFixture(t, 16, 200, 2, false)
	if err := f.sys.ReplicateAll("nope", 2); err == nil {
		t.Fatal("expected unknown-index error")
	}
	if err := f.sys.ReplicateAll("test-l2", 1); err == nil {
		t.Fatal("expected replica-count error")
	}
	if err := f.sys.ReplicateAll("test-l2", 99); err == nil {
		t.Fatal("expected successor-list error")
	}
}

func TestReplicationExcludesLoadBalancing(t *testing.T) {
	f := buildFixture(t, 16, 500, 2, false)
	if err := f.sys.ReplicateAll("test-l2", 2); err != nil {
		t.Fatal(err)
	}
	if err := f.sys.EnableLoadBalancing(DefaultLBConfig()); err == nil {
		t.Fatal("expected LB-vs-replication guard")
	}
	// And the other order.
	f2 := buildFixture(t, 16, 500, 2, false)
	if err := f2.sys.EnableLoadBalancing(DefaultLBConfig()); err != nil {
		t.Fatal(err)
	}
	if err := f2.sys.ReplicateAll("test-l2", 2); err == nil {
		t.Fatal("expected replication-vs-LB guard")
	}
}

// The headline property: with replication, crashing nodes costs no
// recall — the first replica is the new successor and answers in the
// primary's place, with NO republication.
func TestReplicationSurvivesCrashes(t *testing.T) {
	f := buildFixture(t, 48, 3000, 3, false)
	if err := f.sys.ReplicateAll("test-l2", 3); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	// Crash 6 random nodes (fewer than the replica chain can absorb
	// for most keys).
	for i := 0; i < 6; i++ {
		nodes := f.sys.Nodes()
		victim := nodes[rng.Intn(len(nodes))]
		if err := f.sys.net.CrashNode(victim.ID()); err != nil {
			t.Fatal(err)
		}
		f.sys.ForgetNode(victim.ID())
		f.sys.net.FixAround(victim.ID())
	}
	// Exact range queries must still be exact — no recovery step ran.
	misses := 0
	for trial := 0; trial < 15; trial++ {
		q := f.data[rng.Intn(len(f.data))]
		r := 4 + rng.Float64()*8
		want := f.bruteRange(q, r)
		nodes := f.sys.Nodes()
		src := nodes[rng.Intn(len(nodes))].ID()
		var out *QueryResult
		if err := f.sys.RangeQuery("test-l2", src, q, f.emb.Map(q), r, QueryOpts{}, func(qr *QueryResult) { out = qr }); err != nil {
			t.Fatal(err)
		}
		f.eng.Run()
		if out == nil {
			t.Fatal("query did not complete")
		}
		got := map[ObjectID]bool{}
		for _, res := range out.Results {
			got[res.Obj] = true
		}
		for obj := range want {
			if !got[obj] {
				misses++
			}
		}
		for obj := range got {
			if !want[obj] {
				t.Fatalf("false positive %d", obj)
			}
		}
	}
	if misses > 0 {
		t.Fatalf("%d objects missed despite 3-way replication", misses)
	}
}

// Without replication the same crash schedule loses entries — the
// contrast that motivates replication.
func TestNoReplicationLosesEntriesOnCrash(t *testing.T) {
	f := buildFixture(t, 48, 3000, 3, false)
	rng := rand.New(rand.NewSource(19))
	lost := 0
	for i := 0; i < 6; i++ {
		nodes := f.sys.Nodes()
		victim := nodes[rng.Intn(len(nodes))]
		lost += victim.Load()
		if err := f.sys.net.CrashNode(victim.ID()); err != nil {
			t.Fatal(err)
		}
		f.sys.ForgetNode(victim.ID())
		f.sys.net.FixAround(victim.ID())
	}
	if lost == 0 {
		t.Skip("crash schedule hit empty nodes")
	}
	if got := f.sys.TotalEntries(); got != 3000-lost {
		t.Fatalf("entries = %d, want %d", got, 3000-lost)
	}
}
