package core

import (
	"testing"
	"time"
)

// probeNeighbors must respect the probing level: level 1 sees only the
// node's own routing table, higher levels see neighbors-of-neighbors.
func TestProbeLevelsWiden(t *testing.T) {
	f := buildFixture(t, 64, 1000, 2, false)
	lb1 := &lbController{sys: f.sys, cfg: LBConfig{ProbeLevel: 1, ProbeBytes: 16}}
	lb2 := &lbController{sys: f.sys, cfg: LBConfig{ProbeLevel: 2, ProbeBytes: 16}}
	lb4 := &lbController{sys: f.sys, cfg: LBConfig{ProbeLevel: 4, ProbeBytes: 16}}
	in := f.sys.Nodes()[0]
	n1 := len(lb1.probeNeighbors(in))
	n2 := len(lb2.probeNeighbors(in))
	n4 := len(lb4.probeNeighbors(in))
	if n1 == 0 {
		t.Fatal("level-1 probe found nothing")
	}
	if n2 < n1 || n4 < n2 {
		t.Fatalf("probe sets shrank with level: %d, %d, %d", n1, n2, n4)
	}
	// Level 4 over a 64-node network reaches essentially everyone.
	if n4 < 40 {
		t.Fatalf("level-4 probe saw only %d of 63 neighbors", n4)
	}
	// The probing node never appears in its own probe set.
	for id := range lb4.probeNeighbors(in) {
		if id == in.ID() {
			t.Fatal("self in probe set")
		}
	}
}

// Probing must charge maintenance traffic (the paper piggybacks load
// info on maintenance messages; the cost still exists).
func TestProbeChargesTraffic(t *testing.T) {
	f := buildFixture(t, 32, 500, 2, false)
	before := f.sys.net.Traffic()
	lb := &lbController{sys: f.sys, cfg: LBConfig{ProbeLevel: 2, ProbeBytes: 16}}
	lb.probeNeighbors(f.sys.Nodes()[0])
	after := f.sys.net.Traffic()
	if after.Bytes[0] <= before.Bytes[0] { // KindMaintenance == 0
		t.Fatal("probe did not charge maintenance traffic")
	}
}

// A perfectly balanced system must not migrate.
func TestNoMigrationWhenBalanced(t *testing.T) {
	f := buildFixture(t, 16, 100, 2, false)
	// Rebuild stores so every node holds exactly the same count.
	for _, in := range f.sys.Nodes() {
		in.st = NewMemStore()
	}
	for i, in := range f.sys.Nodes() {
		pred, _ := in.node.Predecessor()
		for j := 0; j < 10; j++ {
			if err := in.st.Put("test-l2", pred+1+uint64(j), Entry{Obj: ObjectID(i*10 + j), Point: []float64{0, 0}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.sys.EnableLoadBalancing(LBConfig{Delta: 0.1, ProbeLevel: 4, Period: time.Second}); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + time.Minute)
	m, _ := f.sys.LBStats()
	f.sys.DisableLoadBalancing()
	if m != 0 {
		t.Fatalf("%d migrations on a perfectly balanced system", m)
	}
	if f.sys.net.Size() != 16 {
		t.Fatalf("network size changed: %d", f.sys.net.Size())
	}
}

// The migration threshold honors δ: with a huge δ nothing migrates
// even on skewed data.
func TestHugeDeltaSuppressesMigration(t *testing.T) {
	f := buildFixture(t, 24, 2000, 2, false)
	if err := f.sys.EnableLoadBalancing(LBConfig{Delta: 1e9, ProbeLevel: 4, Period: time.Second}); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 30*time.Second)
	m, _ := f.sys.LBStats()
	f.sys.DisableLoadBalancing()
	if m != 0 {
		t.Fatalf("%d migrations despite δ=1e9", m)
	}
}

// MinLoad suppresses migrations from nearly empty nodes.
func TestMinLoadSuppressesTinyMigrations(t *testing.T) {
	f := buildFixture(t, 24, 100, 2, false) // ~4 entries per node
	if err := f.sys.EnableLoadBalancing(LBConfig{Delta: 0, ProbeLevel: 4, Period: time.Second, MinLoad: 1000}); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 30*time.Second)
	m, _ := f.sys.LBStats()
	f.sys.DisableLoadBalancing()
	if m != 0 {
		t.Fatalf("%d migrations despite MinLoad=1000", m)
	}
}

// Migration counters distinguish completed from aborted (single-key)
// migrations.
func TestSingleKeyMigrationAborts(t *testing.T) {
	f := buildFixture(t, 16, 100, 2, false)
	// Pile a single-key hotspot onto one node.
	in := f.sys.Nodes()[3]
	key := in.ID() // a key this node owns
	for j := 0; j < 5000; j++ {
		if err := in.st.Put("test-l2", key, Entry{Obj: ObjectID(100000 + j), Point: []float64{0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.sys.EnableLoadBalancing(LBConfig{Delta: 0, ProbeLevel: 4, Period: time.Second}); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 30*time.Second)
	_, aborted := f.sys.LBStats()
	f.sys.DisableLoadBalancing()
	if aborted == 0 {
		t.Fatal("single-key hotspot never aborted a migration (§4.3 behavior missing)")
	}
	// The hotspot is still there — it cannot be split.
	if in.Load() < 5000 {
		t.Fatalf("single-key hotspot was split: load = %d", in.Load())
	}
}

// JoinAtHotspot must refuse to split an unsplittable (single-key)
// hotspot instead of creating a useless node.
func TestJoinAtHotspotUnsplittable(t *testing.T) {
	f := buildFixture(t, 8, 10, 2, false)
	// Wipe all stores, leave one single-key pile.
	for _, in := range f.sys.Nodes() {
		in.st = NewMemStore()
	}
	in := f.sys.Nodes()[0]
	for j := 0; j < 100; j++ {
		if err := in.st.Put("test-l2", in.ID(), Entry{Obj: ObjectID(j), Point: []float64{0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.sys.JoinAtHotspot(0); err == nil {
		t.Fatal("expected unsplittable-hotspot error")
	}
}
