package core

import (
	"math/rand"
	"testing"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
)

// BenchmarkRegionTransfer10k streams a 10k-object region between two
// nodes and reports the measured bulk cost against the point-wise
// counterfactual (the numbers behind EXPERIMENTS.md's durability
// section). Gated in the JSON baseline like the other benchmarks.
func BenchmarkRegionTransfer10k(b *testing.B) {
	eng := sim.NewEngine(1)
	model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{N: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(eng, model, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	used := map[chord.ID]bool{}
	var ids []chord.ID
	for i := 0; i < 8; i++ {
		id := chord.ID(rng.Uint64())
		for used[id] {
			id = chord.ID(rng.Uint64())
		}
		used[id] = true
		if _, err := sys.AddNode(id, i); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	sys.Stabilize()
	nodes := sys.Nodes()
	src, dst := nodes[0], nodes[1]
	pred, ok := dst.node.Predecessor()
	if !ok {
		b.Fatal("unstabilized ring")
	}
	const n = 10000
	keys, entries := xferEntries(pred, n)

	before := sys.TransferStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.streamRegion(src, dst.ID(), "bench-region", keys, entries, nil)
		eng.Run()
		if err := dst.st.DropIndex("bench-region"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ts := sys.TransferStats()
	iters := float64(b.N)
	bulkMsgs := float64(ts.BulkMessages-before.BulkMessages) / iters
	bulkBytes := float64(ts.BulkBytes-before.BulkBytes) / iters
	pwMsgs := float64(ts.PointwiseMessages-before.PointwiseMessages) / iters
	pwBytes := float64(ts.PointwiseBytes-before.PointwiseBytes) / iters
	b.ReportMetric(bulkMsgs, "bulk-msgs")
	b.ReportMetric(bulkBytes, "bulk-bytes")
	b.ReportMetric(pwMsgs, "pointwise-msgs")
	b.ReportMetric(pwBytes, "pointwise-bytes")
	if pwBytes > 0 {
		b.ReportMetric(1-bulkBytes/pwBytes, "bytes-saved-frac")
	}
}
