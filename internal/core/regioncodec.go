package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"landmarkdht/internal/lph"
)

// Region codec: the serialized form of index entries, shared by bulk
// region transfer (wire.RegionChunk payloads) and the durable store's
// journal records. One entry encodes as
//
//	[8B ring key | 4B object id | 2B point length | 8B per component]
//
// all big-endian. Index points are the landmark embedding's exact
// float64 coordinates — unlike query cubes, they are not quantized:
// an entry's point is the stored ground truth a future scan filters
// against, so a transfer must reproduce it bit-for-bit.

// entryHeaderBytes is the fixed per-entry overhead: key + obj + len.
const entryHeaderBytes = 8 + 4 + 2

// maxPointDims bounds a decoded point's dimensionality (embedding
// dimensionality is small — a handful of landmarks).
const maxPointDims = 1 << 12

// EncodedEntrySize returns the serialized size of one entry.
func EncodedEntrySize(e Entry) int {
	return entryHeaderBytes + 8*len(e.Point)
}

// EncodedRegionSize returns the serialized size of a whole region.
func EncodedRegionSize(entries []Entry) int {
	total := 0
	for i := range entries {
		total += EncodedEntrySize(entries[i])
	}
	return total
}

// AppendEntry appends one serialized entry to dst.
func AppendEntry(dst []byte, key lph.Key, e Entry) []byte {
	var hdr [entryHeaderBytes]byte
	binary.BigEndian.PutUint64(hdr[0:8], key)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(e.Obj))
	binary.BigEndian.PutUint16(hdr[12:14], uint16(len(e.Point)))
	dst = append(dst, hdr[:]...)
	for _, c := range e.Point {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(c))
		dst = append(dst, b[:]...)
	}
	return dst
}

// AppendRegion appends a serialized batch of entries to dst.
func AppendRegion(dst []byte, keys []lph.Key, entries []Entry) []byte {
	for i := range entries {
		dst = AppendEntry(dst, keys[i], entries[i])
	}
	return dst
}

// DecodeEntry parses one entry from the front of data, returning the
// remaining bytes. The decoded point is freshly allocated.
func DecodeEntry(data []byte) (key lph.Key, e Entry, rest []byte, err error) {
	if len(data) < entryHeaderBytes {
		return 0, Entry{}, nil, fmt.Errorf("core: truncated region entry (%d bytes)", len(data))
	}
	key = binary.BigEndian.Uint64(data[0:8])
	e.Obj = ObjectID(int32(binary.BigEndian.Uint32(data[8:12])))
	k := int(binary.BigEndian.Uint16(data[12:14]))
	if k > maxPointDims {
		return 0, Entry{}, nil, fmt.Errorf("core: region entry declares %d dimensions", k)
	}
	data = data[entryHeaderBytes:]
	if len(data) < 8*k {
		return 0, Entry{}, nil, fmt.Errorf("core: truncated region entry point (%d of %d bytes)", len(data), 8*k)
	}
	if k > 0 {
		e.Point = make([]float64, k)
		for i := range e.Point {
			e.Point[i] = math.Float64frombits(binary.BigEndian.Uint64(data[8*i : 8*i+8]))
		}
	}
	return key, e, data[8*k:], nil
}

// DecodeRegion parses a serialized batch back into parallel key/entry
// slices, appending to the given buffers (pass nil to allocate).
func DecodeRegion(data []byte, keys []lph.Key, entries []Entry) ([]lph.Key, []Entry, error) {
	for len(data) > 0 {
		key, e, rest, err := DecodeEntry(data)
		if err != nil {
			return keys, entries, err
		}
		keys = append(keys, key)
		entries = append(entries, e)
		data = rest
	}
	return keys, entries, nil
}
