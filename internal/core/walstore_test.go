package core

import (
	"testing"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
	"landmarkdht/internal/wal"
)

func openTestWALStore(t *testing.T, dir string, compactEvery int) *WALStore {
	t.Helper()
	st, err := NewWALStore(WALStoreOptions{Dir: dir, Sync: wal.SyncNever, CompactEvery: compactEvery})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// A restarted store must serve exactly what was written before the
// restart — the whole point of the WAL.
func TestWALStoreRecoversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st := openTestWALStore(t, dir, -1)
	for i := 0; i < 100; i++ {
		if err := st.Put("idx-a", uint64(1000+i), Entry{Obj: ObjectID(i), Point: []float64{float64(i), -1.5}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put("idx-b", 7, Entry{Obj: 900, Point: []float64{0.25}}); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Delete("idx-a", 1001, 1); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestWALStore(t, dir, -1)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := st2.Size("idx-a"); got != 99 {
		t.Fatalf("idx-a recovered %d entries, want 99", got)
	}
	if got := st2.Size("idx-b"); got != 1 {
		t.Fatalf("idx-b recovered %d entries, want 1", got)
	}
	keys, entries := st2.RegionSnapshot("idx-a")
	for i, k := range keys {
		if k == 1001 {
			t.Fatal("deleted entry came back")
		}
		if entries[i].Point[0] != float64(k-1000) || entries[i].Point[1] != -1.5 {
			t.Fatalf("entry %d corrupted: key %d point %v", i, k, entries[i].Point)
		}
	}
	rec := st2.Recovery()
	if rec.RecordsReplayed != 102 { // 101 puts + 1 delete
		t.Fatalf("RecordsReplayed = %d, want 102", rec.RecordsReplayed)
	}
	if rec.SnapshotRecords != 0 || rec.Compactions != 0 {
		t.Fatalf("unexpected snapshot state: %+v", rec)
	}
}

// Compaction must fold the journal into a snapshot, and recovery must
// combine snapshot + post-snapshot journal records.
func TestWALStoreCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	stamp := int64(0)
	st, err := NewWALStore(WALStoreOptions{
		Dir: dir, Sync: wal.SyncNever, CompactEvery: -1,
		Now: func() int64 { return stamp },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := st.Put("idx", uint64(i), Entry{Obj: ObjectID(i), Point: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	stamp = 12345
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := st.Recovery(); got.Compactions != 1 || got.SnapshotStamp != 12345 {
		t.Fatalf("post-compact stats: %+v", got)
	}
	// Post-snapshot tail.
	for i := 50; i < 60; i++ {
		if err := st.Put("idx", uint64(i), Entry{Obj: ObjectID(i), Point: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestWALStore(t, dir, -1)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := st2.Size("idx"); got != 60 {
		t.Fatalf("recovered %d entries, want 60", got)
	}
	rec := st2.Recovery()
	if rec.SnapshotRecords != 1 { // one region record for "idx"
		t.Fatalf("SnapshotRecords = %d, want 1", rec.SnapshotRecords)
	}
	if rec.SnapshotStamp != 12345 {
		t.Fatalf("SnapshotStamp = %d, want 12345", rec.SnapshotStamp)
	}
	if rec.RecordsReplayed != 10 {
		t.Fatalf("RecordsReplayed = %d, want 10", rec.RecordsReplayed)
	}
}

// Auto-compaction triggers on the configured journal interval, and
// every structural mutation (batch, region replace, extract, drain,
// drop) survives a restart.
func TestWALStoreStructuralOpsSurvive(t *testing.T) {
	dir := t.TempDir()
	st := openTestWALStore(t, dir, 8)
	keys := []uint64{10, 11, 12, 13, 14, 15}
	entries := make([]Entry, len(keys))
	for i := range entries {
		entries[i] = Entry{Obj: ObjectID(i), Point: []float64{float64(i)}}
	}
	if err := st.PutBatch("batch", keys, entries); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyRegion("replace", keys[:3], entries[:3]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.ExtractUpTo("batch", 10, 12); err != nil { // removes 10,11,12
		t.Fatal(err)
	}
	if _, _, err := st.Drain("replace"); err != nil {
		t.Fatal(err)
	}
	if err := st.PutBatch("doomed", keys, entries); err != nil {
		t.Fatal(err)
	}
	if err := st.DropIndex("doomed"); err != nil {
		t.Fatal(err)
	}
	// Push over the auto-compaction threshold.
	for i := 0; i < 10; i++ {
		if err := st.Put("tail", uint64(100+i), Entry{Obj: ObjectID(i), Point: []float64{2}}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Recovery().Compactions == 0 {
		t.Fatal("auto-compaction never triggered")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestWALStore(t, dir, -1)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := st2.Size("batch"); got != 3 {
		t.Fatalf("batch has %d entries after extract, want 3", got)
	}
	for _, gone := range []string{"replace", "doomed"} {
		if got := st2.Size(gone); got != 0 {
			t.Fatalf("%s has %d entries, want 0", gone, got)
		}
	}
	if got := st2.Size("tail"); got != 10 {
		t.Fatalf("tail has %d entries, want 10", got)
	}
	// Scan still works through the recovered image.
	got := st2.Scan("tail", query.Region{Cube: []lph.Bounds{{Lo: 2, Hi: 2}}}, nil)
	if len(got) != 10 {
		t.Fatalf("scan found %d entries, want 10", len(got))
	}
}

// A whole System over the walstore factory behaves identically to the
// in-memory default, and a store reopened on the same directory
// recovers the node's region.
func TestWALStoreFactorySystemRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Store = WALStoreFactory(dir, WALStoreOptions{Sync: wal.SyncNever, CompactEvery: -1})
	f := buildFixtureCfg(t, 12, 600, 2, false, cfg)
	// Every node's region is on disk: reopen each node's directory
	// standalone and compare against the live store.
	for _, in := range f.sys.Nodes() {
		live := map[string]int{}
		for _, name := range in.st.Indexes() {
			live[name] = in.st.Size(name)
		}
		ws, ok := in.st.(*WALStore)
		if !ok {
			t.Fatal("factory did not build WALStores")
		}
		if err := ws.Compact(); err != nil { // also exercises snapshot path
			t.Fatal(err)
		}
		re, err := NewWALStore(WALStoreOptions{Dir: NodeDataDir(dir, in.ID()), Sync: wal.SyncNever, CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		for name, n := range live {
			if got := re.Size(name); got != n {
				t.Fatalf("node %#x index %s: recovered %d entries, want %d", in.ID(), name, got, n)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
