package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/dataset"
	"landmarkdht/internal/indexspace"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/metric"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
)

// seedStabilityTrace runs a small end-to-end workload — deploy, bulk
// load, overlay publishes, traced queries, replication, a mid-run
// crash with failover queries — entirely derived from one seed, and
// serializes everything observable (per-query stats and trace event
// sequences, result sets, system counters, engine state) into one
// string. The simulator's reproducibility contract says this string is
// a pure function of the seed.
//
// The workload deliberately crosses the paths this PR's linters guard:
// injected message loss and jitter (engine RNG draws per message),
// retransmission timers, replica repair (map-heavy placement code),
// and multi-scheme store iteration.
//
// With resilient set, the workload additionally turns on the query-
// resilience machinery — per-query deadlines, subquery hedging to
// successor replicas, and query/ack duplication — whose timers and
// random draws must be just as seed-stable.
//
// With batched set, destination batching coalesces the query/result/ack
// traffic: the flush timers and per-member fault draws must be
// seed-stable too, and the shipped frame count joins the trace.
func seedStabilityTrace(t *testing.T, seed int64, resilient, batched bool) string {
	t.Helper()
	const (
		nNodes = 24
		nData  = 600
	)
	eng := sim.NewEngine(seed)
	model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{N: nNodes, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Retry = RetryConfig{MaxRetries: 3, Timeout: 400 * time.Millisecond}
	cfg.Chord.Faults = chord.NewFaultPlan().
		DropAll(0.05).
		Jitter(20*time.Millisecond).
		Spike(0.02, 150*time.Millisecond)
	if resilient {
		cfg.Chord.Faults.Duplicate(0.05)
		cfg.Deadline = 20 * time.Second
		cfg.Hedge = HedgeConfig{Delay: 200 * time.Millisecond}
	}
	if batched {
		cfg.Chord.Batch = chord.BatchConfig{MaxDelay: 5 * time.Millisecond}
	}
	sys := NewSystem(eng, model, cfg)

	rng := rand.New(rand.NewSource(seed + 2))
	ids := make([]chord.ID, 0, nNodes)
	used := map[chord.ID]bool{}
	for i := 0; i < nNodes; i++ {
		id := chord.ID(rng.Uint64())
		for used[id] {
			id = chord.ID(rng.Uint64())
		}
		used[id] = true
		if _, err := sys.AddNode(id, i); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sys.Stabilize()

	data, err := dataset.Clustered(dataset.ClusteredConfig{
		N: nData, Dim: 2, Lo: 0, Hi: 100, Clusters: 4, Dev: 6, Seed: seed + 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := metric.EuclideanSpace("det-l2", 2, 0, 100)
	lms, err := landmark.Greedy(rng, data[:200], 3, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := indexspace.New(space, lms)
	if err != nil {
		t.Fatal(err)
	}
	part, err := emb.Partitioner(false)
	if err != nil {
		t.Fatal(err)
	}
	ix := &Index{
		Name: space.Name,
		Part: part,
		Dist: func(payload any, obj ObjectID) float64 {
			return metric.L2(payload.(metric.Vector), data[obj])
		},
	}
	if err := sys.DeployIndex(ix); err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 0, nData)
	for i, v := range data[:nData-20] {
		entries = append(entries, Entry{Obj: ObjectID(i), Point: emb.Map(v)})
	}
	if err := sys.BulkLoad(ix.Name, entries); err != nil {
		t.Fatal(err)
	}
	// The last entries travel through the overlay (lookup + reliable
	// delivery under injected loss).
	for i := nData - 20; i < nData; i++ {
		e := Entry{Obj: ObjectID(i), Point: emb.Map(data[i])}
		if err := sys.Publish(ix.Name, ids[rng.Intn(nNodes)], e, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if err := sys.ReplicateAll(ix.Name, 2); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	record := func(qr *QueryResult) {
		fmt.Fprintf(&b, "stats=%+v results=%v\n", qr.Stats, qr.Results)
		if qr.Trace != nil {
			for _, ev := range qr.Trace.Events {
				fmt.Fprintf(&b, "  %s\n", ev)
			}
		}
	}
	runQuery := func(qi int) {
		q := data[rng.Intn(nData)].Clone()
		q[0] += rng.NormFloat64()
		q[1] += rng.NormFloat64()
		r := 3 + rng.Float64()*10
		fmt.Fprintf(&b, "query %d r=%.6f\n", qi, r)
		err := sys.RangeQuery(ix.Name, ids[rng.Intn(nNodes)], q, emb.Map(q), r,
			QueryOpts{Trace: true}, record)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	for qi := 0; qi < 6; qi++ {
		runQuery(qi)
	}
	// Crash a node mid-run: replica repair re-places its entries and
	// the remaining queries exercise successor failover.
	if err := sys.CrashNode(ids[rng.Intn(nNodes)]); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for qi := 6; qi < 12; qi++ {
		runQuery(qi)
	}
	tr := sys.Network().Traffic()
	fmt.Fprintf(&b, "loads=%v total=%d dropped=%d retries=%d recovered=%d injected=%d hedges=%d duplicated=%d frames=%d\n",
		sys.Loads(), sys.TotalEntries(),
		sys.DroppedSubqueries, sys.RetriesIssued, sys.RecoveredSubqueries,
		cfg.Chord.Faults.TotalDropped(), sys.HedgesIssued, cfg.Chord.Faults.Duplicated, tr.Frames)
	fmt.Fprintf(&b, "engine now=%v processed=%d\n", eng.Now(), eng.Processed())
	return b.String()
}

// TestSeedStability is the determinism regression test: identical seeds
// must yield byte-identical traces, and a different seed must not (so
// the assertion is not vacuous).
func TestSeedStability(t *testing.T) {
	first := seedStabilityTrace(t, 42, false, false)
	second := seedStabilityTrace(t, 42, false, false)
	if first != second {
		t.Fatalf("same seed produced different traces:\n%s", firstDiff(first, second))
	}
	other := seedStabilityTrace(t, 43, false, false)
	if other == first {
		t.Fatal("different seeds produced identical traces; the stability assertion is vacuous")
	}
	// With resilience off, nothing in the trace may mention its
	// machinery: the deadline/hedge timers and duplication draws must
	// not exist, let alone fire.
	for _, s := range []string{string(TraceHedge), string(TraceDeadline)} {
		if strings.Contains(first, " "+s+" ") {
			t.Fatalf("resilience-free trace mentions %q", s)
		}
	}
	if !strings.Contains(first, "hedges=0 duplicated=0") {
		t.Fatal("resilience-free run issued hedges or duplications")
	}
}

// TestSeedStabilityResilient repeats the seed-stability contract with
// deadlines, hedging and message duplication switched on: the extra
// timers and random draws must be a pure function of the seed too, and
// must actually change the execution (the knobs are not dead).
func TestSeedStabilityResilient(t *testing.T) {
	first := seedStabilityTrace(t, 42, true, false)
	second := seedStabilityTrace(t, 42, true, false)
	if first != second {
		t.Fatalf("same seed produced different traces:\n%s", firstDiff(first, second))
	}
	plain := seedStabilityTrace(t, 42, false, false)
	if plain == first {
		t.Fatal("resilience knobs changed nothing; the variant is vacuous")
	}
}

// TestSeedStabilityBatched repeats the seed-stability contract with
// destination batching switched on: flush deadlines and the per-member
// fault draws must stay a pure function of the seed, query results must
// not change at all, and the frame count must actually drop (batching
// is not dead under the workload).
func TestSeedStabilityBatched(t *testing.T) {
	first := seedStabilityTrace(t, 42, true, true)
	second := seedStabilityTrace(t, 42, true, true)
	if first != second {
		t.Fatalf("same seed produced different traces:\n%s", firstDiff(first, second))
	}
	unbatched := seedStabilityTrace(t, 42, true, false)
	if unbatched == first {
		t.Fatal("batching changed nothing; the variant is vacuous")
	}
	// Batching must not change what any query returned: every per-query
	// result line is identical; only timings, traffic and the trace's
	// engine bookkeeping may move.
	if a, b := resultLines(unbatched), resultLines(first); a != b {
		t.Fatalf("batching changed query results:\n%s", firstDiff(a, b))
	}
	if fu, fb := framesCount(t, unbatched), framesCount(t, first); fb >= fu {
		t.Fatalf("batching did not reduce frames: %d unbatched vs %d batched", fu, fb)
	}
}

// resultLines extracts just the "results=..." portions of a stability
// trace, dropping timing-bearing stats.
func resultLines(trace string) string {
	var b strings.Builder
	for _, line := range strings.Split(trace, "\n") {
		if i := strings.Index(line, " results="); i >= 0 {
			b.WriteString(line[i+1:])
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// framesCount parses the frames= counter off a stability trace.
func framesCount(t *testing.T, trace string) int64 {
	t.Helper()
	i := strings.LastIndex(trace, "frames=")
	if i < 0 {
		t.Fatal("trace has no frames counter")
	}
	var n int64
	if _, err := fmt.Sscanf(trace[i:], "frames=%d", &n); err != nil {
		t.Fatal(err)
	}
	return n
}

// firstDiff renders the first diverging line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  run1: %s\n  run2: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
