package core

import (
	"strings"
	"testing"
)

func runTraced(t *testing.T, f *fixture, srcIdx int, qIdx int, r float64) *QueryResult {
	t.Helper()
	q := f.data[qIdx]
	center := f.emb.Map(q)
	var out *QueryResult
	err := f.sys.RangeQuery("test-l2", f.ids[srcIdx], q, center, r, QueryOpts{Trace: true}, func(qr *QueryResult) { out = qr })
	if err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if out == nil {
		t.Fatal("query did not complete")
	}
	return out
}

func TestTraceRecordsExecution(t *testing.T) {
	f := buildFixture(t, 32, 2000, 3, false)
	out := runTraced(t, f, 0, 0, 15)
	tr := out.Trace
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("no trace recorded")
	}
	// Every query starts with routing at the source.
	if tr.Events[0].Action != TraceRoute || tr.Events[0].Node != f.ids[0] {
		t.Fatalf("first event = %+v", tr.Events[0])
	}
	// Answer events must exist and their count matches result messages
	// plus local answers.
	answers := tr.Count(TraceAnswer)
	if answers == 0 {
		t.Fatal("no answer events")
	}
	if answers < out.Stats.IndexNodes {
		t.Fatalf("answers %d < index nodes %d", answers, out.Stats.IndexNodes)
	}
	// Forward count matches... every forward corresponds to a subquery
	// inside some query message; messages batch subqueries, so forwards
	// >= messages.
	if fw := tr.Count(TraceForward); fw < out.Stats.QueryMsgs {
		t.Fatalf("forwards %d < query msgs %d", fw, out.Stats.QueryMsgs)
	}
	// No drops in a static network.
	if tr.Count(TraceDrop) != 0 {
		t.Fatal("drops recorded in a static network")
	}
	// Node set includes every answering node.
	if len(tr.Nodes()) < out.Stats.IndexNodes {
		t.Fatalf("trace nodes %d < answering nodes %d", len(tr.Nodes()), out.Stats.IndexNodes)
	}
	// Depth grows past the initial prefix.
	if tr.MaxDepth() == 0 {
		t.Fatal("no refinement depth recorded")
	}
	// Events render and dump without error.
	var b strings.Builder
	if err := tr.Write(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"route", "answer"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("trace dump missing %q:\n%s", want, b.String())
		}
	}
}

func TestTraceEventTimesMonotoneEnough(t *testing.T) {
	f := buildFixture(t, 32, 2000, 3, false)
	out := runTraced(t, f, 3, 7, 25)
	tr := out.Trace
	// Times need not be globally sorted (parallel branches), but the
	// first event is the earliest and no event precedes issue time.
	for _, e := range tr.Events {
		if e.At < out.Stats.Issued {
			t.Fatalf("event before issue: %+v", e)
		}
		if e.At > out.Stats.LastResult {
			t.Fatalf("event after completion: %+v", e)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	f := buildFixture(t, 16, 500, 3, false)
	q := f.data[0]
	var out *QueryResult
	if err := f.sys.RangeQuery("test-l2", f.ids[0], q, f.emb.Map(q), 10, QueryOpts{}, func(qr *QueryResult) { out = qr }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if out.Trace != nil {
		t.Fatal("trace allocated without being requested")
	}
	// The nil trace is safe to use.
	if out.Trace.Count(TraceAnswer) != 0 || out.Trace.MaxDepth() != 0 || out.Trace.Nodes() != nil {
		t.Fatal("nil trace misbehaved")
	}
	if err := out.Trace.Write(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
