package core

import (
	"testing"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/metric"
)

// TestDeadlineExpiryAccountsUncovered drives a query into a network
// that loses every message while the reliability layer's timeout is far
// beyond the query deadline: the deadline must fire first, finishing
// the query with whatever arrived, Complete=false, and an Uncovered
// list that accounts for every missing in-range object.
func TestDeadlineExpiryAccountsUncovered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chord.Faults = chord.NewFaultPlan().DropAll(1.0)
	// Retries would only detect the loss after 10s; the 2s deadline
	// must win and surface the outstanding regions.
	cfg.Retry = RetryConfig{MaxRetries: 5, Timeout: 10 * time.Second}
	f := buildFixtureCfg(t, 32, 1500, 3, false, cfg)

	q := metric.Vector{50, 50}
	const r = 30
	qr := f.runRange(t, 0, q, r, QueryOpts{Deadline: 2 * time.Second})

	if qr.Complete {
		t.Fatal("query over a fully lossy network reported Complete")
	}
	if len(qr.Uncovered) == 0 {
		t.Fatal("incomplete deadline expiry reported no uncovered regions")
	}
	// The results that did arrive must be a correct subset...
	want := f.bruteRange(q, r)
	got := map[ObjectID]bool{}
	for _, res := range qr.Results {
		if !want[res.Obj] {
			t.Fatalf("result %d is not within range %v of %v", res.Obj, r, q)
		}
		got[res.Obj] = true
	}
	// ...and every missing in-range object must lie inside one of the
	// uncovered regions — the accounting may not lose track of any part
	// of the query.
	for obj := range want {
		if got[obj] {
			continue
		}
		point := f.emb.Map(f.data[obj])
		covered := false
		for _, reg := range qr.Uncovered {
			if reg.Contains(point) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("missing in-range object %d (point %v) lies in no uncovered region", obj, point)
		}
	}
}

// TestHedgeRecoversAndMergesOnce runs lossy queries with hedging to the
// successor replica: hedges must fire, every query must still complete
// with the exact answer, and the duplicate answers a hedge provokes
// (both the original's retry and the hedge can respond) must merge
// exactly once.
func TestHedgeRecoversAndMergesOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chord.Faults = chord.NewFaultPlan().DropAll(0.25)
	cfg.Retry = RetryConfig{MaxRetries: 3, Timeout: 2 * time.Second}
	// A cap far above the subquery count: every lost shipment must be
	// eligible for a hedge, so the only way to lose a region is both
	// independent chains exhausting — negligible at this loss rate.
	cfg.Hedge = HedgeConfig{Delay: 500 * time.Millisecond, MaxPerQuery: 4096}
	f := buildFixtureCfg(t, 32, 1500, 3, false, cfg)
	if err := f.sys.ReplicateAll("test-l2", 2); err != nil {
		t.Fatal(err)
	}

	queries := []metric.Vector{{50, 50}, {25, 75}, {75, 25}, {40, 60}, {60, 40}, {10, 90}}
	for _, q := range queries {
		const r = 25
		qr := f.runRange(t, 0, q, r, QueryOpts{})
		if !qr.Complete {
			t.Fatalf("hedged query at %v did not complete (dropped %d, uncovered %d)",
				q, qr.DroppedSubqueries, len(qr.Uncovered))
		}
		want := f.bruteRange(q, r)
		if len(qr.Results) != len(want) {
			t.Fatalf("hedged query at %v: %d results, brute force %d", q, len(qr.Results), len(want))
		}
		seen := map[ObjectID]bool{}
		for _, res := range qr.Results {
			if !want[res.Obj] {
				t.Fatalf("hedged query at %v returned out-of-range object %d", q, res.Obj)
			}
			if seen[res.Obj] {
				t.Fatalf("hedged query at %v returned object %d twice: duplicate answers merged twice", q, res.Obj)
			}
			seen[res.Obj] = true
		}
	}
	if f.sys.HedgesIssued == 0 {
		t.Fatal("30% loss with a 500ms hedge delay issued no hedges; the hedging path is dead")
	}
}

// TestSuspicionDecaysNeverBlacklists checks the two suspicion
// invariants: the counter builds and decays through the suspect /
// unsuspect pair, and a heavily suspected node keeps serving — each
// successful answer decays its counter, so full-space queries stay
// exact and eventually clear the suspicion entirely.
func TestSuspicionDecaysNeverBlacklists(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hedge = HedgeConfig{Delay: 500 * time.Millisecond}
	f := buildFixtureCfg(t, 16, 800, 3, false, cfg)

	victim := f.ids[3]
	for i := 0; i < 5; i++ {
		f.sys.suspect(victim)
	}
	if got := f.sys.suspicion[victim]; got != 5 {
		t.Fatalf("suspicion after 5 suspects = %d, want 5", got)
	}
	f.sys.unsuspect(victim)
	if got := f.sys.suspicion[victim]; got != 4 {
		t.Fatalf("suspicion after unsuspect = %d, want 4", got)
	}

	// Far beyond the threshold: without decay this node would never be
	// contacted again.
	for i := 0; i < 20; i++ {
		f.sys.suspect(victim)
	}
	q := metric.Vector{50, 50}
	r := 150.0 // covers the whole [0,100]² space: every node answers
	for i := 0; i < 30; i++ {
		qr := f.runRange(t, i%16, q, r, QueryOpts{})
		if !qr.Complete {
			t.Fatalf("query %d under suspicion did not complete", i)
		}
		if len(qr.Results) != len(f.data) {
			t.Fatalf("query %d under suspicion: %d results, want all %d", i, len(qr.Results), len(f.data))
		}
	}
	if got := f.sys.suspicion[victim]; got >= 24 {
		t.Fatalf("suspicion never decayed: still %d after 30 answered queries", got)
	}
}

// TestSuspicionCounterLifecycle covers the counter edge cases directly.
func TestSuspicionCounterLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hedge = HedgeConfig{Delay: time.Second}
	f := buildFixtureCfg(t, 8, 100, 3, false, cfg)
	id := f.ids[0]

	f.sys.unsuspect(id) // decay of an unsuspected node is a no-op
	if _, ok := f.sys.suspicion[id]; ok {
		t.Fatal("unsuspect created a suspicion entry")
	}
	f.sys.suspect(id)
	f.sys.unsuspect(id)
	if _, ok := f.sys.suspicion[id]; ok {
		t.Fatal("suspicion entry not removed when the counter reached zero")
	}

	// Hedging disabled: suspect must be inert, so the default path
	// carries no suspicion state at all.
	cfg2 := DefaultConfig()
	f2 := buildFixtureCfg(t, 8, 100, 3, false, cfg2)
	f2.sys.suspect(f2.ids[0])
	if len(f2.sys.suspicion) != 0 {
		t.Fatal("suspect tracked state with hedging disabled")
	}
}
