package core

import (
	"sort"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
)

// region holds one index scheme's entries on one node. Entries are
// kept with their ring keys so load migration can split a node's
// range; the slice is unsorted between migrations (queries scan it
// linearly — per-node entry counts are small by design).
type region struct {
	keys    []lph.Key // ring (rotated) key of each entry
	entries []Entry
}

func (s *region) add(ringKey lph.Key, e Entry) {
	s.keys = append(s.keys, ringKey)
	s.entries = append(s.entries, e)
}

func (s *region) size() int { return len(s.entries) }

// scanAppend appends the entries whose index points fall inside the
// region's cube to buf and returns it (the zero-allocation hot path).
func (s *region) scanAppend(r query.Region, buf []Entry) []Entry {
	for i := range s.entries {
		if r.Contains(s.entries[i].Point) {
			buf = append(buf, s.entries[i])
		}
	}
	return buf
}

// extractUpTo removes and returns all entries whose ring key lies in
// (base-1, split], i.e. the lower half of the owner's range after a
// split at `split`. base is pred+1 (the start of the owner's range).
func (s *region) extractUpTo(base, split lph.Key) ([]lph.Key, []Entry) {
	span := split - base // inclusive span length - 1
	var outK []lph.Key
	var outE []Entry
	keepK := s.keys[:0]
	keepE := s.entries[:0]
	for i, k := range s.keys {
		if k-base <= span {
			outK = append(outK, k)
			outE = append(outE, s.entries[i])
		} else {
			keepK = append(keepK, k)
			keepE = append(keepE, s.entries[i])
		}
	}
	s.keys = keepK
	s.entries = keepE
	return outK, outE
}

// drain removes and returns everything.
func (s *region) drain() ([]lph.Key, []Entry) {
	k, e := s.keys, s.entries
	s.keys, s.entries = nil, nil
	return k, e
}

// MemStore is the in-memory Store — the default backend, equivalent to
// the pre-Store behavior and what the paper's simulations assume. Its
// mutating methods never fail.
type MemStore struct {
	regions map[string]*region
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{regions: make(map[string]*region)}
}

// region returns (creating on demand) the region for an index scheme.
func (m *MemStore) region(index string) *region {
	st, ok := m.regions[index]
	if !ok {
		st = &region{}
		m.regions[index] = st
	}
	return st
}

// Put implements Store.
func (m *MemStore) Put(index string, key lph.Key, e Entry) error {
	m.region(index).add(key, e)
	return nil
}

// PutBatch implements Store.
func (m *MemStore) PutBatch(index string, keys []lph.Key, entries []Entry) error {
	st := m.region(index)
	st.keys = append(st.keys, keys...)
	st.entries = append(st.entries, entries...)
	return nil
}

// Delete implements Store.
func (m *MemStore) Delete(index string, key lph.Key, obj ObjectID) (bool, error) {
	st, ok := m.regions[index]
	if !ok {
		return false, nil
	}
	for i, k := range st.keys {
		if k == key && st.entries[i].Obj == obj {
			last := len(st.keys) - 1
			st.keys[i] = st.keys[last]
			st.entries[i] = st.entries[last]
			st.keys = st.keys[:last]
			st.entries = st.entries[:last]
			return true, nil
		}
	}
	return false, nil
}

// Scan implements Store.
func (m *MemStore) Scan(index string, r query.Region, buf []Entry) []Entry {
	st, ok := m.regions[index]
	if !ok {
		return buf
	}
	return st.scanAppend(r, buf)
}

// Size implements Store.
func (m *MemStore) Size(index string) int {
	if st, ok := m.regions[index]; ok {
		return st.size()
	}
	return 0
}

// TotalSize implements Store.
func (m *MemStore) TotalSize() int {
	total := 0
	for _, st := range m.regions {
		total += st.size()
	}
	return total
}

// Indexes implements Store: scheme names in sorted order, the
// deterministic way to iterate the region map — transfer and migration
// batches must leave in the same order on every run of a seed.
func (m *MemStore) Indexes() []string {
	names := make([]string, 0, len(m.regions))
	for name := range m.regions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// View implements Store.
func (m *MemStore) View(index string, fn func(keys []lph.Key, entries []Entry)) {
	if st, ok := m.regions[index]; ok {
		fn(st.keys, st.entries)
	}
}

// RegionSnapshot implements Store.
func (m *MemStore) RegionSnapshot(index string) ([]lph.Key, []Entry) {
	st, ok := m.regions[index]
	if !ok || st.size() == 0 {
		return nil, nil
	}
	return append([]lph.Key(nil), st.keys...), append([]Entry(nil), st.entries...)
}

// ApplyRegion implements Store.
func (m *MemStore) ApplyRegion(index string, keys []lph.Key, entries []Entry) error {
	if len(keys) == 0 {
		delete(m.regions, index)
		return nil
	}
	st := m.region(index)
	st.keys = append(st.keys[:0], keys...)
	st.entries = append(st.entries[:0], entries...)
	return nil
}

// ExtractUpTo implements Store.
func (m *MemStore) ExtractUpTo(index string, base, split lph.Key) ([]lph.Key, []Entry, error) {
	st, ok := m.regions[index]
	if !ok {
		return nil, nil, nil
	}
	k, e := st.extractUpTo(base, split)
	return k, e, nil
}

// Drain implements Store.
func (m *MemStore) Drain(index string) ([]lph.Key, []Entry, error) {
	st, ok := m.regions[index]
	if !ok {
		return nil, nil, nil
	}
	k, e := st.drain()
	return k, e, nil
}

// DropIndex implements Store.
func (m *MemStore) DropIndex(index string) error {
	delete(m.regions, index)
	return nil
}

// Close implements Store (no resources to release).
func (m *MemStore) Close() error { return nil }
