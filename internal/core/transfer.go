package core

import (
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/runtime"
	"landmarkdht/internal/wire"
)

// Streaming bulk region transfer (DESIGN.md §14): join/leave handoff,
// load migration and replica repair ship whole serialized regions as
// chunked, credit-acked streams instead of republishing entry-at-a-time
// (one reliable round-trip per object). A stream serializes its region
// with the region codec, packs entries greedily into chunks of about
// Config.TransferChunkBytes, and keeps at most Config.TransferWindow
// chunks in flight; every chunk is individually acknowledged, returning
// its credit, and a chunk whose ack does not arrive in time is
// retransmitted to the current successor of the destination's ring
// position — the stream resumes at chunk granularity, it never
// restarts. A chunk that exhausts its retries (or whose sender dies)
// falls back to oracle reinsertion so migration can degrade to the old
// teleport behavior but never silently lose entries.
//
// The receiver applies each chunk exactly once (duplicates from
// premature retransmission are dropped by sequence number): entries
// whose key the receiver now owns are stored locally; entries still
// owned by the *sender* are stored locally too — that is the leave
// handoff, where ownership arrives with the sender's departure; and
// entries owned by some third node (membership drifted mid-stream) are
// rerouted to that owner.

const (
	// defaultTransferChunk is the target chunk payload size. Far below
	// wire.MaxChunkData: small enough to interleave with query traffic,
	// large enough that per-chunk overhead is negligible.
	defaultTransferChunk = 8 << 10
	// defaultTransferWindow is the credit window: chunks in flight
	// before the first unacknowledged one stalls the stream.
	defaultTransferWindow = 4
	// transferMaxRetries bounds per-chunk retransmissions when the
	// reliability layer is not configured.
	transferMaxRetries = 3
)

// TransferStats accounts bulk region streams against the point-wise
// republication they replaced. The point-wise counters are the
// counterfactual cost of the same entries shipped one reliable
// round-trip each, priced with the same codec and packet overhead —
// the saving is therefore measured, not assumed.
type TransferStats struct {
	// Transfers counts completed streams; Chunks their first-shipment
	// chunk count; Retransmits the chunks shipped again on timeout.
	Transfers   int
	Chunks      int
	Retransmits int
	// BulkMessages/BulkBytes are the messages and bytes the streams
	// actually sent (chunks + acks, including retransmissions).
	BulkMessages int
	BulkBytes    int
	// PointwiseMessages/PointwiseBytes are what the same regions would
	// have cost entry-at-a-time (entry message + ack per entry).
	PointwiseMessages int
	PointwiseBytes    int
	// FallbackEntries counts entries that abandoned the stream and were
	// oracle-reinserted (retries exhausted, sender died mid-stream).
	FallbackEntries int
}

// MessagesSaved returns the message saving over point-wise
// republication; BytesSaved the byte saving.
func (ts TransferStats) MessagesSaved() int { return ts.PointwiseMessages - ts.BulkMessages }
func (ts TransferStats) BytesSaved() int    { return ts.PointwiseBytes - ts.BulkBytes }

// TransferStats returns the system's bulk-transfer accounting.
func (s *System) TransferStats() TransferStats { return s.transfers }

// transferChunk is one sequenced piece of an outgoing stream.
type transferChunk struct {
	payload []byte // encoded wire.RegionChunk
	keys    []lph.Key
	entries []Entry
	acked   bool
}

// outTransfer is the sender-side state of one stream.
type outTransfer struct {
	id     uint64
	index  string
	src    *chord.Node
	dst    chord.ID
	chunks []transferChunk
	next   int // next chunk to ship
	flight int // chunks in flight (credit used)
	acked  int
	done   func()
	ended  bool
}

// chunkTargetBytes returns the configured chunk payload target.
func (s *System) chunkTargetBytes() int {
	if s.cfg.TransferChunkBytes > 0 {
		return s.cfg.TransferChunkBytes
	}
	return defaultTransferChunk
}

// transferWindow returns the configured credit window.
func (s *System) transferWindow() int {
	if s.cfg.TransferWindow > 0 {
		return s.cfg.TransferWindow
	}
	return defaultTransferWindow
}

// serializationDelay models pushing n bytes through the configured
// transfer bandwidth.
func (s *System) serializationDelay(bytes int) time.Duration {
	return time.Duration(float64(time.Second) * float64(bytes) / s.cfg.TransferBytesPerSec)
}

// accountPointwise adds the counterfactual point-wise cost of a region
// to the stats: per entry, one message carrying that entry alone (same
// chunk framing, same packet header) plus one acknowledgement.
func (s *System) accountPointwise(index string, entries []Entry) {
	for i := range entries {
		s.transfers.PointwiseMessages += 2
		s.transfers.PointwiseBytes += wire.PacketHeader + wire.ChunkHeaderBytes + len(index) + EncodedEntrySize(entries[i])
		s.transfers.PointwiseBytes += wire.PacketHeader + wire.AckBytes
	}
}

// buildChunks serializes a region into greedy chunks of about the
// configured target size (at least one entry per chunk).
func (s *System) buildChunks(id uint64, index string, keys []lph.Key, entries []Entry) []transferChunk {
	target := s.chunkTargetBytes()
	var chunks []transferChunk
	start := 0
	size := 0
	flush := func(end int, last bool) {
		if end == start {
			return
		}
		ck := keys[start:end:end]
		ce := entries[start:end:end]
		wc := wire.RegionChunk{
			Transfer: id,
			Index:    index,
			Seq:      uint32(len(chunks)),
			Last:     last,
			Data:     AppendRegion(make([]byte, 0, size), ck, ce),
		}
		payload, err := wire.AppendChunk(nil, &wc)
		if err != nil {
			// Unreachable by construction: target << MaxChunkData and
			// single entries are tiny. Degrade to an empty payload with
			// honest size accounting rather than dropping entries.
			payload = make([]byte, wc.EncodedSize())
		}
		chunks = append(chunks, transferChunk{payload: payload, keys: ck, entries: ce})
		start, size = end, 0
	}
	for i := range entries {
		esz := EncodedEntrySize(entries[i])
		if size > 0 && size+esz > target {
			flush(i, false)
		}
		size += esz
	}
	flush(len(entries), true)
	return chunks
}

// streamRegion ships one index region from a live sender to the node
// at ring position dst as a chunked, credit-acked stream. done
// (optional) runs on the protocol executor once every chunk has been
// acknowledged or fallen back. Entries are never lost: any chunk the
// stream cannot deliver is oracle-reinserted.
func (s *System) streamRegion(src *IndexNode, dst chord.ID, index string, keys []lph.Key, entries []Entry, done func()) {
	if len(entries) == 0 {
		if done != nil {
			done()
		}
		return
	}
	s.nextTransfer++
	tr := &outTransfer{
		id:     s.nextTransfer,
		index:  index,
		src:    src.node,
		dst:    dst,
		chunks: s.buildChunks(s.nextTransfer, index, keys, entries),
		done:   done,
	}
	s.accountPointwise(index, entries)
	s.pumpTransfer(tr)
}

// pumpTransfer ships chunks while credit remains.
func (s *System) pumpTransfer(tr *outTransfer) {
	for !tr.ended && tr.flight < s.transferWindow() && tr.next < len(tr.chunks) {
		i := tr.next
		tr.next++
		tr.flight++
		s.transfers.Chunks++
		s.shipChunk(tr, i, 0)
	}
}

// shipChunk transmits one chunk (serialization delay, then the network
// message) and arms its retransmission timer.
func (s *System) shipChunk(tr *outTransfer, i, attempt int) {
	ch := &tr.chunks[i]
	s.rt.Schedule(s.serializationDelay(len(ch.payload)), func() {
		if tr.ended || ch.acked {
			return
		}
		if !tr.src.Alive() {
			// The sender died mid-stream: its un-acked state dies with
			// it. Oracle-reinsert everything unfinished so migration
			// degrades to teleporting rather than losing entries.
			s.abandonTransfer(tr)
			return
		}
		if attempt > 0 {
			s.transfers.Retransmits++
		}
		bytes := wire.PacketHeader + len(ch.payload)
		s.transfers.BulkMessages++
		s.transfers.BulkBytes += bytes
		timer := s.rt.AfterFunc(s.transferTimeout(attempt), func() {
			if tr.ended || ch.acked {
				return
			}
			if attempt >= s.transferRetries() {
				// This chunk is undeliverable; reinsert its entries and
				// treat it as settled so the stream can finish.
				s.transfers.FallbackEntries += len(ch.entries)
				s.reinsert(tr.index, ch.keys, ch.entries)
				s.settleChunk(tr, ch)
				return
			}
			// Retarget the stream at whoever now covers the
			// destination's ring position (the destination itself while
			// it lives, its successor after a crash).
			if cur, err := s.net.SuccessorID(tr.dst); err == nil {
				tr.dst = cur
			}
			s.shipChunk(tr, i, attempt+1)
		})
		s.net.SendOrFail(tr.src, tr.dst, chord.KindTransfer, bytes, func(dstNode *chord.Node) {
			s.deliverChunk(tr, dstNode, i, timer)
		}, nil)
	})
}

// deliverChunk is the receiver side: apply the chunk once, acknowledge
// it, and let the sender's credit window advance.
func (s *System) deliverChunk(tr *outTransfer, dstNode *chord.Node, i int, timer runtime.Timer) {
	ch := &tr.chunks[i]
	keys, entries := ch.keys, ch.entries
	if s.cfg.EncodeWire {
		// Round-trip through the real codec: what the receiver applies
		// is what was actually on the wire.
		wc, err := wire.DecodeChunk(tr.chunks[i].payload[:])
		if err == nil {
			keys, entries = nil, nil
			keys, entries, err = DecodeRegion(wc.Data, keys, entries)
		}
		if err != nil {
			// A corrupt chunk never reaches the store; the sender's
			// timer will retransmit it.
			return
		}
	}
	if s.rxApplied == nil {
		s.rxApplied = make(map[uint64]map[uint32]bool)
	}
	applied := s.rxApplied[tr.id]
	if applied == nil {
		applied = make(map[uint32]bool)
		s.rxApplied[tr.id] = applied
	}
	if !applied[uint32(i)] {
		applied[uint32(i)] = true
		s.applyChunk(tr, dstNode, keys, entries)
	}
	// Acknowledge even duplicates: the first ack may have been lost.
	ackBytes := wire.PacketHeader + wire.AckBytes
	s.transfers.BulkMessages++
	s.transfers.BulkBytes += ackBytes
	s.net.SendOrFail(dstNode, tr.src.ID(), chord.KindAck, ackBytes, func(*chord.Node) {
		if tr.ended || ch.acked {
			return
		}
		timer.Stop()
		s.settleChunk(tr, ch)
	}, nil)
}

// applyChunk stores a delivered chunk's entries: locally when the
// receiver owns the key or the sender still does (leave handoff —
// ownership follows the sender's departure), rerouted to the current
// owner when membership drifted mid-stream.
func (s *System) applyChunk(tr *outTransfer, dstNode *chord.Node, keys []lph.Key, entries []Entry) {
	rx := s.nodes[dstNode.ID()]
	if rx == nil {
		s.reinsert(tr.index, keys, entries)
		return
	}
	for i, key := range keys {
		if dstNode.OwnsKey(key) {
			s.noteStoreErr(rx.st.Put(tr.index, key, entries[i]))
			continue
		}
		owner, err := s.net.SuccessorID(key)
		if err == nil && owner == tr.src.ID() {
			s.noteStoreErr(rx.st.Put(tr.index, key, entries[i]))
			continue
		}
		s.reinsert(tr.index, keys[i:i+1], entries[i:i+1])
	}
}

// settleChunk marks a chunk finished (acked or fallen back) and
// finishes the stream when it was the last one.
func (s *System) settleChunk(tr *outTransfer, ch *transferChunk) {
	if ch.acked {
		return
	}
	ch.acked = true
	tr.flight--
	tr.acked++
	if tr.acked == len(tr.chunks) {
		s.finishTransfer(tr)
		return
	}
	s.pumpTransfer(tr)
}

// abandonTransfer oracle-reinserts every unfinished chunk of a stream
// whose sender died and finishes it.
func (s *System) abandonTransfer(tr *outTransfer) {
	if tr.ended {
		return
	}
	for i := range tr.chunks {
		ch := &tr.chunks[i]
		if ch.acked {
			continue
		}
		s.transfers.FallbackEntries += len(ch.entries)
		s.reinsert(tr.index, ch.keys, ch.entries)
		ch.acked = true
	}
	s.finishTransfer(tr)
}

// finishTransfer completes a stream: clears receiver dedup state and
// runs the completion callback.
func (s *System) finishTransfer(tr *outTransfer) {
	if tr.ended {
		return
	}
	tr.ended = true
	delete(s.rxApplied, tr.id)
	s.transfers.Transfers++
	if tr.done != nil {
		tr.done()
	}
}

// transferTimeout returns the per-chunk retransmission timeout for an
// attempt, borrowing the reliability layer's configuration when it is
// enabled.
func (s *System) transferTimeout(attempt int) time.Duration {
	if s.cfg.Retry.Enabled() {
		return s.retryTimeout(attempt)
	}
	d := float64(time.Second)
	for i := 0; i < attempt; i++ {
		d *= 2
	}
	return time.Duration(d)
}

// transferRetries bounds per-chunk retransmissions.
func (s *System) transferRetries() int {
	if s.cfg.Retry.Enabled() {
		return s.cfg.Retry.MaxRetries
	}
	return transferMaxRetries
}

// accountBulk charges a region handed over without an in-flight stream
// (synchronous split handover, replica repair's placement rebuild) as
// if it had been streamed: chunked messages plus acks, against the
// point-wise counterfactual. Returns the modeled stream bytes.
func (s *System) accountBulk(index string, keys []lph.Key, entries []Entry) int {
	if len(entries) == 0 {
		return 0
	}
	s.accountPointwise(index, entries)
	target := s.chunkTargetBytes()
	chunkBytes, size, msgs, total := 0, 0, 0, 0
	flushOverhead := wire.PacketHeader + wire.ChunkHeaderBytes + len(index)
	flush := func() {
		if size == 0 {
			return
		}
		msgs += 2 // chunk + ack
		total += flushOverhead + size + wire.PacketHeader + wire.AckBytes
		chunkBytes += flushOverhead + size
		size = 0
	}
	for i := range entries {
		esz := EncodedEntrySize(entries[i])
		if size > 0 && size+esz > target {
			flush()
		}
		size += esz
	}
	flush()
	s.transfers.Chunks += msgs / 2
	s.transfers.BulkMessages += msgs
	s.transfers.BulkBytes += total
	s.net.RecordTraffic(chord.KindTransfer, chunkBytes)
	s.net.RecordTraffic(chord.KindAck, total-chunkBytes)
	return total
}
