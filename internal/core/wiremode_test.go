package core

import (
	"math"
	"math/rand"
	"testing"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/dataset"
	"landmarkdht/internal/indexspace"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/metric"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
	"landmarkdht/internal/wire"
)

// The accounting model and the real codec must agree byte-for-byte.
func TestModelMatchesWireSizes(t *testing.T) {
	model := DefaultMessageModel()
	for _, k := range []int{1, 3, 10} {
		for _, n := range []int{0, 1, 5} {
			if model.QueryMsgBytes(n, k) != wire.QuerySize(n, k) {
				t.Fatalf("model %d != wire %d for n=%d k=%d",
					model.QueryMsgBytes(n, k), wire.QuerySize(n, k), n, k)
			}
		}
	}
	for _, n := range []int{0, 7, 42} {
		if model.ResultMsgBytes(n) != wire.ResultSize(n) {
			t.Fatalf("result model %d != wire %d for n=%d", model.ResultMsgBytes(n), wire.ResultSize(n), n)
		}
	}
}

// buildWireFixture mirrors buildFixture but runs every query and
// result message through the real binary codec.
func buildWireFixture(t *testing.T, nNodes, nData int) *fixture {
	t.Helper()
	eng := sim.NewEngine(1)
	model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{N: nNodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.EncodeWire = true
	sys := NewSystem(eng, model, cfg)
	rng := rand.New(rand.NewSource(2))
	ids := make([]chord.ID, 0, nNodes)
	used := map[chord.ID]bool{}
	for i := 0; i < nNodes; i++ {
		id := chord.ID(rng.Uint64())
		for used[id] {
			id = chord.ID(rng.Uint64())
		}
		used[id] = true
		if _, err := sys.AddNode(id, i); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sys.Stabilize()

	data, err := dataset.Clustered(dataset.ClusteredConfig{
		N: nData, Dim: 2, Lo: 0, Hi: 100, Clusters: 4, Dev: 6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := metric.EuclideanSpace("test-l2", 2, 0, 100)
	lms, err := landmark.Greedy(rng, data[:min(200, len(data))], 3, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := indexspace.New(space, lms)
	if err != nil {
		t.Fatal(err)
	}
	part, err := emb.Partitioner(false)
	if err != nil {
		t.Fatal(err)
	}
	ix := &Index{
		Name:    space.Name,
		Part:    part,
		MaxDist: space.Max,
		Dist: func(payload any, obj ObjectID) float64 {
			return metric.L2(payload.(metric.Vector), data[obj])
		},
	}
	if err := sys.DeployIndex(ix); err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, len(data))
	for i, v := range data {
		entries[i] = Entry{Obj: ObjectID(i), Point: emb.Map(v)}
	}
	if err := sys.BulkLoad(ix.Name, entries); err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, sys: sys, data: data, emb: emb, ids: ids}
}

// With the wire codec on, result SETS stay exact (widening only adds
// candidates, which exact refinement removes); reported distances are
// quantized upward by at most one quantum of MaxDist/65535.
func TestWireModeExactSets(t *testing.T) {
	f := buildWireFixture(t, 32, 2000)
	rng := rand.New(rand.NewSource(5))
	quantum := f.sys.index["test-l2"].MaxDist / 65535 * 1.01
	for trial := 0; trial < 20; trial++ {
		q := f.data[rng.Intn(len(f.data))].Clone()
		q[0] += rng.NormFloat64()
		r := 2 + rng.Float64()*15
		want := f.bruteRange(q, r)
		got := f.runRange(t, rng.Intn(32), q, r, QueryOpts{})
		if len(got.Results) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got.Results), len(want))
		}
		for _, res := range got.Results {
			if !want[res.Obj] {
				t.Fatalf("false positive %d", res.Obj)
			}
			exact := metric.L2(q, f.data[res.Obj])
			if res.Dist < exact-1e-9 {
				t.Fatalf("distance understated: %v < %v", res.Dist, exact)
			}
			if res.Dist-exact > quantum {
				t.Fatalf("distance overstated beyond quantum: %v vs %v", res.Dist, exact)
			}
		}
	}
}

func TestWireModeBytesMatchModel(t *testing.T) {
	f := buildWireFixture(t, 32, 2000)
	got := f.runRange(t, 0, f.data[0], 30, QueryOpts{TopK: 10})
	st := got.Stats
	// The codec produces exactly the model's sizes, so accounting must
	// line up with the closed-form: since message sizes depend on the
	// subquery count per message, check the floor/ceiling instead.
	if st.QueryMsgs > 0 {
		minBytes := int64(st.QueryMsgs) * int64(f.sys.cfg.Msg.QueryMsgBytes(1, 3))
		if st.QueryBytes < minBytes {
			t.Fatalf("query bytes %d below 1-subquery floor %d", st.QueryBytes, minBytes)
		}
	}
	if st.ResultMsgs > 0 {
		minBytes := int64(st.ResultMsgs) * int64(f.sys.cfg.Msg.ResultMsgBytes(0))
		if st.ResultBytes < minBytes {
			t.Fatalf("result bytes %d below header floor %d", st.ResultBytes, minBytes)
		}
	}
}

func TestWireModeTopK(t *testing.T) {
	f := buildWireFixture(t, 32, 2000)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		q := f.data[rng.Intn(len(f.data))]
		got := f.runRange(t, rng.Intn(32), q, 25, QueryOpts{TopK: 10})
		if len(got.Results) > 10 {
			t.Fatalf("topK returned %d", len(got.Results))
		}
		// The true nearest object must be present (distance 0 survives
		// any quantization ordering).
		found := false
		for _, res := range got.Results {
			if metric.L2(q, f.data[res.Obj]) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Fatal("query point's own object missing from top-k")
		}
	}
}

func TestWireModeDistancesMonotone(t *testing.T) {
	f := buildWireFixture(t, 16, 800)
	got := f.runRange(t, 0, f.data[0], 20, QueryOpts{})
	for i := 1; i < len(got.Results); i++ {
		if got.Results[i].Dist < got.Results[i-1].Dist {
			t.Fatal("results not sorted after quantization")
		}
	}
	if math.IsNaN(got.Results[0].Dist) {
		t.Fatal("NaN distance")
	}
}
