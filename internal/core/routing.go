package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
	"landmarkdht/internal/runtime"
	"landmarkdht/internal/wire"
)

// activeQuery tracks one in-flight range query across the system.
type activeQuery struct {
	id      int
	ix      *Index
	payload any
	r       float64
	topK    int
	srcID   chord.ID
	stats   QueryStats
	// pending counts subqueries whose results have not yet reached
	// the querier; the query completes when it hits zero.
	pending  int
	results  map[ObjectID]float64
	answered map[chord.ID]bool
	done     func(*QueryResult)
	finished bool
	gotFirst bool
	trace    *Trace
	// Resilience bookkeeping. Every live subquery region holds a
	// token; settling a token (answer or drop) is idempotent, which is
	// what lets hedged duplicates and post-deadline stragglers arrive
	// without corrupting the pending count or the result set. The
	// outstanding list exists only when a deadline or hedging is
	// configured, so the default path allocates nothing extra.
	nextTok     int
	outstanding []pendingRegion
	dropped     int
	uncovered   []query.Region
	expired     bool
	deadline    runtime.Timer
	// admitted marks queries counted by the admission gate; finish
	// releases their slot. Queries issued outside the gate (the naive
	// router) never set it.
	admitted bool
}

// pendingRegion pairs a subquery region with its settlement token.
// chains counts the independent delivery attempts able to answer it:
// 1 for the original shipment, +1 per hedge. A loss only settles the
// token as dropped when its last chain dies.
type pendingRegion struct {
	tok    int
	reg    query.Region
	chains int
}

// tracking reports whether outstanding regions are tracked (a deadline
// or hedging is configured for this query).
func (aq *activeQuery) tracking() bool { return aq.outstanding != nil }

// newToken registers one more outstanding subquery region and returns
// its settlement token.
func (aq *activeQuery) newToken(reg query.Region) int {
	aq.nextTok++
	aq.pending++
	if aq.outstanding != nil {
		aq.outstanding = append(aq.outstanding, pendingRegion{tok: aq.nextTok, reg: reg, chains: 1})
	}
	return aq.nextTok
}

// addChain records one more delivery chain (a hedge) for a token.
func (aq *activeQuery) addChain(tok int) {
	for i := range aq.outstanding {
		if aq.outstanding[i].tok == tok {
			aq.outstanding[i].chains++
			return
		}
	}
}

// lastChain records the death of one delivery chain for a token and
// reports whether no chain remains — only then is the token truly
// lost. An already-settled token reports true; the caller's settle is
// the no-op that filters it.
func (aq *activeQuery) lastChain(tok int) bool {
	for i := range aq.outstanding {
		if aq.outstanding[i].tok == tok {
			aq.outstanding[i].chains--
			return aq.outstanding[i].chains <= 0
		}
	}
	return true
}

// moveToken records that a token's region was refined in place, so a
// deadline snapshot reports the region actually outstanding.
func (aq *activeQuery) moveToken(tok int, reg query.Region) {
	for i := range aq.outstanding {
		if aq.outstanding[i].tok == tok {
			aq.outstanding[i].reg = reg
			return
		}
	}
}

// settle resolves a token, reporting false when it was already settled
// (a hedged duplicate or a stale retransmission) — the caller must
// then ignore the answer entirely. With tracking off, every delivery
// path is made idempotent by sqUnit.delivered flags, so each settle is
// necessarily the first.
func (aq *activeQuery) settle(tok int) bool {
	if aq.outstanding == nil {
		aq.pending--
		return true
	}
	for i := range aq.outstanding {
		if aq.outstanding[i].tok == tok {
			aq.outstanding = append(aq.outstanding[:i], aq.outstanding[i+1:]...)
			aq.pending--
			return true
		}
	}
	return false
}

// stillOutstanding reports whether a tracked token has not settled.
func (aq *activeQuery) stillOutstanding(tok int) bool {
	for i := range aq.outstanding {
		if aq.outstanding[i].tok == tok {
			return true
		}
	}
	return false
}

// stale reports whether work on a token is moot: the query finished
// (deadline expiry) or the token settled elsewhere (a hedge won).
func (aq *activeQuery) stale(tok int) bool {
	return aq.finished || (aq.tracking() && !aq.stillOutstanding(tok))
}

// QueryOpts tunes one query.
type QueryOpts struct {
	// TopK, when positive, makes every index node return its TopK
	// nearest candidates (the paper's recall protocol with k = 10) and
	// the final result the merged TopK. When zero the query is an
	// exact range query: results are candidates with distance <= r.
	TopK int
	// Trace records the query's distributed execution (routing steps,
	// splits, refinements, local answers) in QueryResult.Trace.
	Trace bool
	// Deadline, when positive, bounds this query's total time,
	// overriding Config.Deadline. On expiry the query finishes with
	// whatever arrived, marked incomplete, and the still-outstanding
	// regions reported in QueryResult.Uncovered.
	Deadline time.Duration
}

// RangeQuery issues the near-neighbor query (payload, r) on index
// indexName from the node srcID. center must be the query's index-
// space point (the embedding of payload); the system converts it into
// the hypercube range query of §3.1 and resolves it with the
// embedded-tree routing of §3.3. done fires when all index-node
// results have arrived.
//
// The call only schedules work; drive the sim.Engine to completion.
func (s *System) RangeQuery(indexName string, srcID chord.ID, payload any, center []float64, r float64, opts QueryOpts, done func(*QueryResult)) error {
	ix, err := s.lookupIndex(indexName)
	if err != nil {
		return err
	}
	src, ok := s.nodes[srcID]
	if !ok {
		return fmt.Errorf("core: unknown source node %#x", srcID)
	}
	if len(center) != ix.Part.K() {
		return fmt.Errorf("core: query center has %d coordinates, want %d", len(center), ix.Part.K())
	}
	if r < 0 {
		return fmt.Errorf("core: negative query range %v", r)
	}
	region, err := queryRegion(ix, center, r)
	if err != nil {
		return err
	}
	if s.cfg.MaxActiveQueries > 0 && s.active >= s.cfg.MaxActiveQueries {
		// Admission control: the system is saturated, so the query is
		// rejected up front with an honest incomplete result — its whole
		// region is Uncovered and the rejection is counted. Nothing is
		// silently lost and no work is queued.
		s.AdmissionRejected++
		now := s.rt.Now()
		res := &QueryResult{
			Complete:  false,
			Uncovered: []query.Region{region.Clone()},
			Stats:     QueryStats{Issued: now, FirstResult: now, LastResult: now},
		}
		if done != nil {
			s.rt.Schedule(0, func() { done(res) })
		}
		return nil
	}
	s.nextQ++
	aq := &activeQuery{
		id:       s.nextQ,
		ix:       ix,
		payload:  payload,
		r:        r,
		topK:     opts.TopK,
		srcID:    srcID,
		results:  make(map[ObjectID]float64),
		answered: make(map[chord.ID]bool),
		done:     done,
	}
	if opts.Trace {
		aq.trace = &Trace{}
	}
	aq.stats.Issued = s.rt.Now()
	aq.admitted = true
	s.active++
	tok := s.beginResilience(aq, opts, region)
	s.routeAt(src, aq, region, 0, tok)
	return nil
}

// beginResilience sets up a query's outstanding-region tracking and
// deadline timer according to the effective resilience knobs, and
// issues the token for its initial region. With all knobs zero it
// degenerates to a bare newToken: no tracking list, no timer, no extra
// allocations, and — because the deadline timer is the only new event
// source — a byte-identical simulation schedule.
func (s *System) beginResilience(aq *activeQuery, opts QueryOpts, region query.Region) int {
	dl := opts.Deadline
	if dl == 0 {
		dl = s.cfg.Deadline
	}
	if dl > 0 || s.cfg.Hedge.Enabled() {
		aq.outstanding = make([]pendingRegion, 0, 4)
	}
	tok := aq.newToken(region)
	if dl > 0 {
		aq.deadline = s.rt.AfterFunc(dl, func() { s.expireQuery(aq) })
	}
	return tok
}

// expireQuery ends a query at its deadline: the regions still
// outstanding become the Uncovered list and the query finishes with
// whatever results arrived, honestly marked incomplete.
func (s *System) expireQuery(aq *activeQuery) {
	if aq.finished {
		return
	}
	aq.expired = true
	for _, pr := range aq.outstanding {
		aq.uncovered = append(aq.uncovered, pr.reg.Clone())
	}
	aq.trace.add(TraceEvent{At: s.rt.Now(), Node: aq.srcID, Action: TraceDeadline,
		Hops: aq.stats.Hops})
	s.finish(aq)
}

// queryRegion converts a query center and range into the index-space
// hypercube region. The cube is widened by a relative epsilon: the
// contractive-mapping guarantee |d(x,l_i) - d(q,l_i)| <= d(x,q) holds
// exactly in real arithmetic but can be violated by one ulp in floats,
// and the exact-distance refinement removes any false positives the
// widening admits.
func queryRegion(ix *Index, center []float64, r float64) (query.Region, error) {
	cube := make([]lph.Bounds, len(center))
	for j, c := range center {
		b := ix.Part.Bounds(j)
		eps := 1e-9 * (1 + math.Abs(c) + r)
		cube[j] = lph.Bounds{Lo: b.Clamp(c - r - eps), Hi: b.Clamp(c + r + eps)}
	}
	return query.New(ix.Part, cube)
}

// routeAt is Algorithm 3 (QueryRouting) executing at node n with the
// query q at hop depth hops.
func (s *System) routeAt(n *IndexNode, aq *activeQuery, q query.Region, hops int, tok int) {
	if hops > s.cfg.MaxHops {
		aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceDrop,
			PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops})
		s.dropSubquery(aq, q, tok)
		return
	}
	aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceRoute,
		PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops})
	var list []pendingRegion
	if q.PreLen == lph.M {
		list = []pendingRegion{{tok: tok, reg: q}}
	} else {
		subs := query.Split(s.ix(aq).Part, q, q.PreLen+1)
		if len(subs) == 1 {
			// The query lies in one half: forward the refined query
			// (equivalent to forwarding q; the prefix is just longer).
			aq.moveToken(tok, subs[0])
			list = []pendingRegion{{tok: tok, reg: subs[0]}}
		} else {
			n1 := n.node.NextHop(s.ring(aq, subs[0].PreKey))
			n2 := n.node.NextHop(s.ring(aq, subs[1].PreKey))
			if n1 == n2 {
				// Both halves share the next hop: ship the whole query
				// onward as one unit (lowest-common-ancestor routing).
				list = []pendingRegion{{tok: tok, reg: q}}
			} else {
				// One region became two.
				aq.moveToken(tok, subs[0])
				tok2 := aq.newToken(subs[1])
				list = []pendingRegion{{tok: tok, reg: subs[0]}, {tok: tok2, reg: subs[1]}}
			}
		}
	}
	s.dispatch(n, aq, list, hops)
}

// sqUnit tracks one subquery region across delivery attempts. The
// delivered flag makes the receive path idempotent: duplicates caused
// by premature timeouts or lost acknowledgements are ignored, so each
// unit's token is settled exactly once.
type sqUnit struct {
	reg       query.Region
	tok       int
	delivered bool
}

// destKey identifies one dispatch destination and the mode the query
// is delivered in there (routing vs. surrogate refinement).
type destKey struct {
	id        chord.ID
	surrogate bool
}

// dispatch groups subqueries by destination and ships each group as a
// single query message (the byte model charges per subquery).
//
// routeAt dispatches at most two regions per hop, so the grouping uses
// linear scans over fixed-size arrays instead of a map: one backing
// sqUnit allocation for the whole list, and first-seen destination
// order (deterministic, same as the previous map+order form).
func (s *System) dispatch(n *IndexNode, aq *activeQuery, list []pendingRegion, hops int) {
	arr := make([]sqUnit, 0, len(list))
	var (
		dests  [2]destKey
		groups [2][]*sqUnit
		nd     int
	)
	for _, sq := range list {
		rk := s.ring(aq, sq.reg.PreKey)
		if n.node.OwnsKey(rk) {
			// This node is itself the surrogate for the subquery.
			s.surrogateRefine(n, aq, sq.reg, hops, sq.tok)
			continue
		}
		nh := n.node.NextHop(rk)
		var d destKey
		if nh == n.node.ID() {
			// We are the predecessor of the prefix key: the successor
			// is the surrogate (Algorithm 3 line 17).
			d = destKey{id: n.node.Successor(), surrogate: true}
		} else {
			d = destKey{id: nh, surrogate: false}
		}
		if s.cfg.Hedge.Enabled() && s.suspicion[d.id] >= s.cfg.Hedge.SuspicionThreshold {
			if alt, ok := s.suspectAlternate(aq, d); ok {
				// Each avoidance spends one unit of suspicion, so a
				// recovered node is probed again after at most
				// SuspicionThreshold redirections.
				s.suspicion[d.id]--
				d = alt
			}
		}
		arr = append(arr, sqUnit{reg: sq.reg, tok: sq.tok})
		gi := -1
		for i := 0; i < nd; i++ {
			if dests[i] == d {
				gi = i
				break
			}
		}
		if gi < 0 {
			if nd == len(dests) {
				panic("core: dispatch list exceeds two destinations")
			}
			dests[nd] = d
			nd++
			gi = nd - 1
		}
		groups[gi] = append(groups[gi], &arr[len(arr)-1])
	}
	for i := 0; i < nd; i++ {
		s.ship(n, aq, dests[i].id, dests[i].surrogate, groups[i], hops, 0, false)
	}
}

// suspectAlternate picks the replacement destination for a suspected-
// dead node: its successor. Routing-mode deliveries can continue at
// any node, so the redirection is always sound there; a surrogate-mode
// delivery is answered from the alternate's local store, which is only
// sound when the index keeps replicas.
func (s *System) suspectAlternate(aq *activeQuery, d destKey) (destKey, bool) {
	in, ok := s.nodes[d.id]
	if !ok {
		return destKey{}, false
	}
	succ := in.node.Successor()
	if succ == d.id {
		return destKey{}, false
	}
	if d.surrogate && s.replicated[aq.ix.Name] < 2 {
		return destKey{}, false
	}
	return destKey{id: succ, surrogate: d.surrogate}, true
}

// ship transmits one query message carrying the given subquery units to
// dest. Attempt 0 is the original transmission. With the reliability
// layer off this is fire-and-forget: a loss surfaces through the failed
// callback and the units are dropped. With it on, the receiver
// acknowledges the message; if the ack does not arrive within the
// retransmission timeout, shipTimeout re-resolves each still-undelivered
// unit's owner and retransmits with exponential backoff. hedge marks a
// hedged duplicate: it is traced as such and never arms its own hedge
// timer (hedges do not cascade).
func (s *System) ship(n *IndexNode, aq *activeQuery, dest chord.ID, surrogate bool, units []*sqUnit, hops, attempt int, hedge bool) {
	undelivered := 0
	for _, u := range units {
		if !u.delivered {
			undelivered++
		}
	}
	if undelivered == 0 {
		return
	}
	live := units
	if undelivered != len(units) {
		live = make([]*sqUnit, 0, undelivered)
		for _, u := range units {
			if !u.delivered {
				live = append(live, u)
			}
		}
	}
	var bytes int
	var payload []byte
	if s.cfg.EncodeWire {
		// Real binary encoding: the receiver works on the decoded
		// (quantization-widened) cubes.
		regions := make([]query.Region, len(live))
		for i, u := range live {
			regions[i] = u.reg
		}
		data, err := wire.EncodeQuery(aq.ix.Part, wire.QueryMessage{
			Source:     uint32(aq.srcID),
			Subqueries: regions,
		})
		if err != nil {
			for _, u := range live {
				u.delivered = true
				s.dropSubquery(aq, u.reg, u.tok)
			}
			return
		}
		payload, bytes = data, len(data)
	} else {
		bytes = s.cfg.Msg.QueryMsgBytes(len(live), aq.ix.Part.K())
	}
	aq.stats.QueryMsgs++
	aq.stats.QueryBytes += int64(bytes)
	action := TraceForward
	switch {
	case hedge:
		action = TraceHedge
		s.HedgesIssued += len(live)
		aq.stats.Hedges += len(live)
	case attempt > 0:
		action = TraceRetry
		s.RetriesIssued++
		aq.stats.Retries++
	}
	for _, u := range live {
		aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: action,
			PreKey: u.reg.PreKey, PreLen: u.reg.PreLen, Hops: hops, Dest: dest})
	}
	deliver := func(dst *chord.Node) {
		in := s.nodes[dst.ID()]
		var use []query.Region // decoded cubes; nil = use the units' own regions
		if payload != nil {
			decoded, err := wire.DecodeQuery(aq.ix.Part, payload)
			if err != nil {
				for _, u := range live {
					if !u.delivered {
						u.delivered = true
						s.dropSubquery(aq, u.reg, u.tok)
					}
				}
				return
			}
			use = decoded.Subqueries
		}
		for i, u := range live {
			if u.delivered {
				continue // duplicate of an already-processed unit
			}
			u.delivered = true
			if aq.stale(u.tok) {
				continue // settled elsewhere: a hedge won, or the deadline hit
			}
			if attempt > 0 {
				s.RecoveredSubqueries++
			}
			reg := u.reg
			if use != nil {
				reg = use[i]
			}
			if surrogate {
				s.surrogateRefine(in, aq, reg, hops+1, u.tok)
			} else {
				s.routeAt(in, aq, reg, hops+1, u.tok)
			}
		}
	}
	// With EncodeWire on, the message's binary encoding travels through
	// the transport (live transports frame and ship it; the simulated
	// transport has charged its size). Without it only the size model's
	// byte count exists.
	sendQuery := func(onDeliver func(*chord.Node), onFail func()) {
		if payload != nil {
			s.net.SendPayload(n.node, dest, chord.KindQuery, payload, onDeliver, onFail)
		} else {
			s.net.SendOrFail(n.node, dest, chord.KindQuery, bytes, onDeliver, onFail)
		}
	}
	if attempt == 0 && !hedge && s.cfg.Hedge.Enabled() {
		s.armHedge(n, aq, dest, live, hops)
	}
	if !s.cfg.Retry.Enabled() {
		sendQuery(deliver, func() {
			for _, u := range live {
				if !u.delivered {
					u.delivered = true
					s.dropSubquery(aq, u.reg, u.tok)
				}
			}
		})
		return
	}
	timer := s.rt.AfterFunc(s.retryTimeout(attempt), func() {
		s.shipTimeout(n, aq, dest, live, hops, attempt)
	})
	sendQuery(func(dst *chord.Node) {
		// Acknowledge first (duplicates too: the sender's timer must
		// stop either way), then process the undelivered units.
		s.net.SendOrFail(dst, n.node.ID(), chord.KindAck, s.cfg.Retry.AckBytes, func(*chord.Node) {
			timer.Stop()
			s.unsuspect(dest)
		}, nil)
		deliver(dst)
	}, nil)
}

// armHedge schedules the hedge check for a freshly shipped group of
// subquery units: any still outstanding after the hedge delay get a
// duplicate shipped toward their region owner's replica.
func (s *System) armHedge(n *IndexNode, aq *activeQuery, dest chord.ID, units []*sqUnit, hops int) {
	if aq.stats.Hedges >= s.cfg.Hedge.MaxPerQuery {
		return
	}
	s.rt.AfterFunc(s.cfg.Hedge.Delay, func() {
		s.hedgeFire(n, aq, dest, units, hops)
	})
}

// hedgeFire runs when a group's hedge delay elapses. Each unit whose
// token is still outstanding is duplicated to the first replica of its
// region's current owner (the owner itself when the index keeps no
// replicas) in surrogate mode, and the original destination gains one
// unit of suspicion. Token settlement guarantees whichever copy
// answers first wins and the other is ignored.
func (s *System) hedgeFire(n *IndexNode, aq *activeQuery, dest chord.ID, units []*sqUnit, hops int) {
	if aq.finished || !n.node.Alive() {
		return
	}
	var (
		groups map[chord.ID][]*sqUnit
		order  []chord.ID // deterministic hedge-ship order
		queued int
	)
	suspected := false
	for _, u := range units {
		if !aq.stillOutstanding(u.tok) {
			continue
		}
		if aq.stats.Hedges+queued >= s.cfg.Hedge.MaxPerQuery {
			break
		}
		if !suspected {
			suspected = true
			s.suspect(dest)
		}
		owner, err := s.net.SuccessorID(s.ring(aq, u.reg.PreKey))
		if err != nil {
			continue
		}
		target := owner
		if s.replicated[aq.ix.Name] >= 2 {
			if in, ok := s.nodes[owner]; ok {
				if succ := in.node.Successor(); succ != owner {
					target = succ
				}
			}
		}
		if target == n.node.ID() {
			continue // we are the alternate ourselves: nothing to hedge to
		}
		if groups == nil {
			groups = make(map[chord.ID][]*sqUnit)
		}
		if _, seen := groups[target]; !seen {
			order = append(order, target)
		}
		// A fresh unit: the original keeps its own delivered flag, the
		// shared token arbitrates which copy's answer counts. The extra
		// chain keeps a later primary-side loss from settling a token
		// this hedge can still answer.
		groups[target] = append(groups[target], &sqUnit{reg: u.reg, tok: u.tok})
		aq.addChain(u.tok)
		queued++
	}
	for _, t := range order {
		s.ship(n, aq, t, true, groups[t], hops, 0, true)
	}
}

// shipTimeout runs when a query message's ack timer fires: any units
// still undelivered are re-resolved to the current successor of their
// prefix key — under ReplicateAll placement, the first live replica of
// a crashed owner — and retransmitted, or dropped once retries are
// exhausted (or the sender itself died).
func (s *System) shipTimeout(n *IndexNode, aq *activeQuery, dest chord.ID, units []*sqUnit, hops, attempt int) {
	var remaining []*sqUnit
	for _, u := range units {
		if u.delivered {
			continue
		}
		if aq.stale(u.tok) {
			u.delivered = true // settled elsewhere: nothing left to retry
			continue
		}
		remaining = append(remaining, u)
	}
	if len(remaining) == 0 {
		return
	}
	s.suspect(dest)
	if attempt >= s.cfg.Retry.MaxRetries || !n.node.Alive() {
		for _, u := range remaining {
			u.delivered = true
			aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceDrop,
				PreKey: u.reg.PreKey, PreLen: u.reg.PreLen, Hops: hops})
			s.dropSubquery(aq, u.reg, u.tok)
		}
		return
	}
	// The successor of the prefix key owns it, so the retransmission is
	// delivered in surrogate mode regardless of how the original was
	// routed.
	groups := make(map[chord.ID][]*sqUnit)
	var order []chord.ID // deterministic retransmission order
	for _, u := range remaining {
		owner, err := s.net.SuccessorID(s.ring(aq, u.reg.PreKey))
		if err != nil {
			u.delivered = true
			s.dropSubquery(aq, u.reg, u.tok)
			continue
		}
		if _, seen := groups[owner]; !seen {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], u)
	}
	for _, dst := range order {
		s.ship(n, aq, dst, true, groups[dst], hops, attempt+1, false)
	}
}

// surrogateRefine is Algorithm 5 executing at node n: the node routes
// onward the parts of the query region whose keys lie beyond the key
// range it covers, and answers the remainder from its local store.
//
// The decomposition is the closed form of the paper's recursion: with
// vid the node's identifier in the index's unrotated key space, the
// keys of the query cuboid above vid are exactly the union, over every
// zero-bit position z of vid past the prefix, of the sibling cuboid
// obtained by setting bit z (Algorithm 5 lines 5–18 walk these
// positions one at a time). Each sibling is clipped to the query cube
// and re-enters QueryRouting; everything else is covered by this node.
// Unlike the paper's pseudocode — which retags the query to
// prefix(vid, j-1) and thereby drops the cube's extent inside the
// *lower* sibling cuboids it also covers — the local answer scans the
// full incoming cube. Entries are partitioned across nodes by key, so
// the wider local scan cannot duplicate results from other nodes.
func (s *System) surrogateRefine(n *IndexNode, aq *activeQuery, q query.Region, hops int, tok int) {
	if hops > s.cfg.MaxHops {
		aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceDrop,
			PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops})
		s.dropSubquery(aq, q, tok)
		return
	}
	aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceRefine,
		PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops})
	part := aq.ix.Part
	vid := part.Unring(n.node.ID()) // node id in this index's unrotated key space
	if lph.SamePrefix(q.PreKey, vid, q.PreLen) {
		// The node sits inside the query cuboid: keys above vid belong
		// to other nodes. Route each maximal sub-cuboid above vid.
		for z := lph.FirstZeroBitAfter(vid, q.PreLen); z != 0; z = lph.FirstZeroBitAfter(vid, z) {
			upper := lph.SetBit(lph.Prefix(vid, z-1), z)
			if sub, ok := query.Restrict(part, q, upper, z); ok {
				subTok := aq.newToken(sub)
				s.routeAt(n, aq, sub, hops, subTok)
			}
		}
	}
	// When the prefixes differ, successor(prekey) lies beyond the
	// cuboid, so no node exists inside it and this node covers the
	// whole region (Algorithm 5 lines 1–3). Either way, answer the
	// covered part locally.
	s.answerLocal(n, aq, q, hops, tok)
}

// answerLocal resolves one subquery against the node's local store and
// ships the result back to the querier. The store scan and the
// exact-distance refinement are the query's CPU cost: with shard
// executors (runtime.Sharder) they run on the shard owning the node's
// data while everything touching shared query state stays on the
// protocol executor.
func (s *System) answerLocal(n *IndexNode, aq *activeQuery, q query.Region, hops int, tok int) {
	if hops > aq.stats.Hops {
		aq.stats.Hops = hops
	}
	if s.sharded() {
		// Per-node scratch: a node's scans are serialized on its shard.
		// The work closure only touches the node's own store and the
		// query's immutable fields (payload, Dist, topK, r — Dist must
		// be pure); the done closure rejoins the protocol executor.
		var local []Result
		var ncands int
		s.shard.ExecShard(uint64(n.node.ID()), func() {
			n.scanBuf = n.st.Scan(aq.ix.Name, q, n.scanBuf[:0])
			local, ncands = refineLocal(aq, n.scanBuf)
		}, func() {
			s.answerDone(n, aq, q, hops, tok, local, ncands)
		})
		return
	}
	// Scan into the system-wide scratch buffer: the candidate list is
	// fully consumed below before any other scan can run (the engine is
	// single-threaded and Dist callbacks never re-enter the system).
	s.scanBuf = n.st.Scan(aq.ix.Name, q, s.scanBuf[:0])
	local, ncands := refineLocal(aq, s.scanBuf)
	s.answerDone(n, aq, q, hops, tok, local, ncands)
}

// refineLocal applies exact-distance refinement (and the paper's
// per-node top-k cut) to a scan's candidates. It only reads the
// query's immutable fields, so it is safe on a shard executor.
func refineLocal(aq *activeQuery, cands []Entry) (local []Result, ncands int) {
	ncands = len(cands)
	for _, e := range cands {
		d := aq.ix.Dist(aq.payload, e.Obj)
		if aq.topK == 0 && d > aq.r {
			continue // exact range semantics
		}
		local = append(local, Result{Obj: e.Obj, Dist: d})
	}
	if aq.topK > 0 && len(local) > aq.topK {
		// The paper's protocol: each index node returns its k nearest
		// local results only.
		sort.Slice(local, func(i, j int) bool { return local[i].Dist < local[j].Dist })
		local = local[:aq.topK]
	}
	return local, ncands
}

// answerDone is answerLocal's protocol-executor tail: accounting,
// tracing, and result shipment for one locally answered subquery.
func (s *System) answerDone(n *IndexNode, aq *activeQuery, q query.Region, hops int, tok int, local []Result, ncands int) {
	aq.stats.Candidates += ncands
	nodeID := n.node.ID()
	aq.trace.add(TraceEvent{At: s.rt.Now(), Node: nodeID, Action: TraceAnswer,
		PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops,
		Candidates: ncands, Returned: len(local)})
	if nodeID == aq.srcID {
		// The querier is itself an index node for this region.
		s.mergeResult(aq, nodeID, local, tok)
		return
	}
	var bytes int
	var payload []byte
	if s.cfg.EncodeWire && aq.ix.MaxDist > 0 {
		// Real binary encoding: distances are quantized against the
		// index's maximum distance (rounded up, never understated).
		entries := make([]wire.ResultEntry, len(local))
		for i, r := range local {
			entries[i] = wire.ResultEntry{Obj: int32(r.Obj), Dist: r.Dist}
		}
		data, err := wire.EncodeResult(entries, aq.ix.MaxDist)
		if err == nil {
			if decoded, derr := wire.DecodeResult(data, aq.ix.MaxDist); derr == nil {
				for i, e := range decoded {
					local[i] = Result{Obj: ObjectID(e.Obj), Dist: e.Dist}
				}
			}
			payload, bytes = data, len(data)
		} else {
			bytes = s.cfg.Msg.ResultMsgBytes(len(local))
		}
	} else {
		bytes = s.cfg.Msg.ResultMsgBytes(len(local))
	}
	aq.stats.ResultMsgs++
	aq.stats.ResultBytes += int64(bytes)
	if s.cfg.Retry.Enabled() {
		s.sendResultReliably(n, aq, nodeID, local, q, tok, payload, bytes)
		return
	}
	s.sendResult(n, aq, payload, bytes, func(*chord.Node) {
		s.mergeResult(aq, nodeID, local, tok)
	}, func() {
		// The querier itself left (only possible under heavy churn).
		s.dropSubquery(aq, q, tok)
	})
}

// sendResult ships one result message to the querier, through the
// transport with its wire encoding when one exists.
func (s *System) sendResult(n *IndexNode, aq *activeQuery, payload []byte, bytes int, deliver func(*chord.Node), failed func()) {
	if payload != nil {
		s.net.SendPayload(n.node, aq.srcID, chord.KindResult, payload, deliver, failed)
		return
	}
	s.net.SendOrFail(n.node, aq.srcID, chord.KindResult, bytes, deliver, failed)
}

// sendResultReliably ships one result message to the querier with the
// ack/timeout/retry state machine. Unlike subqueries the destination is
// fixed — a result only makes sense at the querier — so exhausted
// retries (the querier or the answering node died) surface as a dropped
// subquery.
func (s *System) sendResultReliably(n *IndexNode, aq *activeQuery, from chord.ID, local []Result, q query.Region, tok int, payload []byte, bytes int) {
	delivered := false
	var send func(attempt int)
	send = func(attempt int) {
		if attempt > 0 {
			s.RetriesIssued++
			aq.stats.Retries++
			aq.stats.ResultMsgs++
			aq.stats.ResultBytes += int64(bytes)
		}
		timer := s.rt.AfterFunc(s.retryTimeout(attempt), func() {
			if delivered {
				return
			}
			if aq.stale(tok) {
				delivered = true // settled elsewhere: stop retrying
				return
			}
			if attempt >= s.cfg.Retry.MaxRetries || !n.node.Alive() {
				delivered = true
				s.dropSubquery(aq, q, tok)
				return
			}
			send(attempt + 1)
		})
		s.sendResult(n, aq, payload, bytes, func(dst *chord.Node) {
			s.net.SendOrFail(dst, n.node.ID(), chord.KindAck, s.cfg.Retry.AckBytes, func(*chord.Node) {
				timer.Stop()
			}, nil)
			if delivered {
				return // duplicate from a premature timeout
			}
			delivered = true
			if attempt > 0 {
				s.RecoveredSubqueries++
			}
			s.mergeResult(aq, from, local, tok)
		}, nil)
	}
	send(0)
}

// mergeResult runs at the querier when one index node's answer
// arrives. Settling the token first makes the merge idempotent: a
// hedged duplicate or post-deadline straggler is ignored entirely, so
// every outstanding region is merged exactly once.
func (s *System) mergeResult(aq *activeQuery, from chord.ID, local []Result, tok int) {
	if aq.finished {
		return // straggler after deadline expiry
	}
	if !aq.settle(tok) {
		return // hedged duplicate: the other copy already answered
	}
	s.unsuspect(from)
	now := s.rt.Now()
	if !aq.gotFirst {
		aq.gotFirst = true
		aq.stats.FirstResult = now
	}
	aq.answered[from] = true
	for _, r := range local {
		if prev, ok := aq.results[r.Obj]; !ok || r.Dist < prev {
			aq.results[r.Obj] = r.Dist
		}
	}
	aq.stats.LastResult = now
	if aq.pending == 0 {
		s.finish(aq)
	}
}

// dropSubquery accounts a lost subquery: the region joins the query's
// Uncovered list — so the caller sees exactly which part of the index
// space went unanswered instead of a silently short result — and the
// query completes if it was the last one outstanding.
func (s *System) dropSubquery(aq *activeQuery, reg query.Region, tok int) {
	if aq.finished {
		return
	}
	if aq.tracking() && !aq.lastChain(tok) {
		return // another delivery chain (a hedge) may still answer
	}
	if !aq.settle(tok) {
		return // a hedged duplicate already answered this region
	}
	s.DroppedSubqueries++
	aq.dropped++
	aq.uncovered = append(aq.uncovered, reg.Clone())
	if aq.pending == 0 {
		s.finish(aq)
	}
}

func (s *System) finish(aq *activeQuery) {
	if aq.finished {
		return
	}
	aq.finished = true
	if aq.admitted {
		s.active-- // release the admission-gate slot
	}
	if aq.deadline != nil {
		aq.deadline.Stop()
	}
	out := make([]Result, 0, len(aq.results))
	//lint:allow maporder the sort below totally orders results (Dist, then Obj)
	for obj, d := range aq.results {
		out = append(out, Result{Obj: obj, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Obj < out[j].Obj
	})
	if aq.topK > 0 && len(out) > aq.topK {
		out = out[:aq.topK]
	}
	if !aq.gotFirst {
		// No results arrived (all dropped); pin times to issue time.
		aq.stats.FirstResult = aq.stats.Issued
		aq.stats.LastResult = aq.stats.Issued
	}
	aq.stats.IndexNodes = len(aq.answered)
	if aq.done != nil {
		aq.done(&QueryResult{
			Results:           out,
			Stats:             aq.stats,
			Trace:             aq.trace,
			Complete:          aq.dropped == 0 && !aq.expired,
			DroppedSubqueries: aq.dropped,
			Uncovered:         aq.uncovered,
		})
	}
}

// ix returns the query's index scheme.
func (s *System) ix(aq *activeQuery) *Index { return aq.ix }

// ring maps an unrotated prefix key to its on-ring position for the
// query's index.
func (s *System) ring(aq *activeQuery, prekey lph.Key) chord.ID {
	return aq.ix.Part.Ring(prekey)
}

// NaiveRangeQuery is the §3.3 strawman the paper argues against: the
// querier decomposes the range into per-node subqueries and performs
// an independent Chord lookup + direct query message for each
// responsible node. Its cost scales with query selectivity; the
// embedded-tree router shares prefixes instead. Results are identical;
// only the message complexity differs.
func (s *System) NaiveRangeQuery(indexName string, srcID chord.ID, payload any, center []float64, r float64, opts QueryOpts, done func(*QueryResult)) error {
	ix, err := s.lookupIndex(indexName)
	if err != nil {
		return err
	}
	src, ok := s.nodes[srcID]
	if !ok {
		return fmt.Errorf("core: unknown source node %#x", srcID)
	}
	region, err := queryRegion(ix, center, r)
	if err != nil {
		return err
	}
	// Decompose until every subregion's key span has a single owner.
	// The querier cannot know ownership, so it refines pessimistically:
	// split to sibling cuboids and stop when a lookup-resolved owner
	// covers the span (each subregion costs one full Chord lookup).
	s.nextQ++
	aq := &activeQuery{
		id:       s.nextQ,
		ix:       ix,
		payload:  payload,
		r:        r,
		topK:     opts.TopK,
		srcID:    srcID,
		results:  make(map[ObjectID]float64),
		answered: make(map[chord.ID]bool),
		done:     done,
	}
	aq.stats.Issued = s.rt.Now()

	var pieces []query.Region
	var decompose func(q query.Region)
	decompose = func(q query.Region) {
		lo, hi := lph.CuboidSpan(q.PreKey, q.PreLen)
		ringLo := ix.Part.Ring(lo)
		ownerLo, errLo := s.net.SuccessorID(ringLo)
		// The span [lo, hi) has a single owner iff the successor of its
		// first key reaches at least its last key clockwise. (Comparing
		// successor(lo) with successor(hi-1) alone is fooled by spans
		// that wrap the whole ring, e.g. an unrefined prefix.)
		spanLen := hi - lo // wraps to 0 for the whole ring
		single := errLo == nil && (s.net.Size() == 1 ||
			(spanLen != 0 && chord.Dist(ringLo, ownerLo) >= spanLen-1))
		if single || q.PreLen == lph.M {
			pieces = append(pieces, q)
			return
		}
		for _, sq := range query.Split(ix.Part, q, q.PreLen+1) {
			decompose(sq)
		}
	}
	decompose(region)
	if len(pieces) == 0 {
		s.finish(aq)
		return nil
	}
	dl := opts.Deadline
	if dl == 0 {
		dl = s.cfg.Deadline
	}
	if dl > 0 || s.cfg.Hedge.Enabled() {
		aq.outstanding = make([]pendingRegion, 0, len(pieces))
	}
	toks := make([]int, len(pieces))
	for i, sq := range pieces {
		toks[i] = aq.newToken(sq)
	}
	if dl > 0 {
		aq.deadline = s.rt.AfterFunc(dl, func() { s.expireQuery(aq) })
	}
	k := ix.Part.K()
	for i, sq := range pieces {
		sq, tok := sq, toks[i]
		rk := ix.Part.Ring(sq.PreKey)
		// One full Chord lookup per piece, then one direct query
		// message to the owner.
		src.node.FindSuccessor(rk, s.cfg.Msg.QueryMsgBytes(1, k), func(owner chord.ID, hops int) {
			bytes := s.cfg.Msg.QueryMsgBytes(1, k)
			aq.stats.QueryMsgs += hops + 1
			aq.stats.QueryBytes += int64(bytes * (hops + 1))
			answered := false // idempotence against duplicated query frames
			s.net.SendOrFail(src.node, owner, chord.KindQuery, bytes, func(dst *chord.Node) {
				if answered {
					return
				}
				answered = true
				s.answerLocal(s.nodes[dst.ID()], aq, sq, hops+1, tok)
			}, func() {
				if answered {
					return
				}
				answered = true
				s.dropSubquery(aq, sq, tok)
			})
		})
	}
	return nil
}
