package core

import (
	"fmt"
	"math"
	"sort"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
	"landmarkdht/internal/wire"
)

// activeQuery tracks one in-flight range query across the system.
type activeQuery struct {
	id      int
	ix      *Index
	payload any
	r       float64
	topK    int
	srcID   chord.ID
	stats   QueryStats
	// pending counts subqueries whose results have not yet reached
	// the querier; the query completes when it hits zero.
	pending  int
	results  map[ObjectID]float64
	answered map[chord.ID]bool
	done     func(*QueryResult)
	finished bool
	gotFirst bool
	trace    *Trace
}

// QueryOpts tunes one query.
type QueryOpts struct {
	// TopK, when positive, makes every index node return its TopK
	// nearest candidates (the paper's recall protocol with k = 10) and
	// the final result the merged TopK. When zero the query is an
	// exact range query: results are candidates with distance <= r.
	TopK int
	// Trace records the query's distributed execution (routing steps,
	// splits, refinements, local answers) in QueryResult.Trace.
	Trace bool
}

// RangeQuery issues the near-neighbor query (payload, r) on index
// indexName from the node srcID. center must be the query's index-
// space point (the embedding of payload); the system converts it into
// the hypercube range query of §3.1 and resolves it with the
// embedded-tree routing of §3.3. done fires when all index-node
// results have arrived.
//
// The call only schedules work; drive the sim.Engine to completion.
func (s *System) RangeQuery(indexName string, srcID chord.ID, payload any, center []float64, r float64, opts QueryOpts, done func(*QueryResult)) error {
	ix, err := s.lookupIndex(indexName)
	if err != nil {
		return err
	}
	src, ok := s.nodes[srcID]
	if !ok {
		return fmt.Errorf("core: unknown source node %#x", srcID)
	}
	if len(center) != ix.Part.K() {
		return fmt.Errorf("core: query center has %d coordinates, want %d", len(center), ix.Part.K())
	}
	if r < 0 {
		return fmt.Errorf("core: negative query range %v", r)
	}
	region, err := queryRegion(ix, center, r)
	if err != nil {
		return err
	}
	s.nextQ++
	aq := &activeQuery{
		id:       s.nextQ,
		ix:       ix,
		payload:  payload,
		r:        r,
		topK:     opts.TopK,
		srcID:    srcID,
		pending:  1,
		results:  make(map[ObjectID]float64),
		answered: make(map[chord.ID]bool),
		done:     done,
	}
	if opts.Trace {
		aq.trace = &Trace{}
	}
	aq.stats.Issued = s.rt.Now()
	s.routeAt(src, aq, region, 0)
	return nil
}

// queryRegion converts a query center and range into the index-space
// hypercube region. The cube is widened by a relative epsilon: the
// contractive-mapping guarantee |d(x,l_i) - d(q,l_i)| <= d(x,q) holds
// exactly in real arithmetic but can be violated by one ulp in floats,
// and the exact-distance refinement removes any false positives the
// widening admits.
func queryRegion(ix *Index, center []float64, r float64) (query.Region, error) {
	cube := make([]lph.Bounds, len(center))
	for j, c := range center {
		b := ix.Part.Bounds(j)
		eps := 1e-9 * (1 + math.Abs(c) + r)
		cube[j] = lph.Bounds{Lo: b.Clamp(c - r - eps), Hi: b.Clamp(c + r + eps)}
	}
	return query.New(ix.Part, cube)
}

// routeAt is Algorithm 3 (QueryRouting) executing at node n with the
// query q at hop depth hops.
func (s *System) routeAt(n *IndexNode, aq *activeQuery, q query.Region, hops int) {
	if hops > s.cfg.MaxHops {
		aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceDrop,
			PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops})
		s.dropSubquery(aq)
		return
	}
	aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceRoute,
		PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops})
	var list []query.Region
	if q.PreLen == lph.M {
		list = []query.Region{q}
	} else {
		subs := query.Split(s.ix(aq).Part, q, q.PreLen+1)
		if len(subs) == 1 {
			// The query lies in one half: forward the refined query
			// (equivalent to forwarding q; the prefix is just longer).
			list = subs
		} else {
			n1 := n.node.NextHop(s.ring(aq, subs[0].PreKey))
			n2 := n.node.NextHop(s.ring(aq, subs[1].PreKey))
			if n1 == n2 {
				// Both halves share the next hop: ship the whole query
				// onward as one unit (lowest-common-ancestor routing).
				list = []query.Region{q}
			} else {
				aq.pending++ // one region became two
				list = subs
			}
		}
	}
	s.dispatch(n, aq, list, hops)
}

// sqUnit tracks one subquery region across delivery attempts. The
// delivered flag makes the receive path idempotent: duplicates caused
// by premature timeouts or lost acknowledgements are ignored, so
// aq.pending is decremented exactly once per unit.
type sqUnit struct {
	reg       query.Region
	delivered bool
}

// dispatch groups subqueries by destination and ships each group as a
// single query message (the byte model charges per subquery).
//
// routeAt dispatches at most two regions per hop, so the grouping uses
// linear scans over fixed-size arrays instead of a map: one backing
// sqUnit allocation for the whole list, and first-seen destination
// order (deterministic, same as the previous map+order form).
func (s *System) dispatch(n *IndexNode, aq *activeQuery, list []query.Region, hops int) {
	type destKey struct {
		id        chord.ID
		surrogate bool
	}
	arr := make([]sqUnit, 0, len(list))
	var (
		dests  [2]destKey
		groups [2][]*sqUnit
		nd     int
	)
	for _, sq := range list {
		rk := s.ring(aq, sq.PreKey)
		if n.node.OwnsKey(rk) {
			// This node is itself the surrogate for the subquery.
			s.surrogateRefine(n, aq, sq, hops)
			continue
		}
		nh := n.node.NextHop(rk)
		var d destKey
		if nh == n.node.ID() {
			// We are the predecessor of the prefix key: the successor
			// is the surrogate (Algorithm 3 line 17).
			d = destKey{id: n.node.Successor(), surrogate: true}
		} else {
			d = destKey{id: nh, surrogate: false}
		}
		arr = append(arr, sqUnit{reg: sq})
		gi := -1
		for i := 0; i < nd; i++ {
			if dests[i] == d {
				gi = i
				break
			}
		}
		if gi < 0 {
			if nd == len(dests) {
				panic("core: dispatch list exceeds two destinations")
			}
			dests[nd] = d
			nd++
			gi = nd - 1
		}
		groups[gi] = append(groups[gi], &arr[len(arr)-1])
	}
	for i := 0; i < nd; i++ {
		s.ship(n, aq, dests[i].id, dests[i].surrogate, groups[i], hops, 0)
	}
}

// ship transmits one query message carrying the given subquery units to
// dest. Attempt 0 is the original transmission. With the reliability
// layer off this is fire-and-forget: a loss surfaces through the failed
// callback and the units are dropped. With it on, the receiver
// acknowledges the message; if the ack does not arrive within the
// retransmission timeout, shipTimeout re-resolves each still-undelivered
// unit's owner and retransmits with exponential backoff.
func (s *System) ship(n *IndexNode, aq *activeQuery, dest chord.ID, surrogate bool, units []*sqUnit, hops, attempt int) {
	undelivered := 0
	for _, u := range units {
		if !u.delivered {
			undelivered++
		}
	}
	if undelivered == 0 {
		return
	}
	live := units
	if undelivered != len(units) {
		live = make([]*sqUnit, 0, undelivered)
		for _, u := range units {
			if !u.delivered {
				live = append(live, u)
			}
		}
	}
	var bytes int
	var payload []byte
	if s.cfg.EncodeWire {
		// Real binary encoding: the receiver works on the decoded
		// (quantization-widened) cubes.
		regions := make([]query.Region, len(live))
		for i, u := range live {
			regions[i] = u.reg
		}
		data, err := wire.EncodeQuery(aq.ix.Part, wire.QueryMessage{
			Source:     uint32(aq.srcID),
			Subqueries: regions,
		})
		if err != nil {
			for _, u := range live {
				u.delivered = true
				s.dropSubquery(aq)
			}
			return
		}
		payload, bytes = data, len(data)
	} else {
		bytes = s.cfg.Msg.QueryMsgBytes(len(live), aq.ix.Part.K())
	}
	aq.stats.QueryMsgs++
	aq.stats.QueryBytes += int64(bytes)
	action := TraceForward
	if attempt > 0 {
		action = TraceRetry
		s.RetriesIssued++
		aq.stats.Retries++
	}
	for _, u := range live {
		aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: action,
			PreKey: u.reg.PreKey, PreLen: u.reg.PreLen, Hops: hops, Dest: dest})
	}
	deliver := func(dst *chord.Node) {
		in := s.nodes[dst.ID()]
		var use []query.Region // decoded cubes; nil = use the units' own regions
		if payload != nil {
			decoded, err := wire.DecodeQuery(aq.ix.Part, payload)
			if err != nil {
				for _, u := range live {
					if !u.delivered {
						u.delivered = true
						s.dropSubquery(aq)
					}
				}
				return
			}
			use = decoded.Subqueries
		}
		for i, u := range live {
			if u.delivered {
				continue // duplicate of an already-processed unit
			}
			u.delivered = true
			if attempt > 0 {
				s.RecoveredSubqueries++
			}
			reg := u.reg
			if use != nil {
				reg = use[i]
			}
			if surrogate {
				s.surrogateRefine(in, aq, reg, hops+1)
			} else {
				s.routeAt(in, aq, reg, hops+1)
			}
		}
	}
	// With EncodeWire on, the message's binary encoding travels through
	// the transport (live transports frame and ship it; the simulated
	// transport has charged its size). Without it only the size model's
	// byte count exists.
	sendQuery := func(onDeliver func(*chord.Node), onFail func()) {
		if payload != nil {
			s.net.SendPayload(n.node, dest, chord.KindQuery, payload, onDeliver, onFail)
		} else {
			s.net.SendOrFail(n.node, dest, chord.KindQuery, bytes, onDeliver, onFail)
		}
	}
	if !s.cfg.Retry.Enabled() {
		sendQuery(deliver, func() {
			for _, u := range live {
				if !u.delivered {
					u.delivered = true
					s.dropSubquery(aq)
				}
			}
		})
		return
	}
	timer := s.rt.AfterFunc(s.retryTimeout(attempt), func() {
		s.shipTimeout(n, aq, live, hops, attempt)
	})
	sendQuery(func(dst *chord.Node) {
		// Acknowledge first (duplicates too: the sender's timer must
		// stop either way), then process the undelivered units.
		s.net.SendOrFail(dst, n.node.ID(), chord.KindAck, s.cfg.Retry.AckBytes, func(*chord.Node) {
			timer.Stop()
		}, nil)
		deliver(dst)
	}, nil)
}

// shipTimeout runs when a query message's ack timer fires: any units
// still undelivered are re-resolved to the current successor of their
// prefix key — under ReplicateAll placement, the first live replica of
// a crashed owner — and retransmitted, or dropped once retries are
// exhausted (or the sender itself died).
func (s *System) shipTimeout(n *IndexNode, aq *activeQuery, units []*sqUnit, hops, attempt int) {
	var remaining []*sqUnit
	for _, u := range units {
		if !u.delivered {
			remaining = append(remaining, u)
		}
	}
	if len(remaining) == 0 {
		return
	}
	if attempt >= s.cfg.Retry.MaxRetries || !n.node.Alive() {
		for _, u := range remaining {
			u.delivered = true
			aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceDrop,
				PreKey: u.reg.PreKey, PreLen: u.reg.PreLen, Hops: hops})
			s.dropSubquery(aq)
		}
		return
	}
	// The successor of the prefix key owns it, so the retransmission is
	// delivered in surrogate mode regardless of how the original was
	// routed.
	groups := make(map[chord.ID][]*sqUnit)
	var order []chord.ID // deterministic retransmission order
	for _, u := range remaining {
		owner, err := s.net.SuccessorID(s.ring(aq, u.reg.PreKey))
		if err != nil {
			u.delivered = true
			s.dropSubquery(aq)
			continue
		}
		if _, seen := groups[owner]; !seen {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], u)
	}
	for _, dest := range order {
		s.ship(n, aq, dest, true, groups[dest], hops, attempt+1)
	}
}

// surrogateRefine is Algorithm 5 executing at node n: the node routes
// onward the parts of the query region whose keys lie beyond the key
// range it covers, and answers the remainder from its local store.
//
// The decomposition is the closed form of the paper's recursion: with
// vid the node's identifier in the index's unrotated key space, the
// keys of the query cuboid above vid are exactly the union, over every
// zero-bit position z of vid past the prefix, of the sibling cuboid
// obtained by setting bit z (Algorithm 5 lines 5–18 walk these
// positions one at a time). Each sibling is clipped to the query cube
// and re-enters QueryRouting; everything else is covered by this node.
// Unlike the paper's pseudocode — which retags the query to
// prefix(vid, j-1) and thereby drops the cube's extent inside the
// *lower* sibling cuboids it also covers — the local answer scans the
// full incoming cube. Entries are partitioned across nodes by key, so
// the wider local scan cannot duplicate results from other nodes.
func (s *System) surrogateRefine(n *IndexNode, aq *activeQuery, q query.Region, hops int) {
	if hops > s.cfg.MaxHops {
		aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceDrop,
			PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops})
		s.dropSubquery(aq)
		return
	}
	aq.trace.add(TraceEvent{At: s.rt.Now(), Node: n.node.ID(), Action: TraceRefine,
		PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops})
	part := aq.ix.Part
	vid := part.Unring(n.node.ID()) // node id in this index's unrotated key space
	if lph.SamePrefix(q.PreKey, vid, q.PreLen) {
		// The node sits inside the query cuboid: keys above vid belong
		// to other nodes. Route each maximal sub-cuboid above vid.
		for z := lph.FirstZeroBitAfter(vid, q.PreLen); z != 0; z = lph.FirstZeroBitAfter(vid, z) {
			upper := lph.SetBit(lph.Prefix(vid, z-1), z)
			if sub, ok := query.Restrict(part, q, upper, z); ok {
				aq.pending++
				s.routeAt(n, aq, sub, hops)
			}
		}
	}
	// When the prefixes differ, successor(prekey) lies beyond the
	// cuboid, so no node exists inside it and this node covers the
	// whole region (Algorithm 5 lines 1–3). Either way, answer the
	// covered part locally.
	s.answerLocal(n, aq, q, hops)
}

// answerLocal resolves one subquery against the node's local store and
// ships the result back to the querier.
func (s *System) answerLocal(n *IndexNode, aq *activeQuery, q query.Region, hops int) {
	if hops > aq.stats.Hops {
		aq.stats.Hops = hops
	}
	st := n.store(aq.ix.Name)
	// Scan into the system-wide scratch buffer: the candidate list is
	// fully consumed below before any other scan can run (the engine is
	// single-threaded and Dist callbacks never re-enter the system).
	s.scanBuf = st.scanAppend(q, s.scanBuf[:0])
	cands := s.scanBuf
	aq.stats.Candidates += len(cands)
	var local []Result
	for _, e := range cands {
		d := aq.ix.Dist(aq.payload, e.Obj)
		if aq.topK == 0 && d > aq.r {
			continue // exact range semantics
		}
		local = append(local, Result{Obj: e.Obj, Dist: d})
	}
	if aq.topK > 0 && len(local) > aq.topK {
		// The paper's protocol: each index node returns its k nearest
		// local results only.
		sort.Slice(local, func(i, j int) bool { return local[i].Dist < local[j].Dist })
		local = local[:aq.topK]
	}
	nodeID := n.node.ID()
	aq.trace.add(TraceEvent{At: s.rt.Now(), Node: nodeID, Action: TraceAnswer,
		PreKey: q.PreKey, PreLen: q.PreLen, Hops: hops,
		Candidates: len(cands), Returned: len(local)})
	if nodeID == aq.srcID {
		// The querier is itself an index node for this region.
		s.mergeResult(aq, nodeID, local)
		return
	}
	var bytes int
	var payload []byte
	if s.cfg.EncodeWire && aq.ix.MaxDist > 0 {
		// Real binary encoding: distances are quantized against the
		// index's maximum distance (rounded up, never understated).
		entries := make([]wire.ResultEntry, len(local))
		for i, r := range local {
			entries[i] = wire.ResultEntry{Obj: int32(r.Obj), Dist: r.Dist}
		}
		data, err := wire.EncodeResult(entries, aq.ix.MaxDist)
		if err == nil {
			if decoded, derr := wire.DecodeResult(data, aq.ix.MaxDist); derr == nil {
				for i, e := range decoded {
					local[i] = Result{Obj: ObjectID(e.Obj), Dist: e.Dist}
				}
			}
			payload, bytes = data, len(data)
		} else {
			bytes = s.cfg.Msg.ResultMsgBytes(len(local))
		}
	} else {
		bytes = s.cfg.Msg.ResultMsgBytes(len(local))
	}
	aq.stats.ResultMsgs++
	aq.stats.ResultBytes += int64(bytes)
	if s.cfg.Retry.Enabled() {
		s.sendResultReliably(n, aq, nodeID, local, payload, bytes)
		return
	}
	s.sendResult(n, aq, payload, bytes, func(*chord.Node) {
		s.mergeResult(aq, nodeID, local)
	}, func() {
		// The querier itself left (only possible under heavy churn).
		s.dropSubquery(aq)
	})
}

// sendResult ships one result message to the querier, through the
// transport with its wire encoding when one exists.
func (s *System) sendResult(n *IndexNode, aq *activeQuery, payload []byte, bytes int, deliver func(*chord.Node), failed func()) {
	if payload != nil {
		s.net.SendPayload(n.node, aq.srcID, chord.KindResult, payload, deliver, failed)
		return
	}
	s.net.SendOrFail(n.node, aq.srcID, chord.KindResult, bytes, deliver, failed)
}

// sendResultReliably ships one result message to the querier with the
// ack/timeout/retry state machine. Unlike subqueries the destination is
// fixed — a result only makes sense at the querier — so exhausted
// retries (the querier or the answering node died) surface as a dropped
// subquery.
func (s *System) sendResultReliably(n *IndexNode, aq *activeQuery, from chord.ID, local []Result, payload []byte, bytes int) {
	delivered := false
	var send func(attempt int)
	send = func(attempt int) {
		if attempt > 0 {
			s.RetriesIssued++
			aq.stats.Retries++
			aq.stats.ResultMsgs++
			aq.stats.ResultBytes += int64(bytes)
		}
		timer := s.rt.AfterFunc(s.retryTimeout(attempt), func() {
			if delivered {
				return
			}
			if attempt >= s.cfg.Retry.MaxRetries || !n.node.Alive() {
				delivered = true
				s.dropSubquery(aq)
				return
			}
			send(attempt + 1)
		})
		s.sendResult(n, aq, payload, bytes, func(dst *chord.Node) {
			s.net.SendOrFail(dst, n.node.ID(), chord.KindAck, s.cfg.Retry.AckBytes, func(*chord.Node) {
				timer.Stop()
			}, nil)
			if delivered {
				return // duplicate from a premature timeout
			}
			delivered = true
			if attempt > 0 {
				s.RecoveredSubqueries++
			}
			s.mergeResult(aq, from, local)
		}, nil)
	}
	send(0)
}

// mergeResult runs at the querier when one index node's answer
// arrives.
func (s *System) mergeResult(aq *activeQuery, from chord.ID, local []Result) {
	now := s.rt.Now()
	if !aq.gotFirst {
		aq.gotFirst = true
		aq.stats.FirstResult = now
	}
	aq.answered[from] = true
	for _, r := range local {
		if prev, ok := aq.results[r.Obj]; !ok || r.Dist < prev {
			aq.results[r.Obj] = r.Dist
		}
	}
	aq.stats.LastResult = now
	aq.pending--
	if aq.pending == 0 {
		s.finish(aq)
	}
}

// dropSubquery accounts a lost subquery and completes the query if it
// was the last one outstanding.
func (s *System) dropSubquery(aq *activeQuery) {
	s.DroppedSubqueries++
	aq.pending--
	if aq.pending == 0 {
		s.finish(aq)
	}
}

func (s *System) finish(aq *activeQuery) {
	if aq.finished {
		return
	}
	aq.finished = true
	out := make([]Result, 0, len(aq.results))
	//lint:allow maporder the sort below totally orders results (Dist, then Obj)
	for obj, d := range aq.results {
		out = append(out, Result{Obj: obj, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Obj < out[j].Obj
	})
	if aq.topK > 0 && len(out) > aq.topK {
		out = out[:aq.topK]
	}
	if !aq.gotFirst {
		// No results arrived (all dropped); pin times to issue time.
		aq.stats.FirstResult = aq.stats.Issued
		aq.stats.LastResult = aq.stats.Issued
	}
	aq.stats.IndexNodes = len(aq.answered)
	if aq.done != nil {
		aq.done(&QueryResult{Results: out, Stats: aq.stats, Trace: aq.trace})
	}
}

// ix returns the query's index scheme.
func (s *System) ix(aq *activeQuery) *Index { return aq.ix }

// ring maps an unrotated prefix key to its on-ring position for the
// query's index.
func (s *System) ring(aq *activeQuery, prekey lph.Key) chord.ID {
	return aq.ix.Part.Ring(prekey)
}

// NaiveRangeQuery is the §3.3 strawman the paper argues against: the
// querier decomposes the range into per-node subqueries and performs
// an independent Chord lookup + direct query message for each
// responsible node. Its cost scales with query selectivity; the
// embedded-tree router shares prefixes instead. Results are identical;
// only the message complexity differs.
func (s *System) NaiveRangeQuery(indexName string, srcID chord.ID, payload any, center []float64, r float64, opts QueryOpts, done func(*QueryResult)) error {
	ix, err := s.lookupIndex(indexName)
	if err != nil {
		return err
	}
	src, ok := s.nodes[srcID]
	if !ok {
		return fmt.Errorf("core: unknown source node %#x", srcID)
	}
	region, err := queryRegion(ix, center, r)
	if err != nil {
		return err
	}
	// Decompose until every subregion's key span has a single owner.
	// The querier cannot know ownership, so it refines pessimistically:
	// split to sibling cuboids and stop when a lookup-resolved owner
	// covers the span (each subregion costs one full Chord lookup).
	s.nextQ++
	aq := &activeQuery{
		id:       s.nextQ,
		ix:       ix,
		payload:  payload,
		r:        r,
		topK:     opts.TopK,
		srcID:    srcID,
		pending:  0,
		results:  make(map[ObjectID]float64),
		answered: make(map[chord.ID]bool),
		done:     done,
	}
	aq.stats.Issued = s.rt.Now()

	var pieces []query.Region
	var decompose func(q query.Region)
	decompose = func(q query.Region) {
		lo, hi := lph.CuboidSpan(q.PreKey, q.PreLen)
		ringLo := ix.Part.Ring(lo)
		ownerLo, errLo := s.net.SuccessorID(ringLo)
		// The span [lo, hi) has a single owner iff the successor of its
		// first key reaches at least its last key clockwise. (Comparing
		// successor(lo) with successor(hi-1) alone is fooled by spans
		// that wrap the whole ring, e.g. an unrefined prefix.)
		spanLen := hi - lo // wraps to 0 for the whole ring
		single := errLo == nil && (s.net.Size() == 1 ||
			(spanLen != 0 && chord.Dist(ringLo, ownerLo) >= spanLen-1))
		if single || q.PreLen == lph.M {
			pieces = append(pieces, q)
			return
		}
		for _, sq := range query.Split(ix.Part, q, q.PreLen+1) {
			decompose(sq)
		}
	}
	decompose(region)
	aq.pending = len(pieces)
	if aq.pending == 0 {
		s.finish(aq)
		return nil
	}
	k := ix.Part.K()
	for _, sq := range pieces {
		sq := sq
		rk := ix.Part.Ring(sq.PreKey)
		// One full Chord lookup per piece, then one direct query
		// message to the owner.
		src.node.FindSuccessor(rk, s.cfg.Msg.QueryMsgBytes(1, k), func(owner chord.ID, hops int) {
			bytes := s.cfg.Msg.QueryMsgBytes(1, k)
			aq.stats.QueryMsgs += hops + 1
			aq.stats.QueryBytes += int64(bytes * (hops + 1))
			s.net.SendOrFail(src.node, owner, chord.KindQuery, bytes, func(dst *chord.Node) {
				s.answerLocal(s.nodes[dst.ID()], aq, sq, hops+1)
			}, func() {
				s.dropSubquery(aq)
			})
		})
	}
	return nil
}
