package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/dataset"
	"landmarkdht/internal/indexspace"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/metric"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
)

// fixture is a small, brute-forceable deployment: a clustered 2-d
// dataset indexed under L2 with greedy landmarks on an n-node overlay.
type fixture struct {
	eng  *sim.Engine
	sys  *System
	data []metric.Vector
	emb  *indexspace.Embedding[metric.Vector]
	ids  []chord.ID
}

func buildFixture(t *testing.T, nNodes, nData, nLandmarks int, rotate bool) *fixture {
	t.Helper()
	return buildFixtureCfg(t, nNodes, nData, nLandmarks, rotate, DefaultConfig())
}

func buildFixtureCfg(t *testing.T, nNodes, nData, nLandmarks int, rotate bool, cfg Config) *fixture {
	t.Helper()
	eng := sim.NewEngine(1)
	model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{N: nNodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(eng, model, cfg)
	rng := rand.New(rand.NewSource(2))
	ids := make([]chord.ID, 0, nNodes)
	used := map[chord.ID]bool{}
	for i := 0; i < nNodes; i++ {
		id := chord.ID(rng.Uint64())
		for used[id] {
			id = chord.ID(rng.Uint64())
		}
		used[id] = true
		if _, err := sys.AddNode(id, i); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sys.Stabilize()

	data, err := dataset.Clustered(dataset.ClusteredConfig{
		N: nData, Dim: 2, Lo: 0, Hi: 100, Clusters: 4, Dev: 6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := metric.EuclideanSpace("test-l2", 2, 0, 100)
	sampleN := 200
	if sampleN > len(data) {
		sampleN = len(data)
	}
	lms, err := landmark.Greedy(rng, data[:sampleN], nLandmarks, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := indexspace.New(space, lms)
	if err != nil {
		t.Fatal(err)
	}
	part, err := emb.Partitioner(rotate)
	if err != nil {
		t.Fatal(err)
	}
	ix := &Index{
		Name: space.Name,
		Part: part,
		Dist: func(payload any, obj ObjectID) float64 {
			return metric.L2(payload.(metric.Vector), data[obj])
		},
	}
	if err := sys.DeployIndex(ix); err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, len(data))
	for i, v := range data {
		entries[i] = Entry{Obj: ObjectID(i), Point: emb.Map(v)}
	}
	if err := sys.BulkLoad(ix.Name, entries); err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, sys: sys, data: data, emb: emb, ids: ids}
}

// runRange runs a range query synchronously.
func (f *fixture) runRange(t *testing.T, srcIdx int, q metric.Vector, r float64, opts QueryOpts) *QueryResult {
	t.Helper()
	var out *QueryResult
	center := f.emb.Map(q)
	err := f.sys.RangeQuery("test-l2", f.ids[srcIdx], q, center, r, opts, func(qr *QueryResult) { out = qr })
	if err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if out == nil {
		t.Fatal("query did not complete")
	}
	return out
}

// bruteRange is ground truth for exact range queries.
func (f *fixture) bruteRange(q metric.Vector, r float64) map[ObjectID]bool {
	out := map[ObjectID]bool{}
	for i, v := range f.data {
		if metric.L2(q, v) <= r {
			out[ObjectID(i)] = true
		}
	}
	return out
}

func TestRangeQueryExact(t *testing.T) {
	f := buildFixture(t, 32, 2000, 3, false)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		q := f.data[rng.Intn(len(f.data))].Clone()
		q[0] += rng.NormFloat64()
		q[1] += rng.NormFloat64()
		r := 2 + rng.Float64()*15
		want := f.bruteRange(q, r)
		got := f.runRange(t, rng.Intn(32), q, r, QueryOpts{})
		if len(got.Results) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d (r=%v)", trial, len(got.Results), len(want), r)
		}
		for _, res := range got.Results {
			if !want[res.Obj] {
				t.Fatalf("false positive object %d at distance %v (r=%v)", res.Obj, res.Dist, r)
			}
			if d := metric.L2(q, f.data[res.Obj]); math.Abs(d-res.Dist) > 1e-9 {
				t.Fatalf("reported distance %v, actual %v", res.Dist, d)
			}
		}
	}
	if f.sys.DroppedSubqueries != 0 {
		t.Fatalf("dropped %d subqueries in a static network", f.sys.DroppedSubqueries)
	}
}

func TestRangeQueryResultsSorted(t *testing.T) {
	f := buildFixture(t, 16, 1000, 3, false)
	got := f.runRange(t, 0, f.data[10], 20, QueryOpts{})
	for i := 1; i < len(got.Results); i++ {
		if got.Results[i].Dist < got.Results[i-1].Dist {
			t.Fatal("results not sorted by distance")
		}
	}
}

func TestTopKProtocol(t *testing.T) {
	f := buildFixture(t, 32, 2000, 3, false)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		q := f.data[rng.Intn(len(f.data))]
		got := f.runRange(t, rng.Intn(32), q, 25, QueryOpts{TopK: 10})
		if len(got.Results) > 10 {
			t.Fatalf("topK returned %d results", len(got.Results))
		}
		// With a generous range, the merged top-10 must equal the true
		// 10 nearest neighbors (the index nodes each return their local
		// top-10; since the cube covers everything within r, the true
		// top-10 all appear if their distances <= coverage).
		type dv struct {
			obj ObjectID
			d   float64
		}
		var all []dv
		for i, v := range f.data {
			all = append(all, dv{ObjectID(i), metric.L2(q, v)})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		trueTop := map[ObjectID]bool{}
		for _, x := range all[:10] {
			if x.d <= 25 { // only those the cube is guaranteed to cover
				trueTop[x.obj] = true
			}
		}
		gotSet := map[ObjectID]bool{}
		for _, rr := range got.Results {
			gotSet[rr.Obj] = true
		}
		for obj := range trueTop {
			if !gotSet[obj] {
				t.Fatalf("true neighbor %d missing from top-k merge", obj)
			}
		}
	}
}

func TestQueryStats(t *testing.T) {
	f := buildFixture(t, 32, 2000, 3, false)
	got := f.runRange(t, 0, f.data[0], 10, QueryOpts{})
	st := got.Stats
	if st.IndexNodes < 1 {
		t.Fatal("no index nodes answered")
	}
	if st.QueryMsgs < 1 && st.IndexNodes > 1 {
		t.Fatal("no query messages for a remote query")
	}
	if st.ResponseTime() < 0 || st.MaxLatency() < st.ResponseTime() {
		t.Fatalf("timing inconsistent: first=%v last=%v", st.ResponseTime(), st.MaxLatency())
	}
	if st.QueryBytes < int64(st.QueryMsgs)*24 {
		t.Fatalf("query bytes %d below header floor", st.QueryBytes)
	}
	if st.ResultBytes < int64(st.ResultMsgs)*20 {
		t.Fatalf("result bytes %d below header floor", st.ResultBytes)
	}
	if st.Candidates < len(got.Results) {
		t.Fatal("candidates below result count")
	}
}

func TestQueryTouchesMultipleNodes(t *testing.T) {
	f := buildFixture(t, 64, 5000, 2, false)
	// A very large range must hit several index nodes.
	got := f.runRange(t, 0, f.data[0], 60, QueryOpts{TopK: 10})
	if got.Stats.IndexNodes < 3 {
		t.Fatalf("large query touched only %d nodes", got.Stats.IndexNodes)
	}
	if got.Stats.Hops < 1 {
		t.Fatal("no hops recorded")
	}
}

func TestZeroRangeQuery(t *testing.T) {
	f := buildFixture(t, 16, 500, 3, false)
	got := f.runRange(t, 3, f.data[42], 0, QueryOpts{})
	found := false
	for _, r := range got.Results {
		if r.Obj == 42 && r.Dist == 0 {
			found = true
		}
		if r.Dist > 0 {
			t.Fatalf("zero-range query returned distance %v", r.Dist)
		}
	}
	if !found {
		t.Fatal("zero-range query missed the exact object")
	}
}

func TestRangeQueryValidation(t *testing.T) {
	f := buildFixture(t, 8, 100, 2, false)
	center := f.emb.Map(f.data[0])
	if err := f.sys.RangeQuery("nope", f.ids[0], f.data[0], center, 1, QueryOpts{}, nil); err == nil {
		t.Fatal("expected unknown-index error")
	}
	if err := f.sys.RangeQuery("test-l2", 424242, f.data[0], center, 1, QueryOpts{}, nil); err == nil {
		t.Fatal("expected unknown-node error")
	}
	if err := f.sys.RangeQuery("test-l2", f.ids[0], f.data[0], center[:1], 1, QueryOpts{}, nil); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := f.sys.RangeQuery("test-l2", f.ids[0], f.data[0], center, -1, QueryOpts{}, nil); err == nil {
		t.Fatal("expected negative-range error")
	}
}

func TestBulkLoadOwnership(t *testing.T) {
	f := buildFixture(t, 32, 1000, 3, true)
	// Every stored entry must live on the oracle successor of its key.
	for _, in := range f.sys.Nodes() {
		for _, name := range in.st.Indexes() {
			keys, _ := in.st.RegionSnapshot(name)
			for _, key := range keys {
				owner, err := f.sys.net.SuccessorNode(key)
				if err != nil {
					t.Fatal(err)
				}
				if owner.ID() != in.ID() {
					t.Fatalf("entry with key %#x stored on %#x, oracle owner %#x", key, in.ID(), owner.ID())
				}
			}
		}
	}
	if f.sys.TotalEntries() != 1000 {
		t.Fatalf("total entries = %d, want 1000", f.sys.TotalEntries())
	}
}

func TestPublishMatchesBulkLoad(t *testing.T) {
	f := buildFixture(t, 16, 100, 2, false)
	v := metric.Vector{50, 50}
	point := f.emb.Map(v)
	var owner chord.ID
	err := f.sys.Publish("test-l2", f.ids[0], Entry{Obj: 9999, Point: point}, func(o chord.ID, hops int) {
		owner = o
	})
	if err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	part := f.sys.index["test-l2"].Part
	want, _ := f.sys.net.SuccessorNode(part.Ring(part.Hash(point)))
	if owner != want.ID() {
		t.Fatalf("published to %#x, oracle owner %#x", owner, want.ID())
	}
	if f.sys.TotalEntries() != 101 {
		t.Fatalf("entries = %d", f.sys.TotalEntries())
	}
}

func TestPublishValidation(t *testing.T) {
	f := buildFixture(t, 8, 10, 2, false)
	if err := f.sys.Publish("nope", f.ids[0], Entry{}, nil); err == nil {
		t.Fatal("expected unknown-index error")
	}
	if err := f.sys.Publish("test-l2", 123456, Entry{Point: []float64{1, 2}}, nil); err == nil {
		t.Fatal("expected unknown-node error")
	}
	if err := f.sys.Publish("test-l2", f.ids[0], Entry{Point: []float64{1}}, nil); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestNaiveMatchesTreeRouting(t *testing.T) {
	f := buildFixture(t, 32, 2000, 3, false)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		q := f.data[rng.Intn(len(f.data))]
		r := 3 + rng.Float64()*8
		center := f.emb.Map(q)

		var tree, naive *QueryResult
		if err := f.sys.RangeQuery("test-l2", f.ids[0], q, center, r, QueryOpts{}, func(qr *QueryResult) { tree = qr }); err != nil {
			t.Fatal(err)
		}
		f.eng.Run()
		if err := f.sys.NaiveRangeQuery("test-l2", f.ids[0], q, center, r, QueryOpts{}, func(qr *QueryResult) { naive = qr }); err != nil {
			t.Fatal(err)
		}
		f.eng.Run()
		if tree == nil || naive == nil {
			t.Fatal("queries did not complete")
		}
		if len(tree.Results) != len(naive.Results) {
			t.Fatalf("result mismatch: tree=%d naive=%d", len(tree.Results), len(naive.Results))
		}
		for i := range tree.Results {
			if tree.Results[i].Obj != naive.Results[i].Obj {
				t.Fatalf("result %d differs: %d vs %d", i, tree.Results[i].Obj, naive.Results[i].Obj)
			}
		}
	}
}

func TestNaiveCostsMore(t *testing.T) {
	f := buildFixture(t, 64, 5000, 2, false)
	q := f.data[0]
	center := f.emb.Map(q)
	var tree, naive *QueryResult
	// A broad query where tree routing's shared prefixes pay off.
	if err := f.sys.RangeQuery("test-l2", f.ids[0], q, center, 50, QueryOpts{TopK: 10}, func(qr *QueryResult) { tree = qr }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if err := f.sys.NaiveRangeQuery("test-l2", f.ids[0], q, center, 50, QueryOpts{TopK: 10}, func(qr *QueryResult) { naive = qr }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if naive.Stats.QueryMsgs <= tree.Stats.QueryMsgs {
		t.Fatalf("naive (%d msgs) not costlier than tree routing (%d msgs)",
			naive.Stats.QueryMsgs, tree.Stats.QueryMsgs)
	}
}

func TestMessageModel(t *testing.T) {
	m := DefaultMessageModel()
	// Paper formula: 20 + 4 + n(4k + 9).
	if got := m.QueryMsgBytes(3, 10); got != 24+3*(40+9) {
		t.Fatalf("query bytes = %d", got)
	}
	if got := m.ResultMsgBytes(10); got != 20+60 {
		t.Fatalf("result bytes = %d", got)
	}
	if got := m.TransferBytes(5); got != 70 {
		t.Fatalf("transfer bytes = %d", got)
	}
}

func TestDeployIndexValidation(t *testing.T) {
	f := buildFixture(t, 8, 10, 2, false)
	if err := f.sys.DeployIndex(&Index{}); err == nil {
		t.Fatal("expected validation error")
	}
	part := f.sys.index["test-l2"].Part
	dup := &Index{Name: "test-l2", Part: part, Dist: func(any, ObjectID) float64 { return 0 }}
	if err := f.sys.DeployIndex(dup); err == nil {
		t.Fatal("expected duplicate error")
	}
	if names := f.sys.IndexNames(); len(names) != 1 || names[0] != "test-l2" {
		t.Fatalf("index names = %v", names)
	}
}

func TestLoadBalancingFlattens(t *testing.T) {
	// Skewed deployment: tiny node count, heavily clustered data so a
	// few nodes hold nearly everything.
	f := buildFixture(t, 24, 3000, 2, false)
	before := f.sys.Loads()
	if before[0] < 3000/24*3 {
		t.Skipf("data not skewed enough for the test (max=%d)", before[0])
	}
	if err := f.sys.EnableLoadBalancing(LBConfig{Delta: 0, ProbeLevel: 4, Period: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 10*time.Minute)
	f.sys.DisableLoadBalancing()
	f.eng.Run()
	after := f.sys.Loads()
	if f.sys.TotalEntries() != 3000 {
		t.Fatalf("entries not conserved: %d", f.sys.TotalEntries())
	}
	if after[0] >= before[0] {
		t.Fatalf("max load did not drop: before=%d after=%d", before[0], after[0])
	}
	migrations, _ := 0, 0
	_ = migrations
	if after[0] > before[0]/2 {
		t.Logf("note: max load %d -> %d (limited flattening)", before[0], after[0])
	}
}

func TestLoadBalancingConservesAndStaysCorrect(t *testing.T) {
	f := buildFixture(t, 24, 2000, 2, false)
	if err := f.sys.EnableLoadBalancing(LBConfig{Delta: 0, ProbeLevel: 2, Period: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 5*time.Minute)
	f.sys.DisableLoadBalancing()
	f.eng.Run()
	if got := f.sys.TotalEntries(); got != 2000 {
		t.Fatalf("entries not conserved: %d", got)
	}
	// After the system settles, queries must be exact again. Source
	// nodes must be picked from the live set — migrations changed ids.
	rng := rand.New(rand.NewSource(11))
	live := f.sys.Nodes()
	for trial := 0; trial < 10; trial++ {
		q := f.data[rng.Intn(len(f.data))]
		r := 3 + rng.Float64()*10
		want := f.bruteRange(q, r)
		src := live[rng.Intn(len(live))].ID()
		var out *QueryResult
		center := f.emb.Map(q)
		if err := f.sys.RangeQuery("test-l2", src, q, center, r, QueryOpts{}, func(qr *QueryResult) { out = qr }); err != nil {
			t.Fatal(err)
		}
		f.eng.Run()
		if out == nil || len(out.Results) != len(want) {
			t.Fatalf("post-LB exactness broken: got %v, want %d", out, len(want))
		}
	}
	// Entries still live on their oracle owners.
	for _, in := range f.sys.Nodes() {
		for _, name := range in.st.Indexes() {
			keys, _ := in.st.RegionSnapshot(name)
			for _, key := range keys {
				owner, _ := f.sys.net.SuccessorNode(key)
				if owner.ID() != in.ID() {
					t.Fatalf("post-LB entry misplaced: key %#x on %#x, owner %#x", key, in.ID(), owner.ID())
				}
			}
		}
	}
}

func TestEnableLoadBalancingTwice(t *testing.T) {
	f := buildFixture(t, 8, 100, 2, false)
	if err := f.sys.EnableLoadBalancing(DefaultLBConfig()); err != nil {
		t.Fatal(err)
	}
	if err := f.sys.EnableLoadBalancing(DefaultLBConfig()); err == nil {
		t.Fatal("expected error enabling twice")
	}
	f.sys.DisableLoadBalancing()
	f.sys.DisableLoadBalancing() // idempotent
}

func TestJoinAtHotspot(t *testing.T) {
	f := buildFixture(t, 16, 2000, 2, false)
	before := f.sys.Loads()
	heaviest := before[0]
	fresh, err := f.sys.JoinAtHotspot(0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Load() == 0 {
		t.Fatal("hotspot join received no entries")
	}
	after := f.sys.Loads()
	if after[0] > heaviest {
		t.Fatal("hotspot join increased max load")
	}
	if f.sys.TotalEntries() != 2000 {
		t.Fatalf("entries not conserved: %d", f.sys.TotalEntries())
	}
	// Query exactness preserved.
	want := f.bruteRange(f.data[0], 10)
	got := f.runRange(t, 0, f.data[0], 10, QueryOpts{})
	if len(got.Results) != len(want) {
		t.Fatalf("post-join exactness broken: %d vs %d", len(got.Results), len(want))
	}
}

func TestRotationDecorrelatesHotspots(t *testing.T) {
	// Two index schemes over the same data: without rotation their hot
	// ranges coincide on the ring; with rotation they spread.
	f := buildFixture(t, 32, 2000, 3, true)
	data := f.data
	// Second scheme: same space, different name => different rotation.
	space2 := metric.EuclideanSpace("test-l2-b", 2, 0, 100)
	rng := rand.New(rand.NewSource(4))
	lms, _ := landmark.Greedy(rng, data[:min(200, len(data))], 3, metric.L2)
	emb2, _ := indexspace.New(space2, lms)
	part2, _ := emb2.Partitioner(true)
	ix2 := &Index{
		Name: space2.Name,
		Part: part2,
		Dist: func(p any, o ObjectID) float64 { return metric.L2(p.(metric.Vector), data[o]) },
	}
	if err := f.sys.DeployIndex(ix2); err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, len(data))
	for i, v := range data {
		entries[i] = Entry{Obj: ObjectID(i), Point: emb2.Map(v)}
	}
	if err := f.sys.BulkLoad(ix2.Name, entries); err != nil {
		t.Fatal(err)
	}
	// With rotation, the per-scheme hottest nodes should differ.
	hottest := func(name string) chord.ID {
		var best chord.ID
		bestLoad := -1
		for _, in := range f.sys.Nodes() {
			if l := in.LoadFor(name); l > bestLoad {
				best, bestLoad = in.ID(), l
			}
		}
		return best
	}
	h1, h2 := hottest("test-l2"), hottest("test-l2-b")
	// The index points are identical, so without rotation the same
	// node would be hottest for both. Rotation must separate them.
	if h1 == h2 {
		t.Fatalf("rotation failed to separate hotspots (both on %#x)", h1)
	}
}

func TestStoreMedianAndExtract(t *testing.T) {
	st := NewMemStore()
	base := lph.Key(1000)
	var allKeys []lph.Key
	for i := 0; i < 10; i++ {
		k := base + lph.Key(i*10)
		allKeys = append(allKeys, k)
		if err := st.Put("ix", k, Entry{Obj: ObjectID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	split, ok := medianOffsetKey(allKeys, base)
	if !ok {
		t.Fatal("median not found")
	}
	keys, entries, err := st.ExtractUpTo("ix", base, split)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 || len(keys) == 10 {
		t.Fatalf("extract took %d of 10", len(keys))
	}
	if len(keys) != len(entries) {
		t.Fatal("keys/entries length mismatch")
	}
	if st.Size("ix")+len(entries) != 10 {
		t.Fatal("entries lost in extraction")
	}
	for _, k := range keys {
		if k-base > split-base {
			t.Fatalf("extracted key %#x beyond split %#x", k, split)
		}
	}
	st.View("ix", func(kept []lph.Key, _ []Entry) {
		for _, k := range kept {
			if k-base <= split-base {
				t.Fatalf("retained key %#x at or below split", k)
			}
		}
	})
}

func TestStoreSingleKeyUnsplittable(t *testing.T) {
	keys := make([]lph.Key, 10)
	for i := range keys {
		keys[i] = 777
	}
	if _, ok := medianOffsetKey(keys, 0); ok {
		t.Fatal("single-key load must be unsplittable (§4.3)")
	}
}
