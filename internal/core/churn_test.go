package core

import (
	"math/rand"
	"testing"
	"time"

	"landmarkdht/internal/metric"
)

// TestCrashDuringQueries injects node crashes while queries are in
// flight: queries must still complete (never hang), losses must be
// visible in DroppedSubqueries, and the system must answer exactly
// again after crashed entries are republished.
func TestCrashDuringQueries(t *testing.T) {
	f := buildFixture(t, 48, 3000, 3, false)
	rng := rand.New(rand.NewSource(13))

	// Schedule a crash wave: every 200ms one random node dies.
	crashed := map[ObjectID]bool{}
	var crashedNodes []*IndexNode
	for i := 0; i < 8; i++ {
		at := time.Duration(i+1) * 200 * time.Millisecond
		f.eng.Schedule(at, func() {
			nodes := f.sys.Nodes()
			victim := nodes[rng.Intn(len(nodes))]
			for _, entries := range victim.Snapshot() {
				for _, e := range entries {
					crashed[e.Obj] = true
				}
			}
			crashedNodes = append(crashedNodes, victim)
			if err := f.sys.net.CrashNode(victim.ID()); err != nil {
				t.Errorf("crash: %v", err)
			}
			delete(f.sys.nodes, victim.ID())
			f.sys.net.FixAround(victim.ID())
		})
	}

	// Issue queries concurrently with the crash wave.
	completed := 0
	issued := 0
	for i := 0; i < 40; i++ {
		at := time.Duration(rng.Int63n(int64(2 * time.Second)))
		q := f.data[rng.Intn(len(f.data))]
		center := f.emb.Map(q)
		issued++
		f.eng.Schedule(at, func() {
			// Pick a live source at issue time.
			nodes := f.sys.Nodes()
			src := nodes[rng.Intn(len(nodes))].ID()
			err := f.sys.RangeQuery("test-l2", src, q, center, 10, QueryOpts{}, func(qr *QueryResult) {
				completed++
			})
			if err != nil {
				completed++ // counted as completed-with-error
			}
		})
	}
	f.eng.Run()
	if completed != issued {
		t.Fatalf("%d of %d queries never completed under churn", issued-completed, issued)
	}
	// Entries on crashed nodes are gone until republished; everything
	// else must still be there.
	total := f.sys.TotalEntries()
	if total+len(crashed) != 3000 {
		t.Fatalf("entries: %d live + %d crashed != 3000", total, len(crashed))
	}
	if len(crashed) == 0 {
		t.Skip("crash wave hit only empty nodes")
	}

	// Republish the lost entries (the application-level recovery the
	// paper assumes for index maintenance) and verify exactness.
	var republished []Entry
	for obj := range crashed {
		republished = append(republished, Entry{Obj: obj, Point: f.emb.Map(f.data[obj])})
	}
	if err := f.sys.BulkLoad("test-l2", republished); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		q := f.data[rng.Intn(len(f.data))]
		r := 4 + rng.Float64()*8
		want := f.bruteRange(q, r)
		nodes := f.sys.Nodes()
		src := nodes[rng.Intn(len(nodes))].ID()
		var out *QueryResult
		if err := f.sys.RangeQuery("test-l2", src, q, f.emb.Map(q), r, QueryOpts{}, func(qr *QueryResult) { out = qr }); err != nil {
			t.Fatal(err)
		}
		f.eng.Run()
		if out == nil || len(out.Results) != len(want) {
			t.Fatalf("post-recovery: got %v results, want %d", out, len(want))
		}
	}
}

// TestCrashedQuerierDoesNotHang verifies a query whose source dies
// mid-flight is accounted as dropped, not hung.
func TestCrashedQuerierDoesNotHang(t *testing.T) {
	f := buildFixture(t, 24, 1000, 3, false)
	q := f.data[0]
	center := f.emb.Map(q)
	done := false
	src := f.ids[5]
	if err := f.sys.RangeQuery("test-l2", src, q, center, 30, QueryOpts{TopK: 10}, func(*QueryResult) {
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	// Kill the querier before any result can arrive.
	if err := f.sys.net.CrashNode(src); err != nil {
		t.Fatal(err)
	}
	delete(f.sys.nodes, src)
	f.eng.Run()
	// The query either completed before the crash propagated (if it
	// was answered locally) or its results were dropped; either way the
	// engine drained and nothing deadlocked.
	if !done && f.sys.DroppedSubqueries == 0 {
		t.Fatal("query neither completed nor recorded drops")
	}
}

// TestInsertDuringMigration runs routed publishes concurrently with
// load migrations; no entry may be lost.
func TestInsertDuringMigration(t *testing.T) {
	f := buildFixture(t, 24, 2000, 2, false)
	if err := f.sys.EnableLoadBalancing(LBConfig{Delta: 0, ProbeLevel: 3, Period: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	const extra = 50
	placed := 0
	for i := 0; i < extra; i++ {
		at := time.Duration(rng.Int63n(int64(30 * time.Second)))
		obj := ObjectID(10000 + i)
		v := f.data[rng.Intn(len(f.data))]
		point := f.emb.Map(v)
		f.eng.Schedule(at, func() {
			nodes := f.sys.Nodes()
			src := nodes[rng.Intn(len(nodes))].ID()
			err := f.sys.Publish("test-l2", src, Entry{Obj: obj, Point: point}, func(chordID uint64, _ int) {
				placed++
			})
			if err != nil {
				t.Errorf("publish: %v", err)
			}
		})
	}
	f.eng.RunUntil(2 * time.Minute)
	f.sys.DisableLoadBalancing()
	f.eng.Run()
	if placed != extra {
		t.Fatalf("placed %d of %d inserts", placed, extra)
	}
	if got := f.sys.TotalEntries(); got != 2000+extra {
		t.Fatalf("entries = %d, want %d", got, 2000+extra)
	}
	_ = metric.L2 // keep the import for the fixture helpers
}
