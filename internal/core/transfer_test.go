package core

import (
	"testing"
	"time"
)

// xferFixtureEntries builds n synthetic entries whose ring keys fall
// just above base (dense, strictly increasing).
func xferEntries(base uint64, n int) ([]uint64, []Entry) {
	keys := make([]uint64, n)
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		keys[i] = base + 1 + uint64(i)
		entries[i] = Entry{Obj: ObjectID(i), Point: []float64{float64(i), 0.5, -3.25}}
	}
	return keys, entries
}

// A stream must deliver every entry to the destination and cost
// strictly fewer messages and bytes than point-wise republication.
func TestStreamRegionDelivers(t *testing.T) {
	f := buildFixture(t, 8, 50, 2, false)
	nodes := f.sys.Nodes()
	src, dst := nodes[0], nodes[1]
	pred, ok := dst.node.Predecessor()
	if !ok {
		t.Fatal("unstabilized ring")
	}
	keys, entries := xferEntries(pred, 2000)
	done := false
	f.sys.streamRegion(src, dst.ID(), "xfer-test", keys, entries, func() { done = true })
	f.eng.Run()
	if !done {
		t.Fatal("stream never completed")
	}
	if got := dst.st.Size("xfer-test"); got != 2000 {
		t.Fatalf("destination holds %d entries, want 2000", got)
	}
	ts := f.sys.TransferStats()
	if ts.Transfers != 1 || ts.Chunks < 2 {
		t.Fatalf("stats: %+v", ts)
	}
	if ts.Retransmits != 0 || ts.FallbackEntries != 0 {
		t.Fatalf("lossless stream retransmitted or fell back: %+v", ts)
	}
	if ts.BulkMessages != 2*ts.Chunks {
		t.Fatalf("messages %d, want chunk+ack per chunk (%d)", ts.BulkMessages, 2*ts.Chunks)
	}
	if ts.PointwiseMessages != 2*2000 {
		t.Fatalf("counterfactual messages %d, want %d", ts.PointwiseMessages, 2*2000)
	}
	if ts.BulkMessages >= ts.PointwiseMessages {
		t.Fatalf("bulk messages %d not strictly below point-wise %d", ts.BulkMessages, ts.PointwiseMessages)
	}
	if ts.BulkBytes >= ts.PointwiseBytes {
		t.Fatalf("bulk bytes %d not strictly below point-wise %d", ts.BulkBytes, ts.PointwiseBytes)
	}
	if ts.MessagesSaved() <= 0 || ts.BytesSaved() <= 0 {
		t.Fatalf("savings not positive: %+v", ts)
	}
}

// With the real wire codec enabled, streamed entries round-trip
// bit-for-bit — points are exact float64, never quantized.
func TestStreamRegionEncodeWireExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EncodeWire = true
	f := buildFixtureCfg(t, 8, 50, 2, false, cfg)
	nodes := f.sys.Nodes()
	src, dst := nodes[2], nodes[3]
	pred, ok := dst.node.Predecessor()
	if !ok {
		t.Fatal("unstabilized ring")
	}
	keys, entries := xferEntries(pred, 300)
	entries[7].Point = []float64{1e-308, -0.0, 3.141592653589793}
	f.sys.streamRegion(src, dst.ID(), "xfer-wire", keys, entries, nil)
	f.eng.Run()
	gotK, gotE := dst.st.RegionSnapshot("xfer-wire")
	if len(gotK) != len(keys) {
		t.Fatalf("destination holds %d entries, want %d", len(gotK), len(keys))
	}
	byKey := map[uint64]Entry{}
	for i, k := range gotK {
		byKey[k] = gotE[i]
	}
	for i, k := range keys {
		g, ok := byKey[k]
		if !ok {
			t.Fatalf("key %#x missing", k)
		}
		if g.Obj != entries[i].Obj || len(g.Point) != len(entries[i].Point) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, g, entries[i])
		}
		for j := range g.Point {
			if g.Point[j] != entries[i].Point[j] {
				t.Fatalf("entry %d point[%d] = %v, want %v", i, j, g.Point[j], entries[i].Point[j])
			}
		}
	}
}

// A destination that crashes before the stream lands must not lose
// entries: retransmissions retarget the successor now covering its
// ring position.
func TestStreamRegionReceiverCrash(t *testing.T) {
	f := buildFixture(t, 8, 50, 2, false)
	nodes := f.sys.Nodes()
	src, dst := nodes[4], nodes[5]
	pred, ok := dst.node.Predecessor()
	if !ok {
		t.Fatal("unstabilized ring")
	}
	keys, entries := xferEntries(pred, 500)
	done := false
	f.sys.streamRegion(src, dst.ID(), "xfer-crash", keys, entries, func() { done = true })
	// Kill the destination before any chunk can land.
	if err := f.sys.net.CrashNode(dst.ID()); err != nil {
		t.Fatal(err)
	}
	f.sys.ForgetNode(dst.ID())
	f.sys.net.FixAround(dst.ID())
	f.eng.RunUntil(f.eng.Now() + time.Minute)
	if !done {
		t.Fatal("stream never completed after receiver crash")
	}
	// Every entry must live in some store: applied at the node now
	// covering the dead receiver's range, or teleported by fallback
	// reinsertion (which also lands in a store).
	stored := 0
	for _, in := range f.sys.Nodes() {
		stored += in.st.Size("xfer-crash")
	}
	if stored != 500 {
		t.Fatalf("%d of 500 entries survive the receiver crash", stored)
	}
	ts := f.sys.TransferStats()
	if ts.Retransmits == 0 {
		t.Fatalf("expected retransmissions after receiver crash: %+v", ts)
	}
}

// A sender that dies mid-stream abandons the stream but teleports its
// unfinished entries to their owners — migration degrades, it does not
// lose data.
func TestStreamRegionSenderDeath(t *testing.T) {
	f := buildFixture(t, 8, 50, 2, false)
	nodes := f.sys.Nodes()
	src, dst := nodes[6], nodes[7]
	pred, ok := dst.node.Predecessor()
	if !ok {
		t.Fatal("unstabilized ring")
	}
	keys, entries := xferEntries(pred, 500)
	done := false
	f.sys.streamRegion(src, dst.ID(), "xfer-dead", keys, entries, func() { done = true })
	if err := f.sys.net.CrashNode(src.ID()); err != nil {
		t.Fatal(err)
	}
	f.sys.ForgetNode(src.ID())
	f.sys.net.FixAround(src.ID())
	f.eng.RunUntil(f.eng.Now() + time.Minute)
	if !done {
		t.Fatal("stream never settled after sender death")
	}
	stored := 0
	for _, in := range f.sys.Nodes() {
		stored += in.st.Size("xfer-dead")
	}
	if stored != 500 {
		t.Fatalf("%d of 500 entries survive the sender death", stored)
	}
}

// Load-balancing migrations go through the bulk path end to end: after
// a skewed run with migrations, the accounting must show streams that
// were strictly cheaper than point-wise republication.
func TestMigrationUsesBulkTransfer(t *testing.T) {
	f := buildFixture(t, 24, 3000, 2, false)
	if err := f.sys.EnableLoadBalancing(LBConfig{Delta: 0, ProbeLevel: 4, Period: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 10*time.Minute)
	m, _ := f.sys.LBStats()
	f.sys.DisableLoadBalancing()
	f.eng.Run()
	if m == 0 {
		t.Skip("no migrations on this fixture")
	}
	ts := f.sys.TransferStats()
	if ts.Transfers == 0 {
		t.Fatalf("migrations ran (%d) but no bulk streams: %+v", m, ts)
	}
	if ts.BulkMessages >= ts.PointwiseMessages || ts.BulkBytes >= ts.PointwiseBytes {
		t.Fatalf("bulk not strictly cheaper: %+v", ts)
	}
	// Conservation: every entry still lives exactly once.
	if got := f.sys.TotalEntries(); got != 3000 {
		t.Fatalf("entries = %d, want 3000", got)
	}
}
