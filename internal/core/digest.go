package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"landmarkdht/internal/lph"
)

// Region digests for anti-entropy. A region's digest is the XOR of its
// entries' individual digests, so it is independent of entry order and
// incrementally updatable: adding or removing one entry XORs its
// digest in or out, and two regions holding the same entry set agree
// on the digest no matter how they arrived at it (bulk transfer,
// replayed publishes, or a mix). XOR cancellation between *different*
// entries is as likely as a 64-bit hash collision — fine for
// scheduling repairs, which re-verify the full digest after the
// transfer anyway.

// EntryDigest hashes one entry — its ring key, object id, exact point
// coordinates, and optional encoded object bytes — into a 64-bit
// FNV-1a digest. The point is hashed bit-for-bit (it is stored ground
// truth, see the region codec), so two entries differing by one ulp
// digest differently.
func EntryDigest(key lph.Key, e Entry, obj []byte) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], key)
	h.Write(b[:])
	binary.BigEndian.PutUint32(b[:4], uint32(e.Obj))
	h.Write(b[:4])
	for _, c := range e.Point {
		binary.BigEndian.PutUint64(b[:], math.Float64bits(c))
		h.Write(b[:])
	}
	h.Write(obj)
	return h.Sum64()
}

// RegionDigest folds a key/entry batch into one order-independent
// digest (no object bytes — the paper-shape regions carry none).
func RegionDigest(keys []lph.Key, entries []Entry) uint64 {
	var d uint64
	for i := range entries {
		d ^= EntryDigest(keys[i], entries[i], nil)
	}
	return d
}

// StoreDigest summarizes one index of a Store for an anti-entropy
// exchange: the entry count and the combined digest, computed over the
// store's backing slices without copying them.
func StoreDigest(s Store, index string) (entries int, digest uint64) {
	s.View(index, func(keys []lph.Key, ents []Entry) {
		entries = len(ents)
		digest = RegionDigest(keys, ents)
	})
	return entries, digest
}
