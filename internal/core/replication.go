package core

import (
	"fmt"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
)

// Replication places each index entry on the key's successor AND the
// next R−1 nodes of its successor list — the standard Chord soft-state
// robustness technique (Stoica et al. §V.B, "replicate data associated
// with a key at the k nodes succeeding the key").
//
// The query path needs no changes: routing always delivers a subquery
// to the current successor of its region, and when the primary crashes
// the first replica IS the new successor, so its copy of the entries
// answers immediately — no republication delay. The querier already
// deduplicates results by object id, so overlapping replica answers
// are harmless.
//
// Replication interacts with dynamic load migration (splitting a
// node's range would have to re-shard every replica chain), so a
// System rejects enabling both; pick robustness or migration per
// deployment. Replicated entries count toward the paper's load measure
// on every holder.

// ReplicateAll re-places every currently stored primary entry onto the
// next replicas-1 successors of its key. Call after bulk loading (or
// again after membership changes to repair replica sets). replicas
// counts total copies including the primary.
func (s *System) ReplicateAll(indexName string, replicas int) error {
	if _, err := s.lookupIndex(indexName); err != nil {
		return err
	}
	if replicas < 2 {
		return fmt.Errorf("core: replication needs at least 2 copies, got %d", replicas)
	}
	if s.lb != nil {
		return fmt.Errorf("core: replication and dynamic load migration cannot be combined")
	}
	if replicas > s.cfg.Chord.NumSuccessors {
		return fmt.Errorf("core: %d replicas exceed the successor-list length %d",
			replicas, s.cfg.Chord.NumSuccessors)
	}
	// Snapshot primaries first: only entries whose key this node owns
	// are primaries; earlier replicas must not cascade.
	type placement struct {
		node *IndexNode
		key  lph.Key
		e    Entry
	}
	var extra []placement
	for _, in := range s.Nodes() {
		st, ok := in.stores[indexName]
		if !ok {
			continue
		}
		for i, key := range st.keys {
			if !in.node.OwnsKey(key) {
				continue // already a replica copy
			}
			succs := in.node.SuccessorList()
			placed := map[chord.ID]bool{in.ID(): true}
			for _, succ := range succs {
				if len(placed) >= replicas {
					break
				}
				if placed[succ] {
					continue
				}
				placed[succ] = true
				if rn := s.nodes[succ]; rn != nil {
					extra = append(extra, placement{rn, key, st.entries[i]})
				}
			}
		}
	}
	for _, p := range extra {
		p.node.store(indexName).add(p.key, p.e)
		s.chargeTransfer(1)
	}
	return nil
}

// EnableLoadBalancing is extended to refuse replicated deployments —
// see the guard in loadbal.go (replication check happens there via
// hasReplicas).
//
// hasReplicas reports whether any node stores an entry whose key it
// does not own (i.e. a replica copy).
func (s *System) hasReplicas() bool {
	for _, in := range s.nodes {
		for _, st := range in.stores {
			for _, key := range st.keys {
				if !in.node.OwnsKey(key) {
					return true
				}
			}
		}
	}
	return false
}
