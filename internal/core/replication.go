package core

import (
	"fmt"
	"sort"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
)

// Replication places each index entry on the key's successor AND the
// next R−1 nodes of its successor list — the standard Chord soft-state
// robustness technique (Stoica et al. §V.B, "replicate data associated
// with a key at the k nodes succeeding the key").
//
// The query path needs no changes: routing always delivers a subquery
// to the current successor of its region, and when the primary crashes
// the first replica IS the new successor, so its copy of the entries
// answers immediately — no republication delay. The querier already
// deduplicates results by object id, so overlapping replica answers
// are harmless.
//
// Replication interacts with dynamic load migration (splitting a
// node's range would have to re-shard every replica chain), so a
// System rejects enabling both; pick robustness or migration per
// deployment. Replicated entries count toward the paper's load measure
// on every holder.

// ReplicateAll establishes the replica placement for every currently
// stored entry of an index and registers the index for automatic repair
// (RepairReplicas / System.CrashNode / System.JoinNode). Call after
// bulk loading. replicas counts total copies including the primary.
// The call is idempotent: repeating it (or calling it after a repair)
// moves nothing and charges no transfer traffic.
func (s *System) ReplicateAll(indexName string, replicas int) error {
	if _, err := s.lookupIndex(indexName); err != nil {
		return err
	}
	if replicas < 2 {
		return fmt.Errorf("core: replication needs at least 2 copies, got %d", replicas)
	}
	if s.lb != nil {
		return fmt.Errorf("core: replication and dynamic load migration cannot be combined")
	}
	if replicas > s.cfg.Chord.NumSuccessors {
		return fmt.Errorf("core: %d replicas exceed the successor-list length %d",
			replicas, s.cfg.Chord.NumSuccessors)
	}
	s.replicated[indexName] = replicas
	s.repairIndex(indexName, replicas)
	return nil
}

// RepairReplicas re-establishes the registered replica placements after
// a membership change: missing copies (lost with a crashed holder) are
// restored from the survivors, stale copies (holders that fell out of a
// key's successor set after a join) are removed.
func (s *System) RepairReplicas() {
	names := make([]string, 0, len(s.replicated))
	for name := range s.replicated {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.repairIndex(name, s.replicated[name])
	}
}

// repairIndex recomputes the full replica placement for one index and
// rebuilds every node's store to exactly that placement: the union of
// surviving copies, deduplicated by (key, object), goes on each key's
// current successor — the primary — and the next replicas-1 distinct
// live successors. Only copies a node did not already hold are charged
// as transfer traffic, which makes the pass idempotent by construction.
func (s *System) repairIndex(indexName string, replicas int) {
	type kobj struct {
		key lph.Key
		obj ObjectID
	}
	// Union of surviving copies, in ring-order node iteration for
	// deterministic placement; remember what each node already holds.
	seen := make(map[kobj]bool)
	var keys []lph.Key
	var entries []Entry
	have := make(map[chord.ID]map[kobj]bool)
	nodes := s.Nodes()
	for _, in := range nodes {
		var h map[kobj]bool
		in.st.View(indexName, func(ks []lph.Key, es []Entry) {
			h = make(map[kobj]bool, len(ks))
			for i, key := range ks {
				ko := kobj{key, es[i].Obj}
				h[ko] = true
				if !seen[ko] {
					seen[ko] = true
					keys = append(keys, key)
					entries = append(entries, es[i])
				}
			}
		})
		if h == nil {
			continue
		}
		have[in.ID()] = h
	}
	desired := make(map[chord.ID][]int) // node -> indices into keys/entries
	for i, key := range keys {
		owner, err := s.net.SuccessorNode(key)
		if err != nil {
			continue // empty ring: nowhere to place
		}
		placed := map[chord.ID]bool{owner.ID(): true}
		targets := []chord.ID{owner.ID()}
		for _, succ := range owner.SuccessorList() {
			if len(targets) >= replicas {
				break
			}
			if placed[succ] || s.nodes[succ] == nil {
				continue
			}
			placed[succ] = true
			targets = append(targets, succ)
		}
		for _, t := range targets {
			desired[t] = append(desired[t], i)
		}
	}
	wantK := make([]lph.Key, 0, 64)
	wantE := make([]Entry, 0, 64)
	addK := make([]lph.Key, 0, 64)
	addE := make([]Entry, 0, 64)
	for _, in := range nodes {
		want := desired[in.ID()]
		if len(want) == 0 {
			s.noteStoreErr(in.st.DropIndex(indexName))
			continue
		}
		h := have[in.ID()]
		wantK, wantE = wantK[:0], wantE[:0]
		addK, addE = addK[:0], addE[:0]
		for _, i := range want {
			wantK = append(wantK, keys[i])
			wantE = append(wantE, entries[i])
			if !h[kobj{keys[i], entries[i].Obj}] {
				addK = append(addK, keys[i])
				addE = append(addE, entries[i])
			}
		}
		s.noteStoreErr(in.st.ApplyRegion(indexName, wantK, wantE))
		// The copies this node gained travelled from a replica holder:
		// price them as one bulk stream per destination rather than an
		// entry-at-a-time republication.
		s.accountBulk(indexName, addK, addE)
	}
}

// EnableLoadBalancing is extended to refuse replicated deployments —
// see the guard in loadbal.go (replication check happens there via
// hasReplicas).
//
// hasReplicas reports whether any node stores an entry whose key it
// does not own (i.e. a replica copy).
func (s *System) hasReplicas() bool {
	for _, in := range s.nodes {
		found := false
		for _, name := range in.st.Indexes() {
			in.st.View(name, func(keys []lph.Key, _ []Entry) {
				for _, key := range keys {
					if !in.node.OwnsKey(key) {
						found = true
						return
					}
				}
			})
			if found {
				return true
			}
		}
	}
	return false
}
