package core

import (
	"encoding/binary"
	"fmt"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
	"landmarkdht/internal/wal"
)

// WALStore is the durable Store backend: an in-memory image (a
// MemStore, authoritative for every read) in front of a write-ahead
// log with periodic compacting snapshots (internal/wal). Every
// mutation is applied to the image and journaled; on restart the store
// replays snapshot + journal and the node serves its region from disk
// instead of rebuilding it from the corpus.
//
// The store takes no clock of its own: compaction stamps come from
// WALStoreOptions.Now, so simulated deployments stay deterministic
// (the Clock seam) and live deployments pass wall time in.

// Journal record ops. A record is [1B op | 1B index-name len | name |
// op payload]; region payloads use the region codec (regioncodec.go).
// Snapshot records reuse opRegion, so one decoder replays both files.
const (
	opPut    = 1 // payload: one encoded entry
	opDelete = 2 // payload: 8B key BE + 4B obj BE
	opRegion = 3 // payload: encoded region — replaces the index wholesale
	opBatch  = 4 // payload: encoded region — appends to the index
	opDrop   = 5 // no payload
)

// WALStoreOptions configures a durable store.
type WALStoreOptions struct {
	// Dir is the store directory (snapshot + journal live here).
	Dir string
	// Sync is the journal fsync policy; SyncEvery its interval (see
	// wal.Options).
	Sync      wal.SyncPolicy
	SyncEvery int
	// CompactEvery triggers a compacting snapshot after that many
	// journal appends (0 uses the default of 4096; negative disables
	// auto-compaction).
	CompactEvery int
	// Now supplies compaction stamps (nanoseconds or any monotone
	// scale). Nil stamps snapshots with 0. Simulated runtimes pass the
	// virtual clock; live runtimes pass wall time.
	Now func() int64
}

const defaultCompactEvery = 4096

// WALStore implements Store with durability; see the package comment.
type WALStore struct {
	mem   *MemStore
	ws    *wal.Store
	opts  WALStoreOptions
	rec   RecoveryStats
	since int // journal appends since the last compaction
	buf   []byte
}

// NewWALStore opens (creating if needed) a durable store rooted at
// opts.Dir and recovers its contents. A torn journal tail is truncated
// silently (the crash artifact); mid-journal corruption or a damaged
// snapshot fails loudly with wal.ErrCorrupt.
func NewWALStore(opts WALStoreOptions) (*WALStore, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: WALStore needs a directory")
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = defaultCompactEvery
	}
	st := &WALStore{mem: NewMemStore(), opts: opts}
	apply := func(p []byte) error { return st.applyRecord(p) }
	ws, err := wal.OpenStore(opts.Dir, wal.Options{Sync: opts.Sync, SyncEvery: opts.SyncEvery}, apply, apply)
	if err != nil {
		return nil, err
	}
	st.ws = ws
	s := ws.Stats()
	st.rec = RecoveryStats{
		RecordsReplayed: s.LogRecords,
		SnapshotRecords: s.SnapshotRecords,
		SnapshotStamp:   s.SnapshotStamp,
		LogBytes:        s.LogBytes,
	}
	return st, nil
}

// Recovery implements Recoverable.
func (st *WALStore) Recovery() RecoveryStats {
	st.rec.LogBytes = st.ws.LogBytes()
	return st.rec
}

// applyRecord replays one journal or snapshot record into the image.
func (st *WALStore) applyRecord(p []byte) error {
	if len(p) < 2 {
		return fmt.Errorf("core: journal record of %d bytes", len(p))
	}
	op := p[0]
	nameLen := int(p[1])
	if len(p) < 2+nameLen {
		return fmt.Errorf("core: journal record truncates its index name")
	}
	index := string(p[2 : 2+nameLen])
	body := p[2+nameLen:]
	switch op {
	case opPut:
		key, e, rest, err := DecodeEntry(body)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("core: %d trailing bytes after put record", len(rest))
		}
		return st.mem.Put(index, key, e)
	case opDelete:
		if len(body) != 12 {
			return fmt.Errorf("core: delete record body of %d bytes", len(body))
		}
		key := binary.BigEndian.Uint64(body[0:8])
		obj := ObjectID(int32(binary.BigEndian.Uint32(body[8:12])))
		_, err := st.mem.Delete(index, key, obj)
		return err
	case opRegion, opBatch:
		keys, entries, err := DecodeRegion(body, nil, nil)
		if err != nil {
			return err
		}
		if op == opRegion {
			return st.mem.ApplyRegion(index, keys, entries)
		}
		return st.mem.PutBatch(index, keys, entries)
	case opDrop:
		if len(body) != 0 {
			return fmt.Errorf("core: %d trailing bytes after drop record", len(body))
		}
		return st.mem.DropIndex(index)
	default:
		return fmt.Errorf("core: unknown journal op %d", op)
	}
}

// record frames and appends one journal record, then auto-compacts if
// the journal has grown past the configured interval.
func (st *WALStore) record(op byte, index string, body func([]byte) []byte) error {
	if len(index) > 255 {
		return fmt.Errorf("core: index name of %d bytes cannot be journaled", len(index))
	}
	st.buf = append(st.buf[:0], op, byte(len(index)))
	st.buf = append(st.buf, index...)
	if body != nil {
		st.buf = body(st.buf)
	}
	if err := st.ws.Append(st.buf); err != nil {
		return err
	}
	st.since++
	if st.opts.CompactEvery > 0 && st.since >= st.opts.CompactEvery {
		return st.Compact()
	}
	return nil
}

// Compact writes a snapshot of the current image and truncates the
// journal. Called automatically every CompactEvery appends; callers
// may also force it (a clean shutdown, a test).
func (st *WALStore) Compact() error {
	stamp := int64(0)
	if st.opts.Now != nil {
		stamp = st.opts.Now()
	}
	err := st.ws.Compact(stamp, func(emit func([]byte) error) error {
		for _, index := range st.mem.Indexes() {
			var rec []byte
			st.mem.View(index, func(keys []lph.Key, entries []Entry) {
				rec = append(rec, opRegion, byte(len(index)))
				rec = append(rec, index...)
				rec = AppendRegion(rec, keys, entries)
			})
			if rec == nil {
				continue
			}
			if err := emit(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	st.since = 0
	st.rec.Compactions++
	st.rec.SnapshotStamp = stamp
	return nil
}

// --- Store interface: reads delegate to the image, writes journal. ---

func (st *WALStore) Put(index string, key lph.Key, e Entry) error {
	if err := st.mem.Put(index, key, e); err != nil {
		return err
	}
	return st.record(opPut, index, func(b []byte) []byte { return AppendEntry(b, key, e) })
}

func (st *WALStore) PutBatch(index string, keys []lph.Key, entries []Entry) error {
	if len(keys) == 0 {
		return nil
	}
	if err := st.mem.PutBatch(index, keys, entries); err != nil {
		return err
	}
	return st.record(opBatch, index, func(b []byte) []byte { return AppendRegion(b, keys, entries) })
}

func (st *WALStore) Delete(index string, key lph.Key, obj ObjectID) (bool, error) {
	ok, err := st.mem.Delete(index, key, obj)
	if err != nil || !ok {
		return ok, err
	}
	return ok, st.record(opDelete, index, func(b []byte) []byte {
		var kb [12]byte
		binary.BigEndian.PutUint64(kb[0:8], key)
		binary.BigEndian.PutUint32(kb[8:12], uint32(obj))
		return append(b, kb[:]...)
	})
}

func (st *WALStore) Scan(index string, r query.Region, buf []Entry) []Entry {
	return st.mem.Scan(index, r, buf)
}

func (st *WALStore) Size(index string) int { return st.mem.Size(index) }
func (st *WALStore) TotalSize() int        { return st.mem.TotalSize() }
func (st *WALStore) Indexes() []string     { return st.mem.Indexes() }

func (st *WALStore) View(index string, fn func(keys []lph.Key, entries []Entry)) {
	st.mem.View(index, fn)
}

func (st *WALStore) RegionSnapshot(index string) ([]lph.Key, []Entry) {
	return st.mem.RegionSnapshot(index)
}

func (st *WALStore) ApplyRegion(index string, keys []lph.Key, entries []Entry) error {
	if err := st.mem.ApplyRegion(index, keys, entries); err != nil {
		return err
	}
	return st.record(opRegion, index, func(b []byte) []byte { return AppendRegion(b, keys, entries) })
}

func (st *WALStore) ExtractUpTo(index string, base, split lph.Key) ([]lph.Key, []Entry, error) {
	keys, entries, err := st.mem.ExtractUpTo(index, base, split)
	if err != nil {
		return keys, entries, err
	}
	if len(keys) == 0 {
		return keys, entries, nil
	}
	// Journal the survivors wholesale: extraction is rare (one split
	// per migration) and a replace record keeps replay trivial.
	err = st.record(opRegion, index, func(b []byte) []byte {
		st.mem.View(index, func(k []lph.Key, e []Entry) { b = AppendRegion(b, k, e) })
		return b
	})
	return keys, entries, err
}

func (st *WALStore) Drain(index string) ([]lph.Key, []Entry, error) {
	keys, entries, err := st.mem.Drain(index)
	if err != nil {
		return keys, entries, err
	}
	if len(keys) == 0 {
		return keys, entries, nil
	}
	return keys, entries, st.record(opDrop, index, nil)
}

func (st *WALStore) DropIndex(index string) error {
	if st.mem.Size(index) == 0 {
		return st.mem.DropIndex(index)
	}
	if err := st.mem.DropIndex(index); err != nil {
		return err
	}
	return st.record(opDrop, index, nil)
}

// Close flushes and closes the journal. The image is discarded; the
// next NewWALStore on the same directory recovers it.
func (st *WALStore) Close() error { return st.ws.Close() }

// WALStoreFactory returns a StoreFactory giving every node its own
// durable store under baseDir (one subdirectory per node id). The
// template's Dir field is ignored.
func WALStoreFactory(baseDir string, template WALStoreOptions) StoreFactory {
	return func(node uint64) (Store, error) {
		opts := template
		opts.Dir = NodeDataDir(baseDir, node)
		return NewWALStore(opts)
	}
}

// NodeDataDir is the canonical per-node store directory under a data
// root — shared by the factory and by tooling that inspects it.
func NodeDataDir(baseDir string, node uint64) string {
	return fmt.Sprintf("%s/node-%016x", baseDir, node)
}
