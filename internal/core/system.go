package core

import (
	"fmt"
	"sort"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/runtime"
	"landmarkdht/internal/runtime/simrt"
	"landmarkdht/internal/sim"
)

// Config parameterizes a System.
type Config struct {
	// Chord is the overlay configuration.
	Chord chord.Config
	// Msg is the message-size model (§4.1).
	Msg MessageModel
	// MaxHops bounds a subquery's path length as a routing-loop guard.
	MaxHops int
	// TransferBytesPerSec is the bandwidth assumed for load-migration
	// entry transfers (affects how long migrated entries are in
	// flight; queries during that window can miss them).
	TransferBytesPerSec float64
	// EncodeWire runs query and result messages through the real
	// binary codec (internal/wire) instead of size accounting alone:
	// subquery cubes are quantized to the paper's 2-byte bounds in
	// transit (widened, so exactness of result sets is preserved) and
	// result distances are quantized against Index.MaxDist.
	EncodeWire bool
	// Retry configures reliable subquery/result delivery. The zero
	// value disables it, preserving the paper's fire-and-forget
	// behavior (lost subqueries surface as recall loss).
	Retry RetryConfig
	// Deadline, when positive, bounds every query's total time
	// (QueryOpts.Deadline overrides it per query). On expiry the query
	// finishes with whatever results arrived, marked Complete=false,
	// and the still-outstanding regions become QueryResult.Uncovered.
	// Zero preserves the run-to-quiescence behavior.
	Deadline time.Duration
	// Hedge configures hedged retransmission of slow subqueries. The
	// zero value disables it.
	Hedge HedgeConfig
	// MaxActiveQueries, when positive, bounds the queries concurrently
	// active in the system. A query arriving at the cap is rejected at
	// admission: it completes immediately with an honest incomplete
	// result (its whole region Uncovered, nothing silently lost) and is
	// counted in System.AdmissionRejected. Zero admits everything —
	// overload then queues in the transport inboxes instead.
	MaxActiveQueries int
	// Store builds each node's storage backend when it joins. Nil uses
	// the in-memory NewMemStore (the paper's assumption: state is
	// re-derivable). A durable deployment installs a walstore factory
	// here so every node's region survives a restart.
	Store StoreFactory
	// TransferChunkBytes is the target payload size of one bulk
	// region-transfer chunk (internal/core/transfer.go). Zero uses the
	// 8 KiB default.
	TransferChunkBytes int
	// TransferWindow is the bulk transfer credit window: chunks in
	// flight before the stream stalls on an acknowledgement. Zero uses
	// the default of 4.
	TransferWindow int
}

// RetryConfig tunes the reliable-delivery layer: every subquery and
// result message is acknowledged by its receiver; a sender that sees
// no ack within the timeout re-resolves the destination (failing over
// to the region's current successor — under ReplicateAll placement,
// the first live replica) and retransmits with exponential backoff.
type RetryConfig struct {
	// MaxRetries bounds retransmissions per message; 0 disables the
	// reliability layer entirely.
	MaxRetries int
	// Timeout is the initial retransmission timeout (default 1s,
	// several times the simulated mean RTT). A timeout shorter than
	// the path RTT only costs duplicate messages: receivers
	// deduplicate delivered subqueries.
	Timeout time.Duration
	// Backoff multiplies the timeout after each attempt (default 2).
	Backoff float64
	// AckBytes is the size of an acknowledgement message (default 20,
	// a bare packet header in the paper's size model).
	AckBytes int
}

// Enabled reports whether the reliability layer is active.
func (rc RetryConfig) Enabled() bool { return rc.MaxRetries > 0 }

// HedgeConfig tunes hedged subquery retransmission: when a subquery
// is still unanswered Delay after it was shipped, a duplicate is sent
// to the first replica of its region's current owner (or to the owner
// itself when the index is not replicated — a replica-less alternate
// could answer from an empty store and silently shrink the result).
// The querier settles each outstanding region exactly once, so hedged
// duplicates can only add speed, never duplicate or corrupt results.
//
// Hedging also feeds a per-node suspicion counter: every hedge fire
// and every acknowledgement timeout against a node increments it, and
// once it crosses SuspicionThreshold the router prefers the node's
// successor as the next hop. Successful deliveries decrement the
// counter, and so does every avoidance decision, so a recovering node
// is probed again after at most SuspicionThreshold redirections —
// suspicion is a bias, never a permanent blacklist.
type HedgeConfig struct {
	// Delay is how long a subquery may stay outstanding before it is
	// hedged; 0 disables hedging. A good value is a high quantile of
	// the subquery round-trip distribution (under the paper's 180 ms
	// mean RTT, around 1–2 s).
	Delay time.Duration
	// MaxPerQuery bounds hedged messages per query (default 16).
	MaxPerQuery int
	// SuspicionThreshold is the consecutive-failure count after which
	// the router avoids a node (default 3).
	SuspicionThreshold int
}

// Enabled reports whether hedging is active.
func (hc HedgeConfig) Enabled() bool { return hc.Delay > 0 }

func (hc *HedgeConfig) fillDefaults() {
	if !hc.Enabled() {
		return
	}
	if hc.MaxPerQuery <= 0 {
		hc.MaxPerQuery = 16
	}
	if hc.SuspicionThreshold <= 0 {
		hc.SuspicionThreshold = 3
	}
}

func (rc *RetryConfig) fillDefaults() {
	if !rc.Enabled() {
		return
	}
	if rc.Timeout <= 0 {
		rc.Timeout = time.Second
	}
	if rc.Backoff < 1 {
		rc.Backoff = 2
	}
	if rc.AckBytes <= 0 {
		rc.AckBytes = 20
	}
}

// DefaultConfig returns the paper's simulation parameters.
func DefaultConfig() Config {
	return Config{
		Chord:               chord.DefaultConfig(),
		Msg:                 DefaultMessageModel(),
		MaxHops:             512,
		TransferBytesPerSec: 1 << 20, // 1 MiB/s
	}
}

// System is a deployment of the index architecture: an overlay of
// index nodes hosting any number of index schemes. It runs over the
// runtime seams — simulated (NewSystem) or live (NewSystemRuntime over
// a live runtime) — and, like the overlay, its protocol callbacks are
// single-threaded by contract.
type System struct {
	rt    runtime.Runtime
	net   *chord.Network
	cfg   Config
	nodes map[chord.ID]*IndexNode
	index map[string]*Index
	nextQ int
	lb    *lbController
	// replicated maps index names to their ReplicateAll replica counts;
	// RepairReplicas re-establishes these placements after membership
	// changes.
	replicated map[string]int
	// DroppedSubqueries counts subqueries lost to in-flight node
	// departures, injected message loss, or exhausted retries (visible
	// recall loss under churn).
	DroppedSubqueries int
	// RetriesIssued counts retransmitted messages (query or result)
	// sent by the reliability layer.
	RetriesIssued int
	// RecoveredSubqueries counts subqueries and result messages whose
	// delivery succeeded on a retransmission — losses that would have
	// been recall loss without the reliability layer.
	RecoveredSubqueries int
	// HedgesIssued counts hedged duplicate subqueries shipped by the
	// resilience layer (Config.Hedge).
	HedgesIssued int
	// AdmissionRejected counts queries refused by the admission gate
	// (Config.MaxActiveQueries); every rejection produced an honest
	// incomplete result.
	AdmissionRejected int
	// StoreErrors counts storage-backend failures (a durable store's
	// journal write or close failing). The in-memory state stays
	// coherent when this is non-zero, but durability of the counted
	// mutations is not guaranteed.
	StoreErrors int
	// active is the number of admitted, unfinished queries — the
	// admission gate's saturation measure.
	active int
	// shard is the runtime's per-node work seam (runtime.Sharder), nil
	// when the runtime has none. With shard executors, store scans and
	// exact-distance refinement run on the shard owning the node while
	// all other protocol state stays on the protocol executor.
	shard runtime.Sharder
	// suspicion counts consecutive delivery failures per node; see
	// HedgeConfig. Only written when hedging is enabled.
	suspicion map[chord.ID]int
	// scanBuf is the reusable candidate buffer for local store scans
	// (safe because a System is single-threaded and each scan's result
	// is consumed before the next scan runs; DESIGN.md §9).
	scanBuf []Entry
	// transfers accounts bulk region streams against the point-wise
	// republication they replaced (internal/core/transfer.go).
	transfers TransferStats
	// nextTransfer allocates stream ids; deterministic counter.
	nextTransfer uint64
	// rxApplied is the receiver-side dedup state: chunk sequence
	// numbers already applied, per in-flight transfer id.
	rxApplied map[uint64]map[uint32]bool
}

// IndexNode is the per-node application state: the index entries this
// node stores for each index scheme, behind the pluggable Store.
type IndexNode struct {
	sys       *System
	node      *chord.Node
	st        Store
	migrating bool
	// scanBuf is the node's reusable candidate buffer for sharded local
	// scans: each node's scans are serialized on its own shard executor,
	// so a per-node buffer is single-goroutine. Single-context runtimes
	// use the system-wide System.scanBuf instead.
	scanBuf []Entry
}

// NewSystem creates an empty system over a fresh overlay driven by a
// simulation engine — the historical constructor, equivalent to
// NewSystemRuntime over the simrt adapter.
func NewSystem(eng *sim.Engine, model netmodel.Model, cfg Config) *System {
	rt := simrt.New(eng)
	return NewSystemRuntime(rt, rt, model, cfg)
}

// NewSystemRuntime creates an empty system over explicit runtime seams
// (simulated or live).
func NewSystemRuntime(rt runtime.Runtime, tr runtime.Transport, model netmodel.Model, cfg Config) *System {
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 512
	}
	if cfg.TransferBytesPerSec <= 0 {
		cfg.TransferBytesPerSec = 1 << 20
	}
	if cfg.Msg == (MessageModel{}) {
		cfg.Msg = DefaultMessageModel()
	}
	cfg.Retry.fillDefaults()
	cfg.Hedge.fillDefaults()
	s := &System{
		rt:         rt,
		net:        chord.NewNetworkRuntime(rt, tr, model, cfg.Chord),
		cfg:        cfg,
		nodes:      make(map[chord.ID]*IndexNode),
		index:      make(map[string]*Index),
		replicated: make(map[string]int),
		suspicion:  make(map[chord.ID]int),
	}
	s.shard, _ = rt.(runtime.Sharder)
	return s
}

// sharded reports whether per-node store work runs on shard executors.
// When false, everything runs on the single protocol context and
// cross-node state may be touched freely from it.
func (s *System) sharded() bool {
	return s.shard != nil && s.shard.ShardCount() > 0
}

// storeAdd applies one entry to a node's store on the executor that
// owns the node's data: inline on single-context runtimes, on the
// node's shard executor otherwise. done (optional) runs on the
// protocol executor after the entry is stored.
func (s *System) storeAdd(in *IndexNode, indexName string, key lph.Key, e Entry, done func()) {
	if !s.sharded() {
		s.noteStoreErr(in.st.Put(indexName, key, e))
		if done != nil {
			done()
		}
		return
	}
	// The shard executor must not touch System counters; a journal
	// failure rides back to the protocol executor in putErr.
	var putErr error
	s.shard.ExecShard(uint64(in.node.ID()), func() {
		putErr = in.st.Put(indexName, key, e)
	}, func() {
		s.noteStoreErr(putErr)
		if done != nil {
			done()
		}
	})
}

// noteStoreErr counts a storage-backend failure (see StoreErrors).
func (s *System) noteStoreErr(err error) {
	if err != nil {
		s.StoreErrors++
	}
}

// suspect records a delivery failure against a node (hedge fire or
// acknowledgement timeout). No-op unless hedging is enabled: suspicion
// only exists to steer the hedge policy's routing bias.
func (s *System) suspect(id chord.ID) {
	if !s.cfg.Hedge.Enabled() {
		return
	}
	s.suspicion[id]++
}

// unsuspect decays a node's suspicion after a successful delivery.
func (s *System) unsuspect(id chord.ID) {
	if len(s.suspicion) == 0 {
		return
	}
	if c, ok := s.suspicion[id]; ok {
		if c <= 1 {
			delete(s.suspicion, id)
		} else {
			s.suspicion[id] = c - 1
		}
	}
}

// Runtime returns the runtime driving the system.
func (s *System) Runtime() runtime.Runtime { return s.rt }

// Network returns the underlying overlay.
func (s *System) Network() *chord.Network { return s.net }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// AddNode joins a node with the given ring identifier and latency-
// model host. The node's storage backend comes from Config.Store
// (in-memory by default); a durable factory may recover a previous
// incarnation's region from disk here.
func (s *System) AddNode(id chord.ID, host int) (*IndexNode, error) {
	st, err := s.newStore(id)
	if err != nil {
		return nil, err
	}
	nd, err := s.net.AddNode(id, host)
	if err != nil {
		s.noteStoreErr(st.Close())
		return nil, err
	}
	in := &IndexNode{sys: s, node: nd, st: st}
	s.nodes[id] = in
	return in, nil
}

// newStore builds a node's storage backend from the configured factory.
func (s *System) newStore(id chord.ID) (Store, error) {
	if s.cfg.Store == nil {
		return NewMemStore(), nil
	}
	return s.cfg.Store(id)
}

// Stabilize installs oracle-stabilized routing state on all nodes (the
// measured steady state of the paper's experiments).
func (s *System) Stabilize() { s.net.BuildAllTables() }

// Node returns the index node with the given identifier, or nil.
func (s *System) Node(id chord.ID) *IndexNode { return s.nodes[id] }

// Nodes returns all index nodes in ring order.
func (s *System) Nodes() []*IndexNode {
	out := make([]*IndexNode, 0, len(s.nodes))
	for _, nd := range s.net.Nodes() {
		out = append(out, s.nodes[nd.ID()])
	}
	return out
}

// DeployIndex registers an index scheme on the platform. Multiple
// schemes can coexist; each is rotated by its partitioner's offset.
func (s *System) DeployIndex(ix *Index) error {
	if err := ix.validate(); err != nil {
		return err
	}
	if _, dup := s.index[ix.Name]; dup {
		return fmt.Errorf("core: index %q already deployed", ix.Name)
	}
	s.index[ix.Name] = ix
	return nil
}

// RemoveIndex undeploys a scheme and drops all of its entries from
// every node. Used by dynamic landmark refresh (§6 future work #3):
// the caller re-deploys the scheme with a new landmark set and
// re-publishes the re-embedded entries.
func (s *System) RemoveIndex(name string) error {
	if _, ok := s.index[name]; !ok {
		return fmt.Errorf("core: unknown index %q", name)
	}
	delete(s.index, name)
	for _, in := range s.nodes {
		s.noteStoreErr(in.st.DropIndex(name))
	}
	return nil
}

// IndexNames returns the deployed schemes.
func (s *System) IndexNames() []string {
	out := make([]string, 0, len(s.index))
	for name := range s.index {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookupIndex returns the deployed index by name.
func (s *System) lookupIndex(name string) (*Index, error) {
	ix, ok := s.index[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown index %q", name)
	}
	return ix, nil
}

// BulkLoad places entries directly on their responsible nodes through
// the successor oracle — the fast path used to populate large
// experiments. It is equivalent to every publish having completed.
func (s *System) BulkLoad(indexName string, entries []Entry) error {
	ix, err := s.lookupIndex(indexName)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if len(e.Point) != ix.Part.K() {
			return fmt.Errorf("core: entry for %q has %d coordinates, want %d", indexName, len(e.Point), ix.Part.K())
		}
		key := ix.Part.Ring(ix.Part.Hash(e.Point))
		owner, err := s.net.SuccessorNode(key)
		if err != nil {
			return err
		}
		if err := s.nodes[owner.ID()].st.Put(indexName, key, e); err != nil {
			return err
		}
	}
	return nil
}

// Publish inserts one entry through the overlay: a Chord lookup from
// the source node resolves the responsible node, then the entry
// travels there. done (optional) receives the owner and lookup hop
// count.
func (s *System) Publish(indexName string, srcID chord.ID, e Entry, done func(owner chord.ID, hops int)) error {
	ix, err := s.lookupIndex(indexName)
	if err != nil {
		return err
	}
	src, ok := s.nodes[srcID]
	if !ok {
		return fmt.Errorf("core: unknown source node %#x", srcID)
	}
	if len(e.Point) != ix.Part.K() {
		return fmt.Errorf("core: entry has %d coordinates, want %d", len(e.Point), ix.Part.K())
	}
	key := ix.Part.Ring(ix.Part.Hash(e.Point))
	lookupBytes := 40
	src.node.FindSuccessor(key, lookupBytes, func(owner chord.ID, hops int) {
		entryBytes := s.cfg.Msg.TransferBytes(1)
		if s.cfg.Retry.Enabled() {
			s.publishReliably(src, owner, key, indexName, e, entryBytes, hops, done)
			return
		}
		s.net.SendOrFail(src.node, owner, chord.KindLookup, entryBytes, func(dst *chord.Node) {
			id := dst.ID()
			s.storeAdd(s.nodes[id], indexName, key, e, func() {
				if done != nil {
					done(id, hops+1)
				}
			})
		}, func() {
			// Owner vanished: re-resolve through the oracle so the
			// entry is not lost (models retry).
			cur, err := s.net.SuccessorNode(key)
			if err != nil {
				return
			}
			id := cur.ID()
			s.storeAdd(s.nodes[id], indexName, key, e, func() {
				if done != nil {
					done(id, hops+1)
				}
			})
		})
	})
	return nil
}

// publishReliably delivers a published entry with the ack/timeout/retry
// state machine: the receiver acknowledges storing the entry; a sender
// seeing no ack within the timeout re-resolves the key's current owner
// and retransmits with exponential backoff, up to MaxRetries.
func (s *System) publishReliably(src *IndexNode, owner chord.ID, key lph.Key, indexName string, e Entry, entryBytes, hops int, done func(chord.ID, int)) {
	delivered := false
	var send func(dest chord.ID, attempt int)
	send = func(dest chord.ID, attempt int) {
		if attempt > 0 {
			s.RetriesIssued++
		}
		timer := s.rt.AfterFunc(s.retryTimeout(attempt), func() {
			if delivered || !src.node.Alive() {
				return
			}
			if attempt >= s.cfg.Retry.MaxRetries {
				return // entry lost: retries exhausted
			}
			cur, err := s.net.SuccessorID(key)
			if err != nil {
				return
			}
			send(cur, attempt+1)
		})
		s.net.SendOrFail(src.node, dest, chord.KindLookup, entryBytes, func(dst *chord.Node) {
			s.net.SendOrFail(dst, src.node.ID(), chord.KindAck, s.cfg.Retry.AckBytes, func(*chord.Node) {
				timer.Stop()
			}, nil)
			if delivered {
				return // duplicate from a premature timeout
			}
			delivered = true
			if attempt > 0 {
				s.RecoveredSubqueries++
			}
			id := dst.ID()
			s.storeAdd(s.nodes[id], indexName, key, e, func() {
				if done != nil {
					done(id, hops+1)
				}
			})
		}, nil)
	}
	send(owner, 0)
}

// Store returns the node's storage backend.
func (in *IndexNode) Store() Store { return in.st }

// Snapshot copies the node's entries per index scheme (used by churn
// injection to model soft-state republication of a crashed node's
// entries).
func (in *IndexNode) Snapshot() map[string][]Entry {
	out := make(map[string][]Entry)
	for _, name := range in.st.Indexes() {
		_, entries := in.st.RegionSnapshot(name)
		if len(entries) == 0 {
			continue
		}
		out[name] = entries
	}
	return out
}

// ForgetNode drops the application state of a node that crashed at the
// overlay layer (chord.Network.CrashNode). Its entries are gone until
// republished — unless its store is durable, in which case a factory
// re-adding the same ID recovers them from disk. The store is closed
// to release backend resources; whether the journaled state survives
// is governed by the fsync policy, not by this close (real SIGKILL
// crash recovery is exercised by the netrt deployment).
func (s *System) ForgetNode(id chord.ID) {
	if in, ok := s.nodes[id]; ok {
		s.noteStoreErr(in.st.Close())
	}
	delete(s.nodes, id)
}

// CrashNode fails a node abruptly: the overlay node crashes (in-flight
// messages from it die with its process), its application state is
// dropped, routing tables around the gap are repaired, and registered
// replicated indexes are re-established on the new placement.
func (s *System) CrashNode(id chord.ID) error {
	if _, ok := s.nodes[id]; !ok {
		return fmt.Errorf("core: crash of unknown node %#x", id)
	}
	if err := s.net.CrashNode(id); err != nil {
		return err
	}
	s.ForgetNode(id)
	s.net.FixAround(id)
	s.RepairReplicas()
	return nil
}

// JoinNode adds a node mid-run: it joins the overlay, routing tables
// around it are refreshed, and replicated indexes are repaired so the
// newcomer takes over the primary/replica copies for its arc.
func (s *System) JoinNode(id chord.ID, host int) (*IndexNode, error) {
	in, err := s.AddNode(id, host)
	if err != nil {
		return nil, err
	}
	s.net.FixAround(id)
	s.RepairReplicas()
	return in, nil
}

// retryTimeout returns the retransmission timeout for the given attempt
// (exponential backoff from the configured base).
func (s *System) retryTimeout(attempt int) time.Duration {
	d := float64(s.cfg.Retry.Timeout)
	for i := 0; i < attempt; i++ {
		d *= s.cfg.Retry.Backoff
	}
	return time.Duration(d)
}

// Load returns the node's total entry count across schemes — the
// paper's load measure.
func (in *IndexNode) Load() int { return in.st.TotalSize() }

// LoadFor returns the node's entry count for one scheme.
func (in *IndexNode) LoadFor(indexName string) int { return in.st.Size(indexName) }

// ID returns the node's ring identifier.
func (in *IndexNode) ID() chord.ID { return in.node.ID() }

// ChordNode returns the underlying overlay node.
func (in *IndexNode) ChordNode() *chord.Node { return in.node }

// Loads returns every node's load in descending order — the paper's
// Figure 4 / Figure 6 presentation ("nodes are sorted in the
// decreasing order of the load").
func (s *System) Loads() []int {
	out := make([]int, 0, len(s.nodes))
	for _, in := range s.Nodes() {
		out = append(out, in.Load())
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// LoadsFor returns per-node loads for one scheme, descending.
func (s *System) LoadsFor(indexName string) []int {
	out := make([]int, 0, len(s.nodes))
	for _, in := range s.Nodes() {
		out = append(out, in.LoadFor(indexName))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// TotalEntries sums all stored entries (conservation check).
func (s *System) TotalEntries() int {
	total := 0
	for _, in := range s.nodes {
		total += in.Load()
	}
	return total
}

// RecoverySummary aggregates recovery statistics over every node whose
// store is durable (implements Recoverable), returning the durable
// node count and the summed stats. SnapshotStamp is the newest stamp
// across nodes.
func (s *System) RecoverySummary() (durable int, agg RecoveryStats) {
	for _, in := range s.nodes {
		r, ok := in.st.(Recoverable)
		if !ok {
			continue
		}
		durable++
		rs := r.Recovery()
		agg.RecordsReplayed += rs.RecordsReplayed
		agg.SnapshotRecords += rs.SnapshotRecords
		agg.Compactions += rs.Compactions
		agg.LogBytes += rs.LogBytes
		if rs.SnapshotStamp > agg.SnapshotStamp {
			agg.SnapshotStamp = rs.SnapshotStamp
		}
	}
	return durable, agg
}

// reinsert routes a batch of migrated entries to their current oracle
// owners (destination nodes may themselves have moved while the batch
// was in flight).
func (s *System) reinsert(indexName string, keys []lph.Key, entries []Entry) {
	for i, key := range keys {
		owner, err := s.net.SuccessorNode(key)
		if err != nil {
			continue
		}
		s.noteStoreErr(s.nodes[owner.ID()].st.Put(indexName, key, entries[i]))
	}
}
