package landmark

import (
	"math"
	"math/rand"
	"testing"

	"landmarkdht/internal/metric"
)

// fourCorners is a sample with four tight clusters at the corners of
// the unit square.
func fourCorners(rng *rand.Rand, perCluster int) []metric.Vector {
	centers := []metric.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	var out []metric.Vector
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			out = append(out, metric.Vector{
				c[0] + rng.NormFloat64()*0.01,
				c[1] + rng.NormFloat64()*0.01,
			})
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func nearestCenter(v metric.Vector) int {
	centers := []metric.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	best, bestD := 0, metric.L2(v, centers[0])
	for i := 1; i < 4; i++ {
		if d := metric.L2(v, centers[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func TestGreedyCoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := fourCorners(rng, 50)
	lm, err := Greedy(rng, sample, 4, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lm) != 4 {
		t.Fatalf("got %d landmarks", len(lm))
	}
	// Max-min selection must land one landmark near each corner.
	seen := map[int]bool{}
	for _, l := range lm {
		seen[nearestCenter(l)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("greedy landmarks cover %d of 4 clusters: %v", len(seen), lm)
	}
}

func TestGreedyDispersion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := fourCorners(rng, 50)
	lm, err := Greedy(rng, sample, 4, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	if s := Spread(lm, metric.L2); s < 0.9 {
		t.Fatalf("greedy spread = %v, want ~1 (corner separation)", s)
	}
}

func TestGreedyMembersOfSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sample := fourCorners(rng, 10)
	lm, _ := Greedy(rng, sample, 5, metric.L2)
	for _, l := range lm {
		found := false
		for _, s := range sample {
			if s[0] == l[0] && s[1] == l[1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("greedy produced a landmark not in the sample")
		}
	}
}

func TestGreedyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Greedy(rng, []metric.Vector{{1}}, 2, metric.L2); err == nil {
		t.Fatal("expected error for k > |sample|")
	}
	if _, err := Greedy[metric.Vector](rng, []metric.Vector{{1}}, 1, nil); err == nil {
		t.Fatal("expected error for nil distance")
	}
	if _, err := Greedy(rng, []metric.Vector{{1}}, 0, metric.L2); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestKMeansFindsCentroids(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sample := fourCorners(rng, 100)
	lm, err := KMeans(rng, sample, 4, metric.L2, DenseMean, 50)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range lm {
		c := nearestCenter(l)
		seen[c] = true
		centers := []metric.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
		if d := metric.L2(l, centers[c]); d > 0.05 {
			t.Fatalf("centroid %v is %v away from its cluster center", l, d)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("k-means covered %d of 4 clusters", len(seen))
	}
}

func TestKMeansRequiresMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeans(rng, fourCorners(rng, 5), 2, metric.L2, nil, 10); err == nil {
		t.Fatal("expected error for nil mean")
	}
}

func TestKMedoidsOnStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sample := []string{
		"AAAAAAAA", "AAAAAAAT", "AAAAAATT",
		"GGGGGGGG", "GGGGGGGC", "GGGGGGCC",
	}
	lm, err := KMedoids(rng, sample, 2, metric.Edit, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(lm) != 2 {
		t.Fatalf("got %d medoids", len(lm))
	}
	// One medoid should be A-heavy, the other G-heavy.
	if metric.Edit(lm[0], lm[1]) < 6 {
		t.Fatalf("medoids %q %q not separated", lm[0], lm[1])
	}
}

func TestDenseMean(t *testing.T) {
	m := DenseMean([]metric.Vector{{0, 0}, {2, 4}})
	if m[0] != 1 || m[1] != 2 {
		t.Fatalf("mean = %v", m)
	}
}

func TestDenseMeanPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DenseMean(nil)
}

func TestSparseMeanMergesTerms(t *testing.T) {
	a, _ := metric.NewSparseVector([]uint32{1, 2}, []float64{2, 2})
	b, _ := metric.NewSparseVector([]uint32{2, 3}, []float64{4, 6})
	m := SparseMean([]metric.SparseVector{a, b})
	if m.NNZ() != 3 {
		t.Fatalf("mean nnz = %d, want 3 (union of terms)", m.NNZ())
	}
	// term 2 appears in both: (2+4)/2 = 3.
	for i, idx := range m.Idx {
		switch idx {
		case 1:
			if m.Val[i] != 1 {
				t.Fatalf("term 1 weight = %v", m.Val[i])
			}
		case 2:
			if m.Val[i] != 3 {
				t.Fatalf("term 2 weight = %v", m.Val[i])
			}
		case 3:
			if m.Val[i] != 3 {
				t.Fatalf("term 3 weight = %v", m.Val[i])
			}
		}
	}
}

func TestSparseMeanGrowsSupport(t *testing.T) {
	// The §4.3 property: centroids have more terms than members.
	rng := rand.New(rand.NewSource(6))
	var docs []metric.SparseVector
	for i := 0; i < 50; i++ {
		idx := make([]uint32, 10)
		val := make([]float64, 10)
		for j := range idx {
			idx[j] = uint32(rng.Intn(1000))
			val[j] = 1
		}
		sv, _ := metric.NewSparseVector(idx, val)
		docs = append(docs, sv)
	}
	m := SparseMean(docs)
	if m.NNZ() <= docs[0].NNZ()*2 {
		t.Fatalf("centroid nnz = %d, want much larger than a member's ~10", m.NNZ())
	}
}

func TestBoundary(t *testing.T) {
	sample := []metric.Vector{{0}, {1}, {2}, {10}}
	lms := []metric.Vector{{0}, {5}}
	b := Boundary(lms, sample, metric.L2)
	if len(b) != 2 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0].Lo != 0 || b[0].Hi != 10 {
		t.Fatalf("bounds[0] = %+v, want [0,10]", b[0])
	}
	if b[1].Lo != 3 || b[1].Hi != 5 {
		t.Fatalf("bounds[1] = %+v, want [3,5]", b[1])
	}
}

func TestBoundaryDegenerate(t *testing.T) {
	sample := []metric.Vector{{1}, {1}}
	lms := []metric.Vector{{1}}
	b := Boundary(lms, sample, metric.L2)
	if b[0].Hi <= b[0].Lo {
		t.Fatalf("degenerate dimension not widened: %+v", b[0])
	}
}

func TestSpread(t *testing.T) {
	lms := []metric.Vector{{0, 0}, {3, 4}, {0, 1}}
	if s := Spread(lms, metric.L2); s != 1 {
		t.Fatalf("spread = %v, want 1", s)
	}
	if Spread([]metric.Vector{{1}}, metric.L2) != 0 {
		t.Fatal("singleton spread must be 0")
	}
}

func TestGreedyVsRandomSpread(t *testing.T) {
	// Greedy should be at least as dispersive as a random pick on
	// clustered data — this is its raison d'être (§3.1).
	rng := rand.New(rand.NewSource(7))
	sample := fourCorners(rng, 100)
	g, _ := Greedy(rng, sample, 4, metric.L2)
	var worstRandom float64 = math.Inf(1)
	for trial := 0; trial < 10; trial++ {
		idx := rng.Perm(len(sample))[:4]
		var pick []metric.Vector
		for _, i := range idx {
			pick = append(pick, sample[i])
		}
		if s := Spread(pick, metric.L2); s < worstRandom {
			worstRandom = s
		}
	}
	if Spread(g, metric.L2) < worstRandom {
		t.Fatalf("greedy spread %v below worst random %v", Spread(g, metric.L2), worstRandom)
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	mk := func(seed int64) []metric.Vector {
		rng := rand.New(rand.NewSource(seed))
		sample := fourCorners(rng, 30)
		lm, _ := KMeans(rng, sample, 4, metric.L2, DenseMean, 30)
		return lm
	}
	a, b := mk(11), mk(11)
	for i := range a {
		if metric.L2(a[i], b[i]) != 0 {
			t.Fatal("same seed produced different landmarks")
		}
	}
}
