// Package landmark implements the landmark-selection schemes of §3.1:
// the greedy max-min method (Algorithm 1) and k-means clustering, plus
// a k-medoids variant usable in metric spaces that have no meaningful
// centroid (e.g. strings under edit distance).
//
// A well-known node runs selection once over a random sample of data
// objects at system initiation; every other node obtains the resulting
// landmark set on join.
package landmark

import (
	"fmt"
	"math/rand"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/metric"
)

// Greedy is Algorithm 1: start from a random sample member, then
// repeatedly move the sample object with the maximum distance to the
// current landmark set (distance of an object to a set being the
// minimum over set members). The selection is O(|sample|·k) distance
// computations thanks to the cached per-object minimum.
func Greedy[T any](rng *rand.Rand, sample []T, k int, d metric.Distance[T]) ([]T, error) {
	if err := checkArgs(len(sample), k, d == nil); err != nil {
		return nil, err
	}
	n := len(sample)
	chosen := make([]bool, n)
	landmarks := make([]T, 0, k)

	first := rng.Intn(n)
	chosen[first] = true
	landmarks = append(landmarks, sample[first])

	// minDist[i] = distance from sample[i] to the landmark set so far.
	minDist := make([]float64, n)
	for i := range sample {
		minDist[i] = d(sample[i], sample[first])
	}
	for len(landmarks) < k {
		best, bestDist := -1, -1.0
		for i := range sample {
			if chosen[i] {
				continue
			}
			if minDist[i] > bestDist {
				best, bestDist = i, minDist[i]
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("landmark: sample exhausted after %d landmarks", len(landmarks))
		}
		chosen[best] = true
		landmarks = append(landmarks, sample[best])
		for i := range sample {
			if chosen[i] {
				continue
			}
			if dd := d(sample[i], sample[best]); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	return landmarks, nil
}

// Meaner computes the centroid of a non-empty group of objects; it is
// the extra structure k-means needs beyond the black-box distance.
type Meaner[T any] func(items []T) T

// KMeans runs Lloyd's algorithm on the sample and returns the k
// cluster centroids as landmarks (§3.1: "clusters the sampled dataset
// S and uses the cluster centroids as landmarks"). Initialization is
// k-means++ style seeding driven by rng; iteration stops at maxIter or
// when assignments stabilize.
func KMeans[T any](rng *rand.Rand, sample []T, k int, d metric.Distance[T], mean Meaner[T], maxIter int) ([]T, error) {
	if err := checkArgs(len(sample), k, d == nil); err != nil {
		return nil, err
	}
	if mean == nil {
		return nil, fmt.Errorf("landmark: KMeans requires a centroid function")
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	n := len(sample)

	// k-means++ seeding.
	centroids := make([]T, 0, k)
	centroids = append(centroids, sample[rng.Intn(n)])
	minDist := make([]float64, n)
	for i := range sample {
		minDist[i] = d(sample[i], centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, dd := range minDist {
			total += dd * dd
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var acc float64
			for i, dd := range minDist {
				acc += dd * dd
				if acc >= target {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, sample[pick])
		for i := range sample {
			if dd := d(sample[i], sample[pick]); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, x := range sample {
			best, bestDist := 0, d(x, centroids[0])
			for c := 1; c < k; c++ {
				if dd := d(x, centroids[c]); dd < bestDist {
					best, bestDist = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		groups := make([][]T, k)
		for i, c := range assign {
			groups[c] = append(groups[c], sample[i])
		}
		for c := range centroids {
			if len(groups[c]) == 0 {
				// Re-seed an empty cluster with a random sample point.
				centroids[c] = sample[rng.Intn(n)]
				continue
			}
			centroids[c] = mean(groups[c])
		}
	}
	return centroids, nil
}

// KMedoids is a PAM-style clustering for metric spaces without
// centroids: cluster representatives are sample objects. It supports
// the paper's "arbitrary metric space" claim for spaces like strings
// under edit distance.
func KMedoids[T any](rng *rand.Rand, sample []T, k int, d metric.Distance[T], maxIter int) ([]T, error) {
	if err := checkArgs(len(sample), k, d == nil); err != nil {
		return nil, err
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	n := len(sample)
	medoids := rng.Perm(n)[:k]
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		for i, x := range sample {
			best, bestDist := 0, d(x, sample[medoids[0]])
			for c := 1; c < k; c++ {
				if dd := d(x, sample[medoids[c]]); dd < bestDist {
					best, bestDist = c, dd
				}
			}
			assign[i] = best
		}
		changed := false
		for c := 0; c < k; c++ {
			var members []int
			for i, a := range assign {
				if a == c {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			// Pick the member minimizing the sum of distances to the
			// rest of the cluster.
			bestIdx, bestCost := medoids[c], -1.0
			for _, cand := range members {
				var cost float64
				for _, other := range members {
					cost += d(sample[cand], sample[other])
				}
				if bestCost < 0 || cost < bestCost {
					bestIdx, bestCost = cand, cost
				}
			}
			if bestIdx != medoids[c] {
				medoids[c] = bestIdx
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]T, k)
	for c, m := range medoids {
		out[c] = sample[m]
	}
	return out, nil
}

// DenseMean is the centroid function for dense vectors.
func DenseMean(items []metric.Vector) metric.Vector {
	if len(items) == 0 {
		panic("landmark: DenseMean of empty group")
	}
	out := make(metric.Vector, len(items[0]))
	for _, v := range items {
		for i := range v {
			out[i] += v[i]
		}
	}
	inv := 1 / float64(len(items))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// SparseMean is the centroid function for sparse term vectors: the
// component-wise average. Averaging documents yields centroid vectors
// with many more terms than any single document — exactly the property
// §4.3 credits for k-means beating greedy on the TREC corpus.
func SparseMean(items []metric.SparseVector) metric.SparseVector {
	if len(items) == 0 {
		panic("landmark: SparseMean of empty group")
	}
	acc := make(map[uint32]float64)
	for _, v := range items {
		for i, idx := range v.Idx {
			acc[idx] += v.Val[i]
		}
	}
	idx := make([]uint32, 0, len(acc))
	val := make([]float64, 0, len(acc))
	inv := 1 / float64(len(items))
	//lint:allow maporder NewSparseVector canonicalizes by sorting on term index
	for i, v := range acc {
		idx = append(idx, i)
		val = append(val, v*inv)
	}
	sv, err := metric.NewSparseVector(idx, val)
	if err != nil {
		panic(err) // unreachable: weights are non-negative averages
	}
	return sv
}

// Boundary derives per-landmark index-space bounds from the selection
// sample (§3.1 "Boundary of index space", approach 2): dimension i is
// bounded by the minimum and maximum distance between landmark i and
// the sampled set. Degenerate dimensions are widened slightly so the
// partitioner accepts them.
func Boundary[T any](landmarks []T, sample []T, d metric.Distance[T]) []lph.Bounds {
	bounds := make([]lph.Bounds, len(landmarks))
	for i, l := range landmarks {
		lo, hi := -1.0, 0.0
		for _, s := range sample {
			dd := d(l, s)
			if lo < 0 || dd < lo {
				lo = dd
			}
			if dd > hi {
				hi = dd
			}
		}
		if lo < 0 {
			lo = 0
		}
		if hi <= lo {
			hi = lo + 1
		}
		bounds[i] = lph.Bounds{Lo: lo, Hi: hi}
	}
	return bounds
}

// Spread reports the minimum pairwise distance within a landmark set —
// the dispersion quality measure from §3.1 ("keep these landmark
// points dispersive").
func Spread[T any](landmarks []T, d metric.Distance[T]) float64 {
	best := -1.0
	for i := range landmarks {
		for j := i + 1; j < len(landmarks); j++ {
			dd := d(landmarks[i], landmarks[j])
			if best < 0 || dd < best {
				best = dd
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func checkArgs(n, k int, nilDist bool) error {
	if nilDist {
		return fmt.Errorf("landmark: nil distance function")
	}
	if k <= 0 {
		return fmt.Errorf("landmark: k must be positive, got %d", k)
	}
	if n < k {
		return fmt.Errorf("landmark: sample of %d objects cannot yield %d landmarks", n, k)
	}
	return nil
}
