// Package netmodel provides pairwise network latency models for the
// simulator.
//
// The paper derives its network model from the King dataset: measured
// pairwise round-trip times between 1740 DNS servers with an average
// RTT of 180 ms. That dataset is not redistributable, so SyntheticKing
// generates a statistically similar matrix: hosts are embedded in a
// low-dimensional Euclidean latency space (the same structure that
// network coordinate systems such as Vivaldi recover from the King
// data) plus a per-host access delay and log-normal jitter, calibrated
// so the mean pairwise RTT matches a target (180 ms by default).
package netmodel

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Model yields the one-way latency between two hosts identified by
// dense indices in [0, Size). Implementations must be symmetric
// (Latency(a,b) == Latency(b,a)), return zero for a == b, and be safe
// for concurrent readers.
type Model interface {
	// Latency returns the one-way delay from host a to host b.
	Latency(a, b int) time.Duration
	// Size returns the number of hosts the model covers.
	Size() int
}

// Constant is a model in which every distinct pair has the same
// one-way latency.
type Constant struct {
	N      int
	OneWay time.Duration
}

// Latency implements Model.
func (c Constant) Latency(a, b int) time.Duration {
	if a == b {
		return 0
	}
	return c.OneWay
}

// Size implements Model.
func (c Constant) Size() int { return c.N }

// Matrix is a model backed by an explicit symmetric matrix of one-way
// latencies.
type Matrix struct {
	n   int
	lat []time.Duration // row-major n x n
}

// NewMatrix builds a Matrix model from a full n x n latency table.
// The table is symmetrized by averaging and the diagonal is zeroed.
func NewMatrix(lat [][]time.Duration) (*Matrix, error) {
	n := len(lat)
	for i, row := range lat {
		if len(row) != n {
			return nil, fmt.Errorf("netmodel: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	m := &Matrix{n: n, lat: make([]time.Duration, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			m.lat[i*n+j] = (lat[i][j] + lat[j][i]) / 2
		}
	}
	return m, nil
}

// Latency implements Model.
func (m *Matrix) Latency(a, b int) time.Duration { return m.lat[a*m.n+b] }

// Size implements Model.
func (m *Matrix) Size() int { return m.n }

// KingConfig parameterizes the synthetic King-like model.
type KingConfig struct {
	N         int           // number of hosts
	MeanRTT   time.Duration // target average round-trip time (0 => 180ms)
	Dim       int           // embedding dimensionality (0 => 5)
	JitterStd float64       // log-normal sigma for multiplicative jitter (<0 => none, 0 => 0.25)
	Seed      int64
}

// SyntheticKing is the King-dataset substitute: a fixed matrix sampled
// from a Euclidean embedding with access delays and jitter, then
// rescaled to hit the target mean RTT exactly.
type SyntheticKing struct {
	*Matrix
	cfg KingConfig
}

// NewSyntheticKing generates the model. Generation is deterministic in
// cfg.Seed.
func NewSyntheticKing(cfg KingConfig) (*SyntheticKing, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("netmodel: N must be positive, got %d", cfg.N)
	}
	if cfg.MeanRTT <= 0 {
		cfg.MeanRTT = 180 * time.Millisecond
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 5
	}
	switch {
	case cfg.JitterStd < 0:
		cfg.JitterStd = 0
	case cfg.JitterStd == 0:
		cfg.JitterStd = 0.25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Embed hosts in a unit hypercube; add a heavy-tailed per-host
	// access delay (models last-mile links, the dominant source of
	// skew in the King data).
	coords := make([][]float64, cfg.N)
	access := make([]float64, cfg.N)
	for i := range coords {
		coords[i] = make([]float64, cfg.Dim)
		for d := range coords[i] {
			coords[i][d] = rng.Float64()
		}
		access[i] = rng.ExpFloat64() * 0.15 // relative units
	}

	raw := make([]float64, cfg.N*cfg.N)
	var sum float64
	var pairs int
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			var d2 float64
			for d := 0; d < cfg.Dim; d++ {
				diff := coords[i][d] - coords[j][d]
				d2 += diff * diff
			}
			v := math.Sqrt(d2) + access[i] + access[j]
			if cfg.JitterStd > 0 {
				v *= math.Exp(rng.NormFloat64() * cfg.JitterStd)
			}
			raw[i*cfg.N+j] = v
			raw[j*cfg.N+i] = v
			sum += v
			pairs++
		}
	}
	// Rescale so the mean pairwise one-way latency is MeanRTT/2.
	targetOneWay := float64(cfg.MeanRTT) / 2
	scale := 1.0
	if pairs > 0 && sum > 0 {
		scale = targetOneWay / (sum / float64(pairs))
	}
	m := &Matrix{n: cfg.N, lat: make([]time.Duration, cfg.N*cfg.N)}
	for i := range raw {
		m.lat[i] = time.Duration(raw[i] * scale)
	}
	return &SyntheticKing{Matrix: m, cfg: cfg}, nil
}

// Config returns the configuration the model was generated with.
func (k *SyntheticKing) Config() KingConfig { return k.cfg }

// MeanRTT returns the realized average round-trip time over all
// distinct pairs.
func MeanRTT(m Model) time.Duration {
	n := m.Size()
	if n < 2 {
		return 0
	}
	var sum time.Duration
	var pairs int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += 2 * m.Latency(i, j)
			pairs++
		}
	}
	return time.Duration(int64(sum) / pairs)
}
