package netmodel

import (
	"math"
	"testing"
	"time"
)

func TestConstant(t *testing.T) {
	c := Constant{N: 10, OneWay: 50 * time.Millisecond}
	if c.Size() != 10 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.Latency(3, 3) != 0 {
		t.Fatal("self latency must be zero")
	}
	if c.Latency(1, 2) != 50*time.Millisecond {
		t.Fatalf("latency = %v", c.Latency(1, 2))
	}
	if c.Latency(1, 2) != c.Latency(2, 1) {
		t.Fatal("not symmetric")
	}
}

func TestMatrixSymmetrizes(t *testing.T) {
	lat := [][]time.Duration{
		{0, 10 * time.Millisecond, 20 * time.Millisecond},
		{30 * time.Millisecond, 0, 40 * time.Millisecond},
		{20 * time.Millisecond, 40 * time.Millisecond, 5 * time.Millisecond},
	}
	m, err := NewMatrix(lat)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Latency(0, 1); got != 20*time.Millisecond {
		t.Fatalf("Latency(0,1) = %v, want 20ms (average)", got)
	}
	if m.Latency(0, 1) != m.Latency(1, 0) {
		t.Fatal("not symmetric")
	}
	if m.Latency(2, 2) != 0 {
		t.Fatal("diagonal not zeroed")
	}
}

func TestMatrixRejectsRagged(t *testing.T) {
	_, err := NewMatrix([][]time.Duration{{0}, {0, 0}})
	if err == nil {
		t.Fatal("expected error for ragged matrix")
	}
}

func TestSyntheticKingMeanRTT(t *testing.T) {
	k, err := NewSyntheticKing(KingConfig{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := MeanRTT(k)
	want := 180 * time.Millisecond
	if math.Abs(float64(got-want)) > float64(want)/100 {
		t.Fatalf("mean RTT = %v, want within 1%% of %v", got, want)
	}
}

func TestSyntheticKingCustomMean(t *testing.T) {
	k, err := NewSyntheticKing(KingConfig{N: 100, MeanRTT: 80 * time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := MeanRTT(k)
	if math.Abs(float64(got-80*time.Millisecond)) > float64(time.Millisecond) {
		t.Fatalf("mean RTT = %v, want ~80ms", got)
	}
}

func TestSyntheticKingProperties(t *testing.T) {
	k, err := NewSyntheticKing(KingConfig{N: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k.Size(); i++ {
		if k.Latency(i, i) != 0 {
			t.Fatalf("self latency nonzero at %d", i)
		}
		for j := i + 1; j < k.Size(); j++ {
			if k.Latency(i, j) != k.Latency(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if k.Latency(i, j) <= 0 {
				t.Fatalf("non-positive latency at (%d,%d): %v", i, j, k.Latency(i, j))
			}
		}
	}
}

func TestSyntheticKingDeterministic(t *testing.T) {
	a, _ := NewSyntheticKing(KingConfig{N: 50, Seed: 9})
	b, _ := NewSyntheticKing(KingConfig{N: 50, Seed: 9})
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if a.Latency(i, j) != b.Latency(i, j) {
				t.Fatalf("same seed diverges at (%d,%d)", i, j)
			}
		}
	}
	c, _ := NewSyntheticKing(KingConfig{N: 50, Seed: 10})
	same := true
	for i := 0; i < 50 && same; i++ {
		for j := 0; j < 50; j++ {
			if a.Latency(i, j) != c.Latency(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestSyntheticKingHeterogeneous(t *testing.T) {
	// The point of substituting King: latencies must be spread out, not
	// uniform. Check the coefficient of variation is substantial.
	k, _ := NewSyntheticKing(KingConfig{N: 100, Seed: 4})
	var vals []float64
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			vals = append(vals, float64(k.Latency(i, j)))
		}
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var varsum float64
	for _, v := range vals {
		varsum += (v - mean) * (v - mean)
	}
	cv := math.Sqrt(varsum/float64(len(vals))) / mean
	if cv < 0.3 {
		t.Fatalf("coefficient of variation = %.3f, want >= 0.3 (heterogeneous latencies)", cv)
	}
}

func TestSyntheticKingRejectsBadN(t *testing.T) {
	if _, err := NewSyntheticKing(KingConfig{N: 0}); err == nil {
		t.Fatal("expected error for N=0")
	}
}

func TestSyntheticKingNoJitter(t *testing.T) {
	k, err := NewSyntheticKing(KingConfig{N: 20, Seed: 5, JitterStd: -1})
	if err != nil {
		t.Fatal(err)
	}
	if k.Config().JitterStd != 0 {
		t.Fatalf("jitter = %v, want 0", k.Config().JitterStd)
	}
}

func TestMeanRTTTiny(t *testing.T) {
	if MeanRTT(Constant{N: 1, OneWay: time.Second}) != 0 {
		t.Fatal("single-host mean RTT should be 0")
	}
}
