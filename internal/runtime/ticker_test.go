package runtime_test

import (
	"testing"
	"time"

	"landmarkdht/internal/runtime"
	"landmarkdht/internal/runtime/simrt"
	"landmarkdht/internal/sim"
)

// TestTickerOverSimClock drives a Ticker through the simulated clock:
// first fire at the offset, then every period, nothing after Stop.
func TestTickerOverSimClock(t *testing.T) {
	eng := sim.NewEngine(1)
	rt := simrt.New(eng)
	var fires []time.Duration
	tk := runtime.NewTicker(rt, 3*time.Second, 10*time.Second, func() {
		fires = append(fires, rt.Now())
	})
	eng.RunFor(sim.Time(35 * time.Second))
	want := []time.Duration{3 * time.Second, 13 * time.Second, 23 * time.Second, 33 * time.Second}
	if len(fires) != len(want) {
		t.Fatalf("got %d ticks %v, want %d", len(fires), fires, len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, fires[i], want[i])
		}
	}
	tk.Stop()
	if !tk.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	eng.RunFor(sim.Time(100 * time.Second))
	if len(fires) != len(want) {
		t.Fatalf("ticker fired after Stop: %v", fires)
	}
}

// TestTickerRejectsBadPeriod checks the constructor panics rather than
// silently spinning on a zero period.
func TestTickerRejectsBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker accepted a non-positive period")
		}
	}()
	runtime.NewTicker(simrt.New(sim.NewEngine(1)), 0, 0, func() {})
}
