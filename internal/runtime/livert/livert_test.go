package livert_test

import (
	"sync"
	"testing"
	"time"

	"landmarkdht/internal/runtime/livert"
)

func newRT(t *testing.T) *livert.Runtime {
	t.Helper()
	rt := livert.New(livert.Config{Seed: 1})
	t.Cleanup(rt.Close)
	return rt
}

// TestSendDeliversPayloadFrame sends a framed payload to a registered
// node and checks the delivery callback runs with its prebound arg.
func TestSendDeliversPayloadFrame(t *testing.T) {
	rt := newRT(t)
	rt.Register(7)
	done := make(chan any, 1)
	rt.Send(7, 0, []byte("wire bytes"), func(arg any) { done <- arg }, "state")
	select {
	case got := <-done:
		if got != "state" {
			t.Fatalf("delivered arg %v, want %q", got, "state")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("payload delivery never ran")
	}
}

// TestSendWithoutEndpointFallsBack covers the degraded paths: nil
// payload and unregistered destination both deliver via the timer path.
func TestSendWithoutEndpointFallsBack(t *testing.T) {
	rt := newRT(t)
	done := make(chan int, 2)
	rt.Send(1, 0, nil, func(arg any) { done <- arg.(int) }, 10)         // no payload
	rt.Send(2, 0, []byte("x"), func(arg any) { done <- arg.(int) }, 20) // no endpoint
	got := map[int]bool{}
	for i := 0; i < 2; i++ {
		select {
		case v := <-done:
			got[v] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 2 fallback deliveries ran", i)
		}
	}
	if !got[10] || !got[20] {
		t.Fatalf("deliveries seen: %v", got)
	}
}

// TestDeliveriesSerializeOnExecutor floods one node with concurrent
// sends from many goroutines and checks the callbacks never overlap —
// the single-threaded protocol contract.
func TestDeliveriesSerializeOnExecutor(t *testing.T) {
	rt := newRT(t)
	rt.Register(3)
	const senders, perSender = 8, 25
	var (
		inFlight, overlaps, delivered int
		mu                            sync.Mutex
		wg                            sync.WaitGroup
		done                          = make(chan struct{})
	)
	deliver := func(any) {
		mu.Lock()
		inFlight++
		if inFlight > 1 {
			overlaps++
		}
		mu.Unlock()
		mu.Lock()
		inFlight--
		delivered++
		if delivered == senders*perSender {
			close(done)
		}
		mu.Unlock()
	}
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				rt.Send(3, 0, []byte("m"), deliver, nil)
			}
		}()
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		t.Fatalf("only %d of %d deliveries ran", delivered, senders*perSender)
	}
	if overlaps != 0 {
		t.Fatalf("%d deliveries overlapped; executor must serialize", overlaps)
	}
}

// TestTimerStop arms a retransmission-style timer and cancels it from
// the executor before it fires.
func TestTimerStop(t *testing.T) {
	rt := newRT(t)
	fired := make(chan struct{}, 1)
	var tm interface {
		Stop()
		Stopped() bool
	}
	if err := rt.Do(func() {
		tm = rt.AfterFunc(50*time.Millisecond, func() { fired <- struct{}{} })
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Do(tm.Stop); err != nil {
		t.Fatal(err)
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(200 * time.Millisecond):
	}
}

// TestAwait covers the three completion modes: finish callback, op
// error, and timeout.
func TestAwait(t *testing.T) {
	rt := newRT(t)
	if err := rt.Await(5*time.Second, func(finish func()) error {
		rt.Schedule(0, finish)
		return nil
	}); err != nil {
		t.Fatalf("finish path: %v", err)
	}
	wantErr := "nothing to do"
	if err := rt.Await(5*time.Second, func(func()) error {
		return errAwait(wantErr)
	}); err == nil || err.Error() != wantErr {
		t.Fatalf("error path: got %v", err)
	}
	if err := rt.Await(20*time.Millisecond, func(func()) error {
		return nil // never finishes
	}); err == nil {
		t.Fatal("timeout path: no error")
	}
}

type errAwait string

func (e errAwait) Error() string { return string(e) }

// TestCloseRejectsWork checks Do and Await fail fast after Close and
// that Close is idempotent.
func TestCloseRejectsWork(t *testing.T) {
	rt := livert.New(livert.Config{Seed: 1})
	rt.Register(1)
	rt.Close()
	rt.Close()
	if err := rt.Do(func() {}); err != livert.ErrClosed {
		t.Fatalf("Do after Close: %v", err)
	}
	if err := rt.Await(time.Second, func(func()) error { return nil }); err != livert.ErrClosed {
		t.Fatalf("Await after Close: %v", err)
	}
}

// TestUnregisterMidTraffic tears a node down while sends race in;
// every delivery must still run (the overlay, not the transport, is
// responsible for deciding a dead node's messages fail).
func TestUnregisterMidTraffic(t *testing.T) {
	rt := newRT(t)
	rt.Register(9)
	const n = 50
	done := make(chan struct{}, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			rt.Send(9, 0, []byte("m"), func(any) { done <- struct{}{} }, nil)
			if i == n/2 {
				rt.Unregister(9)
			}
		}
	}()
	wg.Wait()
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d deliveries ran after mid-traffic unregister", i, n)
		}
	}
}
