// Package livert is the live implementation of the runtime seams: the
// same protocol code that runs inside the discrete-event simulator
// executes here in real time, over real in-process connections, serving
// concurrent queries.
//
// # Execution model
//
// The protocol layers (chord, core) are single-threaded by contract:
// one callback runs to completion before the next starts. livert keeps
// that contract with one protocol-executor goroutine draining a FIFO
// task queue. Everything else is concurrent:
//
//   - one reader goroutine per registered node (its "inbox") pulls
//     length-prefixed frames off the node's net.Pipe connection and
//     posts the matching delivery callback to the executor,
//   - real time.Timer timers back AfterFunc (retransmission timeouts)
//     and delayed scheduling, firing into the same queue,
//   - any number of client goroutines issue work through Do/Await,
//     which also runs on the executor.
//
// # Wire path
//
// Transport.Send with a payload frames the message's wire encoding
// (internal/wire bytes, produced by the protocol when EncodeWire is on)
// as [8-byte message id | 4-byte length | payload] and writes it to the
// destination node's connection. The node's reader goroutine consumes
// the frame and matches it, by id, to the pending delivery callback —
// the callback's prebound state carries the payload for decoding,
// exactly as in the simulated runtime. Messages without a payload (size
// accounting only) skip the connection and go straight through the
// timer path.
//
// # Time
//
// Now is wall-clock time since the runtime started. The modeled network
// latency handed to Send is multiplied by Config.LatencyScale (0 =
// deliver as fast as possible); AfterFunc and Schedule delays are real
// durations, unscaled, because they implement protocol timeouts and
// maintenance periods rather than link latency.
package livert

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"landmarkdht/internal/runtime"
	"landmarkdht/internal/wire"
)

// Config parameterizes a live runtime.
type Config struct {
	// Seed seeds the runtime's random source (protocol decisions such
	// as fault draws and timer offsets; only touched on the executor).
	Seed int64
	// LatencyScale multiplies the modeled network latency of every
	// message. 0 delivers as fast as the machine allows (the useful
	// setting for tests); 1 reproduces the latency model in real time.
	LatencyScale float64
	// Faults injects transport-level failures into the inbox path:
	// FrameDrop discards received frames after they crossed the
	// connection, KillConn tears a node's connection down (losing
	// every frame in flight on it) and re-establishes it. The policy's
	// protocol-level faults (drop, duplicate, delay, partition) are
	// NOT applied here — the overlay injects those identically on both
	// runtimes via chord.FaultPlanFromPolicy. Frame decisions draw
	// from per-reader sources seeded by Faults.Seed, never from the
	// executor's protocol source.
	Faults *runtime.FaultPolicy
	// Executors is the total executor-goroutine count. 0 or 1 keeps
	// the classic single protocol executor; N > 1 adds N-1 shard
	// executors that run per-node store work routed through ExecShard
	// (hash by node ID), so one machine uses several cores while every
	// node's data stays single-goroutine. Protocol bookkeeping always
	// stays on the protocol executor.
	Executors int
	// MaxInbox bounds the protocol executor's queue of pending message
	// deliveries (timers and client work are never shed). A full inbox
	// sheds the newest delivery — counted by QueueStats, surfaced by
	// the overlay's retry/deadline accounting as an honest incomplete
	// result, never silent loss. 0 applies DefaultMaxInbox; negative
	// disables the bound.
	MaxInbox int
}

// DefaultMaxInbox is the delivery-queue bound applied when
// Config.MaxInbox is zero.
const DefaultMaxInbox = 8192

// FaultStats counts the transport-level faults a live runtime
// injected.
type FaultStats struct {
	// FramesDropped is the number of received frames discarded by the
	// inbox fault hook.
	FramesDropped int64
	// ConnsKilled is the number of connection kill/re-establish cycles.
	ConnsKilled int64
}

// task is one unit of protocol work for the executor. Exactly one of
// fn / argFn is set; argFn mirrors Clock.ScheduleArg's prebound form.
// sheddable marks message deliveries, the only tasks a full inbox may
// drop.
type task struct {
	fn        func()
	argFn     func(any)
	arg       any
	sheddable bool
}

// shardTask is one unit of per-node work for a shard executor: work
// runs on the shard, then done (if non-nil) is posted back to the
// protocol executor.
type shardTask struct {
	work func()
	done func()
}

// shardExec is one shard executor: a FIFO queue drained by a single
// goroutine that owns the stores of every node hashing to it.
type shardExec struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []shardTask
	closed bool
}

// envelope is a sent message waiting for its frame to arrive at the
// destination's reader. to identifies the destination so a connection
// kill can sweep the envelopes lost with it.
type envelope struct {
	deliver func(any)
	arg     any
	delay   time.Duration
	to      uint64
}

// endpoint is one registered node's connection pair: the executor
// writes frames to w, the node's reader goroutine consumes them from r.
type endpoint struct {
	w net.Conn
	r net.Conn
}

// Runtime implements runtime.Runtime, runtime.Transport and
// runtime.NodeRegistry over real goroutines, connections and timers.
type Runtime struct {
	cfg   Config
	start time.Time
	rng   *rand.Rand

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []task
	closed bool
	// maxInbox bounds the sheddable (message-delivery) tasks in queue;
	// <= 0 means unbounded. tasksShed counts deliveries dropped by the
	// bound.
	maxInbox  int
	tasksShed atomic.Int64

	// shards are the extra executors for per-node store work; empty in
	// single-executor mode.
	shards []*shardExec

	epMu sync.Mutex
	eps  map[uint64]*endpoint
	// epsClosed marks the endpoint table as torn down (Close ran); a
	// racing KillConnection must not re-open connections past it.
	epsClosed bool

	pendMu  sync.Mutex
	pending map[uint64]envelope
	nextMsg uint64

	framesDropped atomic.Int64
	connsKilled   atomic.Int64

	wg sync.WaitGroup
}

// ErrClosed is returned by Do/Await on a runtime that has been closed.
var ErrClosed = errors.New("livert: runtime closed")

// New starts a live runtime: its protocol-executor goroutine runs until
// Close.
func New(cfg Config) *Runtime {
	r := &Runtime{
		cfg:     cfg,
		start:   time.Now(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		eps:     make(map[uint64]*endpoint),
		pending: make(map[uint64]envelope),
	}
	switch {
	case cfg.MaxInbox == 0:
		r.maxInbox = DefaultMaxInbox
	case cfg.MaxInbox > 0:
		r.maxInbox = cfg.MaxInbox
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(1)
	go r.run()
	for i := 1; i < cfg.Executors; i++ {
		s := &shardExec{}
		s.cond = sync.NewCond(&s.mu)
		r.shards = append(r.shards, s)
		r.wg.Add(1)
		go r.runShard(s)
	}
	return r
}

// run is the protocol executor: the single goroutine on which every
// protocol callback executes. It is the root of executor context; the
// tasks it dispatches reach the rest of the runtime through the
// Transport/NodeRegistry/Clock surface, which carries its own
// //lint:context executor annotations because dynamic task dispatch is
// invisible to the call graph.
//
//lint:context executor
func (r *Runtime) run() {
	defer r.wg.Done()
	r.mu.Lock() //lint:allow execblock the executor's own queue mutex; holders only append and signal
	for {
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait() //lint:allow execblock idle executor parking on its own queue is the design
		}
		if len(r.queue) == 0 {
			r.mu.Unlock()
			return // closed and drained
		}
		t := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()
		if t.argFn != nil {
			t.argFn(t.arg)
		} else {
			t.fn()
		}
		r.mu.Lock() //lint:allow execblock the executor's own queue mutex; holders only append and signal
	}
}

// post enqueues a task for the executor. It never blocks. It reports
// whether the task was accepted (false after Close). Sheddable tasks —
// message deliveries — are dropped (and counted) when the bounded
// inbox is full: the transport sheds exactly like a full netrt link
// queue, and the overlay's retry/deadline accounting turns the loss
// into an honest incomplete result.
func (r *Runtime) post(t task) bool {
	r.mu.Lock() //lint:allow execblock bounded critical section: holders only append and signal (lockheld-checked)
	if r.closed {
		r.mu.Unlock()
		return false
	}
	if t.sheddable && r.maxInbox > 0 && len(r.queue) >= r.maxInbox {
		r.mu.Unlock()
		r.tasksShed.Add(1)
		return true
	}
	r.queue = append(r.queue, t)
	r.cond.Signal()
	r.mu.Unlock()
	return true
}

// runShard drains one shard executor until Close. Accepted tasks
// always run (the queue is drained after close), so a quiescence
// barrier parked on a shard is always released.
//
//lint:context executor
func (r *Runtime) runShard(s *shardExec) {
	defer r.wg.Done()
	s.mu.Lock() //lint:allow execblock the shard executor's own queue mutex; holders only append and signal
	for {
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait() //lint:allow execblock idle shard executor parking on its own queue is the design
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		t := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		t.work()
		if t.done != nil {
			r.post(task{fn: t.done})
		}
		s.mu.Lock() //lint:allow execblock the shard executor's own queue mutex; holders only append and signal
	}
}

// ExecShard implements runtime.Sharder: work runs on the shard
// executor owning key, then done (if non-nil) runs back on the
// protocol executor. With no shard executors both run synchronously on
// the caller. Protocol code calls it from executor context.
//
//lint:context executor
func (r *Runtime) ExecShard(key uint64, work, done func()) {
	if len(r.shards) == 0 {
		work()
		if done != nil {
			done()
		}
		return
	}
	s := r.shards[int(key%uint64(len(r.shards)))]
	s.mu.Lock() //lint:allow execblock bounded critical section: the shard queue mutex; holders only append and signal, never block
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, shardTask{work: work, done: done})
	s.cond.Signal()
	s.mu.Unlock()
}

// ShardCount implements runtime.Sharder.
func (r *Runtime) ShardCount() int { return len(r.shards) }

// QueueStats snapshots the protocol executor's inbox: its current
// depth and the number of deliveries shed by the bound. Safe to call
// from any goroutine.
func (r *Runtime) QueueStats() (depth int, shed int64) {
	r.mu.Lock()
	depth = len(r.queue)
	r.mu.Unlock()
	return depth, r.tasksShed.Load()
}

// after posts t once d has elapsed (immediately for d <= 0).
func (r *Runtime) after(d time.Duration, t task) {
	if d <= 0 {
		r.post(t)
		return
	}
	time.AfterFunc(d, func() { r.post(t) })
}

// Now returns the wall-clock time elapsed since the runtime started.
func (r *Runtime) Now() time.Duration { return time.Since(r.start) }

// Schedule runs fn on the executor after delay of real time. Protocol
// code calls it from executor context.
//
//lint:context executor
func (r *Runtime) Schedule(delay time.Duration, fn func()) {
	r.after(delay, task{fn: fn})
}

// ScheduleArg runs fn(arg) on the executor after delay of real time.
// Protocol code calls it from executor context.
//
//lint:context executor
func (r *Runtime) ScheduleArg(delay time.Duration, fn func(any), arg any) {
	r.after(delay, task{argFn: fn, arg: arg})
}

// liveTimer backs AfterFunc with a real time.Timer. Its flags are only
// touched on the executor (arming happens there, the callback runs
// there, and protocol code stops timers from there), so no lock is
// needed — the time.Timer goroutine merely posts.
type liveTimer struct {
	rt      *Runtime
	stopped bool
	fired   bool
	t       *time.Timer
}

// AfterFunc schedules fn on the executor after delay of real time and
// returns a cancellable handle. Protocol code arms timers from executor
// context.
//
//lint:context executor
func (r *Runtime) AfterFunc(delay time.Duration, fn func()) runtime.Timer {
	lt := &liveTimer{rt: r}
	lt.t = time.AfterFunc(delay, func() {
		r.post(task{fn: func() {
			if lt.stopped {
				return
			}
			lt.fired = true
			fn()
		}})
	})
	return lt
}

// Stop cancels the timer if it has not fired.
func (lt *liveTimer) Stop() {
	lt.stopped = true
	lt.t.Stop()
}

// Stopped reports whether the timer has fired or been cancelled.
func (lt *liveTimer) Stopped() bool { return lt.stopped || lt.fired }

// Rand returns the runtime's seeded random source. Executor-only.
func (r *Runtime) Rand() *rand.Rand { return r.rng }

// Register opens the node's connection pair and starts its reader
// goroutine. Called by the overlay (on the executor) when a node joins.
//
//lint:context executor
func (r *Runtime) Register(node uint64) {
	r.epMu.Lock() //lint:allow execblock bounded critical section: the endpoint table mutex; holders never block (lockheld-checked)
	if _, dup := r.eps[node]; dup {
		r.epMu.Unlock()
		return
	}
	rd, wr := net.Pipe()
	r.eps[node] = &endpoint{w: wr, r: rd}
	r.epMu.Unlock()
	r.wg.Add(1)
	go r.readLoop(node, rd)
}

// Unregister closes the node's connections; its reader goroutine exits.
// Called by the overlay (on the executor) when a node leaves.
//
//lint:context executor
func (r *Runtime) Unregister(node uint64) {
	r.epMu.Lock() //lint:allow execblock bounded critical section: the endpoint table mutex; holders never block (lockheld-checked)
	ep := r.eps[node]
	delete(r.eps, node)
	r.epMu.Unlock()
	if ep != nil {
		closeConn(ep.w)
		closeConn(ep.r)
	}
}

// closeConn is best-effort teardown of a connection that is already
// being abandoned: net.Pipe's Close never fails meaningfully and
// returns without waiting on the peer.
func closeConn(c net.Conn) {
	//lint:allow execblock net.Pipe close is constant-time; it never parks the executor
	_ = c.Close() //lint:allow errdrop best-effort teardown of an abandoned pipe
}

// Send implements runtime.Transport. With a payload, the bytes travel
// as a frame over the destination node's connection and the delivery
// callback runs once the node's reader has consumed them (plus the
// scaled latency). Without one — or when the destination has no
// connection (already unregistered) — delivery degrades to the timer
// path; the overlay's own delivery-time liveness checks decide the
// message's fate either way.
//
//lint:context executor
func (r *Runtime) Send(to uint64, delay time.Duration, payload []byte, deliver func(any), arg any) {
	d := time.Duration(float64(delay) * r.cfg.LatencyScale)
	if payload == nil {
		r.after(d, task{argFn: deliver, arg: arg, sheddable: true})
		return
	}
	r.epMu.Lock() //lint:allow execblock bounded critical section: the endpoint table mutex; holders never block (lockheld-checked)
	ep := r.eps[to]
	r.epMu.Unlock()
	if ep == nil {
		r.after(d, task{argFn: deliver, arg: arg, sheddable: true})
		return
	}
	r.pendMu.Lock() //lint:allow execblock bounded critical section: the pending-envelope mutex; holders never block (lockheld-checked)
	r.nextMsg++
	id := r.nextMsg
	r.pending[id] = envelope{deliver: deliver, arg: arg, delay: d, to: to}
	r.pendMu.Unlock()
	frame, ferr := wire.AppendFrame(make([]byte, 0, wire.FrameHeader+len(payload)), id, payload)
	if ferr != nil {
		// Oversized payload: impossible for protocol-produced messages,
		// but degrade to the timer path rather than corrupt the stream.
		r.pendMu.Lock() //lint:allow execblock bounded critical section: the pending-envelope mutex; holders never block (lockheld-checked)
		delete(r.pending, id)
		r.pendMu.Unlock()
		r.after(d, task{argFn: deliver, arg: arg, sheddable: true})
		return
	}
	//lint:allow execblock every pipe has a dedicated reader draining it, and KillConnection releases blocked writers
	if _, err := ep.w.Write(frame); err != nil {
		// Connection torn down between the lookup and the write: fall
		// back to the timer path (same as a missing endpoint).
		r.pendMu.Lock() //lint:allow execblock bounded critical section: the pending-envelope mutex; holders never block (lockheld-checked)
		_, pend := r.pending[id]
		delete(r.pending, id)
		r.pendMu.Unlock()
		if pend {
			r.after(d, task{argFn: deliver, arg: arg, sheddable: true})
		}
	}
}

// readLoop is one node's inbox: it consumes frames off the connection
// and posts the matching delivery callbacks until the connection
// closes. When a fault policy configures transport-level faults, the
// loop draws from the shared runtime.LinkFaults hook (per reader, so
// decisions stay off the executor's protocol source — the same path
// netrt's TCP links use) and may discard a consumed frame or kill its
// own connection.
func (r *Runtime) readLoop(node uint64, conn net.Conn) {
	defer r.wg.Done()
	faults := runtime.NewLinkFaults(r.cfg.Faults, node)
	var buf []byte
	for {
		// The payload bytes crossed the connection; the delivery
		// callback re-decodes them from its prebound state, so the
		// buffer contents are discarded after the read.
		id, _, next, err := wire.ReadFrame(conn, buf)
		if err != nil {
			return
		}
		buf = next
		if faults.DropFrame() {
			// Inbox failure: the frame crossed the connection but is
			// discarded before delivery. The sender learns nothing; the
			// overlay's retransmission timeout surfaces the loss.
			r.pendMu.Lock()
			delete(r.pending, id)
			r.pendMu.Unlock()
			r.framesDropped.Add(1)
			continue
		}
		r.pendMu.Lock()
		env, ok := r.pending[id]
		delete(r.pending, id)
		r.pendMu.Unlock()
		if ok {
			r.after(env.delay, task{argFn: env.deliver, arg: env.arg, sheddable: true})
		}
		if faults.KillConn() {
			// Kill this node's own connection: everything still in
			// flight on it is lost, then a fresh pair (and a fresh
			// reader) takes over. This loop exits.
			r.KillConnection(node)
			return
		}
	}
}

// KillConnection tears down one node's connection pair and
// re-establishes it: every frame still in flight on the old pair is
// lost (their pending deliveries are swept, so the overlay sees them
// as timeouts), writers blocked on the old pair are released with an
// error, and a fresh reader goroutine serves the new pair. It is safe
// to call from any goroutine; after Close it is a no-op.
func (r *Runtime) KillConnection(node uint64) {
	r.epMu.Lock()
	ep, ok := r.eps[node]
	if !ok || r.epsClosed {
		r.epMu.Unlock()
		return
	}
	rd, wr := net.Pipe()
	r.eps[node] = &endpoint{w: wr, r: rd}
	r.epMu.Unlock()
	closeConn(ep.w)
	closeConn(ep.r)
	r.pendMu.Lock()
	for id, env := range r.pending {
		if env.to == node {
			delete(r.pending, id)
		}
	}
	r.pendMu.Unlock()
	r.connsKilled.Add(1)
	r.wg.Add(1)
	go r.readLoop(node, rd)
}

// FaultStats returns the transport-level fault counters. Safe to call
// from any goroutine.
func (r *Runtime) FaultStats() FaultStats {
	return FaultStats{
		FramesDropped: r.framesDropped.Load(),
		ConnsKilled:   r.connsKilled.Load(),
	}
}

// Do runs fn on the executor and waits for it to return. It is how
// client goroutines perform protocol operations (setup, queries,
// inspection) without violating the single-threaded contract. With
// shard executors, fn additionally runs with every shard parked at a
// barrier, so control-plane mutations that cross node boundaries
// (membership, bulk loads, migrations, snapshots) see a quiescent
// system — the same exclusive view they get in single-executor mode.
func (r *Runtime) Do(fn func()) error {
	done := make(chan struct{})
	if !r.post(task{fn: func() {
		r.quiesced(fn)
		close(done)
	}}) {
		return ErrClosed
	}
	<-done
	return nil
}

// quiesced runs fn on the protocol executor with every shard executor
// parked. The park task runs ahead of any later-queued shard work, and
// pending shard work is store-local and finite, so the wait is bounded
// by the shards' current queues — this is the one place the protocol
// executor intentionally waits on the shards, and shard executors
// drain their queues even after Close, so the barrier always releases.
func (r *Runtime) quiesced(fn func()) {
	if len(r.shards) == 0 {
		fn()
		return
	}
	release := make(chan struct{})
	var parked sync.WaitGroup
	for _, s := range r.shards {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		parked.Add(1)
		s.queue = append(s.queue, shardTask{work: func() {
			parked.Done()
			<-release
		}})
		s.cond.Signal()
		s.mu.Unlock()
	}
	parked.Wait()
	fn()
	close(release)
}

// Await runs op on the executor and waits until op's completion
// callback fires (also on the executor) or the timeout elapses. op
// returning a non-nil error completes the wait immediately. It is the
// bridge from blocking client code to the protocol's callback style:
//
//	err := rt.Await(5*time.Second, func(finish func()) error {
//		return sys.RangeQuery(..., func(qr *core.QueryResult) {
//			result = qr
//			finish()
//		})
//	})
func (r *Runtime) Await(timeout time.Duration, op func(finish func()) error) error {
	done := make(chan struct{})
	finished := false
	finish := func() {
		// Executor-only; guards against duplicate completion.
		if !finished {
			finished = true
			close(done)
		}
	}
	var opErr error
	if !r.post(task{fn: func() {
		if err := op(finish); err != nil {
			opErr = err
			finish()
		}
	}}) {
		return ErrClosed
	}
	select {
	case <-done:
		return opErr
	case <-time.After(timeout):
		return fmt.Errorf("livert: operation timed out after %v", timeout)
	}
}

// Sleep blocks the calling goroutine for d of real time. It exists so
// callers outside the lint-exempt packages (Platform.Run in live mode)
// do not need wall-clock calls of their own.
func (r *Runtime) Sleep(d time.Duration) { time.Sleep(d) }

// Close shuts the runtime down: no further tasks are accepted, the
// executor drains its queue and exits, all node connections close and
// their readers exit. Close blocks until every goroutine is gone.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, s := range r.shards {
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	// Snapshot the endpoints under the lock, close them after releasing
	// it: Close on one end synchronizes with that pipe's peer, and a
	// reader racing into KillConnection needs epMu for its own teardown.
	r.epMu.Lock()
	r.epsClosed = true
	eps := make([]*endpoint, 0, len(r.eps))
	for node, ep := range r.eps { //lint:allow maporder teardown set; close order is immaterial
		delete(r.eps, node)
		eps = append(eps, ep)
	}
	r.epMu.Unlock()
	for _, ep := range eps {
		closeConn(ep.w)
		closeConn(ep.r)
	}
	r.wg.Wait()
}
