package livert_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"landmarkdht/internal/runtime/livert"
)

// TestInboxShedsUnderBacklog fills the bounded delivery queue while the
// executor is deliberately stalled and checks the overflow is shed and
// counted, never silently lost or unboundedly queued: every send is
// accounted as either a delivery or a shed.
func TestInboxShedsUnderBacklog(t *testing.T) {
	const maxInbox = 4
	rt := livert.New(livert.Config{Seed: 1, MaxInbox: maxInbox})
	defer rt.Close()
	rt.Register(1)

	// Stall the executor on its first delivery so everything behind it
	// backs up in the inbox.
	stalled := make(chan struct{})
	release := make(chan struct{})
	var delivered atomic.Int64
	rt.Send(1, 0, []byte("plug"), func(any) {
		close(stalled)
		<-release
	}, nil)
	<-stalled

	const flood = 200
	for i := 0; i < flood; i++ {
		rt.Send(1, 0, []byte("m"), func(any) { delivered.Add(1) }, nil)
	}
	// Wait for the flood to be fully adjudicated (queued or shed) while
	// the executor is still stalled: from here on no new sheds happen.
	deadline := time.Now().Add(10 * time.Second)
	for {
		depth, shed := rt.QueueStats()
		if depth+int(shed) >= flood {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood never settled: depth=%d shed=%d", depth, shed)
		}
		time.Sleep(time.Millisecond)
	}
	_, shed := rt.QueueStats()
	if shed == 0 {
		t.Fatalf("no deliveries shed with a %d-deep inbox under a %d-message flood", maxInbox, flood)
	}
	close(release)

	// Drain: everything accepted must be delivered.
	for {
		if delivered.Load()+shed == flood {
			break
		}
		if time.Now().After(deadline) {
			d, s := delivered.Load(), shed
			t.Fatalf("accounting hole: delivered=%d shed=%d, sent=%d", d, s, flood)
		}
		time.Sleep(time.Millisecond)
	}
	if _, finalShed := rt.QueueStats(); finalShed != shed {
		t.Fatalf("sheds grew after release: %d -> %d", shed, finalShed)
	}
}

// TestInboxUnbounded checks MaxInbox < 0 disables shedding entirely.
func TestInboxUnbounded(t *testing.T) {
	rt := livert.New(livert.Config{Seed: 1, MaxInbox: -1})
	defer rt.Close()
	rt.Register(1)
	stalled := make(chan struct{})
	release := make(chan struct{})
	var delivered atomic.Int64
	rt.Send(1, 0, []byte("plug"), func(any) {
		close(stalled)
		<-release
	}, nil)
	<-stalled
	const flood = 500
	for i := 0; i < flood; i++ {
		rt.Send(1, 0, []byte("m"), func(any) { delivered.Add(1) }, nil)
	}
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() != flood {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d with unbounded inbox", delivered.Load(), flood)
		}
		time.Sleep(time.Millisecond)
	}
	if _, shed := rt.QueueStats(); shed != 0 {
		t.Fatalf("unbounded inbox shed %d deliveries", shed)
	}
}

// TestExecShardRunsAndCompletes fans per-key work across the shard
// executors from the protocol executor and checks every work/done pair
// completes, with done back on the protocol executor (serialized).
func TestExecShardRunsAndCompletes(t *testing.T) {
	rt := livert.New(livert.Config{Seed: 1, Executors: 4})
	defer rt.Close()
	if got := rt.ShardCount(); got != 3 {
		t.Fatalf("ShardCount=%d with Executors=4, want 3", got)
	}
	const n = 300
	var worked atomic.Int64
	completed := 0 // protocol-executor-only, like real protocol state
	done := make(chan struct{})
	err := rt.Do(func() {
		for i := 0; i < n; i++ {
			rt.ExecShard(uint64(i), func() { worked.Add(1) }, func() {
				completed++
				if completed == n {
					close(done)
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d of %d shard completions ran", completed, n)
	}
	if worked.Load() != n {
		t.Fatalf("worked=%d, want %d", worked.Load(), n)
	}
}

// TestExecShardSameKeySerializes checks per-key work never overlaps:
// one key always hashes to the same shard executor, preserving the
// single-goroutine-per-node contract.
func TestExecShardSameKeySerializes(t *testing.T) {
	rt := livert.New(livert.Config{Seed: 1, Executors: 4})
	defer rt.Close()
	const n = 200
	var (
		mu       sync.Mutex
		inFlight int
		overlaps int
	)
	finished := 0
	done := make(chan struct{})
	err := rt.Do(func() {
		for i := 0; i < n; i++ {
			rt.ExecShard(42, func() {
				mu.Lock()
				inFlight++
				if inFlight > 1 {
					overlaps++
				}
				inFlight--
				mu.Unlock()
			}, func() {
				finished++
				if finished == n {
					close(done)
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d of %d completions ran", finished, n)
	}
	if overlaps != 0 {
		t.Fatalf("%d same-key work items overlapped", overlaps)
	}
}

// TestDoQuiescesShards checks Do's exclusive section really waits for
// in-flight shard work: a Do snapshot taken while shard work is queued
// must observe all of it finished.
func TestDoQuiescesShards(t *testing.T) {
	rt := livert.New(livert.Config{Seed: 1, Executors: 3})
	defer rt.Close()
	const n = 100
	var worked atomic.Int64
	if err := rt.Do(func() {
		for i := 0; i < n; i++ {
			rt.ExecShard(uint64(i), func() { worked.Add(1) }, nil)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// The next Do parks every shard behind its queued work, so by the
	// time its body runs all n work items have finished.
	var seen int64
	if err := rt.Do(func() { seen = worked.Load() }); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("quiesced section saw %d of %d shard work items", seen, n)
	}
}

// TestExecShardInlineWithoutShards checks single-executor mode runs
// shard work synchronously on the caller.
func TestExecShardInlineWithoutShards(t *testing.T) {
	rt := newRT(t)
	if got := rt.ShardCount(); got != 0 {
		t.Fatalf("ShardCount=%d with default config, want 0", got)
	}
	order := ""
	if err := rt.Do(func() {
		rt.ExecShard(7, func() { order += "work" }, func() { order += "+done" })
		order += "+after"
	}); err != nil {
		t.Fatal(err)
	}
	if order != "work+done+after" {
		t.Fatalf("inline ExecShard ran out of order: %q", order)
	}
}
