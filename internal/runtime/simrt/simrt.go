// Package simrt adapts a sim.Engine to the runtime seams: the
// discrete-event simulator becomes one Runtime/Transport
// implementation among several, and the protocol layers stop depending
// on it directly.
//
// The adapter is a strict pass-through. Every Clock call forwards to
// the engine method of the same name in the same order, and Send is
// exactly the engine's ScheduleArg, so a simulation driven through
// simrt replays byte-identically to one that called the engine
// directly (TestSeedStability pins this). The zero-allocation
// contract of the engine's hot paths is preserved: the adapter is
// pointer-shaped (it boxes into the interfaces without allocating)
// and Send passes the prebound deliver/arg pair straight through.
package simrt

import (
	"math/rand"
	"time"

	"landmarkdht/internal/runtime"
	"landmarkdht/internal/sim"
)

// RT wraps one engine as a runtime.Runtime and runtime.Transport.
type RT struct {
	eng *sim.Engine
}

// New returns the adapter for eng.
func New(eng *sim.Engine) *RT { return &RT{eng: eng} }

// Engine returns the wrapped engine (drivers need Run/RunUntil, which
// are deliberately not part of the runtime seams).
func (r *RT) Engine() *sim.Engine { return r.eng }

// Now returns the current simulated time.
func (r *RT) Now() time.Duration { return r.eng.Now() }

// Schedule runs fn after delay of simulated time.
func (r *RT) Schedule(delay time.Duration, fn func()) { r.eng.Schedule(delay, fn) }

// ScheduleArg runs fn(arg) after delay of simulated time, without
// allocating a closure.
func (r *RT) ScheduleArg(delay time.Duration, fn func(any), arg any) {
	r.eng.ScheduleArg(delay, fn, arg)
}

// AfterFunc schedules a cancellable one-shot callback. The returned
// handle is the engine's value-typed Timer.
func (r *RT) AfterFunc(delay time.Duration, fn func()) runtime.Timer {
	return r.eng.AfterFunc(delay, fn)
}

// Rand returns the engine's seeded random source.
func (r *RT) Rand() *rand.Rand { return r.eng.Rand() }

// Send implements runtime.Transport: delivery is one engine event at
// now+delay. The payload is ignored — the simulation charges message
// sizes through the overlay's traffic accounting, and the deliver
// callback already holds (or re-decodes) the encoded bytes.
func (r *RT) Send(to uint64, delay time.Duration, payload []byte, deliver func(any), arg any) {
	_ = to
	_ = payload
	r.eng.ScheduleArg(delay, deliver, arg)
}
