package runtime

import (
	"math/rand"
	"time"
)

// FaultPolicy is the runtime-agnostic fault description: one value
// drives fault injection on both runtimes. The protocol-level faults
// (Drop, Duplicate, Jitter/Spike, Partitions) are injected by the
// overlay — chord.FaultPlanFromPolicy translates them into a
// chord.FaultPlan whose decisions draw from the driving runtime's
// seeded random source, so they behave identically over the simulated
// and the live transport (and byte-identically to no plan at all when
// every field is zero). The transport-level faults (FrameDrop,
// KillConn) have no simulated analogue — they model failures below
// the protocol — and are consumed by the live transport's inbox path.
type FaultPolicy struct {
	// Drop is the per-message loss probability (every message kind).
	Drop float64
	// Duplicate is the probability that a query or acknowledgement
	// message is delivered twice (the kinds whose receive paths are
	// idempotent by protocol design). The second copy arrives after
	// twice the first copy's delay, like a spurious retransmission.
	Duplicate float64
	// Jitter adds a uniform random extra delay in [0, Jitter) per
	// message; SpikeProb/SpikeDelay add rare large delays.
	Jitter     time.Duration
	SpikeProb  float64
	SpikeDelay time.Duration
	// Partitions are timed windows during which messages crossing a
	// host-group boundary are all lost.
	Partitions []PartitionWindow
	// FrameDrop is the live transport's probability of discarding a
	// received payload frame after it crossed the connection (an inbox
	// failure the sender cannot observe).
	FrameDrop float64
	// KillConn is the live transport's probability, per received
	// frame, of killing and re-establishing the receiving node's
	// connection — every message in flight on it is lost.
	KillConn float64
	// Seed seeds the live transport's fault source (frame drops and
	// connection kills happen on reader goroutines, outside the
	// protocol's single-threaded random source).
	Seed int64
}

// PartitionWindow separates a host group from the rest of the network
// during [From, To) — once, or repeating with period Every.
type PartitionWindow struct {
	Hosts    []int
	From, To time.Duration
	// Every, when positive, repeats the window: it is active whenever
	// (now-From) mod Every falls inside the window's length. Zero
	// means a single window.
	Every time.Duration
}

// Active reports whether the window is partitioning at time now.
func (w PartitionWindow) Active(now time.Duration) bool {
	if now < w.From {
		return false
	}
	if w.Every > 0 {
		return (now-w.From)%w.Every < w.To-w.From
	}
	return now < w.To
}

// LinkFaults is the one frame-drop / connection-kill decision path
// shared by every live transport's read loop (livert's in-process
// inboxes and netrt's TCP links). Each reader owns one LinkFaults
// seeded by the policy's Seed XOR the peer's identity, so decisions
// never touch the executor's protocol random source and a given
// (seed, peer) pair draws the same fault sequence on both runtimes.
//
// A nil *LinkFaults is valid and injects nothing, so read loops call
// DropFrame/KillConn unconditionally.
type LinkFaults struct {
	rng  *rand.Rand
	drop float64
	kill float64
}

// NewLinkFaults builds the fault hook for one reader. It returns nil —
// inject nothing — when the policy configures no transport-level
// faults.
func NewLinkFaults(pol *FaultPolicy, peer uint64) *LinkFaults {
	if pol == nil || (pol.FrameDrop == 0 && pol.KillConn == 0) {
		return nil
	}
	return &LinkFaults{
		rng:  rand.New(rand.NewSource(pol.Seed ^ int64(peer))),
		drop: pol.FrameDrop,
		kill: pol.KillConn,
	}
}

// DropFrame draws the per-frame discard decision. Nil-safe.
func (f *LinkFaults) DropFrame() bool {
	return f != nil && f.drop > 0 && f.rng.Float64() < f.drop
}

// KillConn draws the per-frame connection-kill decision. Nil-safe.
func (f *LinkFaults) KillConn() bool {
	return f != nil && f.kill > 0 && f.rng.Float64() < f.kill
}

// Zero reports whether the policy injects nothing at all.
func (p *FaultPolicy) Zero() bool {
	return p == nil || (p.Drop == 0 && p.Duplicate == 0 && p.Jitter == 0 &&
		p.SpikeProb == 0 && len(p.Partitions) == 0 &&
		p.FrameDrop == 0 && p.KillConn == 0)
}
