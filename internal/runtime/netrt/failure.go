package netrt

// Heartbeat-based failure detection. Every HeartbeatPeriod the node
// probes each known member with a sequenced ping; an unanswered probe
// raises the member's suspicion counter, and SuspectAfter consecutive
// misses mark it down. Suspicion halves on every answered probe and a
// down member comes back as soon as enough probes are answered —
// consistent with the membership layer, which never evicts a member, a
// down verdict is never permanent. Down members have their region's
// subqueries answered from replica copies (query.go) and their repair
// streams paused (replica.go); everything else — gossip, links, the
// ring itself — is untouched.

// hbState is one member's detector state.
type hbState struct {
	seq   uint64 // last probe sequence sent
	acked uint64 // highest probe sequence answered
	susp  int    // consecutive unanswered probes, halved on answers
	down  bool
}

// heartbeatTick books the previous round's misses and probes every
// member.
//
//lint:context executor
func (n *Node) heartbeatTick() {
	for _, id := range n.ring {
		if id == n.id {
			continue
		}
		st := n.hb[id]
		if st == nil {
			st = &hbState{}
			n.hb[id] = st
		}
		if st.seq > st.acked {
			st.susp++
			if !st.down && st.susp >= n.cfg.SuspectAfter {
				st.down = true
				n.logf("member %016x down (%d unanswered probes)", id, st.susp)
			}
		}
		st.seq++
		n.sendTo(n.members[id], kindPing, pingMsg{From: n.id, Seq: st.seq})
	}
}

// onPing answers a probe with its sequence number.
//
//lint:context executor
func (n *Node) onPing(p *pingMsg) {
	n.sendTo(n.members[p.From], kindPong, pongMsg{From: n.id, Seq: p.Seq})
}

// onPong books an answered probe: suspicion decays, and a down member
// recovers once the decayed count falls under the threshold. A stale
// pong (already-acked sequence) cannot revive a re-suspected member.
//
//lint:context executor
func (n *Node) onPong(p *pongMsg) {
	st := n.hb[p.From]
	if st == nil || p.Seq <= st.acked {
		return
	}
	st.acked = p.Seq
	st.susp /= 2
	if st.down && st.susp < n.cfg.SuspectAfter {
		st.down = false
		n.logf("member %016x back up", p.From)
	}
}

// isDown reports the detector's current verdict on a member.
//
//lint:context executor
func (n *Node) isDown(id uint64) bool {
	st := n.hb[id]
	return st != nil && st.down
}

// downMembers lists the members currently marked down, in ring order.
//
//lint:context executor
func (n *Node) downMembers() []uint64 {
	var out []uint64
	for _, id := range n.ring {
		if n.isDown(id) {
			out = append(out, id)
		}
	}
	return out
}
