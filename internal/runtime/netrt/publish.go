package netrt

// Online mutations: Publish inserts an object under a caller-chosen id
// (disjoint from the boot corpus), Delete removes an entry. Mutations
// route to the owner of the object's ring key exactly as queries route
// regions; the owner applies the change to its live region, appends one
// record to its WAL when durable (an incremental append — the corpus
// snapshot is never recompacted online), fans the change out to its
// replicas, and acks the origin. A restarted durable node replays its
// mutation records on top of the recovered corpus before serving.
//
// Mutations to a down owner fail fast instead of queueing: while an
// owner is dead its replica copies must stay static, which is exactly
// what makes failover reads exact.

import (
	"fmt"
	"sort"
	"time"

	"landmarkdht/internal/core"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/runtime"
)

// pendingPub is one in-flight mutation originated at this node.
type pendingPub struct {
	done  func(error)
	timer runtime.Timer
}

// Publish inserts one object under id, routed to the owner of its ring
// key. The id must not collide with the boot corpus. Safe from any
// goroutine.
func (n *Node) Publish(id int32, obj []byte, timeout time.Duration) error {
	return n.mutate(id, obj, false, timeout)
}

// Delete removes one entry: a boot-corpus entry by id alone, or a
// published entry by id plus its encoded object (the bytes re-derive
// the ring key the delete routes by). Safe from any goroutine.
func (n *Node) Delete(id int32, obj []byte, timeout time.Duration) error {
	return n.mutate(id, obj, true, timeout)
}

func (n *Node) mutate(id int32, obj []byte, del bool, timeout time.Duration) error {
	var merr error
	err := n.rt.Await(timeout, func(finish func()) error {
		n.startMutation(id, obj, del, func(err error) {
			merr = err
			finish()
		})
		return nil
	})
	if err != nil {
		return err
	}
	return merr
}

// startMutation begins one mutation at this node (executor only). done
// fires exactly once, on the executor.
//
//lint:context executor
func (n *Node) startMutation(id int32, obj []byte, del bool, done func(error)) {
	var key lph.Key
	switch {
	case len(obj) > 0:
		k, _, err := n.data.MapObj(obj)
		if err != nil {
			done(err)
			return
		}
		key = k
	case del && int(id) >= 0 && int(id) < n.data.N():
		key = n.data.Key(int(id))
	default:
		done(fmt.Errorf("netrt: mutation of id %d needs the encoded object", id))
		return
	}
	n.nextRID++
	rid := n.nextRID
	pp := &pendingPub{done: done}
	n.pubs[rid] = pp
	pp.timer = n.rt.AfterFunc(n.cfg.Deadline, func() {
		if n.pubs[rid] == pp {
			delete(n.pubs, rid)
			done(fmt.Errorf("netrt: mutation timed out after %v", n.cfg.Deadline))
		}
	})
	n.routeMutation(&pubMsg{
		Origin: n.id, OriginAddr: n.addr, Epoch: n.epoch, RID: rid,
		ID: id, Obj: obj, Key: uint64(key), Delete: del, TTL: n.cfg.TTL,
	})
}

// routeMutation forwards a mutation toward the owner of its ring key,
// applying it on arrival.
//
//lint:context executor
func (n *Node) routeMutation(m *pubMsg) {
	if m.TTL <= 0 {
		n.mutAck(m, "ttl exhausted")
		return
	}
	owner := n.successor(m.Key)
	if owner == n.id {
		if err := n.applyMutation(m); err != nil {
			n.mutAck(m, err.Error())
			return
		}
		n.journalMutation(m)
		n.fanoutMutation(m)
		n.mutAck(m, "")
		return
	}
	if n.isDown(owner) {
		n.mutAck(m, fmt.Sprintf("owner %016x down", owner))
		return
	}
	fm := *m
	fm.TTL--
	n.sendTo(n.members[owner], kindPublish, &fm)
}

// applyMutation applies one mutation to the live region, keeping the
// region digest incrementally correct.
//
//lint:context executor
func (n *Node) applyMutation(m *pubMsg) error {
	if m.Delete {
		if e, ok := n.extras[m.ID]; ok {
			delete(n.extras, m.ID)
			n.mineDigest ^= e.dig
			n.mineCount--
			return nil
		}
		i := int(m.ID)
		if i < 0 || i >= n.data.N() {
			return fmt.Errorf("netrt: delete of unknown id %d", m.ID)
		}
		if _, dead := n.tombs[m.ID]; dead {
			return nil // idempotent
		}
		n.tombs[m.ID] = struct{}{}
		if n.ownsBoot(i) {
			n.mineDigest ^= n.entryDig[i]
			n.mineCount--
		}
		return nil
	}
	if i := int(m.ID); i >= 0 && i < n.data.N() {
		return fmt.Errorf("netrt: publish id %d collides with the boot corpus", m.ID)
	}
	_, point, err := n.data.MapObj(m.Obj)
	if err != nil {
		return err
	}
	e := repEntry{key: lph.Key(m.Key), point: point, obj: m.Obj}
	e.dig = core.EntryDigest(e.key, core.Entry{Obj: core.ObjectID(m.ID), Point: point}, m.Obj)
	if old, ok := n.extras[m.ID]; ok {
		n.mineDigest ^= old.dig
		n.mineCount--
	}
	n.extras[m.ID] = e
	n.mineDigest ^= e.dig
	n.mineCount++
	return nil
}

// ownsBoot reports whether boot entry i is currently owned here (owned
// is ascending corpus indices).
//
//lint:context executor
func (n *Node) ownsBoot(i int) bool {
	j := sort.SearchInts(n.owned, i)
	return j < len(n.owned) && n.owned[j] == i
}

// fanoutMutation forwards an applied mutation to this owner's replicas
// as Replica-marked copies (applied to their copy of this region, never
// re-routed, never acked). A replica that misses the fan-out — down,
// shed frame — diverges and is repaired by the next digest exchange.
//
//lint:context executor
func (n *Node) fanoutMutation(m *pubMsg) {
	for _, t := range n.replicaTargets(n.id) {
		if t == n.id || n.isDown(t) {
			continue
		}
		fm := *m
		fm.Replica = true
		fm.Owner = n.id
		n.sendTo(n.members[t], kindPublish, &fm)
	}
}

// onPublish handles an inbound mutation frame: replica fan-out applies
// to the local copy, anything else keeps routing.
//
//lint:context executor
func (n *Node) onPublish(m *pubMsg) {
	if m.Replica {
		n.applyToCopy(m)
		return
	}
	n.routeMutation(m)
}

// applyToCopy applies one fanned-out mutation to the copy of its
// owner's region. Without a synced baseline the fan-out is skipped —
// the anti-entropy stream will deliver the whole region instead.
//
//lint:context executor
func (n *Node) applyToCopy(m *pubMsg) {
	c := n.copies[m.Owner]
	if c == nil || !c.synced {
		return
	}
	if m.Delete {
		if e, ok := c.entries[m.ID]; ok {
			delete(c.entries, m.ID)
			c.digest ^= e.dig
		}
		return
	}
	_, point, err := n.data.MapObj(m.Obj)
	if err != nil {
		return
	}
	e := repEntry{key: lph.Key(m.Key), point: point, obj: m.Obj}
	e.dig = core.EntryDigest(e.key, core.Entry{Obj: core.ObjectID(m.ID), Point: point}, m.Obj)
	if old, ok := c.entries[m.ID]; ok {
		c.digest ^= old.dig
	}
	c.entries[m.ID] = e
	c.digest ^= e.dig
}

// mutAck reports a mutation's outcome to its origin.
//
//lint:context executor
func (n *Node) mutAck(m *pubMsg, errstr string) {
	if m.Origin == n.id {
		n.onPubAck(&pubAckMsg{Epoch: m.Epoch, RID: m.RID, Err: errstr})
		return
	}
	n.sendTo(m.OriginAddr, kindPubAck, pubAckMsg{Epoch: m.Epoch, RID: m.RID, Err: errstr})
}

// onPubAck completes one pending mutation. Epoch routing keeps acks
// addressed to a previous incarnation away from this one's rids.
//
//lint:context executor
func (n *Node) onPubAck(a *pubAckMsg) {
	if a.Epoch != n.epoch {
		return
	}
	pp := n.pubs[a.RID]
	if pp == nil {
		return
	}
	delete(n.pubs, a.RID)
	pp.timer.Stop()
	if a.Err != "" {
		pp.done(fmt.Errorf("netrt: mutation failed: %s", a.Err))
		return
	}
	pp.done(nil)
}

// applyRecovered replays one journaled mutation during startup (before
// the first view build — rebuildView folds the result into the region
// digest). Records replay in log order, so publish/delete interleavings
// resolve exactly as they were applied.
//
//lint:context executor
func (n *Node) applyRecovered(m durableMut) {
	if m.del {
		if int(m.id) >= 0 && int(m.id) < n.data.N() {
			n.tombs[m.id] = struct{}{}
		} else {
			delete(n.extras, m.id)
		}
		return
	}
	e := repEntry{key: m.key, point: m.point, obj: m.obj}
	e.dig = core.EntryDigest(m.key, core.Entry{Obj: core.ObjectID(m.id), Point: m.point}, m.obj)
	n.extras[m.id] = e
}
