package netrt

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"landmarkdht/internal/wire"
)

// replicatedConfig is testConfig tuned for fast failure detection and
// anti-entropy, with replication on. SuspectAfter stays generous
// relative to the period: a loaded test machine can delay a pong past
// one 100ms round easily, and a spuriously-down target pauses its
// repair streams — exactly the starvation this config must avoid.
func replicatedConfig(data DataConfig, replicas int, join ...string) Config {
	cfg := testConfig(data, join...)
	cfg.Replicas = replicas
	cfg.HeartbeatPeriod = 100 * time.Millisecond
	cfg.SuspectAfter = 6
	cfg.AntiEntropyPeriod = 150 * time.Millisecond
	return cfg
}

func startReplicatedRing(t *testing.T, size, replicas int, data DataConfig) []*Node {
	t.Helper()
	nodes := make([]*Node, size)
	first, err := Start(replicatedConfig(data, replicas))
	if err != nil {
		t.Fatalf("start first node: %v", err)
	}
	nodes[0] = first
	for i := 1; i < size; i++ {
		n, err := Start(replicatedConfig(data, replicas, first.Addr()))
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	waitConverged(t, nodes, size)
	return nodes
}

// execRead runs fn on the node's executor and waits for it — the test's
// window into executor-owned state.
func execRead(t *testing.T, n *Node, fn func()) {
	t.Helper()
	if err := n.rt.Do(fn); err != nil {
		t.Fatal(err)
	}
}

// waitSynced waits until every node holds a synced copy of each of the
// owners it replicates for.
func waitSynced(t *testing.T, nodes []*Node, wantOwners int) {
	t.Helper()
	waitFor(t, 20*time.Second, func() bool {
		for _, n := range nodes {
			if n == nil {
				continue
			}
			synced := 0
			execRead(t, n, func() { synced = n.syncedOwners() })
			if synced < wantOwners {
				return false
			}
		}
		return true
	})
}

// TestReplicaFailoverExactQueries is the tentpole contract: with
// Replicas=1, a member dying permanently must not cost completeness or
// exactness — once the survivors' detectors mark it down, every query
// is Complete and matches brute force, answered from bulk-streamed
// replica copies (Repairs > 0, RepairFallback == 0).
func TestReplicaFailoverExactQueries(t *testing.T) {
	data := testData()
	nodes := startReplicatedRing(t, 3, 1, data)
	waitSynced(t, nodes, 1)

	victim := nodes[2]
	victimID := victim.ID()
	victim.Close()
	nodes[2] = nil
	survivors := []*Node{nodes[0], nodes[1]}

	// Wait for every survivor's detector to mark the victim down —
	// rerouting needs the verdict at whichever node holds the shard.
	waitFor(t, 15*time.Second, func() bool {
		for _, n := range survivors {
			down := false
			execRead(t, n, func() { down = n.isDown(victimID) })
			if !down {
				return false
			}
		}
		return true
	})

	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 12; i++ {
		qobj := ds.RandomQuery(rng)
		r := 0.2 + 0.3*rng.Float64()
		out, err := survivors[i%2].Query(qobj, r, 5*time.Second)
		if err != nil {
			t.Fatalf("query %d with dead member: %v", i, err)
		}
		if !out.Complete {
			t.Fatalf("query %d incomplete with a dead member despite replicas (dropped %d)", i, out.Dropped)
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(out.Entries, want) {
			t.Fatalf("query %d: failover answer has %d entries, brute force %d", i, len(out.Entries), len(want))
		}
	}

	var repairs, fallback int64
	for _, n := range survivors {
		s := n.Stats()
		repairs += s.Repairs
		fallback += s.RepairFallback
	}
	if repairs == 0 {
		t.Fatal("no bulk repair stream was installed on any survivor")
	}
	if fallback != 0 {
		t.Fatalf("repairs took the point-wise fallback path %d times", fallback)
	}
}

// TestAntiEntropyRepairsDivergence tampers with a synced replica copy
// and requires the digest exchange to notice and re-stream the region.
func TestAntiEntropyRepairsDivergence(t *testing.T) {
	data := testData()
	nodes := startReplicatedRing(t, 2, 1, data)
	waitSynced(t, nodes, 1)

	a, b := nodes[0], nodes[1]
	before := b.Stats().Repairs
	var ownerEntries int
	execRead(t, a, func() { ownerEntries = a.mineCount })

	// Drop one entry from b's copy of a, keeping the copy's digest
	// self-consistent — only the owner's advert can expose the loss.
	execRead(t, b, func() {
		c := b.copies[a.id]
		if c == nil {
			t.Error("no copy of the owner on the replica")
			return
		}
		for id, e := range c.entries {
			delete(c.entries, id)
			c.digest ^= e.dig
			break
		}
	})

	waitFor(t, 20*time.Second, func() bool {
		if b.Stats().Repairs <= before {
			return false
		}
		restored := 0
		execRead(t, b, func() {
			if c := b.copies[a.id]; c != nil && c.synced {
				restored = len(c.entries)
			}
		})
		return restored == ownerEntries
	})
}

// TestFailureDetectorRecovery pins the decay contract: a down verdict
// reverses once the member answers probes again — never a permanent
// blacklist.
func TestFailureDetectorRecovery(t *testing.T) {
	data := testData()
	cfg := replicatedConfig(data, 0)
	a, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start(replicatedConfig(data, 0, a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*Node{a, b}, 2)

	bID, bAddr := b.ID(), b.Addr()
	b.Close()
	waitFor(t, 15*time.Second, func() bool {
		down := false
		execRead(t, a, func() { down = a.isDown(bID) })
		return down
	})

	// Restart on the same address: same identity, answered probes must
	// clear the verdict.
	cfg2 := replicatedConfig(data, 0, a.Addr())
	cfg2.Listen = bAddr
	b2, err := Start(cfg2)
	if err != nil {
		t.Fatalf("restart on %s: %v", bAddr, err)
	}
	defer b2.Close()
	waitFor(t, 20*time.Second, func() bool {
		down := true
		execRead(t, a, func() { down = a.isDown(bID) })
		return !down
	})
}

// TestHostileRepFrameDropsLink feeds a handshaked peer connection a
// truncated binary replication frame: the node must drop the link
// (typed wire.FrameError surfaced by the synchronous decode) — never
// panic, never keep reading the poisoned stream.
func TestHostileRepFrameDropsLink(t *testing.T) {
	n, err := Start(testConfig(testData()))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	conn, err := net.DialTimeout("tcp", n.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := dialHandshake(conn, Member{ID: 424242, Addr: "127.0.0.1:9"}, n.sig, nil); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	frame, err := wire.AppendFrame(nil, 2, encodeRaw(kindRepChunk, []byte{0xDE, 0xAD, 0xBE}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The node closes the connection; anything it sent beforehand
	// (heartbeats) may still be buffered, so read until the drop.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for {
		_, _, next, err := wire.ReadFrame(conn, buf)
		if err != nil {
			if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
				t.Fatal("link survived a hostile replication frame")
			}
			return // dropped, as required
		}
		buf = next
	}
}
