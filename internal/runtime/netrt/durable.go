package netrt

// Durable node state. With Config.DataDir set, a node persists its
// corpus — landmark objects, every entry's encoded object, ring key
// and index-space point — to a WAL-backed store in that directory on
// first boot, and on every later boot restores it from disk instead of
// regenerating and re-mapping the corpus. Recovery performs zero
// distance computations: keys and points come straight off the
// snapshot, and the embedding is rebuilt from the persisted landmark
// objects only so query-time mapping still works.
//
// The record stream is self-describing:
//
//	meta     [tag=1 | 1B metric len | metric | 8B seed | 4B objects | 4B dim | 4B landmarks]
//	landmark [tag=2 | encoded object]
//	entry    [tag=3 | 4B idx | 8B key | 2B point len | 8B per comp | encoded object]
//	publish  [tag=4 | 4B id  | 8B key | 2B point len | 8B per comp | encoded object]
//	delete   [tag=5 | 4B id]
//
// All integers big-endian. The meta record guards against pointing a
// node at a directory built for a different corpus: mismatch is a loud
// error, never a silent rebuild. Likewise mid-log corruption
// (wal.ErrCorrupt) aborts startup rather than falling back to
// regeneration — a rebuilt corpus would silently mask durability bugs.
//
// The first three tags form the corpus snapshot, written once by
// Compact on first boot. Publish and delete records are incremental:
// every online mutation the node applies as owner appends exactly one
// record (publish.go), and a restart replays them in log order on top
// of the recovered corpus — the snapshot is never recompacted online.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"time"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/metric"
	"landmarkdht/internal/wal"
)

const (
	recMeta     byte = 1
	recLandmark byte = 2
	recEntry    byte = 3
	recPublish  byte = 4
	recDelete   byte = 5
)

// encodeMeta builds the meta record payload for cfg (defaults already
// filled). Byte-compared on recovery, so the encoding must be
// canonical.
func encodeMeta(cfg DataConfig) []byte {
	b := make([]byte, 0, 2+len(cfg.Metric)+8+12)
	b = append(b, recMeta, byte(len(cfg.Metric)))
	b = append(b, cfg.Metric...)
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], uint64(cfg.Seed))
	b = append(b, u[:]...)
	binary.BigEndian.PutUint32(u[:4], uint32(cfg.Objects))
	b = append(b, u[:4]...)
	binary.BigEndian.PutUint32(u[:4], uint32(cfg.Dim))
	b = append(b, u[:4]...)
	binary.BigEndian.PutUint32(u[:4], uint32(cfg.Landmarks))
	return append(b, u[:4]...)
}

// rawEntry is one decoded entry record, held until the metric-specific
// restore turns object bytes back into objects.
type rawEntry struct {
	key   lph.Key
	point []float64
	obj   []byte
	set   bool
}

// durableMut is one replayed online mutation, applied in log order on
// top of the recovered corpus (publish.go's applyRecovered).
type durableMut struct {
	id    int32
	key   lph.Key
	point []float64
	obj   []byte
	del   bool
}

// rawState accumulates the record stream during replay.
type rawState struct {
	meta      []byte
	landmarks [][]byte
	entries   []rawEntry
	muts      []durableMut
	replayed  int
}

func (r *rawState) add(p []byte) error {
	if len(p) == 0 {
		return fmt.Errorf("netrt: empty durable record")
	}
	r.replayed++
	switch p[0] {
	case recMeta:
		r.meta = append([]byte(nil), p...)
	case recLandmark:
		r.landmarks = append(r.landmarks, append([]byte(nil), p[1:]...))
	case recEntry:
		const hdr = 1 + 4 + 8 + 2
		if len(p) < hdr {
			return fmt.Errorf("netrt: entry record truncated (%d bytes)", len(p))
		}
		idx := int(binary.BigEndian.Uint32(p[1:]))
		key := lph.Key(binary.BigEndian.Uint64(p[5:]))
		plen := int(binary.BigEndian.Uint16(p[13:]))
		rest := p[hdr:]
		if len(rest) < 8*plen {
			return fmt.Errorf("netrt: entry %d point truncated", idx)
		}
		point := make([]float64, plen)
		for j := range point {
			point[j] = math.Float64frombits(binary.BigEndian.Uint64(rest[8*j:]))
		}
		for idx >= len(r.entries) {
			r.entries = append(r.entries, rawEntry{})
		}
		r.entries[idx] = rawEntry{
			key:   key,
			point: point,
			obj:   append([]byte(nil), rest[8*plen:]...),
			set:   true,
		}
	case recPublish:
		const hdr = 1 + 4 + 8 + 2
		if len(p) < hdr {
			return fmt.Errorf("netrt: publish record truncated (%d bytes)", len(p))
		}
		id := int32(binary.BigEndian.Uint32(p[1:]))
		key := lph.Key(binary.BigEndian.Uint64(p[5:]))
		plen := int(binary.BigEndian.Uint16(p[13:]))
		rest := p[hdr:]
		if len(rest) < 8*plen {
			return fmt.Errorf("netrt: publish record %d point truncated", id)
		}
		point := make([]float64, plen)
		for j := range point {
			point[j] = math.Float64frombits(binary.BigEndian.Uint64(rest[8*j:]))
		}
		r.muts = append(r.muts, durableMut{
			id: id, key: key, point: point,
			obj: append([]byte(nil), rest[8*plen:]...),
		})
	case recDelete:
		if len(p) != 5 {
			return fmt.Errorf("netrt: delete record is %d bytes, want 5", len(p))
		}
		r.muts = append(r.muts, durableMut{id: int32(binary.BigEndian.Uint32(p[1:])), del: true})
	default:
		return fmt.Errorf("netrt: unknown durable record tag %d", p[0])
	}
	return nil
}

// journalMutation appends one mutation record to the node's WAL — an
// incremental append, never a recompaction. Nodes without a data
// directory skip it. Executor context: the WAL's interval-sync append
// is a buffered file write, the same budget as the boot-time snapshot.
//
//lint:context executor
func (n *Node) journalMutation(m *pubMsg) {
	if n.store == nil {
		return
	}
	var rec []byte
	if m.Delete {
		rec = make([]byte, 5)
		rec[0] = recDelete
		binary.BigEndian.PutUint32(rec[1:], uint32(m.ID))
	} else {
		e := n.extras[m.ID]
		var u [8]byte
		rec = append(rec, recPublish)
		binary.BigEndian.PutUint32(u[:4], uint32(m.ID))
		rec = append(rec, u[:4]...)
		binary.BigEndian.PutUint64(u[:], uint64(e.key))
		rec = append(rec, u[:]...)
		binary.BigEndian.PutUint16(u[:2], uint16(len(e.point)))
		rec = append(rec, u[:2]...)
		for _, x := range e.point {
			binary.BigEndian.PutUint64(u[:], math.Float64bits(x))
			rec = append(rec, u[:]...)
		}
		rec = append(rec, e.obj...)
	}
	if err := n.store.Append(rec); err != nil {
		n.logf("durable append failed: %v", err)
	}
}

// persist emits the full record stream for the dataset: meta, then
// the landmark objects, then every entry with its key, point and
// encoded object.
func (d *dataset[T]) persist(cfg DataConfig, emit func(payload []byte) error) error {
	if err := emit(encodeMeta(cfg)); err != nil {
		return err
	}
	var buf []byte
	for _, lm := range d.lms {
		buf = append(buf[:0], recLandmark)
		buf = append(buf, d.enc(lm)...)
		if err := emit(buf); err != nil {
			return err
		}
	}
	var u [8]byte
	for i := range d.objs {
		buf = append(buf[:0], recEntry)
		binary.BigEndian.PutUint32(u[:4], uint32(i))
		buf = append(buf, u[:4]...)
		binary.BigEndian.PutUint64(u[:], uint64(d.keys[i]))
		buf = append(buf, u[:]...)
		p := d.points[i]
		binary.BigEndian.PutUint16(u[:2], uint16(len(p)))
		buf = append(buf, u[:2]...)
		for _, x := range p {
			binary.BigEndian.PutUint64(u[:], math.Float64bits(x))
			buf = append(buf, u[:]...)
		}
		buf = append(buf, d.enc(d.objs[i])...)
		if err := emit(buf); err != nil {
			return err
		}
	}
	return nil
}

// restoreDataset rebuilds a dataset from replayed records: objects and
// landmarks are decoded, keys and points are taken verbatim from the
// records (no re-mapping), and only the embedding machinery is
// reconstructed — from the persisted landmarks, not re-selected.
func restoreDataset[T any](cfg DataConfig, raw *rawState, space metric.Space[T], dec func([]byte) (T, error), enc func(T) []byte, random func(*rand.Rand) []byte) (*dataset[T], error) {
	if len(raw.entries) != cfg.Objects {
		return nil, fmt.Errorf("netrt: durable state holds %d entries, config wants %d", len(raw.entries), cfg.Objects)
	}
	if len(raw.landmarks) != cfg.Landmarks {
		return nil, fmt.Errorf("netrt: durable state holds %d landmarks, config wants %d", len(raw.landmarks), cfg.Landmarks)
	}
	lms := make([]T, len(raw.landmarks))
	for i, b := range raw.landmarks {
		lm, err := dec(b)
		if err != nil {
			return nil, fmt.Errorf("netrt: durable landmark %d: %w", i, err)
		}
		lms[i] = lm
	}
	objs := make([]T, len(raw.entries))
	for i := range raw.entries {
		if !raw.entries[i].set {
			return nil, fmt.Errorf("netrt: durable state missing entry %d", i)
		}
		o, err := dec(raw.entries[i].obj)
		if err != nil {
			return nil, fmt.Errorf("netrt: durable entry %d: %w", i, err)
		}
		objs[i] = o
	}
	d, err := assembleDataset(cfg, objs, lms, space, dec, enc, random)
	if err != nil {
		return nil, err
	}
	for i := range raw.entries {
		d.keys[i] = raw.entries[i].key
		d.points[i] = raw.entries[i].point
	}
	d.seal(cfg)
	return d, nil
}

func restoreCorpus(cfg DataConfig, raw *rawState) (corpus, error) {
	switch cfg.Metric {
	case "euclid":
		space, dec, enc, random := euclidParts(cfg)
		return restoreDataset(cfg, raw, space, dec, enc, random)
	case "edit":
		space, dec, enc, random := editParts()
		return restoreDataset(cfg, raw, space, dec, enc, random)
	default:
		return nil, fmt.Errorf("netrt: unknown metric %q (want euclid or edit)", cfg.Metric)
	}
}

// openDurable returns the node's corpus backed by the data directory,
// plus the still-open store — the node keeps it for incremental
// mutation appends and closes it at shutdown. On first boot (empty
// directory) the corpus is built from cfg and snapshotted; on later
// boots it is restored entirely from disk — recovered reports which
// path ran, replayed how many records were read, and muts the online
// mutations to replay on top. A directory built for a different
// config, or a corrupt log, is a hard error: falling back to
// regeneration would silently defeat the durability guarantee.
func openDurable(dir string, cfg DataConfig) (corpus, *wal.Store, bool, int, []durableMut, error) {
	cfg.fillDefaults()
	var raw rawState
	apply := func(p []byte) error { return raw.add(p) }
	st, err := wal.OpenStore(dir, wal.Options{Sync: wal.SyncInterval}, apply, apply)
	if err != nil {
		return nil, nil, false, 0, nil, fmt.Errorf("netrt: open data dir %s: %w", dir, err)
	}
	fail := func(err error) (corpus, *wal.Store, bool, int, []durableMut, error) {
		_ = st.Close() // startup already failing; the original error is the signal
		return nil, nil, false, 0, nil, err
	}
	if raw.meta == nil {
		c, err := buildCorpus(cfg)
		if err != nil {
			return fail(err)
		}
		err = st.Compact(time.Now().UnixNano(), func(emit func(payload []byte) error) error {
			return c.persist(cfg, emit)
		})
		if err != nil {
			return fail(fmt.Errorf("netrt: persist corpus to %s: %w", dir, err))
		}
		return c, st, false, 0, nil, nil
	}
	if want := encodeMeta(cfg); !bytes.Equal(raw.meta, want) {
		return fail(fmt.Errorf("netrt: data dir %s was built for a different corpus config", dir))
	}
	c, err := restoreCorpus(cfg, &raw)
	if err != nil {
		return fail(err)
	}
	return c, st, true, raw.replayed, raw.muts, nil
}
