package netrt

import (
	"net"
	"time"

	"landmarkdht/internal/wire"
)

// serveConn handles one accepted connection. The first frame
// identifies the peer: a Hello starts a node link, a client hello
// starts a client session, anything else (including a hostile stream —
// wire.ReadFrame's typed errors) drops the connection.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		closeConn(conn)
		return
	}
	id, payload, _, err := wire.ReadFrame(conn, nil)
	if err != nil {
		closeConn(conn)
		return
	}
	kind, body, err := splitMsg(payload)
	if err != nil {
		closeConn(conn)
		return
	}
	switch kind {
	case kindHello:
		n.acceptPeer(conn, body)
	case kindClientHello:
		if writeFrame(conn, id, kindClientWelcome, clientWelcomeMsg{ID: n.id, Addr: n.addr}) != nil {
			closeConn(conn)
			return
		}
		if conn.SetDeadline(time.Time{}) != nil {
			closeConn(conn)
			return
		}
		n.serveClient(conn)
	default:
		closeConn(conn)
	}
}

// acceptPeer completes the listener side of the peer handshake and
// attaches the connection to the peer's link.
func (n *Node) acceptPeer(conn net.Conn, body []byte) {
	var h helloMsg
	if decodeBody(body, &h) != nil || h.Addr == "" {
		closeConn(conn)
		return
	}
	if h.Sig != n.sig {
		// Refuse explicitly so the dialer logs the real cause instead
		// of a silent disconnect, then drop: a node built from a
		// different seed can never agree on ownership.
		_ = writeFrame(conn, 1, kindReject, nil) //lint:allow errdrop courtesy reject on a connection being dropped; failure changes nothing
		n.logf("rejected %s: corpus signature mismatch", h.Addr)
		closeConn(conn)
		return
	}
	if writeFrame(conn, 1, kindWelcome, helloMsg{From: n.id, Addr: n.addr, Sig: n.sig, Members: n.snapshot()}) != nil {
		closeConn(conn)
		return
	}
	if conn.SetDeadline(time.Time{}) != nil {
		closeConn(conn)
		return
	}
	members := h.Members
	n.rt.Schedule(0, func() {
		n.addMember(h.From, h.Addr)
		n.mergeMembers(members)
	})
	n.logf("link up from %s (node %016x, accepted)", h.Addr, h.From)
	l := n.ensureLink(h.Addr)
	if l == nil {
		closeConn(conn)
		return
	}
	l.attach(conn, h.From, h.From)
}

// closeConn is best-effort teardown of a connection that is already
// being abandoned: the interesting error (handshake failure, hostile
// stream, write timeout) has already been observed upstream, and a
// Close error on a dying connection carries no further signal.
func closeConn(conn net.Conn) {
	_ = conn.Close() //lint:allow errdrop best-effort teardown of an abandoned conn
}

// writeFrame encodes and writes one framed message.
func writeFrame(conn net.Conn, id uint64, kind byte, msg any) error {
	payload, err := encodeMsg(kind, msg)
	if err != nil {
		return err
	}
	frame, err := wire.AppendFrame(nil, id, payload)
	if err != nil {
		return err
	}
	_, err = conn.Write(frame)
	return err
}

// serveClient runs one client session: queries and info requests,
// each answered with the request's frame id so the client can
// correlate concurrent calls. Replies flow through a bounded channel
// drained by a writer goroutine, so a stalled client never blocks the
// protocol executor — it gets disconnected instead.
func (n *Node) serveClient(conn net.Conn) {
	n.clientMu.Lock()
	if n.clients == nil {
		n.clientMu.Unlock()
		closeConn(conn)
		return
	}
	n.clients[conn] = struct{}{}
	n.clientMu.Unlock()
	done := make(chan struct{})
	defer func() {
		close(done)
		n.clientMu.Lock()
		if n.clients != nil {
			delete(n.clients, conn)
		}
		n.clientMu.Unlock()
		closeConn(conn)
	}()
	out := make(chan []byte, 64)
	go func() {
		for {
			select {
			case frame := <-out:
				if _, err := conn.Write(frame); err != nil {
					closeConn(conn)
					return
				}
			case <-done:
				return
			}
		}
	}()
	reply := func(id uint64, kind byte, msg any) {
		payload, err := encodeMsg(kind, msg)
		if err != nil {
			return
		}
		frame, err := wire.AppendFrame(nil, id, payload)
		if err != nil {
			return
		}
		select {
		case out <- frame:
		default:
			closeConn(conn) // client too slow to read its own replies
		}
	}
	var buf []byte
	for {
		id, payload, next, err := wire.ReadFrame(conn, buf)
		if err != nil {
			return
		}
		buf = next
		kind, body, err := splitMsg(payload)
		if err != nil {
			return
		}
		switch kind {
		case kindClientQuery:
			var cq clientQueryMsg
			if decodeBody(body, &cq) != nil {
				return
			}
			reqID := id
			n.rt.Schedule(0, func() {
				n.startQuery(cq.QObj, cq.R, func(out QueryOutcome, err error) {
					msg := clientResultMsg{Complete: out.Complete, Dropped: out.Dropped, Entries: out.Entries}
					if err != nil {
						msg.Err = err.Error()
					}
					reply(reqID, kindClientResult, msg)
				})
			})
		case kindClientInfo:
			reqID := id
			n.rt.Schedule(0, func() {
				reply(reqID, kindClientInfoR, infoMsg{
					ID: n.id, Addr: n.addr, Members: n.snapshot(), Store: len(n.owned),
					Recovered: n.recovered, Replayed: n.replayed,
					Replicas: n.cfg.Replicas, Down: n.downMembers(),
					SyncedOwners: n.syncedOwners(), Extras: len(n.extras),
					Repairs:      n.repairsApplied.Load(),
					RepairChunks: n.repairChunksRx.Load(), RepairFallback: n.repairFallback.Load(),
				})
			})
		case kindClientPublish:
			var cm clientPublishMsg
			if decodeBody(body, &cm) != nil {
				return
			}
			reqID := id
			n.rt.Schedule(0, func() {
				n.startMutation(cm.ID, cm.Obj, false, func(err error) {
					var msg clientMutRMsg
					if err != nil {
						msg.Err = err.Error()
					}
					reply(reqID, kindClientMutR, msg)
				})
			})
		case kindClientDelete:
			var cm clientDeleteMsg
			if decodeBody(body, &cm) != nil {
				return
			}
			reqID := id
			n.rt.Schedule(0, func() {
				n.startMutation(cm.ID, cm.Obj, true, func(err error) {
					var msg clientMutRMsg
					if err != nil {
						msg.Err = err.Error()
					}
					reply(reqID, kindClientMutR, msg)
				})
			})
		default:
			return
		}
	}
}
