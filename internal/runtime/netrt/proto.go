package netrt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"landmarkdht/internal/query"
)

// Frame payloads are self-describing: one kind byte followed by the
// gob encoding of that kind's message struct. Unlike the simulation
// path — where delivery callbacks carry prebound local state and the
// wire bytes only prove the size model — a multi-process ring has no
// shared memory, so everything a handler needs travels in the frame.
const (
	// Peer frames (node ↔ node).
	kindHello    byte = 1 // dialer's handshake: identity + membership
	kindWelcome  byte = 2 // listener's handshake response
	kindReject   byte = 3 // handshake refusal (corpus signature mismatch)
	kindAnnounce byte = 4 // membership gossip
	kindQuery    byte = 5 // one subquery region with credit
	kindResult   byte = 6 // answered region: credit + entries, to origin
	kindDrop     byte = 7 // unanswerable region: credit back, to origin

	// Client frames (client ↔ node, correlated by frame id).
	kindClientHello   byte = 16
	kindClientWelcome byte = 17
	kindClientQuery   byte = 18
	kindClientResult  byte = 19
	kindClientInfo    byte = 20
	kindClientInfoR   byte = 21
)

// Member is one ring member: its node ID (a position on the key ring)
// and the TCP address its listener is reachable at.
type Member struct {
	ID   uint64
	Addr string
}

// helloMsg is both sides of the peer handshake (Hello and Welcome
// share the shape): identity, listen address, corpus signature, and a
// full membership snapshot. The signature pins the deterministic
// corpus parameters — two nodes built from different seeds would
// silently disagree on ownership and landmarks, so they refuse to
// link.
type helloMsg struct {
	From    uint64
	Addr    string
	Sig     uint64
	Members []Member
}

// announceMsg is the anti-entropy gossip payload: the sender's full
// membership view. Receivers merge; members are never evicted (a
// SIGKILLed process restarts with the same address and identity).
type announceMsg struct {
	Members []Member
}

// queryMsg carries one subquery region. Origin/OriginAddr let any
// answering node ship results straight back; Epoch identifies the
// origin's process incarnation — a restarted node reuses qids, so
// returns are routed by (Epoch, QID) and frames queued for a dead
// incarnation cannot corrupt its successor's queries; Credit
// implements distributed termination (the origin's initial credit is
// split across every forward, and Complete means every share came home
// via Result frames with none via Drop); QObj is the metric-specific
// encoding of the query object so answering nodes refine candidates by
// exact distance; TTL bounds forwarding under membership-view
// disagreement.
type queryMsg struct {
	Origin     uint64
	OriginAddr string
	Epoch      uint64
	QID        uint64
	Credit     uint64
	Region     query.Region
	QObj       []byte
	R          float64
	TTL        int
}

// ResultEntry is one matching object: its corpus index and exact
// metric distance to the query.
type ResultEntry struct {
	Obj  int32
	Dist float64
}

// resultMsg returns one answered region's credit share and entries to
// the query origin. Epoch echoes the queryMsg's origin incarnation.
type resultMsg struct {
	Epoch   uint64
	QID     uint64
	Credit  uint64
	From    uint64
	Entries []ResultEntry
}

// dropMsg returns a region's credit share without an answer: the
// query can still terminate, but not Complete. Epoch echoes the
// queryMsg's origin incarnation.
type dropMsg struct {
	Epoch  uint64
	QID    uint64
	Credit uint64
	From   uint64
	Reason string
}

// clientWelcomeMsg answers a client handshake.
type clientWelcomeMsg struct {
	ID   uint64
	Addr string
}

// clientQueryMsg asks the node to run one range query.
type clientQueryMsg struct {
	QObj []byte
	R    float64
}

// clientResultMsg is a finished query: Complete ⇒ Entries is the exact
// range-query answer; otherwise it is an honest subset and Dropped
// counts the regions lost for good.
type clientResultMsg struct {
	Complete bool
	Dropped  int
	Err      string
	Entries  []ResultEntry
}

// infoMsg answers a client info request: the node's identity, view of
// the ring, how much of the corpus it currently owns, and whether its
// corpus was recovered from durable state. (Gob tolerates unknown
// fields, so adding fields here stays wire-compatible across mixed
// versions.)
type infoMsg struct {
	ID        uint64
	Addr      string
	Members   []Member
	Store     int
	Recovered bool
	Replayed  int
}

// encodeMsg builds a frame payload: kind byte + gob body.
func encodeMsg(kind byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(kind)
	if v != nil {
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return nil, fmt.Errorf("netrt: encode kind %d: %w", kind, err)
		}
	}
	return buf.Bytes(), nil
}

// splitMsg separates a frame payload into kind and body.
func splitMsg(payload []byte) (kind byte, body []byte, err error) {
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("netrt: empty frame payload")
	}
	return payload[0], payload[1:], nil
}

// decodeBody parses a gob body into v.
func decodeBody(body []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}
