package netrt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"landmarkdht/internal/query"
)

// Frame payloads are self-describing: one kind byte followed by the
// gob encoding of that kind's message struct. Unlike the simulation
// path — where delivery callbacks carry prebound local state and the
// wire bytes only prove the size model — a multi-process ring has no
// shared memory, so everything a handler needs travels in the frame.
const (
	// Peer frames (node ↔ node).
	kindHello    byte = 1 // dialer's handshake: identity + membership
	kindWelcome  byte = 2 // listener's handshake response
	kindReject   byte = 3 // handshake refusal (corpus signature mismatch)
	kindAnnounce byte = 4 // membership gossip
	kindQuery    byte = 5 // one subquery region with credit
	kindResult   byte = 6 // answered region: credit + entries, to origin
	kindDrop     byte = 7 // unanswerable region: credit back, to origin

	// Failure detection and replication (node ↔ node). The Rep* stream
	// frames carry fixed binary payloads (internal/wire's region
	// transfer codecs), not gob: they are decoded synchronously on the
	// reader so a hostile or truncated stream surfaces as a typed
	// wire.FrameError and drops the link before anything is scheduled.
	kindPing      byte = 8  // heartbeat probe
	kindPong      byte = 9  // heartbeat answer
	kindRepBegin  byte = 10 // replica stream header (gob repBeginMsg)
	kindRepChunk  byte = 11 // one stream chunk (binary wire.RegionChunk)
	kindRepAck    byte = 12 // chunk acknowledgement (binary wire.RegionAck)
	kindRepDigest byte = 13 // anti-entropy digest (binary wire.RegionDigest)
	kindPublish   byte = 14 // online mutation routed to its owner (gob pubMsg)
	kindPubAck    byte = 15 // mutation outcome back to its origin (gob pubAckMsg)

	// Client frames (client ↔ node, correlated by frame id).
	kindClientHello   byte = 16
	kindClientWelcome byte = 17
	kindClientQuery   byte = 18
	kindClientResult  byte = 19
	kindClientInfo    byte = 20
	kindClientInfoR   byte = 21
	kindClientPublish byte = 22
	kindClientDelete  byte = 23
	kindClientMutR    byte = 24
)

// Member is one ring member: its node ID (a position on the key ring)
// and the TCP address its listener is reachable at.
type Member struct {
	ID   uint64
	Addr string
}

// helloMsg is both sides of the peer handshake (Hello and Welcome
// share the shape): identity, listen address, corpus signature, and a
// full membership snapshot. The signature pins the deterministic
// corpus parameters — two nodes built from different seeds would
// silently disagree on ownership and landmarks, so they refuse to
// link.
type helloMsg struct {
	From    uint64
	Addr    string
	Sig     uint64
	Members []Member
}

// announceMsg is the anti-entropy gossip payload: the sender's full
// membership view. Receivers merge; members are never evicted (a
// SIGKILLed process restarts with the same address and identity).
type announceMsg struct {
	Members []Member
}

// queryMsg carries one subquery region. Origin/OriginAddr let any
// answering node ship results straight back; Epoch identifies the
// origin's process incarnation — a restarted node reuses qids, so
// returns are routed by (Epoch, QID) and frames queued for a dead
// incarnation cannot corrupt its successor's queries; Credit
// implements distributed termination (the origin's initial credit is
// split across every forward, and Complete means every share came home
// via Result frames with none via Drop); QObj is the metric-specific
// encoding of the query object so answering nodes refine candidates by
// exact distance; TTL bounds forwarding under membership-view
// disagreement.
type queryMsg struct {
	Origin     uint64
	OriginAddr string
	Epoch      uint64
	QID        uint64
	Credit     uint64
	Region     query.Region
	QObj       []byte
	R          float64
	TTL        int
}

// ResultEntry is one matching object: its corpus index and exact
// metric distance to the query.
type ResultEntry struct {
	Obj  int32
	Dist float64
}

// resultMsg returns one answered region's credit share and entries to
// the query origin. Epoch echoes the queryMsg's origin incarnation.
type resultMsg struct {
	Epoch   uint64
	QID     uint64
	Credit  uint64
	From    uint64
	Entries []ResultEntry
}

// dropMsg returns a region's credit share without an answer: the
// query can still terminate, but not Complete. Epoch echoes the
// queryMsg's origin incarnation.
type dropMsg struct {
	Epoch  uint64
	QID    uint64
	Credit uint64
	From   uint64
	Reason string
}

// pingMsg probes a member's liveness; pongMsg answers it. Seq pairs an
// answer with its probe so a late pong cannot revive a member the
// detector has since re-suspected.
type pingMsg struct {
	From uint64
	Seq  uint64
}

type pongMsg struct {
	From uint64
	Seq  uint64
}

// repBeginMsg opens one replica stream: the owner's region follows as
// Chunks sequenced RegionChunk frames whose reassembled payload decodes
// to Entries entries combining to Digest. The receiver installs the
// copy only when both match — a divergent or torn stream is discarded
// and re-requested by the next anti-entropy exchange.
type repBeginMsg struct {
	Owner    uint64
	Transfer uint64
	Chunks   int
	Entries  int
	Digest   uint64
}

// pubMsg routes one online mutation (publish or delete) to the owner
// of its ring key, exactly as queries route regions. Replica marks the
// owner's fan-out copy to its replica set (applied to the local copy
// of Owner's region, never re-routed, never acked). (Epoch, RID)
// route the ack back to the origin's process incarnation.
type pubMsg struct {
	Origin     uint64
	OriginAddr string
	Epoch      uint64
	RID        uint64
	ID         int32
	Obj        []byte
	Key        uint64
	Delete     bool
	Replica    bool
	Owner      uint64
	TTL        int
}

// pubAckMsg reports one mutation's outcome to its origin.
type pubAckMsg struct {
	Epoch uint64
	RID   uint64
	Err   string
}

// clientWelcomeMsg answers a client handshake.
type clientWelcomeMsg struct {
	ID   uint64
	Addr string
}

// clientQueryMsg asks the node to run one range query.
type clientQueryMsg struct {
	QObj []byte
	R    float64
}

// clientResultMsg is a finished query: Complete ⇒ Entries is the exact
// range-query answer; otherwise it is an honest subset and Dropped
// counts the regions lost for good.
type clientResultMsg struct {
	Complete bool
	Dropped  int
	Err      string
	Entries  []ResultEntry
}

// clientPublishMsg asks the node to publish one object under id (which
// must not collide with the deterministic corpus); clientDeleteMsg
// removes one entry — by id alone for corpus entries, or with the
// object bytes for published ids (the bytes re-derive the ring key the
// delete routes by). Both are answered with a clientMutRMsg.
type clientPublishMsg struct {
	ID  int32
	Obj []byte
}

type clientDeleteMsg struct {
	ID  int32
	Obj []byte
}

// clientMutRMsg is a finished mutation: empty Err means the owner
// applied and journaled it.
type clientMutRMsg struct {
	Err string
}

// infoMsg answers a client info request: the node's identity, view of
// the ring, how much of the corpus it currently owns, and whether its
// corpus was recovered from durable state. (Gob tolerates unknown
// fields, so adding fields here stays wire-compatible across mixed
// versions.)
type infoMsg struct {
	ID        uint64
	Addr      string
	Members   []Member
	Store     int
	Recovered bool
	Replayed  int

	// Replication and failure-detection state (PR 10): the configured
	// replication factor, members this node's detector currently marks
	// down, how many owners' regions this node holds synced copies of,
	// live published entries, and the repair counters (bulk streams
	// applied, chunks received, point-wise fallbacks — always zero, the
	// soak asserts repairs ride the bulk path).
	Replicas       int
	Down           []uint64
	SyncedOwners   int
	Extras         int
	Repairs        int64
	RepairChunks   int64
	RepairFallback int64
}

// encodeMsg builds a frame payload: kind byte + gob body.
func encodeMsg(kind byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(kind)
	if v != nil {
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return nil, fmt.Errorf("netrt: encode kind %d: %w", kind, err)
		}
	}
	return buf.Bytes(), nil
}

// encodeRaw builds a frame payload whose body is already binary (the
// wire region-transfer codecs): kind byte + body, no gob.
func encodeRaw(kind byte, body []byte) []byte {
	out := make([]byte, 0, 1+len(body))
	out = append(out, kind)
	return append(out, body...)
}

// splitMsg separates a frame payload into kind and body.
func splitMsg(payload []byte) (kind byte, body []byte, err error) {
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("netrt: empty frame payload")
	}
	return payload[0], payload[1:], nil
}

// decodeBody parses a gob body into v.
func decodeBody(body []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}
