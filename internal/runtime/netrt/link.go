package netrt

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"landmarkdht/internal/runtime"
	"landmarkdht/internal/wire"
)

// Link-layer tuning. Backoff is exponential with multiplicative jitter
// drawn from the link's seeded source: attempt n sleeps
// backoffBase·2ⁿ (capped at backoffCap), scaled by a uniform factor in
// [0.5, 1.5).
const (
	backoffBase      = 50 * time.Millisecond
	backoffCap       = 2 * time.Second
	dialTimeout      = 2 * time.Second
	handshakeTimeout = 3 * time.Second
	// defaultMaxQueue bounds a link's outbound frame queue. A full
	// queue sheds the newest frame (counted, never blocking the
	// protocol executor); the query layer's credit accounting turns the
	// loss into an honest incomplete result.
	defaultMaxQueue = 256
)

// linkHost is what a link needs from its owning node. It is an
// interface so the link layer is testable against a bare harness.
type linkHost interface {
	// selfID is the host's own node ID (the connection tie-break
	// compares dialer IDs).
	selfID() uint64
	// dialPeer dials addr and completes the peer handshake, returning
	// the connection and the remote's node ID.
	dialPeer(addr string) (net.Conn, uint64, error)
	// handleFrame processes one decoded peer frame. body is only valid
	// for the duration of the call (the reader reuses its buffer) —
	// hosts that defer work copy it first. A non-nil error proves the
	// peer hostile (typed wire.FrameError on the binary replication
	// frames) and drops the link.
	handleFrame(peer uint64, kind byte, body []byte) error
	// nextFrameID returns a fresh frame id.
	nextFrameID() uint64
	// linkFaults builds the transport-fault hook for a peer's reader
	// (nil to inject nothing).
	linkFaults(peer uint64) *runtime.LinkFaults
	// linkSeed seeds a link's backoff-jitter source.
	linkSeed(addr string) int64
	// countFault records an injected transport fault ("drop"/"kill").
	countFault(kind string)
	// maxQueue is the outbound queue bound (0 = defaultMaxQueue).
	maxQueue() int
}

// link owns all traffic to one peer address: a bounded outbound queue,
// the single active connection for the peer pair, and the writer
// goroutine that dials on demand and reconnects with seeded backoff.
//
// Lifecycle: idle (no conn, empty queue) → dialing (queue non-empty,
// no conn; exponential backoff between attempts) → connected (writer
// drains the queue; a reader goroutine serves inbound frames) → back
// to dialing on connection loss with frames still queued, or to idle.
// An inbound connection attaches directly, skipping the dial; when
// both sides hold a connection for the same pair, the one dialed by
// the smaller node ID wins on both sides.
type link struct {
	host linkHost
	addr string

	mu         sync.Mutex
	cond       *sync.Cond
	queue      [][]byte // encoded frame payloads awaiting write
	conn       net.Conn // single active connection, nil while down
	connDialer uint64   // node ID of the side that dialed conn
	peer       uint64   // remote node ID (valid while conn != nil)
	closed     bool
	done       chan struct{}

	shed    atomic.Int64 // frames shed by the full queue
	redials atomic.Int64 // failed dial attempts
	sent    atomic.Int64 // frames written

	rng *rand.Rand // backoff jitter; writer goroutine only
}

func newLink(host linkHost, addr string) *link {
	l := &link{
		host: host,
		addr: addr,
		done: make(chan struct{}),
		rng:  rand.New(rand.NewSource(host.linkSeed(addr))),
	}
	l.cond = sync.NewCond(&l.mu)
	go l.writer()
	return l
}

// enqueue hands one encoded frame payload to the link. It never
// blocks: a full queue sheds the frame and counts it.
func (l *link) enqueue(payload []byte) {
	max := l.host.maxQueue()
	if max <= 0 {
		max = defaultMaxQueue
	}
	l.mu.Lock() //lint:allow execblock bounded critical section: the queue mutex; holders only append/pop and signal (lockheld-checked)
	if l.closed {
		l.mu.Unlock()
		return
	}
	if len(l.queue) >= max {
		l.mu.Unlock()
		l.shed.Add(1)
		return
	}
	l.queue = append(l.queue, payload)
	l.cond.Signal()
	l.mu.Unlock()
}

// writer is the link's only goroutine with dial/write rights. Frames
// are popped from the queue immediately before the write, and never
// re-queued on failure — a queued frame is delivered at most once,
// even across reconnects.
func (l *link) writer() {
	attempt := 0
	var frame []byte
	for {
		l.mu.Lock()
		for !l.closed && len(l.queue) == 0 {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		if l.conn == nil {
			l.mu.Unlock()
			conn, peer, err := l.host.dialPeer(l.addr)
			if err != nil {
				l.redials.Add(1)
				attempt++
				if !l.sleepBackoff(attempt) {
					return // closed mid-backoff
				}
				continue
			}
			attempt = 0
			l.attach(conn, peer, l.host.selfID())
			continue
		}
		conn := l.conn
		payload := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		var err error
		frame, err = wire.AppendFrame(frame[:0], l.host.nextFrameID(), payload)
		if err != nil {
			continue // oversized local frame: shed it, keep the link
		}
		if _, err := conn.Write(frame); err != nil {
			// The frame is lost with the connection; the next loop
			// iteration redials if frames remain.
			l.detach(conn)
			continue
		}
		l.sent.Add(1)
	}
}

// sleepBackoff sleeps the seeded exponential backoff for the given
// attempt, returning false if the link closed while sleeping.
func (l *link) sleepBackoff(attempt int) bool {
	select {
	case <-l.done:
		return false
	case <-time.After(backoffDelay(attempt, l.rng)):
		return true
	}
}

// backoffDelay computes attempt n's reconnect delay:
// min(backoffBase·2ⁿ⁻¹, backoffCap) · uniform[0.5, 1.5).
func backoffDelay(attempt int, rng *rand.Rand) time.Duration {
	d := backoffBase
	for i := 1; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// attach installs a connection as the pair's single active link and
// starts its reader. dialer is the node ID of the side that dialed the
// connection (the host's own ID for outbound dials, the peer's for
// accepted ones). When a connection is already active for the pair,
// the one dialed by the strictly smaller node ID wins; both sides
// apply the same rule, so after a simultaneous dial both keep the same
// connection. A tie (same dialer — a duplicate) keeps the existing
// connection.
func (l *link) attach(conn net.Conn, peer uint64, dialer uint64) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		closeConn(conn)
		return
	}
	var old net.Conn
	if l.conn != nil {
		if dialer >= l.connDialer {
			l.mu.Unlock()
			closeConn(conn)
			return
		}
		old = l.conn
		l.conn = nil
	}
	l.conn = conn
	l.peer = peer
	l.connDialer = dialer
	l.cond.Signal()
	l.mu.Unlock()
	if old != nil {
		// Closed outside l.mu: Close can block on teardown, and the
		// loser's reader dies into detach, which needs the same lock.
		closeConn(old)
	}
	go l.readLoop(conn, peer)
}

// detach tears down conn if it is still the active connection; the
// writer redials on demand. Safe against stale connections.
func (l *link) detach(conn net.Conn) {
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
		l.cond.Signal()
	}
	l.mu.Unlock()
	closeConn(conn)
}

// readLoop consumes frames off one connection until it dies or a
// decoding error proves the peer hostile (typed wire.FrameError —
// the link drops, never OOMs). Transport faults (frame drop,
// connection kill) draw from the shared runtime.LinkFaults path.
func (l *link) readLoop(conn net.Conn, peer uint64) {
	faults := l.host.linkFaults(peer)
	var buf []byte
	for {
		_, payload, next, err := wire.ReadFrame(conn, buf)
		if err != nil {
			l.detach(conn)
			return
		}
		buf = next
		if faults.DropFrame() {
			l.host.countFault("drop")
			continue
		}
		kind, body, err := splitMsg(payload)
		if err != nil {
			l.detach(conn)
			return
		}
		if err := l.host.handleFrame(peer, kind, body); err != nil {
			// A hostile or corrupt stream: drop the link, never panic.
			l.detach(conn)
			return
		}
		if faults.KillConn() {
			l.host.countFault("kill")
			l.detach(conn)
			return
		}
	}
}

// stats snapshots the link counters.
func (l *link) stats() (queued int, shed, redials, sent int64) {
	l.mu.Lock()
	queued = len(l.queue)
	l.mu.Unlock()
	return queued, l.shed.Load(), l.redials.Load(), l.sent.Load()
}

// connected reports whether the link currently holds a connection.
func (l *link) connected() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn != nil
}

// close shuts the link down: the writer exits, the active connection
// (and its reader) die, queued frames are discarded.
func (l *link) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	conn := l.conn
	l.conn = nil
	l.queue = nil
	close(l.done)
	l.cond.Broadcast()
	l.mu.Unlock()
	if conn != nil {
		closeConn(conn)
	}
}

// dialHandshake runs the dialer side of the peer handshake on conn:
// send Hello, await Welcome, verify the corpus signature. Used by the
// node's dialPeer and by test harnesses.
func dialHandshake(conn net.Conn, self Member, sig uint64, members []Member) (*helloMsg, error) {
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return nil, err
	}
	hello, err := encodeMsg(kindHello, helloMsg{From: self.ID, Addr: self.Addr, Sig: sig, Members: members})
	if err != nil {
		return nil, err
	}
	frame, err := wire.AppendFrame(nil, 1, hello)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(frame); err != nil {
		return nil, err
	}
	_, payload, _, err := wire.ReadFrame(conn, nil)
	if err != nil {
		return nil, fmt.Errorf("netrt: handshake read: %w", err)
	}
	kind, body, err := splitMsg(payload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindWelcome:
	case kindReject:
		return nil, fmt.Errorf("netrt: peer %s rejected handshake (corpus signature mismatch)", conn.RemoteAddr())
	default:
		return nil, fmt.Errorf("netrt: unexpected handshake frame kind %d", kind)
	}
	var w helloMsg
	if err := decodeBody(body, &w); err != nil {
		return nil, err
	}
	if w.Sig != sig {
		return nil, fmt.Errorf("netrt: corpus signature mismatch with %s", conn.RemoteAddr())
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return &w, nil
}
