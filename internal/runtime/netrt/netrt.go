// Package netrt deploys the landmark index as real OS processes: each
// node is a TCP listener plus a set of reconnecting peer links, and a
// ring is N processes bootstrapping over localhost (or any network).
//
// # Relationship to the other runtimes
//
// The simulated runtime (runtime/simrt) and the live runtime
// (runtime/livert) both execute the protocol in one address space,
// where delivery callbacks carry prebound local state across "nodes".
// A multi-process ring has no shared memory, so netrt speaks a fully
// self-describing frame protocol over the existing internal/wire
// [id|len|payload] framing: membership handshake and gossip, the
// paper's surrogate-refinement query decomposition (Algorithm 5), and
// credit-based completion accounting replace the in-process token
// bookkeeping. The livert executor is reused verbatim as each node's
// single-threaded protocol goroutine, clock, and seeded random source;
// its net.Pipe transport machinery is simply unused.
//
// # Link layer
//
// Traffic to a peer goes through a link (see link.go): dial-on-demand,
// a single active connection per peer pair (smaller-dialer-ID wins),
// automatic reconnect with seeded exponential backoff + jitter, and a
// bounded outbound queue that sheds (and counts) rather than ever
// blocking the protocol executor. Queued frames survive reconnects and
// are delivered at most once. Reader goroutines decode frames and post
// them to the executor; a hostile or corrupt stream (typed
// wire.FrameError) drops the link.
//
// # Data and membership
//
// Every process holds the same deterministic corpus (DataConfig; the
// handshake's corpus signature refuses to link disagreeing nodes) and
// stores exactly the entries it owns under the current membership view
// — the successor of each entry's ring key. Without Config.DataDir the
// corpus is rebuilt from the seed at startup; with it, first boot
// journals the corpus to disk and every later boot recovers it from
// the WAL with zero regeneration (durable.go).
// Membership is a full member list, learned at handshake, spread by
// join announcements and periodic gossip; members are never evicted,
// so a SIGKILLed process that restarts with the same address (same
// node ID) reconnects and resumes ownership with no protocol change.
//
// # Queries and completeness
//
// A query starts with the full index-space region and a credit of
// 2⁶². Each node forwards region shards to their owners (splitting the
// credit so shares always sum exactly), answers its own shard from its
// local store with exact-distance refinement, and returns credit via
// Result frames — or Drop frames when a shard is unanswerable (TTL
// exhausted, malformed query). The origin completes when all credit is
// home; Complete means none of it came back as Drop and the deadline
// did not expire, and a Complete answer is exact: under a consistent
// view the shard decomposition covers the region exactly once, and
// duplicate coverage under view skew is removed by merging results per
// object. Anything less is an honest subset.
package netrt

import (
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"landmarkdht/internal/core"
	"landmarkdht/internal/runtime"
	"landmarkdht/internal/runtime/livert"
	"landmarkdht/internal/wal"
	"landmarkdht/internal/wire"
)

// Config parameterizes one ring node.
type Config struct {
	// Listen is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// port). The node's identity is derived from the bound address, so
	// restarting with the same explicit address resumes the same ring
	// position.
	Listen string
	// Join lists peer addresses to bootstrap from (empty for the first
	// node of a ring).
	Join []string
	// Data pins the deterministic corpus (must match across the ring).
	Data DataConfig
	// DataDir, when set, makes node state durable: the corpus (landmark
	// objects, entries, keys, points) is journaled to this directory on
	// first boot, and a restart on the same address restores it from
	// disk instead of regenerating it. Each node needs its own
	// directory. A directory built for a different Data config is a
	// startup error, never a silent rebuild.
	DataDir string
	// Deadline bounds a query: when it expires before all credit is
	// home, the query finishes incomplete (default 5s).
	Deadline time.Duration
	// TTL bounds per-subquery forwarding under membership-view
	// disagreement (default 48).
	TTL int
	// GossipPeriod is the anti-entropy interval (default 500ms).
	GossipPeriod time.Duration
	// Replicas is the replication factor: every member streams a full
	// copy of its owned region to this many ring successors (via the
	// bulk region-transfer frames), and queries for a down owner are
	// answered from a synced copy so they stay complete and exact while
	// the owner is dead. 0 (the default) disables replication; the
	// failure detector still runs.
	Replicas int
	// HeartbeatPeriod is the failure-detector probe interval (default
	// 250ms).
	HeartbeatPeriod time.Duration
	// SuspectAfter is how many consecutive unanswered heartbeat probes
	// mark a member down (default 4). Suspicion halves on every answered
	// probe and a down member comes back as soon as it answers again —
	// never a permanent blacklist, matching the link layer's reconnect
	// policy.
	SuspectAfter int
	// AntiEntropyPeriod is the owner↔replica digest-exchange interval
	// (default 1s). Divergence detected by an exchange schedules a bulk
	// re-stream of the owner's region.
	AntiEntropyPeriod time.Duration
	// Faults injects transport-level failures into peer links through
	// the shared runtime.LinkFaults path, exactly as on livert.
	Faults *runtime.FaultPolicy
	// MaxQueue bounds each link's outbound queue (default 256).
	MaxQueue int
	// Logf, when set, receives one line per membership and link event.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	c.Data.fillDefaults()
	if c.Deadline <= 0 {
		c.Deadline = 5 * time.Second
	}
	if c.TTL <= 0 {
		c.TTL = 48
	}
	if c.GossipPeriod <= 0 {
		c.GossipPeriod = 500 * time.Millisecond
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 250 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 4
	}
	if c.AntiEntropyPeriod <= 0 {
		c.AntiEntropyPeriod = time.Second
	}
}

// Node is one ring member: a listener, its peer links, the owned slice
// of the deterministic corpus, and the origin-side state of queries it
// is running for clients.
type Node struct {
	cfg   Config
	id    uint64
	addr  string
	sig   uint64
	epoch uint64 // process incarnation, stamps this node's queries
	data  corpus

	// Durable-state provenance, fixed at Start.
	recovered bool // corpus came off disk, not regenerated
	replayed  int  // durable records read during recovery

	rt *livert.Runtime // protocol executor, clock, seeded rand
	ln net.Listener

	// Executor-owned state (only touched on rt's protocol goroutine).
	members   map[uint64]string
	ring      []uint64 // sorted member IDs
	owned     []int    // corpus indices this node owns under members
	queries   map[uint64]*originQuery
	nextQID   uint64
	gossip    *runtime.Ticker
	announceB []byte // scratch: encoded announce payload

	// Replication and failure detection (executor-owned; see failure.go,
	// replica.go, publish.go).
	hb          map[uint64]*hbState // heartbeat state per known member
	heartbeat   *runtime.Ticker
	antiEntropy *runtime.Ticker
	entryDig    []uint64                // per-boot-entry digest, fixed at Start
	mineDigest  uint64                  // digest of the live owned region (∖tombs ∪ extras)
	mineCount   int                     // live entries in the owned region
	tombs       map[int32]struct{}      // deleted boot-corpus entries
	extras      map[int32]repEntry      // published entries owned here
	copies      map[uint64]*replicaCopy // replica copies held here, by owner
	pushes      map[uint64]*repPush     // outbound replica streams, by target
	pushByXfer  map[uint64]*repPush     // the same streams, by transfer id
	staging     map[uint64]*repStage    // inbound replica streams, by transfer id
	stageOwner  map[uint64]uint64       // owner → transfer id of its in-flight stage
	nextXfer    uint64
	nextRID     uint64
	pubs        map[uint64]*pendingPub // in-flight mutations originated here, by rid

	store *wal.Store // durable journal; nil without Config.DataDir

	// memberSnap mirrors the membership for non-executor contexts
	// (handshakes); it holds a []Member sorted by ID.
	memberSnap atomic.Value

	linkMu sync.Mutex
	links  map[string]*link

	clientMu sync.Mutex
	clients  map[net.Conn]struct{}

	frameID       atomic.Uint64
	framesDropped atomic.Int64
	connsKilled   atomic.Int64

	repairsApplied atomic.Int64 // bulk replica streams installed here
	repairChunksRx atomic.Int64 // chunks received on installed streams
	repairsSent    atomic.Int64 // bulk streams fully acked as the sender
	repairFallback atomic.Int64 // point-wise repairs (no such path exists; stays 0)

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NodeID derives a node's ring identity from its bound listen address.
// Deterministic, so a restarted process resumes its ring position.
func NodeID(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return h.Sum64()
}

// Start builds (or, with DataDir, recovers) the corpus, binds the
// listener, joins the ring, and returns the running node.
func Start(cfg Config) (*Node, error) {
	cfg.fillDefaults()
	var (
		data      corpus
		store     *wal.Store
		recovered bool
		replayed  int
		muts      []durableMut
		err       error
	)
	if cfg.DataDir != "" {
		data, store, recovered, replayed, muts, err = openDurable(cfg.DataDir, cfg.Data)
	} else {
		data, err = buildCorpus(cfg.Data)
	}
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		if store != nil {
			_ = store.Close() // startup already failing; the listen error is the signal
		}
		return nil, err
	}
	n := &Node{
		cfg:  cfg,
		addr: ln.Addr().String(),
		sig:  data.Sig(),
		// A restarted process has the same identity and restarts its
		// qid counter, so returns are routed by (epoch, qid): frames
		// queued for a dead incarnation cannot leak into this one.
		epoch:      uint64(time.Now().UnixNano()),
		data:       data,
		recovered:  recovered,
		replayed:   replayed,
		ln:         ln,
		members:    make(map[uint64]string),
		queries:    make(map[uint64]*originQuery),
		links:      make(map[string]*link),
		clients:    make(map[net.Conn]struct{}),
		hb:         make(map[uint64]*hbState),
		tombs:      make(map[int32]struct{}),
		extras:     make(map[int32]repEntry),
		copies:     make(map[uint64]*replicaCopy),
		pushes:     make(map[uint64]*repPush),
		pushByXfer: make(map[uint64]*repPush),
		staging:    make(map[uint64]*repStage),
		stageOwner: make(map[uint64]uint64),
		pubs:       make(map[uint64]*pendingPub),
		store:      store,
	}
	n.id = NodeID(n.addr)
	// Per-entry digests are fixed for the node's lifetime: the live
	// region's digest is maintained incrementally by XORing them in and
	// out as ownership and mutations change (see core's digest docs).
	n.entryDig = make([]uint64, data.N())
	for i := range n.entryDig {
		n.entryDig[i] = core.EntryDigest(data.Key(i),
			core.Entry{Obj: core.ObjectID(i), Point: data.Point(i)}, data.ObjBytes(i))
	}
	n.rt = livert.New(livert.Config{Seed: cfg.Data.Seed ^ int64(n.id)})
	if err := n.rt.Do(func() {
		// Replay journaled online mutations before the first view build
		// so rebuildView folds them into the region digest.
		for _, m := range muts {
			n.applyRecovered(m)
		}
		n.addMember(n.id, n.addr)
		n.gossip = runtime.NewTicker(n.rt,
			time.Duration(n.rt.Rand().Int63n(int64(cfg.GossipPeriod))),
			cfg.GossipPeriod, n.gossipTick)
		n.heartbeat = runtime.NewTicker(n.rt,
			time.Duration(n.rt.Rand().Int63n(int64(cfg.HeartbeatPeriod))),
			cfg.HeartbeatPeriod, n.heartbeatTick)
		n.antiEntropy = runtime.NewTicker(n.rt,
			time.Duration(n.rt.Rand().Int63n(int64(cfg.AntiEntropyPeriod))),
			cfg.AntiEntropyPeriod, n.antiEntropyTick)
	}); err != nil {
		_ = ln.Close() //lint:allow errdrop best-effort teardown of a listener the node never used
		if store != nil {
			_ = store.Close() // startup already failing; the executor error is the signal
		}
		return nil, err
	}
	n.wg.Add(1)
	go n.acceptLoop()
	for _, j := range cfg.Join {
		if j != "" && j != n.addr {
			// Queue an announce on the bootstrap link: the dial-on-
			// demand handshake exchanges full membership both ways.
			n.sendTo(j, kindAnnounce, announceMsg{Members: n.snapshot()})
		}
	}
	return n, nil
}

// ID returns the node's ring identity.
func (n *Node) ID() uint64 { return n.id }

// Recovered reports whether the node's corpus was restored from its
// data directory (true only after a restart with DataDir set; the
// first boot builds and persists, it does not recover).
func (n *Node) Recovered() bool { return n.recovered }

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.addr }

// Close shuts the node down: listener, client connections, links, and
// the protocol executor.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	_ = n.ln.Close() //lint:allow errdrop listener teardown at shutdown; nothing observes the error
	// Snapshot the client set under the lock, close outside it: a
	// session's own teardown path takes clientMu to deregister, and
	// Close on a TCP conn can wait on linger.
	n.clientMu.Lock()
	conns := make([]net.Conn, 0, len(n.clients))
	for c := range n.clients {
		conns = append(conns, c)
	}
	n.clients = nil
	n.clientMu.Unlock()
	for _, c := range conns {
		closeConn(c)
	}
	n.linkMu.Lock()
	links := n.links
	n.links = map[string]*link{}
	n.linkMu.Unlock()
	for _, l := range links {
		l.close()
	}
	_ = n.rt.Do(func() {
		if n.gossip != nil {
			n.gossip.Stop()
		}
		if n.heartbeat != nil {
			n.heartbeat.Stop()
		}
		if n.antiEntropy != nil {
			n.antiEntropy.Stop()
		}
		for _, p := range n.pushes {
			if p.timer != nil {
				p.timer.Stop()
			}
		}
		for rid, pp := range n.pubs {
			pp.timer.Stop()
			delete(n.pubs, rid)
			pp.done(ErrNodeClosed)
		}
		for qid, oq := range n.queries {
			oq.deadline.Stop()
			delete(n.queries, qid)
			oq.done(QueryOutcome{}, ErrNodeClosed)
		}
	})
	n.rt.Close()
	if n.store != nil {
		_ = n.store.Close() // shutdown teardown; the journal synced on every append interval
	}
	n.wg.Wait()
}

// ErrNodeClosed reports a query cut short by node shutdown.
var ErrNodeClosed = fmt.Errorf("netrt: node closed")

// logf emits one diagnostic line when the config asks for them.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// ---- linkHost implementation ----

func (n *Node) selfID() uint64 { return n.id }

func (n *Node) nextFrameID() uint64 { return n.frameID.Add(1) }

func (n *Node) linkFaults(peer uint64) *runtime.LinkFaults {
	return runtime.NewLinkFaults(n.cfg.Faults, peer)
}

func (n *Node) linkSeed(addr string) int64 {
	return n.cfg.Data.Seed ^ int64(NodeID(addr))
}

func (n *Node) countFault(kind string) {
	if kind == "drop" {
		n.framesDropped.Add(1)
	} else {
		n.connsKilled.Add(1)
	}
}

func (n *Node) maxQueue() int { return n.cfg.MaxQueue }

// dialPeer dials a peer and completes the handshake; membership learned
// from the Welcome merges on the executor.
func (n *Node) dialPeer(addr string) (net.Conn, uint64, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, 0, err
	}
	w, err := dialHandshake(conn, Member{ID: n.id, Addr: n.addr}, n.sig, n.snapshot())
	if err != nil {
		closeConn(conn)
		return nil, 0, err
	}
	members := w.Members
	n.rt.Schedule(0, func() {
		n.addMember(w.From, w.Addr)
		n.mergeMembers(members)
	})
	n.logf("link up to %s (node %016x, dialed)", addr, w.From)
	return conn, w.From, nil
}

// handleFrame routes one peer frame onto the executor. The binary
// replication frames are decoded synchronously — a hostile or truncated
// stream surfaces as a typed wire.FrameError here and the reader drops
// the link before anything is scheduled (the decoded structs own their
// memory, so the reader's buffer reuse is safe). Gob frames are copied
// and decoded on the executor as before; a gob that fails to decode is
// ignored rather than fatal (gob tolerates unknown fields, so a decode
// failure is a damaged frame, not necessarily a hostile peer).
func (n *Node) handleFrame(peer uint64, kind byte, body []byte) error {
	switch kind {
	case kindRepChunk:
		c, err := wire.DecodeChunk(body)
		if err != nil {
			return err
		}
		n.rt.Schedule(0, func() { n.onRepChunk(peer, c) })
		return nil
	case kindRepAck:
		a, err := wire.DecodeAck(body)
		if err != nil {
			return err
		}
		n.rt.Schedule(0, func() { n.onRepAck(a) })
		return nil
	case kindRepDigest:
		d, err := wire.DecodeDigest(body)
		if err != nil {
			return err
		}
		n.rt.Schedule(0, func() { n.onRepDigest(peer, d) })
		return nil
	}
	cp := append([]byte(nil), body...)
	n.rt.Schedule(0, func() {
		switch kind {
		case kindAnnounce:
			var a announceMsg
			if decodeBody(cp, &a) == nil {
				n.mergeMembers(a.Members)
			}
		case kindQuery:
			var q queryMsg
			if decodeBody(cp, &q) == nil {
				n.process(&q)
			}
		case kindResult:
			var res resultMsg
			if decodeBody(cp, &res) == nil {
				n.onReturn(res.Epoch, res.QID, res.Credit, res.Entries, false)
			}
		case kindDrop:
			var d dropMsg
			if decodeBody(cp, &d) == nil {
				n.onReturn(d.Epoch, d.QID, d.Credit, nil, true)
			}
		case kindPing:
			var p pingMsg
			if decodeBody(cp, &p) == nil {
				n.onPing(&p)
			}
		case kindPong:
			var p pongMsg
			if decodeBody(cp, &p) == nil {
				n.onPong(&p)
			}
		case kindRepBegin:
			var b repBeginMsg
			if decodeBody(cp, &b) == nil {
				n.onRepBegin(peer, &b)
			}
		case kindPublish:
			var m pubMsg
			if decodeBody(cp, &m) == nil {
				n.onPublish(&m)
			}
		case kindPubAck:
			var a pubAckMsg
			if decodeBody(cp, &a) == nil {
				n.onPubAck(&a)
			}
		}
	})
	return nil
}

// ---- membership (executor-owned) ----

// addMember records one member and recomputes ownership if the view
// changed.
//
//lint:context executor
func (n *Node) addMember(id uint64, addr string) {
	if addr == "" {
		return
	}
	if cur, ok := n.members[id]; ok && cur == addr {
		return
	}
	n.members[id] = addr
	n.rebuildView()
	n.logf("member %016x @ %s (now %d members)", id, addr, len(n.members))
}

// mergeMembers folds a received membership list into the view.
//
//lint:context executor
func (n *Node) mergeMembers(ms []Member) {
	changed := false
	for _, m := range ms {
		if m.Addr == "" {
			continue
		}
		if cur, ok := n.members[m.ID]; !ok || cur != m.Addr {
			n.members[m.ID] = m.Addr
			changed = true
		}
	}
	if changed {
		n.rebuildView()
		n.logf("membership merged to %d members", len(n.members))
	}
}

// rebuildView refreshes the sorted ring, the owned corpus slice, and
// the handshake snapshot after any membership change.
func (n *Node) rebuildView() {
	n.ring = n.ring[:0]
	for id := range n.members {
		n.ring = append(n.ring, id)
	}
	sort.Slice(n.ring, func(i, j int) bool { return n.ring[i] < n.ring[j] })
	n.owned = n.owned[:0]
	// The live-region digest is recomputed with the ownership: XOR of
	// the owned boot entries (minus tombstones) and the published
	// extras, in any order.
	var dig uint64
	cnt := 0
	for i := 0; i < n.data.N(); i++ {
		if n.successor(uint64(n.data.Key(i))) == n.id {
			n.owned = append(n.owned, i)
			if _, dead := n.tombs[int32(i)]; dead {
				continue
			}
			dig ^= n.entryDig[i]
			cnt++
		}
	}
	for _, e := range n.extras {
		dig ^= e.dig
		cnt++
	}
	n.mineDigest, n.mineCount = dig, cnt
	snap := make([]Member, len(n.ring))
	for i, id := range n.ring {
		snap[i] = Member{ID: id, Addr: n.members[id]}
	}
	n.memberSnap.Store(snap)
}

// successor returns the member owning ring position key: the first
// member ID ≥ key, wrapping to the smallest.
func (n *Node) successor(key uint64) uint64 {
	i := sort.Search(len(n.ring), func(i int) bool { return n.ring[i] >= key })
	if i == len(n.ring) {
		i = 0
	}
	return n.ring[i]
}

// snapshot returns the current membership, safe from any goroutine.
func (n *Node) snapshot() []Member {
	if v := n.memberSnap.Load(); v != nil {
		return v.([]Member)
	}
	return []Member{{ID: n.id, Addr: n.addr}}
}

// gossipTick sends the full view to one random member — the
// anti-entropy path that heals views after restarts and lost
// announces. Executor-owned (the random draw uses the protocol
// source).
//
//lint:context executor
func (n *Node) gossipTick() {
	if len(n.ring) < 2 {
		return
	}
	peer := n.ring[n.rt.Rand().Intn(len(n.ring))]
	if peer == n.id {
		return
	}
	n.sendTo(n.members[peer], kindAnnounce, announceMsg{Members: n.snapshot()})
}

// ---- sending ----

// ensureLink returns the link for a peer address, creating it (and its
// writer goroutine) on first use.
func (n *Node) ensureLink(addr string) *link {
	n.linkMu.Lock() //lint:allow execblock bounded critical section: the link-table mutex; holders touch the map or take link.mu (acyclic, bounded)
	defer n.linkMu.Unlock()
	if l, ok := n.links[addr]; ok {
		return l
	}
	if n.closed.Load() {
		return nil
	}
	l := newLink(n, addr)
	n.links[addr] = l
	return l
}

// sendTo encodes one message and queues it on the peer's link. Never
// blocks; a full queue sheds the frame (the credit accounting turns
// that into an honest incomplete query).
func (n *Node) sendTo(addr string, kind byte, msg any) {
	if addr == "" || addr == n.addr {
		return
	}
	payload, err := encodeMsg(kind, msg)
	if err != nil {
		return
	}
	n.sendRaw(addr, payload)
}

// sendRaw queues one already-encoded frame payload on the peer's link —
// the replication path pre-encodes its binary frames once per stream.
func (n *Node) sendRaw(addr string, payload []byte) {
	if addr == "" || addr == n.addr {
		return
	}
	if l := n.ensureLink(addr); l != nil {
		l.enqueue(payload)
	}
}

// acceptLoop serves the listener: every accepted connection identifies
// itself with its first frame — a peer Hello or a client hello.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// LinkStats aggregates the node's link-layer and repair counters.
type LinkStats struct {
	Links         int
	Queued        int
	Shed          int64
	Redials       int64
	Sent          int64
	FramesDropped int64
	ConnsKilled   int64

	// Repair counters (see replica.go). RepairFallback counts point-wise
	// repairs; no such path exists, so it stays 0 — the chaos soak
	// asserts repairs ride the bulk-transfer path by checking exactly
	// this.
	Repairs        int64 // bulk replica streams installed at this node
	RepairChunks   int64 // chunks received on installed streams
	RepairsSent    int64 // bulk streams fully acked as the sender
	RepairFallback int64
}

// Stats snapshots the link layer. Safe from any goroutine.
func (n *Node) Stats() LinkStats {
	var s LinkStats
	n.linkMu.Lock()
	for _, l := range n.links {
		//lint:allow lockheld lock order linkMu → link.mu is acyclic, and stats' critical section is one len read
		q, shed, redials, sent := l.stats()
		s.Links++
		s.Queued += q
		s.Shed += shed
		s.Redials += redials
		s.Sent += sent
	}
	n.linkMu.Unlock()
	s.FramesDropped = n.framesDropped.Load()
	s.ConnsKilled = n.connsKilled.Load()
	s.Repairs = n.repairsApplied.Load()
	s.RepairChunks = n.repairChunksRx.Load()
	s.RepairsSent = n.repairsSent.Load()
	s.RepairFallback = n.repairFallback.Load()
	return s
}
