package netrt

import (
	"fmt"
	"net"
	"sync"
	"time"

	"landmarkdht/internal/wire"
)

// Client is a connection to one ring node's client port. Calls are
// correlated to replies by frame id, so a client is safe for
// concurrent use from multiple goroutines.
type Client struct {
	conn net.Conn
	node uint64
	addr string

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan []byte
	closed  bool
}

// Info is a node's self-description.
type Info struct {
	ID      uint64
	Addr    string
	Members []Member
	Store   int
	// Recovered reports that the node restored its corpus from its
	// data directory instead of regenerating it; Replayed counts the
	// durable records read. Both zero on nodes without a data dir and
	// on a durable node's first boot.
	Recovered bool
	Replayed  int
	// Replication and failure-detection state: the configured factor,
	// the members this node's detector currently marks down, the owners
	// whose regions it holds synced copies of, its live published
	// entries, and the repair counters (bulk streams installed, chunks
	// received, point-wise fallbacks — always zero; the chaos soak
	// asserts repairs ride the bulk path by checking it).
	Replicas       int
	Down           []uint64
	SyncedOwners   int
	Extras         int
	Repairs        int64
	RepairChunks   int64
	RepairFallback int64
}

// Dial connects to a node and completes the client handshake.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		closeConn(conn)
		return nil, err
	}
	if err := writeFrame(conn, 1, kindClientHello, nil); err != nil {
		closeConn(conn)
		return nil, err
	}
	_, payload, _, err := wire.ReadFrame(conn, nil)
	if err != nil {
		closeConn(conn)
		return nil, err
	}
	kind, body, err := splitMsg(payload)
	if err != nil || kind != kindClientWelcome {
		closeConn(conn)
		return nil, fmt.Errorf("netrt: unexpected client handshake reply")
	}
	var w clientWelcomeMsg
	if err := decodeBody(body, &w); err != nil {
		closeConn(conn)
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		closeConn(conn)
		return nil, err
	}
	c := &Client{conn: conn, node: w.ID, addr: w.Addr, nextID: 1, pending: make(map[uint64]chan []byte)}
	go c.readLoop()
	return c, nil
}

// NodeID returns the connected node's ring identity.
func (c *Client) NodeID() uint64 { return c.node }

// readLoop routes reply frames to their waiting callers by frame id.
func (c *Client) readLoop() {
	var buf []byte
	for {
		id, payload, next, err := wire.ReadFrame(c.conn, buf)
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		buf = next
		cp := append([]byte(nil), payload...)
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- cp
		}
	}
}

// roundTrip sends one request and waits for its reply.
func (c *Client) roundTrip(kind byte, msg any, timeout time.Duration) (byte, []byte, error) {
	ch := make(chan []byte, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("netrt: client connection closed")
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()
	cancel := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}
	payload, err := encodeMsg(kind, msg)
	if err != nil {
		cancel()
		return 0, nil, err
	}
	frame, err := wire.AppendFrame(nil, id, payload)
	if err != nil {
		cancel()
		return 0, nil, err
	}
	c.wmu.Lock()
	//lint:allow lockheld wmu exists to serialize frame writes; waiting behind a peer's write is its contract
	_, err = c.conn.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		cancel()
		return 0, nil, err
	}
	select {
	case p, ok := <-ch:
		if !ok {
			return 0, nil, fmt.Errorf("netrt: connection lost awaiting reply")
		}
		return splitReply(p)
	case <-time.After(timeout):
		cancel()
		return 0, nil, fmt.Errorf("netrt: request timed out after %v", timeout)
	}
}

func splitReply(p []byte) (byte, []byte, error) {
	kind, body, err := splitMsg(p)
	if err != nil {
		return 0, nil, err
	}
	return kind, body, nil
}

// Query runs one range query on the connected node: qobj is the
// metric-specific query-object encoding (EncodeVectorQuery /
// EncodeStringQuery), r the metric radius.
func (c *Client) Query(qobj []byte, r float64, timeout time.Duration) (QueryOutcome, error) {
	kind, body, err := c.roundTrip(kindClientQuery, clientQueryMsg{QObj: qobj, R: r}, timeout)
	if err != nil {
		return QueryOutcome{}, err
	}
	if kind != kindClientResult {
		return QueryOutcome{}, fmt.Errorf("netrt: unexpected reply kind %d", kind)
	}
	var res clientResultMsg
	if err := decodeBody(body, &res); err != nil {
		return QueryOutcome{}, err
	}
	if res.Err != "" {
		return QueryOutcome{}, fmt.Errorf("netrt: query failed: %s", res.Err)
	}
	return QueryOutcome{Complete: res.Complete, Dropped: res.Dropped, Entries: res.Entries}, nil
}

// Info asks the node for its identity, membership view, and store
// size.
func (c *Client) Info(timeout time.Duration) (Info, error) {
	kind, body, err := c.roundTrip(kindClientInfo, nil, timeout)
	if err != nil {
		return Info{}, err
	}
	if kind != kindClientInfoR {
		return Info{}, fmt.Errorf("netrt: unexpected reply kind %d", kind)
	}
	var in infoMsg
	if err := decodeBody(body, &in); err != nil {
		return Info{}, err
	}
	return Info{
		ID: in.ID, Addr: in.Addr, Members: in.Members, Store: in.Store,
		Recovered: in.Recovered, Replayed: in.Replayed,
		Replicas: in.Replicas, Down: in.Down,
		SyncedOwners: in.SyncedOwners, Extras: in.Extras,
		Repairs:      in.Repairs,
		RepairChunks: in.RepairChunks, RepairFallback: in.RepairFallback,
	}, nil
}

// Publish inserts one object under id on the ring (routed to the owner
// of its ring key, journaled when the owner is durable, fanned out to
// the owner's replicas). The id must not collide with the
// deterministic corpus.
func (c *Client) Publish(id int32, obj []byte, timeout time.Duration) error {
	return c.mutate(kindClientPublish, clientPublishMsg{ID: id, Obj: obj}, timeout)
}

// Delete removes one entry: a boot-corpus entry by id alone, or a
// published entry by id plus its encoded object.
func (c *Client) Delete(id int32, obj []byte, timeout time.Duration) error {
	return c.mutate(kindClientDelete, clientDeleteMsg{ID: id, Obj: obj}, timeout)
}

func (c *Client) mutate(kind byte, msg any, timeout time.Duration) error {
	k, body, err := c.roundTrip(kind, msg, timeout)
	if err != nil {
		return err
	}
	if k != kindClientMutR {
		return fmt.Errorf("netrt: unexpected reply kind %d", k)
	}
	var res clientMutRMsg
	if err := decodeBody(body, &res); err != nil {
		return err
	}
	if res.Err != "" {
		return fmt.Errorf("netrt: %s", res.Err)
	}
	return nil
}

// Close tears the client connection down, reporting the connection's
// teardown error: a caller that cares (lmnode's drain path) can log it,
// everyone else annotates the drop.
func (c *Client) Close() error { return c.conn.Close() }
