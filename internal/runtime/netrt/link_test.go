package netrt

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"landmarkdht/internal/runtime"
	"landmarkdht/internal/wire"
)

// fakeHost is the minimal linkHost for exercising a link in isolation.
type fakeHost struct {
	id      uint64
	frameID atomic.Uint64
}

func (h *fakeHost) selfID() uint64 { return h.id }

func (h *fakeHost) dialPeer(addr string) (net.Conn, uint64, error) {
	conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
	if err != nil {
		return nil, 0, err
	}
	w, err := dialHandshake(conn, Member{ID: h.id, Addr: "fake"}, 42, nil)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	return conn, w.From, nil
}

func (h *fakeHost) handleFrame(peer uint64, kind byte, body []byte) error { return nil }
func (h *fakeHost) nextFrameID() uint64                                   { return h.frameID.Add(1) }
func (h *fakeHost) linkFaults(peer uint64) *runtime.LinkFaults            { return nil }
func (h *fakeHost) linkSeed(addr string) int64                            { return 7 }
func (h *fakeHost) countFault(string)                                     {}
func (h *fakeHost) maxQueue() int                                         { return 8 }

// peerServer is a hand-rolled remote: it accepts connections, answers
// the peer handshake, and forwards every received frame payload to
// recv. Stopping it kills the listener and any open connection.
type peerServer struct {
	ln   net.Listener
	recv chan []byte

	mu    sync.Mutex
	conns []net.Conn
}

func servePeer(t *testing.T, addr string) *peerServer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	s := &peerServer{ln: ln, recv: make(chan []byte, 64)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			go func() {
				defer conn.Close()
				_, payload, _, err := wire.ReadFrame(conn, nil)
				if err != nil || len(payload) == 0 || payload[0] != kindHello {
					return
				}
				if writeFrame(conn, 1, kindWelcome, helloMsg{From: 9999, Addr: addr, Sig: 42}) != nil {
					return
				}
				var buf []byte
				for {
					_, p, next, err := wire.ReadFrame(conn, buf)
					if err != nil {
						return
					}
					buf = next
					s.recv <- append([]byte(nil), p...)
				}
			}()
		}
	}()
	return s
}

func (s *peerServer) stop() {
	s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
	s.mu.Unlock()
}

func collect(t *testing.T, ch chan []byte, n int, timeout time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case p := <-ch:
			out = append(out, p)
		case <-deadline:
			t.Fatalf("received %d frames, want %d", len(out), n)
		}
	}
	return out
}

// TestLinkFlappingPeer is the reconnect contract: the remote listener
// dies and returns; the link backs off, redials, and delivers the
// frames queued while it was down exactly once.
func TestLinkFlappingPeer(t *testing.T) {
	// Reserve a port so the server can come back on the same address.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	srv := servePeer(t, addr)
	host := &fakeHost{id: 1}
	l := newLink(host, addr)
	defer l.close()

	l.enqueue([]byte{100, 0})
	l.enqueue([]byte{100, 1})
	first := collect(t, srv.recv, 2, 5*time.Second)
	for i, p := range first {
		if p[1] != byte(i) {
			t.Fatalf("frame %d payload %v", i, p)
		}
	}

	// Kill the remote. Wait until the link notices the dead
	// connection, so the frames queued next cannot race onto it.
	srv.stop()
	waitFor(t, 5*time.Second, func() bool { return !l.connected() })

	for i := 2; i < 7; i++ {
		l.enqueue([]byte{100, byte(i)})
	}
	// Let some dials fail against the dead address: the backoff path,
	// not just a single instant redial, must be exercised.
	waitFor(t, 5*time.Second, func() bool { _, _, redials, _ := l.stats(); return redials >= 2 })

	srv2 := servePeer(t, addr)
	defer srv2.stop()
	queued := collect(t, srv2.recv, 5, 10*time.Second)
	seen := map[byte]int{}
	for _, p := range queued {
		seen[p[1]]++
	}
	for i := byte(2); i < 7; i++ {
		if seen[i] != 1 {
			t.Fatalf("frame %d delivered %d times, want exactly once (got %v)", i, seen[i], seen)
		}
	}
	// Nothing else may trickle in: the pre-flap frames are gone for
	// good, not replayed.
	select {
	case p := <-srv2.recv:
		t.Fatalf("unexpected extra frame %v after drain", p)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestLinkQueueSheds checks the bounded queue degrades by shedding and
// counting, never blocking.
func TestLinkQueueSheds(t *testing.T) {
	host := &fakeHost{id: 1}          // maxQueue 8
	l := newLink(host, "127.0.0.1:1") // nothing listens: frames only queue
	defer l.close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			l.enqueue([]byte{byte(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue blocked on a full queue")
	}
	_, shed, _, _ := l.stats()
	if shed < 90 {
		t.Fatalf("shed = %d, want >= 90 of 100 over an 8-deep queue", shed)
	}
}

// TestBackoffDelaySeeded pins the backoff schedule: exponential to the
// cap, jittered within [0.5, 1.5), and reproducible per seed.
func TestBackoffDelaySeeded(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 10; attempt++ {
		da := backoffDelay(attempt, a)
		db := backoffDelay(attempt, b)
		if da != db {
			t.Fatalf("attempt %d: %v != %v with equal seeds", attempt, da, db)
		}
		base := backoffBase << (attempt - 1)
		if base > backoffCap {
			base = backoffCap
		}
		if da < base/2 || da >= base+base/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, da, base/2, base+base/2)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
