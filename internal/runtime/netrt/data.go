package netrt

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"landmarkdht/internal/indexspace"
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/metric"
	"landmarkdht/internal/query"
)

// DataConfig pins the deterministic corpus every ring member holds.
// All processes must agree on every field — the handshake compares a
// signature over the derived keys and refuses to link nodes whose
// corpora differ. Without Config.DataDir each process regenerates the
// corpus from the seed at startup; with it, the corpus is journaled to
// disk on first boot and a restarted (e.g. SIGKILLed) node recovers
// its state from the WAL instead of rebuilding it — see durable.go.
type DataConfig struct {
	// Metric selects the object space: "euclid" (Dim-dimensional
	// vectors, uniform in [0,1]) or "edit" (short random strings under
	// Levenshtein distance).
	Metric string
	// Seed drives object generation and landmark selection.
	Seed int64
	// Objects is the corpus size (default 2048).
	Objects int
	// Dim is the vector dimensionality for "euclid" (default 4).
	Dim int
	// Landmarks is the index-space dimensionality k (default 6).
	Landmarks int
}

func (c *DataConfig) fillDefaults() {
	if c.Metric == "" {
		c.Metric = "euclid"
	}
	if c.Objects <= 0 {
		c.Objects = 2048
	}
	if c.Dim <= 0 {
		c.Dim = 4
	}
	if c.Landmarks <= 0 {
		c.Landmarks = 6
	}
}

// corpus is what a node needs from the dataset, independent of the
// object type: ring placement of every entry, index-space points for
// region scans, exact distances for refinement, and query-region
// construction.
type corpus interface {
	N() int
	// Key returns entry i's ring key (rotation applied).
	Key(i int) lph.Key
	// Point returns entry i's index-space point.
	Point(i int) []float64
	Part() *lph.Partitioner
	Sig() uint64
	// QueryRegion builds the eps-widened query region for an encoded
	// query object and radius.
	QueryRegion(qobj []byte, r float64) (query.Region, error)
	// Evaluator decodes a query object once and returns the exact
	// distance to entry i.
	Evaluator(qobj []byte) (func(i int) float64, error)
	// RandomQuery draws a random encoded query object from rng.
	RandomQuery(rng *rand.Rand) []byte
	// ObjBytes returns entry i's encoded object — replica streams and
	// digests are self-describing, so copies answer exact distances
	// without assuming the holder can re-derive the object.
	ObjBytes(i int) []byte
	// MapObj maps an encoded object into the index: its ring key (the
	// routing position an online publish or delete goes to) and its
	// index-space point.
	MapObj(obj []byte) (lph.Key, []float64, error)
	// Dister decodes a query object once and returns an exact-distance
	// evaluator over encoded object bytes (replica copies and published
	// entries carry bytes, not corpus indices).
	Dister(qobj []byte) (func(obj []byte) (float64, error), error)
	// persist emits the durable record stream (meta, landmarks,
	// entries) that openDurable can restore the corpus from.
	persist(cfg DataConfig, emit func(payload []byte) error) error
}

// dataset is the generic corpus implementation over one metric space.
type dataset[T any] struct {
	objs   []T
	lms    []T // landmark objects (persisted so recovery skips selection)
	space  metric.Space[T]
	emb    *indexspace.Embedding[T]
	part   *lph.Partitioner
	keys   []lph.Key
	points [][]float64
	sig    uint64
	dec    func([]byte) (T, error)
	enc    func(T) []byte
	random func(rng *rand.Rand) []byte
}

func (d *dataset[T]) N() int                 { return len(d.objs) }
func (d *dataset[T]) Key(i int) lph.Key      { return d.keys[i] }
func (d *dataset[T]) Point(i int) []float64  { return d.points[i] }
func (d *dataset[T]) Part() *lph.Partitioner { return d.part }
func (d *dataset[T]) Sig() uint64            { return d.sig }

// QueryRegion mirrors core.queryRegion: the cube around the mapped
// query point is widened by a relative epsilon (the contractive-mapping
// guarantee can be violated by one ulp in floats; exact refinement
// removes any false positives the widening admits).
func (d *dataset[T]) QueryRegion(qobj []byte, r float64) (query.Region, error) {
	q, err := d.dec(qobj)
	if err != nil {
		return query.Region{}, err
	}
	center := d.emb.Map(q)
	cube := make([]lph.Bounds, len(center))
	for j, c := range center {
		b := d.part.Bounds(j)
		eps := 1e-9 * (1 + math.Abs(c) + r)
		cube[j] = lph.Bounds{Lo: b.Clamp(c - r - eps), Hi: b.Clamp(c + r + eps)}
	}
	return query.New(d.part, cube)
}

func (d *dataset[T]) Evaluator(qobj []byte) (func(i int) float64, error) {
	q, err := d.dec(qobj)
	if err != nil {
		return nil, err
	}
	return func(i int) float64 { return d.space.Dist(q, d.objs[i]) }, nil
}

func (d *dataset[T]) RandomQuery(rng *rand.Rand) []byte { return d.random(rng) }

func (d *dataset[T]) ObjBytes(i int) []byte { return d.enc(d.objs[i]) }

func (d *dataset[T]) MapObj(obj []byte) (lph.Key, []float64, error) {
	o, err := d.dec(obj)
	if err != nil {
		return 0, nil, err
	}
	p := d.emb.Map(o)
	return d.part.MapPoint(p), p, nil
}

func (d *dataset[T]) Dister(qobj []byte) (func(obj []byte) (float64, error), error) {
	q, err := d.dec(qobj)
	if err != nil {
		return nil, err
	}
	return func(obj []byte) (float64, error) {
		o, err := d.dec(obj)
		if err != nil {
			return 0, err
		}
		return d.space.Dist(q, o), nil
	}, nil
}

// buildCorpus derives the full corpus from the config: objects,
// landmarks (greedy max-min over a sample), the index-space embedding
// and partitioner, and every entry's ring key.
func buildCorpus(cfg DataConfig) (corpus, error) {
	cfg.fillDefaults()
	switch cfg.Metric {
	case "euclid":
		return buildEuclid(cfg)
	case "edit":
		return buildEdit(cfg)
	default:
		return nil, fmt.Errorf("netrt: unknown metric %q (want euclid or edit)", cfg.Metric)
	}
}

// finishDataset runs the metric-independent tail of corpus
// construction: landmark selection, embedding, mapping, keys,
// signature.
func finishDataset[T any](cfg DataConfig, objs []T, space metric.Space[T], dec func([]byte) (T, error), enc func(T) []byte, random func(*rand.Rand) []byte) (*dataset[T], error) {
	sample := objs
	if len(sample) > 2000 {
		sample = sample[:2000]
	}
	lrng := rand.New(rand.NewSource(cfg.Seed ^ 0x6c616e646d61726b)) // "landmark"
	lms, err := landmark.Greedy(lrng, sample, cfg.Landmarks, space.Dist)
	if err != nil {
		return nil, err
	}
	d, err := assembleDataset(cfg, objs, lms, space, dec, enc, random)
	if err != nil {
		return nil, err
	}
	// Map every object into index space and derive its ring key.
	for i, o := range objs {
		p := d.emb.Map(o)
		d.points[i] = p
		d.keys[i] = d.part.MapPoint(p)
	}
	d.seal(cfg)
	return d, nil
}

// assembleDataset builds the embedding machinery from explicit
// landmark objects, leaving keys/points for the caller to fill —
// shared by fresh construction (finishDataset, which maps every
// object) and durable recovery (restoreDataset, which loads the
// persisted keys/points instead of recomputing them).
func assembleDataset[T any](cfg DataConfig, objs, lms []T, space metric.Space[T], dec func([]byte) (T, error), enc func(T) []byte, random func(*rand.Rand) []byte) (*dataset[T], error) {
	emb, err := indexspace.New(space, lms)
	if err != nil {
		return nil, err
	}
	part, err := emb.Partitioner(false)
	if err != nil {
		return nil, err
	}
	d := &dataset[T]{objs: objs, lms: lms, space: space, emb: emb, part: part, dec: dec, enc: enc, random: random}
	d.keys = make([]lph.Key, len(objs))
	d.points = make([][]float64, len(objs))
	return d, nil
}

// seal computes the handshake signature over the (now final) keys.
func (d *dataset[T]) seal(cfg DataConfig) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d/%d/%d", cfg.Metric, cfg.Seed, cfg.Objects, cfg.Dim, cfg.Landmarks)
	var kb [8]byte
	for _, k := range d.keys {
		binary.BigEndian.PutUint64(kb[:], uint64(k))
		h.Write(kb[:])
	}
	d.sig = h.Sum64()
}

// euclidParts returns the metric-space machinery for "euclid": the
// space plus the object codec and random-query generator. Shared by
// fresh construction and durable recovery.
func euclidParts(cfg DataConfig) (metric.Space[metric.Vector], func([]byte) (metric.Vector, error), func(metric.Vector) []byte, func(*rand.Rand) []byte) {
	space := metric.EuclideanSpace("euclid", cfg.Dim, 0, 1)
	dim := cfg.Dim
	dec := func(b []byte) (metric.Vector, error) {
		return DecodeVectorQuery(b, dim)
	}
	enc := func(v metric.Vector) []byte { return EncodeVectorQuery(v) }
	random := func(rng *rand.Rand) []byte {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		return EncodeVectorQuery(v)
	}
	return space, dec, enc, random
}

func buildEuclid(cfg DataConfig) (corpus, error) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x636f72707573)) // "corpus"
	objs := make([]metric.Vector, cfg.Objects)
	for i := range objs {
		v := make(metric.Vector, cfg.Dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		objs[i] = v
	}
	space, dec, enc, random := euclidParts(cfg)
	return finishDataset(cfg, objs, space, dec, enc, random)
}

// editAlphabet is small on purpose: short strings over few letters
// produce a rich, collision-heavy edit-distance landscape.
const editAlphabet = "abcde"

// editMaxLen bounds string length for the "edit" metric.
const editMaxLen = 12

// editParts returns the metric-space machinery for "edit". Shared by
// fresh construction and durable recovery.
func editParts() (metric.Space[string], func([]byte) (string, error), func(string) []byte, func(*rand.Rand) []byte) {
	space := metric.EditSpace("edit", editMaxLen)
	dec := func(b []byte) (string, error) {
		if len(b) > editMaxLen {
			return "", fmt.Errorf("netrt: query string longer than %d", editMaxLen)
		}
		return string(b), nil
	}
	enc := func(s string) []byte { return []byte(s) }
	random := func(rng *rand.Rand) []byte {
		n := 3 + rng.Intn(editMaxLen-3)
		b := make([]byte, n)
		for j := range b {
			b[j] = editAlphabet[rng.Intn(len(editAlphabet))]
		}
		return b
	}
	return space, dec, enc, random
}

func buildEdit(cfg DataConfig) (corpus, error) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x636f72707573))
	objs := make([]string, cfg.Objects)
	for i := range objs {
		n := 3 + rng.Intn(editMaxLen-3)
		b := make([]byte, n)
		for j := range b {
			b[j] = editAlphabet[rng.Intn(len(editAlphabet))]
		}
		objs[i] = string(b)
	}
	space, dec, enc, random := editParts()
	return finishDataset(cfg, objs, space, dec, enc, random)
}

// EncodeVectorQuery encodes a vector query object for the "euclid"
// metric: 8 big-endian bytes per component.
func EncodeVectorQuery(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// DecodeVectorQuery inverts EncodeVectorQuery, checking dimensionality.
func DecodeVectorQuery(b []byte, dim int) (metric.Vector, error) {
	if len(b) != 8*dim {
		return nil, fmt.Errorf("netrt: query object is %d bytes, want %d (dim %d)", len(b), 8*dim, dim)
	}
	v := make(metric.Vector, dim)
	for i := range v {
		x := math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("netrt: non-finite query component %d", i)
		}
		v[i] = x
	}
	return v, nil
}

// EncodeStringQuery encodes a string query object for the "edit"
// metric.
func EncodeStringQuery(s string) []byte { return []byte(s) }

// Dataset is the exported view of the deterministic corpus, for
// drivers (cmd/lmchaos, tests) that verify query answers by brute
// force against the same data every ring member holds.
type Dataset struct {
	c corpus
}

// BuildDataset derives the corpus a ring built from cfg holds.
func BuildDataset(cfg DataConfig) (*Dataset, error) {
	c, err := buildCorpus(cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{c: c}, nil
}

// N returns the corpus size.
func (d *Dataset) N() int { return d.c.N() }

// RandomQuery draws a random encoded query object from rng.
func (d *Dataset) RandomQuery(rng *rand.Rand) []byte { return d.c.RandomQuery(rng) }

// BruteForce returns the exact range-query answer over the full
// corpus, sorted by object id.
func (d *Dataset) BruteForce(qobj []byte, r float64) ([]ResultEntry, error) {
	eval, err := d.c.Evaluator(qobj)
	if err != nil {
		return nil, err
	}
	var out []ResultEntry
	for i := 0; i < d.c.N(); i++ {
		if dist := eval(i); dist <= r {
			out = append(out, ResultEntry{Obj: int32(i), Dist: dist})
		}
	}
	return out, nil
}
