package netrt

// Region replication and anti-entropy repair. With Config.Replicas = K
// every member streams a full copy of its live region — owned boot
// entries minus tombstones, plus published extras — to its K ring
// successors over the bulk region-transfer frames (internal/wire:
// sequenced chunks, per-chunk acks, a windowed sender). Entries travel
// self-describing (ring key, index-space point, encoded object), so a
// replica answers a down owner's subqueries with exact distances
// without assuming anything about the owner's corpus slice.
//
// Synchronization is digest-driven: every AntiEntropyPeriod an owner
// advertises (count, XOR-of-entry-digests) to each replica; a replica
// whose copy disagrees answers with its own digest, and the owner
// responds by re-streaming the region. The same exchange confirms
// agreement — a matching advert marks the copy synced, and only synced
// copies serve queries. A torn or divergent stream is discarded after
// the end-to-end digest check and repaired by the next exchange; there
// is no point-wise fallback path, so every repair is a counted bulk
// stream (LinkStats.Repairs / RepairChunks; RepairFallback stays 0).

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"landmarkdht/internal/core"
	"landmarkdht/internal/lph"
	"landmarkdht/internal/runtime"
	"landmarkdht/internal/wire"
)

const (
	// repIndexName names the index scheme in every replica chunk; a
	// chunk for any other scheme is ignored.
	repIndexName = "netrt-region"
	// repChunkData bounds one chunk's entry bytes (well under
	// wire.MaxChunkData so the whole frame stays small).
	repChunkData = 8 << 10
	// repWindow is the sender's in-flight chunk window.
	repWindow = 4
	// repRetryDelay is the sender's retransmit timer; progress (any new
	// ack) resets the retry budget.
	repRetryDelay = 300 * time.Millisecond
	// repMaxRetries bounds a stream with no progress before the sender
	// gives up (the next anti-entropy exchange starts over).
	repMaxRetries = 30
	// maxRepChunks and maxRepBytes bound what a receiver will stage for
	// one stream, whatever the header claims.
	maxRepChunks = 1 << 14
	maxRepBytes  = 64 << 20
)

// repEntry is one self-describing replica entry: ring key, index-space
// point, encoded object, and its precomputed digest.
type repEntry struct {
	key   lph.Key
	point []float64
	obj   []byte
	dig   uint64
}

// replicaCopy is this node's copy of one owner's live region. Only a
// synced copy — digest-confirmed against the owner's advert, or
// freshly installed from a digest-checked stream — serves queries.
type replicaCopy struct {
	entries map[int32]repEntry
	digest  uint64
	synced  bool
}

// repPush is one outbound replica stream.
type repPush struct {
	to       uint64
	addr     string
	transfer uint64
	chunks   [][]byte // pre-encoded kind-prefixed chunk frames
	acked    []bool
	ackedN   int
	sent     int
	retries  int
	timer    runtime.Timer
	digest   uint64 // region digest the stream was cut at
	entries  int
}

// repStage is one inbound replica stream being reassembled.
type repStage struct {
	owner    uint64
	transfer uint64
	digest   uint64
	entries  int
	data     [][]byte
	got      []bool
	have     int
	bytes    int
}

// replicaTargets returns the min(Replicas, ring−1) distinct members
// after owner in ring order — owner's replica set under the current
// view. Nil when replication is off or owner is not in the view.
//
//lint:context executor
func (n *Node) replicaTargets(owner uint64) []uint64 {
	k := n.cfg.Replicas
	if k <= 0 || len(n.ring) < 2 {
		return nil
	}
	if k > len(n.ring)-1 {
		k = len(n.ring) - 1
	}
	i := sort.Search(len(n.ring), func(i int) bool { return n.ring[i] >= owner })
	if i == len(n.ring) || n.ring[i] != owner {
		return nil
	}
	out := make([]uint64, 0, k)
	for j := 1; j <= k; j++ {
		out = append(out, n.ring[(i+j)%len(n.ring)])
	}
	return out
}

// antiEntropyTick advertises this node's live-region digest to each of
// its replicas. A replica that disagrees (or holds nothing) answers
// with its own digest, which schedules the repair stream.
//
//lint:context executor
func (n *Node) antiEntropyTick() {
	targets := n.replicaTargets(n.id)
	if len(targets) == 0 {
		return
	}
	adv := encodeRaw(kindRepDigest, wire.AppendDigest(nil, wire.RegionDigest{
		Owner: n.id, Entries: uint32(n.mineCount), Digest: n.mineDigest,
	}))
	for _, t := range targets {
		if t == n.id || n.isDown(t) {
			continue
		}
		n.sendRaw(n.members[t], adv)
	}
}

// onRepDigest handles both directions of the exchange. A digest whose
// Owner is this node is a replica reporting its copy of our region:
// divergence starts (or restarts) a push to that replica. Any other
// Owner is an owner's advert: a matching copy is marked synced, a
// divergent or missing one is reported back so the owner re-streams.
//
//lint:context executor
func (n *Node) onRepDigest(peer uint64, d wire.RegionDigest) {
	if d.Owner == n.id {
		if int(d.Entries) != n.mineCount || d.Digest != n.mineDigest {
			n.startPush(peer)
		}
		return
	}
	if d.Owner != peer {
		return // adverts speak only for their sender
	}
	c := n.copies[d.Owner]
	if c == nil && d.Entries == 0 && d.Digest == 0 {
		// An empty region (a ring arc with no corpus keys) syncs without
		// a stream: reporting back would echo the owner's own (0, 0)
		// digest, which the owner correctly sees as agreement and never
		// pushes — so the copy must be installed right here or the
		// exchange deadlocks with this replica unsynced forever.
		n.copies[d.Owner] = &replicaCopy{entries: make(map[int32]repEntry), synced: true}
		return
	}
	have := wire.RegionDigest{Owner: d.Owner}
	if c != nil {
		have.Entries = uint32(len(c.entries))
		have.Digest = c.digest
	}
	synced := c != nil && have.Entries == d.Entries && have.Digest == d.Digest
	if c != nil {
		c.synced = synced
	}
	if !synced {
		n.sendRaw(n.members[d.Owner], encodeRaw(kindRepDigest, wire.AppendDigest(nil, have)))
	}
}

// startPush cuts the live region at its current digest and streams it
// to one replica. An identical stream already in flight is left alone;
// a stale one is replaced.
//
//lint:context executor
func (n *Node) startPush(to uint64) {
	addr := n.members[to]
	if addr == "" || to == n.id || n.isDown(to) {
		return
	}
	if p := n.pushes[to]; p != nil {
		if p.digest == n.mineDigest && p.entries == n.mineCount {
			return
		}
		n.dropPush(p)
	}
	raw := chunkRepData(n.encodeMine())
	n.nextXfer++
	p := &repPush{to: to, addr: addr, transfer: n.nextXfer,
		digest: n.mineDigest, entries: n.mineCount,
		chunks: make([][]byte, len(raw)), acked: make([]bool, len(raw))}
	for i, d := range raw {
		c := wire.RegionChunk{Transfer: p.transfer, Index: repIndexName,
			Seq: uint32(i), Last: i == len(raw)-1, Data: d}
		enc, err := wire.AppendChunk(nil, &c)
		if err != nil {
			return // unreachable: name and chunk sizes are in range by construction
		}
		p.chunks[i] = encodeRaw(kindRepChunk, enc)
	}
	n.pushes[to] = p
	n.pushByXfer[p.transfer] = p
	n.sendTo(addr, kindRepBegin, repBeginMsg{Owner: n.id, Transfer: p.transfer,
		Chunks: len(p.chunks), Entries: p.entries, Digest: p.digest})
	n.pumpPush(p)
	p.timer = n.rt.AfterFunc(repRetryDelay, func() { n.retryPush(p) })
	n.logf("replica push to %016x: %d entries in %d chunks (transfer %d)",
		to, p.entries, len(p.chunks), p.transfer)
}

// encodeMine serializes the live region: owned boot entries minus
// tombstones, then the published extras.
//
//lint:context executor
func (n *Node) encodeMine() []byte {
	var out []byte
	for _, i := range n.owned {
		if _, dead := n.tombs[int32(i)]; dead {
			continue
		}
		out = appendRepEntry(out, n.data.Key(i),
			core.Entry{Obj: core.ObjectID(i), Point: n.data.Point(i)}, n.data.ObjBytes(i))
	}
	for id, e := range n.extras {
		out = appendRepEntry(out, e.key, core.Entry{Obj: core.ObjectID(id), Point: e.point}, e.obj)
	}
	return out
}

// Replica stream entries extend the core region codec with the encoded
// object ([4B obj len | obj]) — copies answer exact distances, so they
// carry the object itself, not just its index-space point.

func appendRepEntry(dst []byte, key lph.Key, e core.Entry, obj []byte) []byte {
	dst = core.AppendEntry(dst, key, e)
	var u [4]byte
	binary.BigEndian.PutUint32(u[:], uint32(len(obj)))
	dst = append(dst, u[:]...)
	return append(dst, obj...)
}

func decodeRepEntry(data []byte) (key lph.Key, e core.Entry, obj, rest []byte, err error) {
	key, e, rest, err = core.DecodeEntry(data)
	if err != nil {
		return 0, core.Entry{}, nil, nil, err
	}
	if len(rest) < 4 {
		return 0, core.Entry{}, nil, nil, fmt.Errorf("netrt: replica entry object length truncated")
	}
	olen := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if olen > len(rest) {
		return 0, core.Entry{}, nil, nil, fmt.Errorf("netrt: replica entry declares %d object bytes, %d remain", olen, len(rest))
	}
	return key, e, rest[:olen:olen], rest[olen:], nil
}

// chunkRepData splits a region blob at fixed boundaries. An empty
// region still ships one empty chunk, so the receiver sees a complete
// (and digest-checked) stream.
func chunkRepData(data []byte) [][]byte {
	if len(data) == 0 {
		return [][]byte{nil}
	}
	var out [][]byte
	for off := 0; off < len(data); off += repChunkData {
		end := off + repChunkData
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end])
	}
	return out
}

// pumpPush keeps the window full.
//
//lint:context executor
func (n *Node) pumpPush(p *repPush) {
	for p.sent < len(p.chunks) && p.sent-p.ackedN < repWindow {
		n.sendRaw(p.addr, p.chunks[p.sent])
		p.sent++
	}
}

// retryPush re-announces the stream and retransmits everything sent
// but unacked. The receiver acks duplicates idempotently, so a lost
// ack costs one redundant chunk, never a stuck stream.
//
//lint:context executor
func (n *Node) retryPush(p *repPush) {
	if n.pushByXfer[p.transfer] != p {
		return // finished or replaced
	}
	if n.isDown(p.to) {
		n.dropPush(p)
		return
	}
	p.retries++
	if p.retries > repMaxRetries {
		n.dropPush(p)
		n.logf("replica push to %016x abandoned after %d retries (transfer %d)", p.to, p.retries-1, p.transfer)
		return
	}
	n.sendTo(p.addr, kindRepBegin, repBeginMsg{Owner: n.id, Transfer: p.transfer,
		Chunks: len(p.chunks), Entries: p.entries, Digest: p.digest})
	for i := 0; i < p.sent; i++ {
		if !p.acked[i] {
			n.sendRaw(p.addr, p.chunks[i])
		}
	}
	n.pumpPush(p)
	p.timer = n.rt.AfterFunc(repRetryDelay, func() { n.retryPush(p) })
}

// onRepAck books one acked chunk and advances the window.
//
//lint:context executor
func (n *Node) onRepAck(a wire.RegionAck) {
	p := n.pushByXfer[a.Transfer]
	if p == nil || int(a.Seq) >= len(p.chunks) || p.acked[a.Seq] {
		return
	}
	p.acked[a.Seq] = true
	p.ackedN++
	p.retries = 0 // progress restores the retry budget
	if p.ackedN == len(p.chunks) {
		n.repairsSent.Add(1)
		n.dropPush(p)
		n.logf("replica push to %016x complete (transfer %d)", p.to, p.transfer)
		return
	}
	n.pumpPush(p)
}

// dropPush removes a stream from both indices and stops its timer.
//
//lint:context executor
func (n *Node) dropPush(p *repPush) {
	if p.timer != nil {
		p.timer.Stop()
	}
	if n.pushByXfer[p.transfer] == p {
		delete(n.pushByXfer, p.transfer)
	}
	if n.pushes[p.to] == p {
		delete(n.pushes, p.to)
	}
}

// onRepBegin opens (or re-opens, idempotently) one inbound stream. A
// newer stream from the same owner replaces a stale one.
//
//lint:context executor
func (n *Node) onRepBegin(peer uint64, b *repBeginMsg) {
	if b.Owner != peer || b.Chunks <= 0 || b.Chunks > maxRepChunks || b.Entries < 0 {
		return
	}
	if old, ok := n.stageOwner[b.Owner]; ok {
		if st := n.staging[old]; st != nil && st.transfer == b.Transfer {
			return // retry of the stream already in progress
		}
		delete(n.staging, old)
	}
	st := &repStage{owner: b.Owner, transfer: b.Transfer, digest: b.Digest, entries: b.Entries,
		data: make([][]byte, b.Chunks), got: make([]bool, b.Chunks)}
	n.staging[b.Transfer] = st
	n.stageOwner[b.Owner] = b.Transfer
}

// onRepChunk stages one chunk and acks it. Duplicates are acked
// without re-staging; the last missing chunk triggers install.
//
//lint:context executor
func (n *Node) onRepChunk(peer uint64, c wire.RegionChunk) {
	st := n.staging[c.Transfer]
	if st == nil || st.owner != peer || c.Index != repIndexName || int(c.Seq) >= len(st.got) {
		return
	}
	if !st.got[c.Seq] {
		if st.bytes+len(c.Data) > maxRepBytes {
			delete(n.staging, c.Transfer)
			delete(n.stageOwner, st.owner)
			return
		}
		st.data[c.Seq] = c.Data
		st.got[c.Seq] = true
		st.have++
		st.bytes += len(c.Data)
	}
	n.sendRaw(n.members[st.owner], encodeRaw(kindRepAck,
		wire.AppendAck(nil, wire.RegionAck{Transfer: c.Transfer, Seq: c.Seq})))
	if st.have == len(st.got) {
		n.installStage(st)
	}
}

// installStage decodes a complete stream, verifies its end-to-end
// digest, and installs the copy. A mismatch — torn stream, concurrent
// mutation at the owner, undecodable entry — discards the stage; the
// next anti-entropy exchange repairs it.
//
//lint:context executor
func (n *Node) installStage(st *repStage) {
	delete(n.staging, st.transfer)
	if n.stageOwner[st.owner] == st.transfer {
		delete(n.stageOwner, st.owner)
	}
	var blob []byte
	for _, d := range st.data {
		blob = append(blob, d...)
	}
	entries := make(map[int32]repEntry, st.entries)
	var dig uint64
	for len(blob) > 0 {
		key, e, obj, rest, err := decodeRepEntry(blob)
		if err != nil {
			n.logf("replica stream from %016x: %v", st.owner, err)
			return
		}
		blob = rest
		d := core.EntryDigest(key, e, obj)
		if old, ok := entries[int32(e.Obj)]; ok {
			dig ^= old.dig
		}
		entries[int32(e.Obj)] = repEntry{key: key, point: e.Point, obj: obj, dig: d}
		dig ^= d
	}
	if len(entries) != st.entries || dig != st.digest {
		n.logf("replica stream from %016x discarded: %d entries / %016x, header said %d / %016x",
			st.owner, len(entries), dig, st.entries, st.digest)
		return
	}
	n.copies[st.owner] = &replicaCopy{entries: entries, digest: dig, synced: true}
	n.repairsApplied.Add(1)
	n.repairChunksRx.Add(int64(len(st.got)))
	n.logf("installed replica copy of %016x: %d entries from %d chunks", st.owner, len(entries), len(st.got))
}

// syncedOwners counts the owners whose regions this node holds synced
// copies of.
//
//lint:context executor
func (n *Node) syncedOwners() int {
	cnt := 0
	for _, c := range n.copies {
		if c.synced {
			cnt++
		}
	}
	return cnt
}
