package netrt

import (
	"sort"
	"time"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
	"landmarkdht/internal/runtime"
)

// creditTotal is a query's initial credit. Credit is conserved: every
// split divides it into shares that sum exactly, and every share comes
// home in a Result or Drop frame — when returned+dropped equals the
// total, the query has terminated. 2⁶² leaves 62 halvings before a
// share could hit zero; real decompositions split a few dozen times.
const creditTotal = uint64(1) << 62

// originQuery is the origin-side state of one running query.
type originQuery struct {
	qid        uint64
	total      uint64
	returned   uint64
	dropped    uint64
	droppedCnt int
	results    map[int32]float64
	deadline   runtime.Timer
	done       func(QueryOutcome, error)
}

// QueryOutcome is a finished query. Complete ⇒ Entries is the exact
// range-query answer over the corpus; otherwise it is an honest subset
// and Dropped counts the region shards lost for good.
type QueryOutcome struct {
	Complete bool
	Dropped  int
	Entries  []ResultEntry
}

// startQuery begins a query at this node (executor only). done fires
// exactly once, on the executor, when all credit is home or the
// deadline expires.
//
//lint:context executor
func (n *Node) startQuery(qobj []byte, r float64, done func(QueryOutcome, error)) {
	reg, err := n.data.QueryRegion(qobj, r)
	if err != nil {
		done(QueryOutcome{}, err)
		return
	}
	n.nextQID++
	qid := n.nextQID
	oq := &originQuery{
		qid:     qid,
		total:   creditTotal,
		results: make(map[int32]float64),
		done:    done,
	}
	n.queries[qid] = oq
	oq.deadline = n.rt.AfterFunc(n.cfg.Deadline, func() { n.expire(qid) })
	n.process(&queryMsg{
		Origin: n.id, OriginAddr: n.addr, Epoch: n.epoch, QID: qid,
		Credit: creditTotal, Region: reg, QObj: qobj, R: r, TTL: n.cfg.TTL,
	})
}

// Query runs one range query from this node and blocks until it
// finishes or timeout elapses. Safe from any goroutine.
func (n *Node) Query(qobj []byte, r float64, timeout time.Duration) (QueryOutcome, error) {
	var out QueryOutcome
	var qerr error
	err := n.rt.Await(timeout, func(finish func()) error {
		n.startQuery(qobj, r, func(o QueryOutcome, err error) {
			out, qerr = o, err
			finish()
		})
		return nil
	})
	if err != nil {
		return out, err
	}
	return out, qerr
}

// process executes one subquery step at this node (executor only): the
// port of the routing half of the protocol to direct-to-owner routing.
// With a full membership view the ring is permanently "stabilized", so
// instead of Chord hops the region goes straight to the successor of
// its key span; the surrogate-refinement decomposition (Algorithm 5)
// is unchanged from the in-process runtimes.
//
//lint:context executor
func (n *Node) process(q *queryMsg) {
	if q.TTL <= 0 {
		// Forwarding did not converge (membership views disagree under
		// churn). Return the credit as dropped: the origin terminates
		// honestly instead of hanging until the deadline.
		n.returnDrop(q, q.Credit, "ttl exhausted")
		return
	}
	lo, _ := lph.CuboidSpan(q.Region.PreKey, q.Region.PreLen)
	owner := n.successor(uint64(n.data.Part().Ring(lo)))
	if owner == n.id {
		n.decompose(q, n.id, n.answerLocal)
		return
	}
	if !n.isDown(owner) {
		fq := *q
		fq.TTL--
		n.sendTo(n.members[owner], kindQuery, &fq)
		return
	}
	// The owner is down. A synced copy of its region answers the shard
	// right here — decomposed at the owner's ring position, so the
	// sub-shards route exactly as they would have from the owner.
	// Members are never evicted, so the ring only grows and a dead
	// owner's region can only have shrunk since the copy synced: the
	// copy covers the routed shard, over-coverage is merged away per
	// object at the origin, and mutations to a down owner are refused
	// (publish.go), so the copy is static while the owner is dead —
	// the failover answer is exact.
	if c := n.copies[owner]; c != nil && c.synced {
		n.decompose(q, owner, func(lq *queryMsg) { n.answerFromCopy(lq, c) })
		return
	}
	// No copy here: hand the shard to a live replica that may hold one.
	// TTL bounds any ping-pong between unsynced replicas.
	for _, t := range n.replicaTargets(owner) {
		if t != n.id && !n.isDown(t) {
			fq := *q
			fq.TTL--
			n.sendTo(n.members[t], kindQuery, &fq)
			return
		}
	}
	n.returnDrop(q, q.Credit, "owner down, no live replica")
}

// decompose runs the surrogate-refinement decomposition (Algorithm 5)
// of q at surrogate's ring position: keys of the region's cuboid at or
// below the surrogate's virtual id belong to the surrogate, and every
// maximal sub-cuboid above it (one per zero bit past the prefix) is
// clipped to the query cube and routed to its own owner. answer
// receives the local share. Normally surrogate is this node; when a
// down owner's shard is answered from a replica copy, the copy's
// holder decomposes at the owner's position so the routing is
// unchanged.
//
//lint:context executor
func (n *Node) decompose(q *queryMsg, surrogate uint64, answer func(*queryMsg)) {
	part := n.data.Part()
	vid := part.Unring(lph.Key(surrogate))
	var subs []query.Region
	if lph.SamePrefix(q.Region.PreKey, vid, q.Region.PreLen) {
		for z := lph.FirstZeroBitAfter(vid, q.Region.PreLen); z != 0; z = lph.FirstZeroBitAfter(vid, z) {
			upper := lph.SetBit(lph.Prefix(vid, z-1), z)
			if sub, ok := query.Restrict(part, q.Region, upper, z); ok {
				subs = append(subs, sub)
			}
		}
	}
	shares := splitCredit(q.Credit, len(subs)+1)
	if shares == nil {
		n.returnDrop(q, q.Credit, "credit exhausted")
		return
	}
	for i, sub := range subs {
		sq := *q
		sq.Region = sub
		sq.Credit = shares[i+1]
		sq.TTL = q.TTL - 1
		n.process(&sq)
	}
	lq := *q
	lq.Credit = shares[0]
	answer(&lq)
}

// splitCredit divides credit into parts shares that sum exactly to
// credit, each positive. nil when the credit cannot cover the parts.
func splitCredit(credit uint64, parts int) []uint64 {
	if parts <= 0 || credit < uint64(parts) {
		return nil
	}
	base := credit / uint64(parts)
	shares := make([]uint64, parts)
	for i := range shares {
		shares[i] = base
	}
	shares[0] += credit % uint64(parts)
	return shares
}

// answerLocal resolves one region against the owned slice of the
// corpus — cube scan, then exact-distance refinement — and returns the
// entries with the region's credit share to the origin. Over-coverage
// under membership-view skew is harmless: the origin merges per
// object.
func (n *Node) answerLocal(q *queryMsg) {
	eval, err := n.data.Evaluator(q.QObj)
	if err != nil {
		n.returnDrop(q, q.Credit, "bad query object")
		return
	}
	var ents []ResultEntry
	for _, i := range n.owned {
		if _, dead := n.tombs[int32(i)]; dead {
			continue
		}
		if !q.Region.Contains(n.data.Point(i)) {
			continue
		}
		if d := eval(i); d <= q.R {
			ents = append(ents, ResultEntry{Obj: int32(i), Dist: d})
		}
	}
	if len(n.extras) > 0 {
		dist, derr := n.data.Dister(q.QObj)
		if derr != nil {
			n.returnDrop(q, q.Credit, "bad query object")
			return
		}
		for id, e := range n.extras { //lint:allow maporder origin merges per object; entry order in a result frame is irrelevant
			if !q.Region.Contains(e.point) {
				continue
			}
			if d, err := dist(e.obj); err == nil && d <= q.R {
				ents = append(ents, ResultEntry{Obj: id, Dist: d})
			}
		}
	}
	n.sendResult(q, ents)
}

// answerFromCopy resolves one region of a down owner against this
// node's synced copy: the same cube scan and exact-distance refinement
// as answerLocal, over the copy's self-describing entries.
//
//lint:context executor
func (n *Node) answerFromCopy(q *queryMsg, c *replicaCopy) {
	dist, err := n.data.Dister(q.QObj)
	if err != nil {
		n.returnDrop(q, q.Credit, "bad query object")
		return
	}
	var ents []ResultEntry
	for id, e := range c.entries { //lint:allow maporder origin merges per object; entry order in a result frame is irrelevant
		if !q.Region.Contains(e.point) {
			continue
		}
		d, err := dist(e.obj)
		if err != nil {
			n.returnDrop(q, q.Credit, "undecodable replica entry")
			return
		}
		if d <= q.R {
			ents = append(ents, ResultEntry{Obj: id, Dist: d})
		}
	}
	n.sendResult(q, ents)
}

// sendResult returns one answered shard's entries and credit share to
// the origin.
func (n *Node) sendResult(q *queryMsg, ents []ResultEntry) {
	if q.Origin == n.id {
		n.onReturn(q.Epoch, q.QID, q.Credit, ents, false)
		return
	}
	n.sendTo(q.OriginAddr, kindResult, resultMsg{Epoch: q.Epoch, QID: q.QID, Credit: q.Credit, From: n.id, Entries: ents})
}

// returnDrop sends a region's credit home unanswered.
func (n *Node) returnDrop(q *queryMsg, credit uint64, reason string) {
	if q.Origin == n.id {
		n.onReturn(q.Epoch, q.QID, credit, nil, true)
		return
	}
	n.sendTo(q.OriginAddr, kindDrop, dropMsg{Epoch: q.Epoch, QID: q.QID, Credit: credit, From: n.id, Reason: reason})
}

// onReturn books one credit share coming home (executor only). Late
// frames for finished or expired queries are ignored — their qid is
// gone from the table — and frames addressed to a previous process
// incarnation (epoch mismatch after a restart reset the qid counter)
// are discarded before they can corrupt an unrelated query.
//
//lint:context executor
func (n *Node) onReturn(epoch, qid, credit uint64, ents []ResultEntry, isDrop bool) {
	if epoch != n.epoch {
		return
	}
	oq := n.queries[qid]
	if oq == nil {
		return
	}
	if isDrop {
		oq.dropped += credit
		oq.droppedCnt++
	} else {
		oq.returned += credit
		for _, e := range ents {
			if d, ok := oq.results[e.Obj]; !ok || e.Dist < d {
				oq.results[e.Obj] = e.Dist
			}
		}
	}
	if oq.returned+oq.dropped >= oq.total {
		n.finishQuery(oq, oq.dropped == 0 && oq.returned == oq.total)
	}
}

// expire finishes a query whose deadline fired before all credit came
// home: the results so far are a correct subset, reported incomplete.
//
//lint:context executor
func (n *Node) expire(qid uint64) {
	oq := n.queries[qid]
	if oq == nil {
		return
	}
	n.finishQuery(oq, false)
}

// finishQuery completes one query exactly once: stop the deadline,
// drop the origin state, deliver merged entries sorted by object.
func (n *Node) finishQuery(oq *originQuery, complete bool) {
	oq.deadline.Stop()
	delete(n.queries, oq.qid)
	entries := make([]ResultEntry, 0, len(oq.results))
	for obj, d := range oq.results { //lint:allow maporder sorted immediately below
		entries = append(entries, ResultEntry{Obj: obj, Dist: d})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Obj < entries[j].Obj })
	oq.done(QueryOutcome{Complete: complete, Dropped: oq.droppedCnt, Entries: entries}, nil)
}
