package netrt

import (
	"sort"
	"time"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
	"landmarkdht/internal/runtime"
)

// creditTotal is a query's initial credit. Credit is conserved: every
// split divides it into shares that sum exactly, and every share comes
// home in a Result or Drop frame — when returned+dropped equals the
// total, the query has terminated. 2⁶² leaves 62 halvings before a
// share could hit zero; real decompositions split a few dozen times.
const creditTotal = uint64(1) << 62

// originQuery is the origin-side state of one running query.
type originQuery struct {
	qid        uint64
	total      uint64
	returned   uint64
	dropped    uint64
	droppedCnt int
	results    map[int32]float64
	deadline   runtime.Timer
	done       func(QueryOutcome, error)
}

// QueryOutcome is a finished query. Complete ⇒ Entries is the exact
// range-query answer over the corpus; otherwise it is an honest subset
// and Dropped counts the region shards lost for good.
type QueryOutcome struct {
	Complete bool
	Dropped  int
	Entries  []ResultEntry
}

// startQuery begins a query at this node (executor only). done fires
// exactly once, on the executor, when all credit is home or the
// deadline expires.
//
//lint:context executor
func (n *Node) startQuery(qobj []byte, r float64, done func(QueryOutcome, error)) {
	reg, err := n.data.QueryRegion(qobj, r)
	if err != nil {
		done(QueryOutcome{}, err)
		return
	}
	n.nextQID++
	qid := n.nextQID
	oq := &originQuery{
		qid:     qid,
		total:   creditTotal,
		results: make(map[int32]float64),
		done:    done,
	}
	n.queries[qid] = oq
	oq.deadline = n.rt.AfterFunc(n.cfg.Deadline, func() { n.expire(qid) })
	n.process(&queryMsg{
		Origin: n.id, OriginAddr: n.addr, Epoch: n.epoch, QID: qid,
		Credit: creditTotal, Region: reg, QObj: qobj, R: r, TTL: n.cfg.TTL,
	})
}

// Query runs one range query from this node and blocks until it
// finishes or timeout elapses. Safe from any goroutine.
func (n *Node) Query(qobj []byte, r float64, timeout time.Duration) (QueryOutcome, error) {
	var out QueryOutcome
	var qerr error
	err := n.rt.Await(timeout, func(finish func()) error {
		n.startQuery(qobj, r, func(o QueryOutcome, err error) {
			out, qerr = o, err
			finish()
		})
		return nil
	})
	if err != nil {
		return out, err
	}
	return out, qerr
}

// process executes one subquery step at this node (executor only): the
// port of the routing half of the protocol to direct-to-owner routing.
// With a full membership view the ring is permanently "stabilized", so
// instead of Chord hops the region goes straight to the successor of
// its key span; the surrogate-refinement decomposition (Algorithm 5)
// is unchanged from the in-process runtimes.
//
//lint:context executor
func (n *Node) process(q *queryMsg) {
	if q.TTL <= 0 {
		// Forwarding did not converge (membership views disagree under
		// churn). Return the credit as dropped: the origin terminates
		// honestly instead of hanging until the deadline.
		n.returnDrop(q, q.Credit, "ttl exhausted")
		return
	}
	lo, _ := lph.CuboidSpan(q.Region.PreKey, q.Region.PreLen)
	owner := n.successor(uint64(n.data.Part().Ring(lo)))
	if owner != n.id {
		fq := *q
		fq.TTL--
		n.sendTo(n.members[owner], kindQuery, &fq)
		return
	}
	// This node is the surrogate: keys of the region's cuboid at or
	// below vid are owned here; every maximal sub-cuboid above vid (one
	// per zero bit of vid past the prefix) is clipped to the query cube
	// and forwarded to its own owner.
	part := n.data.Part()
	vid := part.Unring(lph.Key(n.id))
	var subs []query.Region
	if lph.SamePrefix(q.Region.PreKey, vid, q.Region.PreLen) {
		for z := lph.FirstZeroBitAfter(vid, q.Region.PreLen); z != 0; z = lph.FirstZeroBitAfter(vid, z) {
			upper := lph.SetBit(lph.Prefix(vid, z-1), z)
			if sub, ok := query.Restrict(part, q.Region, upper, z); ok {
				subs = append(subs, sub)
			}
		}
	}
	shares := splitCredit(q.Credit, len(subs)+1)
	if shares == nil {
		n.returnDrop(q, q.Credit, "credit exhausted")
		return
	}
	for i, sub := range subs {
		sq := *q
		sq.Region = sub
		sq.Credit = shares[i+1]
		sq.TTL = q.TTL - 1
		n.process(&sq)
	}
	lq := *q
	lq.Credit = shares[0]
	n.answerLocal(&lq)
}

// splitCredit divides credit into parts shares that sum exactly to
// credit, each positive. nil when the credit cannot cover the parts.
func splitCredit(credit uint64, parts int) []uint64 {
	if parts <= 0 || credit < uint64(parts) {
		return nil
	}
	base := credit / uint64(parts)
	shares := make([]uint64, parts)
	for i := range shares {
		shares[i] = base
	}
	shares[0] += credit % uint64(parts)
	return shares
}

// answerLocal resolves one region against the owned slice of the
// corpus — cube scan, then exact-distance refinement — and returns the
// entries with the region's credit share to the origin. Over-coverage
// under membership-view skew is harmless: the origin merges per
// object.
func (n *Node) answerLocal(q *queryMsg) {
	eval, err := n.data.Evaluator(q.QObj)
	if err != nil {
		n.returnDrop(q, q.Credit, "bad query object")
		return
	}
	var ents []ResultEntry
	for _, i := range n.owned {
		if !q.Region.Contains(n.data.Point(i)) {
			continue
		}
		if d := eval(i); d <= q.R {
			ents = append(ents, ResultEntry{Obj: int32(i), Dist: d})
		}
	}
	if q.Origin == n.id {
		n.onReturn(q.Epoch, q.QID, q.Credit, ents, false)
		return
	}
	n.sendTo(q.OriginAddr, kindResult, resultMsg{Epoch: q.Epoch, QID: q.QID, Credit: q.Credit, From: n.id, Entries: ents})
}

// returnDrop sends a region's credit home unanswered.
func (n *Node) returnDrop(q *queryMsg, credit uint64, reason string) {
	if q.Origin == n.id {
		n.onReturn(q.Epoch, q.QID, credit, nil, true)
		return
	}
	n.sendTo(q.OriginAddr, kindDrop, dropMsg{Epoch: q.Epoch, QID: q.QID, Credit: credit, From: n.id, Reason: reason})
}

// onReturn books one credit share coming home (executor only). Late
// frames for finished or expired queries are ignored — their qid is
// gone from the table — and frames addressed to a previous process
// incarnation (epoch mismatch after a restart reset the qid counter)
// are discarded before they can corrupt an unrelated query.
//
//lint:context executor
func (n *Node) onReturn(epoch, qid, credit uint64, ents []ResultEntry, isDrop bool) {
	if epoch != n.epoch {
		return
	}
	oq := n.queries[qid]
	if oq == nil {
		return
	}
	if isDrop {
		oq.dropped += credit
		oq.droppedCnt++
	} else {
		oq.returned += credit
		for _, e := range ents {
			if d, ok := oq.results[e.Obj]; !ok || e.Dist < d {
				oq.results[e.Obj] = e.Dist
			}
		}
	}
	if oq.returned+oq.dropped >= oq.total {
		n.finishQuery(oq, oq.dropped == 0 && oq.returned == oq.total)
	}
}

// expire finishes a query whose deadline fired before all credit came
// home: the results so far are a correct subset, reported incomplete.
//
//lint:context executor
func (n *Node) expire(qid uint64) {
	oq := n.queries[qid]
	if oq == nil {
		return
	}
	n.finishQuery(oq, false)
}

// finishQuery completes one query exactly once: stop the deadline,
// drop the origin state, deliver merged entries sorted by object.
func (n *Node) finishQuery(oq *originQuery, complete bool) {
	oq.deadline.Stop()
	delete(n.queries, oq.qid)
	entries := make([]ResultEntry, 0, len(oq.results))
	for obj, d := range oq.results { //lint:allow maporder sorted immediately below
		entries = append(entries, ResultEntry{Obj: obj, Dist: d})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Obj < entries[j].Obj })
	oq.done(QueryOutcome{Complete: complete, Dropped: oq.droppedCnt, Entries: entries}, nil)
}
