package netrt

import (
	"math/rand"
	"testing"
	"time"
)

// A second openDurable on the same directory must restore the corpus
// bit-for-bit — same signature, keys, points — without regenerating
// it, for both metrics.
func TestDurableCorpusRoundTrip(t *testing.T) {
	for _, cfg := range []DataConfig{
		{Metric: "euclid", Seed: 11, Objects: 512, Dim: 3, Landmarks: 4},
		{Metric: "edit", Seed: 3, Objects: 256, Landmarks: 4},
	} {
		dir := t.TempDir()
		built, st1, recovered, _, _, err := openDurable(dir, cfg)
		if err != nil {
			t.Fatalf("%s first boot: %v", cfg.Metric, err)
		}
		if err := st1.Close(); err != nil {
			t.Fatal(err)
		}
		if recovered {
			t.Fatalf("%s: first boot on an empty dir claims recovery", cfg.Metric)
		}
		restored, st2, recovered, replayed, _, err := openDurable(dir, cfg)
		if err != nil {
			t.Fatalf("%s recovery: %v", cfg.Metric, err)
		}
		if !recovered {
			t.Fatalf("%s: second boot did not recover from disk", cfg.Metric)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
		// meta + landmarks + entries, all snapshotted at first boot.
		if want := 1 + 4 + cfg.Objects; replayed != want {
			t.Fatalf("%s: replayed %d records, want %d", cfg.Metric, replayed, want)
		}
		if built.Sig() != restored.Sig() {
			t.Fatalf("%s: signature changed across recovery", cfg.Metric)
		}
		if built.N() != restored.N() {
			t.Fatalf("%s: N %d -> %d", cfg.Metric, built.N(), restored.N())
		}
		for i := 0; i < built.N(); i++ {
			if built.Key(i) != restored.Key(i) {
				t.Fatalf("%s: entry %d key changed", cfg.Metric, i)
			}
			bp, rp := built.Point(i), restored.Point(i)
			if len(bp) != len(rp) {
				t.Fatalf("%s: entry %d point dim changed", cfg.Metric, i)
			}
			for j := range bp {
				if bp[j] != rp[j] {
					t.Fatalf("%s: entry %d point diverged", cfg.Metric, i)
				}
			}
		}
		// Exact refinement must see the same objects: distances from a
		// random query object agree everywhere.
		rng := rand.New(rand.NewSource(7))
		qobj := built.RandomQuery(rng)
		be, err := built.Evaluator(qobj)
		if err != nil {
			t.Fatal(err)
		}
		re, err := restored.Evaluator(qobj)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < built.N(); i++ {
			if be(i) != re(i) {
				t.Fatalf("%s: entry %d distance diverged after recovery", cfg.Metric, i)
			}
		}
	}
}

// Pointing a node at a directory built for a different corpus must
// fail loudly, never silently rebuild.
func TestDurableConfigMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := testData()
	_, st, _, _, _, err := openDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 999
	if _, _, _, _, _, err := openDurable(dir, other); err == nil {
		t.Fatal("openDurable accepted a directory built for a different seed")
	}
}

// A node restarted on the same address with the same data directory
// must recover its corpus from the WAL (Recovered=true, visible over
// the client protocol too) and answer exactly again.
func TestDurableNodeRestartRecovers(t *testing.T) {
	data := testData()
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	nodes := make([]*Node, 3)
	for i := range nodes {
		cfg := testConfig(data)
		cfg.DataDir = dirs[i]
		if i > 0 {
			cfg.Join = []string{nodes[0].Addr()}
		}
		n, err := Start(cfg)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		if n.Recovered() {
			t.Fatalf("node %d claims recovery on first boot", i)
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	waitConverged(t, nodes, 3)

	victim := nodes[2]
	addr := victim.Addr()
	victim.Close()
	nodes[2] = nil

	cfg := testConfig(data, nodes[0].Addr())
	cfg.Listen = addr
	cfg.DataDir = dirs[2]
	restarted, err := Start(cfg)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	nodes[2] = restarted
	if !restarted.Recovered() {
		t.Fatal("restarted node did not recover from its data dir")
	}
	if restarted.replayed == 0 {
		t.Fatal("recovery replayed zero records")
	}
	waitConverged(t, nodes, 3)

	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, err := c.Info(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered || info.Replayed == 0 {
		t.Fatalf("client info does not report recovery: %+v", info)
	}

	// Post-recovery answers must converge back to Complete ∧ exact.
	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	waitFor(t, 20*time.Second, func() bool {
		qobj := ds.RandomQuery(rng)
		r := 0.25 + 0.2*rng.Float64()
		out, err := nodes[0].Query(qobj, r, 5*time.Second)
		if err != nil || !out.Complete {
			return false
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(out.Entries, want) {
			t.Fatalf("complete-but-wrong after durable recovery: got %d want %d", len(out.Entries), len(want))
		}
		return true
	})
}
