package netrt

import (
	"math/rand"
	"testing"
	"time"

	"landmarkdht/internal/runtime"
)

func testData() DataConfig {
	return DataConfig{Metric: "euclid", Seed: 11, Objects: 512, Dim: 3, Landmarks: 4}
}

func testConfig(data DataConfig, join ...string) Config {
	return Config{
		Listen:       "127.0.0.1:0",
		Join:         join,
		Data:         data,
		Deadline:     2 * time.Second,
		GossipPeriod: 100 * time.Millisecond,
	}
}

func startRing(t *testing.T, size int, data DataConfig) []*Node {
	t.Helper()
	nodes := make([]*Node, size)
	first, err := Start(testConfig(data))
	if err != nil {
		t.Fatalf("start first node: %v", err)
	}
	nodes[0] = first
	for i := 1; i < size; i++ {
		n, err := Start(testConfig(data, first.Addr()))
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	waitConverged(t, nodes, size)
	return nodes
}

func waitConverged(t *testing.T, nodes []*Node, want int) {
	t.Helper()
	waitFor(t, 15*time.Second, func() bool {
		for _, n := range nodes {
			if n != nil && len(n.snapshot()) < want {
				return false
			}
		}
		return true
	})
}

func sameIDs(a, b []ResultEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Obj != b[i].Obj {
			return false
		}
	}
	return true
}

func subsetIDs(sub, super []ResultEntry) bool {
	have := make(map[int32]bool, len(super))
	for _, e := range super {
		have[e.Obj] = true
	}
	for _, e := range sub {
		if !have[e.Obj] {
			return false
		}
	}
	return true
}

// TestRingExactQueries boots a 4-node localhost ring and checks
// Complete ⇒ exact against brute force, querying every node.
func TestRingExactQueries(t *testing.T) {
	data := testData()
	nodes := startRing(t, 4, data)
	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 12; i++ {
		qobj := ds.RandomQuery(rng)
		r := 0.2 + 0.3*rng.Float64()
		out, err := nodes[i%len(nodes)].Query(qobj, r, 5*time.Second)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !out.Complete {
			t.Fatalf("query %d incomplete on a healthy ring (dropped %d)", i, out.Dropped)
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(out.Entries, want) {
			t.Fatalf("query %d: got %d entries, brute force %d", i, len(out.Entries), len(want))
		}
	}
}

// TestRingClientProtocol exercises the TCP client path: handshake,
// info, concurrent queries.
func TestRingClientProtocol(t *testing.T) {
	data := testData()
	nodes := startRing(t, 3, data)
	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(nodes[1].Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, err := c.Info(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != nodes[1].ID() || len(info.Members) != 3 {
		t.Fatalf("info = %+v", info)
	}
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5; i++ {
				qobj := ds.RandomQuery(rng)
				r := 0.2 + 0.3*rng.Float64()
				out, err := c.Query(qobj, r, 5*time.Second)
				if err != nil {
					errs <- err
					return
				}
				want, err := ds.BruteForce(qobj, r)
				if err != nil {
					errs <- err
					return
				}
				if out.Complete && !sameIDs(out.Entries, want) {
					errs <- errMismatch
					return
				}
			}
			errs <- nil
		}(int64(g) + 1)
	}
	for g := 0; g < 4; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "complete result does not match brute force" }

// TestRingSurvivesKillRestart kills a member (its entries become
// unreachable: queries stay honest), restarts it on the same address,
// and requires post-recovery queries to be Complete and exact again.
func TestRingSurvivesKillRestart(t *testing.T) {
	data := testData()
	nodes := startRing(t, 4, data)
	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))

	victim := nodes[2]
	addr := victim.Addr()
	victim.Close()
	nodes[2] = nil

	// While the member is down, answers must stay honest: complete
	// results exact, incomplete ones a subset.
	for i := 0; i < 3; i++ {
		qobj := ds.RandomQuery(rng)
		r := 0.25 + 0.2*rng.Float64()
		out, err := nodes[0].Query(qobj, r, 5*time.Second)
		if err != nil {
			t.Fatalf("query with dead member: %v", err)
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if out.Complete {
			if !sameIDs(out.Entries, want) {
				t.Fatalf("complete-but-wrong with dead member: got %d want %d", len(out.Entries), len(want))
			}
		} else if !subsetIDs(out.Entries, want) {
			t.Fatalf("incomplete result is not a subset")
		}
	}

	// Restart on the same address: same node ID, same ownership. The
	// survivors' links redial on demand; gossip restores its view.
	cfg := testConfig(data, nodes[0].Addr())
	cfg.Listen = addr
	restarted, err := Start(cfg)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	nodes[2] = restarted
	if restarted.ID() != NodeID(addr) {
		t.Fatalf("restarted node changed identity")
	}
	waitConverged(t, nodes, 4)

	// Post-recovery queries must converge back to Complete ∧ exact.
	// Allow a few attempts while links re-establish.
	waitFor(t, 20*time.Second, func() bool {
		qobj := ds.RandomQuery(rng)
		r := 0.25 + 0.2*rng.Float64()
		out, err := nodes[0].Query(qobj, r, 5*time.Second)
		if err != nil {
			return false
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Complete {
			return false
		}
		if !sameIDs(out.Entries, want) {
			t.Fatalf("complete-but-wrong after recovery: got %d want %d", len(out.Entries), len(want))
		}
		return true
	})
}

// TestEditMetricRing runs the second metric end to end: exactness is
// metric-independent.
func TestEditMetricRing(t *testing.T) {
	data := DataConfig{Metric: "edit", Seed: 3, Objects: 256, Landmarks: 4}
	nodes := startRing(t, 2, data)
	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5; i++ {
		qobj := ds.RandomQuery(rng)
		r := float64(1 + rng.Intn(3))
		out, err := nodes[i%2].Query(qobj, r, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Complete {
			t.Fatalf("incomplete on a healthy 2-node ring")
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(out.Entries, want) {
			t.Fatalf("edit query %d: got %d entries, brute force %d", i, len(out.Entries), len(want))
		}
	}
}

// TestLinkFaultInjection drives the ring through the shared
// runtime.FaultPolicy path (the same LinkFaults livert uses): frames
// must actually drop, and every answer must stay honest — complete
// results exact, incomplete ones a subset.
func TestLinkFaultInjection(t *testing.T) {
	data := testData()
	cfg := testConfig(data)
	cfg.Faults = &runtime.FaultPolicy{FrameDrop: 0.25, Seed: 5}
	cfg.Deadline = time.Second
	first, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	cfg2 := testConfig(data, first.Addr())
	cfg2.Faults = cfg.Faults
	cfg2.Deadline = time.Second
	second, err := Start(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	waitConverged(t, []*Node{first, second}, 2)

	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 10; i++ {
		qobj := ds.RandomQuery(rng)
		r := 0.2 + 0.3*rng.Float64()
		out, err := first.Query(qobj, r, 3*time.Second)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if out.Complete {
			if !sameIDs(out.Entries, want) {
				t.Fatalf("query %d: complete but inexact under frame drops", i)
			}
		} else if !subsetIDs(out.Entries, want) {
			t.Fatalf("query %d: incomplete result is not a subset", i)
		}
	}
	dropped := first.Stats().FramesDropped + second.Stats().FramesDropped
	if dropped == 0 {
		t.Fatal("FrameDrop 0.25 set but no frame was dropped")
	}
}

// TestCorpusSignatureMismatch: nodes built from different seeds must
// refuse to link.
func TestCorpusSignatureMismatch(t *testing.T) {
	a, err := Start(testConfig(testData()))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	other := testData()
	other.Seed = 999
	b, err := Start(testConfig(other, a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	time.Sleep(500 * time.Millisecond)
	if len(a.snapshot()) != 1 || len(b.snapshot()) != 1 {
		t.Fatalf("mismatched corpora linked anyway: a=%d b=%d members", len(a.snapshot()), len(b.snapshot()))
	}
}

// TestSplitCredit pins credit conservation.
func TestSplitCredit(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 7, 64} {
		shares := splitCredit(creditTotal, parts)
		if len(shares) != parts {
			t.Fatalf("parts=%d: %d shares", parts, len(shares))
		}
		var sum uint64
		for _, s := range shares {
			if s == 0 {
				t.Fatalf("parts=%d: zero share", parts)
			}
			sum += s
		}
		if sum != creditTotal {
			t.Fatalf("parts=%d: shares sum %d, want %d", parts, sum, creditTotal)
		}
	}
	if splitCredit(3, 5) != nil {
		t.Fatal("underfunded split must return nil")
	}
	if splitCredit(10, 0) != nil {
		t.Fatal("zero parts must return nil")
	}
}
