package netrt

import (
	"math/rand"
	"testing"
	"time"
)

func hasID(ents []ResultEntry, id int32) bool {
	for _, e := range ents {
		if e.Obj == id {
			return true
		}
	}
	return false
}

// completeQuery runs one query and requires a Complete answer.
func completeQuery(t *testing.T, n *Node, qobj []byte, r float64) []ResultEntry {
	t.Helper()
	out, err := n.Query(qobj, r, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("query incomplete on a healthy ring (dropped %d)", out.Dropped)
	}
	return out.Entries
}

// TestPublishDeleteQueryable publishes an object through a node that is
// usually not its owner, checks it is found exactly at distance zero
// alongside the untouched boot corpus, then deletes it — and a boot
// entry — and checks both vanish from exact answers.
func TestPublishDeleteQueryable(t *testing.T) {
	data := testData()
	nodes := startReplicatedRing(t, 3, 1, data)
	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}

	obj := EncodeVectorQuery([]float64{0.31, 0.62, 0.47})
	const pubID = int32(10_000)
	if err := nodes[0].Publish(pubID, obj, 5*time.Second); err != nil {
		t.Fatalf("publish: %v", err)
	}
	// Publishing an id that collides with the boot corpus must refuse.
	if err := nodes[1].Publish(3, obj, 5*time.Second); err == nil {
		t.Fatal("publish accepted a boot-corpus id")
	}

	r := 0.15
	want, err := ds.BruteForce(obj, r)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		ents := completeQuery(t, n, obj, r)
		if !hasID(ents, pubID) {
			t.Fatalf("node %d: published entry missing from its own neighborhood", i)
		}
		if len(ents) != len(want)+1 || !subsetIDs(want, ents) {
			t.Fatalf("node %d: got %d entries, want boot %d + published", i, len(ents), len(want))
		}
	}

	// Delete the published entry (by id + object bytes) and one boot
	// entry (by id alone); both must leave exact answers.
	if err := nodes[1].Delete(pubID, obj, 5*time.Second); err != nil {
		t.Fatalf("delete published: %v", err)
	}
	if !sameIDs(completeQuery(t, nodes[2], obj, r), want) {
		t.Fatal("published entry still answered after delete")
	}

	const bootID = int32(7)
	if err := nodes[2].Delete(bootID, nil, 5*time.Second); err != nil {
		t.Fatalf("delete boot entry: %v", err)
	}
	rng := rand.New(rand.NewSource(31))
	// Find a query whose brute-force answer includes the deleted boot
	// entry and check the ring answers exactly that minus the tombstone.
	for tries := 0; ; tries++ {
		if tries > 200 {
			t.Fatal("no random query covered the deleted boot entry")
		}
		qobj := ds.RandomQuery(rng)
		qr := 0.3 + 0.2*rng.Float64()
		bf, err := ds.BruteForce(qobj, qr)
		if err != nil {
			t.Fatal(err)
		}
		if !hasID(bf, bootID) {
			continue
		}
		ents := completeQuery(t, nodes[tries%3], qobj, qr)
		if hasID(ents, bootID) {
			t.Fatal("deleted boot entry still answered")
		}
		if len(ents) != len(bf)-1 || !subsetIDs(ents, bf) {
			t.Fatalf("tombstoned answer diverged: got %d entries, brute force %d", len(ents), len(bf))
		}
		return
	}
}

// TestClientMutations drives Publish/Delete over the client protocol.
func TestClientMutations(t *testing.T) {
	data := testData()
	nodes := startReplicatedRing(t, 2, 1, data)
	c, err := Dial(nodes[0].Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj := EncodeVectorQuery([]float64{0.82, 0.11, 0.55})
	const id = int32(20_000)
	if err := c.Publish(id, obj, 5*time.Second); err != nil {
		t.Fatalf("client publish: %v", err)
	}
	out, err := c.Query(obj, 0.05, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || !hasID(out.Entries, id) {
		t.Fatalf("client query missed the published entry: %+v", out)
	}
	info, err := c.Info(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replicas != 1 {
		t.Fatalf("info reports %d replicas, want 1", info.Replicas)
	}
	if err := c.Delete(id, obj, 5*time.Second); err != nil {
		t.Fatalf("client delete: %v", err)
	}
	out, err = c.Query(obj, 0.05, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if hasID(out.Entries, id) {
		t.Fatal("client delete did not take effect")
	}
}

// TestDurableMutationReplay is the incremental-WAL contract: online
// mutations append records (never recompact the snapshot), and a
// restart replays them on top of the recovered corpus.
func TestDurableMutationReplay(t *testing.T) {
	data := testData()
	dir := t.TempDir()
	cfg := testConfig(data)
	cfg.DataDir = dir
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := n.Addr()

	obj1 := EncodeVectorQuery([]float64{0.21, 0.42, 0.63})
	obj2 := EncodeVectorQuery([]float64{0.91, 0.13, 0.37})
	if err := n.Publish(10_000, obj1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := n.Publish(10_001, obj2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete(10_001, obj2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete(7, nil, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	n.Close()

	cfg2 := testConfig(data)
	cfg2.Listen = addr
	cfg2.DataDir = dir
	n2, err := Start(cfg2)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer n2.Close()
	if !n2.Recovered() {
		t.Fatal("restart did not recover from the data dir")
	}
	// Snapshot (meta + landmarks + objects) plus exactly the four
	// mutation records appended online — incremental, not recompacted.
	base := 1 + data.Landmarks + data.Objects
	if n2.replayed != base+4 {
		t.Fatalf("replayed %d records, want snapshot %d + 4 mutations", n2.replayed, base)
	}
	var extras, tombs int
	execRead(t, n2, func() { extras, tombs = len(n2.extras), len(n2.tombs) })
	if extras != 1 || tombs != 1 {
		t.Fatalf("recovered %d extras and %d tombstones, want 1 and 1", extras, tombs)
	}

	ents := completeQuery(t, n2, obj1, 0.05)
	if !hasID(ents, 10_000) {
		t.Fatal("replayed publish not answered after restart")
	}
	if hasID(completeQuery(t, n2, obj2, 0.05), 10_001) {
		t.Fatal("deleted published entry resurrected by replay")
	}
	ds, err := BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for tries := 0; ; tries++ {
		if tries > 200 {
			t.Fatal("no random query covered the deleted boot entry")
		}
		qobj := ds.RandomQuery(rng)
		r := 0.3 + 0.2*rng.Float64()
		bf, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if !hasID(bf, 7) {
			continue
		}
		if hasID(completeQuery(t, n2, qobj, r), 7) {
			t.Fatal("boot tombstone lost across restart")
		}
		return
	}
}
