// Package runtime defines the execution seams that separate the
// protocol layers (internal/chord, internal/core) from how they are
// driven. The paper's protocol logic — query routing, surrogate
// refinement, reliable delivery, replication, load migration — is
// written against two narrow interfaces:
//
//   - Clock: the time seam (now / schedule / cancellable timers).
//   - Transport: the messaging seam (move one message to a node and run
//     its delivery callback on that node's execution context).
//
// Two implementations exist:
//
//   - runtime/simrt wraps a sim.Engine: virtual time, deterministic
//     event ordering, zero-allocation scheduling. Every existing
//     simulation and experiment runs through it unchanged.
//   - runtime/livert runs the same protocol code in real time over real
//     in-process connections (net.Pipe), with per-node inbox goroutines
//     and time.Timer-backed retries, serving concurrent queries.
//
// Protocol code stays single-threaded by contract in both runtimes: a
// callback runs to completion before the next one starts (the sim
// engine is single-threaded; the live runtime serializes callbacks on
// one protocol goroutine while its transport and timers run
// concurrently). That contract is what cmd/lmlint's analyzers enforce
// for the engine-owned packages.
package runtime

import (
	"math/rand"
	"time"
)

// Timer is a cancellable one-shot event, the building block for
// retransmission timeouts: arm it when a message leaves, stop it when
// the acknowledgement arrives. A stopped timer's callback never runs.
type Timer interface {
	// Stop cancels the timer if it has not fired yet. Idempotent.
	Stop()
	// Stopped reports whether the timer has fired or been cancelled.
	Stopped() bool
}

// Clock is the time seam. Simulated clocks advance virtually and
// deliver callbacks in deterministic order; a live clock is anchored to
// the wall clock and delivers callbacks on the runtime's protocol
// goroutine.
type Clock interface {
	// Now returns the time elapsed since the runtime started.
	Now() time.Duration
	// Schedule runs fn after delay. A non-positive delay runs fn as the
	// next available event, never synchronously inside Schedule.
	Schedule(delay time.Duration, fn func())
	// ScheduleArg runs fn(arg) after delay. It is the allocation-free
	// alternative to Schedule for hot paths: fn is a prebound function
	// and arg carries the per-event state, so no closure is needed.
	ScheduleArg(delay time.Duration, fn func(any), arg any)
	// AfterFunc schedules fn to run once after delay and returns a
	// handle that can cancel it.
	AfterFunc(delay time.Duration, fn func()) Timer
}

// Runtime is what protocol code holds: the clock plus the random
// source every probabilistic decision (fault draws, timer
// desynchronization offsets) must come from. In the simulated runtime
// the source is the engine's seeded RNG, which is what makes trials
// reproducible; the live runtime seeds its own source and only touches
// it from the protocol goroutine.
type Runtime interface {
	Clock
	// Rand returns the runtime's random source. It must only be used
	// from protocol callbacks (the source is not concurrency-safe).
	Rand() *rand.Rand
}

// Transport is the messaging seam. The overlay (chord.Network) decides
// everything about a message — destination, modeled latency, fault
// injection, liveness at delivery time — and the transport only moves
// it: deliver(arg) must run on the destination's protocol execution
// context no earlier than delay from now.
//
// payload, when non-nil, is the message's wire encoding: a live
// transport ships exactly those bytes over the destination node's
// connection; the simulated transport has already charged their size
// and ignores the content. deliver/arg mirror Clock.ScheduleArg so the
// per-message hot path allocates no closures.
//
// Send never fails synchronously. Loss is modeled above the transport
// (fault plans, delivery-time liveness checks in the overlay), so a
// transport that cannot reach the node's inbox still runs deliver —
// the overlay's own checks then turn the delivery into a failure.
type Transport interface {
	Send(to uint64, delay time.Duration, payload []byte, deliver func(any), arg any)
}

// Sharder is implemented by runtimes that spread per-node work across
// several executor goroutines. The protocol executor remains the only
// context that touches shared protocol state (query bookkeeping,
// traffic counters, the RNG); a sharder only takes over work that is
// confined to one node's own data — its index stores — and every node
// hashes to exactly one shard, so a node's data keeps the
// single-goroutine contract.
type Sharder interface {
	// ExecShard runs work on the shard executor owning key, then runs
	// done (if non-nil) back on the protocol executor. A runtime with
	// no extra shard executors runs both synchronously, in order, on
	// the calling goroutine. Call only from protocol-executor context.
	ExecShard(key uint64, work, done func())
	// ShardCount reports how many shard executors exist. Zero means
	// node work runs inline on the protocol executor and cross-node
	// state may be touched freely from it.
	ShardCount() int
}

// NodeRegistry is implemented by transports that keep per-node state —
// livert opens one connection and inbox goroutine per node. The
// overlay informs the transport of membership changes; transports
// without per-node state (simrt) simply do not implement it.
type NodeRegistry interface {
	Register(node uint64)
	Unregister(node uint64)
}

// RegisterNode tells tr about a new node if it keeps per-node state.
func RegisterNode(tr Transport, node uint64) {
	if reg, ok := tr.(NodeRegistry); ok {
		reg.Register(node)
	}
}

// UnregisterNode tells tr a node left if it keeps per-node state.
func UnregisterNode(tr Transport, node uint64) {
	if reg, ok := tr.(NodeRegistry); ok {
		reg.Unregister(node)
	}
}

// Ticker repeatedly invokes fn every period until Stop is called. It is
// the building block for protocol maintenance timers (stabilize,
// fix-fingers, load probing) and works over any Clock; the tick
// closure is allocated once per ticker and rescheduling it reuses the
// same function value.
type Ticker struct {
	stopped bool
}

// NewTicker schedules fn every period on c, with the first invocation
// after an initial offset (use offset = period for a plain ticker; a
// random offset desynchronizes node timers). fn runs until Stop.
func NewTicker(c Clock, offset, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("runtime: NewTicker with non-positive period")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if !t.stopped {
			c.Schedule(period, tick)
		}
	}
	c.Schedule(offset, tick)
	return t
}

// Stop cancels future invocations. It is idempotent.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether the ticker has been stopped.
func (t *Ticker) Stopped() bool { return t.stopped }
