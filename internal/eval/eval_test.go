package eval

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"landmarkdht/internal/metric"
)

func TestTopKExact(t *testing.T) {
	data := []metric.Vector{{0}, {1}, {2}, {3}, {10}}
	queries := []metric.Vector{{0.2}, {9}}
	got, err := TopK(data, queries, 2, metric.L2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 0 || got[0][1] != 1 {
		t.Fatalf("query 0 top-2 = %v", got[0])
	}
	if got[1][0] != 4 || got[1][1] != 3 {
		t.Fatalf("query 1 top-2 = %v", got[1])
	}
}

func TestTopKMatchesBruteSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]metric.Vector, 500)
	for i := range data {
		data[i] = metric.Vector{rng.Float64() * 100, rng.Float64() * 100}
	}
	queries := data[:20]
	got, err := TopK(data, queries, 10, metric.L2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		// Brute force.
		type dv struct {
			id int32
			d  float64
		}
		var all []dv
		for i, v := range data {
			all = append(all, dv{int32(i), metric.L2(q, v)})
		}
		// Selection matching TopK's tie-break (distance, then id).
		for i := 0; i < 10; i++ {
			best := i
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[best].d || (all[j].d == all[best].d && all[j].id < all[best].id) {
					best = j
				}
			}
			all[i], all[best] = all[best], all[i]
			if got[qi][i] != all[i].id {
				t.Fatalf("query %d rank %d: got %d want %d", qi, i, got[qi][i], all[i].id)
			}
		}
	}
}

func TestTopKSmallerThanK(t *testing.T) {
	data := []metric.Vector{{0}, {1}}
	got, err := TopK(data, []metric.Vector{{0}}, 10, metric.L2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 2 {
		t.Fatalf("got %d ids, want 2", len(got[0]))
	}
}

func TestTopKValidation(t *testing.T) {
	if _, err := TopK([]metric.Vector{{0}}, nil, 0, metric.L2, 1); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := TopK(nil, nil, 1, metric.L2, 1); err == nil {
		t.Fatal("expected empty-data error")
	}
}

func TestRecall(t *testing.T) {
	if got := Recall([]int32{1, 2, 3, 4}, []int32{2, 4, 9}); got != 0.5 {
		t.Fatalf("recall = %v", got)
	}
	if got := Recall(nil, nil); got != 1 {
		t.Fatalf("empty-truth recall = %v", got)
	}
	if got := Recall([]int32{1}, nil); got != 0 {
		t.Fatalf("miss recall = %v", got)
	}
	if got := Recall([]int32{1, 2}, []int32{1, 2}); got != 1 {
		t.Fatalf("perfect recall = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 || s.Sum != 15 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 {
		t.Fatal("Summarize sorted the caller's slice")
	}
}

func TestDurationsAndInts(t *testing.T) {
	ds := Durations([]time.Duration{time.Second, time.Millisecond})
	if ds[0] != 1000 || ds[1] != 1 {
		t.Fatalf("durations = %v", ds)
	}
	is := Ints([]int{1, 2})
	if is[0] != 1 || is[1] != 2 {
		t.Fatalf("ints = %v", is)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Fatalf("even gini = %v", g)
	}
	skew := Gini([]int{100, 0, 0, 0})
	if skew < 0.7 {
		t.Fatalf("skewed gini = %v, want high", skew)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty gini = %v", g)
	}
	if g := Gini([]int{0, 0}); g != 0 {
		t.Fatalf("zero-load gini = %v", g)
	}
	// Gini is scale-invariant.
	a := Gini([]int{1, 2, 3, 4})
	b := Gini([]int{10, 20, 30, 40})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("gini not scale-invariant: %v vs %v", a, b)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]metric.Vector, 10000)
	for i := range data {
		v := make(metric.Vector, 20)
		for j := range v {
			v[j] = rng.Float64()
		}
		data[i] = v
	}
	queries := data[:16]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopK(data, queries, 10, metric.L2, 0); err != nil {
			b.Fatal(err)
		}
	}
}
