// Package eval provides the measurement side of the paper's §4.1
// evaluation: exact ground truth by brute-force scan (parallelized
// across cores), the recall metric, and summary statistics used to
// aggregate per-query costs into the figures' data series.
//
//lint:file-allow nogoroutine ground-truth computation runs outside the engine; workers touch disjoint output slots
package eval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"landmarkdht/internal/metric"
)

// TopK computes, for each query, the ids of the k nearest dataset
// objects under d — the "theoretical results" the paper compares
// against (set X in the recall definition). The scan is embarrassingly
// parallel and is split across workers goroutines (0 = GOMAXPROCS).
func TopK[T any](data []T, queries []T, k int, d metric.Distance[T], workers int) ([][]int32, error) {
	if k <= 0 {
		return nil, fmt.Errorf("eval: k must be positive, got %d", k)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("eval: empty dataset")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]int32, len(queries))
	var wg sync.WaitGroup
	next := make(chan int, len(queries))
	for i := range queries {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Bounded max-heap replacement done with a simple sorted
			// insertion buffer — k is small (10 in the paper).
			type cand struct {
				id   int32
				dist float64
			}
			for qi := range next {
				q := queries[qi]
				best := make([]cand, 0, k+1)
				for i := range data {
					dist := d(q, data[i])
					if len(best) == k && dist >= best[k-1].dist {
						continue
					}
					pos := sort.Search(len(best), func(j int) bool {
						if best[j].dist != dist {
							return best[j].dist > dist
						}
						return best[j].id > int32(i)
					})
					best = append(best, cand{})
					copy(best[pos+1:], best[pos:])
					best[pos] = cand{int32(i), dist}
					if len(best) > k {
						best = best[:k]
					}
				}
				ids := make([]int32, len(best))
				for j, c := range best {
					ids[j] = c.id
				}
				out[qi] = ids
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// Recall is the paper's quality metric: |X ∩ Y| / |X| where X is the
// ground-truth id set and Y the retrieved set.
func Recall(truth []int32, got []int32) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[int32]struct{}, len(truth))
	for _, id := range truth {
		set[id] = struct{}{}
	}
	hit := 0
	for _, id := range got {
		if _, ok := set[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// Summary aggregates a sample of float64 observations.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Sum            float64
}

// Summarize computes a Summary. An empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return Summary{
		N:    len(s),
		Mean: sum / float64(len(s)),
		Min:  s[0],
		Max:  s[len(s)-1],
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
		Sum:  sum,
	}
}

// Durations converts a duration sample to milliseconds for summarizing.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Ints converts an int sample for summarizing.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Gini computes the Gini coefficient of a non-negative load
// distribution: 0 is perfectly even, →1 is maximally skewed. Used to
// quantify the paper's Figure 4 / Figure 6 load curves in one number.
func Gini(loads []int) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	var total float64
	for i, l := range loads {
		s[i] = float64(l)
		total += s[i]
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(s)
	var cum float64
	for i, x := range s {
		cum += float64(i+1) * x
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}
