// Batch envelope: several messages bound for the same destination
// coalesced into one frame. The paper's §4.1 model charges every
// message its own 20-byte packet header; a batch pays that header once
// and carries each member as a 3-byte entry header plus the member's
// body. The member's own packet header is not shipped: its only live
// bytes — the message kind and the four counted header bytes [2:6]
// (entry/subquery count, k) — move into the entry, and the 14 zero
// filler bytes are elided. Decoding reconstructs each member
// byte-for-byte, so batching is invisible above the transport.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	// PerBatchedEntry is the per-member overhead inside a batch: one
	// kind byte plus a 2-byte body length.
	PerBatchedEntry = 3
	// BatchHeaderTrim is how many of a member's own bytes the batch
	// envelope elides: the 2-byte (version, kind) prefix — reconstructed
	// from the entry header — and the 14 zero filler bytes [6:20] of the
	// member's packet header.
	BatchHeaderTrim = PacketHeader - 4
)

// BatchedSize returns the bytes one message of encoded size s occupies
// inside a batch: its body plus the entry header, minus the elided
// packet-header bytes. Messages smaller than a packet header (modeled
// acks with a custom size) never go below the entry overhead.
func BatchedSize(s int) int {
	if s < BatchHeaderTrim {
		return PerBatchedEntry
	}
	return s - BatchHeaderTrim + PerBatchedEntry
}

// BatchSize returns the encoded size of a batch carrying messages of
// the given individual sizes: one shared packet header plus each
// member's BatchedSize. For two or more full-size members this is
// strictly smaller than the sum of the individual sizes.
func BatchSize(sizes []int) int {
	total := PacketHeader
	for _, s := range sizes {
		total += BatchedSize(s)
	}
	return total
}

// EncodeBatch coalesces the given encoded messages (EncodeQuery /
// EncodeResult output) into one batch frame. Every member must carry
// the standard packet header with zero filler; the batch is then
// exactly BatchSize of the member lengths.
func EncodeBatch(msgs [][]byte) ([]byte, error) {
	if len(msgs) == 0 {
		return nil, fmt.Errorf("wire: empty batch")
	}
	if len(msgs) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: batch of %d messages overflows the count field", len(msgs))
	}
	size := PacketHeader
	for i, m := range msgs {
		if len(m) < PacketHeader {
			return nil, fmt.Errorf("wire: batch member %d is %d bytes, below the packet header", i, len(m))
		}
		if m[0] != 1 {
			return nil, fmt.Errorf("wire: batch member %d has version %d", i, m[0])
		}
		for _, b := range m[6:PacketHeader] {
			if b != 0 {
				return nil, fmt.Errorf("wire: batch member %d has non-zero header filler", i)
			}
		}
		body := len(m) - BatchHeaderTrim
		if body > math.MaxUint16 {
			return nil, fmt.Errorf("wire: batch member %d body is %d bytes, overflows the length field", i, body)
		}
		size += PerBatchedEntry + body
	}
	out := make([]byte, 0, size)
	var hdr [PacketHeader]byte
	hdr[0] = 1
	hdr[1] = 'B'
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(msgs)))
	out = append(out, hdr[:]...)
	for _, m := range msgs {
		var eh [PerBatchedEntry]byte
		eh[0] = m[1]
		binary.BigEndian.PutUint16(eh[1:3], uint16(len(m)-BatchHeaderTrim))
		out = append(out, eh[:]...)
		out = append(out, m[2:6]...)
		out = append(out, m[PacketHeader:]...)
	}
	return out, nil
}

// DecodeBatch splits a batch frame back into its member messages, each
// byte-identical to the message handed to EncodeBatch.
func DecodeBatch(data []byte) ([][]byte, error) {
	if len(data) < PacketHeader {
		return nil, fmt.Errorf("wire: batch truncated at %d bytes", len(data))
	}
	if data[0] != 1 || data[1] != 'B' {
		return nil, fmt.Errorf("wire: bad batch header %x %x", data[0], data[1])
	}
	n := int(binary.BigEndian.Uint16(data[2:4]))
	out := make([][]byte, 0, n)
	off := PacketHeader
	for i := 0; i < n; i++ {
		if len(data) < off+PerBatchedEntry {
			return nil, fmt.Errorf("wire: batch entry %d truncated", i)
		}
		kind := data[off]
		body := int(binary.BigEndian.Uint16(data[off+1 : off+3]))
		off += PerBatchedEntry
		if body < 4 || len(data) < off+body {
			return nil, fmt.Errorf("wire: batch entry %d body truncated", i)
		}
		m := make([]byte, PacketHeader+body-4)
		m[0] = 1
		m[1] = kind
		copy(m[2:6], data[off:off+4])
		copy(m[PacketHeader:], data[off+4:off+body])
		out = append(out, m)
		off += body
	}
	if off != len(data) {
		return nil, fmt.Errorf("wire: batch has %d trailing bytes", len(data)-off)
	}
	return out, nil
}
