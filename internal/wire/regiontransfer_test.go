package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestRegionChunkRoundTrip(t *testing.T) {
	in := RegionChunk{
		Transfer: 0xDEADBEEF01020304,
		Index:    "docs-l1",
		Seq:      41,
		Last:     true,
		Data:     bytes.Repeat([]byte{7, 1}, 500),
	}
	enc, err := AppendChunk(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != in.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), in.EncodedSize())
	}
	out, err := DecodeChunk(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Transfer != in.Transfer || out.Index != in.Index || out.Seq != in.Seq || out.Last != in.Last || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	// Data must be a copy, not a view of the input.
	enc[len(enc)-1] ^= 0xFF
	if !bytes.Equal(out.Data, in.Data) {
		t.Fatal("decoded Data aliases the input buffer")
	}
}

func TestRegionChunkEmptyAndNotLast(t *testing.T) {
	in := RegionChunk{Transfer: 1, Index: "x", Seq: 0}
	enc, err := AppendChunk(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeChunk(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Last || out.Seq != 0 || len(out.Data) != 0 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestRegionChunkOversized(t *testing.T) {
	in := RegionChunk{Transfer: 1, Index: "x", Data: make([]byte, MaxFramePayload)}
	if _, err := AppendChunk(nil, &in); err == nil {
		t.Fatal("oversized chunk encoded without error")
	}
	var fe *FrameError
	_, err := AppendChunk(nil, &in)
	if !errors.As(err, &fe) || fe.Reason != "oversized" {
		t.Fatalf("want oversized FrameError, got %v", err)
	}
	// MaxChunkData-sized data must fit even with a maximal index name.
	ok := RegionChunk{Transfer: 1, Index: string(make([]byte, maxIndexName)), Data: make([]byte, MaxChunkData)}
	if _, err := AppendChunk(nil, &ok); err != nil {
		t.Fatalf("MaxChunkData chunk refused: %v", err)
	}
}

func TestRegionChunkTruncated(t *testing.T) {
	in := RegionChunk{Transfer: 9, Index: "idx", Seq: 3, Data: []byte("abcdef")}
	enc, err := AppendChunk(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeChunk(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	// Trailing garbage must be rejected too (chunk is a whole payload).
	if _, err := DecodeChunk(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

func TestRegionAckRoundTrip(t *testing.T) {
	enc := AppendAck(nil, RegionAck{Transfer: 77, Seq: 12})
	if len(enc) != AckBytes {
		t.Fatalf("ack encoded to %d bytes, want %d", len(enc), AckBytes)
	}
	a, err := DecodeAck(enc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transfer != 77 || a.Seq != 12 {
		t.Fatalf("round trip mismatch: %+v", a)
	}
	if _, err := DecodeAck(enc[:AckBytes-1]); err == nil {
		t.Fatal("short ack decoded without error")
	}
}
