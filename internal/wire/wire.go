// Package wire implements the binary message formats behind the
// paper's §4.1 size model. The model is not just accounting — these
// are real encodings with the exact sizes the paper charges:
//
//	query message:  20 (header) + 4 (source IP)
//	                + n · (2·2·k range bytes + 8 prefix key + 1 prefix length)
//	result message: 20 (header) + 6 per entry (4 object id + 2 distance)
//
// Range bounds travel as 16-bit fixed-point fractions of each
// dimension's boundary. Quantization always *widens* a subquery's cube
// (floor the lower bound, ceil the upper), so a decoded query can
// admit extra candidates — removed by exact refinement — but can never
// lose a true neighbor. Result distances are quantized against the
// index's maximum distance, rounding up, so reported distances never
// understate.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
)

const (
	// PacketHeader models the transport header the paper charges.
	PacketHeader = 20
	// SourceAddr is the querying node's IPv4 address.
	SourceAddr = 4
	// PerBound is the fixed-point size of one range bound.
	PerBound = 2
	// PrefixKeyBytes + PrefixLenBytes carry the routing prefix.
	PrefixKeyBytes = 8
	PrefixLenBytes = 1
	// PerResultEntry carries one (object id, distance) pair.
	PerResultEntry = 6
)

// QuerySize returns the encoded size of a query message with n
// subqueries over a k-dimensional index space — the paper's
// 20 + 4 + n·(2·2·k + 8 + 1): two PerBound-byte bounds per dimension
// plus the routing prefix, per subquery.
func QuerySize(n, k int) int {
	return PacketHeader + SourceAddr + n*(2*PerBound*k+PrefixKeyBytes+PrefixLenBytes)
}

// ResultSize returns the encoded size of a result message with the
// given number of entries — the paper's 20 + 6·entries.
func ResultSize(entries int) int {
	return PacketHeader + entries*PerResultEntry
}

// quantize maps x ∈ [lo, hi] to a 16-bit fraction; roundUp selects
// ceiling (upper bounds) vs floor (lower bounds).
func quantize(x, lo, hi float64, roundUp bool) uint16 {
	if hi <= lo {
		return 0
	}
	f := (x - lo) / (hi - lo) * math.MaxUint16
	if f <= 0 {
		return 0
	}
	if f >= math.MaxUint16 {
		return math.MaxUint16
	}
	if roundUp {
		return uint16(math.Ceil(f))
	}
	return uint16(math.Floor(f))
}

// dequantize inverts quantize.
func dequantize(q uint16, lo, hi float64) float64 {
	return lo + float64(q)/math.MaxUint16*(hi-lo)
}

// QueryMessage is the decoded form of a query-delivery message.
type QueryMessage struct {
	// Source is the querying node's ring identifier, standing in for
	// the paper's 4-byte source IP (we encode its low 32 bits).
	Source uint32
	// Subqueries are the regions carried by this message.
	Subqueries []query.Region
}

// EncodeQuery serializes a query message. The partitioner provides the
// per-dimension boundaries that anchor the fixed-point encoding; every
// region must have the partitioner's dimensionality.
func EncodeQuery(p *lph.Partitioner, msg QueryMessage) ([]byte, error) {
	k := p.K()
	for i, sq := range msg.Subqueries {
		if len(sq.Cube) != k {
			return nil, fmt.Errorf("wire: subquery %d has %d dims, want %d", i, len(sq.Cube), k)
		}
		if sq.PreLen < 0 || sq.PreLen > lph.M {
			return nil, fmt.Errorf("wire: subquery %d has prefix length %d", i, sq.PreLen)
		}
	}
	out := make([]byte, 0, QuerySize(len(msg.Subqueries), k))
	// The 20-byte packet header: version, type, length, checksum-like
	// filler — modeled but structurally real so decoding can verify.
	var hdr [PacketHeader]byte
	hdr[0] = 1 // version
	hdr[1] = 'Q'
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(msg.Subqueries)))
	binary.BigEndian.PutUint16(hdr[4:6], uint16(k))
	out = append(out, hdr[:]...)
	var src [SourceAddr]byte
	binary.BigEndian.PutUint32(src[:], msg.Source)
	out = append(out, src[:]...)
	for _, sq := range msg.Subqueries {
		for j := 0; j < k; j++ {
			b := p.Bounds(j)
			var buf [4]byte
			binary.BigEndian.PutUint16(buf[0:2], quantize(sq.Cube[j].Lo, b.Lo, b.Hi, false))
			binary.BigEndian.PutUint16(buf[2:4], quantize(sq.Cube[j].Hi, b.Lo, b.Hi, true))
			out = append(out, buf[:]...)
		}
		var pk [PrefixKeyBytes]byte
		binary.BigEndian.PutUint64(pk[:], sq.PreKey)
		out = append(out, pk[:]...)
		out = append(out, byte(sq.PreLen))
	}
	return out, nil
}

// DecodeQuery parses a query message. Decoded cubes are the quantized
// (widened) versions of the encoded ones, clamped to the partitioner's
// boundaries.
func DecodeQuery(p *lph.Partitioner, data []byte) (QueryMessage, error) {
	k := p.K()
	if len(data) < PacketHeader+SourceAddr {
		return QueryMessage{}, fmt.Errorf("wire: query message truncated at %d bytes", len(data))
	}
	if data[0] != 1 || data[1] != 'Q' {
		return QueryMessage{}, fmt.Errorf("wire: bad query header %x %x", data[0], data[1])
	}
	n := int(binary.BigEndian.Uint16(data[2:4]))
	if gk := int(binary.BigEndian.Uint16(data[4:6])); gk != k {
		return QueryMessage{}, fmt.Errorf("wire: message encoded for k=%d, partitioner has k=%d", gk, k)
	}
	msg := QueryMessage{Source: binary.BigEndian.Uint32(data[PacketHeader : PacketHeader+4])}
	off := PacketHeader + SourceAddr
	per := 2*PerBound*k + PrefixKeyBytes + PrefixLenBytes
	if len(data) != off+n*per {
		return QueryMessage{}, fmt.Errorf("wire: query message is %d bytes, want %d", len(data), off+n*per)
	}
	for i := 0; i < n; i++ {
		var sq query.Region
		sq.Cube = make([]lph.Bounds, k)
		for j := 0; j < k; j++ {
			b := p.Bounds(j)
			lo := dequantize(binary.BigEndian.Uint16(data[off:off+2]), b.Lo, b.Hi)
			hi := dequantize(binary.BigEndian.Uint16(data[off+2:off+4]), b.Lo, b.Hi)
			sq.Cube[j] = lph.Bounds{Lo: lo, Hi: hi}
			off += 4
		}
		sq.PreKey = binary.BigEndian.Uint64(data[off : off+PrefixKeyBytes])
		off += PrefixKeyBytes
		sq.PreLen = int(data[off])
		off++
		if sq.PreLen > lph.M {
			return QueryMessage{}, fmt.Errorf("wire: subquery %d has prefix length %d", i, sq.PreLen)
		}
		msg.Subqueries = append(msg.Subqueries, sq)
	}
	return msg, nil
}

// ResultEntry is one (object, distance) pair in a result message.
type ResultEntry struct {
	Obj  int32
	Dist float64
}

// EncodeResult serializes a result message; distances are quantized
// against maxDist, rounding up.
func EncodeResult(entries []ResultEntry, maxDist float64) ([]byte, error) {
	if maxDist <= 0 {
		return nil, fmt.Errorf("wire: non-positive max distance %v", maxDist)
	}
	out := make([]byte, 0, ResultSize(len(entries)))
	var hdr [PacketHeader]byte
	hdr[0] = 1
	hdr[1] = 'R'
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(entries)))
	out = append(out, hdr[:]...)
	for _, e := range entries {
		var buf [PerResultEntry]byte
		binary.BigEndian.PutUint32(buf[0:4], uint32(e.Obj))
		binary.BigEndian.PutUint16(buf[4:6], quantize(e.Dist, 0, maxDist, true))
		out = append(out, buf[:]...)
	}
	return out, nil
}

// DecodeResult parses a result message.
func DecodeResult(data []byte, maxDist float64) ([]ResultEntry, error) {
	if len(data) < PacketHeader {
		return nil, fmt.Errorf("wire: result message truncated at %d bytes", len(data))
	}
	if data[0] != 1 || data[1] != 'R' {
		return nil, fmt.Errorf("wire: bad result header %x %x", data[0], data[1])
	}
	n := int(binary.BigEndian.Uint16(data[2:4]))
	if len(data) != ResultSize(n) {
		return nil, fmt.Errorf("wire: result message is %d bytes, want %d", len(data), ResultSize(n))
	}
	out := make([]ResultEntry, 0, n)
	off := PacketHeader
	for i := 0; i < n; i++ {
		obj := int32(binary.BigEndian.Uint32(data[off : off+4]))
		q := binary.BigEndian.Uint16(data[off+4 : off+6])
		out = append(out, ResultEntry{Obj: obj, Dist: dequantize(q, 0, maxDist)})
		off += PerResultEntry
	}
	return out, nil
}
