package wire

import (
	"encoding/binary"
)

// Region digests summarize one owner's region for anti-entropy: owner
// and replica exchange (entry count, XOR-combined entry digest) pairs
// and schedule a bulk re-sync (RegionChunk stream) only on divergence.
// The digest itself is computed by core's region-digest helpers; this
// codec only moves it. The frame is fixed-size binary — like chunks
// and acks it is decoded synchronously on the reader, so a hostile
// stream surfaces as a typed *FrameError and a dropped link, never a
// panic or an allocation.

// DigestBytes is the encoded size of a RegionDigest: owner (8) +
// transfer (8) + entry count (4) + digest (8).
const DigestBytes = 8 + 8 + 4 + 8

// RegionDigest is one side's summary of a region in an anti-entropy
// exchange.
type RegionDigest struct {
	// Owner is the node whose region is being summarized (not
	// necessarily the sender: a replica answers with its copy's digest
	// for the same owner).
	Owner uint64
	// Transfer optionally names the bulk transfer this digest concludes
	// (zero for periodic advertisements).
	Transfer uint64
	// Entries is the number of entries in the region.
	Entries uint32
	// Digest is the order-independent combined entry digest.
	Digest uint64
}

// AppendDigest appends the encoded digest to dst.
func AppendDigest(dst []byte, d RegionDigest) []byte {
	var buf [DigestBytes]byte
	binary.BigEndian.PutUint64(buf[0:8], d.Owner)
	binary.BigEndian.PutUint64(buf[8:16], d.Transfer)
	binary.BigEndian.PutUint32(buf[16:20], d.Entries)
	binary.BigEndian.PutUint64(buf[20:28], d.Digest)
	return append(dst, buf[:]...)
}

// DecodeDigest parses an encoded digest. Anything but exactly
// DigestBytes bytes is a typed *FrameError: the stream is hostile or
// corrupt and the caller must drop the link.
func DecodeDigest(data []byte) (RegionDigest, error) {
	if len(data) != DigestBytes {
		return RegionDigest{}, &FrameError{Reason: "truncated payload", Size: len(data)}
	}
	return RegionDigest{
		Owner:    binary.BigEndian.Uint64(data[0:8]),
		Transfer: binary.BigEndian.Uint64(data[8:16]),
		Entries:  binary.BigEndian.Uint32(data[16:20]),
		Digest:   binary.BigEndian.Uint64(data[20:28]),
	}, nil
}
