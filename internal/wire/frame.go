package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame layout shared by every live transport (runtime/livert's
// in-process pipes and runtime/netrt's TCP links):
//
//	[8-byte big-endian message id | 4-byte big-endian payload length | payload]
//
// The message id correlates a frame with the sender's in-flight state
// (a pending delivery callback in livert, a query or request waiter in
// netrt). The length is validated against MaxFramePayload before any
// allocation, so a hostile or corrupt peer can make a reader drop the
// connection but can never make it allocate unbounded memory or panic.
const (
	// FrameHeader is the fixed frame header size in bytes.
	FrameHeader = 12
	// MaxFramePayload bounds a single frame's payload. It is far above
	// any frame the protocol produces (query and result messages are a
	// few KiB) and far below anything that could pressure memory.
	MaxFramePayload = 1 << 20
)

// FrameError is the typed decoding error for hostile, corrupt or
// truncated frames. A reader that sees one must drop the link: the
// stream is no longer trustworthy (frame boundaries may be lost).
type FrameError struct {
	// Reason says what was wrong ("oversized", "truncated header",
	// "truncated payload").
	Reason string
	// Size is the offending size: the declared payload length for an
	// oversized frame, the bytes actually read for a truncated one.
	Size int
}

// Error implements the error interface.
func (e *FrameError) Error() string {
	return fmt.Sprintf("wire: %s frame (%d bytes)", e.Reason, e.Size)
}

// AppendFrame appends one encoded frame to dst and returns the
// extended slice. It refuses payloads over MaxFramePayload — the
// sender-side guard that keeps a local bug from producing frames every
// peer would drop the link over.
func AppendFrame(dst []byte, id uint64, payload []byte) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return dst, &FrameError{Reason: "oversized", Size: len(payload)}
	}
	var hdr [FrameHeader]byte
	binary.BigEndian.PutUint64(hdr[:8], id)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ReadFrame reads one frame from r. The payload is read into buf
// (grown when needed) and returned as a slice of it; the returned
// buffer must be passed back in on the next call so a read loop
// allocates only when frames outgrow its buffer.
//
// A clean end of stream before any header byte returns io.EOF. A
// stream that dies mid-frame, or declares a payload over
// MaxFramePayload, returns a *FrameError — the caller must drop the
// connection rather than resynchronize.
func ReadFrame(r io.Reader, buf []byte) (id uint64, payload, bufOut []byte, err error) {
	var hdr [FrameHeader]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if n == 0 && err == io.EOF {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, &FrameError{Reason: "truncated header", Size: n}
	}
	id = binary.BigEndian.Uint64(hdr[:8])
	ln := binary.BigEndian.Uint32(hdr[8:12])
	if ln > MaxFramePayload {
		return 0, nil, buf, &FrameError{Reason: "oversized", Size: int(ln)}
	}
	if int(ln) > cap(buf) {
		buf = make([]byte, ln)
	}
	buf = buf[:ln]
	if m, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, &FrameError{Reason: "truncated payload", Size: m}
	}
	return id, buf, buf, nil
}
