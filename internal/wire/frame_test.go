package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0xde},
		bytes.Repeat([]byte{0xab}, 1024),
		bytes.Repeat([]byte{0x00}, MaxFramePayload),
	}
	var stream []byte
	for i, p := range payloads {
		var err error
		stream, err = AppendFrame(stream, uint64(i)*0x0101010101010101, p)
		if err != nil {
			t.Fatalf("AppendFrame(%d bytes): %v", len(p), err)
		}
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i, want := range payloads {
		id, payload, next, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		buf = next
		if id != uint64(i)*0x0101010101010101 {
			t.Fatalf("frame %d: id = %#x", i, id)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(payload), len(want))
		}
	}
	if _, _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("clean end of stream: err = %v, want io.EOF", err)
	}
}

func TestAppendFrameOversized(t *testing.T) {
	_, err := AppendFrame(nil, 1, make([]byte, MaxFramePayload+1))
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Reason != "oversized" {
		t.Fatalf("err = %v, want oversized *FrameError", err)
	}
}

// TestReadFrameHostile feeds corrupt and truncated streams to ReadFrame
// and requires a typed *FrameError — never a panic, never an attempt to
// allocate the declared (hostile) payload size.
func TestReadFrameHostile(t *testing.T) {
	okFrame, err := AppendFrame(nil, 7, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	oversized := make([]byte, FrameHeader)
	binary.BigEndian.PutUint32(oversized[8:12], MaxFramePayload+1)
	huge := make([]byte, FrameHeader)
	binary.BigEndian.PutUint32(huge[8:12], 0xffffffff)

	cases := []struct {
		name   string
		stream []byte
		reason string
	}{
		{"truncated header", okFrame[:5], "truncated header"},
		{"header only", okFrame[:FrameHeader], "truncated payload"},
		{"truncated payload", okFrame[:len(okFrame)-3], "truncated payload"},
		{"oversized declaration", oversized, "oversized"},
		{"4GiB declaration", huge, "oversized"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := ReadFrame(bytes.NewReader(tc.stream), nil)
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v, want *FrameError", err)
			}
			if fe.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q", fe.Reason, tc.reason)
			}
			if fe.Error() == "" {
				t.Fatal("empty error string")
			}
		})
	}
}

// TestReadFrameBufferReuse verifies the read buffer grows once and is
// reused for subsequent smaller frames.
func TestReadFrameBufferReuse(t *testing.T) {
	stream, _ := AppendFrame(nil, 1, make([]byte, 512))
	stream, _ = AppendFrame(stream, 2, make([]byte, 16))
	r := bytes.NewReader(stream)
	_, p1, buf, err := ReadFrame(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cap(buf) < 512 {
		t.Fatalf("buffer cap %d after 512-byte frame", cap(buf))
	}
	first := &p1[0]
	_, p2, _, err := ReadFrame(r, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) != 16 || &p2[0] != first {
		t.Fatal("second read did not reuse the grown buffer")
	}
}
