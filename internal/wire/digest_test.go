package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestRegionDigestRoundTrip(t *testing.T) {
	in := RegionDigest{Owner: 0xA1B2C3D4E5F60718, Transfer: 42, Entries: 512, Digest: 0xFEEDFACECAFEBEEF}
	enc := AppendDigest(nil, in)
	if len(enc) != DigestBytes {
		t.Fatalf("digest encoded to %d bytes, want %d", len(enc), DigestBytes)
	}
	out, err := DecodeDigest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

// TestHostileTransferFrameSweep is the hostile-stream sweep for every
// bulk-transfer frame codec (chunks, acks, digests), mirroring the
// WAL's TestTornTailEveryOffset: a valid encoding truncated at every
// byte offset, extended with trailing garbage, or corrupted in its
// declared lengths must decode to a typed *FrameError — never a panic,
// never a partial struct, never an allocation proportional to the
// declared (rather than actual) size.
func TestHostileTransferFrameSweep(t *testing.T) {
	chunk := RegionChunk{Transfer: 7, Index: "netrt-region", Seq: 3, Last: true, Data: bytes.Repeat([]byte{0xAB}, 64)}
	chunkEnc, err := AppendChunk(nil, &chunk)
	if err != nil {
		t.Fatal(err)
	}
	ackEnc := AppendAck(nil, RegionAck{Transfer: 7, Seq: 3})
	digEnc := AppendDigest(nil, RegionDigest{Owner: 9, Transfer: 7, Entries: 64, Digest: 123})

	codecs := []struct {
		name   string
		enc    []byte
		decode func([]byte) error
	}{
		{"chunk", chunkEnc, func(b []byte) error { _, err := DecodeChunk(b); return err }},
		{"ack", ackEnc, func(b []byte) error { _, err := DecodeAck(b); return err }},
		{"digest", digEnc, func(b []byte) error { _, err := DecodeDigest(b); return err }},
	}
	for _, c := range codecs {
		// The intact encoding must decode.
		if err := c.decode(c.enc); err != nil {
			t.Fatalf("%s: intact encoding refused: %v", c.name, err)
		}
		// Truncation at every byte offset.
		for cut := 0; cut < len(c.enc); cut++ {
			err := c.decode(c.enc[:cut])
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("%s: truncation at %d: want *FrameError, got %v", c.name, cut, err)
			}
		}
		// Trailing garbage of several lengths.
		for _, extra := range []int{1, 7, 1024} {
			junk := append(append([]byte(nil), c.enc...), bytes.Repeat([]byte{0xFF}, extra)...)
			err := c.decode(junk)
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("%s: %d trailing bytes: want *FrameError, got %v", c.name, extra, err)
			}
		}
	}
}

// TestHostileChunkDeclaredLengths corrupts a chunk's declared name and
// data lengths to every byte value at their offsets: a declared length
// that disagrees with the actual payload must be a typed error, and an
// oversized declared data length must never drive an allocation (the
// decoder validates against the actual buffer before copying).
func TestHostileChunkDeclaredLengths(t *testing.T) {
	chunk := RegionChunk{Transfer: 1, Index: "x", Seq: 0, Data: []byte("abcdef")}
	enc, err := AppendChunk(nil, &chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Offsets 13..14 hold the name length, 15..18 the data length.
	for off := 13; off < 19; off++ {
		for b := 0; b < 256; b++ {
			mut := append([]byte(nil), enc...)
			if mut[off] == byte(b) {
				continue
			}
			mut[off] = byte(b)
			_, err := DecodeChunk(mut)
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("offset %d = %#x decoded without a typed error", off, b)
			}
		}
	}
	// A maximal declared data length with no data behind it.
	mut := append([]byte(nil), enc[:ChunkHeaderBytes]...)
	mut[15], mut[16], mut[17], mut[18] = 0xFF, 0xFF, 0xFF, 0xFF
	_, err = DecodeChunk(mut)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("maximal declared length: want *FrameError, got %v", err)
	}
}

// TestHostileDigestWrongKindSize feeds every payload size from 0 to
// 4·DigestBytes through the digest decoder: only the exact size
// decodes.
func TestHostileDigestWrongKindSize(t *testing.T) {
	for n := 0; n <= 4*DigestBytes; n++ {
		_, err := DecodeDigest(make([]byte, n))
		if n == DigestBytes {
			if err != nil {
				t.Fatalf("exact-size digest refused: %v", err)
			}
			continue
		}
		var fe *FrameError
		if !errors.As(err, &fe) || fe.Reason != "truncated payload" {
			t.Fatalf("size %d: want truncated-payload FrameError, got %v", n, err)
		}
	}
}
