package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/query"
)

func part(t *testing.T, k int) *lph.Partitioner {
	t.Helper()
	p, err := lph.New(k, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randRegion(rng *rand.Rand, p *lph.Partitioner) query.Region {
	cube := make([]lph.Bounds, p.K())
	for j := range cube {
		a, b := rng.Float64()*1000, rng.Float64()*1000
		if a > b {
			a, b = b, a
		}
		cube[j] = lph.Bounds{Lo: a, Hi: b}
	}
	r, err := query.New(p, cube)
	if err != nil {
		panic(err)
	}
	return r
}

// The sizes of the wire encodings must equal the paper's §4.1
// formulas (core's MessageModel cross-checks them from the other side
// to avoid an import cycle here).
func TestSizesMatchPaperFormulas(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10, 20} {
		for _, n := range []int{0, 1, 3, 7} {
			want := 20 + 4 + n*(2*2*k+8+1)
			if QuerySize(n, k) != want {
				t.Fatalf("QuerySize(%d,%d) = %d, paper formula says %d", n, k, QuerySize(n, k), want)
			}
		}
	}
	for _, n := range []int{0, 1, 10, 100} {
		if ResultSize(n) != 20+6*n {
			t.Fatalf("ResultSize(%d) = %d, paper formula says %d", n, ResultSize(n), 20+6*n)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	p := part(t, 5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		msg := QueryMessage{Source: rng.Uint32()}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			msg.Subqueries = append(msg.Subqueries, randRegion(rng, p))
		}
		data, err := EncodeQuery(p, msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != QuerySize(n, 5) {
			t.Fatalf("encoded %d bytes, want %d", len(data), QuerySize(n, 5))
		}
		got, err := DecodeQuery(p, data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Source != msg.Source {
			t.Fatal("source corrupted")
		}
		if len(got.Subqueries) != n {
			t.Fatalf("got %d subqueries", len(got.Subqueries))
		}
		for i, sq := range got.Subqueries {
			orig := msg.Subqueries[i]
			if sq.PreKey != orig.PreKey || sq.PreLen != orig.PreLen {
				t.Fatal("prefix corrupted")
			}
			// Quantization must WIDEN, never narrow: no false negatives.
			for j := range sq.Cube {
				if sq.Cube[j].Lo > orig.Cube[j].Lo+1e-12 {
					t.Fatalf("dim %d lower bound narrowed: %v > %v", j, sq.Cube[j].Lo, orig.Cube[j].Lo)
				}
				if sq.Cube[j].Hi < orig.Cube[j].Hi-1e-12 {
					t.Fatalf("dim %d upper bound narrowed: %v < %v", j, sq.Cube[j].Hi, orig.Cube[j].Hi)
				}
				// And not by more than one quantum.
				quantum := 1000.0 / 65535 * 1.01
				if orig.Cube[j].Lo-sq.Cube[j].Lo > quantum || sq.Cube[j].Hi-orig.Cube[j].Hi > quantum {
					t.Fatalf("dim %d widened by more than a quantum", j)
				}
			}
		}
	}
}

func TestQueryDecodeErrors(t *testing.T) {
	p := part(t, 3)
	msg := QueryMessage{Subqueries: []query.Region{randRegion(rand.New(rand.NewSource(1)), p)}}
	data, err := EncodeQuery(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeQuery(p, data[:5]); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte(nil), data...)
	bad[1] = 'X'
	if _, err := DecodeQuery(p, bad); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := DecodeQuery(p, append(data, 0)); err == nil {
		t.Fatal("expected length error")
	}
	// Wrong dimensionality partitioner.
	p2 := part(t, 4)
	if _, err := DecodeQuery(p2, data); err == nil {
		t.Fatal("expected dimensionality error")
	}
	// Corrupt prefix length.
	bad2 := append([]byte(nil), data...)
	bad2[len(bad2)-1] = 99
	if _, err := DecodeQuery(p, bad2); err == nil {
		t.Fatal("expected prefix-length error")
	}
}

func TestEncodeQueryValidation(t *testing.T) {
	p := part(t, 3)
	bad := QueryMessage{Subqueries: []query.Region{{Cube: make([]lph.Bounds, 2)}}}
	if _, err := EncodeQuery(p, bad); err == nil {
		t.Fatal("expected dims error")
	}
	bad2 := QueryMessage{Subqueries: []query.Region{{Cube: make([]lph.Bounds, 3), PreLen: 99}}}
	if _, err := EncodeQuery(p, bad2); err == nil {
		t.Fatal("expected prelen error")
	}
}

func TestResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const maxDist = 1000.0
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(20)
		entries := make([]ResultEntry, n)
		for i := range entries {
			entries[i] = ResultEntry{Obj: rng.Int31(), Dist: rng.Float64() * maxDist}
		}
		data, err := EncodeResult(entries, maxDist)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != ResultSize(n) {
			t.Fatalf("encoded %d bytes, want %d", len(data), ResultSize(n))
		}
		got, err := DecodeResult(data, maxDist)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("got %d entries", len(got))
		}
		for i := range got {
			if got[i].Obj != entries[i].Obj {
				t.Fatal("object id corrupted")
			}
			// Distance rounds UP by at most one quantum.
			if got[i].Dist < entries[i].Dist-1e-9 {
				t.Fatalf("distance understated: %v < %v", got[i].Dist, entries[i].Dist)
			}
			if got[i].Dist-entries[i].Dist > maxDist/65535*1.01 {
				t.Fatal("distance overstated by more than a quantum")
			}
		}
	}
}

func TestResultErrors(t *testing.T) {
	if _, err := EncodeResult(nil, 0); err == nil {
		t.Fatal("expected max-dist error")
	}
	data, _ := EncodeResult([]ResultEntry{{Obj: 1, Dist: 5}}, 10)
	if _, err := DecodeResult(data[:3], 10); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte(nil), data...)
	bad[1] = 'Q'
	if _, err := DecodeResult(bad, 10); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := DecodeResult(append(data, 0), 10); err == nil {
		t.Fatal("expected length error")
	}
}

// Property: decoding any encoded query yields cubes that contain the
// original cubes (the no-false-negative widening).
func TestQuickQuantizationWidens(t *testing.T) {
	p := part(t, 2)
	f := func(lo0, hi0, lo1, hi1 float64, key uint64, prelen uint8) bool {
		norm := func(x float64) float64 {
			if x != x || x < 0 {
				return 0
			}
			if x > 1000 {
				return 1000
			}
			return x
		}
		a0, b0 := norm(lo0), norm(hi0)
		if a0 > b0 {
			a0, b0 = b0, a0
		}
		a1, b1 := norm(lo1), norm(hi1)
		if a1 > b1 {
			a1, b1 = b1, a1
		}
		pl := int(prelen) % 65
		sq := query.Region{
			Cube:   []lph.Bounds{{Lo: a0, Hi: b0}, {Lo: a1, Hi: b1}},
			PreKey: lph.Prefix(key, pl),
			PreLen: pl,
		}
		data, err := EncodeQuery(p, QueryMessage{Subqueries: []query.Region{sq}})
		if err != nil {
			return false
		}
		got, err := DecodeQuery(p, data)
		if err != nil {
			return false
		}
		d := got.Subqueries[0]
		return d.Cube[0].Lo <= a0 && d.Cube[0].Hi >= b0 &&
			d.Cube[1].Lo <= a1 && d.Cube[1].Hi >= b1 &&
			d.PreKey == sq.PreKey && d.PreLen == pl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeQuery(b *testing.B) {
	p, _ := lph.New(10, 0, 1000)
	rng := rand.New(rand.NewSource(1))
	msg := QueryMessage{Source: 1}
	for i := 0; i < 4; i++ {
		msg.Subqueries = append(msg.Subqueries, randRegion(rng, p))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeQuery(p, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// The encoders must produce exactly the byte counts the size formulas
// promise — the traffic accounting charges QuerySize/ResultSize, and a
// live transport frames the encoder's actual output.
func TestEncodedLengthMatchesSizeFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 5, 10} {
		p := part(t, k)
		for _, n := range []int{0, 1, 2, 5, 9} {
			msg := QueryMessage{Source: rng.Uint32()}
			for i := 0; i < n; i++ {
				msg.Subqueries = append(msg.Subqueries, randRegion(rng, p))
			}
			data, err := EncodeQuery(p, msg)
			if err != nil {
				t.Fatalf("EncodeQuery(k=%d, n=%d): %v", k, n, err)
			}
			if len(data) != QuerySize(n, k) {
				t.Fatalf("len(EncodeQuery(k=%d, n=%d)) = %d, QuerySize says %d",
					k, n, len(data), QuerySize(n, k))
			}
		}
	}
	for _, n := range []int{0, 1, 10, 57} {
		entries := make([]ResultEntry, n)
		for i := range entries {
			entries[i] = ResultEntry{Obj: int32(i), Dist: rng.Float64() * 100}
		}
		data, err := EncodeResult(entries, 100)
		if err != nil {
			t.Fatalf("EncodeResult(%d entries): %v", n, err)
		}
		if len(data) != ResultSize(n) {
			t.Fatalf("len(EncodeResult(%d entries)) = %d, ResultSize says %d",
				n, len(data), ResultSize(n))
		}
	}
}
