package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// randBatchMembers builds a mixed bag of real query/result encodings.
func randBatchMembers(t *testing.T, rng *rand.Rand, n int) [][]byte {
	t.Helper()
	p := part(t, 4)
	var msgs [][]byte
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			msg := QueryMessage{Source: rng.Uint32()}
			for j, m := 0, 1+rng.Intn(3); j < m; j++ {
				msg.Subqueries = append(msg.Subqueries, randRegion(rng, p))
			}
			data, err := EncodeQuery(p, msg)
			if err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, data)
		} else {
			var entries []ResultEntry
			for j, m := 0, rng.Intn(5); j < m; j++ {
				entries = append(entries, ResultEntry{Obj: int32(rng.Intn(1000)), Dist: rng.Float64() * 100})
			}
			data, err := EncodeResult(entries, 100)
			if err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, data)
		}
	}
	return msgs
}

func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		msgs := randBatchMembers(t, rng, 1+rng.Intn(6))
		enc, err := EncodeBatch(msgs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(msgs) {
			t.Fatalf("decoded %d members, want %d", len(got), len(msgs))
		}
		for i := range msgs {
			if !bytes.Equal(got[i], msgs[i]) {
				t.Fatalf("member %d corrupted by batch round-trip:\n got %x\nwant %x", i, got[i], msgs[i])
			}
		}
	}
}

// The BatchSize formula must equal the encoded length, the same
// size-model honesty TestSizesMatchPaperFormulas enforces for the
// per-message encodings.
func TestBatchSizeMatchesEncodedLength(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		msgs := randBatchMembers(t, rng, 1+rng.Intn(8))
		sizes := make([]int, len(msgs))
		for i, m := range msgs {
			sizes[i] = len(m)
		}
		enc, err := EncodeBatch(msgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != BatchSize(sizes) {
			t.Fatalf("encoded %d bytes, BatchSize says %d (members %v)", len(enc), BatchSize(sizes), sizes)
		}
	}
}

// Batching two or more messages must beat sending them separately —
// that is the point of the envelope — while a batch of one costs the
// entry overhead.
func TestBatchSizeSavings(t *testing.T) {
	q := QuerySize(1, 10) // 69
	if got := BatchSize([]int{q}); got != q+PerBatchedEntry-BatchHeaderTrim+PacketHeader {
		t.Fatalf("single-member batch size %d", got)
	}
	sum := 0
	var sizes []int
	for i := 0; i < 4; i++ {
		sizes = append(sizes, q)
		sum += q
	}
	if got := BatchSize(sizes); got >= sum {
		t.Fatalf("4-message batch is %d bytes, separate messages are %d", got, sum)
	}
	// Modeled small acks never produce a negative batched size.
	if got := BatchedSize(2); got != PerBatchedEntry {
		t.Fatalf("BatchedSize(2) = %d, want the bare entry overhead %d", got, PerBatchedEntry)
	}
}

func TestBatchEncodeErrors(t *testing.T) {
	if _, err := EncodeBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := EncodeBatch([][]byte{make([]byte, 5)}); err == nil {
		t.Fatal("sub-header member accepted")
	}
	bad := make([]byte, 30)
	bad[0] = 2
	if _, err := EncodeBatch([][]byte{bad}); err == nil {
		t.Fatal("wrong version accepted")
	}
	filler := make([]byte, 30)
	filler[0] = 1
	filler[10] = 7 // non-zero header filler cannot be elided
	if _, err := EncodeBatch([][]byte{filler}); err == nil {
		t.Fatal("non-zero filler accepted")
	}
}

func TestBatchDecodeErrors(t *testing.T) {
	msgs := randBatchMembers(t, rand.New(rand.NewSource(10)), 3)
	enc, err := EncodeBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][]byte{
		nil,
		enc[:10],                            // truncated header
		enc[:len(enc)-1],                    // truncated body
		append(append([]byte{}, enc...), 0), // trailing bytes
	} {
		if _, err := DecodeBatch(tc); err == nil {
			t.Fatalf("malformed batch of %d bytes accepted", len(tc))
		}
	}
	wrongKind := append([]byte{}, enc...)
	wrongKind[1] = 'Q'
	if _, err := DecodeBatch(wrongKind); err == nil {
		t.Fatal("non-batch kind accepted")
	}
}
