package wire

import (
	"encoding/binary"
	"fmt"
)

// Region transfer frames carry serialized index regions in bulk during
// join/leave handoff, load migration, and replica repair — replacing
// point-wise republication (one reliable round-trip per entry) with a
// chunked, credit-acked stream. A transfer is identified by a sender-
// chosen 64-bit id; its payload is split into sequenced chunks, each
// small enough to respect MaxFramePayload, each individually
// acknowledged so the sender's credit window bounds the in-flight
// bytes and lost chunks are retransmitted without restarting the
// stream (resumable at chunk granularity).
//
// Chunk payloads are opaque here — core's region codec defines the
// entry serialization — so the same frames can ship any index scheme.

const (
	// ChunkHeaderBytes is the fixed RegionChunk overhead before the
	// index name and data: transfer id (8) + seq (4) + flags (1) +
	// index-name length (2) + data length (4).
	ChunkHeaderBytes = 8 + 4 + 1 + 2 + 4
	// AckBytes is the encoded size of a RegionAck: transfer id (8) +
	// seq (4).
	AckBytes = 8 + 4
	// MaxChunkData bounds one chunk's data so the whole encoded chunk
	// (with a maximal index name) stays within MaxFramePayload.
	MaxChunkData = MaxFramePayload - ChunkHeaderBytes - maxIndexName
	// maxIndexName bounds the index-scheme name carried per chunk.
	maxIndexName = 255
)

const chunkFlagLast = 1 << 0

// RegionChunk is one sequenced piece of a region transfer.
type RegionChunk struct {
	// Transfer identifies the stream this chunk belongs to.
	Transfer uint64
	// Index is the index scheme the entries belong to.
	Index string
	// Seq is the chunk's position in the stream, starting at 0.
	Seq uint32
	// Last marks the stream's final chunk (Seq+1 = total chunks).
	Last bool
	// Data is the serialized entries (core's region codec).
	Data []byte
}

// EncodedSize returns the chunk's encoded length.
func (c *RegionChunk) EncodedSize() int {
	return ChunkHeaderBytes + len(c.Index) + len(c.Data)
}

// AppendChunk appends the encoded chunk to dst. It refuses chunks
// whose encoding would exceed MaxFramePayload (split Data first) or
// whose index name is unreasonably long.
func AppendChunk(dst []byte, c *RegionChunk) ([]byte, error) {
	if len(c.Index) > maxIndexName {
		return dst, fmt.Errorf("wire: index name of %d bytes in region chunk", len(c.Index))
	}
	if c.EncodedSize() > MaxFramePayload {
		return dst, &FrameError{Reason: "oversized", Size: c.EncodedSize()}
	}
	var hdr [ChunkHeaderBytes]byte
	binary.BigEndian.PutUint64(hdr[0:8], c.Transfer)
	binary.BigEndian.PutUint32(hdr[8:12], c.Seq)
	if c.Last {
		hdr[12] = chunkFlagLast
	}
	binary.BigEndian.PutUint16(hdr[13:15], uint16(len(c.Index)))
	binary.BigEndian.PutUint32(hdr[15:19], uint32(len(c.Data)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, c.Index...)
	return append(dst, c.Data...), nil
}

// DecodeChunk parses an encoded chunk. The returned chunk's Index and
// Data reference freshly copied memory, so the input buffer may be
// reused.
func DecodeChunk(data []byte) (RegionChunk, error) {
	var c RegionChunk
	if len(data) < ChunkHeaderBytes {
		return c, &FrameError{Reason: "truncated payload", Size: len(data)}
	}
	c.Transfer = binary.BigEndian.Uint64(data[0:8])
	c.Seq = binary.BigEndian.Uint32(data[8:12])
	c.Last = data[12]&chunkFlagLast != 0
	nameLen := int(binary.BigEndian.Uint16(data[13:15]))
	dataLen := int(binary.BigEndian.Uint32(data[15:19]))
	rest := data[ChunkHeaderBytes:]
	if nameLen > maxIndexName || dataLen > MaxFramePayload || len(rest) != nameLen+dataLen {
		return c, &FrameError{Reason: "truncated payload", Size: len(data)}
	}
	c.Index = string(rest[:nameLen])
	c.Data = append([]byte(nil), rest[nameLen:]...)
	return c, nil
}

// RegionAck acknowledges one received chunk, returning its credit to
// the sender's window.
type RegionAck struct {
	Transfer uint64
	Seq      uint32
}

// AppendAck appends the encoded ack to dst.
func AppendAck(dst []byte, a RegionAck) []byte {
	var buf [AckBytes]byte
	binary.BigEndian.PutUint64(buf[0:8], a.Transfer)
	binary.BigEndian.PutUint32(buf[8:12], a.Seq)
	return append(dst, buf[:]...)
}

// DecodeAck parses an encoded ack.
func DecodeAck(data []byte) (RegionAck, error) {
	if len(data) != AckBytes {
		return RegionAck{}, &FrameError{Reason: "truncated payload", Size: len(data)}
	}
	return RegionAck{
		Transfer: binary.BigEndian.Uint64(data[0:8]),
		Seq:      binary.BigEndian.Uint32(data[8:12]),
	}, nil
}
