package indexspace

// Microbenchmarks and allocation-regression tests for the embedding
// hot path: Map allocates one row per object, MapInto reuses a
// caller-provided buffer (zero allocations), MapBatch amortizes a bulk
// load to two allocations total (DESIGN.md §9).

import (
	"math/rand"
	"testing"

	"landmarkdht/internal/metric"
)

func benchEmbedding(b testing.TB, k, dim int) (*Embedding[metric.Vector], []metric.Vector) {
	rng := rand.New(rand.NewSource(1))
	mk := func() metric.Vector {
		v := make(metric.Vector, dim)
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		return v
	}
	lms := make([]metric.Vector, k)
	for i := range lms {
		lms[i] = mk()
	}
	objs := make([]metric.Vector, 256)
	for i := range objs {
		objs[i] = mk()
	}
	emb, err := New(metric.EuclideanSpace("bench", dim, 0, 100), lms)
	if err != nil {
		b.Fatal(err)
	}
	return emb, objs
}

func BenchmarkMapK10Dim100(b *testing.B) {
	emb, objs := benchEmbedding(b, 10, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb.Map(objs[i%len(objs)])
	}
}

func BenchmarkMapIntoK10Dim100(b *testing.B) {
	emb, objs := benchEmbedding(b, 10, 100)
	dst := make([]float64, emb.K())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb.MapInto(objs[i%len(objs)], dst)
	}
}

func BenchmarkMapBatchK10Dim100(b *testing.B) {
	emb, objs := benchEmbedding(b, 10, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := emb.MapBatch(objs, nil)
		_ = rows
	}
}

func TestMapIntoZeroAlloc(t *testing.T) {
	emb, objs := benchEmbedding(t, 10, 100)
	dst := make([]float64, emb.K())
	allocs := testing.AllocsPerRun(100, func() {
		emb.MapInto(objs[0], dst)
	})
	if allocs != 0 {
		t.Fatalf("MapInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestMapBatchExactAllocs pins the batch embedding at its two
// amortized allocations (rows header + coordinate arena).
func TestMapBatchExactAllocs(t *testing.T) {
	emb, objs := benchEmbedding(t, 10, 100)
	allocs := testing.AllocsPerRun(20, func() {
		if rows, _ := emb.MapBatch(objs, nil); len(rows) != len(objs) {
			t.Fatal("short batch")
		}
	})
	if allocs != 2 {
		t.Fatalf("MapBatch allocates %.1f objects/op, want exactly 2 (rows + arena)", allocs)
	}
}
