// Package indexspace implements the landmark-based index space of
// §3.1: the contractive mapping from a generic metric space (D, d) to
// the k-dimensional vector space
//
//	x ↦ (d(x, l₁), d(x, l₂), …, d(x, l_k))
//
// and the conversion of a near-neighbor query (q, r) into the
// k-hypercube range query centered at the image of q with edge 2r,
// which by the triangle inequality contains the image of every object
// within distance r of q.
package indexspace

import (
	"fmt"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/metric"
)

// Embedding binds a metric space to a concrete landmark set and the
// index-space boundary used for partitioning.
type Embedding[T any] struct {
	space     metric.Space[T]
	landmarks []T
	bounds    []lph.Bounds
}

// Option configures New.
type Option[T any] func(*config[T])

type config[T any] struct {
	sample []T
}

// WithSampleBoundary derives the index-space boundary from the
// landmark-selection sample (§3.1 boundary approach 2) instead of the
// metric's a-priori bound.
func WithSampleBoundary[T any](sample []T) Option[T] {
	return func(c *config[T]) { c.sample = sample }
}

// New creates an Embedding. The boundary of each dimension is, in
// order of preference: the per-dimension [min,max] landmark-to-sample
// distance when WithSampleBoundary is given; otherwise [0, Max] for a
// bounded metric. Unbounded metrics without a sample are rejected —
// wrap them with metric.Bound first (the paper's d' = d/(1+d)
// adjustment).
func New[T any](space metric.Space[T], landmarks []T, opts ...Option[T]) (*Embedding[T], error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("indexspace: no landmarks")
	}
	var cfg config[T]
	for _, o := range opts {
		o(&cfg)
	}
	var bounds []lph.Bounds
	switch {
	case len(cfg.sample) > 0:
		bounds = boundary(landmarks, cfg.sample, space.Dist)
	case space.Bounded:
		bounds = make([]lph.Bounds, len(landmarks))
		for i := range bounds {
			bounds[i] = lph.Bounds{Lo: 0, Hi: space.Max}
		}
	default:
		return nil, fmt.Errorf("indexspace: metric %q is unbounded and no sample boundary was provided; wrap it with metric.Bound", space.Name)
	}
	return &Embedding[T]{space: space, landmarks: landmarks, bounds: bounds}, nil
}

// boundary mirrors landmark.Boundary; duplicated locally to keep the
// package dependency graph acyclic (landmark depends on lph only).
func boundary[T any](landmarks, sample []T, d metric.Distance[T]) []lph.Bounds {
	bounds := make([]lph.Bounds, len(landmarks))
	for i, l := range landmarks {
		lo, hi := -1.0, 0.0
		for _, s := range sample {
			dd := d(l, s)
			if lo < 0 || dd < lo {
				lo = dd
			}
			if dd > hi {
				hi = dd
			}
		}
		if lo < 0 {
			lo = 0
		}
		if hi <= lo {
			hi = lo + 1
		}
		bounds[i] = lph.Bounds{Lo: lo, Hi: hi}
	}
	return bounds
}

// K returns the index-space dimensionality (the number of landmarks).
func (e *Embedding[T]) K() int { return len(e.landmarks) }

// Space returns the underlying metric space.
func (e *Embedding[T]) Space() metric.Space[T] { return e.space }

// Landmarks returns the landmark set (shared, not copied — landmarks
// are immutable once the platform is initialized).
func (e *Embedding[T]) Landmarks() []T { return e.landmarks }

// Bounds returns a copy of the per-dimension index-space boundary.
func (e *Embedding[T]) Bounds() []lph.Bounds { return append([]lph.Bounds(nil), e.bounds...) }

// Map embeds a data object: coordinate i is the distance from x to
// landmark i. Coordinates are not clamped here; the locality-
// preserving hash clamps to the boundary when keying (the paper maps
// out-of-boundary objects to boundary points).
func (e *Embedding[T]) Map(x T) []float64 {
	return e.MapInto(x, make([]float64, len(e.landmarks)))
}

// MapInto embeds x into the caller-provided buffer dst, which must
// have length K(), and returns dst. Hot paths (one embedding per query)
// reuse one buffer across calls instead of allocating per Map; the
// buffer must not be retained past its consumption (scratch-ownership
// rules in DESIGN.md §9).
func (e *Embedding[T]) MapInto(x T, dst []float64) []float64 {
	if len(dst) != len(e.landmarks) {
		panic(fmt.Sprintf("indexspace: MapInto buffer has %d coordinates, want %d", len(dst), len(e.landmarks)))
	}
	for i, l := range e.landmarks {
		dst[i] = e.space.Dist(x, l)
	}
	return dst
}

// MapBatch embeds every object of objs, writing all coordinates into
// one arena: row i is arena[i*k : (i+1)*k]. The caller provides the
// coordinate arena (grown if too small) and receives the per-object
// rows plus the arena for reuse. One batch costs two allocations (rows
// header + arena) instead of one per object, and the contiguous layout
// keeps bulk loads cache-friendly. Rows alias the arena; they are
// long-lived (index entries retain them), so pass a fresh or retired
// arena — never one whose rows are still referenced elsewhere.
func (e *Embedding[T]) MapBatch(objs []T, arena []float64) (rows [][]float64, out []float64) {
	k := len(e.landmarks)
	need := len(objs) * k
	if cap(arena) < need {
		arena = make([]float64, need)
	}
	arena = arena[:need]
	rows = make([][]float64, len(objs))
	for i, x := range objs {
		row := arena[i*k : (i+1)*k : (i+1)*k]
		e.MapInto(x, row)
		rows[i] = row
	}
	return rows, arena
}

// Distance returns d(a, b) in the original metric space (used for the
// exact refinement step that removes false positives).
func (e *Embedding[T]) Distance(a, b T) float64 { return e.space.Dist(a, b) }

// QueryCube converts the near-neighbor query (q, r) into the index-
// space range query: the hypercube centered at Map(q) with edge 2r,
// intersected with the boundary. The returned center is Map(q).
func (e *Embedding[T]) QueryCube(q T, r float64) (center []float64, cube []lph.Bounds, err error) {
	if r < 0 {
		return nil, nil, fmt.Errorf("indexspace: negative query range %v", r)
	}
	center = e.Map(q)
	cube = make([]lph.Bounds, len(center))
	for i, c := range center {
		lo := e.bounds[i].Clamp(c - r)
		hi := e.bounds[i].Clamp(c + r)
		cube[i] = lph.Bounds{Lo: lo, Hi: hi}
	}
	return center, cube, nil
}

// Partitioner builds the locality-preserving hash partitioner over
// this embedding's boundary, rotated by the offset derived from the
// metric-space name (§3.4). Pass rotate=false to disable rotation
// (used by the rotation ablation).
func (e *Embedding[T]) Partitioner(rotate bool) (*lph.Partitioner, error) {
	p, err := lph.NewWithBounds(e.bounds)
	if err != nil {
		return nil, err
	}
	if rotate {
		p = p.WithRotation(lph.PhiForName(e.space.Name))
	}
	return p, nil
}
