package indexspace

import (
	"math"
	"math/rand"
	"testing"

	"landmarkdht/internal/lph"
	"landmarkdht/internal/metric"
)

func testSpace() metric.Space[metric.Vector] {
	return metric.EuclideanSpace("test", 2, 0, 10)
}

func randVecIn(rng *rand.Rand, dim int, lo, hi float64) metric.Vector {
	v := make(metric.Vector, dim)
	for i := range v {
		v[i] = lo + rng.Float64()*(hi-lo)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testSpace(), nil); err == nil {
		t.Fatal("expected error for no landmarks")
	}
	bad := metric.Space[metric.Vector]{Name: "", Dist: metric.L2}
	if _, err := New(bad, []metric.Vector{{0, 0}}); err == nil {
		t.Fatal("expected error for invalid space")
	}
	unbounded := metric.Space[metric.Vector]{Name: "u", Dist: metric.L2}
	if _, err := New(unbounded, []metric.Vector{{0, 0}}); err == nil {
		t.Fatal("expected error for unbounded metric without sample")
	}
	// Bounded wrapper fixes it.
	if _, err := New(metric.Bound(unbounded), []metric.Vector{{0, 0}}); err != nil {
		t.Fatal(err)
	}
	// Sample boundary fixes it too.
	if _, err := New(unbounded, []metric.Vector{{0, 0}}, WithSampleBoundary([]metric.Vector{{1, 1}, {2, 2}})); err != nil {
		t.Fatal(err)
	}
}

func TestMapCoordinates(t *testing.T) {
	lms := []metric.Vector{{0, 0}, {10, 0}}
	e, err := New(testSpace(), lms)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Map(metric.Vector{3, 4})
	if got[0] != 5 {
		t.Fatalf("coord 0 = %v, want 5", got[0])
	}
	want1 := math.Sqrt(49 + 16)
	if math.Abs(got[1]-want1) > 1e-12 {
		t.Fatalf("coord 1 = %v, want %v", got[1], want1)
	}
	if e.K() != 2 {
		t.Fatalf("K = %d", e.K())
	}
}

// The core correctness property of the whole architecture (§3.1): the
// mapping is contractive under L∞, so every true near neighbor of q
// falls inside the query cube. No false negatives, ever.
func TestContractiveNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lms := []metric.Vector{{1, 1}, {9, 2}, {5, 8}}
	e, err := New(testSpace(), lms)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		q := randVecIn(rng, 2, 0, 10)
		x := randVecIn(rng, 2, 0, 10)
		r := rng.Float64() * 5
		if metric.L2(q, x) > r {
			continue
		}
		_, cube, err := e.QueryCube(q, r)
		if err != nil {
			t.Fatal(err)
		}
		ix := e.Map(x)
		for dim := range ix {
			v := ix[dim]
			// Clamp as the hash would.
			v = e.Bounds()[dim].Clamp(v)
			if v < cube[dim].Lo-1e-9 || v > cube[dim].Hi+1e-9 {
				t.Fatalf("false negative: object at distance %v escaped the cube on dim %d (v=%v cube=%+v)",
					metric.L2(q, x), dim, v, cube[dim])
			}
		}
	}
}

// Contractivity in the formal sense: |Map(x)_i - Map(y)_i| <= d(x,y).
func TestContractivePerCoordinate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lms := []metric.Vector{{1, 1}, {9, 2}, {5, 8}}
	e, _ := New(testSpace(), lms)
	for trial := 0; trial < 500; trial++ {
		x := randVecIn(rng, 2, 0, 10)
		y := randVecIn(rng, 2, 0, 10)
		d := metric.L2(x, y)
		ix, iy := e.Map(x), e.Map(y)
		for dim := range ix {
			if math.Abs(ix[dim]-iy[dim]) > d+1e-9 {
				t.Fatalf("not contractive: |%v - %v| > %v", ix[dim], iy[dim], d)
			}
		}
	}
}

func TestQueryCubeClampsToBoundary(t *testing.T) {
	lms := []metric.Vector{{0, 0}}
	e, _ := New(testSpace(), lms)
	_, cube, err := e.QueryCube(metric.Vector{0.5, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cube[0].Lo != 0 {
		t.Fatalf("cube lo = %v, want clamped to 0", cube[0].Lo)
	}
	if cube[0].Hi != 3.5 {
		t.Fatalf("cube hi = %v, want 3.5", cube[0].Hi)
	}
}

func TestQueryCubeRejectsNegativeRange(t *testing.T) {
	e, _ := New(testSpace(), []metric.Vector{{0, 0}})
	if _, _, err := e.QueryCube(metric.Vector{1, 1}, -1); err == nil {
		t.Fatal("expected error")
	}
}

func TestSampleBoundary(t *testing.T) {
	lms := []metric.Vector{{0, 0}}
	sample := []metric.Vector{{3, 4}, {6, 8}}
	e, err := New(testSpace(), lms, WithSampleBoundary(sample))
	if err != nil {
		t.Fatal(err)
	}
	b := e.Bounds()
	if b[0].Lo != 5 || b[0].Hi != 10 {
		t.Fatalf("sample boundary = %+v, want [5,10]", b[0])
	}
}

func TestPartitionerRotation(t *testing.T) {
	e, _ := New(testSpace(), []metric.Vector{{0, 0}, {10, 10}})
	p1, err := e.Partitioner(true)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Phi() != lph.PhiForName("test") {
		t.Fatalf("phi = %d, want PhiForName(test)", p1.Phi())
	}
	p0, _ := e.Partitioner(false)
	if p0.Phi() != 0 {
		t.Fatalf("unrotated phi = %d", p0.Phi())
	}
	if p1.K() != 2 {
		t.Fatalf("K = %d", p1.K())
	}
}

func TestBoundsAreCopies(t *testing.T) {
	e, _ := New(testSpace(), []metric.Vector{{0, 0}})
	b := e.Bounds()
	b[0].Lo = 99
	if e.Bounds()[0].Lo == 99 {
		t.Fatal("Bounds leaked internal state")
	}
}

func TestEmbeddingWithEditDistance(t *testing.T) {
	// "Arbitrary metric space" claim: strings under edit distance.
	space := metric.EditSpace("dna", 8)
	lms := []string{"AAAAAAAA", "GGGGGGGG"}
	e, err := New(space, lms)
	if err != nil {
		t.Fatal(err)
	}
	im := e.Map("AAAAGGGG")
	if im[0] != 4 || im[1] != 4 {
		t.Fatalf("image = %v, want [4 4]", im)
	}
	_, cube, err := e.QueryCube("AAAAAAAT", 1)
	if err != nil {
		t.Fatal(err)
	}
	// The image of AAAAAAAA (distance 1) must lie inside the cube.
	img := e.Map("AAAAAAAA")
	for i := range img {
		if img[i] < cube[i].Lo || img[i] > cube[i].Hi {
			t.Fatalf("dim %d: %v outside %+v", i, img[i], cube[i])
		}
	}
}
