// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library's go/ast and go/types. It exists because the repository takes
// no external dependencies; the API mirrors the real framework closely
// enough that the analyzers under internal/analysis/... could be ported
// to x/tools verbatim.
//
// An Analyzer inspects one type-checked package at a time through a
// Pass and reports Diagnostics. Diagnostics can be suppressed in the
// source with annotation comments:
//
//	//lint:allow <analyzer> [reason...]       suppresses diagnostics of
//	                                          <analyzer> on the same line
//	                                          or the line directly below
//	//lint:file-allow <analyzer> [reason...]  suppresses diagnostics of
//	                                          <analyzer> in the whole file
//
// The annotation syntax is directive-shaped (no space after //) so
// gofmt leaves it alone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the package held by pass and reports findings
	// through pass.Reportf.
	Run func(pass *Pass)
}

// Diagnostic is one finding, positioned in the file set it came from.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one package's syntax and type information to an
// Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunPackage applies one analyzer to a type-checked package and returns
// the diagnostics that survive //lint:allow suppression, sorted by
// position.
func RunPackage(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	out := RawDiagnostics(a, fset, files, pkg, info)
	kept := out[:0]
	for _, d := range out {
		if !suppressed(fset, files, d) {
			kept = append(kept, d)
		}
	}
	return kept
}

// RawDiagnostics applies one analyzer and returns every diagnostic,
// including the ones a //lint:allow annotation would suppress, sorted
// by position. The allowaudit analyzer uses it to decide whether an
// annotation still suppresses anything.
func RawDiagnostics(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
	a.Run(pass)
	out := pass.diags
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out
}

// suppressed reports whether an annotation comment allows d.
func suppressed(fset *token.FileSet, files []*ast.File, d Diagnostic) bool {
	for _, f := range files {
		if fset.Position(f.Pos()).Filename != d.Pos.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, _, fileWide, ok := ParseAllow(c.Text)
				if !ok || name != d.Analyzer {
					continue
				}
				pos := fset.Position(c.Pos())
				if pos.Line == d.Pos.Line && pos.Column == d.Pos.Column {
					// The diagnostic points AT this annotation (allowaudit
					// auditing the comment); an allow cannot vouch for
					// itself.
					continue
				}
				if fileWide {
					return true
				}
				if pos.Line == d.Pos.Line || pos.Line == d.Pos.Line-1 {
					return true
				}
			}
		}
	}
	return false
}

// ParseAllow decodes a //lint:allow or //lint:file-allow comment,
// returning the named analyzer, the free-text reason after the name
// ("" when missing — the allowaudit analyzer flags that), and whether
// the allowance is file-wide.
func ParseAllow(text string) (analyzer, reason string, fileWide bool, ok bool) {
	body, found := strings.CutPrefix(text, "//lint:")
	if !found {
		return "", "", false, false
	}
	switch {
	case strings.HasPrefix(body, "allow "):
		body = strings.TrimPrefix(body, "allow ")
	case strings.HasPrefix(body, "file-allow "):
		body, fileWide = strings.TrimPrefix(body, "file-allow "), true
	default:
		return "", "", false, false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", "", false, false
	}
	return fields[0], strings.Join(fields[1:], " "), fileWide, true
}

// liveCapable lists the packages that run the protocol over the live
// concurrent runtime instead of the single-threaded simulation engine.
// The engine-owned contract (no goroutines/channels/sync, no wall
// clock) exists to keep simulated trials reproducible; these packages
// implement or drive the live runtime, where real concurrency and real
// time are the whole point, so the analyzers that enforce the contract
// skip them by design rather than through //lint:allow annotations.
var liveCapable = []string{
	"landmarkdht/internal/runtime/livert",
	"landmarkdht/internal/runtime/netrt",
	"landmarkdht/cmd/lmlive",
	"landmarkdht/cmd/lmchaos",
	"landmarkdht/cmd/lmnode",
}

// LiveCapable reports whether the package with the given import path is
// exempt from the engine-owned single-threaded/virtual-clock contract.
// Besides exact matches it accepts a trailing path segment of an entry
// ("livert" for "landmarkdht/internal/runtime/livert"), because test
// fixtures type-check under their directory basename.
func LiveCapable(path string) bool {
	for _, entry := range liveCapable {
		if path == entry || strings.HasSuffix(entry, "/"+path) {
			return true
		}
	}
	return false
}

// QualifiedName resolves a selector expression of the form pkg.Name
// where pkg is an imported package qualifier, returning the package's
// import path and the selected name. ok is false for any other
// selector (method call, field access, shadowed qualifier).
func QualifiedName(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// ReceiverNamed returns the named type of a method call receiver
// expression, unwrapping pointers and aliases. It returns nil when the
// expression's type is not (a pointer to) a named type.
func ReceiverNamed(info *types.Info, expr ast.Expr) *types.Named {
	t := info.TypeOf(expr)
	if t == nil {
		return nil
	}
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}
