package analysis_test

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"landmarkdht/internal/analysis"
)

// buildPass type-checks the given sources (one file each) as one
// package and wraps them in a Pass.
func buildPass(t *testing.T, sources ...string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for i, src := range sources {
		f, err := parser.ParseFile(fset, fmt.Sprintf("file%d.go", i), src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check("p", fset, files, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
}

func nodeNames(nodes []*analysis.FuncNode) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name()
	}
	return out
}

func findNode(t *testing.T, g *analysis.CallGraph, name string) *analysis.FuncNode {
	t.Helper()
	for _, n := range g.Funcs {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no function %q in graph (have %v)", name, nodeNames(g.Funcs))
	return nil
}

func reachableNames(reach map[*analysis.FuncNode]bool) map[string]bool {
	out := make(map[string]bool, len(reach))
	for n := range reach {
		out[n.Name()] = true
	}
	return out
}

func TestCallGraphCrossFileAndMethods(t *testing.T) {
	pass := buildPass(t,
		`package p

type T struct{}

//lint:context executor
func root(t *T) {
	t.direct()
	cb := t.value // method value: counts as a reference
	cb()
	crossFile()
}

func (t *T) direct() {}
func (t *T) value()  {}
func unreferenced()  {}
`,
		`package p

func crossFile() { leaf() }
func leaf()      {}
`)
	g := analysis.NewCallGraph(pass)
	reach := reachableNames(g.Reachable(analysis.ContextExecutor))
	for _, want := range []string{"root", "T.direct", "T.value", "crossFile", "leaf"} {
		if !reach[want] {
			t.Errorf("expected %s reachable from executor, got %v", want, reach)
		}
	}
	if reach["unreferenced"] {
		t.Errorf("unreferenced function should not be reachable")
	}
}

func TestCallGraphRecursion(t *testing.T) {
	pass := buildPass(t, `package p

//lint:context executor
func root() { ping(3) }

func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) { ping(n) } // mutual recursion

func self(n int) { self(n) } // direct recursion, unreachable
`)
	g := analysis.NewCallGraph(pass)
	reach := reachableNames(g.Reachable(analysis.ContextExecutor))
	if !reach["ping"] || !reach["pong"] {
		t.Errorf("mutually recursive pair should be reachable, got %v", reach)
	}
	if reach["self"] {
		t.Errorf("self should be unreachable")
	}
	// PathFrom must terminate and find the shortest chain through the
	// cycle.
	path := g.PathFrom(analysis.ContextExecutor, findNode(t, g, "pong"))
	if got := analysis.PathString(path); got != "root → ping → pong" {
		t.Errorf("PathFrom(pong) = %q, want %q", got, "root → ping → pong")
	}
}

func TestCallGraphGoSevering(t *testing.T) {
	pass := buildPass(t, `package p

//lint:context executor
func root() {
	go spawned()
	go func() { inLiteral() }()
	go spawned2(prep()) // argument evaluated on the caller's goroutine
	stillHere()
}

func spawned()       {}
func spawned2(x int) {}
func inLiteral()     {}
func prep() int      { return 0 }
func stillHere()     {}
`)
	g := analysis.NewCallGraph(pass)
	root := findNode(t, g, "root")
	all := make(map[string]bool)
	for _, c := range root.Callees {
		all[c.Name()] = true
	}
	for _, want := range []string{"spawned", "spawned2", "inLiteral", "prep", "stillHere"} {
		if !all[want] {
			t.Errorf("Callees should include %s (all references), got %v", want, nodeNames(root.Callees))
		}
	}
	reach := reachableNames(g.Reachable(analysis.ContextExecutor))
	for _, severed := range []string{"spawned", "spawned2", "inLiteral"} {
		if reach[severed] {
			t.Errorf("%s runs on a fresh goroutine and must not be executor-reachable, got %v", severed, reach)
		}
	}
	for _, want := range []string{"prep", "stillHere"} {
		if !reach[want] {
			t.Errorf("%s runs on the executor and must be reachable, got %v", want, reach)
		}
	}
}

func TestCallGraphContextAnnotations(t *testing.T) {
	pass := buildPass(t, `package p

// docRoot has the annotation inside a multi-line doc comment.
//
//lint:context executor
func docRoot() {}

//lint:context warpdrive
func unknownCtx() {}

var x = 1 //lint:context executor

func plain() {}
`)
	g := analysis.NewCallGraph(pass)
	if got := findNode(t, g, "docRoot").Contexts; len(got) != 1 || got[0] != "executor" {
		t.Errorf("docRoot contexts = %v, want [executor]", got)
	}
	if got := findNode(t, g, "plain").Contexts; len(got) != 0 {
		t.Errorf("plain contexts = %v, want none", got)
	}
	if len(g.DanglingContexts()) != 1 {
		t.Errorf("expected 1 dangling //lint:context, got %d", len(g.DanglingContexts()))
	}
	unknown := g.UnknownContexts()
	if len(unknown) != 1 {
		t.Fatalf("expected 1 unknown context, got %v", unknown)
	}
	for _, name := range unknown {
		if name != "warpdrive" {
			t.Errorf("unknown context name = %q, want warpdrive", name)
		}
	}
}

func TestCallGraphInspectBodySeversGoroutines(t *testing.T) {
	pass := buildPass(t, `package p

func f(ch chan int) {
	ch <- 1 // executes as part of f
	go func() {
		ch <- 2 // executes on a fresh goroutine: severed
	}()
	go g(<-ch) // the receive is evaluated by f itself
}

func g(int) {}
`)
	g := analysis.NewCallGraph(pass)
	f := findNode(t, g, "f")
	sends, recvs := 0, 0
	g.InspectBody(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			sends++
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				recvs++
			}
		}
		return true
	})
	if sends != 1 {
		t.Errorf("InspectBody saw %d sends, want 1 (the go-literal body is severed)", sends)
	}
	if recvs != 1 {
		t.Errorf("InspectBody saw %d receives, want 1 (go-call arguments run on f)", recvs)
	}
}
