package nogoroutine_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/nogoroutine"
)

func TestNogoroutine(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "testdata/src/a")
}

// TestLiveCapableExempt checks that a live-capable package (matched by
// analysis.LiveCapable) passes with zero diagnostics despite using
// goroutines, channels, select, and sync throughout.
func TestLiveCapableExempt(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "testdata/src/livert")
}
