package nogoroutine_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/nogoroutine"
)

func TestNogoroutine(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "testdata/src/a")
}
