// Package nogoroutine forbids concurrency inside engine-owned code. A
// sim.Engine is strictly single-threaded: every event handler runs to
// completion on the driving goroutine, and that is what makes the event
// sequence (and therefore every statistic and trace) reproducible.
// Goroutines, channels, and sync primitives inside engine-driven
// packages reintroduce scheduler nondeterminism.
//
// Parallelism belongs one level up, in the per-trial runner that drives
// independent engines on separate goroutines; those few files carry a
// //lint:file-allow nogoroutine annotation.
//
// The live-capable packages (analysis.LiveCapable: the livert runtime
// and cmd/lmlive) are exempt as a matter of scope, not annotation:
// they implement the concurrent runtime the protocol runs over in live
// mode, so goroutines, channels and sync primitives are their job. The
// protocol packages themselves (chord, core) remain engine-owned — they
// reach concurrency only through the runtime seams.
package nogoroutine

import (
	"go/ast"
	"go/token"
	"go/types"

	"landmarkdht/internal/analysis"
)

// Analyzer flags go statements, channel operations and types, select
// statements, and any use of sync or sync/atomic.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "forbid goroutines, channels, and sync primitives in single-threaded " +
		"engine-owned code; per-trial parallel runners annotate //lint:file-allow nogoroutine",
	Run: run,
}

func run(pass *analysis.Pass) {
	if analysis.LiveCapable(pass.Pkg.Path()) {
		return // live-runtime package: concurrency is in scope by design
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in single-threaded engine-owned code")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in single-threaded engine-owned code")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in single-threaded engine-owned code")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in single-threaded engine-owned code")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in single-threaded engine-owned code")
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel in single-threaded engine-owned code")
					}
				}
			case *ast.SelectorExpr:
				if path, name, ok := analysis.QualifiedName(pass.Info, n); ok &&
					(path == "sync" || path == "sync/atomic") {
					pass.Reportf(n.Pos(), "use of %s.%s in single-threaded engine-owned code", path, name)
				}
			}
			return true
		})
	}
}
