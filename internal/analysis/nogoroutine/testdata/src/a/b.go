//lint:file-allow nogoroutine this file models the per-trial parallel runner

package a

import "sync"

// parallelTrials is the allowed shape: independent engines driven on
// separate goroutines, coordinated only at the join point.
func parallelTrials(n int, run func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(i)
		}()
	}
	wg.Wait()
}
