// Package a is the nogoroutine fixture: concurrency constructs are
// flagged in engine-owned code.
package a

import "sync" // the qualifier uses below are what get flagged

func spawn() {
	ch := make(chan int)    // want "channel type"
	go func() { ch <- 1 }() // want "go statement" "channel send"
	<-ch                    // want "channel receive"
}

func locked(mu *sync.Mutex) { // want "use of sync.Mutex"
	mu.Lock()
	defer mu.Unlock()
}

func wait(a, b chan int) int { // want "channel type"
	select { // want "select statement"
	case v := <-a: // want "channel receive"
		return v
	case v := <-b: // want "channel receive"
		return v
	}
}

func drainAll(ch chan int) int { // want "channel type"
	sum := 0
	for v := range ch { // want "range over channel"
		sum += v
	}
	return sum
}

// sequential shows plain single-threaded code passes.
func sequential(xs []int) int {
	sum := 0
	for _, v := range xs {
		sum += v
	}
	return sum
}
