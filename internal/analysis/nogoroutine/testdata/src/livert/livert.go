// Package livert stands in for the live-capable runtime packages
// (analysis.LiveCapable). Concurrency is their job, so nothing in this
// file should be flagged — the fixture carries no want expectations.
package livert

import "sync"

type inbox struct {
	mu    sync.Mutex
	queue chan []byte
	wg    sync.WaitGroup
}

func (in *inbox) run() {
	in.wg.Add(1)
	go func() {
		defer in.wg.Done()
		for msg := range in.queue {
			in.mu.Lock()
			_ = msg
			in.mu.Unlock()
		}
	}()
}

func (in *inbox) post(msg []byte) bool {
	select {
	case in.queue <- msg:
		return true
	default:
		return false
	}
}

func (in *inbox) take() []byte {
	return <-in.queue
}
