package detrand_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "testdata/src/a")
}
