// Package a is the detrand fixture: global-source draws are flagged,
// explicitly seeded generators are not.
package a

import (
	"math/rand"
)

func globalDraw() int {
	return rand.Intn(10) // want "process-global random source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global random source"
}

func globalFuncValue() func() float64 {
	return rand.Float64 // want "process-global random source"
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// typeUse shows that referring to math/rand types is fine.
func typeUse(rng *rand.Rand) rand.Source {
	return rand.NewSource(rng.Int63())
}

func annotated() int {
	return rand.Int() //lint:allow detrand fixture demonstrates the escape hatch
}
