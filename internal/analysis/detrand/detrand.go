// Package detrand forbids randomness that does not flow from an
// explicit seed. The simulator's reproducibility contract (a sim.Engine
// run is bit-for-bit deterministic per seed) dies silently the moment
// any code path draws from math/rand's process-global source, which is
// seeded from entropy at startup. All randomness must come from the
// engine's seeded RNG (sim.Engine.Rand) or from an explicitly seeded
// rand.New(rand.NewSource(seed)).
package detrand

import (
	"go/ast"
	"go/types"

	"landmarkdht/internal/analysis"
)

// Analyzer flags uses of math/rand (and math/rand/v2) top-level
// functions, which draw from a process-global, entropy-seeded source.
// Constructors (rand.New, rand.NewSource, rand.NewZipf) and types are
// allowed: they are how seeded generators are built.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand global-source functions; all randomness must come " +
		"from an explicitly seeded generator (sim.Engine.Rand or rand.New(rand.NewSource(seed)))",
	Run: run,
}

// allowed lists the math/rand package-level functions that do NOT touch
// the global source.
var allowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// allowedV2 is the same for math/rand/v2. Note that v2 has no Seed: its
// top-level functions are always entropy-seeded, so every one of them
// is forbidden except the seeded-generator constructors.
var allowedV2 = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := analysis.QualifiedName(pass.Info, sel)
			if !ok {
				return true
			}
			var bad bool
			switch path {
			case "math/rand":
				bad = !allowed[name]
			case "math/rand/v2":
				bad = !allowedV2[name]
			default:
				return true
			}
			// Types (rand.Rand, rand.Source) and constants are fine;
			// only function references reach the global source.
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); bad && isFunc {
				pass.Reportf(sel.Pos(),
					"call to %s.%s uses the process-global random source; draw from the engine's seeded RNG (sim.Engine.Rand) instead",
					path, name)
			}
			return true
		})
	}
}
