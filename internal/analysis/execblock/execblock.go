// Package execblock forbids blocking operations in protocol-executor
// context. The live runtimes (runtime/livert, runtime/netrt) keep the
// paper's one-message-at-a-time correctness argument by running every
// protocol callback on a single executor goroutine; anything that
// parks that goroutine — a channel operation, a lock that a blocked
// holder owns, network I/O, a sleep — stalls the whole node: no
// queries make progress, timers pile up, and Do/Await callers hang.
// Worst case, the executor waits on something only the executor itself
// can satisfy, a self-deadlock (Runtime.Do from executor context).
//
// Executor context is declared at the roots, not inferred: entry
// points that run on the executor carry a //lint:context executor
// annotation (livert's Transport/NodeRegistry surface, netrt's
// executor-owned protocol steps). The analyzer builds the package call
// graph (analysis.NewCallGraph) and reports every blocking operation
// — per analysis.BlockingOp — in any function reachable from a root,
// excluding code severed onto fresh goroutines by `go` statements.
//
// Bounded, provably safe sites (a queue mutex whose holders never
// block, a net.Pipe write serviced by a dedicated reader) are
// annotated //lint:allow execblock <reason>; the lockheld analyzer
// mechanically checks the "holders never block" half of such claims.
package execblock

import (
	"go/ast"

	"landmarkdht/internal/analysis"
)

// Analyzer flags blocking operations reachable from executor context.
var Analyzer = &analysis.Analyzer{
	Name: "execblock",
	Doc: "forbid blocking operations (channel ops, Lock, net I/O, Sleep, Wait, Do/Await) " +
		"in code reachable from //lint:context executor roots; annotate provably bounded sites with //lint:allow execblock <reason>",
	Run: run,
}

func run(pass *analysis.Pass) {
	g := analysis.NewCallGraph(pass)
	reach := g.Reachable(analysis.ContextExecutor)
	if len(reach) == 0 {
		return
	}
	for _, fn := range g.Funcs {
		if !reach[fn] {
			continue
		}
		path := g.PathFrom(analysis.ContextExecutor, fn)
		via := ""
		if len(path) > 1 {
			via = " (reachable via " + analysis.PathString(path) + ")"
		}
		// The comm ops of a select belong to the select: it alone
		// decides whether they block (a default clause makes it a poll).
		skip := make(map[ast.Node]bool)
		g.InspectBody(fn, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, op := range analysis.CommOps(sel) {
					skip[op] = true
				}
			}
			if skip[n] {
				return true
			}
			if desc, ok := analysis.BlockingOp(pass.Info, n); ok {
				pass.Reportf(n.Pos(),
					"%s on the protocol executor%s; move the work off the executor or annotate //lint:allow execblock <reason>",
					desc, via)
			}
			return true
		})
	}
}
