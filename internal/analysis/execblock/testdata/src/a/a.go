// Fixture for the execblock analyzer: blocking operations in code
// reachable from //lint:context executor roots are diagnostics; code
// severed onto fresh goroutines or unreachable from a root is not.
package a

import (
	"net"
	"sync"
	"time"
)

var (
	mu sync.Mutex
	ch = make(chan int)
)

// Runtime mimics the live runtime's blocking bridge: Do waits on the
// executor, so calling it FROM the executor self-deadlocks.
type Runtime struct{}

func (r *Runtime) Do(f func()) {}

//lint:context executor
func Step(conn net.Conn, buf []byte) {
	ch <- 1                                    // want "channel send on the protocol executor"
	<-ch                                       // want "channel receive on the protocol executor"
	mu.Lock()                                  // want "sync.Mutex.Lock on the protocol executor"
	mu.Unlock()                                // Unlock never blocks
	time.Sleep(time.Millisecond)               // want "time.Sleep on the protocol executor"
	if _, err := conn.Write(buf); err != nil { // want "net.Conn.Write on the protocol executor"
		return
	}
	helper()
	go spawned()
	go func() {
		time.Sleep(time.Second) // severed: runs on a fresh goroutine
	}()
	select { // a select with default polls; its comm ops never block
	case v := <-ch:
		_ = v
	default:
	}
	select { // want "blocking select on the protocol executor"
	case v := <-ch:
		_ = v
	}
	mu.Lock() //lint:allow execblock bounded critical section; holders never block
	mu.Unlock()
}

//lint:context executor
func StepDo(rt *Runtime) {
	rt.Do(func() {}) // want "Runtime.Do"
}

func helper() {
	ch <- 2 // want "reachable via Step → helper"
}

func spawned() {
	time.Sleep(time.Second) // own goroutine: not executor context
}

func unreached() {
	ch <- 3 // no executor root reaches this
}
