package execblock_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/execblock"
)

func TestExecblock(t *testing.T) {
	analysistest.Run(t, execblock.Analyzer, "testdata/src/a")
}
