// Call-graph support for cross-function analyzers.
//
// The original analyzers (detrand, wallclock, maporder, nogoroutine)
// are purely local: every diagnostic is decided by one AST node. The
// concurrency-contract analyzers (execblock, lockheld, errdrop) need
// one hop more — "does this function, through any chain of same-package
// calls, reach a blocking operation?" — so this file gives a Pass a
// per-package call graph with reachability queries.
//
// Scope and precision, deliberately modest:
//
//   - Nodes are the package's declared functions and methods
//     (*ast.FuncDecl). Function literals belong to the declaration they
//     appear in: their statements are attributed to the enclosing
//     function, except literals launched with `go`, which run on a new
//     goroutine and are severed from the executor-context walk (see
//     below).
//   - An edge A → B exists when A's body mentions B at all — a direct
//     call, a method call, a method value, or a bare function reference
//     passed as a callback. Referencing a function is treated as
//     (potentially) calling it, which errs toward reporting; provably
//     safe sites are annotated away with //lint:allow.
//   - Two edge sets are kept. Callees contains every reference;
//     ExecCallees drops references made from `go` statements (the `go`
//     callee and the bodies of go-launched literals), because code on a
//     fresh goroutine is by definition no longer in the caller's
//     execution context. Context reachability (execblock) and
//     may-block summaries (lockheld) use ExecCallees; data-flow-ish
//     summaries where the goroutine is irrelevant (errdrop's wire-path
//     propagation) use Callees.
//
// # Root annotations
//
// Entry points declare their execution context in the source:
//
//	//lint:context executor
//	func (n *Node) process(q *queryMsg) { ... }
//
// The comment attaches to the function declaration directly below it
// (or to the declaration's doc comment). Analyzers query
// Reachable("executor") for the set of functions that can run in that
// context. Annotations that attach to no function declaration are
// reported by the allowaudit analyzer.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ContextExecutor is the one context name currently in use: code
// running on a live runtime's single protocol-executor goroutine.
const ContextExecutor = "executor"

// KnownContexts lists the context names analyzers understand;
// allowaudit flags //lint:context annotations naming anything else.
var KnownContexts = map[string]bool{ContextExecutor: true}

// FuncNode is one declared function or method in the package.
type FuncNode struct {
	// Obj is the function's type-checker object.
	Obj *types.Func
	// Decl is the syntax, including the body the edges came from.
	Decl *ast.FuncDecl
	// Contexts holds the //lint:context names attached to the
	// declaration.
	Contexts []string
	// Callees are all same-package functions referenced from the body.
	Callees []*FuncNode
	// ExecCallees are the Callees minus references severed by `go`
	// statements: the functions that may run as part of this
	// function's own execution.
	ExecCallees []*FuncNode
}

// Name returns the diagnostic-friendly name ("Type.Method" or "Func").
func (n *FuncNode) Name() string {
	if recv := n.Decl.Recv; recv != nil && len(recv.List) > 0 {
		t := recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + n.Obj.Name()
		}
		if ix, ok := t.(*ast.IndexExpr); ok {
			if id, ok := ix.X.(*ast.Ident); ok {
				return id.Name + "." + n.Obj.Name()
			}
		}
	}
	return n.Obj.Name()
}

// CallGraph is the per-package call graph of one Pass.
type CallGraph struct {
	// Funcs lists every declared function in deterministic
	// (position) order.
	Funcs []*FuncNode

	pass  *Pass
	byObj map[*types.Func]*FuncNode
	// dangling are //lint:context comments that attach to no
	// function declaration; allowaudit reports them.
	dangling []token.Pos
	// unknown are //lint:context comments naming a context outside
	// KnownContexts, with the bad name.
	unknown map[token.Pos]string
}

// NewCallGraph builds the call graph for the pass's package.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		pass:    pass,
		byObj:   make(map[*types.Func]*FuncNode),
		unknown: make(map[token.Pos]string),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{Obj: obj, Decl: fd}
			g.byObj[obj] = n
			g.Funcs = append(g.Funcs, n)
		}
	}
	sort.Slice(g.Funcs, func(i, j int) bool { return g.Funcs[i].Decl.Pos() < g.Funcs[j].Decl.Pos() })
	g.attachContexts()
	for _, n := range g.Funcs {
		g.collectEdges(n)
	}
	return g
}

// NodeOf returns the graph node for a function object, or nil for
// objects declared outside the package (or function literals).
func (g *CallGraph) NodeOf(obj types.Object) *FuncNode {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.byObj[fn]
}

// DanglingContexts returns the positions of //lint:context comments
// that attach to no function declaration.
func (g *CallGraph) DanglingContexts() []token.Pos { return g.dangling }

// UnknownContexts returns the positions and names of //lint:context
// comments naming a context no analyzer knows.
func (g *CallGraph) UnknownContexts() map[token.Pos]string { return g.unknown }

// attachContexts parses every //lint:context comment and binds it to
// the function declaration it annotates: the declaration whose doc
// comment contains it, or the one starting on the next line.
func (g *CallGraph) attachContexts() {
	type ann struct {
		name string
		pos  token.Pos
		line int
		file string
	}
	var anns []ann
	for _, f := range g.pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseContext(c.Text)
				if !ok {
					continue
				}
				p := g.pass.Fset.Position(c.Pos())
				anns = append(anns, ann{name: name, pos: c.Pos(), line: p.Line, file: p.Filename})
			}
		}
	}
	for _, a := range anns {
		if !KnownContexts[a.name] {
			g.unknown[a.pos] = a.name
		}
		attached := false
		for _, n := range g.Funcs {
			declPos := g.pass.Fset.Position(n.Decl.Pos())
			if declPos.Filename != a.file {
				continue
			}
			// The annotation belongs to this declaration when it sits
			// inside the doc-comment block directly above it (any line
			// between the doc's start and the func line) or on the
			// declaration's own line.
			lo := declPos.Line
			if n.Decl.Doc != nil {
				lo = g.pass.Fset.Position(n.Decl.Doc.Pos()).Line
			} else {
				lo = declPos.Line - 1
			}
			if a.line >= lo && a.line <= declPos.Line {
				n.Contexts = append(n.Contexts, a.name)
				attached = true
				break
			}
		}
		if !attached {
			g.dangling = append(g.dangling, a.pos)
		}
	}
}

// parseContext decodes a //lint:context comment, returning the context
// name.
func parseContext(text string) (name string, ok bool) {
	body, found := strings.CutPrefix(text, "//lint:context ")
	if !found {
		return "", false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// collectEdges fills n.Callees and n.ExecCallees from the body.
func (g *CallGraph) collectEdges(n *FuncNode) {
	if n.Decl.Body == nil {
		return
	}
	all := make(map[*FuncNode]bool)
	exec := make(map[*FuncNode]bool)
	add := func(target *FuncNode, severed bool) {
		all[target] = true
		if !severed {
			exec[target] = true
		}
	}
	g.walkRefs(n.Decl.Body, false, add)
	n.Callees = sortNodes(all)
	n.ExecCallees = sortNodes(exec)
}

// walkRefs walks a body collecting references to same-package
// functions. severed marks subtrees that run on a different goroutine:
// the callee expression of a `go` statement and, transitively, the
// bodies of go-launched function literals.
func (g *CallGraph) walkRefs(body ast.Node, severed bool, add func(*FuncNode, bool)) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			// Arguments are evaluated on the current goroutine; only
			// the invoked function runs elsewhere.
			for _, arg := range node.Call.Args {
				g.walkRefs(arg, severed, add)
			}
			g.walkRefs(node.Call.Fun, true, add)
			return false
		case *ast.Ident:
			if target := g.NodeOf(g.pass.Info.Uses[node]); target != nil {
				add(target, severed)
			}
		}
		return true
	})
}

// InspectBody walks fn's body like ast.Inspect, skipping subtrees that
// run on a different goroutine (go-statement callees and the bodies of
// go-launched function literals). Statements attributed to fn by this
// walk execute as part of fn's own call — the walk every
// execution-context analyzer wants.
func (g *CallGraph) InspectBody(fn *FuncNode, visit func(ast.Node) bool) {
	if fn.Decl.Body == nil {
		return
	}
	inspectSevered(fn.Decl.Body, visit)
}

// inspectSevered is InspectBody's engine, reusable on any subtree.
func inspectSevered(body ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(body, func(node ast.Node) bool {
		if gs, ok := node.(*ast.GoStmt); ok {
			if !visit(node) {
				return false
			}
			for _, arg := range gs.Call.Args {
				inspectSevered(arg, visit)
			}
			// The callee runs on the new goroutine: skipped.
			return false
		}
		return visit(node)
	})
}

// Reachable returns the set of functions reachable (via ExecCallees)
// from every root annotated with the given context, roots included.
// Cycles — recursion, mutual recursion — are handled by the visited
// set.
func (g *CallGraph) Reachable(context string) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	var visit func(n *FuncNode)
	visit = func(n *FuncNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.ExecCallees {
			visit(c)
		}
	}
	for _, n := range g.Funcs {
		for _, ctx := range n.Contexts {
			if ctx == context {
				visit(n)
			}
		}
	}
	return seen
}

// PathFrom returns a shortest call path from a context root to target
// (both included), or nil when target is unreachable. Ties break on
// declaration order, so diagnostics are deterministic.
func (g *CallGraph) PathFrom(context string, target *FuncNode) []*FuncNode {
	// BFS over ExecCallees from all roots at once.
	prev := make(map[*FuncNode]*FuncNode)
	seen := make(map[*FuncNode]bool)
	var frontier []*FuncNode
	for _, n := range g.Funcs {
		for _, ctx := range n.Contexts {
			if ctx == context && !seen[n] {
				seen[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	for len(frontier) > 0 {
		var next []*FuncNode
		for _, n := range frontier {
			if n == target {
				var path []*FuncNode
				for at := n; at != nil; at = prev[at] {
					path = append([]*FuncNode{at}, path...)
				}
				return path
			}
			for _, c := range n.ExecCallees {
				if !seen[c] {
					seen[c] = true
					prev[c] = n
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	return nil
}

// PathString renders a call path as "a → b → c" for diagnostics.
func PathString(path []*FuncNode) string {
	names := make([]string, len(path))
	for i, n := range path {
		names[i] = n.Name()
	}
	return strings.Join(names, " → ")
}

func sortNodes(set map[*FuncNode]bool) []*FuncNode {
	out := make([]*FuncNode, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}
