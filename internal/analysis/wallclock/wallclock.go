// Package wallclock forbids reading or waiting on the host's real
// clock in simulated code paths. Simulated code measures time with the
// engine's virtual clock (sim.Time, Engine.Now) and waits by scheduling
// events (Engine.Schedule, AfterFunc, Ticker); a time.Now or time.Sleep
// smuggled into a sim-driven path couples results to host speed and
// breaks run-to-run reproducibility.
//
// Legitimate wall-clock timing (e.g. the experiment driver reporting
// how long a run really took) is annotated at the call site with
// //lint:allow wallclock. The live-capable packages (analysis.
// LiveCapable: the livert runtime and cmd/lmlive) are exempt wholesale
// — they run the protocol in real time, so the wall clock is their
// clock.
package wallclock

import (
	"go/ast"

	"landmarkdht/internal/analysis"
)

// Analyzer flags calls that read or wait on the host clock.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep/After and friends in simulated code; " +
		"use the virtual clock (sim.Time, Engine.Now, Engine.Schedule) or annotate //lint:allow wallclock",
	Run: run,
}

// forbidden lists the package time functions that touch the host clock.
// Pure value manipulation (time.Duration arithmetic, ParseDuration,
// constants) stays allowed.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) {
	if analysis.LiveCapable(pass.Pkg.Path()) {
		return // live-runtime package: real time is in scope by design
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := analysis.QualifiedName(pass.Info, sel)
			if !ok || path != "time" || !forbidden[name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock call time.%s in simulated code; use the virtual clock (sim.Time, Engine.Now/Schedule) or annotate //lint:allow wallclock",
				name)
			return true
		})
	}
}
