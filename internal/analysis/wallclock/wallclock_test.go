package wallclock_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "testdata/src/a")
}

// TestLiveCapableExempt checks that a live-capable package (matched by
// analysis.LiveCapable) passes with zero diagnostics despite reading
// and waiting on the wall clock.
func TestLiveCapableExempt(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "testdata/src/livert")
}
