package wallclock_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "testdata/src/a")
}
