// Package a is the wallclock fixture: host-clock reads and waits are
// flagged, virtual-time arithmetic is not, and the annotation escape
// hatch suppresses a legitimate wall-clock site.
package a

import "time"

func read() time.Time {
	return time.Now() // want "wall-clock call time.Now"
}

func wait() {
	time.Sleep(time.Millisecond) // want "wall-clock call time.Sleep"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock call time.Since"
}

func timer() <-chan time.Time {
	return time.After(time.Second) // want "wall-clock call time.After"
}

// virtualArithmetic only manipulates durations: allowed.
func virtualArithmetic(d time.Duration) time.Duration {
	return 2*d + 500*time.Millisecond
}

func annotatedTiming() time.Time {
	return time.Now() //lint:allow wallclock real elapsed-time reporting in the driver
}
