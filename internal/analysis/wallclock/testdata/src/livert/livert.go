// Package livert stands in for the live-capable runtime packages
// (analysis.LiveCapable). They run the protocol in real time, so the
// wall clock is fair game — the fixture carries no want expectations.
package livert

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func idle(d time.Duration) {
	time.Sleep(d)
}

func deadline(d time.Duration, fn func()) *time.Timer {
	_ = time.Now()
	return time.AfterFunc(d, fn)
}
