package loader

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestParseDirSkipsUnsatisfiedBuildTags pins the tag-paired-file case:
// a package with race_enabled.go (//go:build race) and
// race_disabled.go (//go:build !race) must type-check as ONE variant —
// the default-tag one — not both (a redeclaration error).
func TestParseDirSkipsUnsatisfiedBuildTags(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("on.go", "//go:build race\n\npackage p\n\nconst flag = true\n")
	write("off.go", "//go:build !race\n\npackage p\n\nconst flag = false\n")
	write("plain.go", "package p\n\nvar _ = flag\n")

	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range files {
		names = append(names, filepath.Base(fset.Position(f.Package).Filename))
	}
	if len(names) != 2 {
		t.Fatalf("parsed %v, want the !race variant plus the plain file", names)
	}
	for _, n := range names {
		if n == "on.go" {
			t.Fatalf("race-tagged file parsed under default tags: %v", names)
		}
	}
}

// TestSatisfiesBuildHostTags: GOOS/GOARCH constraints evaluate against
// the host, and files with no constraint always load.
func TestSatisfiesBuildHostTags(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"package p\n", true},
		{"//go:build linux || darwin || windows\n\npackage p\n", true},
		{"//go:build plan9 && race\n\npackage p\n", false},
		{"//go:build !race\n\npackage p\n", true},
	}
	for i, c := range cases {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", c.src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		if got := satisfiesBuild(fset, f); got != c.want {
			t.Errorf("case %d: satisfiesBuild = %v, want %v", i, got, c.want)
		}
	}
}
