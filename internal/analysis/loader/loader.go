// Package loader discovers, parses, and type-checks every package of
// this module using only the standard library: directories are walked
// from the module root (the import path of a directory is the module
// path plus its relative path), intra-module imports are resolved
// against the packages already checked in dependency order, and
// standard-library imports are type-checked from $GOROOT source via
// go/importer's "source" compiler. No go/packages, no network, no
// export data required.
//
// Test files are not loaded: the determinism contract the analyzers
// enforce protects the simulator itself; tests assert it from outside.
package loader

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info hold the type-check results.
	Types *types.Package
	Info  *types.Info
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, "module")
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		mod := strings.TrimSpace(rest)
		if unq, err := strconv.Unquote(mod); err == nil {
			mod = unq
		}
		if mod == "" {
			break
		}
		return mod, nil
	}
	return "", fmt.Errorf("loader: no module declaration in %s/go.mod", root)
}

// Load parses and type-checks every package under the module root, in
// dependency order. The returned packages are sorted by import path.
func Load(root string) (*token.FileSet, []*Package, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	pkgs, err := discover(fset, root, mod)
	if err != nil {
		return nil, nil, err
	}
	ordered, err := sortByDeps(pkgs, mod)
	if err != nil {
		return nil, nil, err
	}
	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*types.Package, len(ordered)),
	}
	for _, p := range ordered {
		conf := types.Config{Importer: imp}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		tpkg, err := conf.Check(p.Path, fset, p.Files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("loader: type-checking %s: %w", p.Path, err)
		}
		p.Types, p.Info = tpkg, info
		imp.pkgs[p.Path] = tpkg
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Path < ordered[j].Path })
	return fset, ordered, nil
}

// moduleImporter resolves intra-module imports from the already-checked
// set and delegates everything else (the standard library) to the
// source importer.
type moduleImporter struct {
	std  types.ImporterFrom
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// discover walks the module tree and parses every directory holding
// non-test Go files into a Package (without types yet).
func discover(fset *token.FileSet, root, mod string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		ipath := mod
		if rel, _ := filepath.Rel(root, path); rel != "." {
			ipath = mod + "/" + filepath.ToSlash(rel)
		}
		pkgs = append(pkgs, &Package{Path: ipath, Dir: path, Files: files})
		return nil
	})
	return pkgs, err
}

// parseDir parses the directory's non-test Go files, with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !satisfiesBuild(fset, f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// satisfiesBuild reports whether a file's //go:build constraint (if
// any) holds under the host's default tag set. Only one variant of a
// tag-paired file (e.g. race_enabled.go / race_disabled.go) can
// type-check into a package, so files gated on tags that are off by
// default — custom tags like race included — are skipped exactly as
// `go build` would skip them.
func satisfiesBuild(fset *token.FileSet, f *ast.File) bool {
	pkgLine := fset.Position(f.Package).Line
	for _, cg := range f.Comments {
		if fset.Position(cg.Pos()).Line >= pkgLine {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == runtime.Compiler
			})
		}
	}
	return true
}

// sortByDeps orders packages so every intra-module import precedes its
// importer.
func sortByDeps(pkgs []*Package, mod string) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(pkgs))
	var ordered []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case visiting:
			return fmt.Errorf("loader: import cycle through %s", p.Path)
		case done:
			return nil
		}
		state[p.Path] = visiting
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				ipath, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byPath[ipath]; ok && (ipath == mod || strings.HasPrefix(ipath, mod+"/")) {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.Path] = done
		ordered = append(ordered, p)
		return nil
	}
	// Deterministic traversal order.
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}
