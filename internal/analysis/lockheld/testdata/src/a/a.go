// Fixture for the lockheld analyzer: blocking operations while a
// sync.Mutex/RWMutex is held are diagnostics; release-before-block,
// Cond.Wait, goroutine launches, and polling selects are not.
package a

import (
	"sync"
	"time"
)

type S struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
}

func (s *S) direct() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
	s.mu.Unlock()
}

func (s *S) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock() // holds to the end of the function
	s.ch <- 1           // want "channel send while holding s.mu"
}

func (s *S) released() {
	s.mu.Lock()
	x := len(s.ch)
	_ = x
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // lock released: fine
}

func (s *S) branchesReleased(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // released on every live path: fine
}

func (s *S) heldOnOnePath(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
	}
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
}

func (s *S) nested(t *S) {
	s.mu.Lock()
	t.mu.Lock() // want "sync.Mutex.Lock on t.mu while holding s.mu"
	t.mu.Unlock()
	s.mu.Unlock()
}

func sleepy() {
	time.Sleep(time.Millisecond)
}

func (s *S) transitive() {
	s.mu.Lock()
	sleepy() // want "call to sleepy, which may block"
	s.mu.Unlock()
}

func spawner() {
	go sleepy()
}

func (s *S) spawnsIndirect() {
	s.mu.Lock()
	spawner() // launching a goroutine does not block this one
	s.mu.Unlock()
}

func (s *S) waits() {
	s.mu.Lock()
	for len(s.ch) == 0 {
		s.cond.Wait() // Cond.Wait releases the lock it waits under
	}
	s.mu.Unlock()
}

func (s *S) poll() {
	s.mu.Lock()
	select { // a select with default polls; fine under a lock
	case v := <-s.ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

func (s *S) blockingSelect() {
	s.mu.Lock()
	select { // want "blocking select while holding s.mu"
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
}

func (s *S) allowed() {
	s.mu.Lock()
	s.ch <- 2 //lint:allow lockheld serializing sends is this mutex's purpose
	s.mu.Unlock()
}

type G struct {
	rw sync.RWMutex
	ch chan int
}

func (g *G) read() {
	g.rw.RLock()
	<-g.ch // want "channel receive while holding g.rw"
	g.rw.RUnlock()
}
