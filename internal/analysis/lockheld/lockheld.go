// Package lockheld flags mutexes held across blocking operations. The
// live runtimes follow one locking discipline: a sync.Mutex protects a
// bounded critical section — a few loads and stores — and is released
// before anything that can park the goroutine (channel operations,
// network I/O, sleeps, acquiring another lock, or calling a function
// that does any of those). A lock held across a blocking call turns
// every other user of that lock into a hostage of the slow operation:
// on the protocol executor that is a stalled node, and a lock held
// while acquiring a second lock is the raw material of lock-order
// deadlocks.
//
// The analyzer tracks, per function, which mutex expressions are held
// at each statement (Lock/RLock add, Unlock/RUnlock remove, `defer
// Unlock` holds to the end of the function) and reports any blocking
// operation — per analysis.BlockingOp — or any call to a same-package
// function that may transitively block (call-graph summary over
// analysis.NewCallGraph) while the held set is non-empty.
//
// Branches are merged conservatively: a lock held on any path into a
// statement counts as held (paths that end in return/branch do not
// leak their state past the join). sync.Cond.Wait is exempt — it
// atomically releases the lock it waits under, and requiring the lock
// held is its contract. Intentional exceptions (a write mutex whose
// entire point is to serialize connection writes) are annotated
// //lint:allow lockheld <reason>.
package lockheld

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"landmarkdht/internal/analysis"
)

// Analyzer flags blocking operations performed while a mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "forbid holding a sync.Mutex/RWMutex across blocking operations (channel ops, " +
		"net I/O, sleeps, nested Lock, calls that transitively block); annotate intentional sites with //lint:allow lockheld <reason>",
	Run: run,
}

func run(pass *analysis.Pass) {
	g := analysis.NewCallGraph(pass)
	blocks := mayBlock(pass, g)
	for _, fn := range g.Funcs {
		if fn.Decl.Body == nil {
			continue
		}
		w := &walker{pass: pass, g: g, blocks: blocks}
		w.block(fn.Decl.Body.List, lockSet{})
	}
}

// mayBlock summarizes, for every function in the package, whether
// calling it can block, and why. A function blocks when its own body
// (minus go-severed subtrees) contains a blocking operation, or when
// it calls — on its own goroutine — a function that does. The
// fixed-point iteration converges on cycles (recursion) because the
// summary only ever flips from "" to a reason.
func mayBlock(pass *analysis.Pass, g *analysis.CallGraph) map[*analysis.FuncNode]string {
	out := make(map[*analysis.FuncNode]string, len(g.Funcs))
	for _, fn := range g.Funcs {
		skip := make(map[ast.Node]bool)
		g.InspectBody(fn, func(n ast.Node) bool {
			if out[fn] != "" {
				return false
			}
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, op := range analysis.CommOps(sel) {
					skip[op] = true
				}
			}
			if skip[n] {
				return true
			}
			if desc, ok := analysis.BlockingOp(pass.Info, n); ok {
				out[fn] = desc
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs {
			if out[fn] != "" {
				continue
			}
			for _, callee := range fn.ExecCallees {
				if why := out[callee]; why != "" {
					out[fn] = "calls " + callee.Name() + ", which may block (" + why + ")"
					changed = true
					break
				}
			}
		}
	}
	return out
}

// lockSet maps the printed source form of a mutex expression ("l.mu",
// "n.linkMu") to the position where it was locked.
type lockSet map[string]token.Pos

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockSet) union(o lockSet) lockSet {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
	return s
}

// names returns the held lock names, sorted for deterministic
// diagnostics.
func (s lockSet) names() string {
	if len(s) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	if len(keys) > 1 {
		// Insertion sort: the set is tiny.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
	}
	out := keys[0]
	for _, k := range keys[1:] {
		out += ", " + k
	}
	return out
}

// walker tracks held locks through one function body.
type walker struct {
	pass   *analysis.Pass
	g      *analysis.CallGraph
	blocks map[*analysis.FuncNode]string
}

// block walks a statement list with the given entry lock set and
// returns the exit set plus whether the list always terminates the
// enclosing flow (return / branch).
func (w *walker) block(stmts []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, s := range stmts {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

// stmt processes one statement.
func (w *walker) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.expr(s.X, held), false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.expr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.expr(e, held)
		}
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.expr(v, held)
					}
				}
			}
		}
		return held, false
	case *ast.DeferStmt:
		// `defer mu.Unlock()` is the only defer that changes the held
		// set — and it does NOT release here: the lock stays held for
		// the rest of the function, which is exactly what the walker
		// should see. Other deferred calls run at return, when the
		// held set at that point applies; they are not re-checked.
		return held, false
	case *ast.GoStmt:
		// Launching the goroutine never blocks; its arguments are
		// evaluated here.
		for _, a := range s.Call.Args {
			held = w.expr(a, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.expr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		held = w.expr(s.Cond, held)
		thenHeld, thenTerm := w.block(s.Body.List, held.clone())
		elseHeld, elseTerm := held.clone(), false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseHeld, elseTerm = w.block(e.List, held.clone())
		case *ast.IfStmt:
			elseHeld, elseTerm = w.stmt(e, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return thenHeld.union(elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.expr(s.Cond, held)
		}
		bodyHeld, _ := w.block(s.Body.List, held.clone())
		return held.union(bodyHeld), false
	case *ast.RangeStmt:
		if desc, ok := analysis.BlockingOp(w.pass.Info, s); ok {
			w.report(s.Pos(), desc, held)
		}
		held = w.expr(s.X, held)
		bodyHeld, _ := w.block(s.Body.List, held.clone())
		return held.union(bodyHeld), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.expr(s.Tag, held)
		}
		return w.clauses(s.Body.List, held), false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		return w.clauses(s.Body.List, held), false
	case *ast.SelectStmt:
		if desc, ok := analysis.BlockingOp(w.pass.Info, s); ok {
			w.report(s.Pos(), desc, held)
		}
		return w.clauses(s.Body.List, held), false
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.SendStmt:
		w.report(s.Pos(), "channel send", held)
		held = w.expr(s.Chan, held)
		return w.expr(s.Value, held), false
	case *ast.IncDecStmt:
		return w.expr(s.X, held), false
	}
	return held, false
}

// clauses walks case/comm clause bodies, merging the exits of every
// non-terminating clause with the entry state (a switch may match no
// case; a select clause may never fire).
func (w *walker) clauses(list []ast.Stmt, held lockSet) lockSet {
	out := held.clone()
	for _, c := range list {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				held = w.expr(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			// Comm ops belong to the enclosing select (already judged as
			// a whole); only their operand sub-expressions are walked.
			held = w.comm(c.Comm, held)
			body = c.Body
		}
		end, term := w.block(body, held.clone())
		if !term {
			out = out.union(end)
		}
	}
	return out
}

// comm walks the operand sub-expressions of a select comm statement,
// skipping the top-level send/receive itself.
func (w *walker) comm(s ast.Stmt, held lockSet) lockSet {
	operand := func(e ast.Expr) lockSet {
		if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			return w.expr(ue.X, held)
		}
		return w.expr(e, held)
	}
	switch s := s.(type) {
	case *ast.SendStmt:
		held = w.expr(s.Chan, held)
		held = w.expr(s.Value, held)
	case *ast.ExprStmt:
		held = operand(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			held = operand(r)
		}
		for _, l := range s.Lhs {
			held = w.expr(l, held)
		}
	}
	return held
}

// expr scans one expression in evaluation order for lock transitions
// and blocking operations, returning the updated held set.
func (w *walker) expr(e ast.Expr, held lockSet) lockSet {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs when (and if) the value is called;
			// its lock discipline is its own. The closure is analyzed
			// for blocking only through the functions it is handed to.
			return false
		case *ast.CallExpr:
			if kind, lock := lockTransition(w.pass.Info, n); kind != 0 {
				switch kind {
				case lockAcquire:
					// Acquiring while already holding: flagged by the
					// generic blocking check below only if something is
					// held — then record the new lock.
					if len(held) > 0 {
						if desc, ok := analysis.BlockingOp(w.pass.Info, n); ok {
							w.report(n.Pos(), desc+" on "+lock, held)
						}
					}
					held[lock] = n.Pos()
				case lockRelease:
					delete(held, lock)
				}
				return true
			}
			if condWait(w.pass.Info, n) {
				// Cond.Wait atomically releases the lock it waits
				// under; holding it is the API contract, not a bug.
				return true
			}
			if len(held) > 0 {
				if desc, ok := analysis.BlockingOp(w.pass.Info, n); ok {
					w.report(n.Pos(), desc, held)
				} else if callee := calleeNode(w.pass.Info, w.g, n); callee != nil {
					if why := w.blocks[callee]; why != "" {
						w.report(n.Pos(), "call to "+callee.Name()+", which may block ("+why+")", held)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				w.report(n.Pos(), "channel receive", held)
			}
		}
		return true
	})
	return held
}

func (w *walker) report(pos token.Pos, desc string, held lockSet) {
	if len(held) == 0 {
		return
	}
	w.pass.Reportf(pos,
		"%s while holding %s; release the lock first or annotate //lint:allow lockheld <reason>",
		desc, held.names())
}

const (
	lockAcquire = 1
	lockRelease = 2
)

// lockTransition classifies mu.Lock/RLock/Unlock/RUnlock calls on
// sync.Mutex/RWMutex, returning the transition kind and the printed
// receiver expression identifying the lock.
func lockTransition(info *types.Info, call *ast.CallExpr) (kind int, lock string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, ""
	}
	recv := recvName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return 0, ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return lockAcquire, exprString(sel.X)
	case "Unlock", "RUnlock":
		return lockRelease, exprString(sel.X)
	}
	return 0, ""
}

// condWait reports a sync.Cond.Wait call.
func condWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		fn.Name() == "Wait" && recvName(fn) == "Cond"
}

// calleeNode resolves a call to its same-package call-graph node.
func calleeNode(info *types.Info, g *analysis.CallGraph, call *ast.CallExpr) *analysis.FuncNode {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return g.NodeOf(info.Uses[fun])
	case *ast.SelectorExpr:
		return g.NodeOf(info.Uses[fun.Sel])
	}
	return nil
}

// recvName returns the receiver type name of a method.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// exprString renders the receiver expression of a lock call ("l.mu").
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}
