package lockheld_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, lockheld.Analyzer, "testdata/src/a")
}
