package allowaudit_test

import (
	"testing"

	"landmarkdht/internal/analysis/allowaudit"
	"landmarkdht/internal/analysis/analysistest"
)

func TestAllowaudit(t *testing.T) {
	analysistest.Run(t, allowaudit.Analyzer, "testdata/src/a")
}
