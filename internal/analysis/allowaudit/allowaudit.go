// Package allowaudit keeps the suppression system honest. A
// //lint:allow annotation is a claim — "this diagnostic is a false
// positive, and here is why" — and claims rot: the code moves, the
// analyzer sharpens, the annotation stays behind suppressing nothing,
// and the next reader inherits an escape hatch with no argument
// attached. This analyzer makes the annotation inventory
// self-sustaining:
//
//   - every //lint:allow / //lint:file-allow must name a known
//     analyzer,
//   - must carry a reason (free text after the analyzer name),
//   - and must actually suppress at least one diagnostic: the named
//     analyzer is re-run in raw mode (analysis.RawDiagnostics) and the
//     annotation's scope — same/next line, or the whole file for
//     file-allow — must contain one of its findings. Stale allows are
//     diagnostics, so deleting dead suppressions is enforced, not
//     aspirational.
//
// //lint:context annotations are audited too: one that attaches to no
// function declaration, or names a context no analyzer knows, is dead
// configuration and gets reported.
//
// allowaudit's own diagnostics can be suppressed with
// //lint:allow allowaudit <reason> — which must itself carry a reason,
// checked the same way (usefulness of a self-referential allow is not
// decidable, so only the reason is enforced).
package allowaudit

import (
	"go/token"

	"landmarkdht/internal/analysis"
	"landmarkdht/internal/analysis/detrand"
	"landmarkdht/internal/analysis/errdrop"
	"landmarkdht/internal/analysis/execblock"
	"landmarkdht/internal/analysis/lockheld"
	"landmarkdht/internal/analysis/maporder"
	"landmarkdht/internal/analysis/nogoroutine"
	"landmarkdht/internal/analysis/wallclock"
)

// Checked are the analyzers whose allow annotations this audit
// validates — every analyzer of the suite except allowaudit itself.
var Checked = []*analysis.Analyzer{
	detrand.Analyzer,
	wallclock.Analyzer,
	maporder.Analyzer,
	nogoroutine.Analyzer,
	execblock.Analyzer,
	lockheld.Analyzer,
	errdrop.Analyzer,
}

// Analyzer audits //lint:allow and //lint:context annotations.
var Analyzer = &analysis.Analyzer{
	Name: "allowaudit",
	Doc: "require every //lint:allow to name a known analyzer, carry a reason, and " +
		"suppress at least one diagnostic; flag //lint:context annotations that attach to nothing",
	Run: run,
}

func run(pass *analysis.Pass) {
	byName := make(map[string]*analysis.Analyzer, len(Checked))
	for _, a := range Checked {
		byName[a.Name] = a
	}
	// Raw findings of each referenced analyzer, computed once on
	// demand: position-indexed so scope matching is cheap.
	raw := make(map[string][]analysis.Diagnostic)
	rawFor := func(a *analysis.Analyzer) []analysis.Diagnostic {
		if d, ok := raw[a.Name]; ok {
			return d
		}
		d := analysis.RawDiagnostics(a, pass.Fset, pass.Files, pass.Pkg, pass.Info)
		raw[a.Name] = d
		return d
	}

	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, fileWide, ok := analysis.ParseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if reason == "" {
					pass.Reportf(c.Pos(),
						"//lint:allow %s without a reason; state why the diagnostic is safe to suppress", name)
				}
				if name == "allowaudit" {
					continue // reason checked above; usefulness is self-referential
				}
				a, known := byName[name]
				if !known {
					pass.Reportf(c.Pos(), "//lint:allow names unknown analyzer %q", name)
					continue
				}
				if !allowUsed(rawFor(a), pos, fileWide) {
					scope := "on this or the next line"
					if fileWide {
						scope = "anywhere in this file"
					}
					pass.Reportf(c.Pos(),
						"stale //lint:allow %s: the analyzer reports no diagnostic %s; delete the annotation", name, scope)
				}
			}
		}
	}

	auditContexts(pass)
}

// allowUsed reports whether any raw diagnostic falls inside the
// annotation's suppression scope.
func allowUsed(diags []analysis.Diagnostic, at token.Position, fileWide bool) bool {
	for _, d := range diags {
		if d.Pos.Filename != at.Filename {
			continue
		}
		if fileWide || d.Pos.Line == at.Line || d.Pos.Line == at.Line+1 {
			return true
		}
	}
	return false
}

// auditContexts reports //lint:context annotations that attach to no
// function declaration or name an unknown context.
func auditContexts(pass *analysis.Pass) {
	g := analysis.NewCallGraph(pass)
	for _, pos := range g.DanglingContexts() {
		pass.Reportf(pos, "//lint:context attaches to no function declaration")
	}
	for pos, name := range g.UnknownContexts() {
		pass.Reportf(pos, "//lint:context names unknown context %q (known: executor)", name)
	}
}
