// Fixture for the allowaudit analyzer. The fixture deliberately
// violates other analyzers (wallclock, detrand); those diagnostics are
// never reported here — only allowaudit runs — but the staleness check
// re-runs the named analyzers in raw mode against this file.
package a

import (
	"math/rand"
	"time"
)

//lint:file-allow detrand fixture file rolls dice on purpose

func dice() int { return rand.Int() } // the file-allow above suppresses this

// A used allow with a reason: silent.
func used() time.Time {
	return time.Now() //lint:allow wallclock fixture site stands in for live code
}

// A used allow missing its reason: flagged, though still suppressing.
func reasonless() time.Time { return time.Now() } //lint:allow wallclock
// want-1 "without a reason"

// An allow whose diagnostic no longer exists: stale.
func quiet() int { return 1 } //lint:allow wallclock no clock here anymore
// want-1 "stale //lint:allow wallclock"

var answer = 42 //lint:allow sparkle dazzle the linter
// want-1 "unknown analyzer \"sparkle\""

// A context annotation on a non-declaration: dangling.
var ticks = 0 //lint:context executor
// want-1 "attaches to no function declaration"

// want+2 "names unknown context \"warpdrive\""
//
//lint:context warpdrive
func oddball() {}

// A reasonless allowaudit-allow cannot vouch for itself.
var hush = true //lint:allow allowaudit
// want-1 "without a reason"

// A reasoned allowaudit-allow: only the reason is enforced.
var hushed = true //lint:allow allowaudit usefulness is self-referential
