// Package a is the maporder fixture: order-sensitive effects inside
// range-over-map are flagged; the sorted-keys idiom, commutative
// accumulation, and annotated sites are not.
package a

import (
	"math/rand"
	"sort"
)

type engine struct{}

func (engine) Schedule(d int, fn func()) {}

func appendOuter(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "append to slice declared outside the loop"
		out = append(out, v)
	}
	return out
}

type bag struct{ vals []int }

func appendField(b *bag, m map[string]int) {
	for _, v := range m { // want "append to slice field declared outside the loop"
		b.vals = append(b.vals, v)
	}
}

// keyCollect is the sorted-keys idiom: collecting bare keys carries no
// order until sorted, so it is allowed.
func keyCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func scheduling(e engine, m map[string]int) {
	for _, v := range m { // want "call to Schedule"
		v := v
		e.Schedule(v, func() {})
	}
}

func draws(rng *rand.Rand, m map[string]bool) int {
	n := 0
	for range m { // want "random draw"
		n += rng.Intn(3)
	}
	return n
}

// commutative accumulation does not observe iteration order: allowed.
func commutative(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// mapWrite keyed by the loop key is itself unordered: allowed.
func mapWrite(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		out[k] = append([]int(nil), vs...)
	}
	return out
}

func annotated(m map[string]int) []int {
	var out []int
	//lint:allow maporder output is fully sorted below
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// sliceRange shows the analyzer only looks at maps.
func sliceRange(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
