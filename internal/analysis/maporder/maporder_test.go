package maporder_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/src/a")
}
