// Package maporder flags `for range` over a map whose loop body has
// order-sensitive effects. Go randomizes map iteration order on
// purpose, so any observable sequence produced inside such a loop —
// events scheduled on the engine, messages sent, entries appended to a
// result slice, random draws — varies run to run even under a fixed
// seed, silently breaking the simulator's reproducibility contract.
//
// The fix is the sorted-keys idiom (collect the keys, sort, iterate the
// sorted slice — see core.RepairReplicas); loops whose effects are
// provably order-insensitive (e.g. the output is fully sorted
// afterwards) annotate the site with //lint:allow maporder.
package maporder

import (
	"go/ast"
	"go/types"

	"landmarkdht/internal/analysis"
)

// Analyzer flags order-sensitive map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops with order-sensitive effects (event scheduling, " +
		"sends, appends to outer slices, RNG draws); iterate sorted keys or annotate //lint:allow maporder",
	Run: run,
}

// sensitiveCalls names methods whose invocation order is observable in
// the simulation: they schedule events, transmit messages, or insert
// into another node's store. The match is by name — a deliberately
// broad heuristic; a false positive on an order-insensitive method of
// the same name is annotated away at the site.
var sensitiveCalls = map[string]bool{
	"Schedule":      true,
	"ScheduleAt":    true,
	"AfterFunc":     true,
	"SendOrFail":    true,
	"FindSuccessor": true,
	"BulkLoad":      true,
	"Publish":       true,
	"RangeQuery":    true,
	"addAll":        true,
	"reinsert":      true,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderSensitive(pass, rs); reason != "" {
				pass.Reportf(rs.Pos(),
					"iteration over map has order-sensitive effects (%s); iterate over sorted keys or annotate //lint:allow maporder",
					reason)
			}
			return true
		})
	}
}

// orderSensitive scans the loop body (including nested closures and
// loops — their effects still replay in map order) and returns a
// description of the first order-sensitive effect, or "".
func orderSensitive(pass *analysis.Pass, rs *ast.RangeStmt) string {
	keyObj := rangeKeyObject(pass.Info, rs)
	reason := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "channel send"
		case *ast.AssignStmt:
			if r := sensitiveAppend(pass, rs, keyObj, n); r != "" {
				reason = r
			}
		case *ast.CallExpr:
			if r := sensitiveCall(pass, n); r != "" {
				reason = r
			}
		}
		return reason == ""
	})
	return reason
}

// rangeKeyObject returns the object bound to the loop's key variable,
// or nil.
func rangeKeyObject(info *types.Info, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// sensitiveAppend reports an append whose destination outlives the loop
// — i.e. the map's iteration order leaks into a slice built outside it.
// The one exempt shape is collecting bare keys (`ks = append(ks, k)`):
// that is the first half of the sorted-keys idiom and carries no order
// until sorted.
func sensitiveAppend(pass *analysis.Pass, rs *ast.RangeStmt, keyObj types.Object, as *ast.AssignStmt) string {
	if len(as.Lhs) != len(as.Rhs) {
		return ""
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.Info, call) {
			continue
		}
		if keyCollectOnly(pass.Info, call, keyObj) {
			continue
		}
		switch lhs := as.Lhs[i].(type) {
		case *ast.Ident:
			obj := pass.Info.ObjectOf(lhs)
			if obj == nil || obj.Name() == "_" {
				continue
			}
			if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
				return "append to slice declared outside the loop"
			}
		case *ast.SelectorExpr:
			// Writing through a field: the slice necessarily outlives
			// the iteration.
			return "append to slice field declared outside the loop"
		case *ast.IndexExpr:
			// m[k] = append(...) writes a map slot — itself unordered,
			// so no order leaks.
		}
	}
	return ""
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// keyCollectOnly reports whether every appended element is exactly the
// loop's key variable.
func keyCollectOnly(info *types.Info, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || call.Ellipsis.IsValid() || len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || info.ObjectOf(id) != keyObj {
			return false
		}
	}
	return true
}

// sensitiveCall reports method calls whose order is observable: draws
// on a *math/rand.Rand (each draw advances the generator) and the
// event-scheduling / message-sending methods in sensitiveCalls.
func sensitiveCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if _, _, isQualified := analysis.QualifiedName(pass.Info, sel); isQualified {
		return "" // package function; detrand/wallclock govern those
	}
	if named := analysis.ReceiverNamed(pass.Info, sel.X); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil && (obj.Pkg().Path() == "math/rand" || obj.Pkg().Path() == "math/rand/v2") &&
			obj.Name() == "Rand" {
			return "random draw"
		}
	}
	if sensitiveCalls[sel.Sel.Name] {
		return "call to " + sel.Sel.Name
	}
	return ""
}
