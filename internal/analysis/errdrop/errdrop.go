// Package errdrop flags discarded error returns on the wire,
// connection, and file-IO paths. The frame protocol's failure
// semantics (bounded shedding, credit-based completion, honest
// incompleteness) all assume that when a write, read, dial, or
// handshake fails, the caller *notices*: a silently dropped wire error
// turns "the link died and the overlay will retransmit" into "the
// frame evaporated and the query hangs until its deadline". The
// durability layer's guarantee is the same shape: a WAL append, fsync,
// buffered flush, or atomic rename whose error vanishes turns "the
// record is on disk" into "the record may be gone after the next
// crash".
//
// A call is on a checked I/O path when it is:
//
//   - a function of the wire package (frame encode/decode, ReadFrame),
//   - a method of a net type (Conn.Read/Write/Close, the deadline
//     setters, Listener.Accept) or a package-level net dial/listen,
//   - a write-side os.File method (Write, Sync, Close, Truncate, ...),
//     a bufio.Writer flush/write, or a package-level os file
//     operation (Create, OpenFile, Rename, Remove, ...),
//   - a same-package function that transitively performs one of the
//     above AND returns an error — the call-graph summary that makes
//     local wrappers like writeFrame or dialHandshake first-class I/O
//     calls. (A wrapper that swallows the error internally is flagged
//     at the swallowing site, not at its callers.)
//
// Discarding means calling as a bare statement (including `go` and
// `defer`) or assigning the error result to the blank identifier.
// Sites where dropping is the design (best-effort teardown of a
// connection that is already being abandoned, cleanup of a temp file
// after the real failure is already reported) carry an explicit
// //lint:allow errdrop <reason>.
package errdrop

import (
	"go/ast"
	"go/types"

	"landmarkdht/internal/analysis"
)

// Analyzer flags discarded errors from wire/conn/file-path calls.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "forbid discarding error returns on wire/conn/file-IO paths (wire encode/decode, " +
		"Conn read/write/close, dial, handshake, os.File write/sync/close, bufio flushes, " +
		"and local wrappers around them); annotate intentional drops with //lint:allow errdrop <reason>",
	Run: run,
}

// netMethods are the net-type methods whose errors matter on the wire
// path.
var netMethods = map[string]bool{
	"Read": true, "Write": true, "Close": true, "Accept": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"ReadFrom": true, "WriteTo": true,
}

// netFuncs are the package-level net functions on the wire path.
var netFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialIP": true, "DialTCP": true,
	"DialUDP": true, "DialUnix": true, "Listen": true, "ListenIP": true,
	"ListenTCP": true, "ListenUDP": true, "ListenUnix": true, "ListenPacket": true,
}

// fileMethods are the os.File methods whose errors the durability
// layer depends on: the write side, the flush side, and teardown.
// (Reads surface their failures through short reads and decode errors,
// so they are left to the callers' own checks.)
var fileMethods = map[string]bool{
	"Write": true, "WriteAt": true, "WriteString": true,
	"Sync": true, "Close": true, "Truncate": true,
}

// bufioMethods are the bufio.Writer methods that buffer or flush
// journal bytes: a dropped flush error means acknowledged records that
// never reached the file.
var bufioMethods = map[string]bool{
	"Flush": true, "Write": true, "WriteString": true, "WriteByte": true,
}

// osFuncs are the package-level os file operations on the durability
// path — in particular Rename, which the snapshot protocol relies on
// for atomic replacement.
var osFuncs = map[string]bool{
	"Create": true, "Open": true, "OpenFile": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "Truncate": true, "WriteFile": true,
}

func run(pass *analysis.Pass) {
	g := analysis.NewCallGraph(pass)
	wrappers := wirePathWrappers(pass, g)
	for _, fn := range g.Funcs {
		if fn.Decl.Body == nil {
			continue
		}
		checkBody(pass, g, wrappers, fn.Decl.Body)
	}
}

// wirePathWrappers computes the same-package functions that perform
// wire/net I/O — directly or through other wrappers — and hand the
// error back to their caller. Only error-returning functions
// propagate: a function that already swallows the error is the
// drop site itself, and its callers have nothing to check.
func wirePathWrappers(pass *analysis.Pass, g *analysis.CallGraph) map[*analysis.FuncNode]bool {
	out := make(map[*analysis.FuncNode]bool, len(g.Funcs))
	direct := func(fn *analysis.FuncNode) bool {
		found := false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if desc, _ := wireCall(pass, g, call, nil); desc != "" {
					found = true
				}
			}
			return true
		})
		return found
	}
	for _, fn := range g.Funcs {
		if fn.Decl.Body != nil && returnsError(pass, fn) && direct(fn) {
			out[fn] = true
		}
	}
	// Propagate through wrappers-of-wrappers. Callees (not
	// ExecCallees): which goroutine runs the I/O is irrelevant to
	// whether the error is dropped.
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs {
			if out[fn] || fn.Decl.Body == nil || !returnsError(pass, fn) {
				continue
			}
			for _, callee := range fn.Callees {
				if out[callee] {
					out[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// returnsError reports whether the function's last result is an error.
func returnsError(pass *analysis.Pass, fn *analysis.FuncNode) bool {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Implements(last, errorInterface())
}

// callReturnsError reports whether a call expression's last result is
// an error (the position checked for blank assignment).
func callReturnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Implements(t, errorInterface())
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// wireCall classifies a call as wire-path, returning a description for
// diagnostics. wrappers may be nil during the direct-detection phase
// (stdlib-only classification).
func wireCall(pass *analysis.Pass, g *analysis.CallGraph, call *ast.CallExpr, wrappers map[*analysis.FuncNode]bool) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if wrappers != nil {
			if n := g.NodeOf(pass.Info.Uses[fun]); n != nil && wrappers[n] {
				return n.Name() + " (wire/conn/file path)", true
			}
		}
	case *ast.SelectorExpr:
		if path, name, ok := analysis.QualifiedName(pass.Info, fun); ok {
			if pathBase(path) == "wire" {
				return "wire." + name, true
			}
			if path == "net" && netFuncs[name] {
				return "net." + name, true
			}
			if path == "os" && osFuncs[name] {
				return "os." + name, true
			}
			return "", false
		}
		fn, ok := pass.Info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", false
		}
		if fn.Pkg().Path() == "net" && netMethods[fn.Name()] {
			return "net." + recvName(fn) + "." + fn.Name(), true
		}
		if fn.Pkg().Path() == "os" && recvName(fn) == "File" && fileMethods[fn.Name()] {
			return "os.File." + fn.Name(), true
		}
		if fn.Pkg().Path() == "bufio" && recvName(fn) == "Writer" && bufioMethods[fn.Name()] {
			return "bufio.Writer." + fn.Name(), true
		}
		if wrappers != nil {
			if n := g.NodeOf(fn); n != nil && wrappers[n] {
				return n.Name() + " (wire/conn/file path)", true
			}
		}
	}
	return "", false
}

// checkBody reports wire-path calls whose error result is discarded.
func checkBody(pass *analysis.Pass, g *analysis.CallGraph, wrappers map[*analysis.FuncNode]bool, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		how := ""
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
			how = "return value discarded"
		case *ast.GoStmt:
			call, how = n.Call, "error lost in go statement"
		case *ast.DeferStmt:
			call, how = n.Call, "error lost in deferred call"
		case *ast.AssignStmt:
			checkBlankAssign(pass, g, wrappers, n)
			return true
		}
		if call == nil {
			return true
		}
		desc, ok := wireCall(pass, g, call, wrappers)
		if !ok || !callReturnsError(pass, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"dropped error from %s (%s); handle it or annotate //lint:allow errdrop <reason>",
			desc, how)
		return true
	})
}

// checkBlankAssign flags `_ = wireCall()` and `x, _ := wireCall()`
// where the blank identifier lands on the error result.
func checkBlankAssign(pass *analysis.Pass, g *analysis.CallGraph, wrappers map[*analysis.FuncNode]bool, as *ast.AssignStmt) {
	// Only the single-call form assigns a call's results positionally.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	desc, ok := wireCall(pass, g, call, wrappers)
	if !ok || !callReturnsError(pass, call) {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(call.Pos(),
		"dropped error from %s (assigned to _); handle it or annotate //lint:allow errdrop <reason>",
		desc)
}

// recvName returns the receiver type name of a method.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
