package errdrop_test

import (
	"testing"

	"landmarkdht/internal/analysis/analysistest"
	"landmarkdht/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "testdata/src/conn")
}
