// Package wire stands in for the real frame codec: errdrop classifies
// wire-path calls by the import path's base name.
package wire

import "io"

func AppendFrame(w io.Writer, b []byte) error {
	_, err := w.Write(b)
	return err
}

func ReadFrame(r io.Reader, b []byte) error {
	_, err := io.ReadFull(r, b)
	return err
}
