// Fixture for the errdrop analyzer: discarded error returns on wire,
// connection, and file-IO paths are diagnostics; checked errors,
// non-I/O calls, and annotated best-effort drops are not.
package conn

import (
	"bufio"
	"net"
	"os"

	"wire"
)

func bare(c net.Conn, b []byte) {
	c.Write(b)             // want "dropped error from net.Conn.Write .return value discarded."
	wire.AppendFrame(c, b) // want "dropped error from wire.AppendFrame"
}

func blank(c net.Conn) {
	_ = c.Close() // want "dropped error from net.Conn.Close .assigned to _."
}

func blankDial() {
	c, _ := net.Dial("tcp", "localhost:0") // want "dropped error from net.Dial .assigned to _."
	_ = c
}

func inGo(c net.Conn) {
	go c.Close() // want "dropped error from net.Conn.Close .error lost in go statement."
}

func inDefer(c net.Conn) {
	defer c.Close() // want "dropped error from net.Conn.Close .error lost in deferred call."
}

// writeFrame performs wire I/O and hands the error back, so its
// callers are on the wire path too.
func writeFrame(c net.Conn, b []byte) error {
	return wire.AppendFrame(c, b)
}

// sendLoop wraps a wrapper: propagation is transitive.
func sendLoop(c net.Conn, frames [][]byte) error {
	for _, f := range frames {
		if err := writeFrame(c, f); err != nil {
			return err
		}
	}
	return nil
}

func viaWrapper(c net.Conn, b []byte) {
	writeFrame(c, b) // want "dropped error from writeFrame .wire/conn/file path."
}

func viaWrapperOfWrapper(c net.Conn, frames [][]byte) {
	sendLoop(c, frames) // want "dropped error from sendLoop .wire/conn/file path."
}

type peer struct{ c net.Conn }

func (p *peer) send(b []byte) error { return writeFrame(p.c, b) }

func methodWrapper(p *peer, b []byte) {
	p.send(b) // want "dropped error from peer.send .wire/conn/file path."
}

// checked handles every wire error: silent.
func checked(c net.Conn, b []byte) error {
	if err := writeFrame(c, b); err != nil {
		return err
	}
	return c.Close()
}

// swallow drops internally — flagged at the drop site — and returns no
// error, so its callers have nothing to check.
func swallow(c net.Conn, b []byte) {
	wire.AppendFrame(c, b) // want "dropped error from wire.AppendFrame"
}

func viaSwallow(c net.Conn, b []byte) {
	swallow(c, b) // not a wrapper: no error reaches this caller
}

func allowed(c net.Conn) {
	_ = c.Close() //lint:allow errdrop best-effort teardown of an abandoned conn
}

// ---- file-IO paths (the durability layer's failure semantics) ----

func fileOps(f *os.File, b []byte) {
	f.Write(b)      // want "dropped error from os.File.Write .return value discarded."
	_ = f.Sync()    // want "dropped error from os.File.Sync .assigned to _."
	defer f.Close() // want "dropped error from os.File.Close .error lost in deferred call."
}

func renameBlank(a, b string) {
	_ = os.Rename(a, b) // want "dropped error from os.Rename .assigned to _."
}

func createBlank(path string) {
	f, _ := os.Create(path) // want "dropped error from os.Create .assigned to _."
	_ = f
}

func flushes(w *bufio.Writer, b []byte) {
	w.Write(b) // want "dropped error from bufio.Writer.Write .return value discarded."
	w.Flush()  // want "dropped error from bufio.Writer.Flush .return value discarded."
}

// syncAll performs file I/O and hands the error back: its callers are
// on the checked path too, exactly like wire wrappers.
func syncAll(f *os.File) error { return f.Sync() }

func viaSyncAll(f *os.File) {
	syncAll(f) // want "dropped error from syncAll .wire/conn/file path."
}

// fileChecked handles every file error: silent.
func fileChecked(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Close()
}

func fileAllowed(f *os.File) {
	_ = f.Close() //lint:allow errdrop read-only file; close cannot lose data
}

// Read-side file methods stay unflagged: short reads and decode errors
// surface failures on their own.
func fileReads(f *os.File, b []byte) {
	f.Read(b)
	f.Seek(0, 0)
}
