// Fixture for the errdrop analyzer: discarded error returns on wire
// and connection paths are diagnostics; checked errors, non-wire
// calls, and annotated best-effort drops are not.
package conn

import (
	"net"

	"wire"
)

func bare(c net.Conn, b []byte) {
	c.Write(b)             // want "dropped error from net.Conn.Write .return value discarded."
	wire.AppendFrame(c, b) // want "dropped error from wire.AppendFrame"
}

func blank(c net.Conn) {
	_ = c.Close() // want "dropped error from net.Conn.Close .assigned to _."
}

func blankDial() {
	c, _ := net.Dial("tcp", "localhost:0") // want "dropped error from net.Dial .assigned to _."
	_ = c
}

func inGo(c net.Conn) {
	go c.Close() // want "dropped error from net.Conn.Close .error lost in go statement."
}

func inDefer(c net.Conn) {
	defer c.Close() // want "dropped error from net.Conn.Close .error lost in deferred call."
}

// writeFrame performs wire I/O and hands the error back, so its
// callers are on the wire path too.
func writeFrame(c net.Conn, b []byte) error {
	return wire.AppendFrame(c, b)
}

// sendLoop wraps a wrapper: propagation is transitive.
func sendLoop(c net.Conn, frames [][]byte) error {
	for _, f := range frames {
		if err := writeFrame(c, f); err != nil {
			return err
		}
	}
	return nil
}

func viaWrapper(c net.Conn, b []byte) {
	writeFrame(c, b) // want "dropped error from writeFrame .wire/conn path."
}

func viaWrapperOfWrapper(c net.Conn, frames [][]byte) {
	sendLoop(c, frames) // want "dropped error from sendLoop .wire/conn path."
}

type peer struct{ c net.Conn }

func (p *peer) send(b []byte) error { return writeFrame(p.c, b) }

func methodWrapper(p *peer, b []byte) {
	p.send(b) // want "dropped error from peer.send .wire/conn path."
}

// checked handles every wire error: silent.
func checked(c net.Conn, b []byte) error {
	if err := writeFrame(c, b); err != nil {
		return err
	}
	return c.Close()
}

// swallow drops internally — flagged at the drop site — and returns no
// error, so its callers have nothing to check.
func swallow(c net.Conn, b []byte) {
	wire.AppendFrame(c, b) // want "dropped error from wire.AppendFrame"
}

func viaSwallow(c net.Conn, b []byte) {
	swallow(c, b) // not a wrapper: no error reaches this caller
}

func allowed(c net.Conn) {
	_ = c.Close() //lint:allow errdrop best-effort teardown of an abandoned conn
}
