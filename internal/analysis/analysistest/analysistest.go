// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone.
//
// An expectation is a comment of the form
//
//	// want "regexp"
//
// attached to the line the diagnostic is expected on; several quoted
// patterns may follow one want. A comment `// want-1 "regexp"` expects
// the diagnostic that many lines away (here: the line above) — needed
// when the diagnostic points at a comment, since two line comments
// cannot share a line. Every diagnostic must be matched by an
// expectation and vice versa. //lint:allow annotations in fixtures are
// honored, so an analyzer's escape hatch is tested by an annotated
// violation carrying no want.
//
// Fixture packages live under testdata (ignored by the go tool) and may
// import only the standard library — plus sibling fixture packages: a
// subdirectory of the fixture dir is type-checked first and becomes
// importable under its basename (`import "wire"` for a wire/ subdir),
// which lets a fixture exercise analyzers that key on import paths.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"landmarkdht/internal/analysis"
)

// Run analyzes the fixture package in dir (relative to the test's
// working directory, e.g. "testdata/src/a") and reports any mismatch
// between diagnostics and // want expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseFixture(fset, dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	imp := &fixtureImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	if err := loadSubPackages(fset, dir, imp); err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: fixture %s does not type-check: %v", dir, err)
	}
	diags := analysis.RunPackage(a, fset, files, pkg, info)

	wants, err := collectWants(fset, files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
}

// fixtureImporter resolves sibling fixture packages by basename and
// defers everything else to the standard-library source importer.
type fixtureImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (f *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := f.pkgs[path]; ok {
		return p, nil
	}
	return f.std.Import(path)
}

// loadSubPackages type-checks each subdirectory of the fixture dir as
// an importable package named by its basename.
func loadSubPackages(fset *token.FileSet, dir string, imp *fixtureImporter) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		files, err := parseFixture(fset, sub)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			continue
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(e.Name(), fset, files, nil)
		if err != nil {
			return fmt.Errorf("sub-fixture %s does not type-check: %v", sub, err)
		}
		imp.pkgs[e.Name()] = pkg
	}
	return nil
}

func parseFixture(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`^//\s*want([+-]\d+)?\s+(.*)$`)

func collectWants(fset *token.FileSet, files []*ast.File) ([]want, error) {
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want offset %q: %v", pos, m[1], err)
					}
					line += off
				}
				for _, q := range splitQuoted(m[2]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted extracts the double-quoted string literals from s.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[start:start+1+end+1])
		s = rest[end+1:]
	}
}
